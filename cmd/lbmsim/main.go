// Command lbmsim runs a parallel D3Q19 LBM simulation from flags: lattice
// size, node grid, backend (cpu or simulated gpu), boundary setup, and
// step count. It reports throughput and conservation diagnostics, and
// can write a velocity-slice PPM.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gpucluster/internal/cluster"
	"gpucluster/internal/gpu"
	"gpucluster/internal/lbm"
	"gpucluster/internal/lbmgpu"
	"gpucluster/internal/sched"
	"gpucluster/internal/vecmath"
	"gpucluster/internal/vis"
)

func main() {
	var (
		nx      = flag.Int("nx", 64, "lattice cells in x")
		ny      = flag.Int("ny", 48, "lattice cells in y")
		nz      = flag.Int("nz", 16, "lattice cells in z")
		nodes   = flag.Int("nodes", 4, "cluster nodes (arranged 2D)")
		steps   = flag.Int("steps", 100, "time steps")
		tau     = flag.Float64("tau", 0.6, "BGK relaxation time (>0.5)")
		backend = flag.String("backend", "cpu", "node backend: cpu | gpu")
		scene   = flag.String("scene", "channel", "scene: channel | cavity | periodic")
		mrt     = flag.Bool("mrt", false, "use the MRT collision operator (cpu backend only)")
		imgPath = flag.String("image", "", "write a mid-height velocity-slice PPM here")
	)
	flag.Parse()

	cfg := cluster.Config{
		Global: [3]int{*nx, *ny, *nz},
		Grid:   sched.Arrange2D(*nodes),
		Tau:    float32(*tau),
		UseMRT: *mrt,
	}
	switch *scene {
	case "channel":
		cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{0.05, 0, 0}}
		cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Outflow}
		cfg.Faces[lbm.FaceYNeg] = lbm.FaceSpec{Type: lbm.Wall}
		cfg.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.Wall}
		cfg.Faces[lbm.FaceZNeg] = lbm.FaceSpec{Type: lbm.Wall}
		cfg.Faces[lbm.FaceZPos] = lbm.FaceSpec{Type: lbm.Wall}
		// A block obstacle for a wake.
		cfg.Geometry = func(x, y, z int) bool {
			return x >= *nx/4 && x < *nx/4+*nx/10 &&
				y >= *ny/2-*ny/8 && y < *ny/2+*ny/8 && z < 3**nz/4
		}
	case "cavity":
		for f := range cfg.Faces {
			cfg.Faces[f] = lbm.FaceSpec{Type: lbm.Wall}
		}
		cfg.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.MovingWall, U: vecmath.Vec3{0.08, 0, 0}}
	case "periodic":
		cfg.Force = vecmath.Vec3{1e-5, 0, 0}
	default:
		fmt.Fprintf(os.Stderr, "unknown scene %q\n", *scene)
		os.Exit(2)
	}

	if *backend == "gpu" {
		if *mrt {
			fmt.Fprintln(os.Stderr, "-mrt is unsupported on the gpu backend")
			os.Exit(2)
		}
		cfg.NewNode = func(rank int, sub *lbm.Lattice) (cluster.Node, error) {
			dev := gpu.New(gpu.Config{
				Name:          fmt.Sprintf("node%d-gpu", rank),
				TextureMemory: 512 << 20,
			})
			return lbmgpu.New(dev, sub)
		}
	}

	sim, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("lattice %dx%dx%d, %d nodes (%v), backend=%s, scene=%s, tau=%.2f\n",
		*nx, *ny, *nz, cfg.Grid.Size(), cfg.Grid, *backend, *scene, *tau)

	m0 := sim.TotalMass()
	t0 := time.Now()
	sim.Run(*steps)
	wall := time.Since(t0)
	m1 := sim.TotalMass()

	cells := (*nx) * (*ny) * (*nz)
	fmt.Printf("%d steps in %v: %.2f Mcells/s, %.1f ms/step\n",
		*steps, wall.Round(time.Millisecond),
		float64(cells)*float64(*steps)/wall.Seconds()/1e6,
		wall.Seconds()*1000/float64(*steps))
	fmt.Printf("mass: %.1f -> %.1f (drift %.2e)\n", m0, m1, (m1-m0)/m0)

	if *imgPath != "" {
		vel := sim.GatherVelocity()
		f := &vis.VelocityField{NX: *nx, NY: *ny, NZ: *nz, V: vel}
		var seeds []vecmath.Vec3
		for i := 1; i < 12; i++ {
			seeds = append(seeds, vecmath.Vec3{1, float32(*ny*i) / 12, float32(*nz) / 2})
		}
		solid := cfg.Geometry
		im := vis.RenderStreamlinesTopDown(f, solid, seeds, 4**nx, 4**ny)
		out, err := os.Create(*imgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer out.Close()
		if err := im.WritePPM(out); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *imgPath)
	}
}

package main

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpucluster/internal/batch"
	"gpucluster/internal/batch/server"
	"gpucluster/internal/netsim"
)

func TestValidateCheckpointFlags(t *testing.T) {
	cases := []struct {
		name    string
		suspend bool
		preempt bool
		quantum time.Duration
		duplex  string
		storeBW float64
		wantErr bool
		want    batch.Duplex
	}{
		{name: "defaults", duplex: "full", want: batch.FullDuplex},
		{name: "half duplex", duplex: "half", want: batch.HalfDuplex},
		{name: "bad duplex", duplex: "simplex", wantErr: true},
		{name: "suspend without mechanism", suspend: true, duplex: "full", wantErr: true},
		{name: "suspend with preempt", suspend: true, preempt: true, duplex: "full", want: batch.FullDuplex},
		{name: "suspend with quantum", suspend: true, quantum: 300 * time.Second, duplex: "full", want: batch.FullDuplex},
		{name: "negative bandwidth", duplex: "full", storeBW: -1, wantErr: true},
		{name: "positive bandwidth", duplex: "half", storeBW: 30, want: batch.HalfDuplex},
	}
	for _, tc := range cases {
		d, err := validateCheckpointFlags(tc.suspend, tc.preempt, tc.quantum, tc.duplex, tc.storeBW)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: flags accepted, want error", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		} else if d != tc.want {
			t.Errorf("%s: duplex %v, want %v", tc.name, d, tc.want)
		}
	}
}

func TestRunMissingTraceFriendlyError(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-trace", "nonexistent.swf"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	msg := errw.String()
	if !strings.Contains(msg, "nonexistent.swf") || !strings.Contains(msg, "no such file") {
		t.Fatalf("stderr is not the friendly message: %q", msg)
	}
	if strings.Contains(msg, "%!") {
		t.Fatalf("mangled format verb in %q", msg)
	}
}

// TestRunPlainTraceReplay pins the un-instrumented path: no
// observability flag means no recorder reaches the scheduler (a
// typed-nil *MemRecorder in the interface field once crashed it).
func TestRunPlainTraceReplay(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-trace", "../../examples/traces/sample.swf", "-policy", "easy", "-preempt"},
		&out, &errw)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "policy easy") {
		t.Fatalf("report missing from stdout:\n%s", out.String())
	}
}

func TestRunBadFlagExitCode(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errw); code != 2 {
		t.Fatalf("exit code %d, want 2 for a flag parse error", code)
	}
	if code := run([]string{"-explain", "-3"}, &out, &errw); code != 1 {
		t.Fatalf("exit code %d, want 1 for a negative -explain", code)
	}
}

// TestRunObservabilityOutputs drives the acceptance command end to end:
// a sample-trace run must emit a valid Chrome trace, a per-pass blocker
// breakdown, and a Prometheus metrics file.
func TestRunObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	var out, errw strings.Builder
	code := run([]string{
		"-trace", "../../examples/traces/sample.swf",
		"-policy", "easy", "-preempt",
		"-trace-out", tracePath,
		"-explain", "4",
		"-metrics-out", metricsPath,
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errw.String())
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("-trace-out is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("-trace-out emitted no trace events")
	}
	pids := map[float64]bool{}
	for _, ev := range trace.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
	}
	for _, pid := range []float64{1, 2, 3} {
		if !pids[pid] {
			t.Fatalf("trace lacks track pid %v (want jobs, nodes, store link)", pid)
		}
	}

	stdout := out.String()
	if !strings.Contains(stdout, "job 4: blocked on") {
		t.Fatalf("stdout lacks the -explain breakdown:\n%s", stdout)
	}
	if !strings.Contains(stdout, "dominant blocker:") {
		t.Fatalf("stdout lacks the dominant blocker line:\n%s", stdout)
	}

	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE batch_jobs_submitted_total counter",
		"batch_jobs_completed_total",
		"batch_job_wait_seconds_bucket",
		`policy="easy"`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("-metrics-out missing %q:\n%s", want, prom)
		}
	}
}

func TestCkptWaitColGuardsZeroRestoreRuns(t *testing.T) {
	if got := ckptWaitCol(batch.Report{}); got != "n/a" {
		t.Errorf("zero-restore run rendered %q, want n/a", got)
	}
	r := batch.Report{
		PreemptEvents: 3,
		DrainWait:     4 * time.Second,
		RestoreWait:   6 * time.Second,
	}
	if got := ckptWaitCol(r); got != "4s+6s" {
		t.Errorf("contended run rendered %q, want 4s+6s", got)
	}
}

// TestRunExplainUnknownJob pins the satellite fix: -explain with a job
// ID the run never had must fail loudly instead of printing an empty
// breakdown.
func TestRunExplainUnknownJob(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-trace", "../../examples/traces/sample.swf", "-policy", "easy", "-explain", "9999"},
		&out, &errw)
	if code != 1 {
		t.Fatalf("exit code %d, want 1 for an unknown -explain ID", code)
	}
	if msg := errw.String(); !strings.Contains(msg, "no such job") {
		t.Fatalf("stderr lacks the no-such-job error: %q", msg)
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"frobnicate"}, &out, &errw); code != 2 {
		t.Fatalf("exit code %d, want 2 for an unknown subcommand", code)
	}
	if msg := errw.String(); !strings.Contains(msg, "unknown command") || !strings.Contains(msg, "serve") {
		t.Fatalf("stderr should name the verbs: %q", msg)
	}
}

// TestRunClientVerbs drives submit/queue/info/cancel through the run()
// seam against an in-process daemon — the whole CLI round trip minus
// the process boundary.
func TestRunClientVerbs(t *testing.T) {
	srv := server.New(server.Config{
		Batch: batch.Config{Cluster: batch.NewCluster(4, netsim.GigabitSwitch(4))},
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	addr := l.Addr().String()

	var out, errw strings.Builder
	code := run([]string{"submit", "-addr", addr, "-user", "ana", "-kind", "pde",
		"-gang", "2", "-est", "1h", "-name", "probe"}, &out, &errw)
	if code != 0 {
		t.Fatalf("submit exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "job 1 probe: running") {
		t.Fatalf("submit output: %q", out.String())
	}

	out.Reset()
	if code := run([]string{"queue", "-addr", addr}, &out, &errw); code != 0 {
		t.Fatalf("queue exit %d, stderr: %s", code, errw.String())
	}
	if s := out.String(); !strings.Contains(s, "1 running") || !strings.Contains(s, "probe") {
		t.Fatalf("queue output: %q", s)
	}

	out.Reset()
	if code := run([]string{"info", "-addr", addr, "1"}, &out, &errw); code != 0 {
		t.Fatalf("info exit %d, stderr: %s", code, errw.String())
	}
	if s := out.String(); !strings.Contains(s, "job 1 probe: running") || !strings.Contains(s, "user ana") {
		t.Fatalf("info output: %q", s)
	}

	out.Reset()
	if code := run([]string{"cancel", "-addr", addr, "1"}, &out, &errw); code != 0 {
		t.Fatalf("cancel exit %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "job 1 probe: canceled") {
		t.Fatalf("cancel output: %q", out.String())
	}
	errw.Reset()
	if code := run([]string{"cancel", "-addr", addr, "1"}, &out, &errw); code != 1 {
		t.Fatalf("double cancel exit %d, want 1", code)
	}
	errw.Reset()
	if code := run([]string{"info", "-addr", addr, "not-a-number"}, &out, &errw); code != 1 {
		t.Fatalf("bad ID exit %d, want 1", code)
	}
}

// TestRunSlamVerb replays a tiny synthetic trace through the slam
// subcommand against a high-compression daemon.
func TestRunSlamVerb(t *testing.T) {
	srv := server.New(server.Config{
		Batch:    batch.Config{Cluster: batch.NewCluster(4, netsim.GigabitSwitch(4)), Policy: batch.Backfill},
		Compress: 100_000,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	var out, errw strings.Builder
	code := run([]string{"slam", "-addr", l.Addr().String(), "-jobs", "12", "-users", "2",
		"-nodes", "4", "-compress", "100000", "-submitters", "3", "-timeout", "60s"}, &out, &errw)
	if code != 0 {
		t.Fatalf("slam exit %d, stderr: %s", code, errw.String())
	}
	if s := out.String(); !strings.Contains(s, "slam: 12 submitted, 12 accepted") {
		t.Fatalf("slam output: %q", s)
	}
}

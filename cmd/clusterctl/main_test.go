package main

import (
	"testing"
	"time"

	"gpucluster/internal/batch"
)

func TestValidateCheckpointFlags(t *testing.T) {
	cases := []struct {
		name    string
		suspend bool
		preempt bool
		quantum time.Duration
		duplex  string
		storeBW float64
		wantErr bool
		want    batch.Duplex
	}{
		{name: "defaults", duplex: "full", want: batch.FullDuplex},
		{name: "half duplex", duplex: "half", want: batch.HalfDuplex},
		{name: "bad duplex", duplex: "simplex", wantErr: true},
		{name: "suspend without mechanism", suspend: true, duplex: "full", wantErr: true},
		{name: "suspend with preempt", suspend: true, preempt: true, duplex: "full", want: batch.FullDuplex},
		{name: "suspend with quantum", suspend: true, quantum: 300 * time.Second, duplex: "full", want: batch.FullDuplex},
		{name: "negative bandwidth", duplex: "full", storeBW: -1, wantErr: true},
		{name: "positive bandwidth", duplex: "half", storeBW: 30, want: batch.HalfDuplex},
	}
	for _, tc := range cases {
		d, err := validateCheckpointFlags(tc.suspend, tc.preempt, tc.quantum, tc.duplex, tc.storeBW)
		if tc.wantErr {
			if err == nil {
				t.Errorf("%s: flags accepted, want error", tc.name)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		} else if d != tc.want {
			t.Errorf("%s: duplex %v, want %v", tc.name, d, tc.want)
		}
	}
}

func TestCkptWaitColGuardsZeroRestoreRuns(t *testing.T) {
	if got := ckptWaitCol(batch.Report{}); got != "n/a" {
		t.Errorf("zero-restore run rendered %q, want n/a", got)
	}
	r := batch.Report{
		PreemptEvents: 3,
		DrainWait:     4 * time.Second,
		RestoreWait:   6 * time.Second,
	}
	if got := ckptWaitCol(r); got != "4s+6s" {
		t.Errorf("contended run rendered %q, want 4s+6s", got)
	}
}

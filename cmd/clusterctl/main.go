// Clusterctl is the batch front door to the simulated GPU cluster: it
// submits a mixed batch of LBM, distributed-CG, and heat-stencil jobs
// to the internal/batch scheduler, drains the queue on the virtual
// clock, and prints the operator report — makespan, per-node
// utilization bars, queue waits, placement stats — under the FIFO and
// backfill policies and the first-fit and topology-aware placement
// engines.
//
// Usage:
//
//	clusterctl -nodes 32 -jobs 200 -policy both -seed 42
//	clusterctl -placement both          # compare placement engines too
//	clusterctl -execute -jobs 8         # actually run the workloads
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gpucluster/internal/batch"
	"gpucluster/internal/netsim"
)

type result struct {
	placement batch.Placement
	policy    batch.Policy
	rep       batch.Report
}

func main() {
	nodes := flag.Int("nodes", 32, "cluster size (the paper's machine had 32 compute nodes)")
	jobs := flag.Int("jobs", 200, "number of jobs in the synthetic mixed batch")
	policy := flag.String("policy", "both", "queue policy: fifo, backfill, or both (compare)")
	placement := flag.String("placement", "topo", "gang placement: first-fit, topo, or both (compare)")
	seed := flag.Int64("seed", 42, "workload generator seed")
	trunk := flag.Float64("trunk-slowdown", 1.1, "runtime multiplier for gangs spanning the stacking trunk")
	execute := flag.Bool("execute", false, "actually run each job's workload on the functional simulators (use few jobs)")
	verbose := flag.Bool("v", false, "print the per-job table")
	flag.Parse()

	if *nodes <= 0 {
		log.Fatalf("clusterctl: -nodes %d: cluster size must be positive", *nodes)
	}
	if *jobs < 0 {
		log.Fatalf("clusterctl: -jobs %d: job count must be non-negative", *jobs)
	}

	policies := []batch.Policy{batch.FIFO, batch.Backfill}
	if *policy != "both" {
		p, err := batch.ParsePolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		policies = []batch.Policy{p}
	}
	placements := []batch.Placement{batch.PlaceFirstFit, batch.PlaceTopo}
	if *placement != "both" {
		p, err := batch.ParsePlacement(*placement)
		if err != nil {
			log.Fatal(err)
		}
		placements = []batch.Placement{p}
	}

	fmt.Printf("clusterctl: %d jobs on %d nodes (seed %d)\n\n", *jobs, *nodes, *seed)
	// One mix serves every scheduler run: Submit resolves defaults into
	// scheduler-owned fields, so the specs stay pristine across replays.
	mix := batch.SyntheticMix(*seed, *jobs, *nodes)
	if *execute {
		shrink(mix, *nodes)
	}
	var results []result
	for _, plc := range placements {
		for _, pol := range policies {
			cfg := batch.Config{
				Cluster:       batch.NewCluster(*nodes, netsim.GigabitSwitch(*nodes)),
				Policy:        pol,
				Placement:     plc,
				TrunkSlowdown: *trunk,
			}
			if *execute {
				cfg.Execute = batch.SimExecutor{TracerParticles: 1000}
			}
			s := batch.New(cfg)
			for _, j := range mix {
				if err := s.Submit(j); err != nil {
					log.Fatal(err)
				}
			}
			rep := s.Run()
			fmt.Print(rep)
			if *verbose {
				printJobs(rep)
			}
			fmt.Println()
			results = append(results, result{placement: plc, policy: pol, rep: rep})
		}
	}

	if len(policies) == 2 {
		for _, plc := range placements {
			f := find(results, plc, batch.FIFO)
			b := find(results, plc, batch.Backfill)
			fmt.Printf("placement %s, backfill vs fifo: makespan %v -> %v (%s), utilization %.1f%% -> %.1f%%, %d jobs backfilled\n",
				plc, batch.RoundDuration(f.Makespan), batch.RoundDuration(b.Makespan),
				gain(f.Makespan, b.Makespan),
				100*f.Utilization, 100*b.Utilization, b.Backfilled)
		}
	}
	if len(placements) == 2 {
		for _, pol := range policies {
			ff := find(results, batch.PlaceFirstFit, pol)
			tp := find(results, batch.PlaceTopo, pol)
			fmt.Printf("policy %s, topo vs first-fit: makespan %v -> %v (%s), utilization %.1f%% -> %.1f%%, trunk-crossing gangs %d -> %d, split gangs %d\n",
				pol, batch.RoundDuration(ff.Makespan), batch.RoundDuration(tp.Makespan),
				gain(ff.Makespan, tp.Makespan),
				100*ff.Utilization, 100*tp.Utilization,
				ff.TrunkCrossed, tp.TrunkCrossed, tp.SplitGangs)
		}
	}
	for _, r := range results {
		if r.rep.Failed > 0 {
			os.Exit(1)
		}
	}
}

// find returns the report for one (placement, policy) run.
func find(results []result, plc batch.Placement, pol batch.Policy) batch.Report {
	for _, r := range results {
		if r.placement == plc && r.policy == pol {
			return r.rep
		}
	}
	panic("clusterctl: missing run")
}

// gain renders the relative makespan improvement from base to improved,
// or "n/a" when the base is empty (e.g. -jobs 0).
func gain(base, improved time.Duration) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%% lower", 100*(1-float64(improved)/float64(base)))
}

// shrink scales a synthetic batch down to sizes the functional
// simulators can actually run in seconds.
func shrink(jobs []*batch.Job, clusterNodes int) {
	maxGang := 6
	if clusterNodes < maxGang {
		maxGang = clusterNodes
	}
	for _, j := range jobs {
		if j.Nodes > maxGang {
			j.Nodes = maxGang
		}
		switch j.Kind {
		case batch.KindLBM:
			j.Problem = [3]int{8, 8, 8}
			j.Steps = 4
		case batch.KindCG:
			j.Problem = [3]int{12, 12, 1}
			j.Steps = 1000
		case batch.KindPDE:
			j.Problem = [3]int{12, 12, 3}
			j.Steps = 6
		}
		j.Est = 0 // re-estimate for the shrunk problem
	}
}

func printJobs(rep batch.Report) {
	fmt.Printf("  %-4s %-10s %-5s %-6s %-5s %-9s %-9s %-9s %s\n",
		"id", "name", "kind", "nodes", "prio", "wait", "runtime", "state", "detail")
	for _, j := range rep.Jobs {
		mark := ""
		if j.Backfilled() {
			mark = " *bf"
		}
		if !j.Alloc.Contiguous() {
			mark += " *split"
		}
		fmt.Printf("  %-4d %-10s %-5s %-6d %-5d %-9v %-9v %-9s %s%s\n",
			j.ID, j.Name, j.Kind, j.Nodes, j.Priority,
			batch.RoundDuration(j.Wait()), batch.RoundDuration(j.Runtime()),
			j.State, j.Detail, mark)
	}
}

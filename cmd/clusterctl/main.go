// Clusterctl is the batch front door to the simulated GPU cluster: it
// submits a mixed batch of LBM, distributed-CG, and heat-stencil jobs
// to the internal/batch scheduler, drains the queue on the virtual
// clock, and prints the operator report — makespan, per-node
// utilization bars, queue waits — under the FIFO and backfill policies.
//
// Usage:
//
//	clusterctl -nodes 32 -jobs 200 -policy both -seed 42
//	clusterctl -execute -jobs 8        # actually run the workloads
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpucluster/internal/batch"
	"gpucluster/internal/netsim"
)

func main() {
	nodes := flag.Int("nodes", 32, "cluster size (the paper's machine had 32 compute nodes)")
	jobs := flag.Int("jobs", 200, "number of jobs in the synthetic mixed batch")
	policy := flag.String("policy", "both", "queue policy: fifo, backfill, or both (compare)")
	seed := flag.Int64("seed", 42, "workload generator seed")
	trunk := flag.Float64("trunk-slowdown", 1.1, "runtime multiplier for gangs spanning the stacking trunk")
	execute := flag.Bool("execute", false, "actually run each job's workload on the functional simulators (use few jobs)")
	verbose := flag.Bool("v", false, "print the per-job table")
	flag.Parse()

	var policies []batch.Policy
	if *policy == "both" {
		policies = []batch.Policy{batch.FIFO, batch.Backfill}
	} else {
		p, err := batch.ParsePolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		policies = []batch.Policy{p}
	}

	fmt.Printf("clusterctl: %d jobs on %d nodes (seed %d)\n\n", *jobs, *nodes, *seed)
	reports := make([]batch.Report, 0, len(policies))
	for _, pol := range policies {
		cfg := batch.Config{
			Cluster:       batch.NewCluster(*nodes, netsim.GigabitSwitch(*nodes)),
			Policy:        pol,
			TrunkSlowdown: *trunk,
		}
		if *execute {
			cfg.Execute = batch.SimExecutor{TracerParticles: 1000}
		}
		s := batch.New(cfg)
		// Each policy gets its own identically seeded batch: the
		// scheduler mutates job lifecycle state.
		mix := batch.SyntheticMix(*seed, *jobs, *nodes)
		if *execute {
			shrink(mix, *nodes)
		}
		for _, j := range mix {
			if err := s.Submit(j); err != nil {
				log.Fatal(err)
			}
		}
		rep := s.Run()
		fmt.Print(rep)
		if *verbose {
			printJobs(rep)
		}
		fmt.Println()
		reports = append(reports, rep)
	}

	if len(reports) == 2 {
		f, b := reports[0], reports[1]
		gain := 100 * (1 - float64(b.Makespan)/float64(f.Makespan))
		fmt.Printf("backfill vs fifo: makespan %v -> %v (%.1f%% lower), utilization %.1f%% -> %.1f%%, %d jobs backfilled\n",
			batch.RoundDuration(f.Makespan), batch.RoundDuration(b.Makespan), gain,
			100*f.Utilization, 100*b.Utilization, b.Backfilled)
	}
	if failed(reports) {
		os.Exit(1)
	}
}

// shrink scales a synthetic batch down to sizes the functional
// simulators can actually run in seconds.
func shrink(jobs []*batch.Job, clusterNodes int) {
	maxGang := 6
	if clusterNodes < maxGang {
		maxGang = clusterNodes
	}
	for _, j := range jobs {
		if j.Nodes > maxGang {
			j.Nodes = maxGang
		}
		switch j.Kind {
		case batch.KindLBM:
			j.Problem = [3]int{8, 8, 8}
			j.Steps = 4
		case batch.KindCG:
			j.Problem = [3]int{12, 12, 1}
			j.Steps = 1000
		case batch.KindPDE:
			j.Problem = [3]int{12, 12, 3}
			j.Steps = 6
		}
		j.Est = 0 // re-estimate for the shrunk problem
	}
}

func printJobs(rep batch.Report) {
	fmt.Printf("  %-4s %-10s %-5s %-6s %-5s %-9s %-9s %-9s %s\n",
		"id", "name", "kind", "nodes", "prio", "wait", "runtime", "state", "detail")
	for _, j := range rep.Jobs {
		mark := ""
		if j.Backfilled() {
			mark = " *bf"
		}
		fmt.Printf("  %-4d %-10s %-5s %-6d %-5d %-9v %-9v %-9s %s%s\n",
			j.ID, j.Name, j.Kind, j.Nodes, j.Priority,
			batch.RoundDuration(j.Wait()), batch.RoundDuration(j.Runtime()),
			j.State, j.Detail, mark)
	}
}

func failed(reports []batch.Report) bool {
	for _, r := range reports {
		if r.Failed > 0 {
			return true
		}
	}
	return false
}

// Clusterctl is the batch front door to the simulated GPU cluster: it
// submits a batch of LBM, distributed-CG, and heat-stencil jobs to the
// internal/batch scheduler — a deterministic synthetic mix, or a
// recorded workload replayed from a Standard-Workload-Format trace —
// drains the queue on the virtual clock, and prints the operator
// report (makespan, per-node utilization bars, queue waits, placement
// and preemption stats) under any of the four queue policies and the
// two placement engines.
//
// Usage:
//
//	clusterctl -nodes 32 -jobs 200 -policy both -seed 42
//	clusterctl -policy all -preempt            # compare all four policies
//	clusterctl -trace examples/traces/sample.swf -policy fairshare
//	clusterctl -policy all -quantum 300s       # time-sliced gang scheduling
//	clusterctl -preempt -suspend-to-host       # in-RAM suspension tier
//	clusterctl -preempt -store-duplex half     # drains and restores share the wire
//	clusterctl -preempt -store-bandwidth 30    # slower checkpoint store (MB/s)
//	clusterctl -placement both                 # compare placement engines too
//	clusterctl -execute -jobs 8                # actually run the workloads
//	clusterctl -bench-json BENCH_batch.json    # emit the CI perf snapshot
//
// With -quantum the comparison table gains a run-to-completion EASY
// baseline row and a short-job wait column (jobs with estimates at or
// below the mix median), the population time-slicing exists to help.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"gpucluster/internal/batch"
	"gpucluster/internal/netsim"
)

type result struct {
	placement batch.Placement
	policy    batch.Policy
	rep       batch.Report
}

func main() {
	nodes := flag.Int("nodes", 32, "cluster size (the paper's machine had 32 compute nodes)")
	jobs := flag.Int("jobs", 200, "number of jobs in the synthetic mixed batch")
	policy := flag.String("policy", "both", "queue policy: fifo, easy, conservative, fairshare, both (fifo+easy), or all")
	placement := flag.String("placement", "topo", "gang placement: first-fit, topo, or both (compare)")
	seed := flag.Int64("seed", 42, "workload generator seed")
	trunk := flag.Float64("trunk-slowdown", 1.1, "runtime multiplier for gangs spanning the stacking trunk")
	preempt := flag.Bool("preempt", false, "enable priority preemption with checkpoint/restart")
	quantum := flag.Duration("quantum", 0, "time-slice quantum for gang scheduling (0 disables; e.g. 300s)")
	suspendToHost := flag.Bool("suspend-to-host", false, "suspend checkpoint images into node RAM when they fit (requires -preempt or -quantum)")
	storeDuplex := flag.String("store-duplex", "full", "checkpoint-store link mode: full (independent read/write timelines) or half (one shared)")
	storeBW := flag.Float64("store-bandwidth", 0, "checkpoint-store link bandwidth in MB/s (0 uses the paper's Gigabit model)")
	tracePath := flag.String("trace", "", "replay an SWF-style workload trace instead of the synthetic mix")
	execute := flag.Bool("execute", false, "actually run each job's workload on the functional simulators (use few jobs)")
	benchJSON := flag.String("bench-json", "", "write a scheduler throughput/makespan snapshot to this file and exit")
	verbose := flag.Bool("v", false, "print the per-job table")
	flag.Parse()

	if *nodes <= 0 {
		log.Fatalf("clusterctl: -nodes %d: cluster size must be positive", *nodes)
	}
	if *jobs < 0 {
		log.Fatalf("clusterctl: -jobs %d: job count must be non-negative", *jobs)
	}
	duplex, err := validateCheckpointFlags(*suspendToHost, *preempt, *quantum, *storeDuplex, *storeBW)
	if err != nil {
		log.Fatalf("clusterctl: %v", err)
	}

	if *benchJSON != "" {
		writeBenchJSON(*benchJSON, *nodes, *seed)
		return
	}

	var policies []batch.Policy
	switch *policy {
	case "both":
		policies = []batch.Policy{batch.FIFO, batch.Backfill}
	case "all":
		policies = batch.Policies()
	default:
		p, err := batch.ParsePolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		policies = []batch.Policy{p}
	}
	placements := []batch.Placement{batch.PlaceFirstFit, batch.PlaceTopo}
	if *placement != "both" {
		p, err := batch.ParsePlacement(*placement)
		if err != nil {
			log.Fatal(err)
		}
		placements = []batch.Placement{p}
	}

	// One job-spec slice serves every scheduler run: Submit resolves
	// defaults into scheduler-owned fields, so the specs stay pristine
	// across replays.
	var mix []*batch.Job
	var actual func(*batch.Job, time.Duration) time.Duration
	if *tracePath != "" {
		recs, err := batch.LoadTrace(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		mix, actual = batch.TraceJobs(recs, *nodes)
		fmt.Printf("clusterctl: replaying %d trace jobs from %s on %d nodes\n\n", len(mix), *tracePath, *nodes)
	} else {
		mix = batch.SyntheticMix(*seed, *jobs, *nodes)
		fmt.Printf("clusterctl: %d jobs on %d nodes (seed %d)\n\n", *jobs, *nodes, *seed)
	}
	if *execute {
		shrink(mix, *nodes)
	}
	var ckptCost, restCost func(*batch.Job) time.Duration
	if *storeBW > 0 {
		ckptCost, restCost = batch.ScaledStoreCosts(*storeBW)
	}
	// One config builder serves every run, so a future knob cannot be
	// wired into the policy grid but silently left off the baseline.
	makeConfig := func(pol batch.Policy, plc batch.Placement, quantum time.Duration) batch.Config {
		return batch.Config{
			Cluster:        batch.NewCluster(*nodes, netsim.GigabitSwitch(*nodes)),
			Policy:         pol,
			Placement:      plc,
			Actual:         actual,
			TrunkSlowdown:  *trunk,
			Preempt:        *preempt,
			Quantum:        quantum,
			SuspendToHost:  *suspendToHost,
			StoreDuplex:    duplex,
			CheckpointCost: ckptCost,
			RestoreCost:    restCost,
		}
	}
	runMix := func(cfg batch.Config) batch.Report {
		s := batch.New(cfg)
		for _, j := range mix {
			if err := s.Submit(j); err != nil {
				log.Fatal(err)
			}
		}
		return s.Run()
	}
	var results []result
	rtcEasy := make(map[batch.Placement]batch.Report) // run-to-completion baseline under -quantum
	for _, plc := range placements {
		for _, pol := range policies {
			cfg := makeConfig(pol, plc, *quantum)
			if *execute {
				cfg.Execute = batch.SimExecutor{TracerParticles: 1000}
			}
			rep := runMix(cfg)
			fmt.Print(rep)
			if *verbose {
				printJobs(rep)
			}
			fmt.Println()
			results = append(results, result{placement: plc, policy: pol, rep: rep})
		}
		if *quantum > 0 {
			rtcEasy[plc] = runMix(makeConfig(batch.Backfill, plc, 0))
		}
	}

	if len(policies) > 1 || *quantum > 0 {
		row := func(label string, f, r batch.Report) {
			fmt.Printf("  %-13s makespan %8v (%s), utilization %5.1f%%, avg wait %8v, short wait %8v, ckpt wait %-11s %d backfilled, %d preempted, %d sliced\n",
				label, batch.RoundDuration(r.Makespan), gain(f.Makespan, r.Makespan),
				100*r.Utilization, batch.RoundDuration(r.AvgWait),
				batch.RoundDuration(r.ShortWait), ckptWaitCol(r)+",",
				r.Backfilled, r.Preempted, r.Sliced)
		}
		for _, plc := range placements {
			f := find(results, plc, policies[0])
			fmt.Printf("policy comparison (placement %s, baseline %s; short = est <= %v):\n",
				plc, policies[0], batch.RoundDuration(f.ShortCut))
			for _, pol := range policies {
				row(pol.String(), f, find(results, plc, pol))
			}
			if *quantum > 0 {
				base := rtcEasy[plc]
				row("easy/rtc", f, base)
				for _, pol := range policies {
					if pol != batch.Backfill {
						continue
					}
					r := find(results, plc, pol)
					fmt.Printf("  timeslice quantum %v vs run-to-completion easy: short-job avg wait %v -> %v (%s)\n",
						*quantum, batch.RoundDuration(base.ShortWait),
						batch.RoundDuration(r.ShortWait),
						gain(base.ShortWait, r.ShortWait))
				}
			}
		}
	}
	if len(placements) == 2 {
		for _, pol := range policies {
			ff := find(results, batch.PlaceFirstFit, pol)
			tp := find(results, batch.PlaceTopo, pol)
			fmt.Printf("policy %s, topo vs first-fit: makespan %v -> %v (%s), utilization %.1f%% -> %.1f%%, trunk-crossing gangs %d -> %d, split gangs %d\n",
				pol, batch.RoundDuration(ff.Makespan), batch.RoundDuration(tp.Makespan),
				gain(ff.Makespan, tp.Makespan),
				100*ff.Utilization, 100*tp.Utilization,
				ff.TrunkCrossed, tp.TrunkCrossed, tp.SplitGangs)
		}
	}
	for _, r := range results {
		if r.rep.Failed > 0 {
			os.Exit(1)
		}
	}
}

// benchSnapshot is the BENCH_batch.json schema: scheduler throughput on
// a large queue, the default-mix makespan under every policy, and —
// since schema 2 — the checkpoint cost model's trajectory: store-link
// queue waits (drain + restore) and total checkpoint overhead from a
// contended preempt+quantum run per policy, with and without the
// suspend-to-host tier.
type benchSnapshot struct {
	Schema        int                `json:"schema"`
	Nodes         int                `json:"nodes"`
	Seed          int64              `json:"seed"`
	BenchJobs     int                `json:"bench_jobs"`
	WallMS        float64            `json:"wall_ms"`
	JobsPerSec    float64            `json:"jobs_per_sec"`
	MixJobs       int                `json:"mix_jobs"`
	MakespanMS    map[string]float64 `json:"makespan_ms"`
	AvgWaitMS     map[string]float64 `json:"avg_wait_ms"`
	Utilization   map[string]float64 `json:"utilization"`
	DrainWaitMS   map[string]float64 `json:"drain_wait_ms"`
	RestoreWaitMS map[string]float64 `json:"restore_wait_ms"`
	CkptOverhead  map[string]float64 `json:"ckpt_overhead_ms"`
	HostCkptOver  map[string]float64 `json:"ckpt_overhead_suspend_to_host_ms"`
}

// writeBenchJSON measures scheduling throughput (jobs/s through a
// 1000-job EASY queue, wall clock), the default-mix schedule quality
// under each policy, and the contended checkpoint cost model
// (preempt + 300s quantum, default perfmodel prices), then writes the
// snapshot for the CI artifact.
func writeBenchJSON(path string, nodes int, seed int64) {
	run := func(pol batch.Policy, count int, preempt bool, quantum time.Duration, suspend bool) (batch.Report, time.Duration) {
		s := batch.New(batch.Config{
			Cluster:       batch.NewCluster(nodes, netsim.GigabitSwitch(nodes)),
			Policy:        pol,
			TrunkSlowdown: 1.1,
			Preempt:       preempt,
			Quantum:       quantum,
			SuspendToHost: suspend,
		})
		// The throughput/makespan rows replay the classic all-at-once
		// mix; the contended checkpoint rows need staggered arrivals,
		// or only fair-share's reordering ever drives a suspension.
		jobs := batch.SyntheticMix(seed, count, nodes)
		if preempt || quantum > 0 {
			jobs = batch.SyntheticStream(seed, count, nodes, 5*time.Second)
		}
		for _, j := range jobs {
			if err := s.Submit(j); err != nil {
				log.Fatal(err)
			}
		}
		t0 := time.Now()
		rep := s.Run()
		return rep, time.Since(t0)
	}
	const benchJobs = 1000
	_, wall := run(batch.Backfill, benchJobs, false, 0, false)
	snap := benchSnapshot{
		Schema:        2,
		Nodes:         nodes,
		Seed:          seed,
		BenchJobs:     benchJobs,
		WallMS:        float64(wall.Microseconds()) / 1e3,
		JobsPerSec:    benchJobs / wall.Seconds(),
		MixJobs:       200,
		MakespanMS:    map[string]float64{},
		AvgWaitMS:     map[string]float64{},
		Utilization:   map[string]float64{},
		DrainWaitMS:   map[string]float64{},
		RestoreWaitMS: map[string]float64{},
		CkptOverhead:  map[string]float64{},
		HostCkptOver:  map[string]float64{},
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	for _, pol := range batch.Policies() {
		rep, _ := run(pol, snap.MixJobs, false, 0, false)
		snap.MakespanMS[pol.String()] = ms(rep.Makespan)
		snap.AvgWaitMS[pol.String()] = ms(rep.AvgWait)
		snap.Utilization[pol.String()] = rep.Utilization
		// The contended run drives both store-link directions; the
		// suspend-to-host rerun records what the RAM tier saves.
		ckpt, _ := run(pol, snap.MixJobs, true, 300*time.Second, false)
		snap.DrainWaitMS[pol.String()] = ms(ckpt.DrainWait)
		snap.RestoreWaitMS[pol.String()] = ms(ckpt.RestoreWait)
		snap.CkptOverhead[pol.String()] = ms(ckpt.CheckpointOverhead + ckpt.DemotionTime)
		host, _ := run(pol, snap.MixJobs, true, 300*time.Second, true)
		snap.HostCkptOver[pol.String()] = ms(host.CheckpointOverhead + host.DemotionTime)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusterctl: wrote %s (%.0f jobs/s scheduling throughput, easy makespan %.0f ms)\n",
		path, snap.JobsPerSec, snap.MakespanMS["easy"])
}

// find returns the report for one (placement, policy) run.
func find(results []result, plc batch.Placement, pol batch.Policy) batch.Report {
	for _, r := range results {
		if r.placement == plc && r.policy == pol {
			return r.rep
		}
	}
	panic("clusterctl: missing run")
}

// gain renders the relative makespan improvement from base to improved,
// or "n/a" when the base is empty (e.g. -jobs 0).
func gain(base, improved time.Duration) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(improved)/float64(base)-1))
}

// ckptWaitCol renders a run's store-link queue waits as drain+restore,
// or "n/a" for a run with no checkpoint traffic at all (no preemptions,
// slices, or demotions means zero restores — a blank column would read
// as a perfectly contention-free protocol rather than an unused one).
func ckptWaitCol(r batch.Report) string {
	if r.PreemptEvents == 0 && r.SliceEvents == 0 && r.Demotions == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%v+%v", batch.RoundDuration(r.DrainWait), batch.RoundDuration(r.RestoreWait))
}

// validateCheckpointFlags cross-checks the checkpoint-model knobs:
// -suspend-to-host is meaningless without a suspension mechanism
// (-preempt or -quantum), the duplex mode must parse, and a negative
// store bandwidth is rejected (0 means "use the paper's Gigabit
// model").
func validateCheckpointFlags(suspendToHost, preempt bool, quantum time.Duration, duplex string, storeBW float64) (batch.Duplex, error) {
	d, err := batch.ParseDuplex(duplex)
	if err != nil {
		return 0, fmt.Errorf("-store-duplex %q: %v", duplex, err)
	}
	if suspendToHost && !preempt && quantum <= 0 {
		return 0, fmt.Errorf("-suspend-to-host needs a suspension mechanism: enable -preempt and/or -quantum")
	}
	if storeBW < 0 {
		return 0, fmt.Errorf("-store-bandwidth %g: bandwidth must be non-negative MB/s (0 selects the paper's Gigabit model)", storeBW)
	}
	return d, nil
}

// shrink scales a batch down to sizes the functional simulators can
// actually run in seconds.
func shrink(jobs []*batch.Job, clusterNodes int) {
	maxGang := 6
	if clusterNodes < maxGang {
		maxGang = clusterNodes
	}
	for _, j := range jobs {
		if j.Nodes > maxGang {
			j.Nodes = maxGang
		}
		switch j.Kind {
		case batch.KindLBM:
			j.Problem = [3]int{8, 8, 8}
			j.Steps = 4
		case batch.KindCG:
			j.Problem = [3]int{12, 12, 1}
			j.Steps = 1000
		case batch.KindPDE:
			j.Problem = [3]int{12, 12, 3}
			j.Steps = 6
		}
		j.Est = 0 // re-estimate for the shrunk problem
	}
}

func printJobs(rep batch.Report) {
	fmt.Printf("  %-4s %-10s %-6s %-5s %-6s %-5s %-9s %-9s %-9s %s\n",
		"id", "name", "user", "kind", "nodes", "prio", "wait", "runtime", "state", "detail")
	for _, j := range rep.Jobs {
		mark := ""
		if j.Backfilled() {
			mark = " *bf"
		}
		if j.Preemptions() > 0 {
			mark += fmt.Sprintf(" *pre%d", j.Preemptions())
		}
		if j.TimeSlices() > 0 {
			mark += fmt.Sprintf(" *ts%d", j.TimeSlices())
		}
		if !j.Alloc.Contiguous() {
			mark += " *split"
		}
		fmt.Printf("  %-4d %-10s %-6s %-5s %-6d %-5d %-9v %-9v %-9s %s%s\n",
			j.ID, j.Name, j.User, j.Kind, j.Nodes, j.Priority,
			batch.RoundDuration(j.Wait()), batch.RoundDuration(j.Runtime()),
			j.State, j.Detail, mark)
	}
}

// Clusterctl is the batch front door to the simulated GPU cluster: it
// submits a batch of LBM, distributed-CG, and heat-stencil jobs to the
// internal/batch scheduler — a deterministic synthetic mix, or a
// recorded workload replayed from a Standard-Workload-Format trace —
// drains the queue on the virtual clock, and prints the operator
// report (makespan, per-node utilization bars, queue waits, placement
// and preemption stats) under any of the four queue policies and the
// two placement engines.
//
// Usage:
//
//	clusterctl -nodes 32 -jobs 200 -policy both -seed 42
//	clusterctl -policy all -preempt            # compare all four policies
//	clusterctl -trace examples/traces/sample.swf -policy fairshare
//	clusterctl -policy all -quantum 300s       # time-sliced gang scheduling
//	clusterctl -preempt -suspend-to-host       # in-RAM suspension tier
//	clusterctl -preempt -store-duplex half     # drains and restores share the wire
//	clusterctl -preempt -store-bandwidth 30    # slower checkpoint store (MB/s)
//	clusterctl -mtbf 2h                        # seeded failure storm (node crashes, trunk outages)
//	clusterctl -faults storm.txt -ckpt-interval 5m  # replay a fault trace, bank proactively
//	clusterctl -placement both                 # compare placement engines too
//	clusterctl -execute -jobs 8                # actually run the workloads
//	clusterctl -bench-json BENCH_batch.json    # emit the CI perf snapshot
//	clusterctl -bench-json B.json -bench-scale # + the 1M-job/10k-node drain
//	clusterctl -trace-out run.json             # Perfetto trace of the first run
//	clusterctl -explain 7                      # why job 7 waited, pass by pass
//	clusterctl -metrics-out -                  # Prometheus metrics to stdout
//
// Subcommands turn the same scheduler into a live daemon and talk to
// it over HTTP (see serve.go):
//
//	clusterctl serve -nodes 32 -compress 60    # real-time submit/cancel/query daemon
//	clusterctl submit -gang 4 -est 30m         # POST a job to it
//	clusterctl queue                           # live queue snapshot
//	clusterctl info 7                          # one job, with its blocker breakdown
//	clusterctl cancel 7                        # withdraw it, wherever it is
//	clusterctl slam -jobs 200 -compress 5000   # SWF load generator, latency percentiles
//
// With -quantum the comparison table gains a run-to-completion EASY
// baseline row and a short-job wait column (jobs with estimates at or
// below the mix median), the population time-slicing exists to help.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gpucluster/internal/batch"
	"gpucluster/internal/netsim"
)

type result struct {
	placement batch.Placement
	policy    batch.Policy
	rep       batch.Report
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command behind a testable seam: flags parse from
// args, reports print to stdout, errors print to stderr, and the return
// value is the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	// Subcommand dispatch: "clusterctl serve" and its client verbs live
	// in serve.go; a bare flag invocation stays the classic one-shot
	// virtual-time study.
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, ok := subcommands[args[0]]
		if !ok {
			fmt.Fprintf(stderr, "clusterctl: unknown command %q (want serve, submit, cancel, queue, info, or slam — or flags only)\n", args[0])
			return 2
		}
		return cmd(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("clusterctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	nodes := fs.Int("nodes", 32, "cluster size (the paper's machine had 32 compute nodes)")
	jobs := fs.Int("jobs", 200, "number of jobs in the synthetic mixed batch")
	policy := fs.String("policy", "both", "queue policy: fifo, easy, conservative, fairshare, both (fifo+easy), or all")
	placement := fs.String("placement", "topo", "gang placement: first-fit, topo, or both (compare)")
	seed := fs.Int64("seed", 42, "workload generator seed")
	trunk := fs.Float64("trunk-slowdown", 1.1, "runtime multiplier for gangs spanning the stacking trunk")
	preempt := fs.Bool("preempt", false, "enable priority preemption with checkpoint/restart")
	quantum := fs.Duration("quantum", 0, "time-slice quantum for gang scheduling (0 disables; e.g. 300s)")
	suspendToHost := fs.Bool("suspend-to-host", false, "suspend checkpoint images into node RAM when they fit (requires -preempt or -quantum)")
	storeDuplex := fs.String("store-duplex", "full", "checkpoint-store link mode: full (independent read/write timelines) or half (one shared)")
	storeBW := fs.Float64("store-bandwidth", 0, "checkpoint-store link bandwidth in MB/s (0 uses the paper's Gigabit model)")
	tracePath := fs.String("trace", "", "replay an SWF-style workload trace instead of the synthetic mix")
	faultsPath := fs.String("faults", "", "inject failures from this fault trace file (crash/flap/trunk lines, seconds)")
	mtbf := fs.Duration("mtbf", 0, "generate a seeded failure storm with this per-machine MTBF (exclusive with -faults)")
	ckptInterval := fs.Duration("ckpt-interval", 0, "proactive checkpoint interval under failures (requires -faults or -mtbf)")
	execute := fs.Bool("execute", false, "actually run each job's workload on the functional simulators (use few jobs)")
	benchJSON := fs.String("bench-json", "", "write a scheduler throughput/makespan snapshot to this file and exit")
	benchScale := fs.Bool("bench-scale", false, "with -bench-json: also drain the pinned 1M-job queue on a 10k-node machine and record its jobs/s (takes minutes)")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event JSON (ui.perfetto.dev) of the first run to this file")
	explainID := fs.Int("explain", 0, "print the per-pass blocker breakdown for this job ID after the first run (0 disables)")
	metricsOut := fs.String("metrics-out", "", "write Prometheus text-format metrics of the first run to this file (- for stdout)")
	verbose := fs.Bool("v", false, "print the per-job table")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "clusterctl: "+format+"\n", a...)
		return 1
	}

	if *nodes <= 0 {
		return fail("-nodes %d: cluster size must be positive", *nodes)
	}
	if *jobs < 0 {
		return fail("-jobs %d: job count must be non-negative", *jobs)
	}
	duplex, err := validateCheckpointFlags(*suspendToHost, *preempt, *quantum, *storeDuplex, *storeBW)
	if err != nil {
		return fail("%v", err)
	}
	if *explainID < 0 {
		return fail("-explain %d: job IDs are positive", *explainID)
	}
	faults, err := resolveFaultFlags(*faultsPath, *mtbf, *ckptInterval, *nodes, *seed)
	if err != nil {
		return fail("%v", err)
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(stdout, *benchJSON, *nodes, *seed, *benchScale); err != nil {
			return fail("%v", err)
		}
		return 0
	}
	if *benchScale {
		return fail("-bench-scale only applies together with -bench-json")
	}

	var policies []batch.Policy
	switch *policy {
	case "both":
		policies = []batch.Policy{batch.FIFO, batch.Backfill}
	case "all":
		policies = batch.Policies()
	default:
		p, err := batch.ParsePolicy(*policy)
		if err != nil {
			return fail("%v", err)
		}
		policies = []batch.Policy{p}
	}
	placements := []batch.Placement{batch.PlaceFirstFit, batch.PlaceTopo}
	if *placement != "both" {
		p, err := batch.ParsePlacement(*placement)
		if err != nil {
			return fail("%v", err)
		}
		placements = []batch.Placement{p}
	}

	// One job-spec slice serves every scheduler run: Submit resolves
	// defaults into scheduler-owned fields, so the specs stay pristine
	// across replays.
	var mix []*batch.Job
	var actual func(*batch.Job, time.Duration) time.Duration
	if *tracePath != "" {
		recs, err := batch.LoadTrace(*tracePath)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return fail("-trace %s: no such file (give the path to an SWF workload trace, e.g. examples/traces/sample.swf)", *tracePath)
			}
			return fail("%v", err)
		}
		mix, actual = batch.TraceJobs(recs, *nodes)
		fmt.Fprintf(stdout, "clusterctl: replaying %d trace jobs from %s on %d nodes\n\n", len(mix), *tracePath, *nodes)
	} else {
		mix = batch.SyntheticMix(*seed, *jobs, *nodes)
		fmt.Fprintf(stdout, "clusterctl: %d jobs on %d nodes (seed %d)\n\n", *jobs, *nodes, *seed)
	}
	if *execute {
		shrink(mix, *nodes)
	}
	var ckptCost, restCost func(*batch.Job) time.Duration
	if *storeBW > 0 {
		ckptCost, restCost = batch.ScaledStoreCosts(*storeBW)
	}
	// Observability attaches to the first run of the grid (with one
	// policy and one placement — the recommended way to use these
	// flags — that IS the run): the recorder feeds -trace-out and
	// -explain, the registry feeds -metrics-out.
	var rec *batch.MemRecorder
	if *traceOut != "" || *explainID > 0 {
		rec = &batch.MemRecorder{}
	}
	var reg *batch.Registry
	if *metricsOut != "" {
		reg = batch.NewRegistry()
	}
	// One config builder serves every run, so a future knob cannot be
	// wired into the policy grid but silently left off the baseline.
	makeConfig := func(pol batch.Policy, plc batch.Placement, quantum time.Duration) batch.Config {
		return batch.Config{
			Cluster:            batch.NewCluster(*nodes, netsim.GigabitSwitch(*nodes)),
			Policy:             pol,
			Placement:          plc,
			Actual:             actual,
			TrunkSlowdown:      *trunk,
			Preempt:            *preempt,
			Quantum:            quantum,
			SuspendToHost:      *suspendToHost,
			StoreDuplex:        duplex,
			CheckpointCost:     ckptCost,
			RestoreCost:        restCost,
			Faults:             faults,
			CheckpointInterval: *ckptInterval,
		}
	}
	runMix := func(cfg batch.Config) (batch.Report, error) {
		s := batch.New(cfg)
		for _, j := range mix {
			if err := s.Submit(j); err != nil {
				return batch.Report{}, err
			}
		}
		return s.Run(), nil
	}
	var results []result
	var firstRep batch.Report                         // the instrumented run's report
	rtcEasy := make(map[batch.Placement]batch.Report) // run-to-completion baseline under -quantum
	for _, plc := range placements {
		for _, pol := range policies {
			cfg := makeConfig(pol, plc, *quantum)
			if *execute {
				cfg.Execute = batch.SimExecutor{TracerParticles: 1000}
			}
			if len(results) == 0 {
				// Assign through the nil checks: a typed-nil
				// *MemRecorder stored in the interface field would
				// defeat the scheduler's rec != nil fast path.
				if rec != nil {
					cfg.Recorder = rec
				}
				cfg.Metrics = reg
			}
			rep, err := runMix(cfg)
			if err != nil {
				return fail("%v", err)
			}
			fmt.Fprint(stdout, rep)
			if *verbose {
				printJobs(stdout, rep)
			}
			fmt.Fprintln(stdout)
			if len(results) == 0 {
				firstRep = rep
			}
			results = append(results, result{placement: plc, policy: pol, rep: rep})
		}
		if *quantum > 0 {
			rep, err := runMix(makeConfig(batch.Backfill, plc, 0))
			if err != nil {
				return fail("%v", err)
			}
			rtcEasy[plc] = rep
		}
	}

	if len(policies) > 1 || *quantum > 0 {
		row := func(label string, f, r batch.Report) {
			fmt.Fprintf(stdout, "  %-13s makespan %8v (%s), utilization %5.1f%%, avg wait %8v, short wait %8v, ckpt wait %-11s %d backfilled, %d preempted, %d sliced\n",
				label, batch.RoundDuration(r.Makespan), gain(f.Makespan, r.Makespan),
				100*r.Utilization, batch.RoundDuration(r.AvgWait),
				batch.RoundDuration(r.ShortWait), ckptWaitCol(r)+",",
				r.Backfilled, r.Preempted, r.Sliced)
		}
		for _, plc := range placements {
			f := find(results, plc, policies[0])
			fmt.Fprintf(stdout, "policy comparison (placement %s, baseline %s; short = est <= %v):\n",
				plc, policies[0], batch.RoundDuration(f.ShortCut))
			for _, pol := range policies {
				row(pol.String(), f, find(results, plc, pol))
			}
			if *quantum > 0 {
				base := rtcEasy[plc]
				row("easy/rtc", f, base)
				for _, pol := range policies {
					if pol != batch.Backfill {
						continue
					}
					r := find(results, plc, pol)
					fmt.Fprintf(stdout, "  timeslice quantum %v vs run-to-completion easy: short-job avg wait %v -> %v (%s)\n",
						*quantum, batch.RoundDuration(base.ShortWait),
						batch.RoundDuration(r.ShortWait),
						gain(base.ShortWait, r.ShortWait))
				}
			}
		}
	}
	if len(placements) == 2 {
		for _, pol := range policies {
			ff := find(results, batch.PlaceFirstFit, pol)
			tp := find(results, batch.PlaceTopo, pol)
			fmt.Fprintf(stdout, "policy %s, topo vs first-fit: makespan %v -> %v (%s), utilization %.1f%% -> %.1f%%, trunk-crossing gangs %d -> %d, split gangs %d\n",
				pol, batch.RoundDuration(ff.Makespan), batch.RoundDuration(tp.Makespan),
				gain(ff.Makespan, tp.Makespan),
				100*ff.Utilization, 100*tp.Utilization,
				ff.TrunkCrossed, tp.TrunkCrossed, tp.SplitGangs)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fail("-trace-out: %v", err)
		}
		werr := firstRep.WriteChromeTrace(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fail("-trace-out %s: %v", *traceOut, werr)
		}
		fmt.Fprintf(stdout, "clusterctl: wrote Chrome trace %s (%d events; open in ui.perfetto.dev)\n",
			*traceOut, len(firstRep.Events))
	}
	if *explainID > 0 {
		known := false
		for _, j := range firstRep.Jobs {
			if j.ID == *explainID {
				known = true
				break
			}
		}
		if !known {
			return fail("-explain %d: no such job (the run had IDs 1..%d)", *explainID, len(firstRep.Jobs))
		}
		e := firstRep.Explain(*explainID)
		fmt.Fprintln(stdout, e)
		if dom := e.Dominant(); dom != batch.ReasonNone {
			fmt.Fprintf(stdout, "  dominant blocker: %s\n", dom)
		}
	}
	if *metricsOut != "" {
		w := stdout
		var f *os.File
		if *metricsOut != "-" {
			f, err = os.Create(*metricsOut)
			if err != nil {
				return fail("-metrics-out: %v", err)
			}
			w = f
		}
		werr := reg.WritePrometheus(w)
		if f != nil {
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
		}
		if werr != nil {
			return fail("-metrics-out %s: %v", *metricsOut, werr)
		}
		if f != nil {
			fmt.Fprintf(stdout, "clusterctl: wrote Prometheus metrics %s\n", *metricsOut)
		}
	}

	for _, r := range results {
		if r.rep.Failed > 0 {
			return 1
		}
	}
	return 0
}

// benchSnapshot is the BENCH_batch.json schema: scheduler throughput on
// a large queue, the default-mix makespan under every policy, and —
// since schema 2 — the checkpoint cost model's trajectory: store-link
// queue waits (drain + restore) and total checkpoint overhead from a
// contended preempt+quantum run per policy, with and without the
// suspend-to-host tier. Schema 3 adds the observability tax: the same
// throughput queue drained with a MemRecorder attached, so a recorder
// regression shows up next to the baseline it is promised to track
// within a few percent. Schema 4 adds the serving front door: submit-
// to-dispatch latency percentiles and accepted-job throughput from a
// pinned slam run against an in-process clusterctl-serve daemon.
// Schema 5 adds the datacenter-scale row: the pinned 1M-job/10k-node
// drain (indexed placement, incremental shadows, calendar event queue)
// and its jobs/s — zero in snapshots written without -bench-scale, so
// the quick bench job and the scale job share one schema.
// Schema 6 adds the failure-storm row: goodput, lost work, and
// availability from a pinned seeded storm (GenFaultPlan over the
// contended stream mix with proactive checkpointing on), so a recovery
// regression — more work lost, less goodput through the same storm —
// shows up in CI next to the fault-free baselines.
type benchSnapshot struct {
	Schema        int                `json:"schema"`
	Nodes         int                `json:"nodes"`
	Seed          int64              `json:"seed"`
	BenchJobs     int                `json:"bench_jobs"`
	WallMS        float64            `json:"wall_ms"`
	JobsPerSec    float64            `json:"jobs_per_sec"`
	RecWallMS     float64            `json:"recorder_wall_ms"`
	RecJobsPerSec float64            `json:"recorder_jobs_per_sec"`
	RecEvents     int                `json:"recorder_events"`
	MixJobs       int                `json:"mix_jobs"`
	MakespanMS    map[string]float64 `json:"makespan_ms"`
	AvgWaitMS     map[string]float64 `json:"avg_wait_ms"`
	Utilization   map[string]float64 `json:"utilization"`
	DrainWaitMS   map[string]float64 `json:"drain_wait_ms"`
	RestoreWaitMS map[string]float64 `json:"restore_wait_ms"`
	CkptOverhead  map[string]float64 `json:"ckpt_overhead_ms"`
	HostCkptOver  map[string]float64 `json:"ckpt_overhead_suspend_to_host_ms"`
	ServeP50MS    float64            `json:"serve_submit_p50_ms"`
	ServeP99MS    float64            `json:"serve_submit_p99_ms"`
	ServeJobsSec  float64            `json:"serve_jobs_per_sec"`
	// The schema-6 failure-storm row: a pinned seeded storm replay with
	// proactive checkpointing (virtual-time quality metrics, not wall
	// clock — deterministic for a given seed).
	GoodputJobsSec float64 `json:"goodput_jobs_per_sec"`
	LostWorkMS     float64 `json:"lost_work_ms"`
	Availability   float64 `json:"availability"`
	// Scale* record the -bench-scale drain (schema 5); all zero when the
	// snapshot was written without it.
	ScaleNodes         int     `json:"scale_nodes"`
	ScaleJobs          int     `json:"scale_jobs"`
	ScaleBackfillDepth int     `json:"scale_backfill_depth"`
	ScaleWallMS        float64 `json:"scale_wall_ms"`
	ScaleJobsPerSec    float64 `json:"scale_jobs_per_sec"`
}

// writeBenchJSON measures scheduling throughput (jobs/s through a
// 1000-job EASY queue, wall clock, with and without a recorder
// attached), the default-mix schedule quality under each policy, and
// the contended checkpoint cost model (preempt + 300s quantum, default
// perfmodel prices), then writes the snapshot for the CI artifact. With
// scale set it also drains the pinned datacenter-scale queue — the same
// configuration BenchmarkBatchThroughputScale pins — and records its
// jobs/s for the bench-scale regression gate.
func writeBenchJSON(stdout io.Writer, path string, nodes int, seed int64, scale bool) error {
	run := func(pol batch.Policy, count int, preempt bool, quantum time.Duration, suspend bool, rec batch.Recorder) (batch.Report, time.Duration, error) {
		s := batch.New(batch.Config{
			Cluster:       batch.NewCluster(nodes, netsim.GigabitSwitch(nodes)),
			Policy:        pol,
			TrunkSlowdown: 1.1,
			Preempt:       preempt,
			Quantum:       quantum,
			SuspendToHost: suspend,
			Recorder:      rec,
		})
		// The throughput/makespan rows replay the classic all-at-once
		// mix; the contended checkpoint rows need staggered arrivals,
		// or only fair-share's reordering ever drives a suspension.
		jobs := batch.SyntheticMix(seed, count, nodes)
		if preempt || quantum > 0 {
			jobs = batch.SyntheticStream(seed, count, nodes, 5*time.Second)
		}
		for _, j := range jobs {
			if err := s.Submit(j); err != nil {
				return batch.Report{}, 0, err
			}
		}
		t0 := time.Now()
		rep := s.Run()
		return rep, time.Since(t0), nil
	}
	const benchJobs = 1000
	_, wall, err := run(batch.Backfill, benchJobs, false, 0, false, nil)
	if err != nil {
		return err
	}
	recSink := &batch.MemRecorder{}
	recRep, recWall, err := run(batch.Backfill, benchJobs, false, 0, false, recSink)
	if err != nil {
		return err
	}
	snap := benchSnapshot{
		Schema:        6,
		Nodes:         nodes,
		Seed:          seed,
		BenchJobs:     benchJobs,
		WallMS:        float64(wall.Microseconds()) / 1e3,
		JobsPerSec:    benchJobs / wall.Seconds(),
		RecWallMS:     float64(recWall.Microseconds()) / 1e3,
		RecJobsPerSec: benchJobs / recWall.Seconds(),
		RecEvents:     len(recRep.Events),
		MixJobs:       200,
		MakespanMS:    map[string]float64{},
		AvgWaitMS:     map[string]float64{},
		Utilization:   map[string]float64{},
		DrainWaitMS:   map[string]float64{},
		RestoreWaitMS: map[string]float64{},
		CkptOverhead:  map[string]float64{},
		HostCkptOver:  map[string]float64{},
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	for _, pol := range batch.Policies() {
		rep, _, err := run(pol, snap.MixJobs, false, 0, false, nil)
		if err != nil {
			return err
		}
		snap.MakespanMS[pol.String()] = ms(rep.Makespan)
		snap.AvgWaitMS[pol.String()] = ms(rep.AvgWait)
		snap.Utilization[pol.String()] = rep.Utilization
		// The contended run drives both store-link directions; the
		// suspend-to-host rerun records what the RAM tier saves.
		ckpt, _, err := run(pol, snap.MixJobs, true, 300*time.Second, false, nil)
		if err != nil {
			return err
		}
		snap.DrainWaitMS[pol.String()] = ms(ckpt.DrainWait)
		snap.RestoreWaitMS[pol.String()] = ms(ckpt.RestoreWait)
		snap.CkptOverhead[pol.String()] = ms(ckpt.CheckpointOverhead + ckpt.DemotionTime)
		host, _, err := run(pol, snap.MixJobs, true, 300*time.Second, true, nil)
		if err != nil {
			return err
		}
		snap.HostCkptOver[pol.String()] = ms(host.CheckpointOverhead + host.DemotionTime)
	}
	serve, err := benchServe(nodes, seed)
	if err != nil {
		return err
	}
	snap.ServeP50MS = ms(serve.P50)
	snap.ServeP99MS = ms(serve.P99)
	snap.ServeJobsSec = serve.JobsPerSec
	// The schema-6 storm row: the contended stream mix through a pinned
	// seeded storm with proactive checkpointing. These are virtual-time
	// schedule-quality metrics, fully deterministic for the seed — any
	// drift is a recovery behavior change, not measurement noise. The
	// interval sits well under the quantum so proactive banks actually
	// arm before the slice boundary.
	storm := batch.New(batch.Config{
		Cluster:            batch.NewCluster(nodes, netsim.GigabitSwitch(nodes)),
		Policy:             batch.Backfill,
		Preempt:            true,
		Quantum:            300 * time.Second,
		Faults:             batch.GenFaultPlan(seed, nodes, 24*time.Hour, 10*time.Minute),
		CheckpointInterval: time.Minute,
	})
	for _, j := range batch.SyntheticStream(seed, snap.MixJobs, nodes, 5*time.Second) {
		if err := storm.Submit(j); err != nil {
			return err
		}
	}
	stormRep := storm.Run()
	snap.GoodputJobsSec = stormRep.Goodput
	snap.LostWorkMS = ms(stormRep.LostWork)
	snap.Availability = stormRep.Availability
	if scale {
		wall, err := runScaleBench(&snap)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "clusterctl: scale drain: %d jobs on %d nodes in %v (%.0f jobs/s)\n",
			snap.ScaleJobs, snap.ScaleNodes, wall.Round(time.Second), snap.ScaleJobsPerSec)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "clusterctl: wrote %s (%.0f jobs/s scheduling throughput, %.0f with recorder, easy makespan %.0f ms, serve p99 %.1f ms)\n",
		path, snap.JobsPerSec, snap.RecJobsPerSec, snap.MakespanMS["easy"], snap.ServeP99MS)
	return nil
}

// runScaleBench drains the pinned datacenter-scale queue — 1M jobs on
// 10k nodes under EASY backfill with the scan depth capped at 512, the
// exact configuration BenchmarkBatchThroughputScale pins — and fills
// the snapshot's Scale* fields. The depth cap bounds per-pass scan work
// (an unbounded backfill scan over a million-job queue is quadratic);
// it prunes effort only, never reorders the examined prefix
// (TestBackfillDepth). RunUntil is used instead of Run so the wall
// clock measures scheduling, not the copy of a million-entry report.
func runScaleBench(snap *benchSnapshot) (time.Duration, error) {
	const scaleNodes, scaleJobs, scaleDepth = 10_000, 1_000_000, 512
	s := batch.New(batch.Config{
		Cluster:       batch.NewCluster(scaleNodes, netsim.GigabitSwitch(scaleNodes)),
		Policy:        batch.Backfill,
		BackfillDepth: scaleDepth,
	})
	mix := batch.SyntheticMix(1, scaleJobs, scaleNodes)
	t0 := time.Now()
	for _, j := range mix {
		if err := s.Submit(j); err != nil {
			return 0, fmt.Errorf("scale bench submit: %w", err)
		}
	}
	s.RunUntil(batch.Forever)
	wall := time.Since(t0)
	for _, j := range mix {
		if j.State != batch.Done {
			return 0, fmt.Errorf("scale bench: %s ended %v, want done", j, j.State)
		}
	}
	snap.ScaleNodes = scaleNodes
	snap.ScaleJobs = scaleJobs
	snap.ScaleBackfillDepth = scaleDepth
	snap.ScaleWallMS = float64(wall.Microseconds()) / 1e3
	snap.ScaleJobsPerSec = scaleJobs / wall.Seconds()
	return wall, nil
}

// find returns the report for one (placement, policy) run.
func find(results []result, plc batch.Placement, pol batch.Policy) batch.Report {
	for _, r := range results {
		if r.placement == plc && r.policy == pol {
			return r.rep
		}
	}
	panic("clusterctl: missing run")
}

// gain renders the relative makespan improvement from base to improved,
// or "n/a" when the base is empty (e.g. -jobs 0).
func gain(base, improved time.Duration) string {
	if base <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(float64(improved)/float64(base)-1))
}

// ckptWaitCol renders a run's store-link queue waits as drain+restore,
// or "n/a" for a run with no checkpoint traffic at all (no preemptions,
// slices, or demotions means zero restores — a blank column would read
// as a perfectly contention-free protocol rather than an unused one).
func ckptWaitCol(r batch.Report) string {
	if r.PreemptEvents == 0 && r.SliceEvents == 0 && r.Demotions == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%v+%v", batch.RoundDuration(r.DrainWait), batch.RoundDuration(r.RestoreWait))
}

// resolveFaultFlags cross-checks the failure-injection knobs and builds
// the plan: -faults replays a trace file, -mtbf generates a seeded
// storm over a 24h horizon (the two are exclusive — a study is either
// pinned to a recorded storm or to the generator), and -ckpt-interval
// is meaningless without failures to survive (the scheduler would
// ignore it anyway: a fault-free run is bit-identical with the knob on
// or off).
func resolveFaultFlags(faultsPath string, mtbf, ckptInterval time.Duration, nodes int, seed int64) (*batch.FaultPlan, error) {
	if faultsPath != "" && mtbf != 0 {
		return nil, fmt.Errorf("-faults and -mtbf are mutually exclusive: replay a recorded storm or generate one, not both")
	}
	if mtbf < 0 {
		return nil, fmt.Errorf("-mtbf %v: mean time between failures must be positive", mtbf)
	}
	if ckptInterval < 0 {
		return nil, fmt.Errorf("-ckpt-interval %v: the interval must be positive", ckptInterval)
	}
	if ckptInterval > 0 && faultsPath == "" && mtbf == 0 {
		return nil, fmt.Errorf("-ckpt-interval needs failures to survive: add -faults or -mtbf")
	}
	switch {
	case faultsPath != "":
		plan, err := batch.LoadFaultPlan(faultsPath)
		if err != nil {
			return nil, err
		}
		return plan, nil
	case mtbf > 0:
		return batch.GenFaultPlan(seed, nodes, 24*time.Hour, mtbf), nil
	}
	return nil, nil
}

// validateCheckpointFlags cross-checks the checkpoint-model knobs:
// -suspend-to-host is meaningless without a suspension mechanism
// (-preempt or -quantum), the duplex mode must parse, and a negative
// store bandwidth is rejected (0 means "use the paper's Gigabit
// model").
func validateCheckpointFlags(suspendToHost, preempt bool, quantum time.Duration, duplex string, storeBW float64) (batch.Duplex, error) {
	d, err := batch.ParseDuplex(duplex)
	if err != nil {
		return 0, fmt.Errorf("-store-duplex %q: %v", duplex, err)
	}
	if suspendToHost && !preempt && quantum <= 0 {
		return 0, fmt.Errorf("-suspend-to-host needs a suspension mechanism: enable -preempt and/or -quantum")
	}
	if storeBW < 0 {
		return 0, fmt.Errorf("-store-bandwidth %g: bandwidth must be non-negative MB/s (0 selects the paper's Gigabit model)", storeBW)
	}
	return d, nil
}

// shrink scales a batch down to sizes the functional simulators can
// actually run in seconds.
func shrink(jobs []*batch.Job, clusterNodes int) {
	maxGang := 6
	if clusterNodes < maxGang {
		maxGang = clusterNodes
	}
	for _, j := range jobs {
		if j.Nodes > maxGang {
			j.Nodes = maxGang
		}
		switch j.Kind {
		case batch.KindLBM:
			j.Problem = [3]int{8, 8, 8}
			j.Steps = 4
		case batch.KindCG:
			j.Problem = [3]int{12, 12, 1}
			j.Steps = 1000
		case batch.KindPDE:
			j.Problem = [3]int{12, 12, 3}
			j.Steps = 6
		}
		j.Est = 0 // re-estimate for the shrunk problem
	}
}

func printJobs(w io.Writer, rep batch.Report) {
	fmt.Fprintf(w, "  %-4s %-10s %-6s %-5s %-6s %-5s %-9s %-9s %-9s %s\n",
		"id", "name", "user", "kind", "nodes", "prio", "wait", "runtime", "state", "detail")
	for _, j := range rep.Jobs {
		mark := ""
		if j.Backfilled() {
			mark = " *bf"
		}
		if j.Preemptions() > 0 {
			mark += fmt.Sprintf(" *pre%d", j.Preemptions())
		}
		if j.TimeSlices() > 0 {
			mark += fmt.Sprintf(" *ts%d", j.TimeSlices())
		}
		if !j.Alloc.Contiguous() {
			mark += " *split"
		}
		fmt.Fprintf(w, "  %-4d %-10s %-6s %-5s %-6d %-5d %-9v %-9v %-9s %s%s\n",
			j.ID, j.Name, j.User, j.Kind, j.Nodes, j.Priority,
			batch.RoundDuration(j.Wait()), batch.RoundDuration(j.Runtime()),
			j.State, j.Detail, mark)
	}
}

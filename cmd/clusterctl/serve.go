// The clusterctl subcommands put a live front door on the simulator:
// "serve" runs the scheduler as a real-time daemon on a wall clock,
// and submit/cancel/queue/info/slam are its HTTP clients. The flag-only
// invocation (no subcommand) remains the one-shot virtual-time study.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gpucluster/internal/batch"
	"gpucluster/internal/batch/server"
	"gpucluster/internal/netsim"
)

// subcommands dispatches the daemon-and-client verbs; anything else
// falls through to the classic flag-driven simulation run.
var subcommands = map[string]func(args []string, stdout, stderr io.Writer) int{
	"serve":  runServe,
	"submit": runSubmit,
	"cancel": runCancel,
	"queue":  runQueue,
	"info":   runInfo,
	"slam":   runSlam,
}

const defaultAddr = "127.0.0.1:8732"

func subFail(stderr io.Writer, cmd, format string, a ...any) int {
	fmt.Fprintf(stderr, "clusterctl %s: "+format+"\n", append([]any{cmd}, a...)...)
	return 1
}

// clientFlags registers the flags every client verb shares.
func clientFlags(fs *flag.FlagSet) (addr, token, user *string) {
	addr = fs.String("addr", defaultAddr, "daemon address (host:port)")
	token = fs.String("token", "", "bearer token (token-auth daemons)")
	user = fs.String("user", "", "submitter name (open-mode daemons)")
	return
}

func newClient(addr, token, user string) *server.Client {
	return &server.Client{Base: "http://" + addr, Token: token, User: user}
}

// ms renders a view's millisecond field as a duration.
func msDur(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }

func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clusterctl serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", defaultAddr, "listen address (host:port, :0 picks a free port)")
	nodes := fs.Int("nodes", 32, "cluster size")
	policy := fs.String("policy", "easy", "queue policy: fifo, easy, conservative, or fairshare")
	placement := fs.String("placement", "topo", "gang placement: first-fit or topo")
	trunk := fs.Float64("trunk-slowdown", 1.1, "runtime multiplier for gangs spanning the stacking trunk")
	preempt := fs.Bool("preempt", false, "enable priority preemption with checkpoint/restart")
	quantum := fs.Duration("quantum", 0, "time-slice quantum for gang scheduling (0 disables)")
	suspendToHost := fs.Bool("suspend-to-host", false, "suspend checkpoint images into node RAM when they fit")
	storeDuplex := fs.String("store-duplex", "full", "checkpoint-store link mode: full or half")
	storeBW := fs.Float64("store-bandwidth", 0, "checkpoint-store link bandwidth in MB/s (0 uses the paper's Gigabit model)")
	compress := fs.Float64("compress", 1, "virtual-per-wall time compression factor (1 = real time)")
	maxQueued := fs.Int("max-queued", 0, "per-user cap on queued-or-running jobs (0 = unlimited)")
	maxNodeSec := fs.Float64("max-node-seconds", 0, "per-user cap on committed node-seconds (0 = unlimited)")
	var tokens []string
	fs.Func("auth", "token=user pair enabling bearer-token auth (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want token=user, got %q", v)
		}
		tokens = append(tokens, v)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}
	pol, err := batch.ParsePolicy(*policy)
	if err != nil {
		return subFail(stderr, "serve", "%v", err)
	}
	plc, err := batch.ParsePlacement(*placement)
	if err != nil {
		return subFail(stderr, "serve", "%v", err)
	}
	duplex, err := validateCheckpointFlags(*suspendToHost, *preempt, *quantum, *storeDuplex, *storeBW)
	if err != nil {
		return subFail(stderr, "serve", "%v", err)
	}
	if *nodes <= 0 {
		return subFail(stderr, "serve", "-nodes %d: cluster size must be positive", *nodes)
	}
	if *compress <= 0 {
		return subFail(stderr, "serve", "-compress %g: compression must be positive", *compress)
	}
	var ckptCost, restCost func(*batch.Job) time.Duration
	if *storeBW > 0 {
		ckptCost, restCost = batch.ScaledStoreCosts(*storeBW)
	}
	cfg := server.Config{
		Batch: batch.Config{
			Cluster:        batch.NewCluster(*nodes, netsim.GigabitSwitch(*nodes)),
			Policy:         pol,
			Placement:      plc,
			TrunkSlowdown:  *trunk,
			Preempt:        *preempt,
			Quantum:        *quantum,
			SuspendToHost:  *suspendToHost,
			StoreDuplex:    duplex,
			CheckpointCost: ckptCost,
			RestoreCost:    restCost,
		},
		Compress: *compress,
		Quota:    server.Quota{MaxQueued: *maxQueued, MaxNodeSeconds: *maxNodeSec},
	}
	if len(tokens) > 0 {
		cfg.Tokens = make(map[string]string, len(tokens))
		for _, tv := range tokens {
			tok, user, _ := strings.Cut(tv, "=")
			cfg.Tokens[tok] = user
		}
	}
	srv := server.New(cfg)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return subFail(stderr, "serve", "%v", err)
	}
	auth := "open (X-User attribution)"
	if len(cfg.Tokens) > 0 {
		auth = fmt.Sprintf("bearer-token (%d users)", len(cfg.Tokens))
	}
	fmt.Fprintf(stdout, "clusterctl: serving %d-node %s cluster on http://%s (compress %gx, auth %s)\n",
		*nodes, pol, l.Addr(), *compress, auth)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	select {
	case err := <-errCh:
		if err != nil {
			return subFail(stderr, "serve", "%v", err)
		}
		return 0
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(stdout, "clusterctl: draining on signal")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := srv.Shutdown(sctx)
	if serr := <-errCh; err == nil {
		err = serr
	}
	if err != nil {
		return subFail(stderr, "serve", "drain: %v", err)
	}
	fmt.Fprint(stdout, rep)
	return 0
}

func runSubmit(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clusterctl submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr, token, user := clientFlags(fs)
	name := fs.String("name", "", "job name")
	kind := fs.String("kind", "lbm", "workload kind: lbm, cg, or pde")
	nodes := fs.Int("gang", 1, "gang width in nodes")
	prio := fs.Int("priority", 0, "priority (higher runs first)")
	est := fs.Duration("est", 0, "walltime estimate in virtual time (0 asks the scheduler's estimator)")
	steps := fs.Int("steps", 0, "workload step count (0 uses the kind's default)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	v, err := newClient(*addr, *token, *user).Submit(server.JobSpec{
		Name: *name, Kind: *kind, Nodes: *nodes, Priority: *prio,
		EstSeconds: est.Seconds(), Steps: *steps, User: *user,
	})
	if err != nil {
		return subFail(stderr, "submit", "%v", err)
	}
	fmt.Fprintf(stdout, "job %d %s: %s (%d nodes, est %v)\n", v.ID, v.Name, v.State, v.Nodes, msDur(v.EstMS))
	return 0
}

// argID parses the single positional job-ID argument of cancel/info.
func argID(fs *flag.FlagSet, cmd string, stderr io.Writer) (int, bool) {
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "clusterctl %s: want exactly one job ID argument\n", cmd)
		return 0, false
	}
	id, err := strconv.Atoi(fs.Arg(0))
	if err != nil || id <= 0 {
		fmt.Fprintf(stderr, "clusterctl %s: bad job ID %q\n", cmd, fs.Arg(0))
		return 0, false
	}
	return id, true
}

func runCancel(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clusterctl cancel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr, token, user := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	id, ok := argID(fs, "cancel", stderr)
	if !ok {
		return 1
	}
	v, err := newClient(*addr, *token, *user).Cancel(id)
	if err != nil {
		return subFail(stderr, "cancel", "%v", err)
	}
	fmt.Fprintf(stdout, "job %d %s: %s\n", v.ID, v.Name, v.State)
	return 0
}

func runQueue(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clusterctl queue", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr, token, user := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	q, err := newClient(*addr, *token, *user).Queue()
	if err != nil {
		return subFail(stderr, "queue", "%v", err)
	}
	fmt.Fprintf(stdout, "virtual now %v: %d queued, %d running, %d finished\n",
		batch.RoundDuration(msDur(q.NowMS)), q.Queued, q.Running, q.Finished)
	if len(q.Jobs) > 0 {
		fmt.Fprintf(stdout, "  %-4s %-10s %-6s %-5s %-6s %-8s %-9s %s\n",
			"id", "name", "user", "kind", "nodes", "state", "wait", "est")
		for _, j := range q.Jobs {
			fmt.Fprintf(stdout, "  %-4d %-10s %-6s %-5s %-6d %-8s %-9v %v\n",
				j.ID, j.Name, j.User, j.Kind, j.Nodes, j.State,
				batch.RoundDuration(msDur(j.WaitMS)), batch.RoundDuration(msDur(j.EstMS)))
		}
	}
	return 0
}

func runInfo(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clusterctl info", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr, token, user := clientFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	id, ok := argID(fs, "info", stderr)
	if !ok {
		return 1
	}
	v, err := newClient(*addr, *token, *user).Job(id)
	if err != nil {
		return subFail(stderr, "info", "%v", err)
	}
	fmt.Fprintf(stdout, "job %d %s: %s (user %s, kind %s, %d nodes, priority %d)\n",
		v.ID, v.Name, v.State, v.User, v.Kind, v.Nodes, v.Priority)
	fmt.Fprintf(stdout, "  submitted %v", batch.RoundDuration(msDur(v.SubmitMS)))
	if v.State != "queued" {
		fmt.Fprintf(stdout, ", started %v (waited %v)", batch.RoundDuration(msDur(v.StartMS)), batch.RoundDuration(msDur(v.WaitMS)))
	}
	if v.EndMS > 0 {
		fmt.Fprintf(stdout, ", ended %v", batch.RoundDuration(msDur(v.EndMS)))
	}
	fmt.Fprintln(stdout)
	if v.Preemptions > 0 || v.TimeSlices > 0 {
		fmt.Fprintf(stdout, "  %d preemptions, %d time slices\n", v.Preemptions, v.TimeSlices)
	}
	if v.Detail != "" {
		fmt.Fprintf(stdout, "  detail: %s\n", v.Detail)
	}
	if ex := v.Explain; ex != nil && ex.BlockedPasses > 0 {
		fmt.Fprintf(stdout, "  blocked on %d scheduler passes:", ex.BlockedPasses)
		for _, b := range ex.Blockers {
			fmt.Fprintf(stdout, " %s=%d", b.Reason, b.Passes)
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

func runSlam(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clusterctl slam", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr, token, _ := clientFlags(fs)
	tracePath := fs.String("trace", "", "SWF trace to replay (empty generates a synthetic one)")
	jobs := fs.Int("jobs", 120, "synthetic trace size when no -trace is given")
	users := fs.Int("users", 6, "synthetic trace user count")
	seed := fs.Int64("seed", 42, "synthetic trace seed")
	nodes := fs.Int("nodes", 32, "clamp gang widths to this cluster size (0 leaves them)")
	submitters := fs.Int("submitters", 8, "concurrent submitter goroutines")
	compress := fs.Float64("compress", 1000, "replay speed-up over the trace's arrival gaps")
	timeout := fs.Duration("timeout", 60*time.Second, "bound on the whole run, replay plus drain")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var recs []batch.TraceJob
	var err error
	if *tracePath != "" {
		recs, err = batch.LoadTrace(*tracePath)
	} else {
		var buf bytes.Buffer
		n := *nodes
		if n <= 0 {
			n = 32
		}
		if err = batch.WriteSyntheticSWF(&buf, *seed, *jobs, *users, n, 5); err == nil {
			recs, err = batch.ParseTrace(&buf)
		}
	}
	if err != nil {
		return subFail(stderr, "slam", "%v", err)
	}
	res, err := server.Slam(server.SlamConfig{
		Base: "http://" + *addr, Trace: recs, Submitters: *submitters,
		Compress: *compress, MaxNodes: *nodes, Token: *token, Timeout: *timeout,
	})
	if err != nil {
		return subFail(stderr, "slam", "%v", err)
	}
	fmt.Fprintln(stdout, res)
	return 0
}

// benchServe runs the pinned front-door load for the bench snapshot: a
// synthetic SWF replayed by 8 submitters at 20000x against an
// in-process daemon, measuring submit-to-dispatch latency through the
// full HTTP stack.
func benchServe(nodes int, seed int64) (server.SlamResult, error) {
	const compress = 20000
	var buf bytes.Buffer
	if err := batch.WriteSyntheticSWF(&buf, seed, 120, 6, nodes, 5); err != nil {
		return server.SlamResult{}, err
	}
	recs, err := batch.ParseTrace(&buf)
	if err != nil {
		return server.SlamResult{}, err
	}
	srv := server.New(server.Config{
		Batch: batch.Config{
			Cluster: batch.NewCluster(nodes, netsim.GigabitSwitch(nodes)),
			Policy:  batch.Backfill,
		},
		Compress: compress,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return server.SlamResult{}, err
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()
	res, err := server.Slam(server.SlamConfig{
		Base: "http://" + l.Addr().String(), Trace: recs, Submitters: 8,
		Compress: compress, MaxNodes: nodes, Timeout: 2 * time.Minute,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, serr := srv.Shutdown(ctx); err == nil {
		err = serr
	}
	if serr := <-errCh; err == nil {
		err = serr
	}
	return res, err
}

// Command batchlint is the driver for the batchlint analyzer suite
// (internal/lint): the scheduler's invariant ledger, enforced in the
// build instead of reviewer memory.
//
// It is a single binary speaking cmd/go's vettool protocol — the same
// contract golang.org/x/tools/go/analysis/unitchecker implements, done
// here with only the standard library so the repo keeps its
// zero-dependency go.mod. go vet drives it once per package with a
// JSON config file naming the sources and the export data of every
// dependency:
//
//	go build -o bin/batchlint ./cmd/batchlint
//	go vet -vettool=bin/batchlint ./...
//
// or, resolving the cached go-run binary:
//
//	go vet -vettool=$(go run ./cmd/batchlint -print-path) ./...
//
// Run with package patterns instead of a config file, it re-executes
// itself under go vet, so a bare
//
//	go run ./cmd/batchlint ./...
//
// also works. Findings print as file:line:col: [analyzer] message and
// exit with status 2, which fails go vet and therefore the CI lint
// job.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"gpucluster/internal/lint"
)

// vetConfig mirrors the JSON cmd/go writes for each vetted package
// (the x/tools unitchecker.Config contract).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	// The vettool handshake: cmd/go probes the tool's identity and
	// flag surface before handing it packages.
	for _, a := range args {
		switch {
		case a == "-V=full":
			// The printed line becomes part of go vet's cache key.
			fmt.Printf("batchlint version devel comments-go-here buildID=do-not-rely-on-this\n")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		case a == "-print-path":
			exe, err := os.Executable()
			if err != nil {
				fmt.Fprintln(os.Stderr, "batchlint:", err)
				os.Exit(1)
			}
			fmt.Println(exe)
			return
		case a == "-h" || a == "-help" || a == "--help":
			usage(os.Stdout)
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	// Package patterns (or nothing): re-exec under go vet, which
	// loads packages, builds export data, and calls back with configs.
	os.Exit(runPatterns(args))
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `batchlint enforces the batch scheduler's invariant ledger:

`)
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, `
usage:
  batchlint [packages]              lint packages (runs go vet -vettool on itself)
  go vet -vettool=batchlint ./...   the same, driven by go vet directly
  batchlint -print-path             print this executable's path (for -vettool=$(...))

Waive a finding in place, with a mandatory justification:
  //batchlint:allow <analyzer> -- <why the rule does not apply here>
`)
}

// runPatterns re-executes the tool under go vet for the given package
// patterns.
func runPatterns(patterns []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "batchlint:", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintln(os.Stderr, "batchlint:", err)
		return 1
	}
	return 0
}

// relevant reports whether any analyzer has rules for the package;
// everything else is acknowledged (vetx written) without being parsed.
func relevant(importPath string) bool {
	return importPath == "gpucluster/internal/batch" ||
		importPath == "gpucluster/internal/batch/server"
}

// runUnit handles one vet config invocation. Exit codes follow the
// unitchecker contract: 0 clean, 1 tool/typecheck failure, 2 findings.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "batchlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "batchlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the facts file to exist even though batchlint
	// produces no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "batchlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly || !relevant(cfg.ImportPath) {
		return 0
	}
	findings, err := analyzeUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "batchlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	return 2
}

// analyzeUnit parses and type-checks the unit from the config —
// dependencies come from the export data files cmd/go already built —
// and runs the full analyzer suite.
func analyzeUnit(cfg *vetConfig) ([]lint.Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return lint.Run(lint.Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, lint.Analyzers())
}

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the batchlint binary once per test run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "batchlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/batchlint: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolHandshake pins the identity probes cmd/go sends before
// handing the tool any packages.
func TestVettoolHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the tool")
	}
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !strings.HasPrefix(string(out), "batchlint version ") {
		t.Fatalf("-V=full printed %q, want a version line", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags printed %q, want []", out)
	}
}

// TestRepoVetsClean drives the real module through go vet -vettool:
// the committed tree must produce no findings.
func TestRepoVetsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("vets the full module")
	}
	bin := buildTool(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = filepath.Join("..", "..")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=batchlint ./...: %v\n%s", err, out)
	}
}

// TestSeededViolationFailsVet plants a deliberate determinism
// violation in a scratch module that reuses the real import path and
// checks the vet run fails with the expected finding — the shape the
// CI lint job relies on to gate merges.
func TestSeededViolationFailsVet(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets a scratch module")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module gpucluster\n\ngo 1.23\n")
	writeFile(t, filepath.Join(dir, "internal", "batch", "bad.go"), `package batch

import "time"

// Wall reads the wall clock inside the scheduler core: batchlint must
// refuse it.
func Wall() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("vet of seeded violation passed; want findings\n%s", out)
	}
	for _, wanted := range []string{"[determinism]", "time.Now reads the wall clock"} {
		if !strings.Contains(string(out), wanted) {
			t.Errorf("vet output missing %q:\n%s", wanted, out)
		}
	}
}

// TestSeededViolationAllowed re-runs the scratch-module scenario with
// a justified //batchlint:allow: the escape hatch must make the same
// tree pass.
func TestSeededViolationAllowed(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets a scratch module")
	}
	bin := buildTool(t)
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module gpucluster\n\ngo 1.23\n")
	writeFile(t, filepath.Join(dir, "internal", "batch", "bad.go"), `package batch

import "time"

// Wall samples the wall clock for an external gauge.
func Wall() time.Duration {
	t0 := time.Now() //batchlint:allow determinism -- scratch fixture: observation only, never scheduled on
	return time.Since(t0) //batchlint:allow determinism -- closes the sample above
}
`)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("vet of allowed violation failed: %v\n%s", err, out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

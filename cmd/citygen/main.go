// Command citygen generates the synthetic Times Square district and
// reports its statistics next to the paper's, optionally writing a
// footprint map as PPM.
package main

import (
	"flag"
	"fmt"
	"os"

	"gpucluster/internal/city"
	"gpucluster/internal/vis"
)

func main() {
	var (
		seed    = flag.Int64("seed", 2004, "generator seed")
		nx      = flag.Int("nx", 480, "lattice cells in x")
		ny      = flag.Int("ny", 400, "lattice cells in y")
		nz      = flag.Int("nz", 80, "lattice cells in z")
		spacing = flag.Float64("spacing", 3.8, "lattice spacing in meters")
		imgPath = flag.String("image", "", "write a footprint PPM here")
	)
	flag.Parse()

	c := city.Generate(city.Config{Seed: *seed})
	fmt.Printf("district: %.2f km x %.2f km (paper: 1.66 x 1.13)\n", c.WidthM/1000, c.DepthM/1000)
	fmt.Printf("blocks:   %d (paper: 91)\n", c.Blocks)
	fmt.Printf("buildings: %d (paper: ~850), tallest %.0f m\n", len(c.Buildings), c.MaxHeight())

	v := c.Voxelize(*nx, *ny, *nz, *spacing)
	fmt.Printf("lattice:  %dx%dx%d at %.1f m (paper: 480x400x80 at 3.8 m)\n", *nx, *ny, *nz, *spacing)
	fmt.Printf("footprint coverage: %.1f%% of ground cells, %.1f%% of volume solid\n",
		100*v.FootprintFraction(), 100*v.SolidFraction())

	if *imgPath != "" {
		im := vis.NewImage(*nx, *ny)
		for y := 0; y < *ny; y++ {
			for x := 0; x < *nx; x++ {
				if v.IsSolid(x, y, 0) {
					// Shade by the building height at this column.
					h := 0
					for z := 0; z < *nz && v.IsSolid(x, y, z); z++ {
						h = z
					}
					g := uint8(90 + 165*h / *nz)
					im.Set(x, y, vis.RGB{R: g, G: g, B: g})
				}
			}
		}
		out, err := os.Create(*imgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		defer out.Close()
		if err := im.WritePPM(out); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *imgPath)
	}
}

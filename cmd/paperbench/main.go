// Command paperbench regenerates every table and figure of the paper's
// evaluation (Section 4.4 and Section 5) plus the ablation experiments
// of DESIGN.md, printing paper-reported values next to the model's and
// the functional simulator's outputs.
//
// Usage:
//
//	paperbench            # run everything
//	paperbench -exp table1
//	paperbench -list
//
// Experiments: table1, table2, fig8, fig9, fig10, strongscaling,
// singlegpu, economics, dispersion, ablation-diagonal, ablation-barrier,
// ablation-shape, ablation-pcie.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"gpucluster/internal/city"
	"gpucluster/internal/cluster"
	"gpucluster/internal/lbm"
	"gpucluster/internal/perfmodel"
	"gpucluster/internal/sched"
	"gpucluster/internal/tracer"
	"gpucluster/internal/vecmath"
)

var sub80 = [3]int{80, 80, 80}

var experiments = map[string]func(){
	"table1":            table1,
	"table2":            table2,
	"fig8":              fig8,
	"fig9":              fig9,
	"fig10":             fig10,
	"strongscaling":     strongScaling,
	"singlegpu":         singleGPU,
	"economics":         economics,
	"dispersion":        dispersion,
	"ablation-diagonal": ablationDiagonal,
	"ablation-barrier":  ablationBarrier,
	"ablation-shape":    ablationShape,
	"ablation-pcie":     ablationPCIe,
}

// order fixes the -exp all sequence.
var order = []string{
	"table1", "table2", "fig8", "fig9", "fig10", "strongscaling",
	"singlegpu", "economics", "dispersion",
	"ablation-diagonal", "ablation-barrier", "ablation-shape", "ablation-pcie",
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (or 'all')")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()
	if *list {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}
	if *exp == "all" {
		for _, n := range order {
			experiments[n]()
			fmt.Println()
		}
		return
	}
	f, ok := experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	f()
}

func header(title string) {
	fmt.Println("=== " + title + " ===")
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func table1() {
	header("Table 1: per-step execution time (ms), 80^3 per node (model / paper)")
	h := perfmodel.Paper()
	rows := h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80)
	fmt.Printf("%5s | %11s | %11s %11s %13s %11s | %11s\n",
		"nodes", "CPU total", "GPU comp", "GPU<->CPU", "net nonovl", "GPU total", "speedup")
	for i, r := range rows {
		p := perfmodel.PaperTable1[i]
		fmt.Printf("%5d | %4.0f / %4.0f | %4.0f / %4.0f %4.0f / %4.0f %5.0f / %5.0f %4.0f / %4.0f | %4.2f / %4.2f\n",
			r.Nodes,
			ms(r.CPUTotal), p.CPUTotalMS,
			ms(r.GPUCompute), p.GPUComputeMS,
			ms(r.GPUCPUComm), p.GPUCPUCommMS,
			ms(r.NetNonOverlap), p.NetNonOverMS,
			ms(r.GPUTotal), p.GPUTotalMS,
			r.Speedup, p.SpeedupFactor)
	}
}

func table2() {
	header("Table 2: throughput, scaling speedup, efficiency (model / paper)")
	h := perfmodel.Paper()
	rows := perfmodel.Throughput(h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80))
	fmt.Printf("%5s | %15s | %13s | %13s\n", "nodes", "Mcells/s", "speedup", "efficiency")
	for i, r := range rows {
		p := perfmodel.PaperTable2[i]
		fmt.Printf("%5d | %5.1f / %5.1f | %5.2f / %5.2f | %4.1f%% / %4.1f%%\n",
			r.Nodes, r.CellsPerSec/1e6, p.CellsPerSec/1e6,
			r.Speedup, p.Speedup, 100*r.Efficiency, 100*p.Efficiency)
	}
}

func fig8() {
	header("Figure 8: network communication time (ms): overlapped vs non-overlapping")
	h := perfmodel.Paper()
	rows := h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80)
	fmt.Printf("%5s | %9s %12s %14s\n", "nodes", "total", "overlapped", "non-overlap")
	for _, r := range rows {
		over := r.NetTotal - r.NetNonOverlap
		fmt.Printf("%5d | %8.0f  %10.0f  %12.0f   %s\n",
			r.Nodes, ms(r.NetTotal), ms(over), ms(r.NetNonOverlap),
			bar(ms(r.NetTotal), 170, '#'))
	}
}

func fig9() {
	header("Figure 9: GPU cluster / CPU cluster speedup factor")
	h := perfmodel.Paper()
	for _, r := range h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80) {
		fmt.Printf("%5d | %5.2f  %s\n", r.Nodes, r.Speedup, bar(r.Speedup, 7, '*'))
	}
}

func fig10() {
	header("Figure 10: efficiency of the GPU cluster")
	h := perfmodel.Paper()
	rows := perfmodel.Throughput(h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80))
	for _, r := range rows {
		fmt.Printf("%5d | %5.1f%%  %s\n", r.Nodes, 100*r.Efficiency, bar(r.Efficiency, 1, '*'))
	}
}

func bar(v, max float64, c byte) string {
	n := int(v / max * 50)
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	return strings.Repeat(string(c), n)
}

func strongScaling() {
	header("Strong scaling (Sec 4.4): fixed 160x160x80 lattice (paper: 5.3 at 4 nodes -> 2.4 at 16)")
	h := perfmodel.Paper()
	rows, err := h.StrongScaling([3]int{160, 160, 80}, []int{4, 8, 16, 32})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%5s %12s %11s %11s %9s\n", "nodes", "sub-domain", "CPU (ms)", "GPU (ms)", "speedup")
	for _, r := range rows {
		fmt.Printf("%5d %4dx%3dx%3d %11.0f %11.0f %9.2f\n",
			r.Nodes, r.SubDomain[0], r.SubDomain[1], r.SubDomain[2],
			ms(r.CPUTotal), ms(r.GPUTotal), r.Speedup)
	}
}

func singleGPU() {
	header("Single GPU vs CPU (Sec 4.2)")
	h := perfmodel.Paper()
	r := h.SingleGPU()
	fmt.Printf("GPU rate: %.2f Mcells/s   CPU rate: %.2f Mcells/s   speedup: %.1fx\n",
		r.GPUCellsPerSec/1e6, r.CPUCellsPerSec/1e6, r.Speedup)
	fmt.Printf("texture-memory capacity: %d^3 lattice in 86 MB usable (paper: 92^3)\n", r.MaxLattice)
	fmt.Println("(paper reports ~8x for the newer FX 5900 Ultra vs a P4 2.53 GHz)")
}

func economics() {
	header("Economics (Sec 3)")
	e := perfmodel.Economics()
	fmt.Printf("added peak:   %.0f GFlops (32 x 16 GFlops GPUs)\n", e.AddedGFlops)
	fmt.Printf("added cost:   $%.0f (32 x $399)\n", e.AddedCostUSD)
	fmt.Printf("ratio:        %.1f MFlops peak/$ (paper: 41.1)\n", e.MFlopsPerDollar)
	fmt.Printf("cluster peak: %.0f GFlops (CPU+GPU)\n", e.TotalPeakGFlops)
}

func dispersion() {
	header("Dispersion (Sec 5, scaled-down functional run): synthetic Times Square")
	c := city.Generate(city.Config{})
	const nx, ny, nz = 96, 64, 16
	spacing := c.WidthM / float64(nx-16)
	vox := c.Voxelize(nx, ny, nz, spacing)
	fmt.Printf("city: %d blocks, %d buildings, tallest %.0f m\n",
		c.Blocks, len(c.Buildings), c.MaxHeight())
	fmt.Printf("lattice: %dx%dx%d at %.1f m spacing, %.1f%% solid\n",
		nx, ny, nz, spacing, 100*vox.SolidFraction())

	cfg := cluster.Config{
		Global:   [3]int{nx, ny, nz},
		Grid:     sched.NodeGrid{PX: 2, PY: 2, PZ: 1},
		Tau:      0.55,
		Geometry: vox.Geometry(),
	}
	// Northeasterly wind: inflow on +x face toward -x and -y.
	cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{-0.06, -0.02, 0}}
	cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceYNeg] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceZNeg] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceZPos] = lbm.FaceSpec{Type: lbm.Outflow}
	sim, err := cluster.New(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	const steps = 60
	t0 := time.Now()
	sim.Run(steps)
	wall := time.Since(t0)
	cells := nx * ny * nz
	fmt.Printf("flow: %d steps on %d nodes in %v (%.2f Mcells/s functional)\n",
		steps, cfg.Grid.Size(), wall.Round(time.Millisecond),
		float64(cells)*steps/wall.Seconds()/1e6)

	den := sim.GatherDensity()
	vel := sim.GatherVelocity()
	cloud := tracer.NewCloud(7)
	cloud.Release(nx-10, ny/2, 2, 3000)
	field := tracer.FromMacro(nx, ny, nz, den, vel, vox.IsSolid)
	for s := 0; s < 120; s++ {
		cloud.Step(field)
	}
	cen := cloud.Centroid()
	fmt.Printf("tracer: 3000 particles, centroid after 120 steps: (%.1f, %.1f, %.1f) — released at (%d, %d, 2)\n",
		cen[0], cen[1], cen[2], nx-10, ny/2)
	fmt.Println("(full-scale figure: 480x400x80 at 3.8 m on 30 nodes, 0.31 s/step modeled — see table1)")
}

func ablationDiagonal() {
	header("Ablation A1: indirect (paper) vs direct diagonal exchange — network ms")
	h := perfmodel.Paper()
	fmt.Printf("%5s %12s %12s\n", "nodes", "indirect", "direct")
	for _, row := range h.AblationDiagonal([]int{4, 8, 16, 24, 32}, sub80) {
		fmt.Printf("%5d %12.0f %12.0f\n", row.Nodes, ms(row.Baseline.NetTotal), ms(row.Variant.NetTotal))
	}
}

func ablationBarrier() {
	header("Ablation A2: barrier-synchronized vs free-running schedule — network ms (crossover ~16)")
	h := perfmodel.Paper()
	fmt.Printf("%5s %12s %12s\n", "nodes", "barrier", "free-run")
	for _, row := range h.AblationBarrier([]int{2, 4, 8, 12, 16, 20, 24, 32}, sub80) {
		fmt.Printf("%5d %12.1f %12.1f\n", row.Nodes, ms(row.Baseline.NetTotal), ms(row.Variant.NetTotal))
	}
}

func ablationShape() {
	header("Ablation A3: sub-domain shape at equal volume (8 nodes, 3D split)")
	h := perfmodel.Paper()
	for _, r := range h.AblationShape(8) {
		fmt.Printf("%-16s GPU total %6.0f ms (GPU<->CPU %4.0f, net %4.0f)\n",
			r.Label, ms(r.Breakdown.GPUTotal), ms(r.Breakdown.GPUCPUComm), ms(r.Breakdown.NetTotal))
	}
}

func ablationPCIe() {
	header("Ablation A4: AGP 8x vs PCI-Express x16 read-back (paper Sec 3/4.4 projection)")
	h := perfmodel.Paper()
	fmt.Printf("%5s %14s %14s %14s %14s\n", "nodes", "AGP comm", "PCIe comm", "AGP total", "PCIe total")
	for _, row := range h.AblationPCIe([]int{2, 8, 16, 30}, sub80) {
		fmt.Printf("%5d %14.0f %14.0f %14.0f %14.0f\n", row.Nodes,
			ms(row.Baseline.GPUCPUComm), ms(row.Variant.GPUCPUComm),
			ms(row.Baseline.GPUTotal), ms(row.Variant.GPUTotal))
	}
}

// Package gpucluster's top-level benchmarks regenerate each table and
// figure of the paper (through the calibrated performance model) and
// measure the functional simulators for real: one benchmark per
// table/figure plus micro-benchmarks of the kernels the per-experiment
// index in DESIGN.md references.
//
// Run: go test -bench=. -benchmem
package gpucluster

import (
	"fmt"
	"testing"

	"gpucluster/internal/batch"
	"gpucluster/internal/city"
	"gpucluster/internal/cluster"
	"gpucluster/internal/gpu"
	"gpucluster/internal/lbm"
	"gpucluster/internal/lbmgpu"
	"gpucluster/internal/netsim"
	"gpucluster/internal/perfmodel"
	"gpucluster/internal/sched"
	"gpucluster/internal/sparse"
	"gpucluster/internal/tracer"
	"gpucluster/internal/vecmath"
)

var sub80 = [3]int{80, 80, 80}

// sink defeats dead-code elimination.
var sink interface{}

// BenchmarkTable1 regenerates the Table 1 sweep (per-step CPU/GPU cluster
// times for 1..32 nodes) through the performance model.
func BenchmarkTable1(b *testing.B) {
	h := perfmodel.Paper()
	for i := 0; i < b.N; i++ {
		sink = h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80)
	}
}

// BenchmarkTable2 regenerates the throughput/efficiency table.
func BenchmarkTable2(b *testing.B) {
	h := perfmodel.Paper()
	for i := 0; i < b.N; i++ {
		sink = perfmodel.Throughput(h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80))
	}
}

// BenchmarkFig8NetworkSeries regenerates the Figure 8 network-time split.
func BenchmarkFig8NetworkSeries(b *testing.B) {
	h := perfmodel.Paper()
	for i := 0; i < b.N; i++ {
		rows := h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80)
		total := 0.0
		for _, r := range rows {
			total += r.NetTotal.Seconds() - r.NetNonOverlap.Seconds()
		}
		sink = total
	}
}

// BenchmarkFig9SpeedupSeries regenerates the Figure 9 speedup curve.
func BenchmarkFig9SpeedupSeries(b *testing.B) {
	h := perfmodel.Paper()
	for i := 0; i < b.N; i++ {
		rows := h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80)
		s := 0.0
		for _, r := range rows {
			s += r.Speedup
		}
		sink = s
	}
}

// BenchmarkFig10EfficiencySeries regenerates the Figure 10 curve.
func BenchmarkFig10EfficiencySeries(b *testing.B) {
	h := perfmodel.Paper()
	for i := 0; i < b.N; i++ {
		rows := perfmodel.Throughput(h.FixedSubDomainSweep(perfmodel.PaperNodeCounts, sub80))
		e := 0.0
		for _, r := range rows {
			e += r.Efficiency
		}
		sink = e
	}
}

// BenchmarkStrongScaling regenerates the Section 4.4 fixed-problem sweep.
func BenchmarkStrongScaling(b *testing.B) {
	h := perfmodel.Paper()
	for i := 0; i < b.N; i++ {
		rows, err := h.StrongScaling([3]int{160, 160, 80}, []int{4, 8, 16, 32})
		if err != nil {
			b.Fatal(err)
		}
		sink = rows
	}
}

// BenchmarkAblations runs the four design-choice ablations (A1-A4).
func BenchmarkAblations(b *testing.B) {
	h := perfmodel.Paper()
	nodes := []int{4, 16, 32}
	for i := 0; i < b.N; i++ {
		sink = h.AblationDiagonal(nodes, sub80)
		sink = h.AblationBarrier(nodes, sub80)
		sink = h.AblationPCIe(nodes, sub80)
		sink = h.AblationShape(8)
	}
}

// BenchmarkSingleNodeCPUStep measures the real CPU reference step (the
// functional analog of Table 1's CPU column, scaled to 32^3).
func BenchmarkSingleNodeCPUStep(b *testing.B) {
	l := lbm.New(32, 32, 32, 0.8)
	l.Init(1, vecmath.Vec3{0.02, 0, 0})
	b.SetBytes(int64(l.Cells()) * lbm.Q * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step()
	}
	b.ReportMetric(float64(l.Cells())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

// BenchmarkSingleNodeGPUStep measures the simulated-GPU step (the
// functional analog of Table 1's GPU computation column, scaled to 16^3;
// the simulated GPU pays interpreter overhead per fragment).
func BenchmarkSingleNodeGPUStep(b *testing.B) {
	host := lbm.New(16, 16, 16, 0.8)
	host.Init(1, vecmath.Vec3{0.02, 0, 0})
	sim, err := lbmgpu.New(gpu.New(gpu.Config{TextureMemory: 256 << 20}), host)
	if err != nil {
		b.Fatal(err)
	}
	noop := func(int) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(noop)
	}
	b.ReportMetric(float64(16*16*16)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

// BenchmarkClusterStep measures the functional parallel LBM across node
// counts (weak scaling, 16^3 per node — the laptop-scale Table 1).
func BenchmarkClusterStep(b *testing.B) {
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			g := sched.Arrange2D(nodes)
			cfg := cluster.Config{
				Global: [3]int{16 * g.PX, 16 * g.PY, 16},
				Grid:   g,
				Tau:    0.8,
			}
			cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{0.03, 0, 0}}
			cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Outflow}
			sim, err := cluster.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			cells := float64(cfg.Global[0] * cfg.Global[1] * cfg.Global[2])
			b.ResetTimer()
			sim.Run(b.N)
			b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mcells/s")
		})
	}
}

// BenchmarkCollisionKernel measures the BGK and MRT collision operators.
func BenchmarkCollisionKernel(b *testing.B) {
	var f, post, feq [lbm.Q]float32
	lbm.Feq(&f, 1, 0.05, 0.01, -0.02)
	b.Run("BGK", func(b *testing.B) {
		omega := float32(1 / 0.8)
		for i := 0; i < b.N; i++ {
			rho, ux, uy, uz := lbm.Moments(&f)
			lbm.Feq(&feq, rho, ux, uy, uz)
			for k := 0; k < lbm.Q; k++ {
				post[k] = f[k] - omega*(f[k]-feq[k])
			}
		}
		sink = post
	})
	b.Run("MRT", func(b *testing.B) {
		mrt := lbm.NewMRT(0.8)
		for i := 0; i < b.N; i++ {
			rho, ux, uy, uz := lbm.Moments(&f)
			mrt.Collide(&f, &post, rho, ux, uy, uz)
		}
		sink = post
	})
}

// BenchmarkBorderExchange measures the pack/exchange/unpack cycle the
// cluster performs each step (one 32^2 face).
func BenchmarkBorderExchange(b *testing.B) {
	l := lbm.New(32, 32, 32, 0.8)
	l.Init(1, vecmath.Vec3{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := l.PackBorder(0, +1)
		l.UnpackGhost(0, -1, data)
	}
}

// BenchmarkGPUBorderGather measures the paper's border-gather pass plus
// single read-back on the simulated GPU.
func BenchmarkGPUBorderGather(b *testing.B) {
	host := lbm.New(24, 24, 24, 0.8)
	host.Init(1, vecmath.Vec3{})
	sim, err := lbmgpu.New(gpu.New(gpu.Config{TextureMemory: 512 << 20}), host)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = sim.PackBorder(0, +1)
	}
}

// BenchmarkGPUPass measures a raw fragment-program pass (gather stencil
// over 256x256).
func BenchmarkGPUPass(b *testing.B) {
	dev := gpu.New(gpu.Config{TextureMemory: 64 << 20})
	tex, _ := dev.NewTexture2D("t", 256, 256)
	pb, _ := dev.NewPBuffer("p", 256, 256)
	prog := func(t []gpu.Sampler, x, y int) vecmath.Vec4 {
		return t[0].Fetch(x-1, y).Add(t[0].Fetch(x+1, y)).Scale(0.5)
	}
	b.SetBytes(256 * 256 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dev.Run(gpu.Pass{Target: pb, Textures: []gpu.Sampler{tex}, Program: prog}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispersionTracer measures tracer propagation (Section 5).
func BenchmarkDispersionTracer(b *testing.B) {
	l := lbm.New(48, 32, 16, 0.8)
	l.Init(1, vecmath.Vec3{0.05, 0, 0})
	field := tracer.FromLattice(l)
	cloud := tracer.NewCloud(1)
	cloud.Release(4, 16, 8, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cloud.Step(field)
	}
	b.ReportMetric(1e4*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mparticles/s")
}

// BenchmarkCityVoxelize measures the urban-model rasterization.
func BenchmarkCityVoxelize(b *testing.B) {
	c := city.Generate(city.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = c.Voxelize(120, 100, 40, 15)
	}
}

// BenchmarkCGPoisson measures the serial CG solve (Section 6 solvers).
func BenchmarkCGPoisson(b *testing.B) {
	a := sparse.Poisson2D(24)
	x := make([]float32, a.Rows)
	for i := range x {
		x[i] = float32(i % 7)
	}
	rhs := a.MulVec(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := sparse.CG(a, rhs, 1e-6, 2000)
		if !st.Converged {
			b.Fatal("CG failed")
		}
	}
}

// BenchmarkBatchThroughput measures batch-scheduler throughput: jobs
// placed per second draining a 1000-job mixed queue (LBM, CG, PDE
// kinds) on a 32-node cluster under EASY backfill. Estimation runs
// through the perfmodel at submit; nothing executes.
func BenchmarkBatchThroughput(b *testing.B) {
	const jobs = 1000
	for i := 0; i < b.N; i++ {
		s := batch.New(batch.Config{
			Cluster: batch.NewCluster(32, netsim.GigabitSwitch(32)),
			Policy:  batch.Backfill,
		})
		for _, j := range batch.SyntheticMix(1, jobs, 32) {
			if err := s.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		rep := s.Run()
		if len(rep.Jobs) != jobs {
			b.Fatalf("finished %d of %d jobs", len(rep.Jobs), jobs)
		}
		sink = rep
	}
	b.ReportMetric(jobs*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkBatchThroughputScale is the datacenter-scale pin: one
// million queued jobs drained on a 10,000-node cluster under EASY
// backfill with a production-style bounded backfill depth
// (Config.BackfillDepth; unbounded scans are quadratic in queue depth
// and would take hours here). It exercises the free-range index, the
// incremental count-based shadow, the tombstoned queue, and the
// calendar event queue at the ROADMAP's target scale; the CI
// bench-scale job runs it once per PR and fails on >10% jobs/s
// regression against the committed baseline
// (.github/bench-baseline.json). RunUntil is used instead of Run so the
// measurement drains the scheduler without materializing a
// million-entry report copy.
func BenchmarkBatchThroughputScale(b *testing.B) {
	const (
		jobs  = 1_000_000
		nodes = 10_000
		depth = 512
	)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mix := batch.SyntheticMix(1, jobs, nodes)
		b.StartTimer()
		s := batch.New(batch.Config{
			Cluster:       batch.NewCluster(nodes, netsim.GigabitSwitch(nodes)),
			Policy:        batch.Backfill,
			BackfillDepth: depth,
		})
		for _, j := range mix {
			if err := s.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		s.RunUntil(batch.Forever)
		for _, j := range mix {
			if j.State != batch.Done {
				b.Fatalf("job %d ended %v, want done", j.ID, j.State)
			}
		}
	}
	b.ReportMetric(jobs*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkBatchThroughputRecorder is BenchmarkBatchThroughput with a
// MemRecorder attached — the observability tax when lifecycle tracing
// is on. Compare against the base benchmark (and the schema-3
// recorder_jobs_per_sec field of BENCH_batch.json) to see what a
// recorded run costs.
func BenchmarkBatchThroughputRecorder(b *testing.B) {
	const jobs = 1000
	rec := &batch.MemRecorder{}
	for i := 0; i < b.N; i++ {
		rec.Reset()
		s := batch.New(batch.Config{
			Cluster:  batch.NewCluster(32, netsim.GigabitSwitch(32)),
			Policy:   batch.Backfill,
			Recorder: rec,
		})
		for _, j := range batch.SyntheticMix(1, jobs, 32) {
			if err := s.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		rep := s.Run()
		if len(rep.Jobs) != jobs || len(rep.Events) == 0 {
			b.Fatalf("finished %d of %d jobs, %d events", len(rep.Jobs), jobs, len(rep.Events))
		}
		sink = rep
	}
	b.ReportMetric(jobs*float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkGPUMatVec measures the indirection-texture sparse matvec.
func BenchmarkGPUMatVec(b *testing.B) {
	dev := gpu.New(gpu.Config{TextureMemory: 128 << 20})
	a := sparse.Poisson2D(32)
	g, err := sparse.NewGPUMatVec(dev, a)
	if err != nil {
		b.Fatal(err)
	}
	defer g.Free()
	x := make([]float32, a.Cols)
	for i := range x {
		x[i] = float32(i%13) * 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.MulVec(x); err != nil {
			b.Fatal(err)
		}
	}
}

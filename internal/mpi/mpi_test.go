package mpi

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float32{1, 2, 3})
		} else {
			got := c.Recv(0, 7)
			if len(got) != 3 || got[0] != 1 || got[2] != 3 {
				t.Errorf("recv = %v", got)
			}
		}
	})
}

func TestSendCopiesPayload(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float32{42}
			c.Send(1, 0, buf)
			buf[0] = -1 // mutating after send must not affect delivery
			c.Barrier()
		} else {
			c.Barrier()
			if got := c.Recv(0, 0); got[0] != 42 {
				t.Errorf("payload was not copied: %v", got)
			}
		}
	})
}

func TestRecvAnyTag(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 99, []float32{5})
		} else {
			if got := c.Recv(0, AnyTag); got[0] != 5 {
				t.Errorf("recv any = %v", got)
			}
		}
	})
}

func TestMessagesOrderedPerPair(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, i, []float32{float32(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := c.Recv(0, i); got[0] != float32(i) {
					t.Errorf("message %d out of order: %v", i, got)
				}
			}
		}
	})
}

func TestSendRecvExchange(t *testing.T) {
	// Pairwise exchange must not deadlock and must swap payloads.
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		mine := []float32{float32(c.Rank())}
		theirs := c.SendRecv(1-c.Rank(), 0, mine)
		if theirs[0] != float32(1-c.Rank()) {
			t.Errorf("rank %d got %v", c.Rank(), theirs)
		}
	})
}

func TestBarrierOrdering(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	var before, after int64
	w.Run(func(c *Comm) {
		atomic.AddInt64(&before, 1)
		c.Barrier()
		// After the barrier, every rank must have incremented.
		if got := atomic.LoadInt64(&before); got != n {
			t.Errorf("rank %d passed barrier with before=%d", c.Rank(), got)
		}
		atomic.AddInt64(&after, 1)
	})
	if after != n {
		t.Fatalf("after = %d", after)
	}
}

func TestBarrierReusable(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	var counter int64
	w.Run(func(c *Comm) {
		for round := 0; round < 5; round++ {
			atomic.AddInt64(&counter, 1)
			c.Barrier()
			want := int64(n * (round + 1))
			if got := atomic.LoadInt64(&counter); got < want {
				t.Errorf("round %d: counter %d < %d", round, got, want)
			}
			c.Barrier()
		}
	})
}

func TestBcast(t *testing.T) {
	w := NewWorld(5)
	w.Run(func(c *Comm) {
		var data []float32
		if c.Rank() == 2 {
			data = []float32{3.14, 2.71}
		}
		got := c.Bcast(2, data)
		if len(got) != 2 || got[0] != 3.14 {
			t.Errorf("rank %d bcast = %v", c.Rank(), got)
		}
	})
}

func TestGather(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		parts := c.Gather(0, []float32{float32(c.Rank() * 10)})
		if c.Rank() == 0 {
			for r, p := range parts {
				if p[0] != float32(r*10) {
					t.Errorf("gathered[%d] = %v", r, p)
				}
			}
		} else if parts != nil {
			t.Errorf("non-root got %v", parts)
		}
	})
}

func TestAllreduceSum(t *testing.T) {
	const n = 6
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		got := c.Allreduce([]float32{1, float32(c.Rank())}, Sum)
		if got[0] != n {
			t.Errorf("sum of ones = %v", got[0])
		}
		if got[1] != 15 { // 0+1+2+3+4+5
			t.Errorf("sum of ranks = %v", got[1])
		}
	})
}

func TestAllreduceMaxMin(t *testing.T) {
	w := NewWorld(4)
	w.Run(func(c *Comm) {
		mx := c.Allreduce([]float32{float32(c.Rank())}, Max)
		if mx[0] != 3 {
			t.Errorf("max = %v", mx[0])
		}
		mn := c.Allreduce([]float32{float32(c.Rank())}, Min)
		if mn[0] != 0 {
			t.Errorf("min = %v", mn[0])
		}
	})
}

func TestStatsAccounting(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 0, make([]float32, 100))
			c.Send(1, 1, make([]float32, 50))
		} else {
			c.Recv(0, 0)
			c.Recv(0, 1)
		}
	})
	s := w.Stats()
	if s[0].MessagesSent != 2 || s[0].FloatsSent != 150 {
		t.Errorf("rank 0 stats = %+v", s[0])
	}
	if s[1].MessagesSent != 0 {
		t.Errorf("rank 1 stats = %+v", s[1])
	}
}

func TestRecvTimeoutDetectsDeadlock(t *testing.T) {
	w := NewWorld(2, WithTimeout(50*time.Millisecond))
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected deadlock panic")
		}
		if !strings.Contains(p.(string), "timed out") {
			t.Fatalf("unexpected panic: %v", p)
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 0) // rank 1 never sends
		}
	})
}

func TestPanicAbortsBarrier(t *testing.T) {
	// A rank panicking must not leave the others hanging in Barrier.
	w := NewWorld(3, WithTimeout(2*time.Second))
	defer func() {
		if recover() == nil {
			t.Fatal("expected propagated panic")
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			panic("injected failure")
		}
		c.Barrier()
	})
}

func TestInvalidRankPanics(t *testing.T) {
	w := NewWorld(2, WithTimeout(time.Second))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid destination")
		}
	}()
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(5, 0, nil)
		}
	})
}

func TestSendToSelfPanics(t *testing.T) {
	w := NewWorld(1, WithTimeout(time.Second))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for self-send")
		}
	}()
	w.Run(func(c *Comm) {
		c.Send(0, 0, nil)
	})
}

func TestManyRanksAllToAllNeighbors(t *testing.T) {
	// A ring exchange with 16 ranks: each sends to its right neighbor and
	// receives from its left neighbor; values must travel the ring.
	const n = 16
	w := NewWorld(n)
	w.Run(func(c *Comm) {
		val := []float32{float32(c.Rank())}
		for step := 0; step < n; step++ {
			right := (c.Rank() + 1) % n
			left := (c.Rank() - 1 + n) % n
			c.Send(right, step, val)
			val = c.Recv(left, step)
		}
		// After n steps the value returns home.
		if val[0] != float32(c.Rank()) {
			t.Errorf("rank %d ring value = %v", c.Rank(), val[0])
		}
	})
}

// Package mpi is a message-passing runtime in the style of the MPI subset
// the paper's parallel LBM uses: point-to-point Send/Recv with tags,
// pairwise SendRecv exchange, Barrier, and small collectives. Ranks are
// goroutines inside one process; channels replace the Gigabit Ethernet
// switch for the functional simulation, while byte/message accounting is
// recorded so the network model (package netsim / perfmodel) can attach
// costs to the same traffic.
//
// Semantics: Send copies the payload and is asynchronous up to a bounded
// buffer (like MPI's eager protocol for small messages); Recv matches by
// (source, tag) and blocks. A watchdog fails Recv after a configurable
// timeout so that an incorrect communication schedule deadlocks loudly in
// tests instead of hanging forever.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// AnyTag matches any message tag in Recv.
const AnyTag = -1

// message is one in-flight point-to-point payload.
type message struct {
	tag  int
	data []float32
}

// RankStats counts traffic originated by one rank.
type RankStats struct {
	MessagesSent int64
	FloatsSent   int64 // payload volume, 4 bytes each
}

// World owns the mailboxes of a fixed-size group of ranks.
type World struct {
	size    int
	queues  [][]chan message // queues[dst][src]
	barrier *cyclicBarrier
	stats   []RankStats
	timeout time.Duration
}

// Option configures a World.
type Option func(*World)

// WithTimeout sets the Recv watchdog timeout (default 30s).
func WithTimeout(d time.Duration) Option {
	return func(w *World) { w.timeout = d }
}

// NewWorld creates a world of size ranks.
func NewWorld(size int, opts ...Option) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: invalid world size %d", size))
	}
	w := &World{
		size:    size,
		queues:  make([][]chan message, size),
		barrier: newCyclicBarrier(size),
		stats:   make([]RankStats, size),
		timeout: 30 * time.Second,
	}
	for dst := range w.queues {
		w.queues[dst] = make([]chan message, size)
		for src := range w.queues[dst] {
			// Eager buffering: pairwise exchanges (SendRecv) must not
			// deadlock, and the LBM schedule keeps at most a few
			// messages outstanding per pair.
			w.queues[dst][src] = make(chan message, 16)
		}
	}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns a snapshot of per-rank traffic counters.
func (w *World) Stats() []RankStats {
	out := make([]RankStats, w.size)
	for i := range out {
		out[i] = RankStats{
			MessagesSent: atomic.LoadInt64(&w.stats[i].MessagesSent),
			FloatsSent:   atomic.LoadInt64(&w.stats[i].FloatsSent),
		}
	}
	return out
}

// Run executes body once per rank, each on its own goroutine, and blocks
// until all ranks return. The first panic, if any, is re-raised on the
// caller's goroutine after all ranks have stopped or the panic is
// propagated (panics in a rank otherwise crash the process, which is what
// MPI programs do too — but re-raising centrally makes tests cleaner).
func (w *World) Run(body func(c *Comm)) {
	var wg sync.WaitGroup
	panics := make(chan interface{}, w.size)
	wg.Add(w.size)
	for r := 0; r < w.size; r++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- fmt.Sprintf("rank %d: %v", rank, p)
					// Unblock peers waiting on this rank.
					w.barrier.abort()
				}
			}()
			body(&Comm{world: w, rank: rank})
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// Comm is one rank's handle to the world.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.size }

// Send delivers a copy of data to rank dst with the given tag. It blocks
// only if the destination's mailbox for this source is full.
func (c *Comm) Send(dst, tag int, data []float32) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (size %d)", dst, c.world.size))
	}
	if dst == c.rank {
		panic("mpi: send to self is not supported; use local state")
	}
	buf := make([]float32, len(data))
	copy(buf, data)
	atomic.AddInt64(&c.world.stats[c.rank].MessagesSent, 1)
	atomic.AddInt64(&c.world.stats[c.rank].FloatsSent, int64(len(data)))
	select {
	case c.world.queues[dst][c.rank] <- message{tag: tag, data: buf}:
	case <-time.After(c.world.timeout):
		panic(fmt.Sprintf("mpi: rank %d send to %d tag %d timed out (mailbox full — deadlock?)",
			c.rank, dst, tag))
	}
}

// Recv blocks until a message from rank src with the given tag (or any
// tag if tag == AnyTag) arrives, and returns its payload. Messages from
// the same source are matched in arrival order; receiving a mismatched
// tag is an error because the deterministic schedules in this codebase
// never reorder tags within a pair.
func (c *Comm) Recv(src, tag int) []float32 {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d (size %d)", src, c.world.size))
	}
	select {
	case m := <-c.world.queues[c.rank][src]:
		if tag != AnyTag && m.tag != tag {
			panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d",
				c.rank, tag, src, m.tag))
		}
		return m.data
	case <-time.After(c.world.timeout):
		panic(fmt.Sprintf("mpi: rank %d recv from %d tag %d timed out (deadlock?)",
			c.rank, src, tag))
	}
}

// SendRecv exchanges payloads with a peer: sends sendData with tag and
// receives the peer's payload with the same tag. This is the primitive of
// the paper's pairwise communication schedule (Figure 7), where in each
// scheduled step certain pairs of nodes exchange data.
func (c *Comm) SendRecv(peer, tag int, sendData []float32) []float32 {
	c.Send(peer, tag, sendData)
	return c.Recv(peer, tag)
}

// Barrier blocks until every rank of the world has entered it; it models
// the paper's MPI_Barrier-based schedule synchronization (used below 16
// nodes).
func (c *Comm) Barrier() {
	c.world.barrier.await()
}

// Bcast broadcasts data from root: root's data is returned on every rank.
func (c *Comm) Bcast(root int, data []float32) []float32 {
	const tag = -1000 // internal tag range
	if c.rank == root {
		for r := 0; r < c.world.size; r++ {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		out := make([]float32, len(data))
		copy(out, data)
		return out
	}
	return c.Recv(root, tag)
}

// Gather collects each rank's payload at root; root receives a slice of
// per-rank payloads ordered by rank, others receive nil.
func (c *Comm) Gather(root int, data []float32) [][]float32 {
	const tag = -1001
	if c.rank == root {
		out := make([][]float32, c.world.size)
		out[root] = append([]float32(nil), data...)
		for r := 0; r < c.world.size; r++ {
			if r != root {
				out[r] = c.Recv(r, tag)
			}
		}
		return out
	}
	c.Send(root, tag, data)
	return nil
}

// ReduceOp is a binary, associative, commutative reduction operator.
type ReduceOp func(a, b float32) float32

// Sum is the addition reduce operator.
func Sum(a, b float32) float32 { return a + b }

// Max is the maximum reduce operator.
func Max(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// Min is the minimum reduce operator.
func Min(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

// Allreduce reduces data elementwise across all ranks and returns the
// reduced vector on every rank. Reduction happens in rank order at rank 0
// so the result is deterministic regardless of goroutine scheduling.
func (c *Comm) Allreduce(data []float32, op ReduceOp) []float32 {
	parts := c.Gather(0, data)
	if c.rank == 0 {
		acc := make([]float32, len(data))
		copy(acc, parts[0])
		for r := 1; r < c.world.size; r++ {
			if len(parts[r]) != len(acc) {
				panic(fmt.Sprintf("mpi: allreduce length mismatch: rank %d sent %d, want %d",
					r, len(parts[r]), len(acc)))
			}
			for i, v := range parts[r] {
				acc[i] = op(acc[i], v)
			}
		}
		return c.Bcast(0, acc)
	}
	return c.Bcast(0, nil)
}

// cyclicBarrier is a reusable all-rank barrier.
type cyclicBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	size    int
	count   int
	round   int
	aborted bool
}

func newCyclicBarrier(size int) *cyclicBarrier {
	b := &cyclicBarrier{size: size}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *cyclicBarrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic("mpi: barrier aborted (another rank panicked)")
	}
	round := b.round
	b.count++
	if b.count == b.size {
		b.count = 0
		b.round++
		b.cond.Broadcast()
		return
	}
	for b.round == round && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		panic("mpi: barrier aborted (another rank panicked)")
	}
}

// abort releases all waiters with a panic; called when a rank dies so the
// rest do not hang.
func (b *cyclicBarrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

package batch

import (
	"fmt"
	"testing"
	"time"
)

// Property tests over randomized arrival-staggered mixes, crossing
// every queue discipline with time-slicing and preemption on and off.
// The invariants are the ones the event loop's new notion of "running"
// (a gang may be resident-but-suspended) must never break:
//
//  1. single residency — a job never has two overlapping run segments,
//     no matter how many times it was suspended and redispatched;
//  2. capacity — reconstructed per-node occupancy never double-books a
//     node and per-node busy accounting never exceeds the makespan;
//  3. banked progress — every job's node-holding time is exactly its
//     true work plus the checkpoint/restore overhead charged to it
//     (nothing lost, nothing invented, across any number of slices
//     and preemptions).

// propertyConfigs enumerates the crossed scheduler configurations.
func propertyConfigs() []Config {
	ck, rs := fixedCosts(200*time.Millisecond, 100*time.Millisecond)
	hs, hr := fixedHostCosts(50*time.Millisecond, 25*time.Millisecond)
	var cfgs []Config
	for _, pol := range Policies() {
		for _, preempt := range []bool{false, true} {
			for _, quantum := range []time.Duration{0, 5 * time.Second} {
				for _, suspend := range []bool{false, true} {
					if suspend && !preempt && quantum == 0 {
						continue // no suspensions ever happen: inert
					}
					cfgs = append(cfgs, Config{
						Policy:          pol,
						Preempt:         preempt,
						Quantum:         quantum,
						SuspendToHost:   suspend,
						CheckpointCost:  ck,
						RestoreCost:     rs,
						HostSuspendCost: hs,
						HostResumeCost:  hr,
						// TrunkSlowdown stays off: with stretch factor 1
						// the progress invariant is exact, not
						// approximate.
					})
				}
			}
		}
	}
	return cfgs
}

func TestPropertyResidencyCapacityProgress(t *testing.T) {
	debugCheckIndex = true
	DebugVerifyShadows = true
	defer func() { debugCheckIndex = false; DebugVerifyShadows = false }()

	const nodes, count = 32, 200
	for _, cfg := range propertyConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%v/preempt=%v/quantum=%v/host=%v", cfg.Policy, cfg.Preempt, cfg.Quantum, cfg.SuspendToHost)
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				cfg.Cluster = newTestCluster(nodes)
				s := New(cfg)
				submitAll(t, s, SyntheticStream(seed, count, nodes, 5*time.Second))
				rep := s.Run()
				if len(rep.Jobs) != count || rep.Failed != 0 {
					t.Fatalf("seed %d: finished %d of %d jobs, %d failed", seed, len(rep.Jobs), count, rep.Failed)
				}
				checkNoOverlap(t, rep.Jobs, nodes) // capacity: no node double-booked
				for _, j := range rep.Jobs {
					if j.State != Done {
						t.Fatalf("seed %d: %s ended %v", seed, j, j.State)
					}
					// Single residency: run segments are disjoint and
					// ordered; segment count matches the suspension
					// history exactly.
					for i, seg := range j.History {
						if seg.End < seg.Start {
							t.Fatalf("seed %d: %s segment %d runs backwards: %+v", seed, j, i, seg)
						}
						if i > 0 && seg.Start < j.History[i-1].End {
							t.Fatalf("seed %d: %s resident twice: segment %d starts %v before segment %d ends %v",
								seed, j, i, seg.Start, i-1, j.History[i-1].End)
						}
					}
					if want := j.TimeSlices() + j.Preemptions() + j.Faults() + j.Banks() + 1; len(j.History) != want {
						t.Fatalf("seed %d: %s has %d segments, want %d (%d slices + %d preemptions + %d faults + %d banks + final)",
							seed, j, len(j.History), want, j.TimeSlices(), j.Preemptions(), j.Faults(), j.Banks())
					}
					// Banked progress: busy time == true runtime +
					// charged overhead (+ work faults destroyed, zero
					// here). The only slack allowed is the scheduler's
					// millisecond floor on degenerate sub-millisecond
					// segments.
					diff := j.BusyTime() - j.Estimate() - j.CheckpointOverhead() - j.LostWork()
					if diff < 0 {
						diff = -diff
					}
					if diff > 5*time.Millisecond {
						t.Fatalf("seed %d: %s busy %v != est %v + overhead %v (diff %v)",
							seed, j, j.BusyTime(), j.Estimate(), j.CheckpointOverhead(), diff)
					}
				}
				// Node-busy accounting never exceeds capacity.
				var totalBusy time.Duration
				for i, b := range rep.NodeBusy {
					if b < 0 || b > rep.Makespan {
						t.Fatalf("seed %d: node %d busy %v exceeds makespan %v", seed, i, b, rep.Makespan)
					}
					totalBusy += b
				}
				if limit := time.Duration(nodes) * rep.Makespan; totalBusy > limit {
					t.Fatalf("seed %d: total busy %v exceeds machine capacity %v", seed, totalBusy, limit)
				}
				if rep.Utilization <= 0 || rep.Utilization > 1 {
					t.Fatalf("seed %d: utilization %.3f out of range", seed, rep.Utilization)
				}
			}
		})
	}
}

// TestQuantumDeterminism extends the event-loop determinism guard to
// time-slicing: the same arrival-staggered mix under the same policy,
// quantum, and preemption setting twice must reproduce the makespan,
// the waits, every job's lifecycle, and every job's slice count — the
// property CI's -race job leans on to catch unsynchronized state.
func TestQuantumDeterminism(t *testing.T) {
	debugCheckIndex = true
	DebugVerifyShadows = true
	defer func() { debugCheckIndex = false; DebugVerifyShadows = false }()

	const nodes, count = 32, 200
	run := func(cfg Config, seed int64) Report {
		cfg.Cluster = newTestCluster(nodes)
		s := New(cfg)
		submitAll(t, s, SyntheticStream(seed, count, nodes, 5*time.Second))
		return s.Run()
	}
	for _, cfg := range propertyConfigs() {
		if cfg.Quantum == 0 && !cfg.Preempt {
			continue // covered by TestEventLoopDeterminism
		}
		a, b := run(cfg, 21), run(cfg, 21)
		if a.Makespan != b.Makespan || a.AvgWait != b.AvgWait || a.MaxWait != b.MaxWait {
			t.Fatalf("%v preempt=%v quantum=%v host=%v: replay diverged (%v/%v/%v vs %v/%v/%v)",
				cfg.Policy, cfg.Preempt, cfg.Quantum, cfg.SuspendToHost,
				a.Makespan, a.AvgWait, a.MaxWait, b.Makespan, b.AvgWait, b.MaxWait)
		}
		if a.SliceEvents != b.SliceEvents || a.PreemptEvents != b.PreemptEvents ||
			a.DrainWait != b.DrainWait || a.RestoreWait != b.RestoreWait ||
			a.HostSuspends != b.HostSuspends || a.Demotions != b.Demotions {
			t.Fatalf("%v preempt=%v quantum=%v host=%v: suspension accounting diverged (%d/%d/%v/%v/%d/%d vs %d/%d/%v/%v/%d/%d)",
				cfg.Policy, cfg.Preempt, cfg.Quantum, cfg.SuspendToHost,
				a.SliceEvents, a.PreemptEvents, a.DrainWait, a.RestoreWait, a.HostSuspends, a.Demotions,
				b.SliceEvents, b.PreemptEvents, b.DrainWait, b.RestoreWait, b.HostSuspends, b.Demotions)
		}
		byID := make(map[int]*Job, len(b.Jobs))
		for _, j := range b.Jobs {
			byID[j.ID] = j
		}
		for _, j := range a.Jobs {
			k := byID[j.ID]
			if k == nil || j.Start != k.Start || j.End != k.End || j.TimeSlices() != k.TimeSlices() {
				t.Fatalf("%v preempt=%v quantum=%v: job %d lifecycle/slices diverged",
					cfg.Policy, cfg.Preempt, cfg.Quantum, j.ID)
			}
		}
	}
}

// TestQuantumSliceCountsPlausible sanity-checks that the crossed
// property runs actually exercise the round-robin path: with a quantum
// on, at least one configuration must record slice suspensions (a
// vacuous property pass over schedules that never slice would prove
// nothing).
func TestQuantumSliceCountsPlausible(t *testing.T) {
	ck, rs := fixedCosts(200*time.Millisecond, 100*time.Millisecond)
	s := New(Config{Cluster: newTestCluster(32), Policy: Backfill,
		Quantum: 5 * time.Second, CheckpointCost: ck, RestoreCost: rs})
	submitAll(t, s, SyntheticStream(1, 200, 32, 5*time.Second))
	rep := s.Run()
	if rep.SliceEvents == 0 {
		t.Fatal("property mix never sliced under a 5s quantum — invariants are vacuous")
	}
	var sliced int
	for _, j := range rep.Jobs {
		if j.TimeSlices() > 0 {
			sliced++
		}
	}
	if sliced != rep.Sliced {
		t.Fatalf("report counts %d sliced jobs, per-job counts say %d", rep.Sliced, sliced)
	}
}

package batch

import (
	"bytes"
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"testing"
	"time"
)

// sampleTraceConfig mirrors the acceptance command
//
//	clusterctl -trace examples/traces/sample.swf -policy backfill -preempt -trace-out run.json
//
// so the golden trace below is byte-identical to what the CLI writes.
func sampleTraceRun(t *testing.T, rec Recorder) Report {
	t.Helper()
	recs, err := LoadTrace("../../examples/traces/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	jobs, actual := TraceJobs(recs, 32)
	s := New(Config{
		Cluster:       newTestCluster(32),
		Policy:        Backfill,
		Actual:        actual,
		TrunkSlowdown: 1.1,
		Preempt:       true,
		Recorder:      rec,
	})
	submitAll(t, s, jobs)
	return s.Run()
}

// TestChromeTraceGolden pins the Chrome trace-event export of the
// bundled sample trace byte for byte. Set REGEN_TRACE=1 to rewrite the
// golden file after an intentional exporter or scheduler change.
func TestChromeTraceGolden(t *testing.T) {
	const golden = "testdata/sample_trace.json"
	rep := sampleTraceRun(t, &MemRecorder{})
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("REGEN_TRACE") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	disk, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with REGEN_TRACE=1 to generate)", err)
	}
	if !bytes.Equal(disk, buf.Bytes()) {
		t.Fatalf("%s does not match the exporter's output (%d vs %d bytes); regenerate with REGEN_TRACE=1 after an intentional change",
			golden, len(disk), buf.Len())
	}
	// The golden bytes must also be what they claim: valid JSON with
	// job, node, and store-link (both directions) tracks present.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(disk, &doc); err != nil {
		t.Fatalf("golden trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	linkTids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		pids[e.Pid] = true
		if e.Pid == tracePidLink && e.Ph == "X" {
			linkTids[e.Tid] = true
		}
	}
	for _, pid := range []int{tracePidJobs, tracePidNodes, tracePidLink} {
		if !pids[pid] {
			t.Errorf("golden trace has no events for pid %d", pid)
		}
	}
	if !linkTids[traceTidWrite] || !linkTids[traceTidRead] {
		t.Errorf("store-link tracks incomplete: write=%v read=%v (a preempting backfill replay must drive both directions)",
			linkTids[traceTidWrite], linkTids[traceTidRead])
	}
}

// TestChromeTraceFaultGolden pins the exporter's fault tracks: the
// sample replay under a designed storm (two node crashes, one trunk
// outage, proactive checkpointing on) must export byte-identically,
// with "down" slices on the node track and a dedicated "trunk" thread
// carrying the outage window. Set REGEN_TRACE=1 to rewrite the golden
// after an intentional exporter or scheduler change.
func TestChromeTraceFaultGolden(t *testing.T) {
	const golden = "testdata/fault_trace.json"
	recs, err := LoadTrace("../../examples/traces/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	jobs, actual := TraceJobs(recs, 32)
	rec := &MemRecorder{}
	s := New(Config{
		Cluster:       newTestCluster(32),
		Policy:        Backfill,
		Actual:        actual,
		TrunkSlowdown: 1.1,
		Preempt:       true,
		Recorder:      rec,
		Faults: &FaultPlan{
			Crashes: []NodeFault{
				{Node: 3, At: 10 * time.Minute, Repair: 2 * time.Minute},
				{Node: 20, At: 25 * time.Minute, Repair: 90 * time.Second},
			},
			Trunks: []TrunkFault{{At: 35 * time.Minute, Duration: time.Minute}},
		},
		CheckpointInterval: 5 * time.Minute,
	})
	submitAll(t, s, jobs)
	rep := s.Run()
	if rep.NodeFaults != 2 || rep.TrunkOutages != 1 {
		t.Fatalf("storm applied %d node faults and %d trunk outages, want 2 and 1", rep.NodeFaults, rep.TrunkOutages)
	}
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("REGEN_TRACE") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	disk, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with REGEN_TRACE=1 to generate)", err)
	}
	if !bytes.Equal(disk, buf.Bytes()) {
		t.Fatalf("%s does not match the exporter's output (%d vs %d bytes); regenerate with REGEN_TRACE=1 after an intentional change",
			golden, len(disk), buf.Len())
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(disk, &doc); err != nil {
		t.Fatalf("golden fault trace is not valid JSON: %v", err)
	}
	downs, outages, trunkThread := 0, 0, false
	for _, e := range doc.TraceEvents {
		switch {
		case e.Pid == tracePidNodes && e.Ph == "X" && e.Name == "down":
			downs++
		case e.Pid == tracePidNodes && e.Ph == "X" && e.Name == "trunk outage":
			outages++
		case e.Ph == "M" && e.Name == "thread_name" && e.Args["name"] == "trunk":
			trunkThread = true
		}
	}
	if downs != 2 || outages != 1 || !trunkThread {
		t.Fatalf("fault tracks incomplete: %d down slices, %d outage slices, trunk thread %v (want 2, 1, true)",
			downs, outages, trunkThread)
	}
}

// TestEventStreamDeterminism replays the same mix twice under every
// policy, with and without preemption and time-slicing, and asserts the
// two recorded event streams are identical — the property the whole
// observability layer leans on (goldens, explanations, metrics all
// assume a replay reproduces its run).
func TestEventStreamDeterminism(t *testing.T) {
	const nodes = 32
	configs := []struct {
		name    string
		preempt bool
		quantum time.Duration
		suspend bool
	}{
		{"plain", false, 0, false},
		{"preempt", true, 0, false},
		{"quantum", false, 300 * time.Second, false},
		{"preempt+quantum+host", true, 300 * time.Second, true},
	}
	for _, pol := range Policies() {
		for _, cc := range configs {
			t.Run(pol.String()+"/"+cc.name, func(t *testing.T) {
				run := func() []Event {
					rec := &MemRecorder{}
					s := New(Config{
						Cluster:       newTestCluster(nodes),
						Policy:        pol,
						TrunkSlowdown: 1.1,
						Preempt:       cc.preempt,
						Quantum:       cc.quantum,
						SuspendToHost: cc.suspend,
						Recorder:      rec,
					})
					submitAll(t, s, SyntheticStream(11, 120, nodes, 5*time.Second))
					s.Run()
					return append([]Event(nil), rec.Events()...)
				}
				a, b := run(), run()
				if len(a) != len(b) {
					t.Fatalf("replay produced %d events, first run %d", len(b), len(a))
				}
				for i := range a {
					if !reflect.DeepEqual(a[i], b[i]) {
						t.Fatalf("event %d differs between replays:\n  first:  %+v\n  second: %+v", i, a[i], b[i])
					}
				}
			})
		}
	}
}

// TestRecorderLifecycleCoverage drives a contended run (preemption,
// time-slicing, suspend-to-host, staggered arrivals) and checks the
// recorded stream is a complete, consistent account of the schedule:
// every job submits and completes exactly once, dispatches pair with
// segment ends that reproduce History, drains match the report's
// suspension counts, and the store link's directions never double-book.
func TestRecorderLifecycleCoverage(t *testing.T) {
	const nodes = 32
	rec := &MemRecorder{}
	s := New(Config{
		Cluster:       newTestCluster(nodes),
		Policy:        Backfill,
		TrunkSlowdown: 1.1,
		Preempt:       true,
		Quantum:       300 * time.Second,
		SuspendToHost: true,
		Recorder:      rec,
	})
	jobs := SyntheticStream(3, 150, nodes, 5*time.Second)
	submitAll(t, s, jobs)
	rep := s.Run()
	events := rec.Events()
	if len(rep.Events) != len(events) {
		t.Fatalf("report copied %d events, recorder holds %d", len(rep.Events), len(events))
	}

	counts := map[int]map[EventKind]int{}
	type iv struct{ from, to time.Duration }
	var segs = map[int][]iv{}
	var writes, reads []iv
	cancelled := map[[2]int64]bool{} // (job, readStart µs) bookings released mid-restore
	drains, requeues, hostSuspends := 0, 0, 0
	lastPass := 0
	for _, ev := range events {
		if counts[ev.Job] == nil {
			counts[ev.Job] = map[EventKind]int{}
		}
		counts[ev.Job][ev.Kind]++
		switch ev.Kind {
		case EvSegmentEnd:
			segs[ev.Job] = append(segs[ev.Job], iv{ev.From, ev.To})
		case EvStoreWrite:
			writes = append(writes, iv{ev.From, ev.To})
		case EvStoreRead:
			if ev.Detail == "cancel" {
				cancelled[[2]int64{int64(ev.Job), int64(ev.From)}] = true
			} else {
				reads = append(reads, iv{ev.From, ev.To})
			}
		case EvDrainBegin:
			drains++
		case EvRequeue:
			requeues++
		case EvHostSuspend:
			hostSuspends++
		case EvBlocked:
			if ev.Pass < lastPass {
				t.Fatalf("pass numbers regressed: %d after %d", ev.Pass, lastPass)
			}
			lastPass = ev.Pass
			if ev.Reason == ReasonNone {
				t.Fatalf("EvBlocked for job %d carries ReasonNone", ev.Job)
			}
		}
	}

	for _, j := range rep.Jobs {
		c := counts[j.ID]
		if c[EvSubmit] != 1 || c[EvComplete] != 1 {
			t.Fatalf("job %d: %d submits, %d completes (want exactly 1 each)", j.ID, c[EvSubmit], c[EvComplete])
		}
		if c[EvDispatch] != len(j.History) || c[EvSegmentEnd] != len(j.History) {
			t.Fatalf("job %d: %d dispatches, %d segment ends, %d History segments",
				j.ID, c[EvDispatch], c[EvSegmentEnd], len(j.History))
		}
		for i, seg := range j.History {
			if got := segs[j.ID][i]; got.from != seg.Start || got.to != seg.End {
				t.Fatalf("job %d segment %d: events say [%v,%v), History says [%v,%v)",
					j.ID, i, got.from, got.to, seg.Start, seg.End)
			}
		}
	}
	if want := rep.PreemptEvents + rep.SliceEvents; drains != want {
		t.Fatalf("%d EvDrainBegin events, report counts %d suspensions", drains, want)
	}
	if drains != requeues {
		t.Fatalf("%d drains but %d requeues", drains, requeues)
	}
	if hostSuspends != rep.HostSuspends {
		t.Fatalf("%d EvHostSuspend events, report counts %d", hostSuspends, rep.HostSuspends)
	}
	if drains == 0 || hostSuspends == 0 || len(writes) == 0 || len(reads) == 0 {
		t.Fatalf("contended run exercised too little: drains=%d hostSuspends=%d writes=%d reads=%d",
			drains, hostSuspends, len(writes), len(reads))
	}

	// A direction's transfers serialize on its timeline, so recorded
	// intervals must never overlap. Cancelled read bookings gave their
	// tail back — a later read may legitimately start inside one — so
	// they are excluded above.
	checkSerial := func(name string, ivs []iv) {
		sort.Slice(ivs, func(i, k int) bool { return ivs[i].from < ivs[k].from })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].from < ivs[i-1].to {
				t.Fatalf("store-link %s direction double-booked: [%v,%v) overlaps [%v,%v)",
					name, ivs[i-1].from, ivs[i-1].to, ivs[i].from, ivs[i].to)
			}
		}
	}
	checkSerial("write", writes)
	kept := reads[:0]
	for _, r := range reads {
		keep := true
		for key := range cancelled {
			if time.Duration(key[1]) == r.from {
				keep = false
				break
			}
		}
		if keep {
			kept = append(kept, r)
		}
	}
	checkSerial("read", kept)
}

// TestReportTimeline covers the Report.Timeline accessor: the per-job
// view is exactly the job's events in stream order, and a run without a
// recorder yields an empty timeline rather than a panic.
func TestReportTimeline(t *testing.T) {
	rec := &MemRecorder{}
	rep := sampleTraceRun(t, rec)
	if len(rep.Jobs) == 0 {
		t.Fatal("no jobs in sample replay")
	}
	j := rep.Jobs[0]
	tl := rep.Timeline(j.ID)
	if len(tl) == 0 {
		t.Fatalf("job %d has an empty timeline", j.ID)
	}
	if tl[0].Kind != EvSubmit {
		t.Fatalf("timeline starts with %v, want submit", tl[0].Kind)
	}
	if last := tl[len(tl)-1]; last.Kind != EvComplete {
		t.Fatalf("timeline ends with %v, want complete", last.Kind)
	}
	want := 0
	for _, ev := range rep.Events {
		if ev.Job == j.ID {
			if !reflect.DeepEqual(tl[want], ev) {
				t.Fatalf("timeline[%d] = %+v, stream has %+v", want, tl[want], ev)
			}
			want++
		}
	}
	if want != len(tl) {
		t.Fatalf("timeline has %d events, stream holds %d for job %d", len(tl), want, j.ID)
	}
	// No recorder: empty timeline, no panic.
	bare := sampleTraceRun(t, nil)
	if tl := bare.Timeline(j.ID); len(tl) != 0 {
		t.Fatalf("recorder-less run produced a %d-event timeline", len(tl))
	}
}

// TestPassOnceZeroAllocNilRecorder pins the zero-cost-when-disabled
// claim: a scheduling pass over a blocked queue with no recorder and no
// metrics attached allocates nothing. (The queue is pre-sorted by a
// warmup pass; the lazily-sorted queue only re-sorts after a mutation.)
func TestPassOnceZeroAllocNilRecorder(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(4), Policy: FIFO})
	hog := &Job{Name: "hog", Kind: KindLBM, Nodes: 4, Est: time.Hour}
	blocked := &Job{Name: "blocked", Kind: KindCG, Nodes: 2, Est: time.Minute}
	submitAll(t, s, []*Job{hog, blocked})
	s.schedulePass() // hog starts, blocked parks; queue order cached
	if got := s.pending.len(); got != 1 {
		t.Fatalf("%d pending jobs after warmup, want 1", got)
	}
	if allocs := testing.AllocsPerRun(100, func() { s.passOnce() }); allocs != 0 {
		t.Fatalf("passOnce with nil recorder allocates %v times per pass, want 0", allocs)
	}
}

package batch

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// Mid-run cancellation tests: a cancel at any lifecycle point — queued,
// running, mid-drain, mid-restore — must free exactly the resources the
// job held and keep the banked-progress invariant: every canceled job's
// node-holding time equals the work it actually completed plus the
// overhead charged to it.

// checkCanceledAccounting asserts busy ≡ banked work + overhead for a
// canceled job (the Done-job invariant with doneWork standing in for
// the full estimate).
func checkCanceledAccounting(t *testing.T, j *Job) {
	t.Helper()
	if j.State != Canceled {
		t.Fatalf("%s ended %v, want canceled", j, j.State)
	}
	diff := j.BusyTime() - j.doneWork - j.CheckpointOverhead()
	if diff < 0 {
		diff = -diff
	}
	if diff > 5*time.Millisecond {
		t.Fatalf("%s busy %v != banked %v + overhead %v (diff %v)",
			j, j.BusyTime(), j.doneWork, j.CheckpointOverhead(), diff)
	}
	for i, seg := range j.History {
		if seg.End < seg.Start {
			t.Fatalf("%s segment %d runs backwards: %+v", j, i, seg)
		}
		if i > 0 && seg.Start < j.History[i-1].End {
			t.Fatalf("%s resident twice across cancel: segments %d/%d", j, i-1, i)
		}
	}
}

// TestCancelQueuedJob withdraws a job that never dispatched: it leaves
// the queue immediately, holds no nodes, and the machine schedules as
// if it never existed.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(4)})
	running := &Job{Name: "holds", Kind: KindPDE, Nodes: 4, Est: 10 * time.Second}
	waiting := &Job{Name: "waits", Kind: KindPDE, Nodes: 4, Est: 10 * time.Second}
	submitAll(t, s, []*Job{running, waiting})
	s.schedulePass() // dispatch the first; the second is queued behind it
	if running.State != Running || waiting.State != Queued {
		t.Fatalf("setup: %v/%v", running.State, waiting.State)
	}
	if err := s.Cancel(waiting.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if waiting.State != Canceled || len(waiting.History) != 0 {
		t.Fatalf("queued cancel left %v with %d segments", waiting.State, len(waiting.History))
	}
	rep := s.Run()
	if rep.Canceled != 1 || len(rep.Jobs) != 2 {
		t.Fatalf("report: %d canceled of %d jobs", rep.Canceled, len(rep.Jobs))
	}
	if rep.Makespan != 10*time.Second {
		t.Fatalf("canceled job distorted the schedule: makespan %v", rep.Makespan)
	}
	checkCanceledAccounting(t, waiting)
	if waiting.BusyTime() != 0 {
		t.Fatalf("never-dispatched job shows busy time %v", waiting.BusyTime())
	}
}

// TestCancelRunningGang cuts off a running gang: its nodes free at the
// cancel instant (the waiter starts right there), elapsed progress and
// overhead stay accounted, and the checkpoint image is discarded.
func TestCancelRunningGang(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(4)})
	victim := &Job{Name: "victim", Kind: KindPDE, Nodes: 4, Est: time.Hour}
	waiter := &Job{Name: "waiter", Kind: KindPDE, Nodes: 4, Est: 10 * time.Second, Submit: 2 * time.Second}
	submitAll(t, s, []*Job{victim, waiter})
	s.Step() // dispatch victim at 0, advance to waiter's arrival
	if victim.State != Running || s.Now() != 2*time.Second {
		t.Fatalf("setup: %v at %v", victim.State, s.Now())
	}
	if err := s.Cancel(victim.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	if victim.State != Canceled || victim.End != 2*time.Second {
		t.Fatalf("running cancel: state %v end %v", victim.State, victim.End)
	}
	if free := s.cfg.Cluster.FreeNodes(); free != 4 {
		t.Fatalf("cancel freed %d of 4 nodes", free)
	}
	rep := s.Run()
	if waiter.Start != 2*time.Second {
		t.Fatalf("waiter started %v, want the cancel instant", waiter.Start)
	}
	if rep.Canceled != 1 {
		t.Fatalf("report counts %d canceled", rep.Canceled)
	}
	checkCanceledAccounting(t, victim)
	if victim.BusyTime() != 2*time.Second {
		t.Fatalf("victim busy %v, want the 2s it actually held", victim.BusyTime())
	}
}

// TestCancelMidDrain cancels a job whose preemption checkpoint is
// draining: the drain completes (the link slot and nodes were already
// committed), then the job lands Canceled instead of requeueing, and
// the preemptor's wave settles normally.
func TestCancelMidDrain(t *testing.T) {
	ck, rs := fixedCosts(500*time.Millisecond, 200*time.Millisecond)
	s := New(Config{Cluster: newTestCluster(4), Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	low := &Job{Name: "low", Kind: KindPDE, Nodes: 4, Priority: 0, Est: time.Hour}
	high := &Job{Name: "high", Kind: KindPDE, Nodes: 4, Priority: 5, Est: 10 * time.Second, Submit: 2 * time.Second}
	submitAll(t, s, []*Job{low, high})
	s.Step()         // dispatch low, advance to high's arrival
	s.schedulePass() // high blocked -> low begins its checkpoint drain
	if !low.preempting {
		t.Fatalf("setup: low not draining (state %v)", low.State)
	}
	if err := s.Cancel(low.ID); err != nil {
		t.Fatalf("cancel mid-drain: %v", err)
	}
	if low.State != Running || !low.canceled {
		t.Fatal("mid-drain cancel should be deferred to the drain event")
	}
	rep := s.Run()
	if low.State != Canceled {
		t.Fatalf("low ended %v", low.State)
	}
	if low.End != 2*time.Second+500*time.Millisecond {
		t.Fatalf("low ended at %v, want drain end 2.5s", low.End)
	}
	if high.State != Done || high.Start != low.End {
		t.Fatalf("preemptor: %v start %v, want dispatch at the drain end", high.State, high.Start)
	}
	if high.wavePending || high.waveLeft != 0 {
		t.Fatal("wave never settled across the canceled victim")
	}
	if rep.Canceled != 1 || rep.PreemptEvents != 1 {
		t.Fatalf("report: %d canceled, %d preempt events", rep.Canceled, rep.PreemptEvents)
	}
	checkCanceledAccounting(t, low)
}

// TestCancelMidRestore cancels a preempted job inside its restore
// prefix at redispatch: the reload is abandoned, the untransferred
// read gives its link slot back, and the overhead refund keeps busy
// time exactly equal to charged overhead plus banked work.
func TestCancelMidRestore(t *testing.T) {
	ck, rs := fixedCosts(500*time.Millisecond, 30*time.Second)
	s := New(Config{Cluster: newTestCluster(4), Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	low := &Job{Name: "low", Kind: KindPDE, Nodes: 4, Priority: 0, Est: time.Hour}
	high := &Job{Name: "high", Kind: KindPDE, Nodes: 4, Priority: 5, Est: 10 * time.Second, Submit: 2 * time.Second}
	submitAll(t, s, []*Job{low, high})
	// Drive until low redispatches with its store-read restore prefix,
	// stopping right at the dispatch instant (Step's pass and advance
	// are atomic, so the loop is decomposed here).
	redispatched := func() bool { return low.State == Running && low.segRestore > 0 && len(low.History) > 0 }
	for i := 0; i < 50 && !redispatched(); i++ {
		s.settleDemotions()
		s.schedulePass()
		if redispatched() {
			break
		}
		next, ok := s.nextEvent()
		if !ok {
			break
		}
		s.advance(next)
	}
	if !redispatched() || low.readEnd == 0 {
		t.Fatalf("setup: low %v segRestore %v readEnd %v — never redispatched through a store read",
			low.State, low.segRestore, low.readEnd)
	}
	if s.Now() != low.segStart {
		t.Fatalf("clock %v moved past the redispatch instant %v", s.Now(), low.segStart)
	}
	if err := s.Cancel(low.ID); err != nil {
		t.Fatalf("cancel mid-restore: %v", err)
	}
	rep := s.Run()
	if rep.Canceled != 1 {
		t.Fatalf("report counts %d canceled", rep.Canceled)
	}
	checkCanceledAccounting(t, low)
	if rep.RestoreWait < 0 {
		t.Fatalf("restore-wait went negative after refund: %v", rep.RestoreWait)
	}
	// The abandoned read's slot must actually be free again: the link's
	// read timeline cannot extend past the cancel instant.
	if s.link.readFree > rep.Makespan {
		t.Fatalf("read link still booked to %v after cancel (makespan %v)", s.link.readFree, rep.Makespan)
	}
}

// TestCancelErrors pins the error surface: unknown IDs and
// already-terminal jobs are rejected, a double cancel included.
func TestCancelErrors(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(4)})
	if err := s.Cancel(42); !errors.Is(err, ErrNoSuchJob) {
		t.Fatalf("unknown ID: %v, want ErrNoSuchJob", err)
	}
	j := &Job{Name: "runs", Kind: KindPDE, Nodes: 2, Est: time.Second}
	submitAll(t, s, []*Job{j})
	s.Run()
	if err := s.Cancel(j.ID); !errors.Is(err, ErrJobTerminal) {
		t.Fatalf("done job: %v, want ErrJobTerminal", err)
	}
	k := &Job{Name: "goes", Kind: KindPDE, Nodes: 2, Est: time.Second}
	submitAll(t, s, []*Job{k})
	if err := s.Cancel(k.ID); err != nil {
		t.Fatalf("first cancel: %v", err)
	}
	if err := s.Cancel(k.ID); !errors.Is(err, ErrJobTerminal) {
		t.Fatalf("double cancel: %v, want ErrJobTerminal", err)
	}
}

// TestCancelPropertySweep drives the full crossed configuration matrix
// with cancels injected at three lifecycle points mid-run — a queued
// job, a running gang, and a draining victim — and re-checks the
// property-suite invariants: canceled jobs keep busy ≡ banked work +
// overhead, surviving jobs keep the full Done invariant, and no node is
// ever double-booked across the cancels.
func TestCancelPropertySweep(t *testing.T) {
	debugCheckIndex = true
	DebugVerifyShadows = true
	defer func() { debugCheckIndex = false; DebugVerifyShadows = false }()

	const nodes, count = 32, 150
	for _, cfg := range propertyConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%v/preempt=%v/quantum=%v/host=%v", cfg.Policy, cfg.Preempt, cfg.Quantum, cfg.SuspendToHost)
		t.Run(name, func(t *testing.T) {
			cfg.Cluster = newTestCluster(nodes)
			s := New(cfg)
			submitAll(t, s, SyntheticStream(3, count, nodes, 5*time.Second))
			canceled := make(map[int]bool)
			cancelOne := func(pick func() *Job) {
				if j := pick(); j != nil {
					if err := s.Cancel(j.ID); err != nil {
						t.Fatalf("cancel %s: %v", j, err)
					}
					canceled[j.ID] = true
				}
			}
			firstQueued := func() *Job {
				for _, j := range s.pending.jobs {
					if j != nil && j.State == Queued && !j.hostImage && j.arrive <= s.Now() {
						return j
					}
				}
				return nil
			}
			firstRunning := func() *Job {
				for _, j := range s.running {
					if !j.preempting {
						return j
					}
				}
				return nil
			}
			firstDraining := func() *Job {
				for _, j := range s.running {
					if j.preempting && !j.canceled {
						return j
					}
				}
				return nil
			}
			for n := 0; s.Step(); n++ {
				switch n {
				case 40, 90:
					cancelOne(firstQueued)
				case 60, 110:
					cancelOne(firstRunning)
				case 80, 130:
					cancelOne(firstDraining)
				}
			}
			rep := s.report()
			if len(rep.Jobs) != count {
				t.Fatalf("finished %d of %d jobs", len(rep.Jobs), count)
			}
			if rep.Canceled != len(canceled) {
				t.Fatalf("report counts %d canceled, test issued %d", rep.Canceled, len(canceled))
			}
			// A job canceled before its first dispatch has no run
			// segments; the occupancy reconstruction covers the rest.
			ran := make([]*Job, 0, len(rep.Jobs))
			for _, j := range rep.Jobs {
				if len(j.History) > 0 {
					ran = append(ran, j)
				} else if j.State != Canceled {
					t.Fatalf("%s finished with no run segments", j)
				}
			}
			checkNoOverlap(t, ran, nodes)
			for _, j := range rep.Jobs {
				if canceled[j.ID] {
					checkCanceledAccounting(t, j)
					continue
				}
				if j.State != Done {
					t.Fatalf("%s ended %v", j, j.State)
				}
				if want := j.TimeSlices() + j.Preemptions() + 1; len(j.History) != want {
					t.Fatalf("%s has %d segments, want %d", j, len(j.History), want)
				}
				diff := j.BusyTime() - j.Estimate() - j.CheckpointOverhead()
				if diff < 0 {
					diff = -diff
				}
				if diff > 5*time.Millisecond {
					t.Fatalf("%s busy %v != est %v + overhead %v", j, j.BusyTime(), j.Estimate(), j.CheckpointOverhead())
				}
			}
		})
	}
}

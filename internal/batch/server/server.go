// Package server puts an HTTP+JSON front door on the batch engine:
// the submit/cancel/query workflow of a Slurm-style cluster front-end,
// served live from the incremental scheduler core. Endpoints:
//
//	POST   /v1/jobs      submit a job spec        -> 201 + job view
//	DELETE /v1/jobs/{id} cancel a job             -> 200 + job view
//	GET    /v1/jobs/{id} one job, with explain    -> 200 + job view
//	GET    /v1/queue     live queue snapshot      -> 200 + queue view
//	GET    /metrics      Prometheus registry      -> 200 text/plain
//
// Authentication is bearer-token per user (Config.Tokens); with no
// tokens configured the server runs open and attributes jobs to the
// X-User header. Admission control enforces per-user quotas — max
// queued-or-running jobs and max committed node-seconds — at ingest,
// answering 429 when a submit would exceed them. Cancel is owner-only
// under token auth. Graceful drain: Shutdown stops the listener, stops
// the engine pump, runs every event already due, and returns the final
// report.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpucluster/internal/batch"
)

// Quota bounds one user's live footprint at admission.
type Quota struct {
	// MaxQueued caps the user's queued-or-running jobs; <= 0 means
	// unlimited.
	MaxQueued int
	// MaxNodeSeconds caps the user's committed nodes x remaining-
	// estimate seconds; <= 0 means unlimited.
	MaxNodeSeconds float64
}

// unlimited reports whether the quota never rejects.
func (q Quota) unlimited() bool { return q.MaxQueued <= 0 && q.MaxNodeSeconds <= 0 }

// Config assembles a server.
type Config struct {
	// Batch configures the scheduler core. Cluster is required. A nil
	// Recorder gets a MemRecorder attached (the explain endpoint needs
	// the event stream); a nil Metrics gets a fresh Registry (the
	// /metrics endpoint serves it).
	Batch batch.Config
	// Clock drives the engine; nil selects a wall clock at Compress.
	Clock batch.Clock
	// Compress is the wall-clock time-compression factor used when
	// Clock is nil; <= 0 means 1 (real time).
	Compress float64
	// Tokens maps bearer token -> user. Empty means open mode: no
	// Authorization required, the X-User header names the submitter.
	Tokens map[string]string
	// Quota is the default per-user admission bound; the zero value is
	// unlimited.
	Quota Quota
	// UserQuotas overrides Quota for specific users.
	UserQuotas map[string]Quota
}

// Server owns an engine and serves the HTTP front door. Create with
// New, then Serve/ListenAndServe; Shutdown drains gracefully.
type Server struct {
	cfg   Config
	eng   *batch.Engine
	reg   *batch.Registry
	clock batch.Clock
	epoch time.Time
	mux   *http.ServeMux
	http  *http.Server

	admit sync.Mutex // serializes quota check + ingest (no overshoot)

	mu       sync.Mutex
	submitW  map[int]time.Time // job -> wall instant the submit was accepted
	dispatch map[int]time.Time // job -> wall instant of first dispatch
}

// New validates cfg and returns an unstarted server.
func New(cfg Config) *Server {
	if cfg.Batch.Metrics == nil {
		cfg.Batch.Metrics = batch.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		reg:      cfg.Batch.Metrics,
		epoch:    time.Now(),
		submitW:  make(map[int]time.Time),
		dispatch: make(map[int]time.Time),
	}
	// The dispatch tap wraps whatever recorder the config carries (a
	// MemRecorder by default, so the explain endpoint has a stream),
	// stamping each job's first dispatch with wall time — the other
	// half of the submit→dispatch latency the slam client reports.
	var inner batch.Recorder = cfg.Batch.Recorder
	if inner == nil {
		inner = &batch.MemRecorder{}
	}
	s.cfg.Batch.Recorder = &dispatchTap{inner: inner, srv: s}
	s.clock = cfg.Clock
	if s.clock == nil {
		s.clock = batch.NewWallClock(cfg.Compress)
	}
	s.eng = batch.NewEngine(s.cfg.Batch, s.clock)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/queue", s.handleQueue)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// dispatchTap forwards every event to the inner recorder and stamps
// first dispatches with wall time. Record runs under the engine lock,
// so the map mutex only guards against concurrent HTTP readers.
type dispatchTap struct {
	inner batch.Recorder
	srv   *Server
}

func (t *dispatchTap) Record(ev batch.Event) {
	if ev.Kind == batch.EvDispatch {
		t.srv.mu.Lock()
		if _, seen := t.srv.dispatch[ev.Job]; !seen {
			t.srv.dispatch[ev.Job] = time.Now()
		}
		t.srv.mu.Unlock()
	}
	t.inner.Record(ev)
}

// Events lets the engine's explain path see through the tap.
func (t *dispatchTap) Events() []batch.Event {
	if src, ok := t.inner.(interface{ Events() []batch.Event }); ok {
		return src.Events()
	}
	return nil
}

// Engine exposes the scheduler core (tests and in-process drivers).
func (s *Server) Engine() *batch.Engine { return s.eng }

// Handler returns the HTTP handler (for tests and custom servers).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve starts the engine pump and serves HTTP on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.eng.Start()
	s.http = &http.Server{Handler: s.mux}
	err := s.http.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown gracefully drains: the listener stops accepting, in-flight
// requests finish (bounded by ctx), the pump halts, and every event
// already due runs. The returned report is the final schedule.
func (s *Server) Shutdown(ctx context.Context) (batch.Report, error) {
	var err error
	if s.http != nil {
		err = s.http.Shutdown(ctx)
	}
	return s.eng.Drain(), err
}

// JobSpec is the submit request body.
type JobSpec struct {
	Name string `json:"name,omitempty"`
	// Kind is the workload class: "lbm", "cg", or "pde" (default lbm).
	Kind  string `json:"kind,omitempty"`
	Nodes int    `json:"nodes"`
	// Priority orders the queue; higher runs first.
	Priority int `json:"priority,omitempty"`
	// EstSeconds is the walltime estimate in virtual seconds; 0 asks
	// the scheduler's estimator.
	EstSeconds float64 `json:"est_seconds,omitempty"`
	Steps      int     `json:"steps,omitempty"`
	// User is honored only in open mode (no Tokens) when no X-User
	// header names the submitter.
	User string `json:"user,omitempty"`
}

// BlockerView is one reason's share of a job's blocked passes.
type BlockerView struct {
	Reason string `json:"reason"`
	Passes int    `json:"passes"`
}

// ExplainView is the per-job blocked-pass breakdown.
type ExplainView struct {
	BlockedPasses int           `json:"blocked_passes"`
	Blockers      []BlockerView `json:"blockers,omitempty"`
}

// JobView is the JSON rendering of one job's status. Virtual instants
// are milliseconds on the engine timeline; wall stamps are
// milliseconds since the server's start.
type JobView struct {
	ID             int          `json:"id"`
	Name           string       `json:"name,omitempty"`
	User           string       `json:"user,omitempty"`
	Kind           string       `json:"kind"`
	Nodes          int          `json:"nodes"`
	Priority       int          `json:"priority,omitempty"`
	State          string       `json:"state"`
	SubmitMS       float64      `json:"submit_virtual_ms"`
	StartMS        float64      `json:"start_virtual_ms,omitempty"`
	EndMS          float64      `json:"end_virtual_ms,omitempty"`
	WaitMS         float64      `json:"wait_virtual_ms,omitempty"`
	EstMS          float64      `json:"est_virtual_ms,omitempty"`
	Preemptions    int          `json:"preemptions,omitempty"`
	TimeSlices     int          `json:"time_slices,omitempty"`
	Detail         string       `json:"detail,omitempty"`
	SubmitWallMS   float64      `json:"submit_wall_ms,omitempty"`
	DispatchWallMS float64      `json:"dispatch_wall_ms,omitempty"`
	Explain        *ExplainView `json:"explain,omitempty"`
}

// QueueView is the JSON rendering of the live queue snapshot.
type QueueView struct {
	NowMS    float64   `json:"now_virtual_ms"`
	Queued   int       `json:"queued"`
	Running  int       `json:"running"`
	Finished int       `json:"finished"`
	Jobs     []JobView `json:"jobs"`
}

type errorView struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorView{Error: fmt.Sprintf(format, args...)})
}

// user resolves the requesting principal. With tokens configured a
// valid bearer token is required; open mode trusts X-User (then the
// spec's user field for submits).
func (s *Server) user(r *http.Request) (string, bool) {
	if len(s.cfg.Tokens) == 0 {
		return r.Header.Get("X-User"), true
	}
	auth := r.Header.Get("Authorization")
	tok, ok := strings.CutPrefix(auth, "Bearer ")
	if !ok {
		return "", false
	}
	u, ok := s.cfg.Tokens[tok]
	return u, ok
}

// quotaFor returns the admission bound applying to user.
func (s *Server) quotaFor(user string) Quota {
	if q, ok := s.cfg.UserQuotas[user]; ok {
		return q
	}
	return s.cfg.Quota
}

func parseKind(k string) (batch.JobKind, error) {
	switch k {
	case "", "lbm":
		return batch.KindLBM, nil
	case "cg":
		return batch.KindCG, nil
	case "pde":
		return batch.KindPDE, nil
	}
	return 0, fmt.Errorf("unknown kind %q (want lbm, cg, or pde)", k)
}

func (s *Server) jobView(st batch.JobStatus) JobView {
	v := JobView{
		ID:          st.ID,
		Name:        st.Name,
		User:        st.User,
		Kind:        st.Kind.String(),
		Nodes:       st.Nodes,
		Priority:    st.Priority,
		State:       st.State.String(),
		SubmitMS:    float64(st.Submit) / float64(time.Millisecond),
		EstMS:       float64(st.Estimate) / float64(time.Millisecond),
		Preemptions: st.Preemptions,
		TimeSlices:  st.TimeSlices,
		Detail:      st.Detail,
	}
	if st.State != batch.Queued {
		v.StartMS = float64(st.Start) / float64(time.Millisecond)
		v.WaitMS = float64(st.Wait) / float64(time.Millisecond)
	}
	if st.End > 0 {
		v.EndMS = float64(st.End) / float64(time.Millisecond)
	}
	s.mu.Lock()
	if t, ok := s.submitW[st.ID]; ok {
		v.SubmitWallMS = float64(t.Sub(s.epoch)) / float64(time.Millisecond)
	}
	if t, ok := s.dispatch[st.ID]; ok {
		v.DispatchWallMS = float64(t.Sub(s.epoch)) / float64(time.Millisecond)
	}
	s.mu.Unlock()
	return v
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	user, ok := s.user(r)
	if !ok {
		writeError(w, http.StatusUnauthorized, "missing or unknown bearer token")
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if user == "" {
		user = spec.User
	}
	kind, err := parseKind(spec.Kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if spec.Nodes <= 0 {
		writeError(w, http.StatusBadRequest, "job requests %d nodes", spec.Nodes)
		return
	}
	j := &batch.Job{
		Name:     spec.Name,
		Kind:     kind,
		Nodes:    spec.Nodes,
		Priority: spec.Priority,
		User:     user,
		Steps:    spec.Steps,
		Est:      time.Duration(spec.EstSeconds * float64(time.Second)),
	}
	// Quota check and ingest are one critical section: two concurrent
	// submits must not both pass a nearly-full quota.
	s.admit.Lock()
	if q := s.quotaFor(user); !q.unlimited() {
		load := s.eng.Load(user)
		if q.MaxQueued > 0 && load.Queued >= q.MaxQueued {
			s.admit.Unlock()
			writeError(w, http.StatusTooManyRequests, "user %q at max queued jobs (%d)", user, q.MaxQueued)
			return
		}
		if q.MaxNodeSeconds > 0 && load.NodeSeconds+nodeSeconds(j) > q.MaxNodeSeconds {
			s.admit.Unlock()
			writeError(w, http.StatusTooManyRequests, "user %q over node-seconds quota (%.0f of %.0f committed)",
				user, load.NodeSeconds, q.MaxNodeSeconds)
			return
		}
	}
	id, err := s.eng.Ingest(j)
	s.admit.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	s.submitW[id] = time.Now()
	s.mu.Unlock()
	st, err := s.eng.JobStatus(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, s.jobView(st))
}

// nodeSeconds is the admission price of a spec: requested nodes times
// the declared estimate. A spec leaving the estimate to the scheduler
// prices only its gang width (1s floor) — the quota is a guard rail,
// not a billing system.
func nodeSeconds(j *batch.Job) float64 {
	est := j.Est.Seconds()
	if est < 1 {
		est = 1
	}
	return float64(j.Nodes) * est
}

func (s *Server) pathID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return 0, false
	}
	return id, true
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	user, ok := s.user(r)
	if !ok {
		writeError(w, http.StatusUnauthorized, "missing or unknown bearer token")
		return
	}
	id, ok := s.pathID(w, r)
	if !ok {
		return
	}
	st, err := s.eng.JobStatus(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	if len(s.cfg.Tokens) > 0 && st.User != user {
		writeError(w, http.StatusForbidden, "job %d belongs to %q", id, st.User)
		return
	}
	if err := s.eng.Cancel(id); err != nil {
		code := http.StatusConflict
		if errors.Is(err, batch.ErrNoSuchJob) {
			code = http.StatusNotFound
		}
		writeError(w, code, "%v", err)
		return
	}
	st, err = s.eng.JobStatus(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(st))
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.user(r); !ok {
		writeError(w, http.StatusUnauthorized, "missing or unknown bearer token")
		return
	}
	id, ok := s.pathID(w, r)
	if !ok {
		return
	}
	st, err := s.eng.JobStatus(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	v := s.jobView(st)
	if ex, err := s.eng.Explain(id); err == nil {
		ev := &ExplainView{BlockedPasses: ex.BlockedPasses}
		for _, c := range ex.Counts {
			ev.Blockers = append(ev.Blockers, BlockerView{Reason: c.Reason.String(), Passes: c.Passes})
		}
		v.Explain = ev
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleQueue(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.user(r); !ok {
		writeError(w, http.StatusUnauthorized, "missing or unknown bearer token")
		return
	}
	qs := s.eng.Snapshot()
	qv := QueueView{
		NowMS:    float64(qs.Now) / float64(time.Millisecond),
		Queued:   qs.Queued,
		Running:  qs.Running,
		Finished: qs.Finished,
	}
	for _, st := range qs.Jobs {
		qv.Jobs = append(qv.Jobs, s.jobView(st))
	}
	writeJSON(w, http.StatusOK, qv)
}

// handleMetrics serves the registry in Prometheus text format. It is
// deliberately unauthenticated — the scrape path on real clusters.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WritePrometheus(w)
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client talks to a clusterctl serve daemon. The zero value is not
// usable; set Base (e.g. "http://127.0.0.1:8732").
type Client struct {
	// Base is the daemon's root URL, no trailing slash.
	Base string
	// Token is the bearer token (token-auth servers); empty sends none.
	Token string
	// User is sent as X-User in open mode.
	User string
	// HTTP overrides the transport; nil uses http.DefaultClient.
	HTTP *http.Client
}

// APIError is a non-2xx response, carrying the server's error message.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.Status)
}

// IsQuota reports whether the error is a 429 quota rejection.
func (e *APIError) IsQuota() bool { return e.Status == http.StatusTooManyRequests }

func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	if c.User != "" {
		req.Header.Set("X-User", c.User)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var ev errorView
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ev) == nil && ev.Error != "" {
			msg = ev.Error
		}
		return &APIError{Status: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job spec and returns the accepted job's view.
func (c *Client) Submit(spec JobSpec) (JobView, error) {
	var v JobView
	err := c.do(http.MethodPost, "/v1/jobs", spec, &v)
	return v, err
}

// Cancel withdraws a job.
func (c *Client) Cancel(id int) (JobView, error) {
	var v JobView
	err := c.do(http.MethodDelete, fmt.Sprintf("/v1/jobs/%d", id), nil, &v)
	return v, err
}

// Job fetches one job's status, including the explain breakdown.
func (c *Client) Job(id int) (JobView, error) {
	var v JobView
	err := c.do(http.MethodGet, fmt.Sprintf("/v1/jobs/%d", id), nil, &v)
	return v, err
}

// Queue fetches the live queue snapshot.
func (c *Client) Queue() (QueueView, error) {
	var v QueueView
	err := c.do(http.MethodGet, "/v1/queue", nil, &v)
	return v, err
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Msg: resp.Status}
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

package server

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gpucluster/internal/batch"
)

// SlamConfig drives a load-generation run: an SWF trace replayed
// against a live daemon by concurrent submitters at a time-compression
// factor, measuring the submit-to-dispatch latency each job saw
// through the HTTP front door.
type SlamConfig struct {
	// Base is the daemon's root URL.
	Base string
	// Trace is the arrival stream to replay. Each record's Submit
	// offset is divided by Compress to place it on the wall clock.
	Trace []batch.TraceJob
	// Submitters is the number of concurrent client goroutines; <= 0
	// means 8. Records are partitioned round-robin.
	Submitters int
	// Compress is the replay speed-up; <= 0 means 1000.
	Compress float64
	// MaxNodes clamps gang widths (archive traces come from machines
	// of other sizes); <= 0 leaves them as recorded.
	MaxNodes int
	// Token authenticates every submitter (token-auth daemons); with
	// an empty Token each record's trace user rides the X-User header.
	Token string
	// Timeout bounds the whole run, replay plus drain; <= 0 means 60s.
	Timeout time.Duration
}

// SlamResult is the load report.
type SlamResult struct {
	// Submitted counts attempted submits; Accepted the 201s; Rejected
	// the 429 quota refusals.
	Submitted, Accepted, Rejected int
	// Wall is the elapsed wall time from first submit to last terminal
	// state.
	Wall time.Duration
	// P50 and P99 are submit-to-dispatch wall latency percentiles over
	// jobs that dispatched.
	P50, P99 time.Duration
	// JobsPerSec is accepted jobs over Wall.
	JobsPerSec float64
}

func (r SlamResult) String() string {
	return fmt.Sprintf("slam: %d submitted, %d accepted, %d quota-rejected in %v (%.1f jobs/s); submit->dispatch p50 %v p99 %v",
		r.Submitted, r.Accepted, r.Rejected, r.Wall.Round(time.Millisecond),
		r.JobsPerSec, r.P50.Round(time.Millisecond), r.P99.Round(time.Millisecond))
}

// slamKinds rotates workload classes across trace records the same way
// the offline TraceJobs converter does.
var slamKinds = []string{"lbm", "cg", "pde"}

// Slam replays cfg.Trace against a running daemon and blocks until
// every accepted job reaches a terminal state (or Timeout lapses).
func Slam(cfg SlamConfig) (SlamResult, error) {
	if cfg.Submitters <= 0 {
		cfg.Submitters = 8
	}
	if cfg.Compress <= 0 {
		cfg.Compress = 1000
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	var res SlamResult
	if len(cfg.Trace) == 0 {
		return res, errors.New("slam: empty trace")
	}

	start := time.Now()
	deadline := start.Add(cfg.Timeout)
	var (
		mu       sync.Mutex
		accepted []int
		firstErr error
	)
	var wg sync.WaitGroup
	for g := 0; g < cfg.Submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := &Client{Base: cfg.Base, Token: cfg.Token}
			for i := g; i < len(cfg.Trace); i += cfg.Submitters {
				rec := cfg.Trace[i]
				due := start.Add(time.Duration(float64(rec.Submit) / cfg.Compress))
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				nodes := rec.Procs
				if nodes <= 0 {
					nodes = 1
				}
				if cfg.MaxNodes > 0 && nodes > cfg.MaxNodes {
					nodes = cfg.MaxNodes
				}
				est := rec.Req
				if est <= 0 {
					est = rec.Run
				}
				cl.User = rec.User
				v, err := cl.Submit(JobSpec{
					Name:     fmt.Sprintf("slam-%d", rec.ID),
					Kind:     slamKinds[rec.ID%len(slamKinds)],
					Nodes:    nodes,
					Priority: rec.Queue,
					EstSeconds: func() float64 {
						if est > 0 {
							return est.Seconds()
						}
						return 0
					}(),
					User: rec.User,
				})
				mu.Lock()
				res.Submitted++
				var apiErr *APIError
				switch {
				case err == nil:
					res.Accepted++
					accepted = append(accepted, v.ID)
				case errors.As(err, &apiErr) && apiErr.IsQuota():
					res.Rejected++
				default:
					if firstErr == nil {
						firstErr = err
					}
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		return res, firstErr
	}

	// Drain: poll every accepted job to a terminal state, then read
	// the dispatch stamps the server recorded.
	cl := &Client{Base: cfg.Base, Token: cfg.Token}
	var lat []time.Duration
	for _, id := range accepted {
		for {
			v, err := cl.Job(id)
			if err != nil {
				return res, err
			}
			if s := v.State; s == "done" || s == "failed" || s == "canceled" {
				if v.DispatchWallMS > 0 && v.SubmitWallMS > 0 {
					lat = append(lat, time.Duration((v.DispatchWallMS-v.SubmitWallMS)*float64(time.Millisecond)))
				}
				break
			}
			if time.Now().After(deadline) {
				return res, fmt.Errorf("slam: job %d still %s at timeout", id, v.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	res.Wall = time.Since(start)
	if res.Wall > 0 {
		res.JobsPerSec = float64(res.Accepted) / res.Wall.Seconds()
	}
	res.P50 = percentile(lat, 0.50)
	res.P99 = percentile(lat, 0.99)
	return res, nil
}

// percentile returns the q-quantile by nearest-rank over a copy.
func percentile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, k int) bool { return s[i] < s[k] })
	idx := int(q*float64(len(s)-1) + 0.5)
	return s[idx]
}

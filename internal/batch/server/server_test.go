package server

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"gpucluster/internal/batch"
	"gpucluster/internal/netsim"
)

// stoppedClock freezes virtual time at zero: ingested jobs dispatch
// (or queue) immediately but nothing ever completes, so lifecycle
// states are deterministic under test.
type stoppedClock struct{}

func (stoppedClock) Now() time.Duration { return 0 }

func testCluster(n int) *batch.Cluster {
	return batch.NewCluster(n, netsim.GigabitSwitch(n))
}

// startServer boots a server on a loopback listener and tears it down
// with the test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := s.Serve(l); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if _, err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, "http://" + l.Addr().String()
}

func wantStatus(t *testing.T, err error, code int) {
	t.Helper()
	apiErr, ok := err.(*APIError)
	if !ok {
		t.Fatalf("want HTTP %d error, got %v", code, err)
	}
	if apiErr.Status != code {
		t.Fatalf("want HTTP %d, got %d (%s)", code, apiErr.Status, apiErr.Msg)
	}
}

// TestServeAuthAndLifecycle walks the token-auth front door: 401 on
// missing/bad tokens, owner-only cancel, 404/409 on the cancel edge
// cases, and 400 on malformed specs.
func TestServeAuthAndLifecycle(t *testing.T) {
	_, base := startServer(t, Config{
		Batch:  batch.Config{Cluster: testCluster(4)},
		Clock:  stoppedClock{},
		Tokens: map[string]string{"tok-ana": "ana", "tok-bo": "bo"},
	})
	anon := &Client{Base: base}
	ana := &Client{Base: base, Token: "tok-ana"}
	bo := &Client{Base: base, Token: "tok-bo"}

	if _, err := anon.Submit(JobSpec{Nodes: 1}); err == nil {
		t.Fatal("unauthenticated submit accepted")
	} else {
		wantStatus(t, err, http.StatusUnauthorized)
	}
	if _, err := (&Client{Base: base, Token: "bogus"}).Queue(); err == nil {
		t.Fatal("bad token accepted")
	} else {
		wantStatus(t, err, http.StatusUnauthorized)
	}

	v, err := ana.Submit(JobSpec{Name: "anas", Kind: "pde", Nodes: 2, EstSeconds: 60})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if v.User != "ana" || v.State != "running" || v.Nodes != 2 {
		t.Fatalf("submitted view: %+v", v)
	}

	// Reads are open to any authenticated user; cancel is owner-only.
	if _, err := bo.Job(v.ID); err != nil {
		t.Fatalf("cross-user read: %v", err)
	}
	if _, err := bo.Cancel(v.ID); err == nil {
		t.Fatal("cross-user cancel accepted")
	} else {
		wantStatus(t, err, http.StatusForbidden)
	}
	cv, err := ana.Cancel(v.ID)
	if err != nil || cv.State != "canceled" {
		t.Fatalf("owner cancel: %+v, %v", cv, err)
	}
	if _, err := ana.Cancel(v.ID); err == nil {
		t.Fatal("double cancel accepted")
	} else {
		wantStatus(t, err, http.StatusConflict)
	}
	if _, err := ana.Cancel(999); err == nil {
		t.Fatal("cancel of unknown job accepted")
	} else {
		wantStatus(t, err, http.StatusNotFound)
	}

	if _, err := ana.Submit(JobSpec{Kind: "quantum", Nodes: 1}); err == nil {
		t.Fatal("unknown kind accepted")
	} else {
		wantStatus(t, err, http.StatusBadRequest)
	}
	if _, err := ana.Submit(JobSpec{Nodes: 0}); err == nil {
		t.Fatal("zero-node job accepted")
	} else {
		wantStatus(t, err, http.StatusBadRequest)
	}
	if err := ana.do(http.MethodGet, "/v1/jobs/abc", nil, nil); err == nil {
		t.Fatal("non-numeric job id accepted")
	} else {
		wantStatus(t, err, http.StatusBadRequest)
	}
}

// TestServeQuota pins the 429 admission path: per-user max-queued and
// node-seconds bounds, quota released by cancel, and per-user
// overrides.
func TestServeQuota(t *testing.T) {
	_, base := startServer(t, Config{
		Batch: batch.Config{Cluster: testCluster(2)},
		Clock: stoppedClock{},
		Quota: Quota{MaxQueued: 2},
		UserQuotas: map[string]Quota{
			"tiny": {MaxNodeSeconds: 100},
			"vip":  {MaxQueued: 100},
		},
	})
	ana := &Client{Base: base, User: "ana"}
	spec := JobSpec{Kind: "lbm", Nodes: 1, EstSeconds: 60}
	first, err := ana.Submit(spec)
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	if _, err := ana.Submit(spec); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	_, err = ana.Submit(spec)
	if err == nil {
		t.Fatal("third submit passed a MaxQueued=2 quota")
	}
	wantStatus(t, err, http.StatusTooManyRequests)
	if apiErr := err.(*APIError); !apiErr.IsQuota() {
		t.Fatalf("IsQuota false on %v", err)
	}

	// Independent users have independent budgets; the vip override
	// lifts the default.
	for i, u := range []string{"bo", "vip", "vip", "vip"} {
		if _, err := (&Client{Base: base, User: u}).Submit(spec); err != nil {
			t.Fatalf("submit %d as %s: %v", i, u, err)
		}
	}

	// 2 nodes x 60s = 120 node-seconds > the tiny user's 100.
	_, err = (&Client{Base: base, User: "tiny"}).Submit(JobSpec{Kind: "lbm", Nodes: 2, EstSeconds: 60})
	if err == nil {
		t.Fatal("node-seconds quota did not trip")
	}
	wantStatus(t, err, http.StatusTooManyRequests)

	// Canceling frees the slot.
	if _, err := ana.Cancel(first.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if _, err := ana.Submit(spec); err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
}

// TestServeQueueAndExplain checks the introspection endpoints: the
// queue snapshot's ordering and counts, and the per-job explain
// breakdown riding the job view.
func TestServeQueueAndExplain(t *testing.T) {
	_, base := startServer(t, Config{
		Batch: batch.Config{Cluster: testCluster(4), Policy: batch.Backfill},
		Clock: stoppedClock{},
	})
	c := &Client{Base: base, User: "ana"}
	wide, err := c.Submit(JobSpec{Kind: "pde", Nodes: 4, EstSeconds: 600})
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := c.Submit(JobSpec{Kind: "pde", Nodes: 4, EstSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if q.Running != 1 || q.Queued != 1 || len(q.Jobs) != 2 {
		t.Fatalf("queue view: %+v", q)
	}
	if q.Jobs[0].ID != blocked.ID || q.Jobs[0].State != "queued" ||
		q.Jobs[1].ID != wide.ID || q.Jobs[1].State != "running" {
		t.Fatalf("queue ordering: %+v", q.Jobs)
	}
	// The blocked job has at least one recorded blocked pass with a
	// reason — the explain surface served over HTTP.
	jv, err := c.Job(blocked.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jv.Explain == nil || jv.Explain.BlockedPasses < 1 || len(jv.Explain.Blockers) == 0 {
		t.Fatalf("explain breakdown missing: %+v", jv.Explain)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# TYPE batch_jobs_submitted_total counter", "batch_queue_depth"} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, m)
		}
	}
}

// TestServeSlamE2E is the full daemon exercise: a synthetic SWF trace
// replayed by 8 concurrent submitters at high compression against the
// wall-clock engine, with a deterministic per-user quota rejection
// lane, live metrics scraped mid-run, and a subset of jobs canceled
// mid-flight. Every accepted job must reach a terminal state and the
// final report must balance.
func TestServeSlamE2E(t *testing.T) {
	const nodes, compress = 8, 5000
	var buf bytes.Buffer
	if err := batch.WriteSyntheticSWF(&buf, 11, 80, 4, nodes, 5); err != nil {
		t.Fatal(err)
	}
	recs, err := batch.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantRejected := 0
	for _, r := range recs {
		if r.User == "u1" {
			wantRejected++
		}
	}
	if wantRejected == 0 {
		t.Fatal("trace has no u1 jobs; the rejection lane is empty")
	}

	srv, base := startServer(t, Config{
		Batch:    batch.Config{Cluster: testCluster(nodes), Policy: batch.Backfill},
		Compress: compress,
		// Every u1 submit prices at least 1 node-second — the whole
		// user is a deterministic 429 lane.
		UserQuotas: map[string]Quota{"u1": {MaxNodeSeconds: 0.5}},
	})

	done := make(chan struct{})
	var res SlamResult
	var slamErr error
	go func() {
		defer close(done)
		res, slamErr = Slam(SlamConfig{
			Base: base, Trace: recs, Submitters: 8,
			Compress: compress, MaxNodes: nodes, Timeout: 90 * time.Second,
		})
	}()

	// Mid-run: wait for a live backlog, scrape metrics, cancel a
	// couple of queued jobs through the front door.
	c := &Client{Base: base}
	waitDeadline := time.Now().Add(20 * time.Second)
	for {
		q, err := c.Queue()
		if err == nil && q.Queued > 2 {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("queue never backed up under slam load")
		}
		time.Sleep(2 * time.Millisecond)
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatalf("mid-run metrics scrape: %v", err)
	}
	for _, want := range []string{"batch_jobs_submitted_total", "batch_queue_depth", "batch_scheduler_passes_total"} {
		if !strings.Contains(m, want) {
			t.Fatalf("mid-run metrics missing %q", want)
		}
	}
	canceled := 0
	for attempts := 0; canceled < 2 && attempts < 50; attempts++ {
		q, err := c.Queue()
		if err != nil {
			t.Fatalf("queue: %v", err)
		}
		for _, j := range q.Jobs {
			if j.State != "queued" {
				continue
			}
			if _, err := c.Cancel(j.ID); err == nil {
				canceled++
				if canceled >= 2 {
					break
				}
			}
		}
	}
	if canceled == 0 {
		t.Fatal("no mid-flight cancel landed")
	}

	<-done
	if slamErr != nil {
		t.Fatalf("slam: %v", slamErr)
	}
	if res.Submitted != len(recs) || res.Rejected != wantRejected ||
		res.Accepted != len(recs)-wantRejected {
		t.Fatalf("slam accounting: %+v, want %d submitted / %d rejected", res, len(recs), wantRejected)
	}
	if res.JobsPerSec <= 0 || res.Wall <= 0 {
		t.Fatalf("slam throughput: %+v", res)
	}
	if res.P99 < res.P50 {
		t.Fatalf("latency percentiles inverted: %+v", res)
	}

	// Slam already drove every accepted job to a terminal state; the
	// queue must be empty and the report must balance.
	qs := srv.Engine().Snapshot()
	if qs.Queued != 0 || qs.Running != 0 {
		t.Fatalf("jobs still live after slam: %+v", qs)
	}
	rep := srv.Engine().Report()
	if len(rep.Jobs) != res.Accepted {
		t.Fatalf("report holds %d jobs, want %d", len(rep.Jobs), res.Accepted)
	}
	if rep.Canceled != canceled {
		t.Fatalf("report canceled %d, want %d", rep.Canceled, canceled)
	}
	terminal := 0
	for _, j := range rep.Jobs {
		switch j.State {
		case batch.Done, batch.Failed, batch.Canceled:
			terminal++
		}
	}
	if terminal != res.Accepted {
		t.Fatalf("%d of %d accepted jobs terminal", terminal, res.Accepted)
	}
}

package batch

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics registry: counters, gauges, and histograms with Prometheus
// text-format exposition and a deterministic snapshot API. The
// scheduler publishes into a registry attached through Config.Metrics
// (schedMetrics below); a nil registry disables publication at zero
// cost, exactly like a nil Recorder. The registry is safe for
// concurrent use — counters and gauges are lock-free, histograms and
// registration take a mutex — so a future `clusterctl serve` can
// scrape it while a run is in flight.

// MetricKind distinguishes the exposition types.
type MetricKind int

const (
	CounterKind MetricKind = iota
	GaugeKind
	HistogramKind
)

func (k MetricKind) String() string {
	switch k {
	case CounterKind:
		return "counter"
	case GaugeKind:
		return "gauge"
	case HistogramKind:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Labels attach dimensions to a metric series (policy, placement,
// user). Series identity is the metric name plus the sorted label set.
type Labels map[string]string

// labelString renders labels as the canonical `k="v",...` signature,
// sorted by key — both the registry's series key and the exposition
// form.
func labelString(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	//batchlint:allow determinism -- keys are collected and sorted on the next line; the rendered signature is canonical
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(ls[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies Prometheus label-value escaping.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by a (possibly negative) delta.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []uint64  // per-bucket (non-cumulative), len(bounds)+1
	sum    float64
	count  uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// DefaultBuckets spans sub-millisecond pass latencies through hour-long
// virtual queue waits.
var DefaultBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10, 60, 300, 900, 3600, 14400}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound; the final
	// bucket's is math.Inf(1).
	UpperBound float64
	// Count is the cumulative observation count at or below UpperBound.
	Count uint64
}

// MetricPoint is one series' state in a snapshot.
type MetricPoint struct {
	Name   string
	Help   string
	Labels string // canonical sorted `k="v",...` signature
	Kind   MetricKind
	// Value holds counters and gauges.
	Value float64
	// Sum, Count, and Buckets hold histograms.
	Sum     float64
	Count   uint64
	Buckets []BucketCount
}

// Registry holds metric series. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu     sync.Mutex
	series map[string]*seriesEntry
	order  []string // registration order kept for stable iteration
}

type seriesEntry struct {
	name, help, labels string
	kind               MetricKind
	counter            *Counter
	gauge              *Gauge
	hist               *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*seriesEntry)}
}

// lookup returns the series for (name, labels), creating it with make
// when absent. Re-registering the same series returns the existing
// one; re-registering under a different kind panics — that is a
// programming error, not an operational condition.
func (r *Registry) lookup(name string, kind MetricKind, labels Labels, make func(e *seriesEntry)) *seriesEntry {
	ls := labelString(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.series[key]; e != nil {
		if e.kind != kind {
			panic(fmt.Sprintf("batch: metric %s registered as %v and %v", key, e.kind, kind))
		}
		return e
	}
	e := &seriesEntry{name: name, labels: ls, kind: kind}
	make(e)
	r.series[key] = e
	r.order = append(r.order, key)
	return e
}

// Counter returns (registering if needed) the counter series for
// (name, labels).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	e := r.lookup(name, CounterKind, labels, func(e *seriesEntry) {
		e.help = help
		e.counter = &Counter{}
	})
	return e.counter
}

// Gauge returns (registering if needed) the gauge series for
// (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	e := r.lookup(name, GaugeKind, labels, func(e *seriesEntry) {
		e.help = help
		e.gauge = &Gauge{}
	})
	return e.gauge
}

// Histogram returns (registering if needed) the histogram series for
// (name, labels). buckets must be ascending; nil selects
// DefaultBuckets. Buckets are fixed at first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	e := r.lookup(name, HistogramKind, labels, func(e *seriesEntry) {
		if buckets == nil {
			buckets = DefaultBuckets
		}
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("batch: metric %s: buckets not ascending", name))
			}
		}
		e.help = help
		e.hist = &Histogram{
			bounds: append([]float64(nil), buckets...),
			counts: make([]uint64, len(buckets)+1),
		}
	})
	return e.hist
}

// Snapshot returns every series' current state, sorted by name then
// label signature — deterministic regardless of registration or
// update order.
func (r *Registry) Snapshot() []MetricPoint {
	r.mu.Lock()
	entries := make([]*seriesEntry, 0, len(r.order))
	for _, key := range r.order {
		entries = append(entries, r.series[key])
	}
	r.mu.Unlock()
	out := make([]MetricPoint, 0, len(entries))
	for _, e := range entries {
		p := MetricPoint{Name: e.name, Help: e.help, Labels: e.labels, Kind: e.kind}
		switch e.kind {
		case CounterKind:
			p.Value = e.counter.Value()
		case GaugeKind:
			p.Value = e.gauge.Value()
		case HistogramKind:
			h := e.hist
			h.mu.Lock()
			p.Sum, p.Count = h.sum, h.count
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i]
				p.Buckets = append(p.Buckets, BucketCount{UpperBound: b, Count: cum})
			}
			p.Buckets = append(p.Buckets, BucketCount{UpperBound: math.Inf(1), Count: h.count})
			h.mu.Unlock()
		}
		out = append(out, p)
	}
	sort.SliceStable(out, func(i, k int) bool {
		if out[i].Name != out[k].Name {
			return out[i].Name < out[k].Name
		}
		return out[i].Labels < out[k].Labels
	})
	return out
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers once per metric family,
// series sorted by name then labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fnum := func(v float64) string {
		if math.IsInf(v, 1) {
			return "+Inf"
		}
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
	var b strings.Builder
	lastFamily := ""
	for _, p := range r.Snapshot() {
		if p.Name != lastFamily {
			if p.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", p.Name, p.Help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", p.Name, p.Kind)
			lastFamily = p.Name
		}
		switch p.Kind {
		case CounterKind, GaugeKind:
			if p.Labels == "" {
				fmt.Fprintf(&b, "%s %s\n", p.Name, fnum(p.Value))
			} else {
				fmt.Fprintf(&b, "%s{%s} %s\n", p.Name, p.Labels, fnum(p.Value))
			}
		case HistogramKind:
			sep := ""
			if p.Labels != "" {
				sep = ","
			}
			for _, bkt := range p.Buckets {
				fmt.Fprintf(&b, "%s_bucket{%s%sle=\"%s\"} %d\n", p.Name, p.Labels, sep, fnum(bkt.UpperBound), bkt.Count)
			}
			if p.Labels == "" {
				fmt.Fprintf(&b, "%s_sum %s\n", p.Name, fnum(p.Sum))
				fmt.Fprintf(&b, "%s_count %d\n", p.Name, p.Count)
			} else {
				fmt.Fprintf(&b, "%s_sum{%s} %s\n", p.Name, p.Labels, fnum(p.Sum))
				fmt.Fprintf(&b, "%s_count{%s} %d\n", p.Name, p.Labels, p.Count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// schedMetrics caches the scheduler's typed metric handles, resolved
// once at New so the event loop publishes through direct pointers, not
// registry lookups. All series carry policy/placement labels; the
// fair-share usage gauges add the user.
type schedMetrics struct {
	reg  *Registry
	base Labels

	submitted  *Counter // batch_jobs_submitted_total
	completed  *Counter // batch_jobs_completed_total
	failed     *Counter // batch_jobs_failed_total
	canceled   *Counter // batch_jobs_canceled_total
	passes     *Counter // batch_scheduler_passes_total
	candidates *Counter // batch_placement_candidates_total
	backfills  *Counter // batch_backfills_total
	preempts   *Counter // batch_preemptions_total
	slices     *Counter // batch_slice_suspensions_total
	demotions  *Counter // batch_demotions_total

	faultKills   *Counter // batch_fault_kills_total
	nodeFaults   *Counter // batch_node_faults_total
	trunkOutages *Counter // batch_trunk_outages_total
	lostWork     *Counter // batch_lost_work_seconds_total
	banks        *Counter // batch_proactive_checkpoints_total

	queueDepth   *Gauge // batch_queue_depth
	nodesDown    *Gauge // batch_nodes_down
	writeBacklog *Gauge // batch_store_link_write_backlog_seconds
	readBacklog  *Gauge // batch_store_link_read_backlog_seconds

	wait        *Histogram // batch_job_wait_seconds (virtual)
	drainWait   *Histogram // batch_drain_wait_seconds (virtual)
	restoreWait *Histogram // batch_restore_wait_seconds (virtual)
	passWall    *Histogram // batch_pass_wall_seconds (real)

	userUsage map[string]*Gauge // batch_fairshare_usage_node_seconds
}

func newSchedMetrics(reg *Registry, pol Policy, plc Placement) *schedMetrics {
	base := Labels{"policy": pol.String(), "placement": plc.String()}
	m := &schedMetrics{
		reg:          reg,
		base:         base,
		submitted:    reg.Counter("batch_jobs_submitted_total", "Jobs accepted into the queue.", base),
		completed:    reg.Counter("batch_jobs_completed_total", "Jobs reaching a terminal state.", base),
		failed:       reg.Counter("batch_jobs_failed_total", "Jobs whose workload reported an error.", base),
		canceled:     reg.Counter("batch_jobs_canceled_total", "Jobs withdrawn by Cancel before completing.", base),
		passes:       reg.Counter("batch_scheduler_passes_total", "Scheduling passes over the queue.", base),
		candidates:   reg.Counter("batch_placement_candidates_total", "Placement candidates enumerated across dispatch attempts.", base),
		backfills:    reg.Counter("batch_backfills_total", "Dispatches that jumped a blocked reservation.", base),
		preempts:     reg.Counter("batch_preemptions_total", "Priority checkpoint drains begun.", base),
		slices:       reg.Counter("batch_slice_suspensions_total", "Quantum-boundary suspensions begun.", base),
		demotions:    reg.Counter("batch_demotions_total", "Host images evicted to the checkpoint store.", base),
		faultKills:   reg.Counter("batch_fault_kills_total", "Running gangs killed by injected faults.", base),
		nodeFaults:   reg.Counter("batch_node_faults_total", "Injected node-down events applied.", base),
		trunkOutages: reg.Counter("batch_trunk_outages_total", "Injected whole-trunk outages applied.", base),
		lostWork:     reg.Counter("batch_lost_work_seconds_total", "Work destroyed by faults since the last banked checkpoint (virtual seconds).", base),
		banks:        reg.Counter("batch_proactive_checkpoints_total", "Proactive checkpoint banks settled (Config.CheckpointInterval).", base),
		queueDepth:   reg.Gauge("batch_queue_depth", "Pending jobs (including future arrivals).", base),
		nodesDown:    reg.Gauge("batch_nodes_down", "Nodes currently failed.", base),
		writeBacklog: reg.Gauge("batch_store_link_write_backlog_seconds", "How far the store link's write timeline extends past now.", base),
		readBacklog:  reg.Gauge("batch_store_link_read_backlog_seconds", "How far the store link's read timeline extends past now.", base),
		wait:         reg.Histogram("batch_job_wait_seconds", "Queue wait (virtual seconds) of completed jobs.", nil, base),
		drainWait:    reg.Histogram("batch_drain_wait_seconds", "Write-link queue wait (virtual seconds) per checkpoint drain.", nil, base),
		restoreWait:  reg.Histogram("batch_restore_wait_seconds", "Read-link queue wait (virtual seconds) per store restore.", nil, base),
		passWall:     reg.Histogram("batch_pass_wall_seconds", "Wall-clock latency per scheduling pass.", nil, base),
		userUsage:    make(map[string]*Gauge),
	}
	return m
}

// usageGauge returns the per-user fair-share usage gauge, registering
// it on first sight of the user.
func (m *schedMetrics) usageGauge(user string) *Gauge {
	if g := m.userUsage[user]; g != nil {
		return g
	}
	ls := Labels{"user": user}
	//batchlint:allow determinism -- map-to-map copy; labelString canonicalizes by sorted key before anything renders
	for k, v := range m.base {
		ls[k] = v
	}
	g := m.reg.Gauge("batch_fairshare_usage_node_seconds", "Decayed per-user node-seconds (fair-share accounting).", ls)
	m.userUsage[user] = g
	return g
}

package batch

import (
	"errors"
	"testing"
	"time"

	"gpucluster/internal/netsim"
)

var errTestBoom = errors.New("boom")

// execFunc adapts a function to the Executor interface for tests.
type execFunc func(*Job, Allocation) (string, error)

func (f execFunc) Execute(j *Job, a Allocation) (string, error) { return f(j, a) }

// trunkRejectionJobs builds the layout that exposes the first-fit
// backfill bug on the 32-node, 24-port machine. At t=50s the free
// windows are [21,25) — straddling the trunk — and [26,30), clean. The
// head H (10 nodes, shadow 120s from A's completion) blocks; candidate
// X (4 nodes, 60s estimate, stretched to 120s by TrunkSlowdown 2 on a
// crossing window) is denied by first-fit, which only ever offers the
// crossing window, but admitted by the topology engine on [26,30).
func trunkRejectionJobs() (jobs []*Job, head, cand *Job) {
	head = &Job{Name: "head", Kind: KindLBM, Nodes: 10, Est: 100 * time.Second, Priority: 4}
	cand = &Job{Name: "cand", Kind: KindCG, Nodes: 4, Est: 60 * time.Second, Priority: 1}
	jobs = []*Job{
		{Name: "A", Kind: KindLBM, Nodes: 21, Est: 120 * time.Second, Priority: 9},
		// B's estimate is short enough that even trunk-stretched (x2 on
		// the crossing window first-fit hands it) it frees [21,25) by
		// t=50s, aligned with D.
		{Name: "B", Kind: KindLBM, Nodes: 4, Est: 25 * time.Second, Priority: 8},
		{Name: "C", Kind: KindLBM, Nodes: 1, Est: 300 * time.Second, Priority: 7},
		{Name: "D", Kind: KindLBM, Nodes: 4, Est: 50 * time.Second, Priority: 6},
		{Name: "E", Kind: KindLBM, Nodes: 2, Est: 300 * time.Second, Priority: 5},
		head, cand,
	}
	return jobs, head, cand
}

// TestFirstFitTrunkRejectionRegression reproduces the bug this PR
// fixes: under first-fit the backfill candidate is rejected outright
// because the single offered window crosses the trunk and its stretched
// runtime breaches the EASY shadow — even though another free window
// would have started it. The topology engine admits it on the clean
// window, without delaying the reserved head.
func TestFirstFitTrunkRejectionRegression(t *testing.T) {
	run := func(pl Placement) (Report, *Job, *Job) {
		s := New(Config{
			Cluster:       newTestCluster(32),
			Policy:        Backfill,
			Placement:     pl,
			TrunkSlowdown: 2,
		})
		jobs, head, cand := trunkRejectionJobs()
		submitAll(t, s, jobs)
		return s.Run(), head, cand
	}

	ffRep, ffHead, ffCand := run(PlaceFirstFit)
	if ffCand.Backfilled() {
		t.Fatalf("first-fit backfilled the candidate at %v; the regression setup is wrong", ffCand.Start)
	}
	if ffCand.Start != 120*time.Second {
		t.Fatalf("first-fit candidate started at %v, want 120s (after the head's reservation)", ffCand.Start)
	}

	topoRep, topoHead, topoCand := run(PlaceTopo)
	if !topoCand.Backfilled() {
		t.Fatal("topology-aware placement did not backfill the candidate")
	}
	if topoCand.Start >= 120*time.Second {
		t.Fatalf("topo candidate started at %v, want before the 120s reservation", topoCand.Start)
	}
	if topoCand.Alloc.CrossesTrunk {
		t.Fatalf("topo picked a trunk-crossing window %v over the clean one", topoCand.Alloc)
	}
	// The EASY guarantee holds under both engines: the reserved head
	// starts exactly at its shadow.
	for _, h := range []*Job{ffHead, topoHead} {
		if h.Start != 120*time.Second {
			t.Fatalf("reserved head started at %v, want its 120s shadow", h.Start)
		}
	}
	if topoRep.Makespan > ffRep.Makespan {
		t.Errorf("topo makespan %v worse than first-fit %v", topoRep.Makespan, ffRep.Makespan)
	}
	checkNoOverlap(t, ffRep.Jobs, 32)
	checkNoOverlap(t, topoRep.Jobs, 32)
}

// TestEASYInvariantProperty asserts, over random mixes under both
// placement engines, that no backfilled gang's scheduler-known
// (trunk-stretched) end ever exceeds the blocked head's shadow
// reservation recorded when the backfill was granted.
func TestEASYInvariantProperty(t *testing.T) {
	for _, pl := range []Placement{PlaceFirstFit, PlaceTopo} {
		for seed := int64(1); seed <= 6; seed++ {
			s := New(Config{
				Cluster:       newTestCluster(32),
				Policy:        Backfill,
				Placement:     pl,
				TrunkSlowdown: 1.5,
			})
			submitAll(t, s, SyntheticMix(seed, 300, 32))
			rep := s.Run()
			if len(rep.Jobs) != 300 {
				t.Fatalf("%v seed %d: finished %d of 300", pl, seed, len(rep.Jobs))
			}
			for _, j := range rep.Jobs {
				if !j.Backfilled() {
					continue
				}
				// With no Actual hook, End is the scheduler-known
				// stretched completion fixed at start.
				if j.End > j.shadow {
					t.Fatalf("%v seed %d: backfilled %s ends %v past its shadow %v",
						pl, seed, j, j.End, j.shadow)
				}
			}
			checkNoOverlap(t, rep.Jobs, 32)
		}
	}
}

// TestTopoPlacementNoWorseOnDefaultMix pins the acceptance bar on the
// clusterctl default mix (32 nodes, 200 jobs, seed 42, trunk-slowdown
// 1.1): the topology engine must not lose makespan or utilization to
// first-fit under either policy.
func TestTopoPlacementNoWorseOnDefaultMix(t *testing.T) {
	for _, pol := range []Policy{FIFO, Backfill} {
		run := func(pl Placement) Report {
			s := New(Config{
				Cluster:       newTestCluster(32),
				Policy:        pol,
				Placement:     pl,
				TrunkSlowdown: 1.1,
			})
			submitAll(t, s, SyntheticMix(42, 200, 32))
			return s.Run()
		}
		ff, topo := run(PlaceFirstFit), run(PlaceTopo)
		if topo.Makespan > ff.Makespan {
			t.Errorf("%v: topo makespan %v worse than first-fit %v", pol, topo.Makespan, ff.Makespan)
		}
		if topo.Utilization < ff.Utilization {
			t.Errorf("%v: topo utilization %.3f below first-fit %.3f", pol, topo.Utilization, ff.Utilization)
		}
	}
}

// TestNonContiguousAssembly exercises the fragment-assembly path: when
// no contiguous window exists, the topology engine splits the gang over
// free fragments while first-fit keeps the job waiting.
func TestNonContiguousAssembly(t *testing.T) {
	// Cluster-level: fragment an 8-node machine into free [0,3) and
	// [6,8) around a busy middle.
	c := NewCluster(8, netsim.GigabitSwitch(8))
	a, _ := c.Alloc(3) // [0,3)
	if _, ok := c.Alloc(3); !ok {
		t.Fatal("could not occupy the middle") // [3,6)
	}
	c.Release(a, 0)
	cands := c.candidates(5, 0, PlaceTopo)
	if len(cands) == 0 {
		t.Fatal("no candidates for a split 5-node gang over fragments [3,6)+... ")
	}
	got := c.commit(cands[0])
	if got.Contiguous() || got.Count != 5 {
		t.Fatalf("split allocation %v, want 5 nodes over >1 range", got)
	}
	nodes := got.Nodes()
	if len(nodes) != 5 || got.Grid.Size() != 5 {
		t.Fatalf("rank map %v / grid %v does not cover 5 ranks", nodes, got.Grid)
	}
	for r, n := range nodes {
		if got.Port(r) != n {
			t.Fatalf("rank %d port %d, want node %d", r, got.Port(r), n)
		}
	}
	c.Release(got, time.Second)

	// Scheduler-level: the split gang starts as soon as enough
	// fragments free up; first-fit waits for a contiguous window.
	start := func(pl Placement) time.Duration {
		s := New(Config{Cluster: NewCluster(8, netsim.GigabitSwitch(8)), Policy: FIFO, Placement: pl})
		short := &Job{Name: "short", Kind: KindPDE, Nodes: 3, Est: 10 * time.Second, Priority: 9}
		long := &Job{Name: "long", Kind: KindPDE, Nodes: 3, Est: 100 * time.Second, Priority: 8}
		tail := &Job{Name: "tail", Kind: KindPDE, Nodes: 2, Est: 10 * time.Second, Priority: 7}
		wide := &Job{Name: "wide", Kind: KindPDE, Nodes: 5, Est: 20 * time.Second, Priority: 0}
		submitAll(t, s, []*Job{short, long, tail, wide})
		rep := s.Run()
		checkNoOverlap(t, rep.Jobs, 8)
		return wide.Start
	}
	if got := start(PlaceTopo); got != 10*time.Second {
		t.Fatalf("topo started the wide job at %v, want 10s on fragments", got)
	}
	if got := start(PlaceFirstFit); got != 100*time.Second {
		t.Fatalf("first-fit started the wide job at %v, want 100s (contiguous window)", got)
	}
}

// TestHeterogeneousMemoryPlacement pins the granted-nodes memory check:
// a node with too little memory is skipped by placement (both engines)
// instead of being blindly granted per the old Spec(0) shortcut.
func TestHeterogeneousMemoryPlacement(t *testing.T) {
	for _, pl := range []Placement{PlaceTopo, PlaceFirstFit} {
		c := NewCluster(4, netsim.GigabitSwitch(4))
		small := c.Spec(1)
		small.MemBytes = 512 << 10
		c.SetSpec(1, small)
		s := New(Config{Cluster: c, Policy: FIFO, Placement: pl})
		// KindPDE needs cells*8 bytes: 64*64*32*8 = 1 MiB per node.
		j := &Job{Name: "mem", Kind: KindPDE, Nodes: 2, Problem: [3]int{64, 64, 32}, Est: time.Second}
		submitAll(t, s, []*Job{j})
		rep := s.Run()
		if len(rep.Jobs) != 1 || j.State != Done {
			t.Fatalf("%v: job did not finish: %v", pl, j.State)
		}
		for _, n := range j.Alloc.Nodes() {
			if n == 1 {
				t.Fatalf("%v: placement granted node 1 (512 KiB) to a 1 MiB/node job: %v", pl, j.Alloc)
			}
		}
	}
	// Admission: a job needing more big-memory nodes than exist is
	// rejected at submit.
	c := NewCluster(4, netsim.GigabitSwitch(4))
	for i := 1; i < 4; i++ {
		small := c.Spec(i)
		small.MemBytes = 512 << 10
		c.SetSpec(i, small)
	}
	s := New(Config{Cluster: c, Policy: FIFO})
	err := s.Submit(&Job{Name: "toobig", Kind: KindPDE, Nodes: 2, Problem: [3]int{64, 64, 32}})
	if err == nil {
		t.Fatal("submit accepted a 2-node job with only one sufficient node")
	}
}

// TestSubmitLeavesSpecPristine is the regression for Submit mutating
// caller-owned spec fields: replaying the same *Job specs against a
// second scheduler must see the original inputs.
func TestSubmitLeavesSpecPristine(t *testing.T) {
	j := &Job{Name: "replay", Kind: KindPDE, Nodes: 1, Est: 5 * time.Second}
	s1 := New(Config{Cluster: newTestCluster(2), Policy: FIFO})
	submitAll(t, s1, []*Job{j})
	rep1 := s1.Run()
	// Advance s1's clock, then resubmit: the old code stamped
	// j.Submit/j.Steps/j.Problem here.
	submitAll(t, s1, []*Job{j})
	s1.Run()
	if j.Steps != 0 || j.Problem != ([3]int{}) || j.Submit != 0 || j.Est != 5*time.Second {
		t.Fatalf("spec mutated: Steps=%d Problem=%v Submit=%v Est=%v",
			j.Steps, j.Problem, j.Submit, j.Est)
	}
	if j.ResolvedSteps() != 1 || j.ResolvedProblem() != defaultProblem(KindPDE) {
		t.Fatalf("resolution missing: steps=%d problem=%v", j.ResolvedSteps(), j.ResolvedProblem())
	}
	if j.Arrival() != rep1.Makespan {
		t.Fatalf("resubmission arrival %v, want the advanced clock %v", j.Arrival(), rep1.Makespan)
	}
	// A fresh scheduler sees the pristine spec: the job arrives at 0
	// and the makespan matches the first run.
	s2 := New(Config{Cluster: newTestCluster(2), Policy: FIFO})
	submitAll(t, s2, []*Job{j})
	rep2 := s2.Run()
	if j.Arrival() != 0 || rep2.Makespan != rep1.Makespan {
		t.Fatalf("replay diverged: arrival %v, makespan %v vs %v",
			j.Arrival(), rep2.Makespan, rep1.Makespan)
	}
}

// TestMemoryNeedCeiling pins the KindCG footprint to ceiling division:
// the largest rank's share, not the floored average.
func TestMemoryNeedCeiling(t *testing.T) {
	const perUnknown = 5*12 + 6*4
	// 65x65 = 4225 unknowns over 2 ranks: the big rank holds 2113.
	if got, want := memoryNeed(KindCG, [3]int{65, 65, 1}, 2), int64(2113*perUnknown); got != want {
		t.Fatalf("memoryNeed = %d, want %d (ceiling share)", got, want)
	}
	if got, want := memoryNeed(KindCG, [3]int{64, 64, 1}, 4), int64(1024*perUnknown); got != want {
		t.Fatalf("even split changed: %d, want %d", got, want)
	}
}

func TestParsePlacement(t *testing.T) {
	for _, pl := range []Placement{PlaceTopo, PlaceFirstFit} {
		got, err := ParsePlacement(pl.String())
		if err != nil || got != pl {
			t.Fatalf("round trip %v: got %v, err %v", pl, got, err)
		}
	}
	if _, err := ParsePlacement("mystery"); err == nil {
		t.Fatal("unknown placement accepted")
	}
}

// TestAssemblyBeatsCrossingWindow pins the case where a contiguous
// window exists but every one straddles the trunk: a non-crossing
// assembly from small fragments must still be enumerated and win.
func TestAssemblyBeatsCrossingWindow(t *testing.T) {
	// Free runs [0,3), [4,6), [22,27) on the 24-port machine: the only
	// 5-wide window crosses the trunk; [0,3)+[4,6) does not.
	c := NewCluster(32, netsim.GigabitSwitch(32))
	occupy := func(k int) Allocation {
		a, ok := c.Alloc(k)
		if !ok {
			t.Fatalf("setup alloc of %d failed", k)
		}
		return a
	}
	a0 := occupy(3) // [0,3)
	occupy(1)       // [3,4)
	a1 := occupy(2) // [4,6)
	occupy(16)      // [6,22)
	a2 := occupy(5) // [22,27)
	occupy(5)       // [27,32)
	c.Release(a0, 0)
	c.Release(a1, 0)
	c.Release(a2, 0)

	cands := c.candidates(5, 0, PlaceTopo)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	best := c.commit(cands[0])
	if best.CrossesTrunk {
		t.Fatalf("best candidate %v crosses the trunk; assembly [0,3)+[4,6) was available", best)
	}
	if best.Contiguous() {
		t.Fatalf("best candidate %v contiguous; only the crossing window [22,27) is", best)
	}
}

// TestReplayResetsLifecycle asserts a failed job replayed into a second
// scheduler does not inherit the first run's failure.
func TestReplayResetsLifecycle(t *testing.T) {
	j := &Job{Name: "flaky", Kind: KindPDE, Nodes: 1, Est: time.Second}
	fail := execFunc(func(*Job, Allocation) (string, error) {
		return "", errTestBoom
	})
	s1 := New(Config{Cluster: newTestCluster(2), Policy: FIFO, Execute: fail})
	submitAll(t, s1, []*Job{j})
	if rep := s1.Run(); rep.Failed != 1 || j.Err == nil {
		t.Fatalf("setup: first run should fail the job (failed=%d err=%v)", rep.Failed, j.Err)
	}
	s2 := New(Config{Cluster: newTestCluster(2), Policy: FIFO})
	submitAll(t, s2, []*Job{j})
	rep := s2.Run()
	if rep.Failed != 0 || j.State != Done || j.Err != nil || j.Detail != "" {
		t.Fatalf("replay inherited stale lifecycle: failed=%d state=%v err=%v detail=%q",
			rep.Failed, j.State, j.Err, j.Detail)
	}
}

// TestTopoAvoidsTrunkWindow checks the core scoring preference directly:
// with both a crossing and a clean window free, the engine takes the
// clean one even when the crossing one is leftmost.
func TestTopoAvoidsTrunkWindow(t *testing.T) {
	c := NewCluster(32, netsim.GigabitSwitch(32))
	if _, ok := c.Alloc(22); !ok { // [0,22): leaves [22,32) free
		t.Fatal("setup alloc failed")
	}
	cands := c.candidates(4, 0, PlaceTopo)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	best := c.commit(cands[0])
	if best.CrossesTrunk {
		t.Fatalf("best candidate %v crosses the trunk; a clean window existed in [24,32)", best)
	}
	if first := best.Ranges[0].First; first < 24 {
		t.Fatalf("best candidate %v overlaps the trunk boundary side", best)
	}
}

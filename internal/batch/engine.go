package batch

import (
	"sync"
	"time"
)

// Engine wraps the Scheduler's incremental core (Step/RunUntil/Cancel)
// behind a mutex and a Clock, turning the one-shot virtual-time
// simulator into a long-running service core: jobs are ingested and
// canceled at any moment, the event loop advances as far as the clock
// allows, and a background pump (Start/Stop) drives the loop from wall
// time with catch-up semantics — if the pump oversleeps, every missed
// event is processed in order, deterministically, exactly as the
// virtual-time replay would have.
//
// Under a VirtualClock the engine is the Scheduler with a lock: Run()
// drains everything instantly and reproduces the bit-for-bit replay
// results. Under a WallClock the same event loop advances only as far
// as scaled real time has reached, so arrivals land mid-run the way
// they do on a live cluster front-end.

// Clock supplies the engine's notion of "now" on the virtual timeline.
type Clock interface {
	// Now returns the current virtual instant. The engine processes
	// events up to and including it.
	Now() time.Duration
}

// VirtualClock is the simulation clock: it always reads Forever, so
// every queued event is due and the engine drains without waiting.
type VirtualClock struct{}

// Now implements Clock.
func (VirtualClock) Now() time.Duration { return Forever }

// WallClock maps real elapsed time onto the virtual timeline:
// virtual = (wall - epoch) * Compress. Compress > 1 runs the cluster
// faster than real time (a month-long trace in minutes); 1 is real
// time.
type WallClock struct {
	// Epoch is the wall instant of virtual zero.
	Epoch time.Time
	// Compress is the time-compression factor; <= 0 means 1.
	Compress float64
}

// NewWallClock starts a wall clock now at the given compression.
func NewWallClock(compress float64) *WallClock {
	return &WallClock{Epoch: time.Now(), Compress: compress}
}

// Now implements Clock.
func (c *WallClock) Now() time.Duration {
	f := c.Compress
	if f <= 0 {
		f = 1
	}
	return time.Duration(float64(time.Since(c.Epoch)) * f)
}

// Until returns the wall-clock wait from now until virtual instant v —
// how long the pump may sleep before v is due.
func (c *WallClock) Until(v time.Duration) time.Duration {
	f := c.Compress
	if f <= 0 {
		f = 1
	}
	d := v - c.Now()
	if d <= 0 {
		return 0
	}
	return time.Duration(float64(d) / f)
}

// JobStatus is a point-in-time view of one job, safe to hand across
// the engine lock.
type JobStatus struct {
	ID       int
	Name     string
	User     string
	Kind     JobKind
	Nodes    int
	Priority int
	State    JobState
	// Submit, Start, and End are virtual instants; End is zero until
	// terminal, Start until first dispatch.
	Submit, Start, End time.Duration
	// Wait is Start - Submit for dispatched jobs.
	Wait time.Duration
	// Estimate is the resolved runtime estimate.
	Estimate time.Duration
	// Preemptions and TimeSlices count suspensions so far.
	Preemptions, TimeSlices int
	// Detail and Failed carry the workload outcome for terminal jobs.
	Detail string
	Failed bool
}

// QueueStatus summarizes the engine at an instant.
type QueueStatus struct {
	// Now is the engine's virtual clock position.
	Now time.Duration
	// Queued, Running, and Finished count jobs by lifecycle stage.
	Queued, Running, Finished int
	// Jobs lists every non-terminal job, queued first (discipline
	// order), then running (completion order).
	Jobs []JobStatus
}

// UserLoad is one user's live footprint, the admission-control input.
type UserLoad struct {
	// Queued counts the user's non-terminal jobs (queued or running).
	Queued int
	// NodeSeconds sums nodes x remaining-estimate over those jobs —
	// the work the user already has in flight.
	NodeSeconds float64
}

// Engine is safe for concurrent use.
type Engine struct {
	mu    sync.Mutex
	s     *Scheduler
	clock Clock

	// pump state (Start/Stop)
	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// NewEngine wraps a scheduler built from cfg. A nil clock selects the
// VirtualClock.
func NewEngine(cfg Config, clock Clock) *Engine {
	if clock == nil {
		clock = VirtualClock{}
	}
	return &Engine{s: New(cfg), clock: clock, kick: make(chan struct{}, 1)}
}

// catchUp advances the event loop to the clock. Under a VirtualClock
// (Now() == Forever) it is a no-op: virtual time is driven explicitly
// by Run/RunUntil/Step (or the pump), never as a side effect of an
// ingest or a query — that is what keeps the batch submit-then-Run
// pattern bit-for-bit identical through the facade. Callers hold e.mu.
func (e *Engine) catchUp() {
	if t := e.clock.Now(); t != Forever {
		e.s.RunUntil(t)
	}
}

// Ingest submits a job spec, stamping its arrival at the clock's
// current instant (a spec carrying a later Submit keeps it — a future
// arrival on the virtual timeline). It returns the assigned job ID.
func (e *Engine) Ingest(j *Job) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.catchUp()
	if now := e.clock.Now(); now != Forever && j.Submit < now {
		j.Submit = now
	}
	if err := e.s.Submit(j); err != nil {
		return 0, err
	}
	e.poke()
	return j.ID, nil
}

// Cancel withdraws a job (see Scheduler.Cancel for the lifecycle
// semantics), first catching the event loop up so the decision runs
// against current state.
func (e *Engine) Cancel(id int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.catchUp()
	err := e.s.Cancel(id)
	e.poke()
	return err
}

// Step advances one event (see Scheduler.Step).
func (e *Engine) Step() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.Step()
}

// RunUntil processes every event due at or before t.
func (e *Engine) RunUntil(t time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.s.RunUntil(t)
}

// Run drains the queue to completion and returns the report — the
// virtual-time entry point, bit-for-bit identical to Scheduler.Run.
func (e *Engine) Run() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.Run()
}

// Report snapshots the current report without requiring the queue to
// be drained.
func (e *Engine) Report() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.report()
}

// Now returns the engine's virtual clock position.
func (e *Engine) Now() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.s.Now()
}

func jobStatus(j *Job) JobStatus {
	st := JobStatus{
		ID:          j.ID,
		Name:        j.Name,
		User:        j.User,
		Kind:        j.Kind,
		Nodes:       j.Nodes,
		Priority:    j.Priority,
		State:       j.State,
		Submit:      j.arrive,
		Estimate:    j.est,
		Preemptions: j.Preemptions(),
		TimeSlices:  j.TimeSlices(),
		Detail:      j.Detail,
		Failed:      j.State == Failed,
	}
	if len(j.History) > 0 || j.State != Queued {
		st.Start = j.Start
		st.Wait = j.Wait()
	}
	switch j.State {
	case Done, Failed, Canceled:
		st.End = j.End
	}
	return st
}

// JobStatus returns a point-in-time view of one job.
func (e *Engine) JobStatus(id int) (JobStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.catchUp()
	j, err := e.s.JobByID(id)
	if err != nil {
		return JobStatus{}, err
	}
	return jobStatus(j), nil
}

// Explain aggregates the recorded blocked-pass breakdown for one job —
// empty unless the engine's Config carried an event-replaying Recorder
// (the built-in MemRecorder).
func (e *Engine) Explain(id int) (Explanation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.catchUp()
	if _, err := e.s.JobByID(id); err != nil {
		return Explanation{}, err
	}
	if src, ok := e.s.cfg.Recorder.(interface{ Events() []Event }); ok {
		return ExplainEvents(src.Events(), id), nil
	}
	return Explanation{JobID: id}, nil
}

// Snapshot summarizes the live queue: every non-terminal job, queued
// first in discipline order, then running in completion order.
func (e *Engine) Snapshot() QueueStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.catchUp()
	s := e.s
	qs := QueueStatus{
		Now:      s.now,
		Queued:   s.pending.len(),
		Running:  s.running.Len(),
		Finished: len(s.finished),
	}
	for _, j := range s.pending.ordered(s.less) {
		if j == nil {
			continue
		}
		qs.Jobs = append(qs.Jobs, jobStatus(j))
	}
	running := make([]*Job, len(s.running))
	copy(running, s.running)
	for i := 1; i < len(running); i++ {
		for k := i; k > 0 && (running[k].End < running[k-1].End ||
			(running[k].End == running[k-1].End && running[k].ID < running[k-1].ID)); k-- {
			running[k], running[k-1] = running[k-1], running[k]
		}
	}
	for _, j := range running {
		qs.Jobs = append(qs.Jobs, jobStatus(j))
	}
	return qs
}

// Load returns one user's live footprint — queued-or-running job count
// and committed node-seconds — for quota admission at ingest.
func (e *Engine) Load(user string) UserLoad {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.catchUp()
	var l UserLoad
	add := func(j *Job) {
		if j.User != user {
			return
		}
		l.Queued++
		l.NodeSeconds += float64(j.Nodes) * j.estLeft().Seconds()
	}
	for _, j := range e.s.pending.jobs {
		if j != nil {
			add(j)
		}
	}
	for _, j := range e.s.running {
		add(j)
	}
	return l
}

// poke wakes the pump (if running) so it re-reads the event horizon
// after an ingest or cancel changed it. Callers hold e.mu.
func (e *Engine) poke() {
	if e.done == nil {
		return
	}
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// Start launches the background pump: a goroutine that advances the
// event loop as the clock reaches each event, sleeping between events
// (wall-scaled when the clock is a *WallClock, a coarse poll
// otherwise) and waking early when Ingest or Cancel changes the
// horizon. Start is a no-op if the pump is already running.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done != nil {
		return
	}
	e.done = make(chan struct{})
	e.wg.Add(1)
	go e.pump(e.done)
}

// Stop halts the pump and waits for it to exit. The engine remains
// usable (Ingest/Cancel/queries still work; Start may be called
// again).
func (e *Engine) Stop() {
	e.mu.Lock()
	done := e.done
	e.done = nil
	e.mu.Unlock()
	if done == nil {
		return
	}
	close(done)
	e.wg.Wait()
}

// Drain stops the pump after first running every event already due —
// with a VirtualClock, the full remaining schedule — and returns the
// final report. The graceful-shutdown path for servers.
func (e *Engine) Drain() Report {
	e.Stop()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.catchUp()
	return e.s.report()
}

// pump is the wall-time driver loop.
func (e *Engine) pump(done chan struct{}) {
	defer e.wg.Done()
	const idlePoll = 50 * time.Millisecond
	for {
		e.mu.Lock()
		// Unlike catchUp, the pump drains a VirtualClock engine outright:
		// starting a pump is the explicit request to advance time.
		e.s.RunUntil(e.clock.Now())
		next, ok := e.s.nextEvent()
		e.mu.Unlock()
		sleep := idlePoll
		if ok {
			if wc, isWall := e.clock.(*WallClock); isWall {
				sleep = wc.Until(next)
			} else {
				sleep = 0
			}
		}
		if sleep <= 0 {
			// Horizon already due (or a virtual clock): yield briefly so
			// a tight loop cannot starve Ingest/Cancel of the lock.
			sleep = time.Millisecond
		}
		t := time.NewTimer(sleep)
		select {
		case <-done:
			t.Stop()
			return
		case <-e.kick:
			t.Stop()
		case <-t.C:
		}
	}
}

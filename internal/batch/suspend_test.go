package batch

import (
	"strings"
	"testing"
	"time"
)

// fixedHostCosts pins deterministic suspend-to-host drain/resume costs
// next to fixedCosts' store prices.
func fixedHostCosts(suspend, resume time.Duration) (func(*Job) time.Duration, func(*Job) time.Duration) {
	return func(*Job) time.Duration { return suspend },
		func(*Job) time.Duration { return resume }
}

// TestSuspendToHostSkipsStoreRoundTrip pins the cheap tier: a victim
// whose image fits in its nodes' free memory suspends into RAM (1s bus
// drain instead of the 10s store checkpoint), resumes on its home nodes
// for 1s instead of the 5s store restore, and never touches the store
// link — against store-only preemption the checkpoint overhead drops
// from 15s to 2s on the same schedule.
func TestSuspendToHostSkipsStoreRoundTrip(t *testing.T) {
	run := func(suspend bool) (*Job, *Job, Report) {
		ck, rs := fixedCosts(10*time.Second, 5*time.Second)
		hs, hr := fixedHostCosts(time.Second, time.Second)
		s := New(Config{Cluster: newTestCluster(8), Policy: Backfill,
			Preempt: true, SuspendToHost: suspend,
			CheckpointCost: ck, RestoreCost: rs,
			HostSuspendCost: hs, HostResumeCost: hr})
		v := &Job{Name: "v", Nodes: 8, Priority: 0, Est: 500 * time.Second}
		u := &Job{Name: "u", Nodes: 8, Priority: 9, Est: 30 * time.Second, Submit: 10 * time.Second}
		submitAll(t, s, []*Job{v, u})
		rep := s.Run()
		checkNoOverlap(t, rep.Jobs, 8)
		return v, u, rep
	}

	v, u, rep := run(true)
	if u.Start != 11*time.Second {
		t.Fatalf("urgent started %v, want 11s (1s in-RAM drain)", u.Start)
	}
	if v.End != 532*time.Second {
		t.Fatalf("victim ended %v, want 532s (resume at 41s + 1s + 490s left)", v.End)
	}
	if got := v.CheckpointOverhead(); got != 2*time.Second {
		t.Fatalf("victim overhead %v, want 2s (bus-only drain + resume)", got)
	}
	if rep.HostSuspends != 1 || rep.Demotions != 0 {
		t.Fatalf("host suspensions %d / demotions %d, want 1 / 0", rep.HostSuspends, rep.Demotions)
	}
	if rep.DrainWait != 0 || rep.RestoreWait != 0 {
		t.Fatalf("link waits %v/%v, want zero — suspend-to-host bypasses the store link",
			rep.DrainWait, rep.RestoreWait)
	}
	if v.BusyTime() != v.Estimate()+v.CheckpointOverhead() {
		t.Fatalf("victim busy %v != est %v + overhead %v",
			v.BusyTime(), v.Estimate(), v.CheckpointOverhead())
	}
	if !strings.Contains(rep.String(), "suspend-to-host: 1 in-RAM suspensions") {
		t.Fatalf("report missing suspend-to-host line:\n%s", rep)
	}

	vStore, uStore, repStore := run(false)
	if uStore.Start != 20*time.Second || vStore.End != 545*time.Second {
		t.Fatalf("store-only run %v/%v, want 20s start and 545s end", uStore.Start, vStore.End)
	}
	if repStore.HostSuspends != 0 {
		t.Fatalf("store-only run recorded %d host suspensions", repStore.HostSuspends)
	}
	if rep.CheckpointOverhead >= repStore.CheckpointOverhead {
		t.Fatalf("suspend-to-host overhead %v not below store-only %v",
			rep.CheckpointOverhead, repStore.CheckpointOverhead)
	}
}

// TestSuspendToHostDemotionPaysSkippedDrain pins the eviction path: a
// resident image blocks a memory-constrained waiter (the nodes are
// free, their RAM is not), so the image demotes to the store — paying,
// on the link's write timeline, exactly the store transfer its
// suspension skipped (checkpoint cost minus the bus drain) — the
// waiter starts when the write settles, and the demoted job's next
// restore is a full store restore.
func TestSuspendToHostDemotionPaysSkippedDrain(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 5*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	c := newTestCluster(2)
	for i := 0; i < 2; i++ {
		c.SetSpec(i, NodeSpec{GPUs: 1, MemBytes: 100 << 20, Group: c.Spec(i).Group})
	}
	s := New(Config{Cluster: c, Policy: Backfill,
		Preempt: true, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	// ~63 MB per node: fits a 100 MB node alone, but not alongside a
	// resident image of the same size.
	big := [3]int{256, 256, 120}
	v := &Job{Name: "v", Kind: KindPDE, Nodes: 2, Priority: 0, Est: 500 * time.Second, Problem: big}
	u := &Job{Name: "u", Kind: KindPDE, Nodes: 2, Priority: 9, Est: 30 * time.Second,
		Submit: 10 * time.Second, Problem: [3]int{64, 64, 16}}
	b := &Job{Name: "b", Kind: KindPDE, Nodes: 2, Priority: 5, Est: 20 * time.Second,
		Submit: 20 * time.Second, Problem: big}
	submitAll(t, s, []*Job{v, u, b})
	rep := s.Run()
	// v suspends into RAM [10,11); u runs [11,41). b (big footprint)
	// arrives at 20 but cannot start at 41 even though the nodes are
	// free: v's image pins ~63 MB of each node's 100 MB. Demotion
	// writes the image out over [41,50) — the 9s store leg the 1s host
	// drain skipped — and b starts at the settlement.
	if rep.HostSuspends != 1 || rep.Demotions != 1 {
		t.Fatalf("host suspensions %d / demotions %d, want 1 / 1", rep.HostSuspends, rep.Demotions)
	}
	if want := 9 * time.Second; rep.DemotionTime != want {
		t.Fatalf("demotion time %v, want %v (checkpoint cost minus host drain)", rep.DemotionTime, want)
	}
	if b.Start != 50*time.Second {
		t.Fatalf("memory-squeezed waiter started %v, want 50s (demotion settlement)", b.Start)
	}
	// The demoted job's image now lives in the store: its restore is
	// the full 5s store read, not the 1s host resume.
	if v.End != 565*time.Second {
		t.Fatalf("demoted job ended %v, want 565s (redispatch at 70s + 5s store restore + 490s)", v.End)
	}
	// Demotion charges the job no overhead — it held no nodes while
	// the image drained out — so busy time stays work + overhead with
	// only the 1s host drain and 5s store restore charged.
	if got := v.CheckpointOverhead(); got != 6*time.Second {
		t.Fatalf("demoted job overhead %v, want 6s (1s host drain + 5s store restore)", got)
	}
	if v.BusyTime() != v.Estimate()+v.CheckpointOverhead() {
		t.Fatalf("v busy %v != est %v + overhead %v", v.BusyTime(), v.Estimate(), v.CheckpointOverhead())
	}
	checkNoOverlap(t, rep.Jobs, 2)
}

// TestHostImageMigratesWhenHomeNodesTaken pins the migration path: a
// host-suspended gang whose home nodes are occupied at re-dispatch
// resumes elsewhere, paying the full store restore on the read link
// instead of the cheap bus resume (the image cannot teleport between
// nodes), and releasing the pinned memory.
func TestHostImageMigratesWhenHomeNodesTaken(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 5*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	s := New(Config{Cluster: newTestCluster(16), Policy: Backfill,
		Preempt: true, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	// other takes [0,8) (higher priority, placed first), v its home
	// [8,16). The camper preempts v at 10 and squats on the home nodes
	// until long after v's re-dispatch.
	v := &Job{Name: "v", Nodes: 8, Priority: 0, Est: 500 * time.Second}
	other := &Job{Name: "other", Nodes: 8, Priority: 3, Est: 40 * time.Second}
	camper := &Job{Name: "camper", Nodes: 8, Priority: 9, Est: 200 * time.Second, Submit: 10 * time.Second}
	submitAll(t, s, []*Job{v, other, camper})
	rep := s.Run()
	if v.Preemptions() != 1 {
		t.Fatalf("v preempted %d times, want 1", v.Preemptions())
	}
	if rep.HostSuspends != 1 {
		t.Fatalf("host suspensions %d, want 1", rep.HostSuspends)
	}
	// other ends at 40; v re-dispatches onto its nodes — not home, the
	// camper holds that gang until 211 — so the image drains out of
	// the home RAM over the write link (the 9s store leg its
	// suspension skipped) and rides back as the 5s store restore: a
	// 14s prefix, End = 40 + 14 + 490 = 544.
	if v.End != 544*time.Second {
		t.Fatalf("migrated job ended %v, want 544s (9s outbound write + 5s store restore)", v.End)
	}
	if got := v.CheckpointOverhead(); got != 15*time.Second {
		t.Fatalf("migrated job overhead %v, want 15s (1s host drain + 9s write-out + 5s restore)", got)
	}
	if v.BusyTime() != v.Estimate()+v.CheckpointOverhead() {
		t.Fatalf("v busy %v != est %v + overhead %v", v.BusyTime(), v.Estimate(), v.CheckpointOverhead())
	}
	checkNoOverlap(t, rep.Jobs, 16)
}

// TestWaveAdmissionForcesStoreWhenImageBlocksBeneficiary pins the
// tier decision against the beneficiary's memory: when a victim's
// in-RAM image would pin the very memory the blocked job needs, the
// wave sends the victim to the store tier directly instead of
// suspending to host and immediately demoting — no demotion
// round-trip, no pinned image.
func TestWaveAdmissionForcesStoreWhenImageBlocksBeneficiary(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 5*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	c := newTestCluster(2)
	for i := 0; i < 2; i++ {
		c.SetSpec(i, NodeSpec{GPUs: 1, MemBytes: 100 << 20, Group: c.Spec(i).Group})
	}
	s := New(Config{Cluster: c, Policy: Backfill,
		Preempt: true, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	big := [3]int{256, 256, 120} // ~63 MB of a 100 MB node
	v := &Job{Name: "v", Kind: KindPDE, Nodes: 2, Priority: 0, Est: 500 * time.Second, Problem: big}
	j := &Job{Name: "j", Kind: KindPDE, Nodes: 2, Priority: 9, Est: 20 * time.Second,
		Submit: 10 * time.Second, Problem: big}
	submitAll(t, s, []*Job{v, j})
	rep := s.Run()
	// A host suspension would leave j unplaceable (100 - 63 < 63):
	// the victim drains straight to the store over [10,20) and j
	// starts at the drain end — no in-RAM suspension, no demotion.
	if rep.HostSuspends != 0 || rep.Demotions != 0 {
		t.Fatalf("host suspensions %d / demotions %d, want 0 / 0 (store tier forced)",
			rep.HostSuspends, rep.Demotions)
	}
	if j.Start != 20*time.Second {
		t.Fatalf("beneficiary started %v, want 20s (one direct store drain)", j.Start)
	}
	if v.End != 535*time.Second {
		t.Fatalf("victim ended %v, want 535s (redispatch at 40s + 5s store restore + 490s)", v.End)
	}
	if got := v.CheckpointOverhead(); got != 15*time.Second {
		t.Fatalf("victim overhead %v, want 15s (full store drain + restore)", got)
	}
	if v.BusyTime() != v.Estimate()+v.CheckpointOverhead() {
		t.Fatalf("v busy %v != est %v + overhead %v", v.BusyTime(), v.Estimate(), v.CheckpointOverhead())
	}
	checkNoOverlap(t, rep.Jobs, 2)
}

// TestDemotionEvictsOnlyNeededImages pins the smallest-sufficient-set
// contract: an image whose trial release contributed nothing to the
// blocked job (its home nodes are occupied anyway) stays resident —
// only the image actually in the way pays the store write — and the
// demotion settlement is a real shadow event, so a short filler
// backfills the window in front of the waiter's reservation.
func TestDemotionEvictsOnlyNeededImages(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 5*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	c := newTestCluster(4)
	for i := 0; i < 4; i++ {
		c.SetSpec(i, NodeSpec{GPUs: 1, MemBytes: 100 << 20, Group: c.Spec(i).Group})
	}
	s := New(Config{Cluster: c, Policy: Backfill,
		Preempt: true, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	big := [3]int{256, 256, 120} // ~63 MB per node
	small := [3]int{64, 64, 16}  // ~0.5 MB per node
	// a takes nodes [0,2) (placed first on priority), b takes [2,4);
	// both suspend into RAM when u preempts the whole machine.
	a := &Job{Name: "a", Kind: KindPDE, Nodes: 2, Priority: 1, Est: 500 * time.Second, Problem: big}
	b := &Job{Name: "b", Kind: KindPDE, Nodes: 2, Priority: 0, Est: 500 * time.Second, Problem: big}
	u := &Job{Name: "u", Kind: KindPDE, Nodes: 4, Priority: 9, Est: 30 * time.Second,
		Submit: 10 * time.Second, Problem: small}
	// camper lands on a's home [0,2) when u ends; j then needs 63 MB
	// on two nodes and only b's image is truly in its way. The camper
	// leaves at 66, before any other gang frees, so a resumes home.
	camper := &Job{Name: "camper", Kind: KindPDE, Nodes: 2, Priority: 8, Est: 25 * time.Second,
		Submit: 15 * time.Second, Problem: small}
	j := &Job{Name: "j", Kind: KindPDE, Nodes: 2, Priority: 5, Est: 20 * time.Second,
		Submit: 16 * time.Second, Problem: big}
	// filler fits the 9s demotion window exactly: backfills [41,50).
	filler := &Job{Name: "filler", Kind: KindPDE, Nodes: 2, Priority: 0, Est: 9 * time.Second,
		Submit: 16 * time.Second, Problem: small}
	submitAll(t, s, []*Job{a, b, u, camper, j, filler})
	rep := s.Run()
	// Both victims suspend in RAM in parallel [10,11); u runs [11,41).
	// At 41 camper takes a's home; j is memory-blocked. The trial
	// releases a's image first (useless: camper owns those nodes),
	// then b's (sufficient) — minimization keeps a resident and
	// demotes only b, whose write settles at 50.
	if rep.HostSuspends != 2 {
		t.Fatalf("host suspensions %d, want 2", rep.HostSuspends)
	}
	if rep.Demotions != 1 || rep.DemotionTime != 9*time.Second {
		t.Fatalf("demotions %d (%v), want exactly 1 paying the 9s skipped store leg",
			rep.Demotions, rep.DemotionTime)
	}
	if j.Start != 50*time.Second {
		t.Fatalf("waiter started %v, want 50s (b's demotion settlement)", j.Start)
	}
	// The settlement is a shadow event: the filler backfills the
	// [41,50) window instead of being frozen behind a now-bound shadow.
	if filler.Start != 41*time.Second || !filler.Backfilled() {
		t.Fatalf("filler started %v (backfilled=%v), want a backfill at 41s into the demotion window",
			filler.Start, filler.Backfilled())
	}
	// a kept its image: cheap host resume at its home once the camper
	// leaves at 66 (End = 66 + 1 + 490). b paid the full store restore.
	if a.End != 557*time.Second {
		t.Fatalf("kept image ended %v, want 557s (home resume at 66s)", a.End)
	}
	if got := a.CheckpointOverhead(); got != 2*time.Second {
		t.Fatalf("kept image's overhead %v, want 2s (host drain + home resume)", got)
	}
	if got := b.CheckpointOverhead(); got != 6*time.Second {
		t.Fatalf("demoted image's overhead %v, want 6s (host drain + store restore)", got)
	}
	for _, x := range []*Job{a, b, j, filler} {
		if x.BusyTime() != x.Estimate()+x.CheckpointOverhead() {
			t.Fatalf("%s busy %v != est %v + overhead %v",
				x, x.BusyTime(), x.Estimate(), x.CheckpointOverhead())
		}
	}
	checkNoOverlap(t, rep.Jobs, 4)
}

// memSqueezedCluster returns an n-node cluster whose nodes carry
// 100 MB, the size the memory-pressure scenarios are built around.
func memSqueezedCluster(n int) *Cluster {
	c := newTestCluster(n)
	for i := 0; i < n; i++ {
		c.SetSpec(i, NodeSpec{GPUs: 1, MemBytes: 100 << 20, Group: c.Spec(i).Group})
	}
	return c
}

// TestForcedStoreTierRespectsFutileGuard pins the interaction between
// the tier flip and the futile-checkpoint rule: a victim whose cheap
// host drain passes the guard but whose image would block the
// beneficiary must be re-judged at the store tariff — if the store
// drain outlasts its remaining runtime, the wave is abandoned and the
// beneficiary waits for natural completion, which frees the nodes
// sooner.
func TestForcedStoreTierRespectsFutileGuard(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 5*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	s := New(Config{Cluster: memSqueezedCluster(2), Policy: Backfill,
		Preempt: true, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	big := [3]int{256, 256, 120}
	v := &Job{Name: "v", Kind: KindPDE, Nodes: 2, Priority: 0, Est: 500 * time.Second, Problem: big}
	j := &Job{Name: "j", Kind: KindPDE, Nodes: 2, Priority: 9, Est: 20 * time.Second,
		Submit: 496 * time.Second, Problem: big}
	submitAll(t, s, []*Job{v, j})
	rep := s.Run()
	// 4s of work left: the 1s host drain passes the futile guard, but
	// the image would pin j's memory, and the forced 10s store drain
	// fails it — no wave, j starts at v's 500s completion.
	if rep.PreemptEvents != 0 || rep.HostSuspends != 0 {
		t.Fatalf("preempt events %d / host suspensions %d, want none (wave abandoned as futile)",
			rep.PreemptEvents, rep.HostSuspends)
	}
	if j.Start != 500*time.Second {
		t.Fatalf("beneficiary started %v, want 500s (victim's natural completion)", j.Start)
	}
	checkNoOverlap(t, rep.Jobs, 2)
}

// TestSliceYieldFlipRespectsFutileGuard is the quantum-boundary mirror:
// when yielding would have to take the store tier (the gang's image
// would pin the waiter's memory), a tail shorter than the store drain
// extends in place instead of suspending.
func TestSliceYieldFlipRespectsFutileGuard(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 5*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	s := New(Config{Cluster: memSqueezedCluster(2), Policy: Backfill,
		Quantum: 300 * time.Second, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	big := [3]int{256, 256, 120}
	a := &Job{Name: "a", Kind: KindPDE, Nodes: 2, Est: 303 * time.Second, Problem: big}
	b := &Job{Name: "b", Kind: KindPDE, Nodes: 2, Est: 30 * time.Second,
		Submit: 5 * time.Second, Problem: big}
	submitAll(t, s, []*Job{a, b})
	rep := s.Run()
	// At the 300s boundary a has a 3s tail: longer than the 1s host
	// drain (not futile there), but a's image would block b, and the
	// forced 10s store drain fails the guard — the slice extends.
	if rep.SliceEvents != 0 {
		t.Fatalf("%d slice suspensions, want 0 (store-tier yield was futile)", rep.SliceEvents)
	}
	if a.End != 303*time.Second || b.Start != 303*time.Second {
		t.Fatalf("a ended %v / b started %v, want 303s run-out and handoff", a.End, b.Start)
	}
	checkNoOverlap(t, rep.Jobs, 2)
}

// TestWaveForceStoreIsMinimized pins the flip minimization: a wave
// that must force some victims to the store tier keeps the cheap host
// tier for a victim whose (small) image never blocked the beneficiary
// — only the image actually in the way pays the store drain.
func TestWaveForceStoreIsMinimized(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 5*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	s := New(Config{Cluster: memSqueezedCluster(4), Policy: Backfill,
		Preempt: true, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	tiny := [3]int{160, 160, 103} // ~20 MB image: nodes stay eligible
	big := [3]int{256, 256, 134}  // ~67 MB: does not fit beside a big image
	wide := [3]int{256, 256, 120} // ~60 MB image: blocks a big placement
	v1 := &Job{Name: "v1", Kind: KindPDE, Nodes: 2, Priority: 0, Est: 500 * time.Second, Problem: tiny}
	v2 := &Job{Name: "v2", Kind: KindPDE, Nodes: 2, Priority: 1, Est: 500 * time.Second, Problem: wide}
	j := &Job{Name: "j", Kind: KindPDE, Nodes: 4, Priority: 9, Est: 20 * time.Second,
		Submit: 10 * time.Second, Problem: big}
	submitAll(t, s, []*Job{v1, v2, j})
	rep := s.Run()
	// Both victims drain at 10. v1's 20 MB image leaves 80 MB free —
	// j fits beside it — so v1 suspends in RAM [10,11); v2's 60 MB
	// image is genuinely in the way, so v2 is forced to the store
	// [10,20), and j starts when that drain ends.
	if rep.PreemptEvents != 2 {
		t.Fatalf("preempt events %d, want one wave of two victims", rep.PreemptEvents)
	}
	if rep.HostSuspends != 1 {
		t.Fatalf("host suspensions %d, want exactly 1 (only the harmless image stays in RAM)",
			rep.HostSuspends)
	}
	if j.Start != 20*time.Second {
		t.Fatalf("beneficiary started %v, want 20s (forced store drain end)", j.Start)
	}
	if got := v1.CheckpointOverhead(); got != 2*time.Second {
		t.Fatalf("host-tier victim overhead %v, want 2s", got)
	}
	if got := v2.CheckpointOverhead(); got != 15*time.Second {
		t.Fatalf("forced-store victim overhead %v, want 15s", got)
	}
	if rep.Demotions != 0 {
		t.Fatalf("%d demotions, want none (the tier was planned, not corrected)", rep.Demotions)
	}
	checkNoOverlap(t, rep.Jobs, 4)
}

// TestMidRestorePreemptionNeverSuspendsToHost pins the state-location
// rule: a gang preempted while its store restore is still in flight
// has no complete state on its nodes — the authoritative image sits in
// the store — so its checkpoint must take the store path again, not a
// bus-only "suspension" of state that never arrived.
func TestMidRestorePreemptionNeverSuspendsToHost(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 10*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	s := New(Config{Cluster: memSqueezedCluster(2), Policy: Backfill,
		Preempt: true, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	big := [3]int{256, 256, 120}
	v := &Job{Name: "v", Kind: KindPDE, Nodes: 2, Priority: 0, Est: 500 * time.Second, Problem: big}
	u1 := &Job{Name: "u1", Kind: KindPDE, Nodes: 2, Priority: 9, Est: 20 * time.Second,
		Submit: 10 * time.Second, Problem: big}
	u2 := &Job{Name: "u2", Kind: KindPDE, Nodes: 2, Priority: 9, Est: 20 * time.Second,
		Submit: 43 * time.Second, Problem: big}
	submitAll(t, s, []*Job{v, u1, u2})
	rep := s.Run()
	// u1's wave forces v to the store (its image would block u1):
	// drain [10,20), u1 [20,40). v re-dispatches at 40 with its store
	// restore in flight [40,50) when u2 preempts it at 43 — mid
	// transfer, so the host tier is off the table and v drains to the
	// store again [43,53).
	if rep.HostSuspends != 0 {
		t.Fatalf("host suspensions %d, want 0 — v's state never reached its nodes", rep.HostSuspends)
	}
	if u2.Start != 53*time.Second {
		t.Fatalf("u2 started %v, want 53s (a full store drain, not a 1s fake suspension)", u2.Start)
	}
	if v.End != 573*time.Second {
		t.Fatalf("v ended %v, want 573s (re-dispatch at 73s + 10s store restore + 490s)", v.End)
	}
	if v.BusyTime() != v.Estimate()+v.CheckpointOverhead() {
		t.Fatalf("v busy %v != est %v + overhead %v", v.BusyTime(), v.Estimate(), v.CheckpointOverhead())
	}
	checkNoOverlap(t, rep.Jobs, 2)
}

// TestMigrationPreemptedDuringWriteLegKeepsStatsExact pins the
// RestoreWait refund cap: a migrating gang preempted during its
// outbound write leg was never charged read-queue wait, so nothing is
// deducted — the statistic cannot go negative — and the busy ≡ work +
// overhead invariant survives the aborted migration.
func TestMigrationPreemptedDuringWriteLegKeepsStatsExact(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 5*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	s := New(Config{Cluster: newTestCluster(16), Policy: Backfill,
		Preempt: true, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	v := &Job{Name: "v", Nodes: 8, Priority: 0, Est: 500 * time.Second}
	other := &Job{Name: "other", Nodes: 8, Priority: 3, Est: 40 * time.Second}
	camper := &Job{Name: "camper", Nodes: 8, Priority: 9, Est: 200 * time.Second, Submit: 10 * time.Second}
	u2 := &Job{Name: "u2", Nodes: 8, Priority: 9, Est: 20 * time.Second, Submit: 45 * time.Second}
	submitAll(t, s, []*Job{v, other, camper, u2})
	rep := s.Run()
	// v suspends to host [10,11); camper squats on its home. At 40 v
	// migrates: write leg [40,49), read [49,54). u2 preempts it at 45
	// — inside the write leg, before any read wait was served — so
	// RestoreWait stays exactly zero and v drains to the store (its
	// state is mid-flight), queued behind its own migration write:
	// [49,59). u2 starts at 59.
	if rep.RestoreWait != 0 {
		t.Fatalf("restore wait %v, want exactly 0 (no read wait was ever charged)", rep.RestoreWait)
	}
	if rep.DrainWait != 4*time.Second {
		t.Fatalf("drain wait %v, want 4s (v's drain queued behind its own migration write)", rep.DrainWait)
	}
	if u2.Start != 59*time.Second {
		t.Fatalf("u2 started %v, want 59s", u2.Start)
	}
	if v.End != 574*time.Second {
		t.Fatalf("v ended %v, want 574s (re-dispatch at 79s + 5s store restore + 490s)", v.End)
	}
	if v.BusyTime() != v.Estimate()+v.CheckpointOverhead() {
		t.Fatalf("v busy %v != est %v + overhead %v", v.BusyTime(), v.Estimate(), v.CheckpointOverhead())
	}
	checkNoOverlap(t, rep.Jobs, 16)
}

// TestEvictionWindowDoesNotCascade pins the in-flight-settlement
// credit: while one image's demotion write is still settling, further
// scheduling passes (any event lands one) must not evict additional
// images the settling one already makes unnecessary — the pressure
// test counts memory that is on its way out as gone.
func TestEvictionWindowDoesNotCascade(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, 5*time.Second)
	hs, hr := fixedHostCosts(time.Second, time.Second)
	s := New(Config{Cluster: memSqueezedCluster(2), Policy: Backfill,
		Preempt: true, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	imgProb := [3]int{192, 192, 102} // ~30 MB image per node
	small := [3]int{64, 64, 16}
	// Two 30 MB images accumulate on the two nodes; j needs ~52 MB —
	// blocked by the pair, unblocked by either one leaving.
	v1 := &Job{Name: "v1", Kind: KindPDE, Nodes: 2, Priority: 0, Est: 500 * time.Second, Problem: imgProb}
	u1 := &Job{Name: "u1", Kind: KindPDE, Nodes: 2, Priority: 9, Est: 30 * time.Second,
		Submit: 10 * time.Second, Problem: small}
	v2 := &Job{Name: "v2", Kind: KindPDE, Nodes: 2, Priority: 1, Est: 500 * time.Second,
		Submit: 12 * time.Second, Problem: imgProb}
	u2 := &Job{Name: "u2", Kind: KindPDE, Nodes: 2, Priority: 9, Est: 30 * time.Second,
		Submit: 45 * time.Second, Problem: small}
	j := &Job{Name: "j", Kind: KindPDE, Nodes: 2, Priority: 5, Est: 20 * time.Second,
		Submit: 50 * time.Second, Problem: [3]int{256, 256, 100}}
	// noise arrives inside v1's eviction window [76,85): its pass must
	// not trigger a second demotion — and being short, it backfills
	// the window instead.
	noise := &Job{Name: "noise", Kind: KindPDE, Nodes: 2, Priority: 0, Est: 5 * time.Second,
		Submit: 78 * time.Second, Problem: small}
	submitAll(t, s, []*Job{v1, u1, v2, u2, j, noise})
	rep := s.Run()
	// v1 suspends in RAM at 10, v2 at 45; u2 ends at 76 with j blocked
	// on memory. v1 (lowest ID) demotes over [76,85); the noise
	// arrival at 78 re-runs the pass mid-window.
	if rep.HostSuspends != 2 {
		t.Fatalf("host suspensions %d, want 2", rep.HostSuspends)
	}
	if rep.Demotions != 1 {
		t.Fatalf("demotions %d, want exactly 1 — the mid-window pass cascaded", rep.Demotions)
	}
	if j.Start != 85*time.Second {
		t.Fatalf("waiter started %v, want 85s (v1's settlement)", j.Start)
	}
	if noise.Start != 78*time.Second || !noise.Backfilled() {
		t.Fatalf("noise started %v (backfilled=%v), want a backfill at 78s inside the window",
			noise.Start, noise.Backfilled())
	}
	for _, x := range []*Job{v1, v2, j, noise} {
		if x.BusyTime() != x.Estimate()+x.CheckpointOverhead() {
			t.Fatalf("%s busy %v != est %v + overhead %v",
				x, x.BusyTime(), x.Estimate(), x.CheckpointOverhead())
		}
	}
	checkNoOverlap(t, rep.Jobs, 2)
}

// TestPropertyMixEngagesSuspendToHost guards the property crossing
// against vacuity: the randomized arrival-staggered mix the invariant
// suite replays must actually drive the host tier, or the
// policies × quantum × preempt × suspend-to-host sweep would prove
// nothing about in-RAM suspension accounting.
func TestPropertyMixEngagesSuspendToHost(t *testing.T) {
	ck, rs := fixedCosts(200*time.Millisecond, 100*time.Millisecond)
	hs, hr := fixedHostCosts(50*time.Millisecond, 25*time.Millisecond)
	s := New(Config{Cluster: newTestCluster(32), Policy: Backfill,
		Preempt: true, Quantum: 5 * time.Second, SuspendToHost: true,
		CheckpointCost: ck, RestoreCost: rs,
		HostSuspendCost: hs, HostResumeCost: hr})
	submitAll(t, s, SyntheticStream(1, 200, 32, 5*time.Second))
	if rep := s.Run(); rep.HostSuspends == 0 {
		t.Fatal("property mix never suspended to host — the crossed invariants are vacuous")
	}
}

// TestSampleTraceSuspendToHostCutsOverhead is the acceptance
// comparison on the bundled trace: with preemption and a 300s quantum,
// the suspend-to-host tier measurably cuts the total checkpoint cost —
// charged overhead (drain/restore transfers plus both link-direction
// queue waits) plus demotion writes — against store-only suspension,
// with the default perfmodel-derived costs.
func TestSampleTraceSuspendToHostCutsOverhead(t *testing.T) {
	recs, err := LoadTrace("../../examples/traces/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	run := func(suspend bool) Report {
		jobs, actual := TraceJobs(recs, 32)
		s := New(Config{Cluster: newTestCluster(32), Policy: Backfill,
			Actual: actual, Preempt: true, Quantum: 300 * time.Second,
			SuspendToHost: suspend})
		submitAll(t, s, jobs)
		rep := s.Run()
		if rep.Failed != 0 || len(rep.Jobs) != len(recs) {
			t.Fatalf("suspend=%v: finished %d of %d jobs, %d failed",
				suspend, len(rep.Jobs), len(recs), rep.Failed)
		}
		checkNoOverlap(t, rep.Jobs, 32)
		return rep
	}
	store := run(false)
	host := run(true)
	if store.PreemptEvents+store.SliceEvents == 0 {
		t.Fatal("trace never checkpointed — the comparison is vacuous")
	}
	if host.HostSuspends == 0 {
		t.Fatal("suspend-to-host never engaged on the sample trace")
	}
	storeTotal := store.CheckpointOverhead + store.DemotionTime
	hostTotal := host.CheckpointOverhead + host.DemotionTime
	if hostTotal >= storeTotal {
		t.Fatalf("suspend-to-host total checkpoint cost %v not below store-only %v",
			hostTotal, storeTotal)
	}
}

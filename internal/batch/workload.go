package batch

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gpucluster/internal/cluster"
	"gpucluster/internal/lbm"
	"gpucluster/internal/mpi"
	"gpucluster/internal/pde"
	"gpucluster/internal/perfmodel"
	"gpucluster/internal/sched"
	"gpucluster/internal/sparse"
	"gpucluster/internal/tracer"
	"gpucluster/internal/vecmath"
)

// defaultProblem returns the per-kind default problem size: the paper's
// 80^3 LBM sub-domain, a moderate heat grid, a 64x64 Poisson system.
func defaultProblem(k JobKind) [3]int {
	switch k {
	case KindCG:
		return [3]int{64, 64, 1}
	case KindPDE:
		return [3]int{64, 64, 16}
	default:
		return [3]int{80, 80, 80}
	}
}

// memoryNeed returns the per-node memory footprint of a job's block,
// checked against the node specs at submit and at placement.
func memoryNeed(kind JobKind, problem [3]int, nodes int) int64 {
	cells := int64(problem[0]) * int64(problem[1]) * int64(problem[2])
	switch kind {
	case KindCG:
		// Local CSR rows (5-point stencil) plus solver vectors, split
		// over the gang. The largest rank holds the ceiling share.
		unknowns := int64(problem[0]) * int64(problem[1])
		perNode := (unknowns + int64(nodes) - 1) / int64(nodes)
		return perNode * (5*12 + 6*4)
	case KindPDE:
		// Two scalar fields with ghost shells.
		return cells * 2 * 4
	default:
		// Double-buffered D3Q19 distributions plus density field.
		return cells * (2*lbm.Q + 1) * 4
	}
}

// PerfEstimator derives virtual runtimes from the calibrated hardware
// model of package perfmodel: LBM jobs use the full Table 1 composition
// (GPU compute, AGP border traffic, non-overlapped network time), the
// other kinds scale its components by their arithmetic intensity.
type PerfEstimator struct {
	H perfmodel.Hardware
}

// NewPerfEstimator returns an estimator over the paper's hardware.
func NewPerfEstimator() *PerfEstimator {
	return &PerfEstimator{H: perfmodel.Paper()}
}

// Estimate returns the modeled runtime of j on its gang's Arrange3D
// grid.
func (e *PerfEstimator) Estimate(j *Job) time.Duration {
	g := sched.Arrange3D(j.Nodes)
	switch j.Kind {
	case KindCG:
		unknowns := float64(j.Problem[0] * j.Problem[1])
		local := unknowns / float64(j.Nodes)
		// A 5-point matvec plus the vector updates per unknown is about
		// a sixth of one D3Q19 cell update on the GPU matvec path.
		compute := time.Duration(local / 6 / e.H.GPUCellsPerSec * float64(time.Second))
		var comm time.Duration
		if j.Nodes > 1 {
			// Two allreduce rounds plus the proxy refresh per iteration.
			msgs := 2*math.Ceil(math.Log2(float64(j.Nodes))) + 2
			comm = time.Duration(msgs) * e.H.Net.MsgLatency
		}
		return time.Duration(j.Steps) * (compute + comm)
	case KindPDE:
		br := e.H.ClusterStep(g, j.Problem, perfmodel.Options{})
		// One scalar per cell against 19 distributions: ~1/5 the
		// compute and border traffic of the LBM step.
		per := br.GPUCompute/5 + br.GPUCPUComm/5 + br.NetNonOverlap
		return time.Duration(j.Steps) * per
	default:
		br := e.H.ClusterStep(g, j.Problem, perfmodel.Options{})
		return time.Duration(j.Steps) * br.GPUTotal
	}
}

// SimExecutor runs each job's workload for real on the functional
// simulators, mapping the gang's Arrange3D grid onto the workload's
// domain decomposition. Use small problems: this does the actual
// compute. It implements Checkpointer, so preempted jobs run in
// segments with genuine state snapshots: the live LBM simulator, the
// gathered heat field, or the partial CG iterate (resumed as a
// residual-correction solve — the Krylov space is lost across a
// restart, exactly as with a real checkpointed solver).
type SimExecutor struct {
	// TracerParticles releases a pollutant cloud through each LBM job's
	// developed flow (the Section 5 dispersion post-pass); 0 disables.
	TracerParticles int
}

// Execute implements Executor: the whole workload in one segment.
func (x SimExecutor) Execute(j *Job, a Allocation) (string, error) {
	switch j.Kind {
	case KindLBM:
		sim, err := buildLBMSim(j)
		if err != nil {
			return "", err
		}
		sim.Run(j.steps)
		return x.lbmFinish(j, sim)
	case KindCG:
		got, stats, err := cgAdvance(j, nil, j.steps)
		if err != nil {
			return "", err
		}
		return cgFinish(j, got, stats, j.steps)
	case KindPDE:
		return pdeFinish(j, pdeAdvance(j, nil, j.steps))
	}
	return "", fmt.Errorf("batch: no workload adapter for %v", j.Kind)
}

// Checkpoint implements Checkpointer: it advances j's workload to done
// steps — resuming from prev when the job was checkpointed before — and
// captures a restartable image sized by the job's per-node footprint.
func (x SimExecutor) Checkpoint(j *Job, prev *Snapshot, done int) (*Snapshot, error) {
	prevSteps := 0
	if prev != nil {
		prevSteps = prev.Steps
	}
	delta := done - prevSteps
	if delta < 0 {
		delta = 0
		done = prevSteps
	}
	snap := &Snapshot{Steps: done, Bytes: memoryNeed(j.Kind, j.problem, j.Nodes)}
	switch j.Kind {
	case KindLBM:
		var sim *cluster.Sim
		if prev != nil {
			sim = prev.state.(*cluster.Sim)
		} else {
			var err error
			if sim, err = buildLBMSim(j); err != nil {
				return nil, err
			}
		}
		sim.Run(delta)
		snap.state = sim
	case KindCG:
		var x0 []float32
		if prev != nil {
			x0 = prev.state.([]float32)
		}
		got, _, err := cgAdvance(j, x0, delta)
		if err != nil {
			return nil, err
		}
		snap.state = got
	case KindPDE:
		var field []float32
		if prev != nil {
			field = prev.state.([]float32)
		}
		snap.state = pdeAdvance(j, field, delta)
	default:
		return nil, fmt.Errorf("batch: no workload adapter for %v", j.Kind)
	}
	return snap, nil
}

// Resume implements Checkpointer: it runs the remaining steps from the
// snapshot and produces the job's result summary.
func (x SimExecutor) Resume(j *Job, snap *Snapshot) (string, error) {
	left := j.steps - snap.Steps
	if left < 0 {
		left = 0
	}
	switch j.Kind {
	case KindLBM:
		sim := snap.state.(*cluster.Sim)
		sim.Run(left)
		return x.lbmFinish(j, sim)
	case KindCG:
		got, stats, err := cgAdvance(j, snap.state.([]float32), left)
		if err != nil {
			return "", err
		}
		return cgFinish(j, got, stats, snap.Steps+stats.Iterations)
	case KindPDE:
		return pdeFinish(j, pdeAdvance(j, snap.state.([]float32), left))
	}
	return "", fmt.Errorf("batch: no workload adapter for %v", j.Kind)
}

// lbmGlobal returns the global extents of j's wind tunnel on its gang
// grid (a pure function of the gang size, so it is identical across a
// preempted job's dispatches).
func lbmGlobal(j *Job) (sched.NodeGrid, [3]int) {
	g := sched.Arrange3D(j.Nodes)
	prob := j.problem
	return g, [3]int{prob[0] * g.PX, prob[1] * g.PY, prob[2] * g.PZ}
}

// buildLBMSim assembles j's wind-tunnel flow: inlet on x-, open outflow
// on x+, periodic transverse faces. The gang's ranks map onto the
// Arrange3D grid in node order (Allocation.Port), so a non-contiguous
// gang simply sees some neighboring ranks on non-adjacent switch ports.
func buildLBMSim(j *Job) (*cluster.Sim, error) {
	g, global := lbmGlobal(j)
	cfg := cluster.Config{Global: global, Grid: g, Tau: 0.7}
	cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{0.04, 0, 0}}
	cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Outflow}
	return cluster.New(cfg)
}

// lbmFinish validates the completed flow and (optionally) traces a
// pollutant cloud through it.
func (x SimExecutor) lbmFinish(j *Job, sim *cluster.Sim) (string, error) {
	g, global := lbmGlobal(j)
	mass := sim.TotalMass()
	if math.IsNaN(mass) || mass <= 0 {
		return "", fmt.Errorf("batch: LBM diverged, total mass %v", mass)
	}
	detail := fmt.Sprintf("lbm %dx%dx%d on %v: %d steps, mass %.1f",
		global[0], global[1], global[2], g, j.steps, mass)
	if x.TracerParticles > 0 {
		field := tracer.FromMacro(global[0], global[1], global[2],
			sim.GatherDensity(), sim.GatherVelocity(), nil)
		cloud := tracer.NewCloud(int64(j.ID))
		cloud.Release(1, global[1]/2, global[2]/2, x.TracerParticles)
		for i := 0; i < j.steps; i++ {
			cloud.Step(field)
		}
		c := cloud.Centroid()
		detail += fmt.Sprintf("; tracer centroid (%.1f, %.1f, %.1f)", c[0], c[1], c[2])
	}
	return detail, nil
}

// cgTarget returns the manufactured solution of j's Poisson system.
func cgTarget(rows int) []float32 {
	want := make([]float32, rows)
	for i := range want {
		want[i] = float32(i%7) * 0.25
	}
	return want
}

// cgAdvance runs iters iterations of the Figure 15 distributed CG, one
// rank per gang node, starting from iterate x0 (nil = zero). A restart
// solves the residual-correction system A e = b - A x0 and returns
// x0 + e: mathematically a true warm restart, though the Krylov space
// built before the checkpoint is gone.
func cgAdvance(j *Job, x0 []float32, iters int) ([]float32, sparse.SolveStats, error) {
	n := j.problem[0]
	A := sparse.Poisson2D(n)
	ranks := j.Nodes
	if A.Rows < ranks {
		return nil, sparse.SolveStats{}, fmt.Errorf("batch: %d unknowns cannot split over %d ranks", A.Rows, ranks)
	}
	rhs := A.MulVec(cgTarget(A.Rows))
	target := rhs
	if x0 != nil {
		ax := A.MulVec(x0)
		target = make([]float32, len(rhs))
		for i := range rhs {
			target[i] = rhs[i] - ax[i]
		}
	}
	off, sz := sparse.RowPartition(A.Rows, ranks)
	corr := make([]float32, A.Rows)
	stats := make([]sparse.SolveStats, ranks)
	world := mpi.NewWorld(ranks)
	world.Run(func(c *mpi.Comm) {
		r := c.Rank()
		d := sparse.NewDistMatrix(A, r, ranks)
		d.Setup(c)
		local, st := sparse.DistCG(c, d, target[off[r]:off[r]+sz[r]], 1e-6, iters)
		stats[r] = st
		copy(corr[off[r]:], local)
	})
	if x0 != nil {
		for i := range corr {
			corr[i] += x0[i]
		}
	}
	return corr, stats[0], nil
}

// cgFinish validates the final iterate against the manufactured
// solution.
func cgFinish(j *Job, got []float32, stats sparse.SolveStats, iters int) (string, error) {
	if !stats.Converged {
		return "", fmt.Errorf("batch: CG stopped at %d iterations, residual %.2e",
			iters, stats.Residual)
	}
	want := cgTarget(len(got))
	var maxErr float64
	for i := range got {
		if d := math.Abs(float64(got[i] - want[i])); d > maxErr {
			maxErr = d
		}
	}
	return fmt.Sprintf("cg %d unknowns on %d ranks: %d iters, residual %.1e, max err %.2e",
		len(got), j.Nodes, iters, stats.Residual, maxErr), nil
}

// pdeHot returns j's initial condition: a hot block in the domain
// center (a pure function, so restarts see the same conserved target).
func pdeHot(nx, ny, nz int) func(x, y, z int) float32 {
	return func(x, y, z int) float32 {
		if x >= nx/4 && x < 3*nx/4 && y >= ny/4 && y < 3*ny/4 && z >= nz/4 && z < 3*nz/4 {
			return 1
		}
		return 0
	}
}

// pdeAdvance runs steps of the slab-parallel heat solver, one z-slab of
// Problem[2] planes per gang node, starting from the gathered field
// (nil = the hot-block initial condition) and returning the new field.
func pdeAdvance(j *Job, field []float32, steps int) []float32 {
	nx, ny := j.problem[0], j.problem[1]
	nz := j.problem[2] * j.Nodes
	init := pdeHot(nx, ny, nz)
	if field != nil {
		init = func(x, y, z int) float32 { return field[(z*ny+y)*nx+x] }
	}
	return pde.ParallelHeat3D(nx, ny, nz, 1.0/6.0, j.Nodes, steps, init)
}

// pdeFinish checks that the periodic domain conserved total heat.
func pdeFinish(j *Job, field []float32) (string, error) {
	nx, ny := j.problem[0], j.problem[1]
	nz := j.problem[2] * j.Nodes
	hot := pdeHot(nx, ny, nz)
	var want float64
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				want += float64(hot(x, y, z))
			}
		}
	}
	var got float64
	for _, v := range field {
		got += float64(v)
	}
	if want > 0 && math.Abs(got-want)/want > 1e-3 {
		return "", fmt.Errorf("batch: heat not conserved: %.4f -> %.4f", want, got)
	}
	return fmt.Sprintf("pde heat %dx%dx%d on %d slabs: %d steps, heat drift %.1e",
		nx, ny, nz, j.Nodes, j.steps, math.Abs(got-want)), nil
}

// SyntheticStream is SyntheticMix with deterministic staggered
// arrivals: successive jobs are spaced by a uniform random gap in
// [0, 2*meanGap], so the queue sees the machine part-loaded at every
// depth instead of everything arriving at once — the shape the
// property tests replay under every policy × quantum × preemption
// combination. The node/step/priority stream is identical to
// SyntheticMix(seed, ...); only Submit differs.
func SyntheticStream(seed int64, count, maxNodes int, meanGap time.Duration) []*Job {
	jobs := SyntheticMix(seed, count, maxNodes)
	if meanGap <= 0 {
		return jobs
	}
	// A separate rng keeps the mix's own stream untouched, so a seeded
	// mix and its streamed variant differ only in arrivals.
	rng := rand.New(rand.NewSource(seed ^ 0x57bea))
	var at time.Duration
	for _, j := range jobs {
		j.Submit = at
		at += time.Duration(rng.Int63n(int64(2*meanGap) + 1))
	}
	return jobs
}

// SyntheticMix generates a deterministic skewed batch of count jobs for
// a maxNodes-node cluster: mostly narrow short jobs with occasional
// wide long ones — the workload shape that separates backfill from
// FIFO. Problem sizes follow the paper's sub-domain scales; nothing is
// executed unless the scheduler carries an Executor.
func SyntheticMix(seed int64, count, maxNodes int) []*Job {
	rng := rand.New(rand.NewSource(seed))
	clamp := func(v int) int {
		if v < 1 {
			return 1
		}
		if v > maxNodes {
			return maxNodes
		}
		return v
	}
	// intn tolerates the degenerate bounds of tiny clusters.
	intn := func(n int) int {
		if n <= 0 {
			return 0
		}
		return rng.Intn(n)
	}
	jobs := make([]*Job, 0, count)
	for i := 0; i < count; i++ {
		kind := JobKind(rng.Intn(int(numKinds)))
		var nodes int
		switch p := rng.Float64(); {
		case p < 0.60:
			nodes = clamp(1 + intn(2))
		case p < 0.85:
			nodes = clamp(2 + intn(maxNodes/4+1))
		case p < 0.95:
			nodes = clamp(maxNodes/4 + 1 + intn(maxNodes/4+1))
		default:
			nodes = clamp(maxNodes/2 + 1 + intn(maxNodes/2))
		}
		// User rotates on the index, not the rng stream, so adding
		// fair-share attribution left every seeded mix unchanged.
		j := &Job{
			Name:     fmt.Sprintf("%s-%04d", kind, i),
			Kind:     kind,
			Nodes:    nodes,
			Priority: rng.Intn(5),
			User:     fmt.Sprintf("u%d", i%4),
		}
		switch kind {
		case KindCG:
			n := 32 + 8*rng.Intn(5)
			j.Problem = [3]int{n, n, 1}
			j.Steps = 100 + rng.Intn(300)
		case KindPDE:
			s := 32 + 8*rng.Intn(5)
			j.Problem = [3]int{s, s, 8 + 4*rng.Intn(3)}
			j.Steps = 50 + rng.Intn(450)
		default:
			s := 40 + 8*rng.Intn(6)
			j.Problem = [3]int{s, s, s}
			j.Steps = 20 + rng.Intn(180)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

package batch

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gpucluster/internal/cluster"
	"gpucluster/internal/lbm"
	"gpucluster/internal/mpi"
	"gpucluster/internal/pde"
	"gpucluster/internal/perfmodel"
	"gpucluster/internal/sched"
	"gpucluster/internal/sparse"
	"gpucluster/internal/tracer"
	"gpucluster/internal/vecmath"
)

// defaultProblem returns the per-kind default problem size: the paper's
// 80^3 LBM sub-domain, a moderate heat grid, a 64x64 Poisson system.
func defaultProblem(k JobKind) [3]int {
	switch k {
	case KindCG:
		return [3]int{64, 64, 1}
	case KindPDE:
		return [3]int{64, 64, 16}
	default:
		return [3]int{80, 80, 80}
	}
}

// memoryNeed returns the per-node memory footprint of a job's block,
// checked against the node specs at submit and at placement.
func memoryNeed(kind JobKind, problem [3]int, nodes int) int64 {
	cells := int64(problem[0]) * int64(problem[1]) * int64(problem[2])
	switch kind {
	case KindCG:
		// Local CSR rows (5-point stencil) plus solver vectors, split
		// over the gang. The largest rank holds the ceiling share.
		unknowns := int64(problem[0]) * int64(problem[1])
		perNode := (unknowns + int64(nodes) - 1) / int64(nodes)
		return perNode * (5*12 + 6*4)
	case KindPDE:
		// Two scalar fields with ghost shells.
		return cells * 2 * 4
	default:
		// Double-buffered D3Q19 distributions plus density field.
		return cells * (2*lbm.Q + 1) * 4
	}
}

// PerfEstimator derives virtual runtimes from the calibrated hardware
// model of package perfmodel: LBM jobs use the full Table 1 composition
// (GPU compute, AGP border traffic, non-overlapped network time), the
// other kinds scale its components by their arithmetic intensity.
type PerfEstimator struct {
	H perfmodel.Hardware
}

// NewPerfEstimator returns an estimator over the paper's hardware.
func NewPerfEstimator() *PerfEstimator {
	return &PerfEstimator{H: perfmodel.Paper()}
}

// Estimate returns the modeled runtime of j on its gang's Arrange3D
// grid.
func (e *PerfEstimator) Estimate(j *Job) time.Duration {
	g := sched.Arrange3D(j.Nodes)
	switch j.Kind {
	case KindCG:
		unknowns := float64(j.Problem[0] * j.Problem[1])
		local := unknowns / float64(j.Nodes)
		// A 5-point matvec plus the vector updates per unknown is about
		// a sixth of one D3Q19 cell update on the GPU matvec path.
		compute := time.Duration(local / 6 / e.H.GPUCellsPerSec * float64(time.Second))
		var comm time.Duration
		if j.Nodes > 1 {
			// Two allreduce rounds plus the proxy refresh per iteration.
			msgs := 2*math.Ceil(math.Log2(float64(j.Nodes))) + 2
			comm = time.Duration(msgs) * e.H.Net.MsgLatency
		}
		return time.Duration(j.Steps) * (compute + comm)
	case KindPDE:
		br := e.H.ClusterStep(g, j.Problem, perfmodel.Options{})
		// One scalar per cell against 19 distributions: ~1/5 the
		// compute and border traffic of the LBM step.
		per := br.GPUCompute/5 + br.GPUCPUComm/5 + br.NetNonOverlap
		return time.Duration(j.Steps) * per
	default:
		br := e.H.ClusterStep(g, j.Problem, perfmodel.Options{})
		return time.Duration(j.Steps) * br.GPUTotal
	}
}

// SimExecutor runs each job's workload for real on the functional
// simulators, mapping the gang's Arrange3D grid onto the workload's
// domain decomposition. Use small problems: this does the actual
// compute.
type SimExecutor struct {
	// TracerParticles releases a pollutant cloud through each LBM job's
	// developed flow (the Section 5 dispersion post-pass); 0 disables.
	TracerParticles int
}

// Execute implements Executor.
func (x SimExecutor) Execute(j *Job, a Allocation) (string, error) {
	switch j.Kind {
	case KindLBM:
		return x.runLBM(j, a)
	case KindCG:
		return runCG(j, a)
	case KindPDE:
		return runPDE(j, a)
	}
	return "", fmt.Errorf("batch: no workload adapter for %v", j.Kind)
}

// runLBM executes a wind-tunnel flow over the gang: inlet on x-, open
// outflow on x+, periodic transverse faces, then (optionally) traces a
// pollutant cloud through the developed flow. The gang's ranks map onto
// the Arrange3D grid in node order (Allocation.Port), so a
// non-contiguous gang simply sees some neighboring ranks on
// non-adjacent switch ports.
func (x SimExecutor) runLBM(j *Job, a Allocation) (string, error) {
	g := a.Grid
	prob := j.problem
	global := [3]int{prob[0] * g.PX, prob[1] * g.PY, prob[2] * g.PZ}
	cfg := cluster.Config{Global: global, Grid: g, Tau: 0.7}
	cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{0.04, 0, 0}}
	cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Outflow}
	sim, err := cluster.New(cfg)
	if err != nil {
		return "", err
	}
	sim.Run(j.steps)
	mass := sim.TotalMass()
	if math.IsNaN(mass) || mass <= 0 {
		return "", fmt.Errorf("batch: LBM diverged, total mass %v", mass)
	}
	detail := fmt.Sprintf("lbm %dx%dx%d on %v: %d steps, mass %.1f",
		global[0], global[1], global[2], g, j.steps, mass)
	if x.TracerParticles > 0 {
		field := tracer.FromMacro(global[0], global[1], global[2],
			sim.GatherDensity(), sim.GatherVelocity(), nil)
		cloud := tracer.NewCloud(int64(j.ID))
		cloud.Release(1, global[1]/2, global[2]/2, x.TracerParticles)
		for i := 0; i < j.steps; i++ {
			cloud.Step(field)
		}
		c := cloud.Centroid()
		detail += fmt.Sprintf("; tracer centroid (%.1f, %.1f, %.1f)", c[0], c[1], c[2])
	}
	return detail, nil
}

// runCG solves a manufactured Poisson system with the Figure 15
// distributed CG, one rank per allocated node.
func runCG(j *Job, a Allocation) (string, error) {
	n := j.problem[0]
	A := sparse.Poisson2D(n)
	ranks := a.Count
	if A.Rows < ranks {
		return "", fmt.Errorf("batch: %d unknowns cannot split over %d ranks", A.Rows, ranks)
	}
	want := make([]float32, A.Rows)
	for i := range want {
		want[i] = float32(i%7) * 0.25
	}
	rhs := A.MulVec(want)
	off, sz := sparse.RowPartition(A.Rows, ranks)
	got := make([]float32, A.Rows)
	stats := make([]sparse.SolveStats, ranks)
	world := mpi.NewWorld(ranks)
	world.Run(func(c *mpi.Comm) {
		r := c.Rank()
		d := sparse.NewDistMatrix(A, r, ranks)
		d.Setup(c)
		local, st := sparse.DistCG(c, d, rhs[off[r]:off[r]+sz[r]], 1e-6, j.steps)
		stats[r] = st
		copy(got[off[r]:], local)
	})
	if !stats[0].Converged {
		return "", fmt.Errorf("batch: CG stopped at %d iterations, residual %.2e",
			stats[0].Iterations, stats[0].Residual)
	}
	var maxErr float64
	for i := range got {
		if d := math.Abs(float64(got[i] - want[i])); d > maxErr {
			maxErr = d
		}
	}
	return fmt.Sprintf("cg %d unknowns on %d ranks: %d iters, residual %.1e, max err %.2e",
		A.Rows, ranks, stats[0].Iterations, stats[0].Residual, maxErr), nil
}

// runPDE diffuses a hot block with the slab-parallel heat solver, one
// z-slab of Problem[2] planes per allocated node, and checks that the
// periodic domain conserves total heat.
func runPDE(j *Job, a Allocation) (string, error) {
	nx, ny := j.problem[0], j.problem[1]
	nz := j.problem[2] * a.Count
	hot := func(x, y, z int) float32 {
		if x >= nx/4 && x < 3*nx/4 && y >= ny/4 && y < 3*ny/4 && z >= nz/4 && z < 3*nz/4 {
			return 1
		}
		return 0
	}
	var want float64
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				want += float64(hot(x, y, z))
			}
		}
	}
	field := pde.ParallelHeat3D(nx, ny, nz, 1.0/6.0, a.Count, j.steps, hot)
	var got float64
	for _, v := range field {
		got += float64(v)
	}
	if want > 0 && math.Abs(got-want)/want > 1e-3 {
		return "", fmt.Errorf("batch: heat not conserved: %.4f -> %.4f", want, got)
	}
	return fmt.Sprintf("pde heat %dx%dx%d on %d slabs: %d steps, heat drift %.1e",
		nx, ny, nz, a.Count, j.steps, math.Abs(got-want)), nil
}

// SyntheticMix generates a deterministic skewed batch of count jobs for
// a maxNodes-node cluster: mostly narrow short jobs with occasional
// wide long ones — the workload shape that separates backfill from
// FIFO. Problem sizes follow the paper's sub-domain scales; nothing is
// executed unless the scheduler carries an Executor.
func SyntheticMix(seed int64, count, maxNodes int) []*Job {
	rng := rand.New(rand.NewSource(seed))
	clamp := func(v int) int {
		if v < 1 {
			return 1
		}
		if v > maxNodes {
			return maxNodes
		}
		return v
	}
	// intn tolerates the degenerate bounds of tiny clusters.
	intn := func(n int) int {
		if n <= 0 {
			return 0
		}
		return rng.Intn(n)
	}
	jobs := make([]*Job, 0, count)
	for i := 0; i < count; i++ {
		kind := JobKind(rng.Intn(int(numKinds)))
		var nodes int
		switch p := rng.Float64(); {
		case p < 0.60:
			nodes = clamp(1 + intn(2))
		case p < 0.85:
			nodes = clamp(2 + intn(maxNodes/4+1))
		case p < 0.95:
			nodes = clamp(maxNodes/4 + 1 + intn(maxNodes/4+1))
		default:
			nodes = clamp(maxNodes/2 + 1 + intn(maxNodes/2))
		}
		j := &Job{
			Name:     fmt.Sprintf("%s-%04d", kind, i),
			Kind:     kind,
			Nodes:    nodes,
			Priority: rng.Intn(5),
		}
		switch kind {
		case KindCG:
			n := 32 + 8*rng.Intn(5)
			j.Problem = [3]int{n, n, 1}
			j.Steps = 100 + rng.Intn(300)
		case KindPDE:
			s := 32 + 8*rng.Intn(5)
			j.Problem = [3]int{s, s, 8 + 4*rng.Intn(3)}
			j.Steps = 50 + rng.Intn(450)
		default:
			s := 40 + 8*rng.Intn(6)
			j.Problem = [3]int{s, s, s}
			j.Steps = 20 + rng.Intn(180)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

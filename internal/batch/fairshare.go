package batch

import (
	"math"
	"time"
)

// Fair-share accounting: each user accumulates node-seconds of granted
// machine time, exponentially decayed with a configurable half-life of
// virtual time, so recent consumption weighs more than last week's. The
// FairShare policy sorts the queue by this decayed usage ascending —
// light users jump heavy ones — with priority, submit time, and job ID
// breaking ties exactly as under the other disciplines.
//
// Sorting by live decayed values would pay two Exp2 calls per
// comparison, and charging any account would invalidate the whole
// order. Instead every account carries a sort key normalized to a
// common epoch: key = val·2^((at−epoch)/halfLife), which is each
// account's decayed value scaled by the same positive constant, so
// comparing keys is comparing usage — no per-comparison decay. Keys
// only change when usage is charged, and a charge marks the queue dirty
// only when the moved key actually passes (or lands on) another user's,
// so completions that cannot reorder the queue no longer force a
// million-job re-sort (TestFairShareKeyOrder pins key-vs-live-order
// agreement; the determinism suite pins the resulting schedules).

// usage is one user's decayed account: val node-seconds as of time at,
// and the epoch-normalized sort key.
type usage struct {
	val float64
	at  time.Duration
	key float64 // val · 2^((at − s.fsEpoch) / halfLife)
}

// halfLife returns the configured usage decay half-life.
func (s *Scheduler) halfLife() time.Duration {
	if s.cfg.FairShareHalfLife > 0 {
		return s.cfg.FairShareHalfLife
	}
	return 30 * time.Minute
}

// usageOf returns user u's decayed node-seconds at the current clock.
// Relative order between users is invariant under pure clock advance
// (every account decays by the same rate), so the queue order only
// truly changes when usage is charged. The queue comparator reads the
// precomputed keys (keyOf) instead; this live value is kept for
// reports, metrics, and the key-order cross-check test.
func (s *Scheduler) usageOf(u string) float64 {
	a := s.usage[u]
	if a == nil {
		return 0
	}
	return a.val * math.Exp2(-float64(s.now-a.at)/float64(s.halfLife()))
}

// keyOf returns user u's epoch-normalized sort key: monotone in the
// decayed usage, comparable without any per-comparison decay.
func (s *Scheduler) keyOf(u string) float64 {
	a := s.usage[u]
	if a == nil {
		return 0
	}
	return a.key
}

// fsRenormEpochs bounds how far the clock may drift from the key epoch
// before keys are rescaled: past ~64 half-lives the 2^x normalization
// factor risks overflow, so every key is multiplied by the same
// 2^(-drift/halfLife) — a positive constant, order-preserving — and the
// epoch moves to now.
const fsRenormEpochs = 64

// chargeUsage adds nodeTime (node-duration product) to user u's decayed
// account, refreshes its sort key, and invalidates the fair-share queue
// order — but only when the key's move can actually reorder users: a
// charge that leaves every other key outside the moved interval cannot
// change any comparison, so the cached sort stays valid.
func (s *Scheduler) chargeUsage(u string, nodeTime time.Duration) {
	if nodeTime <= 0 {
		return
	}
	a := s.usage[u]
	if a == nil {
		a = &usage{}
		s.usage[u] = a
	}
	hl := float64(s.halfLife())
	a.val = a.val*math.Exp2(-float64(s.now-a.at)/hl) + nodeTime.Seconds()
	a.at = s.now
	if s.met != nil {
		s.met.usageGauge(u).Set(a.val)
	}
	if s.cfg.Policy != FairShare {
		return
	}
	if drift := s.now - s.fsEpoch; drift > fsRenormEpochs*s.halfLife() {
		scale := math.Exp2(-float64(drift) / hl)
		//batchlint:allow determinism -- uniform rescale of every account; commutative, no iteration order escapes
		for _, other := range s.usage {
			other.key *= scale
		}
		s.fsEpoch = s.now
	}
	oldKey := a.key
	a.key = a.val * math.Exp2(float64(s.now-s.fsEpoch)/hl)
	if s.fsOrderChanged(a, oldKey) {
		s.pending.dirty = true
	}
}

// fsOrderChanged reports whether moving one account's key from oldKey
// to its current value can change any pairwise comparison: true when
// some other user's key lies in the closed moved interval (passing a
// key flips an order; landing exactly on one shifts the comparison to
// the tie-break legs). A fresh account (oldKey 0) always dirties — users
// with no account yet compare as 0, and those are not enumerable here.
func (s *Scheduler) fsOrderChanged(a *usage, oldKey float64) bool {
	newKey := a.key
	if oldKey == newKey {
		return false
	}
	if oldKey == 0 {
		return true
	}
	lo, hi := oldKey, newKey
	if lo > hi {
		lo, hi = hi, lo
	}
	//batchlint:allow determinism -- any-order existence scan folding to one bool; order cannot change the result
	for _, other := range s.usage {
		if other == a {
			continue
		}
		if other.key >= lo && other.key <= hi {
			return true
		}
	}
	return false
}

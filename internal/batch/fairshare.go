package batch

import (
	"math"
	"time"
)

// Fair-share accounting: each user accumulates node-seconds of granted
// machine time, exponentially decayed with a configurable half-life of
// virtual time, so recent consumption weighs more than last week's. The
// FairShare policy sorts the queue by this decayed usage ascending —
// light users jump heavy ones — with priority, submit time, and job ID
// breaking ties exactly as under the other disciplines.

// usage is one user's decayed account: val node-seconds as of time at.
type usage struct {
	val float64
	at  time.Duration
}

// halfLife returns the configured usage decay half-life.
func (s *Scheduler) halfLife() time.Duration {
	if s.cfg.FairShareHalfLife > 0 {
		return s.cfg.FairShareHalfLife
	}
	return 30 * time.Minute
}

// usageOf returns user u's decayed node-seconds at the current clock.
// Relative order between users is invariant under pure clock advance
// (every account decays by the same rate), so the queue order only
// truly changes when usage is charged.
func (s *Scheduler) usageOf(u string) float64 {
	a := s.usage[u]
	if a == nil {
		return 0
	}
	return a.val * math.Exp2(-float64(s.now-a.at)/float64(s.halfLife()))
}

// chargeUsage adds nodeTime (node-duration product) to user u's decayed
// account and invalidates the fair-share queue order.
func (s *Scheduler) chargeUsage(u string, nodeTime time.Duration) {
	if nodeTime <= 0 {
		return
	}
	a := s.usage[u]
	if a == nil {
		a = &usage{}
		s.usage[u] = a
	}
	a.val = a.val*math.Exp2(-float64(s.now-a.at)/float64(s.halfLife())) + nodeTime.Seconds()
	a.at = s.now
	if s.met != nil {
		s.met.usageGauge(u).Set(a.val)
	}
	if s.cfg.Policy == FairShare {
		s.pending.dirty = true
	}
}

package batch

import (
	"container/heap"
	"fmt"
	"math/bits"
	"time"
)

// Datacenter-scale index structures. Three hot paths used to be linear
// scans over the whole machine or the whole queue, and all three fall
// over at 10k nodes / 1M jobs:
//
//   - free-node enumeration: candidates()/firstFit walked every node
//     per placement probe — freeIndex keeps the maximal free runs
//     incrementally (split on commit, merge on release) plus a
//     constrained-node set, so enumeration is O(free runs), the
//     fragment count is O(1), and the memory-admission count is a
//     binary search;
//   - the EASY/conservative shadow: shadowStart replayed every running
//     job against a bitmap copy per blocked pass — endTreap keeps the
//     running completion events in an order-statistic tree, so the
//     count-based shadow is one O(log running) prefix-sum descent and
//     the conservative profile is one in-order walk instead of a
//     per-pass sort;
//   - the next-arrival search: nextEvent scanned every pending job —
//     calendarQueue radix-buckets future arrivals by coarse virtual
//     instant, so the next event peek touches one bucket.
//
// DebugVerifyShadows cross-checks the incremental shadow against the
// full replay, and debugCheckIndex re-derives the free-range index from
// the bitmap after every mutation; the index property suite
// (index_test.go) runs both across all four policies with preemption,
// time-slicing, and suspend-to-host in play.

// DebugVerifyShadows, when set, makes every incremental (count-based)
// EASY shadow computation also run the full bitmap replay it replaced
// and panic on any disagreement. It exists for tests — the property
// suite enables it — and costs the old O(running x nodes) replay per
// blocked pass, so leave it off in production runs.
var DebugVerifyShadows bool

// debugCheckIndex re-derives the free-range index from the used bitmap
// after every cluster mutation and panics on drift (tests only).
var debugCheckIndex bool

// bitset is a two-level bitmap over node indices: words holds the bits,
// summary marks the non-zero words, so next/prev-set-bit queries skip
// empty regions 4096 indices at a time. All operations are
// allocation-free after init.
type bitset struct {
	words   []uint64
	summary []uint64
	n       int
}

func (b *bitset) init(n int) {
	b.n = n
	b.words = make([]uint64, (n+63)/64)
	b.summary = make([]uint64, (len(b.words)+63)/64)
}

func (b *bitset) set(i int) {
	w := i >> 6
	b.words[w] |= 1 << uint(i&63)
	b.summary[w>>6] |= 1 << uint(w&63)
}

func (b *bitset) clear(i int) {
	w := i >> 6
	b.words[w] &^= 1 << uint(i&63)
	if b.words[w] == 0 {
		b.summary[w>>6] &^= 1 << uint(w&63)
	}
}

func (b *bitset) has(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// nextSet returns the smallest set index >= i, or -1.
func (b *bitset) nextSet(i int) int {
	if i >= b.n {
		return -1
	}
	w := i >> 6
	if m := b.words[w] & (^uint64(0) << uint(i&63)); m != 0 {
		return w<<6 + bits.TrailingZeros64(m)
	}
	// Scan the summary for the next non-zero word.
	sw := (w + 1) >> 6
	if sw >= len(b.summary) {
		return -1
	}
	if m := b.summary[sw] & (^uint64(0) << uint((w+1)&63)); m != 0 {
		w = sw<<6 + bits.TrailingZeros64(m)
		return w<<6 + bits.TrailingZeros64(b.words[w])
	}
	for sw++; sw < len(b.summary); sw++ {
		if b.summary[sw] != 0 {
			w = sw<<6 + bits.TrailingZeros64(b.summary[sw])
			return w<<6 + bits.TrailingZeros64(b.words[w])
		}
	}
	return -1
}

// prevSet returns the largest set index <= i, or -1.
func (b *bitset) prevSet(i int) int {
	if i < 0 {
		return -1
	}
	if i >= b.n {
		i = b.n - 1
	}
	w := i >> 6
	if m := b.words[w] & (^uint64(0) >> uint(63-i&63)); m != 0 {
		return w<<6 + 63 - bits.LeadingZeros64(m)
	}
	if w == 0 {
		return -1
	}
	sw := (w - 1) >> 6
	if m := b.summary[sw] & (^uint64(0) >> uint(63-(w-1)&63)); m != 0 {
		w = sw<<6 + 63 - bits.LeadingZeros64(m)
		return w<<6 + 63 - bits.LeadingZeros64(b.words[w])
	}
	for sw--; sw >= 0; sw-- {
		if b.summary[sw] != 0 {
			w = sw<<6 + 63 - bits.LeadingZeros64(b.summary[sw])
			return w<<6 + 63 - bits.LeadingZeros64(b.words[w])
		}
	}
	return -1
}

// freeIndex is the ordered free-range set: every maximal run of
// unallocated nodes, keyed by start (the starts bitset, which gives
// ascending enumeration) and by length (runLen at the start index,
// startAt at the exclusive end index for O(1) merge on release). It is
// maintained incrementally — commit splits a run in O(1) plus a
// predecessor query, release merges with both neighbors in O(1) — so
// the fragment count (runs) that the report samples at every
// allocation no longer costs a bitmap scan.
type freeIndex struct {
	n       int
	runLen  []int32 // valid at indices flagged in starts
	startAt []int32 // by exclusive run end: start of the run ending there
	starts  bitset
	runs    int
}

func (x *freeIndex) init(n int) {
	x.n = n
	x.runLen = make([]int32, n)
	x.startAt = make([]int32, n+1)
	x.starts.init(n)
	// One run covering the whole machine.
	x.starts.set(0)
	x.runLen[0] = int32(n)
	x.startAt[n] = 0
	x.runs = 1
}

// alloc removes [f, f+c) — which must lie inside one free run — from
// the index, splitting the run into up to two remainders.
func (x *freeIndex) alloc(f, c int) {
	s := x.starts.prevSet(f)
	if s < 0 || f+c > s+int(x.runLen[s]) {
		panic(fmt.Sprintf("batch: free index: alloc [%d,%d) outside any free run", f, f+c))
	}
	e := s + int(x.runLen[s])
	x.starts.clear(s)
	x.runs--
	if f > s { // left remainder [s, f)
		x.starts.set(s)
		x.runLen[s] = int32(f - s)
		x.startAt[f] = int32(s)
		x.runs++
	}
	if f+c < e { // right remainder [f+c, e)
		x.starts.set(f + c)
		x.runLen[f+c] = int32(e - f - c)
		x.startAt[e] = int32(f + c)
		x.runs++
	}
}

// release returns [f, f+c) to the index, merging with the adjacent free
// runs on either side.
func (x *freeIndex) release(f, c int) {
	start, end := f, f+c
	// Left neighbor: a valid run ending exactly at f.
	if s := int(x.startAt[f]); f > 0 && s >= 0 && s < f && x.starts.has(s) && s+int(x.runLen[s]) == f {
		x.starts.clear(s)
		x.runs--
		start = s
	}
	// Right neighbor: a run starting exactly at end.
	if end < x.n && x.starts.has(end) {
		e2 := end + int(x.runLen[end])
		x.starts.clear(end)
		x.runs--
		end = e2
	}
	x.starts.set(start)
	x.runLen[start] = int32(end - start)
	x.startAt[end] = int32(start)
	x.runs++
}

// appendRuns appends every free run in ascending start order.
func (x *freeIndex) appendRuns(out []NodeRange) []NodeRange {
	for s := x.starts.nextSet(0); s >= 0; s = x.starts.nextSet(s + 1) {
		out = append(out, NodeRange{First: s, Count: int(x.runLen[s])})
	}
	return out
}

// verify re-derives the run set from the bitmap and panics on drift —
// the debugCheckIndex hook the index property suite drives.
func (x *freeIndex) verify(used []bool) {
	want := make([]NodeRange, 0, x.runs)
	start := -1
	for i, u := range used {
		switch {
		case !u && start < 0:
			start = i
		case u && start >= 0:
			want = append(want, NodeRange{First: start, Count: i - start})
			start = -1
		}
	}
	if start >= 0 {
		want = append(want, NodeRange{First: start, Count: len(used) - start})
	}
	got := x.appendRuns(make([]NodeRange, 0, x.runs))
	if len(got) != len(want) || x.runs != len(want) {
		panic(fmt.Sprintf("batch: free index drift: %d runs indexed (%v), bitmap has %d (%v)", len(got), got, len(want), want))
	}
	for i := range got {
		if got[i] != want[i] {
			panic(fmt.Sprintf("batch: free index drift at run %d: indexed %v, bitmap %v", i, got[i], want[i]))
		}
	}
	for _, r := range want {
		e := r.First + r.Count
		if int(x.startAt[e]) != r.First {
			panic(fmt.Sprintf("batch: free index drift: startAt[%d] = %d, want %d", e, x.startAt[e], r.First))
		}
	}
}

// endTreap is an order-statistic treap over running-job completion
// events, keyed by (End, ID) with per-subtree node-count sums: the
// persistent event-sorted capacity profile. coverTime answers the
// incremental EASY shadow ("earliest completion instant by which at
// least deficit nodes have freed") in O(log running); inorder walks
// the events ascending for the conservative profile without the
// per-pass sort buildProfile used to pay. Entries are added at
// dispatch, removed at completion/drain pop, and re-keyed when a
// checkpoint drain rewrites a victim's completion event.
type endTreap struct {
	nodes []endNode
	free  []int32
	root  int32
}

type endNode struct {
	end   time.Duration
	id    int
	count int
	sum   int // subtree total of count
	prio  uint64
	l, r  int32
}

func (t *endTreap) init() { t.root = -1 }

func (t *endTreap) len() int {
	if t.root < 0 {
		return 0
	}
	// Number of events is not tracked separately; callers only need the
	// sum and capacity hints, both O(1) from the root.
	return len(t.nodes) - len(t.free)
}

// treapPrio derives a deterministic heap priority from the entry key —
// replays insert the same keys in the same order, so the tree shape
// (and every downstream iteration) is reproducible.
func treapPrio(end time.Duration, id int) uint64 {
	z := uint64(end) ^ uint64(id)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

func (t *endTreap) sumOf(h int32) int {
	if h < 0 {
		return 0
	}
	return t.nodes[h].sum
}

func (t *endTreap) update(h int32) {
	n := &t.nodes[h]
	n.sum = n.count + t.sumOf(n.l) + t.sumOf(n.r)
}

func (t *endTreap) keyLess(end time.Duration, id int, h int32) bool {
	n := &t.nodes[h]
	if end != n.end {
		return end < n.end
	}
	return id < n.id
}

func (t *endTreap) rotRight(h int32) int32 {
	l := t.nodes[h].l
	t.nodes[h].l = t.nodes[l].r
	t.nodes[l].r = h
	t.update(h)
	t.update(l)
	return l
}

func (t *endTreap) rotLeft(h int32) int32 {
	r := t.nodes[h].r
	t.nodes[h].r = t.nodes[r].l
	t.nodes[r].l = h
	t.update(h)
	t.update(r)
	return r
}

// add inserts one completion event freeing count nodes at end.
func (t *endTreap) add(end time.Duration, id, count int) {
	var idx int32
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.nodes = append(t.nodes, endNode{})
		idx = int32(len(t.nodes) - 1)
	}
	t.nodes[idx] = endNode{end: end, id: id, count: count, sum: count, prio: treapPrio(end, id), l: -1, r: -1}
	t.root = t.insert(t.root, idx)
}

func (t *endTreap) insert(h, x int32) int32 {
	if h < 0 {
		return x
	}
	if t.keyLess(t.nodes[x].end, t.nodes[x].id, h) {
		t.nodes[h].l = t.insert(t.nodes[h].l, x)
		if t.nodes[t.nodes[h].l].prio < t.nodes[h].prio {
			return t.rotRight(h)
		}
	} else {
		t.nodes[h].r = t.insert(t.nodes[h].r, x)
		if t.nodes[t.nodes[h].r].prio < t.nodes[h].prio {
			return t.rotLeft(h)
		}
	}
	t.update(h)
	return h
}

// del removes the event keyed (end, id); it panics if the key is
// absent — the scheduler and the treap must never disagree about the
// running set, and a silent miss here would surface as a wrong shadow
// far from the bug.
func (t *endTreap) del(end time.Duration, id int) {
	found := false
	t.root = t.remove(t.root, end, id, &found)
	if !found {
		panic(fmt.Sprintf("batch: end index: no event (%v, job %d)", end, id))
	}
}

func (t *endTreap) remove(h int32, end time.Duration, id int, found *bool) int32 {
	if h < 0 {
		return -1
	}
	n := &t.nodes[h]
	if end == n.end && id == n.id {
		*found = true
		h = t.sink(h)
		return h
	}
	if t.keyLess(end, id, h) {
		t.nodes[h].l = t.remove(t.nodes[h].l, end, id, found)
	} else {
		t.nodes[h].r = t.remove(t.nodes[h].r, end, id, found)
	}
	t.update(h)
	return h
}

// sink rotates h down until it is a leaf, then frees it.
func (t *endTreap) sink(h int32) int32 {
	n := &t.nodes[h]
	switch {
	case n.l < 0 && n.r < 0:
		t.free = append(t.free, h)
		return -1
	case n.l < 0 || (n.r >= 0 && t.nodes[n.r].prio < t.nodes[n.l].prio):
		r := t.rotLeft(h)
		t.nodes[r].l = t.sink(h)
		t.update(r)
		return r
	default:
		l := t.rotRight(h)
		t.nodes[l].r = t.sink(h)
		t.update(l)
		return l
	}
}

// coverTime returns the earliest event instant by which the cumulative
// freed-node count reaches deficit — the incremental EASY shadow. ok is
// false when even every tracked completion frees too few nodes.
func (t *endTreap) coverTime(deficit int) (time.Duration, bool) {
	h := t.root
	for h >= 0 {
		n := &t.nodes[h]
		if ls := t.sumOf(n.l); ls >= deficit {
			h = n.l
		} else {
			deficit -= ls + n.count
			if deficit <= 0 {
				return n.end, true
			}
			h = n.r
		}
	}
	return 0, false
}

// inorder visits every event ascending by (end, id).
func (t *endTreap) inorder(fn func(end time.Duration, count int)) {
	var walk func(h int32)
	walk = func(h int32) {
		if h < 0 {
			return
		}
		n := t.nodes[h]
		walk(n.l)
		fn(n.end, n.count)
		walk(n.r)
	}
	walk(t.root)
}

// calendarQueue is a radix-bucketed event queue over future virtual
// instants: entries hash into buckets by t >> calShift (~1s of virtual
// time per bucket), a min-heap orders the occupied bucket keys, and
// stale entries — jobs that arrived, were canceled, or were dispatched
// — are discarded lazily on peek. It replaces nextEvent's linear
// next-arrival scan over the whole pending queue: a peek touches the
// earliest occupied bucket only.
type calendarQueue struct {
	buckets map[int64][]calEntry
	keys    calKeyHeap
}

type calEntry struct {
	at time.Duration
	id int
}

// calShift is the bucket radix: 2^30 ns ≈ 1.07 s of virtual time.
const calShift = 30

func (c *calendarQueue) init() { c.buckets = make(map[int64][]calEntry) }

// add registers a future arrival. Each job is added at most once (at
// Submit, when its resolved arrival lies in the future).
func (c *calendarQueue) add(at time.Duration, id int) {
	k := int64(at) >> calShift
	b, ok := c.buckets[k]
	if !ok {
		heap.Push(&c.keys, k)
	}
	c.buckets[k] = append(b, calEntry{at: at, id: id})
}

// next returns the earliest entry strictly after now whose job still
// qualifies per live; entries at or before now, and entries whose job
// no longer qualifies, are discarded as they are encountered. Valid
// entries are peeked, not consumed — the clock passing them is what
// retires them.
func (c *calendarQueue) next(now time.Duration, live func(id int) bool) (time.Duration, bool) {
	for len(c.keys) > 0 {
		k := c.keys[0]
		b := c.buckets[k]
		kept := b[:0]
		best := time.Duration(-1)
		for _, e := range b {
			if e.at <= now || !live(e.id) {
				continue
			}
			kept = append(kept, e)
			if best < 0 || e.at < best {
				best = e.at
			}
		}
		if len(kept) == 0 {
			delete(c.buckets, k)
			heap.Pop(&c.keys)
			continue
		}
		c.buckets[k] = kept
		// Keys ascend with time, so the earliest entry of the first
		// surviving bucket is the global minimum.
		return best, true
	}
	return 0, false
}

type calKeyHeap []int64

func (h calKeyHeap) Len() int            { return len(h) }
func (h calKeyHeap) Less(i, k int) bool  { return h[i] < h[k] }
func (h calKeyHeap) Swap(i, k int)       { h[i], h[k] = h[k], h[i] }
func (h *calKeyHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *calKeyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

package batch

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, pol := range Policies() {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Fatalf("round trip %v: got %v, err %v", pol, got, err)
		}
	}
	if got, err := ParsePolicy("backfill"); err != nil || got != Backfill {
		t.Fatalf("legacy alias backfill: got %v, err %v", got, err)
	}
	if _, err := ParsePolicy("mystery"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

// TestQueueOrderDeterministicTieBreak pins the tie-break chain: equal
// priority and equal arrival order by job ID (submission order), so
// policy comparisons replay identically no matter how the queue slice
// was permuted by pushes and removes.
func TestQueueOrderDeterministicTieBreak(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(2), Policy: FIFO})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, &Job{Name: fmt.Sprintf("tie-%d", i), Nodes: 2, Priority: 3, Est: time.Second})
	}
	// Same priority, same (zero) arrival: starts must follow IDs.
	submitAll(t, s, jobs)
	rep := s.Run()
	for i, j := range rep.Jobs {
		if j.ID != i+1 || j.Start != time.Duration(i)*time.Second {
			t.Fatalf("job %d (ID %d) started at %v, want ID order", i, j.ID, j.Start)
		}
	}
	// Differing arrivals at equal priority: earlier arrival first even
	// when submitted later in the batch.
	s2 := New(Config{Cluster: newTestCluster(2), Policy: FIFO})
	late := &Job{Name: "late", Nodes: 2, Priority: 3, Est: time.Second, Submit: 10 * time.Second}
	early := &Job{Name: "early", Nodes: 2, Priority: 3, Est: time.Second, Submit: 5 * time.Second}
	submitAll(t, s2, []*Job{late, early})
	s2.Run()
	if early.Start != 5*time.Second || late.Start != 10*time.Second {
		t.Fatalf("arrival tie-break broken: early %v, late %v", early.Start, late.Start)
	}
}

// runMix drains one synthetic mix under a policy and returns the
// report.
func runMix(t *testing.T, pol Policy, seed int64, n int, preempt bool) Report {
	t.Helper()
	return runMixSlowdown(t, pol, seed, n, preempt, 1.5)
}

func runMixSlowdown(t *testing.T, pol Policy, seed int64, n int, preempt bool, slowdown float64) Report {
	t.Helper()
	s := New(Config{
		Cluster:       newTestCluster(32),
		Policy:        pol,
		TrunkSlowdown: slowdown,
		Preempt:       preempt,
	})
	submitAll(t, s, SyntheticMix(seed, n, 32))
	rep := s.Run()
	if len(rep.Jobs) != n {
		t.Fatalf("%v seed %d: finished %d of %d", pol, seed, len(rep.Jobs), n)
	}
	return rep
}

// TestEventLoopDeterminism guards the preemption refactor: the same mix
// under the same policy twice must produce identical makespans, waits,
// and per-node utilization — with and without preemption in play.
func TestEventLoopDeterminism(t *testing.T) {
	for _, pol := range Policies() {
		for _, preempt := range []bool{false, true} {
			a := runMix(t, pol, 21, 250, preempt)
			b := runMix(t, pol, 21, 250, preempt)
			if a.Makespan != b.Makespan {
				t.Fatalf("%v preempt=%v: makespan %v vs %v", pol, preempt, a.Makespan, b.Makespan)
			}
			if a.AvgWait != b.AvgWait || a.MaxWait != b.MaxWait {
				t.Fatalf("%v preempt=%v: waits diverged (%v/%v vs %v/%v)",
					pol, preempt, a.AvgWait, a.MaxWait, b.AvgWait, b.MaxWait)
			}
			for i := range a.NodeBusy {
				if a.NodeBusy[i] != b.NodeBusy[i] {
					t.Fatalf("%v preempt=%v: node %d busy %v vs %v",
						pol, preempt, i, a.NodeBusy[i], b.NodeBusy[i])
				}
			}
			byID := make(map[int]*Job, len(b.Jobs))
			for _, j := range b.Jobs {
				byID[j.ID] = j
			}
			for _, j := range a.Jobs {
				k := byID[j.ID]
				if k == nil || j.Start != k.Start || j.End != k.End {
					t.Fatalf("%v preempt=%v: job %d lifecycle diverged", pol, preempt, j.ID)
				}
			}
		}
	}
}

// TestShadowInvariantAllPolicies property-tests the reservation
// guarantee under all four disciplines over random mixes: an
// EASY/fair-share backfill never outlives the shadow recorded at its
// grant (checked under trunk stretch — the per-candidate check makes it
// exact), a conservative start never breaks an earlier promise (checked
// with stretch off: re-planning against placement-dependent stretch can
// shift an individual slot, see conservative.go), and FIFO never
// backfills at all. Runtimes equal estimates here (no Actual hook),
// which is exactly the regime the guarantees are made in.
func TestShadowInvariantAllPolicies(t *testing.T) {
	for _, pol := range Policies() {
		for seed := int64(1); seed <= 5; seed++ {
			rep := runMix(t, pol, seed, 250, false)
			for _, j := range rep.Jobs {
				switch pol {
				case FIFO:
					if j.Backfilled() {
						t.Fatalf("fifo seed %d: %s backfilled", seed, j)
					}
				case Backfill, FairShare:
					if j.Backfilled() && j.End > j.shadow {
						t.Fatalf("%v seed %d: backfilled %s ends %v past its shadow %v",
							pol, seed, j, j.End, j.shadow)
					}
				}
			}
			checkNoOverlap(t, rep.Jobs, 32)
		}
	}
	// Conservative promises, in the exact regime (reserved durations
	// equal realized ones).
	for seed := int64(1); seed <= 5; seed++ {
		rep := runMixSlowdown(t, Conservative, seed, 250, false, 1)
		for _, j := range rep.Jobs {
			if p, ok := j.Promise(); ok && j.Start > p {
				t.Fatalf("conservative seed %d: %s started %v past its promised %v",
					seed, j, j.Start, p)
			}
		}
		checkNoOverlap(t, rep.Jobs, 32)
	}
}

// TestConservativeNeverDelaysEarlierJobs is the defining difference
// from EASY: under EASY only the head is protected, so a deep queue of
// wide jobs can see later reservations starve; under conservative every
// queued job's start is bounded by the promise it was given.
func TestConservativeNeverDelaysEarlierJobs(t *testing.T) {
	mk := func() []*Job {
		jobs := []*Job{
			{Name: "hog", Nodes: 28, Priority: 9, Est: 100 * time.Second},
			{Name: "wide-1", Nodes: 24, Priority: 8, Est: 100 * time.Second},
			{Name: "wide-2", Nodes: 24, Priority: 7, Est: 100 * time.Second},
		}
		// A stream of 4-node fillers that would fit the idle edge
		// forever: EASY only protects wide-1, conservative also
		// protects wide-2.
		for i := 0; i < 40; i++ {
			jobs = append(jobs, &Job{Name: fmt.Sprintf("filler-%d", i),
				Nodes: 4, Priority: 0, Est: 50 * time.Second})
		}
		return jobs
	}
	run := func(pol Policy) ([]*Job, Report) {
		s := New(Config{Cluster: newTestCluster(32), Policy: pol})
		jobs := mk()
		submitAll(t, s, jobs)
		return jobs, s.Run()
	}
	jc, repC := run(Conservative)
	wide2 := jc[2]
	if p, ok := wide2.Promise(); !ok || wide2.Start > p {
		t.Fatalf("conservative: wide-2 started %v, promised %v (ok=%v)", wide2.Start, p, ok)
	}
	je, _ := run(Backfill)
	if jc[2].Start > je[2].Start {
		t.Fatalf("conservative wide-2 start %v worse than EASY %v", jc[2].Start, je[2].Start)
	}
	if repC.Backfilled == 0 {
		t.Fatal("conservative never backfilled the fillers")
	}
	checkNoOverlap(t, repC.Jobs, 32)
}

// TestFairShareReordersByDecayedUsage gives one user a long head start
// and asserts the fair-share queue lets the light user's jobs jump the
// heavy user's backlog, cutting the light user's average wait versus
// EASY — while all jobs still finish.
func TestFairShareReordersByDecayedUsage(t *testing.T) {
	mk := func() (heavy, light []*Job, all []*Job) {
		for i := 0; i < 12; i++ {
			j := &Job{Name: fmt.Sprintf("heavy-%d", i), User: "hog",
				Nodes: 16, Priority: 2, Est: 60 * time.Second}
			heavy = append(heavy, j)
			all = append(all, j)
		}
		for i := 0; i < 4; i++ {
			j := &Job{Name: fmt.Sprintf("light-%d", i), User: "fair",
				Nodes: 16, Priority: 2, Est: 60 * time.Second, Submit: 30 * time.Second}
			light = append(light, j)
			all = append(all, j)
		}
		return
	}
	avgWait := func(jobs []*Job) time.Duration {
		var sum time.Duration
		for _, j := range jobs {
			sum += j.Wait()
		}
		return sum / time.Duration(len(jobs))
	}
	run := func(pol Policy) (time.Duration, time.Duration, Report) {
		s := New(Config{Cluster: newTestCluster(32), Policy: pol})
		heavy, light, all := mk()
		submitAll(t, s, all)
		rep := s.Run()
		return avgWait(heavy), avgWait(light), rep
	}
	_, lightEasy, _ := run(Backfill)
	heavyFS, lightFS, rep := run(FairShare)
	if lightFS >= lightEasy {
		t.Fatalf("fair-share did not help the light user: %v vs EASY %v", lightFS, lightEasy)
	}
	if lightFS >= heavyFS {
		t.Fatalf("light user still waits longer than the hog: %v vs %v", lightFS, heavyFS)
	}
	if len(rep.Jobs) != 16 || rep.Failed != 0 {
		t.Fatalf("fair-share run finished %d jobs, %d failed", len(rep.Jobs), rep.Failed)
	}
	if rep.UserNodeTime["hog"] <= rep.UserNodeTime["fair"] {
		t.Fatalf("usage accounting inverted: hog %v, fair %v",
			rep.UserNodeTime["hog"], rep.UserNodeTime["fair"])
	}
	checkNoOverlap(t, rep.Jobs, 32)
}

// TestUsageDecayHalfLife pins the decay arithmetic: after exactly one
// half-life of idle virtual time, a user's account is worth half.
func TestUsageDecayHalfLife(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(2), Policy: FairShare, FairShareHalfLife: 10 * time.Minute})
	s.chargeUsage("u", 100*time.Second)
	if got := s.usageOf("u"); math.Abs(got-100) > 1e-9 {
		t.Fatalf("fresh usage %v, want 100 node-seconds", got)
	}
	s.now = 10 * time.Minute
	if got := s.usageOf("u"); math.Abs(got-50) > 1e-9 {
		t.Fatalf("decayed usage %v, want 50 after one half-life", got)
	}
	if got := s.usageOf("stranger"); got != 0 {
		t.Fatalf("unknown user usage %v, want 0", got)
	}
}

// TestConservativeBeatsFIFOOnSkewedWorkload sanity-checks that the new
// discipline still backfills (it is conservative, not FIFO): on the
// canonical skewed shape it must beat FIFO's makespan.
func TestConservativeBeatsFIFOOnSkewedWorkload(t *testing.T) {
	run := func(pol Policy) Report {
		s := New(Config{Cluster: newTestCluster(32), Policy: pol})
		submitAll(t, s, skewedWorkload())
		return s.Run()
	}
	fifo, cons := run(FIFO), run(Conservative)
	if cons.Makespan >= fifo.Makespan {
		t.Fatalf("conservative makespan %v not below FIFO %v", cons.Makespan, fifo.Makespan)
	}
	if cons.Backfilled == 0 {
		t.Fatal("conservative never backfilled")
	}
	checkNoOverlap(t, cons.Jobs, 32)
}

package batch

import (
	"fmt"
	"sort"

	"gpucluster/internal/sched"
)

// Placement selects the gang-placement engine: how the scheduler picks
// which nodes a job's gang lands on. The paper's Section 4.3 shows the
// choice is not cosmetic — a gang whose ports straddle the stacking
// trunk pays the trunk's bandwidth on every border exchange.
type Placement int

const (
	// PlaceTopo is the topology-aware engine (the default): enumerate
	// every candidate node set — all distinct contiguous windows, and
	// non-contiguous assemblies from free fragments when no window is
	// wide enough — score each by trunk crossing, fragmentation left
	// behind, and alignment with the Arrange3D grid, and take the best
	// admissible one.
	PlaceTopo Placement = iota
	// PlaceFirstFit is the legacy engine: the first contiguous free
	// window, take it or leave it. Kept as a policy option so the
	// trunk-rejection regression (a backfill candidate denied even
	// though another window would have been admissible) stays
	// demonstrable.
	PlaceFirstFit
)

func (p Placement) String() string {
	switch p {
	case PlaceTopo:
		return "topo"
	case PlaceFirstFit:
		return "first-fit"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// ParsePlacement maps a CLI string to a Placement.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "topo":
		return PlaceTopo, nil
	case "first-fit":
		return PlaceFirstFit, nil
	}
	return 0, fmt.Errorf("batch: unknown placement %q (want topo or first-fit)", s)
}

// candidate is one potential gang placement, scored but not committed.
// Contiguous windows — the overwhelmingly common case — are carried in
// single (Count > 0) so candidate enumeration allocates no per-candidate
// range slice; ranges is only populated for multi-range assemblies and
// the suspend-to-host home-resume path.
type candidate struct {
	single  NodeRange
	ranges  []NodeRange
	crosses bool
	score   float64
}

// Score weights. Trunk crossing dominates (it stretches the whole
// runtime), splitting a gang across fragments is next (ragged neighbor
// maps, more switch hops), then the fragmentation the placement leaves
// behind, then decomposition-grid alignment; the final term is a
// deterministic left-packing tie-break.
const (
	scoreTrunkCross = 1000
	scoreExtraRange = 120
	scoreLeftover   = 15
	scoreBrokenRow  = 4
	scoreTieBreak   = 0.01
)

// candidates returns placement candidates for a k-node gang whose every
// node offers at least need bytes of memory, best score first. Under
// PlaceFirstFit it returns at most one candidate — the first contiguous
// eligible window — reproducing the legacy behavior exactly. Under
// PlaceTopo it returns every distinct contiguous window worth
// considering and, when no free run is wide enough, non-contiguous
// assemblies built from the free fragments, so a caller with extra
// constraints (the backfill shadow) can fall through to the next-best
// placement instead of failing outright.
func (c *Cluster) candidates(k int, need int64, pol Placement) []candidate {
	if k <= 0 || k > len(c.nodes) {
		return nil
	}
	runs := c.eligibleRuns(need)
	cands := c.candBuf[:0]
	if pol == PlaceFirstFit {
		first := firstFitRuns(runs, k)
		if first < 0 {
			c.candBuf = cands
			return nil
		}
		cands = append(cands, candidate{
			single:  NodeRange{First: first, Count: k},
			crosses: c.windowCrossesTrunk(first, k),
		})
		c.candBuf = cands
		return cands
	}
	allCross := true
	for _, r := range runs {
		if r.Count < k {
			continue
		}
		starts, n := c.windowStarts(r, k)
		for _, first := range starts[:n] {
			cand := c.scoredWindow(runs, r, first, k)
			allCross = allCross && cand.crosses
			cands = append(cands, cand)
		}
	}
	// Fragment assemblies matter in two cases: no window is wide
	// enough, or every window straddles the trunk — a non-crossing
	// split gang beats a crossing contiguous one (and may be the only
	// placement whose stretched runtime honors a backfill shadow).
	if len(cands) == 0 || allCross {
		px := sched.Arrange3D(k).PX
		for _, rs := range c.assemblies(runs, k) {
			cand := c.scored(runs, rs, px)
			if c.trunkDown && cand.crosses {
				continue // severed trunk: crossing assemblies are unplaceable
			}
			cands = append(cands, cand)
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	c.candBuf = cands
	return cands
}

// firstFit returns the start of the first eligible contiguous run of k
// nodes in the given bitmap, or -1 — the legacy scan, now skipping
// nodes short on memory (spec minus suspended-image reservations).
// Shared by live allocation (the cluster's own bitmap) and the backfill
// shadow simulation (a hypothetical one).
func (c *Cluster) firstFit(used []bool, k int, need int64) int {
	run := 0
	bound := c.trunkBound()
	for i := range c.nodes {
		if i == bound {
			run = 0 // severed trunk: a window may not span the boundary
		}
		if used[i] || c.avail(i) < need {
			run = 0
			continue
		}
		run++
		if run == k {
			return i - k + 1
		}
	}
	return -1
}

// trunkBound returns the node index placements may not span while a
// trunk outage holds, or len(nodes) (spanned by nothing) otherwise.
func (c *Cluster) trunkBound() int {
	if c.trunkDown {
		if nb := c.net.NonBlockingPorts; nb > 0 && nb < len(c.nodes) {
			return nb
		}
	}
	return len(c.nodes)
}

// firstFitRuns returns the start of the first k-wide window over the
// eligible runs, or -1 — the index-backed equivalent of the legacy
// firstFit bitmap scan (a maximal eligible run holds a k-window exactly
// when its length reaches k, and the leftmost such window starts at the
// run's first node).
func firstFitRuns(runs []NodeRange, k int) int {
	for _, r := range runs {
		if r.Count >= k {
			return r.First
		}
	}
	return -1
}

// eligibleRuns returns the maximal runs of free nodes with at least
// need bytes of available memory, ascending. Runs come from the free
// index and are refined against the constrained-node set, so the cost
// is O(free runs + constrained nodes), independent of cluster size. The
// returned slice aliases c.runBuf and is valid until the next call.
func (c *Cluster) eligibleRuns(need int64) []NodeRange {
	c.runBuf = c.runBuf[:0]
	for f := c.idx.starts.nextSet(0); f >= 0; {
		cnt := int(c.idx.runLen[f])
		c.appendEligible(f, cnt, need)
		f = c.idx.starts.nextSet(f + cnt)
	}
	// A severed trunk splits the (at most one) run straddling the
	// boundary, so no contiguous window can cross while the outage holds.
	if bound := c.trunkBound(); bound < len(c.nodes) {
		for i, r := range c.runBuf {
			if r.First < bound && r.First+r.Count > bound {
				c.runBuf = append(c.runBuf, NodeRange{})
				copy(c.runBuf[i+2:], c.runBuf[i+1:])
				c.runBuf[i] = NodeRange{First: r.First, Count: bound - r.First}
				c.runBuf[i+1] = NodeRange{First: bound, Count: r.First + r.Count - bound}
				break
			}
		}
	}
	return c.runBuf
}

// appendEligible splits the free run [f, f+cnt) into its eligible
// sub-runs for a per-node need and appends them to c.runBuf. Default
// nodes offer exactly baseMem, so only constrained nodes (divergent
// spec or suspend-to-host reservation) are inspected individually.
func (c *Cluster) appendEligible(f, cnt int, need int64) {
	end := f + cnt
	if need <= c.baseMem {
		if c.nConstrained == 0 {
			c.runBuf = append(c.runBuf, NodeRange{First: f, Count: cnt})
			return
		}
		// Constrained nodes that still cover need stay in the run; the
		// rest break it.
		start := f
		for i := c.constrained.nextSet(f); i >= 0 && i < end; i = c.constrained.nextSet(i + 1) {
			if c.avail(i) >= need {
				continue
			}
			if i > start {
				c.runBuf = append(c.runBuf, NodeRange{First: start, Count: i - start})
			}
			start = i + 1
		}
		if end > start {
			c.runBuf = append(c.runBuf, NodeRange{First: start, Count: end - start})
		}
		return
	}
	// need exceeds the default spec: only over-provisioned nodes — all
	// of them constrained by definition — can host, so eligible runs
	// are maximal stretches of adjacent qualifying constrained nodes.
	start, prev := -1, -2
	for i := c.constrained.nextSet(f); i >= 0 && i < end; i = c.constrained.nextSet(i + 1) {
		if c.avail(i) < need {
			continue
		}
		if i != prev+1 {
			if start >= 0 {
				c.runBuf = append(c.runBuf, NodeRange{First: start, Count: prev - start + 1})
			}
			start = i
		}
		prev = i
	}
	if start >= 0 {
		c.runBuf = append(c.runBuf, NodeRange{First: start, Count: prev - start + 1})
	}
}

// windowStarts returns the distinct k-wide window positions worth
// scoring inside one free run: the run's edges (exact packing) and the
// trunk-boundary-aligned positions (a window ending exactly at the
// non-blocking port count, or starting exactly on the trunk side) when
// the boundary cuts through the run. Any non-crossing window that
// exists in the run is dominated by one of these. At most four
// positions exist, so the set is returned in a fixed array to keep
// candidate enumeration allocation-free.
func (c *Cluster) windowStarts(r NodeRange, k int) (starts [4]int, n int) {
	end := r.First + r.Count
	starts[0] = r.First
	n = 1
	if s := end - k; s != r.First {
		starts[n] = s
		n++
	}
	if nb := c.net.NonBlockingPorts; nb > r.First && nb < end {
		if s := nb - k; s >= r.First && !containsInt(starts[:n], s) {
			starts[n] = s
			n++
		}
		if nb+k <= end && !containsInt(starts[:n], nb) {
			starts[n] = nb
			n++
		}
	}
	return starts, n
}

// containsInt reports whether v occurs in xs.
func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// assemblies builds non-contiguous node sets of k nodes from the free
// fragments, used only when no single run is wide enough. Three
// deterministic strategies are scored: pack-left (always succeeds when
// enough nodes are free), largest-fragments-first (fewest ranges), and
// purely within one interconnect group (avoids the trunk crossing when
// one side of the switch has enough free ports).
func (c *Cluster) assemblies(runs []NodeRange, k int) [][]NodeRange {
	free := 0
	for _, r := range runs {
		free += r.Count
	}
	if free < k {
		return nil
	}
	var out [][]NodeRange

	// Pack-left: first k eligible nodes in index order.
	out = append(out, takeNodes(runs, k))

	// Largest fragments first: fewest ranges; the last fragment is
	// trimmed from its left edge. Ties break on lower index.
	byLen := append([]NodeRange(nil), runs...)
	sort.SliceStable(byLen, func(i, j int) bool {
		if byLen[i].Count != byLen[j].Count {
			return byLen[i].Count > byLen[j].Count
		}
		return byLen[i].First < byLen[j].First
	})
	if largest := takeNodes(byLen, k); largest != nil {
		sort.Slice(largest, func(i, j int) bool { return largest[i].First < largest[j].First })
		out = append(out, largest)
	}

	// Pure interconnect group: if either side of the trunk alone has k
	// free eligible nodes, an assembly confined to it never crosses.
	if nb := c.net.NonBlockingPorts; nb > 0 && nb < len(c.nodes) {
		for _, side := range [][2]int{{0, nb}, {nb, len(c.nodes)}} {
			clipped := make([]NodeRange, 0, len(runs))
			for _, r := range runs {
				lo, hi := r.First, r.First+r.Count
				if lo < side[0] {
					lo = side[0]
				}
				if hi > side[1] {
					hi = side[1]
				}
				if hi > lo {
					clipped = append(clipped, NodeRange{First: lo, Count: hi - lo})
				}
			}
			if pure := takeNodes(clipped, k); pure != nil {
				out = append(out, pure)
			}
		}
	}
	return out
}

// takeNodes greedily takes k nodes from the given ranges in order,
// trimming the last one from its left edge; nil if they hold fewer.
func takeNodes(rs []NodeRange, k int) []NodeRange {
	taken := make([]NodeRange, 0, len(rs))
	left := k
	for _, r := range rs {
		take := r.Count
		if take > left {
			take = left
		}
		taken = append(taken, NodeRange{First: r.First, Count: take})
		left -= take
		if left == 0 {
			return taken
		}
	}
	return nil
}

// windowCrossesTrunk reports whether the contiguous window [first,
// first+k) spans both interconnect groups — rangesCrossTrunk without
// materializing a range slice.
func (c *Cluster) windowCrossesTrunk(first, k int) bool {
	nb := c.net.NonBlockingPorts
	return nb > 0 && nb < len(c.nodes) && first < nb && first+k > nb
}

// scoredWindow builds the candidate record for one contiguous k-wide
// window inside eligible run r. A single range has no extra-range or
// broken-row penalty, and the leftover fragmentation is computable in
// O(1): every other eligible run survives intact, plus the zero, one,
// or two pieces the window cuts r into. The arithmetic mirrors scored
// term for term, so the float score is bit-identical to scoring the
// materialized range slice.
func (c *Cluster) scoredWindow(runs []NodeRange, r NodeRange, first, k int) candidate {
	crosses := c.windowCrossesTrunk(first, k)
	pieces := 0
	if first > r.First {
		pieces++
	}
	if first+k < r.First+r.Count {
		pieces++
	}
	score := 0.0
	if crosses {
		score += scoreTrunkCross
	}
	score += scoreLeftover * float64(len(runs)-1+pieces)
	score += scoreTieBreak * float64(first)
	return candidate{single: NodeRange{First: first, Count: k}, crosses: crosses, score: score}
}

// scored builds the candidate record for one node set.
func (c *Cluster) scored(runs, rs []NodeRange, px int) candidate {
	crosses := c.rangesCrossTrunk(rs)
	score := 0.0
	if crosses {
		score += scoreTrunkCross
	}
	score += scoreExtraRange * float64(len(rs)-1)
	score += scoreLeftover * float64(leftoverFrags(runs, rs))
	score += scoreBrokenRow * float64(brokenRows(rs, px))
	score += scoreTieBreak * float64(rs[0].First)
	return candidate{ranges: rs, crosses: crosses, score: score}
}

// leftoverFrags counts the maximal free runs that remain after carving
// the taken ranges out of the current runs — the fragmentation a
// placement leaves behind. Both slices must be sorted ascending and
// every taken range must lie within some run.
func leftoverFrags(runs, taken []NodeRange) int {
	frags := 0
	ti := 0
	for _, r := range runs {
		pos := r.First
		end := r.First + r.Count
		for ti < len(taken) && taken[ti].First < end {
			if taken[ti].First > pos {
				frags++
			}
			pos = taken[ti].First + taken[ti].Count
			ti++
		}
		if pos < end {
			frags++
		}
	}
	return frags
}

// brokenRows counts decomposition-grid rows (px consecutive ranks,
// which exchange x-borders pairwise every step) that a range boundary
// splits across non-adjacent switch ports. A contiguous placement
// breaks no rows.
func brokenRows(rs []NodeRange, px int) int {
	if len(rs) <= 1 || px <= 1 {
		return 0
	}
	broken := 0
	lastRow := -1
	rank := 0
	for _, r := range rs[:len(rs)-1] {
		rank += r.Count // a discontinuity sits after this range's last rank
		if rank%px == 0 {
			continue // boundary falls between rows
		}
		if row := rank / px; row != lastRow {
			broken++
			lastRow = row
		}
	}
	return broken
}

// canPlace reports whether a k-node gang with the given memory need
// could be placed on the free nodes of the used bitmap under the
// placement policy — the feasibility test the backfill shadow
// simulation runs against hypothetical future states. First-fit needs a
// contiguous eligible window; the topology engine only needs enough
// eligible nodes (pack-left assembly always succeeds).
func (c *Cluster) canPlace(used []bool, k int, need int64, pol Placement) bool {
	if pol == PlaceFirstFit {
		return c.firstFit(used, k, need) >= 0
	}
	free := 0
	bound := c.trunkBound()
	for i := range c.nodes {
		if i == bound {
			free = 0 // severed trunk: the gang must seat on one side
		}
		if !used[i] && c.avail(i) >= need {
			free++
			if free == k {
				return true
			}
		}
	}
	return false
}

// placeableIgnoringMemory is canPlace with the memory constraint
// dropped: it separates "no node set seats the gang" from "nodes
// exist, but suspended images pin their memory" — the distinction the
// decision-explanation layer records (ReasonNoPlacement vs
// ReasonMemoryPinned in explain.go).
func (c *Cluster) placeableIgnoringMemory(used []bool, k int, pol Placement) bool {
	return c.canPlace(used, k, 0, pol)
}

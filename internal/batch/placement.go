package batch

import (
	"fmt"
	"sort"

	"gpucluster/internal/sched"
)

// Placement selects the gang-placement engine: how the scheduler picks
// which nodes a job's gang lands on. The paper's Section 4.3 shows the
// choice is not cosmetic — a gang whose ports straddle the stacking
// trunk pays the trunk's bandwidth on every border exchange.
type Placement int

const (
	// PlaceTopo is the topology-aware engine (the default): enumerate
	// every candidate node set — all distinct contiguous windows, and
	// non-contiguous assemblies from free fragments when no window is
	// wide enough — score each by trunk crossing, fragmentation left
	// behind, and alignment with the Arrange3D grid, and take the best
	// admissible one.
	PlaceTopo Placement = iota
	// PlaceFirstFit is the legacy engine: the first contiguous free
	// window, take it or leave it. Kept as a policy option so the
	// trunk-rejection regression (a backfill candidate denied even
	// though another window would have been admissible) stays
	// demonstrable.
	PlaceFirstFit
)

func (p Placement) String() string {
	switch p {
	case PlaceTopo:
		return "topo"
	case PlaceFirstFit:
		return "first-fit"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// ParsePlacement maps a CLI string to a Placement.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "topo":
		return PlaceTopo, nil
	case "first-fit":
		return PlaceFirstFit, nil
	}
	return 0, fmt.Errorf("batch: unknown placement %q (want topo or first-fit)", s)
}

// candidate is one potential gang placement, scored but not committed.
type candidate struct {
	ranges  []NodeRange
	crosses bool
	score   float64
}

// Score weights. Trunk crossing dominates (it stretches the whole
// runtime), splitting a gang across fragments is next (ragged neighbor
// maps, more switch hops), then the fragmentation the placement leaves
// behind, then decomposition-grid alignment; the final term is a
// deterministic left-packing tie-break.
const (
	scoreTrunkCross = 1000
	scoreExtraRange = 120
	scoreLeftover   = 15
	scoreBrokenRow  = 4
	scoreTieBreak   = 0.01
)

// candidates returns placement candidates for a k-node gang whose every
// node offers at least need bytes of memory, best score first. Under
// PlaceFirstFit it returns at most one candidate — the first contiguous
// eligible window — reproducing the legacy behavior exactly. Under
// PlaceTopo it returns every distinct contiguous window worth
// considering and, when no free run is wide enough, non-contiguous
// assemblies built from the free fragments, so a caller with extra
// constraints (the backfill shadow) can fall through to the next-best
// placement instead of failing outright.
func (c *Cluster) candidates(k int, need int64, pol Placement) []candidate {
	if k <= 0 || k > len(c.nodes) {
		return nil
	}
	if pol == PlaceFirstFit {
		if first := c.firstFit(c.used, k, need); first >= 0 {
			rs := []NodeRange{{First: first, Count: k}}
			return []candidate{{ranges: rs, crosses: c.rangesCrossTrunk(rs)}}
		}
		return nil
	}
	runs := c.eligibleRuns(need)
	px := sched.Arrange3D(k).PX
	var cands []candidate
	allCross := true
	for _, r := range runs {
		if r.Count < k {
			continue
		}
		for _, first := range c.windowStarts(r, k) {
			cand := c.scored(runs, []NodeRange{{First: first, Count: k}}, px)
			allCross = allCross && cand.crosses
			cands = append(cands, cand)
		}
	}
	// Fragment assemblies matter in two cases: no window is wide
	// enough, or every window straddles the trunk — a non-crossing
	// split gang beats a crossing contiguous one (and may be the only
	// placement whose stretched runtime honors a backfill shadow).
	if len(cands) == 0 || allCross {
		for _, rs := range c.assemblies(runs, k) {
			cands = append(cands, c.scored(runs, rs, px))
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	return cands
}

// firstFit returns the start of the first eligible contiguous run of k
// nodes in the given bitmap, or -1 — the legacy scan, now skipping
// nodes short on memory (spec minus suspended-image reservations).
// Shared by live allocation (the cluster's own bitmap) and the backfill
// shadow simulation (a hypothetical one).
func (c *Cluster) firstFit(used []bool, k int, need int64) int {
	run := 0
	for i := range c.nodes {
		if used[i] || c.avail(i) < need {
			run = 0
			continue
		}
		run++
		if run == k {
			return i - k + 1
		}
	}
	return -1
}

// eligibleRuns returns the maximal runs of free nodes with at least
// need bytes of available memory, ascending.
func (c *Cluster) eligibleRuns(need int64) []NodeRange {
	var runs []NodeRange
	start := -1
	for i := range c.nodes {
		ok := !c.used[i] && c.avail(i) >= need
		switch {
		case ok && start < 0:
			start = i
		case !ok && start >= 0:
			runs = append(runs, NodeRange{First: start, Count: i - start})
			start = -1
		}
	}
	if start >= 0 {
		runs = append(runs, NodeRange{First: start, Count: len(c.nodes) - start})
	}
	return runs
}

// windowStarts returns the distinct k-wide window positions worth
// scoring inside one free run: the run's edges (exact packing) and the
// trunk-boundary-aligned positions (a window ending exactly at the
// non-blocking port count, or starting exactly on the trunk side) when
// the boundary cuts through the run. Any non-crossing window that
// exists in the run is dominated by one of these.
func (c *Cluster) windowStarts(r NodeRange, k int) []int {
	end := r.First + r.Count
	starts := []int{r.First}
	appendUnique := func(s int) {
		for _, have := range starts {
			if have == s {
				return
			}
		}
		starts = append(starts, s)
	}
	appendUnique(end - k)
	if nb := c.net.NonBlockingPorts; nb > r.First && nb < end {
		if nb-k >= r.First {
			appendUnique(nb - k)
		}
		if nb+k <= end {
			appendUnique(nb)
		}
	}
	return starts
}

// assemblies builds non-contiguous node sets of k nodes from the free
// fragments, used only when no single run is wide enough. Three
// deterministic strategies are scored: pack-left (always succeeds when
// enough nodes are free), largest-fragments-first (fewest ranges), and
// purely within one interconnect group (avoids the trunk crossing when
// one side of the switch has enough free ports).
func (c *Cluster) assemblies(runs []NodeRange, k int) [][]NodeRange {
	free := 0
	for _, r := range runs {
		free += r.Count
	}
	if free < k {
		return nil
	}
	var out [][]NodeRange

	// Pack-left: first k eligible nodes in index order.
	out = append(out, takeNodes(runs, k))

	// Largest fragments first: fewest ranges; the last fragment is
	// trimmed from its left edge. Ties break on lower index.
	byLen := append([]NodeRange(nil), runs...)
	sort.SliceStable(byLen, func(i, j int) bool {
		if byLen[i].Count != byLen[j].Count {
			return byLen[i].Count > byLen[j].Count
		}
		return byLen[i].First < byLen[j].First
	})
	if largest := takeNodes(byLen, k); largest != nil {
		sort.Slice(largest, func(i, j int) bool { return largest[i].First < largest[j].First })
		out = append(out, largest)
	}

	// Pure interconnect group: if either side of the trunk alone has k
	// free eligible nodes, an assembly confined to it never crosses.
	if nb := c.net.NonBlockingPorts; nb > 0 && nb < len(c.nodes) {
		for _, side := range [][2]int{{0, nb}, {nb, len(c.nodes)}} {
			clipped := make([]NodeRange, 0, len(runs))
			for _, r := range runs {
				lo, hi := r.First, r.First+r.Count
				if lo < side[0] {
					lo = side[0]
				}
				if hi > side[1] {
					hi = side[1]
				}
				if hi > lo {
					clipped = append(clipped, NodeRange{First: lo, Count: hi - lo})
				}
			}
			if pure := takeNodes(clipped, k); pure != nil {
				out = append(out, pure)
			}
		}
	}
	return out
}

// takeNodes greedily takes k nodes from the given ranges in order,
// trimming the last one from its left edge; nil if they hold fewer.
func takeNodes(rs []NodeRange, k int) []NodeRange {
	taken := make([]NodeRange, 0, len(rs))
	left := k
	for _, r := range rs {
		take := r.Count
		if take > left {
			take = left
		}
		taken = append(taken, NodeRange{First: r.First, Count: take})
		left -= take
		if left == 0 {
			return taken
		}
	}
	return nil
}

// scored builds the candidate record for one node set.
func (c *Cluster) scored(runs, rs []NodeRange, px int) candidate {
	crosses := c.rangesCrossTrunk(rs)
	score := 0.0
	if crosses {
		score += scoreTrunkCross
	}
	score += scoreExtraRange * float64(len(rs)-1)
	score += scoreLeftover * float64(leftoverFrags(runs, rs))
	score += scoreBrokenRow * float64(brokenRows(rs, px))
	score += scoreTieBreak * float64(rs[0].First)
	return candidate{ranges: rs, crosses: crosses, score: score}
}

// leftoverFrags counts the maximal free runs that remain after carving
// the taken ranges out of the current runs — the fragmentation a
// placement leaves behind. Both slices must be sorted ascending and
// every taken range must lie within some run.
func leftoverFrags(runs, taken []NodeRange) int {
	frags := 0
	ti := 0
	for _, r := range runs {
		pos := r.First
		end := r.First + r.Count
		for ti < len(taken) && taken[ti].First < end {
			if taken[ti].First > pos {
				frags++
			}
			pos = taken[ti].First + taken[ti].Count
			ti++
		}
		if pos < end {
			frags++
		}
	}
	return frags
}

// brokenRows counts decomposition-grid rows (px consecutive ranks,
// which exchange x-borders pairwise every step) that a range boundary
// splits across non-adjacent switch ports. A contiguous placement
// breaks no rows.
func brokenRows(rs []NodeRange, px int) int {
	if len(rs) <= 1 || px <= 1 {
		return 0
	}
	broken := 0
	lastRow := -1
	rank := 0
	for _, r := range rs[:len(rs)-1] {
		rank += r.Count // a discontinuity sits after this range's last rank
		if rank%px == 0 {
			continue // boundary falls between rows
		}
		if row := rank / px; row != lastRow {
			broken++
			lastRow = row
		}
	}
	return broken
}

// canPlace reports whether a k-node gang with the given memory need
// could be placed on the free nodes of the used bitmap under the
// placement policy — the feasibility test the backfill shadow
// simulation runs against hypothetical future states. First-fit needs a
// contiguous eligible window; the topology engine only needs enough
// eligible nodes (pack-left assembly always succeeds).
func (c *Cluster) canPlace(used []bool, k int, need int64, pol Placement) bool {
	if pol == PlaceFirstFit {
		return c.firstFit(used, k, need) >= 0
	}
	free := 0
	for i := range c.nodes {
		if !used[i] && c.avail(i) >= need {
			free++
			if free == k {
				return true
			}
		}
	}
	return false
}

// placeableIgnoringMemory is canPlace with the memory constraint
// dropped: it separates "no node set seats the gang" from "nodes
// exist, but suspended images pin their memory" — the distinction the
// decision-explanation layer records (ReasonNoPlacement vs
// ReasonMemoryPinned in explain.go).
func (c *Cluster) placeableIgnoringMemory(used []bool, k int, pol Placement) bool {
	return c.canPlace(used, k, 0, pol)
}

package batch

import (
	"bufio"
	"container/heap"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Fault injection: the commodity cluster the paper builds is made of
// parts that fail, and this file owns the failure model. A FaultPlan is
// a schedule of node crashes (with repair times) and whole-trunk
// outages, either generated from a seed (exponential inter-arrival
// times, the classic MTBF model) or parsed from a fault trace file. The
// scheduler compiles the plan into a sorted event list and injects the
// events into its virtual-time loop as first-class citizens: a crash
// kills every gang resident on the node, the job restarts from its last
// banked History boundary, and the lost work since that boundary is
// accounted exactly (Report.LostWork). Link flaps are modeled as short
// crashes — a node that drops off the fabric is gone for the gang
// either way.

// NodeFault takes one node off the machine at At for Repair long.
type NodeFault struct {
	Node   int
	At     time.Duration
	Repair time.Duration
}

// TrunkFault severs the stacking trunk at At for Duration: gangs whose
// allocation crosses the trunk lose their interconnect and are killed,
// and no trunk-crossing gang can be placed until the outage ends.
type TrunkFault struct {
	At       time.Duration
	Duration time.Duration
}

// FaultPlan is a failure schedule. Overlapping or touching down
// intervals on the same node (and overlapping trunk outages) are merged
// when the plan is compiled, so a plan never double-downs a node.
type FaultPlan struct {
	Crashes []NodeFault
	Trunks  []TrunkFault
}

// Empty reports whether the plan injects nothing.
func (p *FaultPlan) Empty() bool {
	return p == nil || (len(p.Crashes) == 0 && len(p.Trunks) == 0)
}

// GenFaultPlan builds a seeded failure storm for a machine of the given
// size over [0, horizon): node crashes arrive as a Poisson process with
// machine-wide rate nodes/mtbf (each node sees the given MTBF), repairs
// take 2–10% of the MTBF, and trunk outages are an order of magnitude
// rarer and shorter — the switch is better hardware than the nodes.
// The same seed always yields the same plan.
func GenFaultPlan(seed int64, nodes int, horizon, mtbf time.Duration) *FaultPlan {
	p := &FaultPlan{}
	if nodes <= 0 || horizon <= 0 || mtbf <= 0 {
		return p
	}
	rng := rand.New(rand.NewSource(seed))
	gap := float64(mtbf) / float64(nodes)
	for t := time.Duration(rng.ExpFloat64() * gap); t < horizon; t += time.Duration(rng.ExpFloat64() * gap) {
		repair := time.Duration((0.02 + 0.08*rng.Float64()) * float64(mtbf))
		p.Crashes = append(p.Crashes, NodeFault{Node: rng.Intn(nodes), At: t, Repair: repair})
	}
	trunkGap := 10 * float64(mtbf)
	for t := time.Duration(rng.ExpFloat64() * trunkGap); t < horizon; t += time.Duration(rng.ExpFloat64() * trunkGap) {
		dur := time.Duration((0.005 + 0.015*rng.Float64()) * float64(mtbf))
		p.Trunks = append(p.Trunks, TrunkFault{At: t, Duration: dur})
	}
	return p
}

// ParseFaultPlan reads a fault trace. The format is line-oriented, one
// fault per line, times in (fractional) seconds; '#' and ';' start
// comments:
//
//	crash <node> <at_s> <repair_s>   node down at at_s, back repair_s later
//	flap  <node> <at_s> <dur_s>     link flap: the node drops off the fabric
//	trunk <at_s> <dur_s>            whole-trunk outage
func ParseFaultPlan(r io.Reader) (*FaultPlan, error) {
	p := &FaultPlan{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		for i, c := range text {
			if c == '#' || c == ';' {
				text = text[:i]
				break
			}
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		secs := func(idx int) (time.Duration, error) {
			f, err := strconv.ParseFloat(fields[idx], 64)
			if err != nil {
				return 0, fmt.Errorf("batch: fault plan line %d field %d: %v", line, idx+1, err)
			}
			return time.Duration(f * float64(time.Second)), nil
		}
		switch fields[0] {
		case "crash", "flap":
			if len(fields) != 4 {
				return nil, fmt.Errorf("batch: fault plan line %d: %s wants <node> <at_s> <dur_s>", line, fields[0])
			}
			node, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("batch: fault plan line %d field 2: %v", line, err)
			}
			at, err := secs(2)
			if err != nil {
				return nil, err
			}
			dur, err := secs(3)
			if err != nil {
				return nil, err
			}
			if node < 0 || at < 0 || dur <= 0 {
				return nil, fmt.Errorf("batch: fault plan line %d: node/time out of range", line)
			}
			p.Crashes = append(p.Crashes, NodeFault{Node: node, At: at, Repair: dur})
		case "trunk":
			if len(fields) != 3 {
				return nil, fmt.Errorf("batch: fault plan line %d: trunk wants <at_s> <dur_s>", line)
			}
			at, err := secs(1)
			if err != nil {
				return nil, err
			}
			dur, err := secs(2)
			if err != nil {
				return nil, err
			}
			if at < 0 || dur <= 0 {
				return nil, fmt.Errorf("batch: fault plan line %d: time out of range", line)
			}
			p.Trunks = append(p.Trunks, TrunkFault{At: at, Duration: dur})
		default:
			return nil, fmt.Errorf("batch: fault plan line %d: unknown fault kind %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("batch: fault plan: %v", err)
	}
	return p, nil
}

// LoadFaultPlan reads a fault trace file.
func LoadFaultPlan(path string) (*FaultPlan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseFaultPlan(f)
}

// faultKind tags a compiled fault event. Ups sort before downs at the
// same instant: repaired capacity is back on the machine before a
// simultaneous crash elsewhere takes its toll.
type faultKind uint8

const (
	faultNodeUp faultKind = iota
	faultTrunkUp
	faultNodeDown
	faultTrunkDown
)

// faultEvent is one compiled fault: a down event carries the instant
// its interval ends (until), so the scheduler always knows a downed
// node's repair time without scanning ahead.
type faultEvent struct {
	at    time.Duration
	until time.Duration // down events: interval end; up events: 0
	kind  faultKind
	node  int
}

// compile merges the plan's intervals — per-node for crashes, globally
// for trunk outages, overlapping or touching intervals coalesce — and
// flattens them into one event list sorted by (at, ups-first, node).
// Crashes naming nodes outside [0, nodes) are dropped. The result is
// what the scheduler injects; all overlap logic happens here, once.
func (p *FaultPlan) compile(nodes int) []faultEvent {
	if p.Empty() {
		return nil
	}
	type span struct{ from, to time.Duration }
	merge := func(spans []span) []span {
		sort.Slice(spans, func(i, j int) bool { return spans[i].from < spans[j].from })
		out := spans[:0]
		for _, sp := range spans {
			if n := len(out); n > 0 && sp.from <= out[n-1].to {
				if sp.to > out[n-1].to {
					out[n-1].to = sp.to
				}
				continue
			}
			out = append(out, sp)
		}
		return out
	}
	perNode := map[int][]span{}
	for _, c := range p.Crashes {
		if c.Node < 0 || c.Node >= nodes || c.Repair <= 0 || c.At < 0 {
			continue
		}
		perNode[c.Node] = append(perNode[c.Node], span{c.At, c.At + c.Repair})
	}
	var evs []faultEvent
	for node := 0; node < nodes; node++ {
		for _, sp := range merge(perNode[node]) {
			evs = append(evs,
				faultEvent{at: sp.from, until: sp.to, kind: faultNodeDown, node: node},
				faultEvent{at: sp.to, kind: faultNodeUp, node: node})
		}
	}
	var trunks []span
	for _, t := range p.Trunks {
		if t.Duration <= 0 || t.At < 0 {
			continue
		}
		trunks = append(trunks, span{t.At, t.At + t.Duration})
	}
	for _, sp := range merge(trunks) {
		evs = append(evs,
			faultEvent{at: sp.from, until: sp.to, kind: faultTrunkDown, node: -1},
			faultEvent{at: sp.to, kind: faultTrunkUp, node: -1})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		if evs[i].kind != evs[j].kind {
			return evs[i].kind < evs[j].kind
		}
		return evs[i].node < evs[j].node
	})
	return evs
}

// applyFaults applies every compiled fault event due at or before the
// current instant, in schedule order. The event loop calls it after
// demotion settlements and before the scheduling pass, so completions
// due at the same instant have already been handled (a gang that
// finishes exactly when its node dies completed first) and the pass
// that follows sees the post-fault machine. Events skipped while the
// scheduler was idle catch up here in order; a down interval that
// passed entirely while nothing ran is elided — nothing was on the
// node, nothing is lost, and the machine never noticed.
func (s *Scheduler) applyFaults() {
	for s.faultIdx < len(s.faultEvs) && s.faultEvs[s.faultIdx].at <= s.now {
		ev := s.faultEvs[s.faultIdx]
		s.faultIdx++
		switch ev.kind {
		case faultNodeDown:
			s.applyNodeDown(ev)
		case faultNodeUp:
			s.applyNodeUp(ev)
		case faultTrunkDown:
			s.applyTrunkDown(ev)
		case faultTrunkUp:
			s.applyTrunkUp(ev)
		}
	}
}

// allocCovers reports whether the allocation includes the node.
func allocCovers(a Allocation, node int) bool {
	for _, r := range a.Ranges {
		if node >= r.First && node < r.First+r.Count {
			return true
		}
	}
	return false
}

// faultAlloc encodes the node a fault event concerns in the Event's
// Alloc field — the recorder schema's existing node carrier.
func faultAlloc(node int) Allocation {
	return Allocation{Ranges: []NodeRange{{First: node, Count: 1}}, Count: 1}
}

// applyNodeDown takes a node out of service: the resident gang (at most
// one — single residency) is killed, host-RAM checkpoint images on the
// node are destroyed, and the node leaves the free-range index until
// its repair event. Checkpoint *boundaries* are durable — every bank,
// drain, and demotion wrote through to the checkpoint store in this
// model — so destroying an in-RAM image never loses banked progress,
// only re-prices the next restore at the store tariff.
func (s *Scheduler) applyNodeDown(ev faultEvent) {
	if ev.until <= s.now {
		return // the whole down interval passed while the machine was idle
	}
	c := s.cfg.Cluster
	node := ev.node
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvNodeDown, From: s.now, To: ev.until, Alloc: faultAlloc(node)})
	}
	// Kill the resident gang first: its release frees every node it
	// holds, including this one, so the down marking below finds the
	// node unallocated.
	for _, r := range s.running {
		if allocCovers(r.Alloc, node) {
			s.failGang(r)
			break
		}
	}
	// Host images on the dead node: the RAM copy is gone. The owner
	// keeps its banked progress (durable boundary) but its next
	// dispatch is a full store restore. An image mid-demotion is
	// settled the same way, immediately — its write slot on the link is
	// not compacted (the link model has no write-side release).
	for _, p := range s.pending.jobs {
		if p == nil || !p.hostImage || !allocCovers(p.hostAlloc, node) {
			continue
		}
		c.unreserve(p.hostAlloc, p.memNeed)
		p.hostImage = false
		p.hostAlloc = Allocation{}
		if p.demoteEnd != 0 {
			p.demoteEnd = 0
			for i, d := range s.demoting {
				if d == p {
					s.demoting = append(s.demoting[:i], s.demoting[i+1:]...)
					break
				}
			}
		}
		p.restoreCost = 0
		if p.doneWork > 0 {
			p.restoreCost = s.cfg.RestoreCost(p)
			if p.restoreCost < 0 {
				p.restoreCost = 0
			}
		}
	}
	c.nodeDown(node)
	s.downSince[node] = s.now
	s.downUntil[node] = ev.until
	s.nodeFaults++
	// Capacity shrank: EASY/conservative promises computed against the
	// pre-fault machine are no longer bounds anyone can honor.
	s.voidPromises()
	if s.met != nil {
		s.met.nodeFaults.Inc()
		s.met.nodesDown.Set(float64(c.downCount))
	}
}

// applyNodeUp returns a repaired node to service.
func (s *Scheduler) applyNodeUp(ev faultEvent) {
	node := ev.node
	if s.downSince == nil || s.downSince[node] < 0 {
		return // the matching down was elided while the machine was idle
	}
	c := s.cfg.Cluster
	c.nodeUp(node)
	s.downTime += s.now - s.downSince[node]
	s.downSince[node] = -1
	s.downUntil[node] = 0
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvNodeUp, Alloc: faultAlloc(node)})
	}
	if s.met != nil {
		s.met.nodesDown.Set(float64(c.downCount))
	}
}

// applyTrunkDown severs the stacking trunk: every gang whose allocation
// crosses it loses its interconnect and is killed, and no crossing
// placement is admitted until the outage ends (placement.go clips
// eligible runs at the boundary). The checkpoint-store link is not the
// trunk — drains and restores keep flowing during an outage.
func (s *Scheduler) applyTrunkDown(ev faultEvent) {
	if ev.until <= s.now {
		return // the whole outage passed while the machine was idle
	}
	c := s.cfg.Cluster
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvTrunkDown, From: s.now, To: ev.until, Alloc: faultAlloc(-1)})
	}
	var victims []*Job
	for _, r := range s.running {
		if r.Alloc.CrossesTrunk {
			victims = append(victims, r)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].ID < victims[j].ID })
	for _, v := range victims {
		s.failGang(v)
	}
	c.trunkDown = true
	s.trunkBack = ev.until
	s.trunkFaults++
	s.voidPromises()
	if s.met != nil {
		s.met.trunkOutages.Inc()
	}
}

// applyTrunkUp ends the active trunk outage.
func (s *Scheduler) applyTrunkUp(ev faultEvent) {
	c := s.cfg.Cluster
	if !c.trunkDown {
		return // the outage was elided while the machine was idle
	}
	c.trunkDown = false
	s.trunkBack = 0
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvTrunkUp, Alloc: faultAlloc(-1)})
	}
}

// failGang kills a running gang a fault just cut off: the segment ends
// here, the nodes free immediately, and the job re-enters the queue to
// restart from its last banked History boundary. Work since that
// boundary is lost (loseProgress → Report.LostWork) — except for a gang
// killed mid-drain, whose progress was banked when the drain began; its
// unelapsed drain charge is refunded instead, so busy time stays
// exactly work + overhead + lost work either way.
func (s *Scheduler) failGang(j *Job) {
	for i, r := range s.running {
		if r == j {
			heap.Remove(&s.running, i)
			s.ends.del(j.End, j.ID)
			break
		}
	}
	if j.preempting || j.banking {
		// Mid-drain: progress is already banked and the image write is
		// durable; refund the part of the drain charge that never
		// elapsed, settle the wave the drain belonged to, and requeue.
		if refund := j.End - s.now; refund > 0 {
			j.overhead -= refund
		}
		if j.preempting {
			s.ckptInFlight--
			j.preempting = false
		}
		j.banking = false
		j.hostDrain = false
		if b := j.waveFor; b != nil {
			j.waveFor = nil
			if b.waveLeft > 0 {
				b.waveLeft--
			}
			if b.waveLeft == 0 {
				b.wavePending = false
			}
		}
	} else {
		s.loseProgress(j)
	}
	held := s.now - j.segStart
	j.History = append(j.History, Segment{Alloc: j.Alloc, Start: j.segStart, End: s.now, Preempted: true})
	s.cfg.Cluster.Release(j.Alloc, held)
	s.chargeUsage(j.User, time.Duration(j.Alloc.Count)*held)
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvSegmentEnd, Job: j.ID, From: j.segStart, To: s.now, Alloc: j.Alloc, Detail: "fault"})
	}
	j.faults++
	s.faultKills++
	j.sliceEnd, j.sliceFull, j.slicing = false, 0, false
	j.ckptDue, j.forceStore, j.ckptSlice = false, false, 0
	if s.met != nil {
		s.met.faultKills.Inc()
	}
	if j.canceled {
		// A deferred Cancel was waiting on the drain the fault ended.
		j.restoreCost = 0
		s.finishCanceled(j)
		return
	}
	j.restoreCost = 0
	if j.doneWork > 0 {
		j.restoreCost = s.cfg.RestoreCost(j)
		if j.restoreCost < 0 {
			j.restoreCost = 0
		}
	}
	j.State = Queued
	s.pending.push(j)
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvRequeue, Job: j.ID, Detail: "fault"})
	}
	if s.met != nil {
		s.met.queueDepth.Set(float64(s.pending.len()))
	}
}

// voidPromises clears every pending job's recorded start-time promise:
// a fault shrank capacity, so bounds computed against the pre-fault
// machine no longer hold. The next pass re-derives reservations from
// the post-fault state. (The conservative promise hard-bound guarantee
// is scoped to fault-free runs for exactly this reason.)
func (s *Scheduler) voidPromises() {
	for _, p := range s.pending.jobs {
		if p != nil {
			p.promised = false
		}
	}
}

// armProactive arms j's next proactive-checkpoint boundary
// (Config.CheckpointInterval): the interval after the segment's work
// begins, the gang banks its progress — a store drain it keeps its seat
// through — bounding what a crash can destroy. Gated on an armed fault
// plan, so a fault-free run is bit-identical with the knob on or off. A
// boundary is not armed when the natural end (completion or quantum
// boundary) is closer than the bank would take to drain — banking then
// would only delay the cheaper settlement. A bank armed ahead of a
// quantum boundary displaces it but does not reset it: the slice
// deadline is stashed in j.ckptSlice and restored when the bank
// settles, so proactive checkpointing never starves the round-robin
// rotation (a slice yield banks progress through its own drain anyway).
func (s *Scheduler) armProactive(j *Job) {
	ck := s.cfg.CheckpointInterval
	if ck <= 0 || len(s.faultEvs) == 0 {
		return
	}
	at := j.segStart + j.segRestore + ck
	if at <= s.now || at >= j.End {
		return
	}
	natural := j.End
	if j.sliceEnd {
		natural = j.sliceFull
	}
	if natural-at <= s.storeDrainEstimate(j) {
		return
	}
	if j.sliceEnd {
		j.ckptSlice = j.End
	} else {
		j.ckptSlice = 0
	}
	j.End = at
	j.ckptDue = true
	j.sliceEnd, j.sliceFull = false, 0
}

// ckptBoundary fires an armed proactive-checkpoint boundary: the gang
// banks the segment's progress and drains a checkpoint to the store —
// always the store tier; a bank exists to survive node loss, and host
// RAM dies with the node — while holding its seat. The drain charge
// (write-link queue wait plus transfer) is checkpoint overhead exactly
// like a preemption drain's. advance has already popped j off the
// running structures.
func (s *Scheduler) ckptBoundary(j *Job) {
	j.ckptDue = false
	s.bankProgress(j)
	cost := s.cfg.CheckpointCost(j)
	if cost < 0 {
		cost = 0
	}
	start := s.link.reserveWrite(s.now, cost)
	s.drainWait += start - s.now
	if s.met != nil {
		s.met.drainWait.Observe((start - s.now).Seconds())
	}
	j.overhead += (start - s.now) + cost
	j.banking = true
	j.End = start + cost
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvDrainBegin, Job: j.ID, From: s.now, To: j.End, Alloc: j.Alloc, Detail: "bank"})
		s.record(Event{Time: s.now, Kind: EvStoreWrite, Job: j.ID, From: start, To: j.End, Detail: "bank"})
	}
	s.runningPush(j)
}

// bankSettle lands a proactive checkpoint: the segment closes at the
// drain end (a durable History boundary — exactly what failGang
// restarts from), busy time is credited without freeing the gang, and
// the next segment opens in place at the current instant with no
// restore prefix — the state never left the device. advance has already
// popped j off the running structures.
func (s *Scheduler) bankSettle(j *Job) {
	j.banking = false
	held := s.now - j.segStart
	j.History = append(j.History, Segment{Alloc: j.Alloc, Start: j.segStart, End: s.now, Preempted: true})
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvSegmentEnd, Job: j.ID, From: j.segStart, To: s.now, Alloc: j.Alloc, Detail: "bank"})
	}
	s.chargeUsage(j.User, time.Duration(j.Alloc.Count)*held)
	if j.canceled {
		// A deferred Cancel was waiting on this drain: the bank landed,
		// the job is discarded instead of continuing.
		s.cfg.Cluster.Release(j.Alloc, held)
		j.restoreCost = 0
		s.finishCanceled(j)
		return
	}
	s.cfg.Cluster.creditBusy(j.Alloc, held)
	j.banks++
	s.banks++
	if s.met != nil {
		s.met.banks.Inc()
	}
	if ck, ok := s.cfg.Execute.(Checkpointer); ok {
		frac := 1 - float64(j.workLeft)/float64(j.workTotal)
		done := int(frac * float64(j.steps))
		if prev := j.snapshot; prev != nil && done < prev.Steps {
			done = prev.Steps // never rewind a captured image
		}
		if done > j.steps {
			done = j.steps
		}
		snap, err := ck.Checkpoint(j, j.snapshot, done)
		if err != nil {
			snap = nil // image lost: resume restarts from scratch
		}
		j.snapshot = snap
	}
	j.segStart, j.segRestore = s.now, 0
	dur := time.Duration(float64(j.workLeft) * j.segFactor)
	if dur < time.Millisecond {
		dur = time.Millisecond
	}
	j.End = s.now + dur
	j.sliceEnd, j.sliceFull, j.slicing = false, 0, false
	if d := j.ckptSlice; d > 0 {
		// Restore the quantum boundary the bank displaced — the slice
		// clock keeps running through a bank, so proactive checkpointing
		// never starves the round-robin rotation. A drain that overshot
		// the deadline yields immediately.
		j.ckptSlice = 0
		if d < s.now {
			d = s.now
		}
		if d < j.End {
			j.sliceFull = j.End
			j.End = d
			j.sliceEnd = true
		}
	} else if q := s.cfg.Quantum; q > 0 && dur > q {
		j.sliceFull = j.End
		j.End = s.now + q
		j.sliceEnd = true
	}
	s.armProactive(j)
	s.runningPush(j)
}

package batch

import (
	"testing"
	"time"
)

// TestReportInsulatedFromReplay pins the replay-mutation fix: Report
// holds copies of the finished jobs, so replaying the same *Job specs
// against further schedulers (the clusterctl comparison pattern, which
// resets every scheduler-owned lifecycle field at Submit) leaves an
// earlier report's schedule — and everything recomputed from it —
// untouched. Before the fix, per-job statistics like AvgWaitUnder were
// only correct if captured at report time; RestoreWait's per-job
// inputs would have needed the same workaround.
func TestReportInsulatedFromReplay(t *testing.T) {
	const nodes, count = 16, 150
	mix := SyntheticStream(9, count, nodes, 5*time.Second)
	ck, rs := fixedCosts(2*time.Second, time.Second)
	run := func() Report {
		s := New(Config{Cluster: newTestCluster(nodes), Policy: Backfill,
			Preempt: true, Quantum: 30 * time.Second,
			CheckpointCost: ck, RestoreCost: rs})
		submitAll(t, s, mix)
		return s.Run()
	}

	first := run()
	if first.RestoreWait <= 0 {
		t.Fatal("mix never contended the read link — the regression would be vacuous")
	}
	type snap struct{ start, end, wait, overhead time.Duration }
	saved := make(map[int]snap, len(first.Jobs))
	for _, j := range first.Jobs {
		saved[j.ID] = snap{j.Start, j.End, j.Wait(), j.CheckpointOverhead()}
	}
	cut, short := first.ShortCut, first.ShortWait

	// Two replays of the same specs, each resetting the originals'
	// lifecycle fields at Submit.
	second := run()
	third := run()

	// The schedule is deterministic, so the replays agree with the
	// first run...
	if second.Makespan != first.Makespan || third.Makespan != first.Makespan ||
		second.RestoreWait != first.RestoreWait || third.RestoreWait != first.RestoreWait {
		t.Fatalf("replays diverged: makespan %v/%v/%v, restore wait %v/%v/%v",
			first.Makespan, second.Makespan, third.Makespan,
			first.RestoreWait, second.RestoreWait, third.RestoreWait)
	}
	// ...and the first report still describes the schedule it measured:
	// its job copies kept their lifecycle fields, and its short-job
	// statistics recompute to the values published at report time.
	for _, j := range first.Jobs {
		want := saved[j.ID]
		if j.Start != want.start || j.End != want.end || j.Wait() != want.wait ||
			j.CheckpointOverhead() != want.overhead {
			t.Fatalf("job %d in the first report was rewritten by a replay: %v/%v vs %v/%v",
				j.ID, j.Start, j.End, want.start, want.end)
		}
	}
	if got := first.MedianEstimate(); got != cut {
		t.Fatalf("first report's median estimate recomputes to %v, was %v at report time", got, cut)
	}
	if got := first.AvgWaitUnder(cut); got != short {
		t.Fatalf("first report's short-job wait recomputes to %v, was %v at report time", got, short)
	}
}

package batch

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"
)

// Trace-driven workload replay. ParseTrace reads the Standard Workload
// Format (SWF) used by the Parallel Workloads Archive: one job per
// line, 18 whitespace-separated fields, ';' comment lines. TraceJobs
// maps the records onto batch Job specs so the same recorded workload
// can be replayed under every queue policy — the clusterctl
// "-trace file.swf -policy all" comparison.
//
// SWF fields (1-based); -1 marks unknown values:
//
//	 1 job number        7 used memory       13 group id
//	 2 submit time (s)   8 requested procs   14 executable id
//	 3 wait time         9 requested time    15 queue number
//	 4 run time         10 requested memory  16 partition
//	 5 allocated procs  11 status            17 preceding job
//	 6 avg cpu time     12 user id           18 think time
//
// The replay uses submit time, requested procs (falling back to
// allocated), requested time as the walltime estimate, run time as the
// true runtime (the Actual hook — imperfect estimates, as recorded),
// user id for fair-share, and queue number as the priority.

// TraceJob is one parsed SWF record, reduced to the fields the replay
// uses.
type TraceJob struct {
	// ID is the trace's job number.
	ID int
	// Submit is the arrival time relative to the trace start.
	Submit time.Duration
	// Run is the recorded runtime; 0 when the trace marks it unknown.
	Run time.Duration
	// Procs is the node request (requested procs, falling back to
	// allocated procs).
	Procs int
	// Req is the requested walltime (the user's estimate); 0 unknown.
	Req time.Duration
	// User is the submitting user ("u<id>").
	User string
	// Queue is the trace's queue number, replayed as the priority.
	Queue int
	// Status is the SWF completion status (1 completed, 0 failed, 5
	// cancelled, -1 unknown).
	Status int
}

// ParseTrace reads an SWF-style trace. Records missing both a positive
// requested time and a positive run time, or without a positive
// processor count, are skipped (cancelled-before-start entries). Any
// unparsable field is an error carrying the line number, as is any
// negative value other than SWF's -1 "unknown" marker — a -3 runtime
// or a negative gang width is a corrupt record, and clamping it to
// zero would silently reshape the replayed workload.
func ParseTrace(r io.Reader) ([]TraceJob, error) {
	sc := bufio.NewScanner(r)
	var out []TraceJob
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 15 {
			return nil, fmt.Errorf("batch: trace line %d: %d fields, want >= 15 (SWF has 18)", lineNo, len(f))
		}
		num := func(i int) (float64, error) {
			v, err := strconv.ParseFloat(f[i-1], 64)
			if err != nil {
				return 0, fmt.Errorf("batch: trace line %d field %d: %v", lineNo, i, err)
			}
			return v, nil
		}
		var vals [15]float64
		for i := 1; i <= 15; i++ {
			v, err := num(i)
			if err != nil {
				return nil, err
			}
			vals[i-1] = v
		}
		// The fields the replay consumes must be non-negative or SWF's
		// exact -1 unknown marker.
		for _, c := range [...]struct {
			field int
			name  string
		}{
			{1, "job number"}, {2, "submit time"}, {4, "run time"},
			{5, "allocated procs"}, {8, "requested procs"},
			{9, "requested time"}, {12, "user id"},
		} {
			if v := vals[c.field-1]; v < 0 && v != -1 {
				return nil, fmt.Errorf("batch: trace line %d field %d (%s): negative value %g (-1 is the only unknown marker)",
					lineNo, c.field, c.name, v)
			}
		}
		secs := func(v float64) time.Duration {
			if v <= 0 {
				return 0
			}
			return time.Duration(v * float64(time.Second))
		}
		procs := int(vals[7]) // requested
		if procs <= 0 {
			procs = int(vals[4]) // allocated
		}
		tj := TraceJob{
			ID:     int(vals[0]),
			Submit: secs(vals[1]),
			Run:    secs(vals[3]),
			Procs:  procs,
			Req:    secs(vals[8]),
			User:   fmt.Sprintf("u%d", int(vals[11])),
			Queue:  int(vals[14]),
			Status: int(vals[10]),
		}
		if tj.Procs <= 0 || (tj.Req <= 0 && tj.Run <= 0) {
			continue
		}
		out = append(out, tj)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("batch: reading trace: %w", err)
	}
	return out, nil
}

// LoadTrace reads an SWF-style trace file.
func LoadTrace(path string) ([]TraceJob, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// WriteSyntheticSWF writes a deterministic synthetic workload in SWF to
// w: count jobs from users U0..U(users-1) on an n-node machine, arrivals
// spaced by a uniform gap in [0, 2*meanGapSec], mostly narrow/short
// submissions with occasional wide long ones (the skew that separates
// the disciplines), runtimes deviating from the requested walltimes the
// way recorded traces do, and the occasional high queue number standing
// in for a priority lane. The bundled soak trace
// (examples/traces/soak.swf) is this function's output — regenerate it
// with the same arguments and it reproduces byte for byte, which the
// soak test pins.
func WriteSyntheticSWF(w io.Writer, seed int64, count, users, n int, meanGapSec int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; synthetic SWF workload: seed %d, %d jobs, %d users, %d-node machine\n", seed, count, users, n)
	fmt.Fprintf(bw, "; generated by batch.WriteSyntheticSWF — do not hand-edit, regenerate instead\n")
	rng := rand.New(rand.NewSource(seed))
	submit := 0
	for id := 1; id <= count; id++ {
		submit += rng.Intn(2*meanGapSec + 1)
		var procs, reqSec int
		switch p := rng.Float64(); {
		case p < 0.55: // narrow short stream
			procs, reqSec = 1+rng.Intn(2), 60+30*rng.Intn(8)
		case p < 0.80: // mid-width, mid-length
			procs, reqSec = 2+rng.Intn(n/4+1), 300+60*rng.Intn(10)
		case p < 0.95: // wide simulation jobs
			procs, reqSec = n/4+1+rng.Intn(n/4+1), 600+120*rng.Intn(10)
		default: // the occasional machine-spanning hog
			procs, reqSec = n/2+1+rng.Intn(n/2), 1200+300*rng.Intn(6)
		}
		// Recorded runtimes miss their estimates both ways: 60%..105%
		// of the requested walltime, never zero.
		runSec := reqSec * (60 + rng.Intn(46)) / 100
		if runSec < 1 {
			runSec = 1
		}
		user := rng.Intn(users)
		queue := 1
		if rng.Float64() < 0.08 {
			queue = 2 // priority lane
		}
		fmt.Fprintf(bw, "%6d %7d -1 %6d -1 -1 -1 %4d %6d -1 1 %3d 1 -1 %d 1 -1 -1\n",
			id, submit, runSec, procs, reqSec, user, queue)
	}
	return bw.Flush()
}

// TraceJobs maps trace records onto Job specs for an n-node cluster,
// plus the Actual hook replaying each record's true runtime against its
// requested-time estimate. Gangs wider than the cluster are clamped to
// it (the archive's machines differ in size); the workload kind rotates
// per record — SWF does not say what a job computed, and the rotation
// exercises every adapter with its default problem size. The returned
// specs are replayable: submit the same slice to one scheduler per
// policy under comparison.
func TraceJobs(recs []TraceJob, n int) ([]*Job, func(*Job, time.Duration) time.Duration) {
	jobs := make([]*Job, 0, len(recs))
	run := make(map[*Job]time.Duration, len(recs))
	for _, r := range recs {
		nodes := r.Procs
		if nodes > n {
			nodes = n
		}
		est := r.Req
		if est <= 0 {
			est = r.Run
		}
		j := &Job{
			Name:     fmt.Sprintf("trace-%d", r.ID),
			Kind:     JobKind(r.ID % int(numKinds)),
			Nodes:    nodes,
			Priority: r.Queue,
			User:     r.User,
			Est:      est,
			Submit:   r.Submit,
		}
		if r.Run > 0 {
			run[j] = r.Run
		}
		jobs = append(jobs, j)
	}
	actual := func(j *Job, est time.Duration) time.Duration {
		if d, ok := run[j]; ok {
			return d
		}
		return est
	}
	return jobs, actual
}

package batch

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"
)

// Forever is a virtual instant past every event: RunUntil(Forever)
// drains the scheduler completely, and a VirtualClock reads it so the
// engine never waits on wall time.
const Forever = time.Duration(math.MaxInt64)

// Policy selects the queue discipline.
type Policy int

const (
	// FIFO starts jobs strictly in queue order: when the head job does
	// not fit, everything behind it waits (head-of-line blocking).
	FIFO Policy = iota
	// Backfill is EASY backfilling: when the head job does not fit, the
	// scheduler computes its shadow start time (the earliest instant a
	// contiguous gang frees up, trusting running jobs' estimates) and
	// lets smaller jobs jump ahead if their own estimate finishes
	// before the shadow — so the reservation is never delayed, unless a
	// backfilled job overruns its estimate (exactly the real-world
	// failure mode).
	Backfill
	// Conservative is conservative backfilling: every queued job gets a
	// reservation against a capacity profile of running jobs and
	// earlier reservations, not just the blocked head. A job may start
	// out of order only if its reserved slot begins now, so no earlier
	// job's reservation is ever pushed back by a backfill. Reservations
	// are re-planned on every scheduling event (see conservative.go for
	// exactly when the first promise is a hard start-time bound).
	Conservative
	// FairShare is EASY backfilling over a fair-share queue order: each
	// user's historical usage (node-seconds, exponentially decayed with
	// Config.FairShareHalfLife) sorts the queue ascending, so
	// light-usage users jump heavy ones regardless of submission order.
	FairShare
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Backfill:
		return "easy"
	case Conservative:
		return "conservative"
	case FairShare:
		return "fairshare"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy maps a CLI string to a Policy. "backfill" is accepted as
// a legacy alias for "easy".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "easy", "backfill":
		return Backfill, nil
	case "conservative":
		return Conservative, nil
	case "fairshare":
		return FairShare, nil
	}
	return 0, fmt.Errorf("batch: unknown policy %q (want fifo, easy, conservative, or fairshare)", s)
}

// Policies lists every queue discipline, in comparison-report order.
func Policies() []Policy { return []Policy{FIFO, Backfill, Conservative, FairShare} }

// Executor runs a job's workload on its allocated gang. Implementations
// do real (wall-clock) work; the job's virtual runtime still comes from
// the estimate path so the event loop stays deterministic.
type Executor interface {
	// Execute runs the job and returns a result summary for the report.
	// An error marks the job Failed; it still holds its allocation for
	// the full runtime.
	Execute(j *Job, a Allocation) (detail string, err error)
}

// Config assembles a scheduler.
type Config struct {
	// Cluster is the machine to schedule onto. Required.
	Cluster *Cluster
	// Policy selects the queue discipline: FIFO, Backfill (EASY),
	// Conservative, or FairShare.
	Policy Policy
	// Placement selects the gang-placement engine; the zero value is
	// the topology-aware engine (PlaceTopo), PlaceFirstFit restores the
	// legacy first-contiguous-window behavior.
	Placement Placement
	// BackfillDepth bounds how many queued candidates one backfill pass
	// examines behind the blocked head (the EASY and fair-share
	// disciplines): once that many arrived jobs have been considered,
	// the pass stops scanning. Deep queues make unbounded scans
	// quadratic — a million-job backlog costs a million probes per pass
	// for a handful of possible starts — and production schedulers cap
	// exactly this (cf. SLURM's bf_max_job_test). Zero means unlimited,
	// preserving the exhaustive legacy behavior; the depth only prunes
	// scan effort, it never reorders starts within the examined prefix.
	BackfillDepth int
	// Estimate supplies a runtime estimate for jobs submitted with
	// Est == 0; nil defaults to a PerfEstimator over the paper's
	// hardware model.
	Estimate func(*Job) time.Duration
	// Actual maps a job's estimate to its true runtime (e.g. a
	// deterministic jitter so estimates are imperfect, as in real
	// traces); nil means runtimes equal estimates.
	Actual func(j *Job, est time.Duration) time.Duration
	// TrunkSlowdown multiplies the runtime of gangs whose node range
	// spans the stacking trunk (Section 4.3's contention knee seen from
	// the scheduler's seat). Values <= 0 or == 1 disable it.
	TrunkSlowdown float64
	// Preempt enables priority preemption: a blocked job may suspend
	// running jobs of strictly lower priority through the
	// checkpoint/restart protocol (see preempt.go). The victims drain a
	// checkpoint (CheckpointCost), re-enter the queue with their saved
	// progress, and pay RestoreCost when they are dispatched again.
	Preempt bool
	// Quantum enables time-sliced gang scheduling: a resident gang that
	// has run a full quantum of work is suspended through the same
	// checkpoint/restart protocol whenever a waiting job that outranks
	// it in the discipline order could be placed on its nodes, and
	// re-enters the queue stamped behind every such waiter — so gangs
	// contending for the same nodes share them round-robin instead of
	// running to completion. A gang with no eligible waiter keeps its
	// nodes (its slice is extended in place, no overhead charged).
	// Each slice grants a full quantum of execution after the restore
	// charge, so progress per slice is bounded below and every mix
	// drains regardless of how the quantum compares to the
	// checkpoint/restore cost. <= 0 disables time-slicing.
	Quantum time.Duration
	// Faults injects a failure schedule (fault.go): node crashes with
	// repair times and whole-trunk outages become first-class events in
	// the virtual-time loop. A crash kills every resident gang on the
	// node; killed jobs restart from their last banked History boundary
	// and the work destroyed since it is accounted in Report.LostWork.
	// Nil or empty disables injection at zero cost.
	Faults *FaultPlan
	// CheckpointInterval enables periodic proactive checkpointing under
	// fault injection: a running gang banks its progress (a checkpoint
	// drain after which it keeps running on its nodes) whenever the
	// interval elapses since its segment start, bounding the work a
	// crash can destroy — the classic optimal-interval tradeoff between
	// drain overhead and expected lost work. Only consulted when Faults
	// is non-empty, so a fault-free run is bit-identical with the knob
	// on or off. <= 0 disables proactive banking.
	CheckpointInterval time.Duration
	// CheckpointCost prices draining one job's per-node workload image
	// at preemption; nil uses DefaultCheckpointCost over the paper's
	// hardware model (AGP readback plus a Gigabit write to the
	// checkpoint store).
	CheckpointCost func(*Job) time.Duration
	// RestoreCost prices reloading a checkpointed image at the next
	// dispatch; nil uses DefaultRestoreCost.
	RestoreCost func(*Job) time.Duration
	// StoreDuplex selects how the checkpoint store link's read and
	// write directions share the wire: FullDuplex (the zero value)
	// gives drains and restores independent timelines; HalfDuplex
	// serializes both directions on one.
	StoreDuplex Duplex
	// SuspendToHost enables the in-memory suspension tier: a victim
	// whose checkpoint image fits in its nodes' free host memory
	// suspends into RAM — bus-only drain and resume, no store
	// round-trip — with the image pinning its footprint on those nodes
	// until the job resumes or memory pressure demotes the image to
	// the store (see suspend.go).
	SuspendToHost bool
	// HostSuspendCost prices the bus-only drain of a suspend-to-host
	// checkpoint; nil uses DefaultHostSuspendCost (AGP readback).
	HostSuspendCost func(*Job) time.Duration
	// HostResumeCost prices resuming a host-resident image; nil uses
	// DefaultHostResumeCost (AGP download).
	HostResumeCost func(*Job) time.Duration
	// FairShareHalfLife is the virtual-time half-life of per-user usage
	// decay under the FairShare policy; <= 0 means 30 minutes.
	FairShareHalfLife time.Duration
	// Execute optionally runs each job's workload for real when it
	// completes. Executors that also implement Checkpointer run
	// preempted jobs in segments with genuine state snapshots. Leave
	// nil for pure virtual-time scheduling studies.
	Execute Executor
	// Recorder receives one typed Event per lifecycle transition and
	// one EvBlocked per queued job per scheduling pass (obs.go,
	// explain.go). Nil disables recording at zero cost on the hot
	// path — the zero-alloc guard in obs_test.go pins exactly that.
	Recorder Recorder
	// Metrics is the registry the scheduler publishes counters,
	// gauges, and histograms into (metrics.go); series carry
	// policy/placement labels. Nil disables publication.
	Metrics *Registry
}

// Scheduler drives the job lifecycle on a virtual clock: Submit stamps
// arrivals, Run (or the incremental Step/RunUntil that Engine wraps)
// drains the queue event by event — job completions, checkpoint
// settlements, and future arrivals — placing jobs per the configured
// policy. Alongside the authoritative state (bitmap, pending slice,
// running heap) it maintains the index structures of index.go: a
// completion-event treap for shadow and profile queries and a calendar
// queue for arrivals, kept in lockstep by the dispatch/complete/drain
// paths.
type Scheduler struct {
	cfg           Config
	now           time.Duration
	pending       queue
	running       eventHeap
	finished      []*Job
	nextID        int
	backfills     int
	preemptEvents int
	sliceEvents   int
	ckptInFlight  int                  // gangs currently draining checkpoints
	link          storeLink            // shared checkpoint-store link (read+write timelines)
	drainWait     time.Duration        // total time drains queued for the write direction
	restoreWait   time.Duration        // total time restores queued for the read direction
	hostSuspends  int                  // drains that stayed in host RAM (suspend-to-host)
	demotions     int                  // host images evicted to the store on memory pressure
	demoteTime    time.Duration        // store-write time those evictions occupied the link
	demoting      []*Job               // host images mid-eviction (reservation held to demoteEnd)
	pinned        []pin                // migration pins: home RAM held until the outbound write settles
	usage         map[string]*usage    // per-user decayed accounting (fairshare.go)
	fsEpoch       time.Duration        // reference instant for fair-share sort keys (fairshare.go)
	ends          endTreap             // running completion events, the incremental capacity profile (index.go)
	arrivals      calendarQueue        // future arrivals bucketed by instant (index.go)
	byID          map[int]*Job         // every job ever submitted, by assigned ID (Cancel, JobByID)
	canceled      int                  // jobs withdrawn by Cancel
	less          func(a, b *Job) bool // jobLess, bound once (no per-pass closure)
	rec           Recorder             // lifecycle event sink; nil = recording off (obs.go)
	met           *schedMetrics        // typed metric handles; nil = metrics off (metrics.go)
	passes        int                  // scheduling passes taken (EvBlocked pass numbers)
	faultEvs      []faultEvent         // compiled fault schedule, sorted (fault.go)
	faultIdx      int                  // next fault event to apply
	downSince     []time.Duration      // per node: instant it went down, -1 while up
	downUntil     []time.Duration      // per node: scheduled repair instant while down
	trunkBack     time.Duration        // scheduled end of the active trunk outage
	nodeFaults    int                  // node-down events applied
	trunkFaults   int                  // trunk outages applied
	faultKills    int                  // gang kills caused by faults
	banks         int                  // proactive checkpoints settled
	lostWork      time.Duration        // wall time faults destroyed (Report.LostWork)
	downTime      time.Duration        // total node-down time accrued so far
}

// New validates cfg and returns an empty scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Cluster == nil {
		panic("batch: Config.Cluster is required")
	}
	if cfg.Estimate == nil {
		est := NewPerfEstimator()
		cfg.Estimate = est.Estimate
	}
	if cfg.CheckpointCost == nil {
		cfg.CheckpointCost = DefaultCheckpointCost
	}
	if cfg.RestoreCost == nil {
		cfg.RestoreCost = DefaultRestoreCost
	}
	if cfg.HostSuspendCost == nil {
		cfg.HostSuspendCost = DefaultHostSuspendCost
	}
	if cfg.HostResumeCost == nil {
		cfg.HostResumeCost = DefaultHostResumeCost
	}
	s := &Scheduler{cfg: cfg, nextID: 1, usage: make(map[string]*usage), byID: make(map[int]*Job)}
	s.ends.init()
	s.arrivals.init()
	s.link.duplex = cfg.StoreDuplex
	s.less = s.jobLess
	s.rec = cfg.Recorder
	if cfg.Metrics != nil {
		s.met = newSchedMetrics(cfg.Metrics, cfg.Policy, cfg.Placement)
	}
	if evs := cfg.Faults.compile(cfg.Cluster.Size()); len(evs) > 0 {
		s.faultEvs = evs
		s.downSince = make([]time.Duration, cfg.Cluster.Size())
		s.downUntil = make([]time.Duration, cfg.Cluster.Size())
		for i := range s.downSince {
			s.downSince[i] = -1
		}
	}
	return s
}

// jobLess is the active queue discipline: fair-share usage (FairShare
// only), then priority descending, then the round-robin key (submit
// time, or the last slice-suspension instant for a gang suspended at a
// quantum boundary), then job ID — the final two legs make
// equal-priority ordering deterministic across replays.
func (s *Scheduler) jobLess(a, b *Job) bool {
	if s.cfg.Policy == FairShare {
		if ka, kb := s.keyOf(a.User), s.keyOf(b.User); ka != kb {
			return ka < kb
		}
	}
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if ka, kb := a.rrKey(), b.rrKey(); ka != kb {
		return ka < kb
	}
	return a.ID < b.ID
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Submit validates a job spec, resolves its runtime estimate, and
// queues it. Jobs may carry a future Submit time; a zero or past Submit
// arrives at the current clock. The caller's spec fields are never
// mutated: defaults (Steps, Problem) and the arrival clamp are resolved
// into scheduler-owned fields, so the same *Job specs can be replayed
// against a second scheduler — the clusterctl comparison pattern.
func (s *Scheduler) Submit(j *Job) error {
	if j.Nodes <= 0 {
		return fmt.Errorf("batch: %s requests %d nodes", j, j.Nodes)
	}
	if j.Nodes > s.cfg.Cluster.Size() {
		return fmt.Errorf("batch: %s requests %d nodes, cluster has %d",
			j, j.Nodes, s.cfg.Cluster.Size())
	}
	r := *j // resolved view; the caller's spec stays pristine
	if r.Steps <= 0 {
		r.Steps = 1
	}
	if r.Problem == ([3]int{}) {
		r.Problem = defaultProblem(r.Kind)
	}
	if r.Submit < s.now {
		r.Submit = s.now
	}
	need := memoryNeed(r.Kind, r.Problem, r.Nodes)
	if s.cfg.Cluster.NodesWithMem(need) < j.Nodes {
		return fmt.Errorf("batch: %s needs %d MB per node on %d nodes, cluster cannot grant that",
			j, need>>20, j.Nodes)
	}
	j.ID = s.nextID
	s.nextID++
	s.byID[j.ID] = j
	j.steps, j.problem, j.arrive, j.memNeed = r.Steps, r.Problem, r.Submit, need
	j.est = j.Est
	if j.est <= 0 {
		j.est = s.cfg.Estimate(&r)
	}
	if j.est < time.Millisecond {
		j.est = time.Millisecond
	}
	// Reset every scheduler-owned lifecycle field: a replayed job must
	// not carry a previous schedule's outcome (a stale Err would mark
	// it Failed again without running).
	j.State = Queued
	j.Start, j.End = 0, 0
	j.Alloc = Allocation{}
	j.History = nil
	j.Detail, j.Err = "", nil
	j.shadow, j.backfilled = 0, false
	j.workTotal, j.workLeft, j.doneWork = 0, 0, 0
	j.restoreCost, j.overhead = 0, 0
	j.preempts, j.preempting = 0, false
	j.snapshot = nil
	j.segStart, j.segRestore, j.segFactor = 0, 0, 1
	j.readStart, j.readEnd, j.readWait = 0, 0, 0
	j.hostImage, j.hostDrain, j.forceStore = false, false, false
	j.hostAlloc = Allocation{}
	j.demoteEnd = 0
	j.promise, j.promised = 0, false
	j.wavePending, j.waveLeft, j.waveFor = false, 0, nil
	j.sliceEnd, j.sliceFull, j.slicing = false, 0, false
	j.slices, j.rrStamp = 0, 0
	j.faults, j.banks, j.lostWork = 0, 0, 0
	j.ckptDue, j.banking, j.ckptSlice = false, false, 0
	j.canceled = false
	s.pending.push(j)
	if j.arrive > s.now {
		s.arrivals.add(j.arrive, j.ID)
	}
	if s.rec != nil {
		// The display label is assembled before the hook call: hook
		// arguments stay constant/preallocated (recorderguard), and
		// the one allocation per submission happens off the
		// scheduling hot path, only with a recorder attached.
		label := fmt.Sprintf("%s (%s, %d nodes, prio %d, user %s)", j.Name, j.Kind, j.Nodes, j.Priority, j.User)
		s.record(Event{Time: s.now, Kind: EvSubmit, Job: j.ID, From: j.arrive, Detail: label})
	}
	if s.met != nil {
		s.met.submitted.Inc()
		s.met.queueDepth.Set(float64(s.pending.len()))
	}
	return nil
}

// Run drains the queue to completion and returns the report. It may be
// called again after further submissions; the virtual clock keeps
// advancing monotonically. Events are job completions (including
// checkpoint drains and quantum boundaries), future arrivals, and
// demotion settlements — the instants an evicted host image finishes
// its store write and releases the memory it pinned. Run is a thin
// compatibility wrapper over the incremental core: it steps the event
// loop until no event remains — exactly the monolithic loop it
// replaced, event for event.
func (s *Scheduler) Run() Report {
	s.RunUntil(Forever)
	return s.report()
}

// Step runs one scheduling round and advances the virtual clock to the
// next engine event — a job completion (including checkpoint drains and
// quantum boundaries), a future arrival, or a demotion settlement —
// handling everything due at that instant. It returns false, without
// moving the clock, when no event remains: the queue is drained (or
// every pending job's arrival lies in the future of an externally
// driven clock — see RunUntil).
func (s *Scheduler) Step() bool {
	s.settleDemotions()
	s.applyFaults()
	s.schedulePass()
	t, ok := s.nextEvent()
	if !ok {
		return false
	}
	s.advance(t)
	return true
}

// RunUntil processes every event due at or before t, leaving the
// virtual clock at the last event handled (never at t itself — the
// timeline stays event-driven, and a job ingested later with a stamp
// between the last event and t is still a future arrival). This is the
// incremental entry point a real-time driver calls with its clock
// reading: if the driver overslept, every missed event is caught up in
// order, deterministically.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		s.settleDemotions()
		s.applyFaults()
		s.schedulePass()
		next, ok := s.nextEvent()
		if !ok || next > t {
			return
		}
		s.advance(next)
	}
}

// nextEvent returns the earliest pending event instant: the soonest
// completion (which wins ties, exactly as the monolithic loop ordered
// its switch), future arrival, or demotion settlement. Future arrivals
// come from the calendar queue — one bucket peek — rather than a scan
// of the whole pending slice; the liveness probe discards entries for
// jobs canceled while waiting, reproducing the scan's semantics
// (queue_test.go cross-checks the two against each other).
func (s *Scheduler) nextEvent() (time.Duration, bool) {
	tComplete := time.Duration(-1)
	if s.running.Len() > 0 {
		tComplete = s.running[0].End
	}
	tNext, hasNext := s.arrivals.next(s.now, s.queuedLive)
	if tDemote, ok := s.nextDemotion(); ok && (!hasNext || tDemote < tNext) {
		tNext, hasNext = tDemote, true
	}
	// Fault events drive the clock only while work is outstanding: an
	// idle scheduler does not tick through an empty storm tail, and
	// skipped events catch up in order when work arrives (applyFaults).
	if s.faultIdx < len(s.faultEvs) && s.outstandingWork() {
		if tF := s.faultEvs[s.faultIdx].at; !hasNext || tF < tNext {
			tNext, hasNext = tF, true
		}
	}
	switch {
	case tComplete >= 0 && (!hasNext || tComplete <= tNext):
		return tComplete, true
	case hasNext:
		return tNext, true
	}
	return 0, false
}

// queuedLive reports whether a calendar entry's job is still a pending
// submission — the validity probe that lazily retires entries for jobs
// canceled while their arrival was still in the future.
func (s *Scheduler) queuedLive(id int) bool {
	j := s.byID[id]
	return j != nil && j.State == Queued
}

// runningPush adds j to the running set: the completion-event heap and
// the end-time treap move together, always keyed by the current j.End.
func (s *Scheduler) runningPush(j *Job) {
	heap.Push(&s.running, j)
	s.ends.add(j.End, j.ID, j.Alloc.Count)
}

// runningPop removes the earliest completion event from both structures.
func (s *Scheduler) runningPop() *Job {
	j := heap.Pop(&s.running).(*Job)
	s.ends.del(j.End, j.ID)
	return j
}

// advance moves the clock to t and pops every completion event due at
// that instant (arrivals and settlements need no handling beyond the
// clock move — the next scheduling pass sees them).
func (s *Scheduler) advance(t time.Duration) {
	s.now = t
	for s.running.Len() > 0 && s.running[0].End == s.now {
		j := s.runningPop()
		switch {
		case j.ckptDue && !j.preempting:
			s.ckptBoundary(j)
		case j.banking:
			s.bankSettle(j)
		case j.sliceEnd && !j.preempting:
			s.sliceBoundary(j)
		default:
			s.complete(j)
		}
	}
}

// outstandingWork reports whether any job still needs the clock: fault
// events only advance time while this holds (nextEvent).
func (s *Scheduler) outstandingWork() bool {
	return s.pending.len() > 0 || s.running.Len() > 0 ||
		len(s.demoting) > 0 || len(s.pinned) > 0
}

// schedulePass starts every job the policy allows at the current
// instant.
func (s *Scheduler) schedulePass() {
	// Under FairShare the cached queue order stays valid across pure
	// clock advance (every account decays by the same factor, see
	// usageOf); chargeUsage and push mark the queue dirty whenever the
	// order can actually change, so no re-sort is forced here.
	for {
		var t0 time.Time
		if s.met != nil {
			// The wall sample exists only for the pass-latency
			// histogram and never feeds a scheduling decision;
			// recorder-only runs (s.met == nil) take neither branch
			// and stay bit-for-bit deterministic.
			t0 = time.Now() //batchlint:allow determinism -- wall sampling is gated on an attached metrics registry and observes, never decides
		}
		var started bool
		if s.cfg.Policy == Conservative {
			started = s.conservativePass()
		} else {
			started = s.passOnce()
		}
		if s.met != nil {
			s.met.passWall.Observe(time.Since(t0).Seconds()) //batchlint:allow determinism -- closes the registry-gated wall sample above; same guard, no decision taken on it
			s.met.queueDepth.Set(float64(s.pending.len()))
			wb, rb := s.link.backlog(s.now)
			s.met.writeBacklog.Set(wb.Seconds())
			s.met.readBacklog.Set(rb.Seconds())
		}
		if !started {
			return
		}
	}
}

// passOnce scans the queue once under FIFO, EASY, or fair-share; it
// reports whether any job started (a start changes the free map, so the
// caller rescans). With a recorder attached, every arrived job scanned
// and skipped gets one EvBlocked event classifying the obstacle; a
// pass ends at the first start, so jobs behind it are simply not
// scanned that pass.
func (s *Scheduler) passOnce() bool {
	pass := s.beginPass()
	var blocked *Job // first eligible job that did not fit
	var shadow time.Duration
	scanned := 0 // backfill candidates examined behind the blocked head
	jobs := s.pending.ordered(s.less)
	for i, j := range jobs {
		if j == nil || j.arrive > s.now {
			continue // tombstone, or not yet arrived
		}
		if blocked != nil {
			scanned++
			if depth := s.cfg.BackfillDepth; depth > 0 && scanned > depth {
				break // bounded backfill: the tail is not examined
			}
		}
		if blocked == nil && j.demoteEnd > s.now {
			// The queue head's image is mid-eviction: it cannot start
			// before the write settles, but it keeps the shadow
			// reservation — otherwise a lower-ranked job owns the
			// shadow for the eviction window and backfills admitted
			// under that later bound can squat on the head's nodes
			// far past its settlement. shadowStart models the
			// settlement events, so the shadow lands at demoteEnd or
			// the first sufficient capacity after it.
			s.explain(pass, j, ReasonEvicting, j.demoteEnd)
			if s.cfg.Policy == FIFO {
				s.explainRest(pass, jobs[i+1:])
				return false
			}
			blocked = j
			shadow = s.shadowStart(j)
			if !blocked.promised && shadow > s.now {
				blocked.promise, blocked.promised = shadow, true
			}
			continue
		}
		if j.demoteEnd > s.now {
			s.explain(pass, j, ReasonEvicting, j.demoteEnd)
			continue // backfill candidates must be startable now
		}
		if blocked == nil {
			if s.tryStart(j, false, 0, false) {
				return true
			}
			// The head is blocked: preemption (if enabled) begins
			// checkpointing lower-priority gangs, and memory pressure
			// (if suspend-to-host is on) begins demoting host images,
			// before the shadow is computed — so the reservation
			// reflects the drained nodes.
			out := s.preemptFor(j)
			s.demoteFor(j)
			s.explainHead(pass, j, out)
			if s.cfg.Policy == FIFO {
				s.explainRest(pass, jobs[i+1:])
				return false // head-of-line blocking
			}
			blocked = j
			shadow = s.shadowStart(j)
			// shadowStart's degenerate fallback is s.now (resident
			// images nothing is evicting still pin the needed memory);
			// that is a backfill freeze, not a keepable reservation, so
			// it is never recorded as the job's promise.
			if !blocked.promised && shadow > s.now {
				blocked.promise, blocked.promised = shadow, true
			}
			continue
		}
		// Backfill: only jobs whose remaining estimate (plus a pending
		// restore charge, including the read-link queue wait) drains
		// before the head's reservation may jump it (tryStart
		// re-checks with the allocation-dependent trunk stretch
		// applied).
		if s.now+s.restorePrefix(j)+j.estLeft() <= shadow {
			if s.tryStart(j, true, shadow, true) {
				return true
			}
			s.explainBackfillFail(pass, j, shadow)
		} else if s.rec != nil {
			s.explain(pass, j, s.shadowOrLinkBusy(j, shadow), shadow)
		}
	}
	return false
}

// restorePrefix estimates the non-work prefix a dispatch of j right now
// would carry ahead of its remaining runtime: the pending restore
// transfer plus, for a store-resident image, the current read-link
// queue delay. A host-resident image prices its cheap bus-only resume —
// optimistic if the home nodes turn out taken and the image must
// migrate over the store path, but tryStart re-checks the real prefix
// against the reservation per candidate.
func (s *Scheduler) restorePrefix(j *Job) time.Duration {
	if j.restoreCost <= 0 {
		return 0
	}
	if j.hostImage {
		return j.restoreCost
	}
	return s.link.readDelay(s.now) + j.restoreCost
}

// restorePrefixWorst is the pessimistic mirror for reservation slots:
// a host-resident image is priced at the migration path (outbound
// write leg, then the store read) in case its home nodes are occupied
// when the promised instant arrives — the conservative profile's
// "slot is always long enough" claim has to cover that dispatch too.
func (s *Scheduler) restorePrefixWorst(j *Job) time.Duration {
	if j.restoreCost <= 0 {
		return 0
	}
	if !j.hostImage {
		return s.link.readDelay(s.now) + j.restoreCost
	}
	readAvail := s.now + s.link.writeDelay(s.now) + s.storeWriteLeg(j)
	rStart := readAvail
	if s.link.readFree > rStart {
		rStart = s.link.readFree
	}
	rc := s.cfg.RestoreCost(j)
	if rc < 0 {
		rc = 0
	}
	prefix := rStart + rc - s.now
	if j.restoreCost > prefix {
		prefix = j.restoreCost
	}
	return prefix
}

// tryStart attempts a gang placement for j at the current instant and,
// on success, fixes its segment runtime and pushes its completion
// event. The placement engine ranks every candidate node set; the first
// (best) one that survives the constraints wins. For backfill starts,
// limit is the blocked head's reservation: the scheduler-known trunk
// stretch of the candidate (plus any pending restore charge) must still
// drain before it, else the *next* candidate is tried — a start only
// fails when no placement works (only unknowable overruns, the Actual
// hook, may breach the EASY guarantee). Under PlaceFirstFit a single
// candidate is offered, reproducing the legacy take-it-or-leave-it
// behavior.
//
// A pending restore is priced against the store link's read timeline:
// the transfer queues behind earlier in-flight restores, the queue
// wait is charged to the job (and reported as RestoreWait), and the
// whole prefix — wait plus transfer — rides ahead of the segment's
// work. A host-resident image resumes bus-only when its home nodes are
// free and fit it; placed anywhere else it migrates over the store
// path, paying the full store restore on the read link.
func (s *Scheduler) tryStart(j *Job, backfilled bool, limit time.Duration, limited bool) bool {
	c := s.cfg.Cluster
	if c.FreeNodes() < j.Nodes {
		return false // cheap precheck before candidate enumeration
	}
	if j.hostImage {
		// The image's memory is j's own to spend: lift the reservation
		// for the trial so candidates overlapping the home nodes price
		// the RAM it would vacate.
		c.unreserve(j.hostAlloc, j.memNeed)
	}
	var alloc Allocation
	var prefix time.Duration   // restore wait + transfer ahead of the work
	var readCost time.Duration // store-read transfer to book on the link
	placed := false
	if j.hostImage && c.freeAndFits(j.hostAlloc, j.memNeed) {
		// Home resume: bus-only, no link traffic.
		if !limited || s.now+j.restoreCost+s.stretched(j.estLeft(), j.hostAlloc.CrossesTrunk) <= limit {
			home := candidate{ranges: j.hostAlloc.Ranges, crosses: j.hostAlloc.CrossesTrunk}
			alloc = c.commit(home)
			prefix, placed = j.restoreCost, true
		}
	}
	migrate := false
	var writeLeg time.Duration
	if !placed {
		cost := j.restoreCost
		if j.hostImage {
			// Migration: the image cannot teleport between nodes — it
			// drains out of the home RAM over the store's write
			// direction (the transfer its suspension skipped), then
			// rides back in as a full store restore on the read side;
			// a compressed demotion + restore, all charged to the
			// waiting gang.
			migrate = true
			cost = s.cfg.RestoreCost(j)
			if cost < 0 {
				cost = 0
			}
			writeLeg = s.storeWriteLeg(j)
		}
		readAvail := s.now // instant the image is in the store, ready to read
		if migrate {
			readAvail += s.link.writeDelay(s.now) + writeLeg
		}
		wait := time.Duration(0)
		if cost > 0 {
			rStart := readAvail
			if free := s.link.readFree; free > rStart {
				rStart = free
			}
			wait = rStart - s.now // everything ahead of the read transfer
		}
		cands := c.candidates(j.Nodes, j.memNeed, s.cfg.Placement)
		if s.met != nil {
			s.met.candidates.Add(float64(len(cands)))
		}
		for _, cand := range cands {
			if limited && s.now+wait+cost+s.stretched(j.estLeft(), cand.crosses) > limit {
				continue
			}
			alloc = c.commit(cand)
			prefix, readCost = wait+cost, cost
			placed = true
			break
		}
	}
	if !placed {
		if j.hostImage {
			c.reserve(j.hostAlloc, j.memNeed)
		}
		return false
	}
	j.readStart, j.readEnd, j.readWait = 0, 0, 0
	readAvail := s.now
	var migStart time.Duration
	if migrate {
		// The home RAM stays pinned until the outbound write settles.
		migStart = s.link.reserveWrite(s.now, writeLeg)
		s.drainWait += migStart - s.now
		c.reserve(j.hostAlloc, j.memNeed)
		s.pinUntil(j.hostAlloc, j.memNeed, migStart+writeLeg)
		readAvail = migStart + writeLeg
	}
	j.hostImage = false
	j.hostAlloc = Allocation{}
	if readCost > 0 {
		start := s.link.reserveRead(readAvail, readCost)
		j.readWait = start - readAvail
		s.restoreWait += j.readWait
		j.readStart, j.readEnd = start, start+readCost
		if s.met != nil {
			s.met.restoreWait.Observe(j.readWait.Seconds())
		}
	}
	if backfilled && limited {
		j.shadow = limit
	}
	s.pending.remove(j)
	j.Alloc = alloc
	j.State = Running
	j.backfilled = backfilled
	if backfilled {
		s.backfills++
		if s.met != nil {
			s.met.backfills.Inc()
		}
	}
	if len(j.History) == 0 {
		// First dispatch: fix the true total work. The Actual hook maps
		// the estimate to the real runtime (imperfect estimates); the
		// scheduler never reads workTotal for decisions, only workLeft
		// progress already banked.
		j.Start = s.now
		total := j.est
		if s.cfg.Actual != nil {
			total = s.cfg.Actual(j, j.est)
		}
		if total < time.Millisecond {
			total = time.Millisecond
		}
		j.workTotal, j.workLeft = total, total
	}
	factor := 1.0
	if alloc.CrossesTrunk && s.cfg.TrunkSlowdown > 1 {
		factor = s.cfg.TrunkSlowdown
	}
	dur := prefix + time.Duration(float64(j.workLeft)*factor)
	if dur < time.Millisecond {
		dur = time.Millisecond
	}
	j.segStart, j.segRestore, j.segFactor = s.now, prefix, factor
	j.overhead += prefix
	j.restoreCost = 0
	j.wavePending = false
	j.End = s.now + dur
	// Time-slicing: a segment outliving the quantum carries a
	// slice-boundary event instead; the restore charge rides ahead of
	// the quantum so every slice banks a full quantum of execution.
	j.sliceEnd, j.sliceFull, j.slicing = false, 0, false
	if q := s.cfg.Quantum; q > 0 && dur > j.segRestore+q {
		j.sliceFull = j.End
		j.End = s.now + j.segRestore + q
		j.sliceEnd = true
	}
	s.armProactive(j)
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvDispatch, Job: j.ID, From: s.now + prefix, Alloc: alloc,
			Detail: dispatchDetail(backfilled, migrate, readCost > 0, prefix)})
		if migrate {
			s.record(Event{Time: s.now, Kind: EvStoreWrite, Job: j.ID, From: migStart, To: migStart + writeLeg, Detail: "migrate"})
		}
		if readCost > 0 {
			s.record(Event{Time: s.now, Kind: EvStoreRead, Job: j.ID, From: j.readStart, To: j.readEnd})
		}
	}
	s.runningPush(j)
	return true
}

// sliceBoundary handles a quantum-boundary event popped off the running
// heap: if an arrived waiter that outranks the gang round-robin could
// be placed on its nodes, the gang suspends through the checkpoint
// protocol (stamped so it resumes after the waiters have had a turn);
// otherwise the slice is extended in place, free of charge.
//
// The futile-suspension guard mirrors preemptFor's: when the gang's
// remaining work would drain before its contended checkpoint does,
// running to completion frees the nodes sooner than suspending, so the
// boundary extends instead — a job whose runtime slightly exceeds a
// quantum multiple finishes its tail rather than paying a checkpoint,
// a store-link wait, and a restore to run it later.
func (s *Scheduler) sliceBoundary(j *Job) {
	futile := j.sliceFull-s.now <= s.drainEstimate(j)
	if !futile && s.sliceYields(j) {
		// sliceYields may have flipped the suspension to the store
		// tier (j's in-RAM image would pin the waiter's memory); the
		// futile rule must then hold at the store tariff too, or the
		// forced drain frees the nodes later than just running out
		// the tail would.
		if j.forceStore && j.sliceFull-s.now <= s.storeDrainEstimate(j) {
			j.forceStore = false
		} else {
			j.sliceEnd, j.slicing = false, true
			j.rrStamp = s.now // resume after the waiters that outranked us here
			if s.rec != nil {
				s.record(Event{Time: s.now, Kind: EvSliceYield, Job: j.ID, Alloc: j.Alloc})
			}
			s.runningPush(j)
			s.beginCheckpoint(j)
			s.fixRunning(j)
			return
		}
	}
	j.End = j.sliceFull
	if q := s.cfg.Quantum; s.now+q < j.sliceFull {
		j.End = s.now + q
	} else {
		j.sliceEnd, j.sliceFull = false, 0
	}
	s.runningPush(j)
}

// sliceYields reports whether gang j must give up its nodes at the
// current quantum boundary: some pending, arrived job both ranks ahead
// of j as the discipline would order them after the suspension (j's
// round-robin key becomes the boundary instant) and is unblocked by the
// suspension — it cannot be placed on the currently free nodes but can
// be once j's nodes join them. Suspending for a waiter that already
// fits (it is blocked by policy, not capacity), for one that still
// would not fit, or for one j would immediately outrank again, would
// only thrash checkpoint/restore. Under FIFO only the queue head may
// start, so only the head is consulted; under the backfilling
// disciplines any outranking waiter counts (a backfill candidate's
// shadow constraint is re-checked at the actual start, so a yield is at
// worst one wasted suspension, not a misplacement).
func (s *Scheduler) sliceYields(j *Job) bool {
	var usedNow, usedFreed []bool // lazy bitmaps: as-is, and with j's nodes freed
	for _, p := range s.pending.ordered(s.less) {
		if p == nil || p.arrive > s.now {
			continue
		}
		if p.demoteEnd > s.now {
			// Mid-eviction: p cannot start now. Under FIFO it is still
			// the head, and passOnce will not start anything behind it
			// — yielding for a lower-ranked waiter would drain a
			// checkpoint FIFO can never cash in.
			if s.cfg.Policy == FIFO {
				return false
			}
			continue
		}
		if !s.outranksAtBoundary(p, j) {
			if s.cfg.Policy == FIFO {
				return false // head-of-line: nothing behind the head can start
			}
			continue
		}
		if usedNow == nil {
			usedNow = s.cfg.Cluster.usedCopy()
			usedFreed = append([]bool(nil), usedNow...)
			for _, nr := range j.Alloc.Ranges {
				for i := nr.First; i < nr.First+nr.Count; i++ {
					usedFreed[i] = false
				}
			}
		}
		// Both placement probes run with p's own image reservation
		// lifted (its dispatch spends that memory): counting it would
		// refuse yields to waiters self-blocked by their image, or
		// yield for one that could have started without j's nodes.
		yield := false
		s.withOwnImageLifted(p, func() {
			yield = !s.cfg.Cluster.canPlace(usedNow, p.Nodes, p.memNeed, s.cfg.Placement) &&
				s.yieldAdmits(j, p, usedFreed)
		})
		if yield {
			return true
		}
		if s.cfg.Policy == FIFO {
			return false
		}
	}
	return false
}

// yieldAdmits reports whether waiter p could be placed once gang j's
// nodes free at this quantum boundary, accounting for the memory j's
// own suspend-to-host image would pin on them. When only the image is
// in the way, j yields to the store tier instead (forceStore) — a
// suspension whose image immediately blocks the waiter it yielded for
// would just buy a demotion.
func (s *Scheduler) yieldAdmits(j, p *Job, usedFreed []bool) bool {
	c := s.cfg.Cluster
	if !s.hostEligible(j) {
		return c.canPlace(usedFreed, p.Nodes, p.memNeed, s.cfg.Placement)
	}
	c.reserve(j.Alloc, j.memNeed)
	ok := c.canPlace(usedFreed, p.Nodes, p.memNeed, s.cfg.Placement)
	c.unreserve(j.Alloc, j.memNeed)
	if ok {
		return true
	}
	if c.canPlace(usedFreed, p.Nodes, p.memNeed, s.cfg.Placement) {
		j.forceStore = true
		return true
	}
	return false
}

// outranksAtBoundary is jobLess(p, j) with j's round-robin key taken as
// the current instant — the order the queue would see if j suspended
// now — without mutating j.
func (s *Scheduler) outranksAtBoundary(p, j *Job) bool {
	if s.cfg.Policy == FairShare {
		if kp, kj := s.keyOf(p.User), s.keyOf(j.User); kp != kj {
			return kp < kj
		}
	}
	if p.Priority != j.Priority {
		return p.Priority > j.Priority
	}
	if k := p.rrKey(); k != s.now {
		return k < s.now
	}
	return p.ID < j.ID
}

// fixRunning re-establishes heap order after j's End was rewritten.
func (s *Scheduler) fixRunning(j *Job) {
	for i, r := range s.running {
		if r == j {
			heap.Fix(&s.running, i)
			return
		}
	}
}

// complete handles a job whose end event fired: frees its gang, credits
// busy and fair-share accounting, and either records the terminal state
// or — when the event was a checkpoint drain — re-enqueues the job with
// its saved progress.
func (s *Scheduler) complete(j *Job) {
	held := s.now - j.segStart
	j.History = append(j.History, Segment{Alloc: j.Alloc, Start: j.segStart, End: s.now, Preempted: j.preempting})
	s.cfg.Cluster.Release(j.Alloc, held)
	s.chargeUsage(j.User, time.Duration(j.Alloc.Count)*held)
	if s.rec != nil {
		detail := "run"
		if j.preempting {
			detail = "drain"
		}
		s.record(Event{Time: s.now, Kind: EvSegmentEnd, Job: j.ID, From: j.segStart, To: s.now, Alloc: j.Alloc, Detail: detail})
	}
	if j.preempting {
		s.requeuePreempted(j)
		return
	}
	j.workLeft, j.doneWork = 0, j.est
	if s.cfg.Execute != nil {
		if ck, ok := s.cfg.Execute.(Checkpointer); ok && j.snapshot != nil {
			j.Detail, j.Err = ck.Resume(j, j.snapshot)
		} else {
			j.Detail, j.Err = s.cfg.Execute.Execute(j, j.Alloc)
		}
		j.snapshot = nil
	}
	if j.Err != nil {
		j.State = Failed
	} else {
		j.State = Done
	}
	if s.rec != nil {
		detail := "done"
		if j.State == Failed {
			detail = "failed"
		}
		s.record(Event{Time: s.now, Kind: EvComplete, Job: j.ID, From: j.arrive, To: s.now, Detail: detail})
	}
	if s.met != nil {
		if j.State == Failed {
			s.met.failed.Inc()
		} else {
			s.met.completed.Inc()
		}
		s.met.wait.Observe(j.Wait().Seconds())
	}
	s.finished = append(s.finished, j)
}

// stretched applies the scheduler-known trunk slowdown to a duration
// when the placement crosses the stacking trunk.
func (s *Scheduler) stretched(d time.Duration, crosses bool) time.Duration {
	if crosses && s.cfg.TrunkSlowdown > 1 {
		return time.Duration(float64(d) * s.cfg.TrunkSlowdown)
	}
	return d
}

// shadowStart returns the earliest virtual time the blocked head job
// could be placed under the active placement engine, assuming running
// jobs end on schedule and nothing else starts first — the backfill
// reservation. Two event kinds free capacity: a running gang's end
// frees its nodes, and an in-flight demotion's settlement unpins the
// host memory its image holds; both are replayed in time order, and
// the head's own resident image is lifted throughout (its dispatch
// spends it). First-fit demands a contiguous window; the topology
// engine places as soon as enough eligible nodes are free, so its
// reservations bind sooner.
func (s *Scheduler) shadowStart(hd *Job) (shadow time.Duration) {
	s.withOwnImageLifted(hd, func() { shadow = s.shadowStartLifted(hd) })
	return shadow
}

// shadowStartLifted is shadowStart's body, run with the head's own
// image lifted. In the uniform fast path — topology placement, no
// constrained nodes (no divergent specs, no resident images), no
// in-flight demotions or migration pins, and a head whose per-node need
// fits the default spec — any k free nodes admit the head, so the
// shadow is a pure counting question and the end-time treap answers it
// in O(log running) (countShadow). Everything else falls back to the
// full replay. DebugVerifyShadows runs both and panics on disagreement;
// the property suite keeps it on (index_test.go).
func (s *Scheduler) shadowStartLifted(hd *Job) time.Duration {
	c := s.cfg.Cluster
	if s.cfg.Placement == PlaceTopo && c.nConstrained == 0 && c.downCount == 0 &&
		!c.trunkDown && len(s.demoting) == 0 && len(s.pinned) == 0 && hd.memNeed <= c.baseMem {
		t := s.countShadow(hd)
		if DebugVerifyShadows {
			if r := s.replayShadow(hd); r != t {
				panic(fmt.Sprintf("batch: shadow mismatch for job %d: count=%v replay=%v", hd.ID, t, r))
			}
		}
		return t
	}
	return s.replayShadow(hd)
}

// countShadow is the incremental EASY shadow for the uniform fast path:
// the head places as soon as enough nodes are free, so the reservation
// is the earliest completion instant by which the free count reaches
// hd.Nodes — a prefix-sum descent of the end-time treap. Exactly
// replayShadow's answer when its gate holds: the replay's events are
// then completions only, processed in the same (End, ID) order, and its
// per-event canPlace degenerates to the same count comparison.
func (s *Scheduler) countShadow(hd *Job) time.Duration {
	free := s.cfg.Cluster.FreeNodes()
	if free >= hd.Nodes {
		return s.now
	}
	if t, ok := s.ends.coverTime(hd.Nodes - free); ok {
		return t
	}
	// Unreachable while every used node belongs to a tracked running
	// gang (free + tracked completions cover the machine, and admission
	// bounds hd.Nodes by the machine); mirror replayShadow's fallback.
	return s.now
}

// replayShadow is the full shadow replay: snapshot the bitmap, fire
// future events in time order, probe placement after each.
func (s *Scheduler) replayShadow(hd *Job) time.Duration {
	k, memNeed := hd.Nodes, hd.memNeed
	c := s.cfg.Cluster
	used := c.usedCopy()
	if c.canPlace(used, k, memNeed, s.cfg.Placement) {
		return s.now
	}
	type shadowEv struct {
		t       time.Duration
		r       *Job       // running gang ending (nodes free), or...
		alloc   Allocation // ...a reservation settling (memory unpins):
		bytes   int64      // a demotion write or a migration pin, or...
		up      int        // ...a downed node repairing (node index + 1), or...
		trunkUp bool       // ...the active trunk outage ending
	}
	evs := make([]shadowEv, 0, len(s.running)+len(s.demoting)+len(s.pinned)+c.downCount)
	for _, r := range s.running {
		evs = append(evs, shadowEv{t: r.End, r: r})
	}
	for _, d := range s.demoting {
		evs = append(evs, shadowEv{t: d.demoteEnd, alloc: d.hostAlloc, bytes: d.memNeed})
	}
	for _, p := range s.pinned {
		evs = append(evs, shadowEv{t: p.at, alloc: p.alloc, bytes: p.bytes})
	}
	// Currently-down nodes repair at their scheduled instants, and an
	// active trunk outage ends at its scheduled instant — both grow
	// capacity monotonically, so replaying them keeps per-event probing
	// valid. Future faults are ignored: the shadow is the optimistic
	// reservation, exactly as it already trusts running jobs' estimates.
	if c.downCount > 0 {
		for i := range s.downSince {
			if s.downSince[i] >= 0 {
				evs = append(evs, shadowEv{t: s.downUntil[i], up: i + 1})
			}
		}
	}
	if c.trunkDown {
		evs = append(evs, shadowEv{t: s.trunkBack, trunkUp: true})
	}
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		// Completions before settlements at the same instant; within a
		// kind the stable sort keeps the deterministic source order.
		return evs[i].r != nil && evs[j].r == nil
	})
	// canPlace consults the live reservation table (and the trunk-outage
	// flag), so settlements are simulated by lifting reservations in
	// place and restoring them before returning.
	var lifted []shadowEv
	trunkWas := c.trunkDown
	restore := func() {
		for _, e := range lifted {
			c.reserve(e.alloc, e.bytes)
		}
		c.trunkDown = trunkWas
	}
	for _, e := range evs {
		switch {
		case e.r != nil:
			for _, nr := range e.r.Alloc.Ranges {
				for i := nr.First; i < nr.First+nr.Count; i++ {
					used[i] = false
				}
			}
		case e.up > 0:
			used[e.up-1] = false
		case e.trunkUp:
			c.trunkDown = false
		default:
			c.unreserve(e.alloc, e.bytes)
			lifted = append(lifted, e)
		}
		if c.canPlace(used, k, memNeed, s.cfg.Placement) {
			restore()
			return e.t
		}
	}
	restore()
	// Only reachable when resident images that nothing is evicting pin
	// the needed memory: fall back to "now", which conservatively
	// freezes backfill until the next scheduling event (demoteFor has
	// already evicted whatever would actually unblock the head).
	return s.now
}

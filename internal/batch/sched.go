package batch

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Policy selects the queue discipline.
type Policy int

const (
	// FIFO starts jobs strictly in queue order: when the head job does
	// not fit, everything behind it waits (head-of-line blocking).
	FIFO Policy = iota
	// Backfill is EASY backfilling: when the head job does not fit, the
	// scheduler computes its shadow start time (the earliest instant a
	// contiguous gang frees up, trusting running jobs' estimates) and
	// lets smaller jobs jump ahead if their own estimate finishes
	// before the shadow — so the reservation is never delayed, unless a
	// backfilled job overruns its estimate (exactly the real-world
	// failure mode).
	Backfill
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Backfill:
		return "backfill"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy maps a CLI string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "backfill":
		return Backfill, nil
	}
	return 0, fmt.Errorf("batch: unknown policy %q (want fifo or backfill)", s)
}

// Executor runs a job's workload on its allocated gang. Implementations
// do real (wall-clock) work; the job's virtual runtime still comes from
// the estimate path so the event loop stays deterministic.
type Executor interface {
	// Execute runs the job and returns a result summary for the report.
	// An error marks the job Failed; it still holds its allocation for
	// the full runtime.
	Execute(j *Job, a Allocation) (detail string, err error)
}

// Config assembles a scheduler.
type Config struct {
	// Cluster is the machine to schedule onto. Required.
	Cluster *Cluster
	// Policy selects FIFO or Backfill.
	Policy Policy
	// Placement selects the gang-placement engine; the zero value is
	// the topology-aware engine (PlaceTopo), PlaceFirstFit restores the
	// legacy first-contiguous-window behavior.
	Placement Placement
	// Estimate supplies a runtime estimate for jobs submitted with
	// Est == 0; nil defaults to a PerfEstimator over the paper's
	// hardware model.
	Estimate func(*Job) time.Duration
	// Actual maps a job's estimate to its true runtime (e.g. a
	// deterministic jitter so estimates are imperfect, as in real
	// traces); nil means runtimes equal estimates.
	Actual func(j *Job, est time.Duration) time.Duration
	// TrunkSlowdown multiplies the runtime of gangs whose node range
	// spans the stacking trunk (Section 4.3's contention knee seen from
	// the scheduler's seat). Values <= 0 or == 1 disable it.
	TrunkSlowdown float64
	// Execute optionally runs each job's workload for real when it
	// starts. Leave nil for pure virtual-time scheduling studies.
	Execute Executor
}

// Scheduler drives the job lifecycle on a virtual clock: Submit stamps
// arrivals, Run drains the queue event by event (job completions and
// future arrivals), placing jobs per the configured policy.
type Scheduler struct {
	cfg       Config
	now       time.Duration
	pending   queue
	running   eventHeap
	finished  []*Job
	nextID    int
	backfills int
}

// New validates cfg and returns an empty scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Cluster == nil {
		panic("batch: Config.Cluster is required")
	}
	if cfg.Estimate == nil {
		est := NewPerfEstimator()
		cfg.Estimate = est.Estimate
	}
	return &Scheduler{cfg: cfg, nextID: 1}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Submit validates a job spec, resolves its runtime estimate, and
// queues it. Jobs may carry a future Submit time; a zero or past Submit
// arrives at the current clock. The caller's spec fields are never
// mutated: defaults (Steps, Problem) and the arrival clamp are resolved
// into scheduler-owned fields, so the same *Job specs can be replayed
// against a second scheduler — the clusterctl comparison pattern.
func (s *Scheduler) Submit(j *Job) error {
	if j.Nodes <= 0 {
		return fmt.Errorf("batch: %s requests %d nodes", j, j.Nodes)
	}
	if j.Nodes > s.cfg.Cluster.Size() {
		return fmt.Errorf("batch: %s requests %d nodes, cluster has %d",
			j, j.Nodes, s.cfg.Cluster.Size())
	}
	r := *j // resolved view; the caller's spec stays pristine
	if r.Steps <= 0 {
		r.Steps = 1
	}
	if r.Problem == ([3]int{}) {
		r.Problem = defaultProblem(r.Kind)
	}
	if r.Submit < s.now {
		r.Submit = s.now
	}
	need := memoryNeed(r.Kind, r.Problem, r.Nodes)
	if s.cfg.Cluster.NodesWithMem(need) < j.Nodes {
		return fmt.Errorf("batch: %s needs %d MB per node on %d nodes, cluster cannot grant that",
			j, need>>20, j.Nodes)
	}
	j.ID = s.nextID
	s.nextID++
	j.steps, j.problem, j.arrive, j.memNeed = r.Steps, r.Problem, r.Submit, need
	j.est = j.Est
	if j.est <= 0 {
		j.est = s.cfg.Estimate(&r)
	}
	if j.est < time.Millisecond {
		j.est = time.Millisecond
	}
	// Reset every scheduler-owned lifecycle field: a replayed job must
	// not carry a previous schedule's outcome (a stale Err would mark
	// it Failed again without running).
	j.State = Queued
	j.Start, j.End = 0, 0
	j.Alloc = Allocation{}
	j.Detail, j.Err = "", nil
	j.shadow, j.backfilled = 0, false
	s.pending.push(j)
	return nil
}

// Run drains the queue to completion and returns the report. It may be
// called again after further submissions; the virtual clock keeps
// advancing monotonically.
func (s *Scheduler) Run() Report {
	for {
		s.schedulePass()
		tComplete := time.Duration(-1)
		if s.running.Len() > 0 {
			tComplete = s.running[0].End
		}
		tArrive, hasArrive := s.pending.nextArrival(s.now)
		switch {
		case tComplete >= 0 && (!hasArrive || tComplete <= tArrive):
			s.now = tComplete
			for s.running.Len() > 0 && s.running[0].End == s.now {
				s.complete(heap.Pop(&s.running).(*Job))
			}
		case hasArrive:
			s.now = tArrive
		default:
			return s.report()
		}
	}
}

// schedulePass starts every job the policy allows at the current
// instant.
func (s *Scheduler) schedulePass() {
	for {
		started := s.passOnce()
		if !started {
			return
		}
	}
}

// passOnce scans the queue once; it reports whether any job started (a
// start changes the free map, so the caller rescans).
func (s *Scheduler) passOnce() bool {
	var blocked *Job // first eligible job that did not fit
	var shadow time.Duration
	for _, j := range s.pending.ordered() {
		if j.arrive > s.now {
			continue // not yet arrived
		}
		if blocked == nil {
			if s.tryStart(j, false, 0) {
				return true
			}
			if s.cfg.Policy == FIFO {
				return false // head-of-line blocking
			}
			blocked = j
			shadow = s.shadowStart(j.Nodes, j.memNeed)
			continue
		}
		// Backfill: only jobs whose estimate drains before the head's
		// reservation may jump it (tryStart re-checks with the
		// allocation-dependent trunk stretch applied).
		if s.now+j.est <= shadow && s.tryStart(j, true, shadow) {
			return true
		}
	}
	return false
}

// tryStart attempts a gang placement for j at the current instant and,
// on success, fixes its runtime and pushes its completion event. The
// placement engine ranks every candidate node set; the first (best) one
// that survives the constraints wins. For backfill starts, shadow is
// the blocked head's reservation: the scheduler-known trunk stretch of
// the candidate must still drain before it, else the *next* candidate
// is tried — a start only fails when no placement works (only
// unknowable overruns, the Actual hook, may breach the EASY guarantee).
// Under PlaceFirstFit a single candidate is offered, reproducing the
// legacy take-it-or-leave-it behavior.
func (s *Scheduler) tryStart(j *Job, backfilled bool, shadow time.Duration) bool {
	if s.cfg.Cluster.FreeNodes() < j.Nodes {
		return false // cheap precheck before candidate enumeration
	}
	var alloc Allocation
	placed := false
	for _, cand := range s.cfg.Cluster.candidates(j.Nodes, j.memNeed, s.cfg.Placement) {
		if backfilled && s.now+s.stretched(j.est, cand.crosses) > shadow {
			continue
		}
		alloc = s.cfg.Cluster.commit(cand)
		placed = true
		break
	}
	if !placed {
		return false
	}
	stretch := func(d time.Duration) time.Duration {
		return s.stretched(d, alloc.CrossesTrunk)
	}
	if backfilled {
		j.shadow = shadow
	}
	s.pending.remove(j)
	j.Alloc = alloc
	j.State = Running
	j.Start = s.now
	j.backfilled = backfilled
	if backfilled {
		s.backfills++
	}
	actual := j.est
	if s.cfg.Actual != nil {
		actual = s.cfg.Actual(j, j.est)
	}
	actual = stretch(actual)
	if actual < time.Millisecond {
		actual = time.Millisecond
	}
	j.End = s.now + actual
	if s.cfg.Execute != nil {
		j.Detail, j.Err = s.cfg.Execute.Execute(j, alloc)
	}
	heap.Push(&s.running, j)
	return true
}

// complete finishes a job whose end event fired: frees its gang,
// credits busy accounting, and records the terminal state.
func (s *Scheduler) complete(j *Job) {
	s.cfg.Cluster.Release(j.Alloc, j.Runtime())
	if j.Err != nil {
		j.State = Failed
	} else {
		j.State = Done
	}
	s.finished = append(s.finished, j)
}

// stretched applies the scheduler-known trunk slowdown to a duration
// when the placement crosses the stacking trunk.
func (s *Scheduler) stretched(d time.Duration, crosses bool) time.Duration {
	if crosses && s.cfg.TrunkSlowdown > 1 {
		return time.Duration(float64(d) * s.cfg.TrunkSlowdown)
	}
	return d
}

// shadowStart returns the earliest virtual time a gang of k nodes (each
// with memNeed bytes) can be placed under the active placement engine,
// assuming running jobs end on schedule and nothing else starts first —
// the backfill reservation for a blocked head job. First-fit demands a
// contiguous window; the topology engine places as soon as enough
// eligible nodes are free, so its reservations bind sooner.
func (s *Scheduler) shadowStart(k int, memNeed int64) time.Duration {
	used := s.cfg.Cluster.usedCopy()
	if s.cfg.Cluster.canPlace(used, k, memNeed, s.cfg.Placement) {
		return s.now
	}
	ends := make([]*Job, len(s.running))
	copy(ends, s.running)
	sort.Slice(ends, func(i, j int) bool { return ends[i].End < ends[j].End })
	for _, r := range ends {
		for _, nr := range r.Alloc.Ranges {
			for i := nr.First; i < nr.First+nr.Count; i++ {
				used[i] = false
			}
		}
		if s.cfg.Cluster.canPlace(used, k, memNeed, s.cfg.Placement) {
			return r.End
		}
	}
	// Unreachable for k <= cluster size: the empty machine always fits.
	return s.now
}

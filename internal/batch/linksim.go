package batch

import (
	"fmt"
	"time"
)

// The checkpoint store hangs off the same Gigabit fabric as everything
// else: every drain writes its image over the shared link to the store,
// and every restore reads it back over the same wire. Concurrent
// checkpoints therefore serialize instead of each assuming the full
// link, and this file owns the generalization — a single duplex link
// model with a write timeline *and* a read timeline, so mass
// re-dispatches after a preemption wave serialize their restores
// exactly the way the wave serialized its drains.

// Duplex selects how the store link's two directions share the wire.
type Duplex int

const (
	// FullDuplex (the default) models the paper's switched Gigabit
	// link: reads and writes ride independent timelines, so a restore
	// only queues behind other restores and a drain behind other
	// drains.
	FullDuplex Duplex = iota
	// HalfDuplex shares one timeline between both directions — the
	// cheap-NAS configuration where a drain in flight delays a restore
	// and vice versa.
	HalfDuplex
)

func (d Duplex) String() string {
	switch d {
	case FullDuplex:
		return "full"
	case HalfDuplex:
		return "half"
	}
	return fmt.Sprintf("duplex(%d)", int(d))
}

// ParseDuplex maps a CLI string to a Duplex mode.
func ParseDuplex(s string) (Duplex, error) {
	switch s {
	case "full":
		return FullDuplex, nil
	case "half":
		return HalfDuplex, nil
	}
	return 0, fmt.Errorf("batch: unknown duplex mode %q (want full or half)", s)
}

// storeLink is the shared checkpoint-store link: scalar busy-until
// timelines per direction. Transfers are granted in arrival order —
// a reservation starts when the relevant timeline frees — which is
// exactly the serialized-sum pricing the contention tests pin.
type storeLink struct {
	duplex    Duplex
	writeFree time.Duration // instant the write (drain) direction frees
	readFree  time.Duration // instant the read (restore) direction frees
}

// writeDelay returns how long a drain starting now would queue before
// the write direction picks it up, without reserving.
func (l *storeLink) writeDelay(now time.Duration) time.Duration {
	if d := l.writeFree - now; d > 0 {
		return d
	}
	return 0
}

// readDelay returns how long a restore starting now would queue before
// the read direction picks it up, without reserving.
func (l *storeLink) readDelay(now time.Duration) time.Duration {
	if d := l.readFree - now; d > 0 {
		return d
	}
	return 0
}

// backlog returns how far each direction's timeline extends past now —
// the store-link busy depth the metrics layer publishes as the
// write/read backlog gauges. Unlike writeDelay/readDelay it returns
// both directions in one call, since the gauges are always sampled
// together at the end of a scheduling round.
func (l *storeLink) backlog(now time.Duration) (write, read time.Duration) {
	return l.writeDelay(now), l.readDelay(now)
}

// reserveWrite books a drain (or demotion) transfer of the given cost
// and returns the instant it starts; the write timeline advances to its
// end, and in half-duplex mode the read timeline advances with it.
func (l *storeLink) reserveWrite(now, cost time.Duration) time.Duration {
	start := now
	if l.writeFree > start {
		start = l.writeFree
	}
	l.writeFree = start + cost
	if l.duplex == HalfDuplex {
		l.readFree = l.writeFree
	}
	return start
}

// reserveRead books a restore transfer and returns its start instant.
func (l *storeLink) reserveRead(now, cost time.Duration) time.Duration {
	start := now
	if l.readFree > start {
		start = l.readFree
	}
	l.readFree = start + cost
	if l.duplex == HalfDuplex {
		l.writeFree = l.readFree
	}
	return start
}

// releaseRead gives back the tail of a cancelled read reservation
// [start, end): a job preempted mid-restore stops its transfer, and the
// untransferred remainder of its slot frees for whoever queues next.
// Only the tail reservation can be compacted — if a later transfer
// already queued behind this one, its pricing stands (the link promised
// it a start after end, and re-pricing in-flight segments would rewrite
// events already scheduled) — which is exact for the common case: the
// preemption that cancels a restore targets the *last* queued one,
// because earlier restores belong to higher-ranked jobs.
func (l *storeLink) releaseRead(start, end, now time.Duration) {
	if l.readFree != end {
		return
	}
	back := start
	if now > back {
		back = now // mid-transfer: the wire was genuinely busy until now
	}
	l.readFree = back
	if l.duplex == HalfDuplex && l.writeFree == end {
		l.writeFree = back
	}
}

package batch

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Mid-run cancellation. Cancel withdraws a job at any point of its
// lifecycle before a terminal state: a queued job simply leaves the
// queue, a running gang is cut off at the current instant (its nodes
// free immediately, elapsed progress and overhead stay accounted, any
// checkpoint image is discarded), and a job whose checkpoint is
// mid-drain finishes the drain — the nodes and store-link slot are
// already committed — and is then discarded instead of requeued. The
// busy ≡ work + overhead invariant holds for canceled jobs too: every
// segment's node-holding time is exactly the work it completed plus the
// overhead charged to it.

// ErrNoSuchJob reports a Cancel or lookup against an ID no Submit ever
// assigned.
var ErrNoSuchJob = errors.New("no such job")

// ErrJobTerminal reports a Cancel against a job already done, failed,
// or canceled.
var ErrJobTerminal = errors.New("job already terminal")

// JobByID returns the live job for an assigned ID. The pointer is the
// scheduler-owned job; callers must not mutate it.
func (s *Scheduler) JobByID(id int) (*Job, error) {
	j, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("batch: %w: %d", ErrNoSuchJob, id)
	}
	return j, nil
}

// Cancel withdraws job id. It is an error to cancel an unknown or
// already-terminal job. Cancellation of a mid-drain job is
// asynchronous: the drain event (already booked on the store link)
// fires first, then the job lands Canceled instead of requeueing.
func (s *Scheduler) Cancel(id int) error {
	j, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("batch: %w: %d", ErrNoSuchJob, id)
	}
	switch j.State {
	case Done, Failed, Canceled:
		return fmt.Errorf("batch: %w: job %d is %s", ErrJobTerminal, id, j.State)
	}
	if j.preempting || j.banking {
		// A proactive bank mid-drain settles like a preemption drain: the
		// nodes and link slot are committed, so the event lands first and
		// the job is discarded at settlement instead of continuing.
		j.canceled = true
		return nil
	}
	if j.State == Running {
		s.cancelRunning(j)
		return nil
	}
	s.cancelQueued(j)
	return nil
}

// cancelRunning cuts a running gang off at the current instant: the
// segment ends here (flagged Preempted — it did not complete), elapsed
// work is banked, an interrupted restore prefix is refunded exactly as
// a preemption would (bankProgress), and the nodes free immediately.
func (s *Scheduler) cancelRunning(j *Job) {
	for i, r := range s.running {
		if r == j {
			heap.Remove(&s.running, i)
			s.ends.del(j.End, j.ID)
			break
		}
	}
	s.bankProgress(j)
	held := s.now - j.segStart
	j.History = append(j.History, Segment{Alloc: j.Alloc, Start: j.segStart, End: s.now, Preempted: true})
	s.cfg.Cluster.Release(j.Alloc, held)
	s.chargeUsage(j.User, time.Duration(j.Alloc.Count)*held)
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvSegmentEnd, Job: j.ID, From: j.segStart, To: s.now, Alloc: j.Alloc, Detail: "cancel"})
	}
	j.sliceEnd, j.sliceFull, j.slicing = false, 0, false
	s.finishCanceled(j)
}

// cancelQueued withdraws a pending job. A suspended-to-host image is
// discarded and its pinned memory released — unless the image is
// mid-eviction, in which case the in-flight store write keeps the
// reservation until it settles (settleDemotions releases it; the
// harmless restore re-pricing there is moot for a terminal job).
func (s *Scheduler) cancelQueued(j *Job) {
	s.pending.remove(j)
	if j.hostImage && j.demoteEnd == 0 {
		s.cfg.Cluster.unreserve(j.hostAlloc, j.memNeed)
		j.hostImage = false
		j.hostAlloc = Allocation{}
	}
	j.restoreCost = 0
	s.finishCanceled(j)
}

// finishCanceled records the terminal state shared by every cancel
// path. A job canceled before its first dispatch gets Start stamped at
// the cancel instant, so Wait() reads as the time it sat queued; a
// future arrival is clamped to now so no finished job postdates the
// clock.
func (s *Scheduler) finishCanceled(j *Job) {
	j.snapshot = nil
	j.canceled = false
	if j.arrive > s.now {
		j.arrive = s.now
	}
	if len(j.History) == 0 {
		j.Start = s.now
	}
	j.End = s.now
	j.State = Canceled
	s.canceled++
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvComplete, Job: j.ID, From: j.arrive, To: s.now, Detail: "canceled"})
	}
	if s.met != nil {
		s.met.canceled.Inc()
		s.met.queueDepth.Set(float64(s.pending.len()))
	}
	s.finished = append(s.finished, j)
}

package batch

import (
	"testing"
	"time"
)

// TestTimeSliceSharesMachineRoundRobin pins the whole-timeline behavior
// of two equal gangs sharing one machine under a quantum: they
// alternate slices (checkpoint drain between turns), every suspension
// banks exactly one quantum of work, and the machine is never idle —
// the makespan is the total work plus the checkpoint/restore overhead
// and nothing else.
func TestTimeSliceSharesMachineRoundRobin(t *testing.T) {
	const quantum = 30 * time.Second
	ck, rs := fixedCosts(2*time.Second, time.Second)
	run := func(q time.Duration) (*Job, *Job, Report) {
		s := New(Config{Cluster: newTestCluster(8), Policy: FIFO,
			Quantum: q, CheckpointCost: ck, RestoreCost: rs})
		a := &Job{Name: "a", Nodes: 8, Est: 100 * time.Second}
		b := &Job{Name: "b", Nodes: 8, Est: 100 * time.Second}
		submitAll(t, s, []*Job{a, b})
		return a, b, s.Run()
	}

	a, b, rep := run(quantum)
	// a runs [0,30), drains [30,32); b runs [32,62), drains [62,64); a
	// resumes with its 1s restore riding ahead of the quantum, and so
	// on — each job is suspended three times and finishes its last 10s
	// of work run-to-completion.
	if a.Start != 0 || b.Start != 32*time.Second {
		t.Fatalf("starts %v/%v, want 0 and 32s (after a's first drain)", a.Start, b.Start)
	}
	if a.TimeSlices() != 3 || b.TimeSlices() != 3 {
		t.Fatalf("slice counts %d/%d, want 3 each", a.TimeSlices(), b.TimeSlices())
	}
	if a.Preemptions() != 0 || b.Preemptions() != 0 {
		t.Fatal("quantum suspensions were counted as priority preemptions")
	}
	if len(a.History) != 4 || len(b.History) != 4 {
		t.Fatalf("segment counts %d/%d, want 4 each", len(a.History), len(b.History))
	}
	if a.End != 207*time.Second || b.End != 218*time.Second {
		t.Fatalf("ends %v/%v, want 207s and 218s", a.End, b.End)
	}
	// Round-robin interleaving: the two jobs' segments alternate.
	for i := 0; i < 3; i++ {
		if a.History[i].End > b.History[i].Start || b.History[i].End > a.History[i+1].Start {
			t.Fatalf("segments do not alternate:\n  a %+v\n  b %+v", a.History, b.History)
		}
		if !a.History[i].Preempted || !b.History[i].Preempted {
			t.Fatalf("slice segments not flagged as suspended")
		}
	}
	// No virtual progress lost: node-holding time is exactly the true
	// work plus the charged checkpoint/restore overhead.
	for _, j := range []*Job{a, b} {
		if j.BusyTime() != j.Estimate()+j.CheckpointOverhead() {
			t.Fatalf("%s busy %v, want est %v + overhead %v",
				j, j.BusyTime(), j.Estimate(), j.CheckpointOverhead())
		}
	}
	if rep.SliceEvents != 6 || rep.Sliced != 2 {
		t.Fatalf("report slices %d/%d, want 6 suspensions over 2 jobs", rep.SliceEvents, rep.Sliced)
	}
	if rep.Makespan != 218*time.Second {
		t.Fatalf("makespan %v, want 218s (200s work + 18s overhead, zero idle)", rep.Makespan)
	}
	checkNoOverlap(t, rep.Jobs, 8)

	// Against run-to-completion FIFO the second job's wait halves
	// (100s -> 32s), the figure time-slicing exists to improve; the
	// price is the 18s of checkpoint/restore on the makespan.
	_, _, rtc := run(0)
	if rtc.SliceEvents != 0 || rtc.Makespan != 200*time.Second {
		t.Fatalf("run-to-completion baseline sliced %d / makespan %v", rtc.SliceEvents, rtc.Makespan)
	}
	if rep.AvgWait >= rtc.AvgWait {
		t.Fatalf("time-slicing did not cut the average wait: %v vs %v", rep.AvgWait, rtc.AvgWait)
	}
}

// TestTimeSliceShortJobJumpsLongGang is the shared-machine story: a
// short job arriving under a machine-spanning long gang waits only
// until the next quantum boundary (plus the drain), not the gang's full
// runtime — and with no waiter left, the long gang's later slices are
// extended in place free of charge.
func TestTimeSliceShortJobJumpsLongGang(t *testing.T) {
	ck, rs := fixedCosts(2*time.Second, time.Second)
	run := func(q time.Duration) (*Job, *Job, Report) {
		s := New(Config{Cluster: newTestCluster(8), Policy: Backfill,
			Quantum: q, CheckpointCost: ck, RestoreCost: rs})
		long := &Job{Name: "long", Nodes: 8, Est: 600 * time.Second}
		short := &Job{Name: "short", Nodes: 8, Est: 30 * time.Second, Submit: 45 * time.Second}
		submitAll(t, s, []*Job{long, short})
		a, b, rep := long, short, s.Run()
		return a, b, rep
	}

	long, short, rep := run(60 * time.Second)
	// The long gang yields at its 60s boundary, drains by 62s; the
	// short job runs [62,92); the long gang resumes and then extends
	// every later boundary in place (no waiter), finishing with exactly
	// one suspension charged.
	if short.Start != 62*time.Second {
		t.Fatalf("short job started %v, want 62s (next boundary + drain)", short.Start)
	}
	if long.TimeSlices() != 1 || rep.SliceEvents != 1 {
		t.Fatalf("long gang sliced %d times (%d events), want exactly 1 — later boundaries had no waiter",
			long.TimeSlices(), rep.SliceEvents)
	}
	if long.End != 633*time.Second {
		t.Fatalf("long gang finished %v, want 633s (600s work + 3s overhead + 30s displaced)", long.End)
	}
	checkNoOverlap(t, rep.Jobs, 8)

	_, shortRTC, _ := run(0)
	if shortRTC.Start != 600*time.Second {
		t.Fatalf("run-to-completion short start %v, want 600s", shortRTC.Start)
	}
	if short.Wait() >= shortRTC.Wait() {
		t.Fatalf("quantum did not cut the short job's wait: %v vs %v", short.Wait(), shortRTC.Wait())
	}
}

// TestTimeSliceNeverYieldsToLowerRank pins the anti-thrash guard: a
// gang is not suspended at a quantum boundary for a waiter it would
// immediately outrank again (lower priority), nor for one that cannot
// be placed on its nodes — either suspension would be a zero-progress
// checkpoint/restore cycle.
func TestTimeSliceNeverYieldsToLowerRank(t *testing.T) {
	ck, rs := fixedCosts(2*time.Second, time.Second)
	s := New(Config{Cluster: newTestCluster(8), Policy: Backfill,
		Quantum: 30 * time.Second, CheckpointCost: ck, RestoreCost: rs})
	high := &Job{Name: "high", Nodes: 8, Priority: 5, Est: 120 * time.Second}
	low := &Job{Name: "low", Nodes: 8, Priority: 0, Est: 30 * time.Second, Submit: 10 * time.Second}
	submitAll(t, s, []*Job{high, low})
	rep := s.Run()
	if high.TimeSlices() != 0 || rep.SliceEvents != 0 {
		t.Fatalf("high-priority gang yielded its quantum to a lower-priority waiter (%d slices)",
			high.TimeSlices())
	}
	if low.Start != 120*time.Second {
		t.Fatalf("low-priority job started %v, want 120s behind the high gang", low.Start)
	}
	checkNoOverlap(t, rep.Jobs, 8)
}

// TestTimeSliceSkipsFutileSuspension pins the futile-suspension guard:
// a gang whose remaining work would finish before its checkpoint drain
// does is extended through its quantum boundary instead of suspended —
// running the 1s tail frees the nodes sooner than a 5s drain plus a
// later restore ever could.
func TestTimeSliceSkipsFutileSuspension(t *testing.T) {
	ck, rs := fixedCosts(5*time.Second, 3*time.Second)
	s := New(Config{Cluster: newTestCluster(8), Policy: Backfill,
		Quantum: 300 * time.Second, CheckpointCost: ck, RestoreCost: rs})
	almost := &Job{Name: "almost", Nodes: 8, Est: 301 * time.Second}
	waiter := &Job{Name: "waiter", Nodes: 8, Est: 30 * time.Second, Submit: 10 * time.Second}
	submitAll(t, s, []*Job{almost, waiter})
	rep := s.Run()
	if almost.TimeSlices() != 0 || rep.SliceEvents != 0 {
		t.Fatalf("gang with a 1s tail past the boundary was checkpointed (%d slices)", almost.TimeSlices())
	}
	if waiter.Start != 301*time.Second {
		t.Fatalf("waiter started %v, want 301s (the gang's natural completion)", waiter.Start)
	}
	checkNoOverlap(t, rep.Jobs, 8)
}

// TestTimeSliceIgnoresPolicyBlockedWaiter pins the capacity-vs-policy
// distinction in the yield decision: under FIFO a small job behind a
// blocked wide head cannot start no matter what frees up, so a gang
// must not checkpoint itself for it — and a head that still would not
// fit on the gang's freed nodes is no reason to yield either.
func TestTimeSliceIgnoresPolicyBlockedWaiter(t *testing.T) {
	ck, rs := fixedCosts(2*time.Second, time.Second)
	s := New(Config{Cluster: newTestCluster(32), Policy: FIFO,
		Quantum: 60 * time.Second, CheckpointCost: ck, RestoreCost: rs})
	gang := &Job{Name: "gang", Nodes: 12, Est: 600 * time.Second}
	other := &Job{Name: "other", Nodes: 10, Est: 600 * time.Second}
	// 10 nodes stay free: the head needs 30 (does not fit even with the
	// gang's 12 freed), the small job fits right now but FIFO holds it
	// behind the head.
	head := &Job{Name: "head", Nodes: 30, Est: 30 * time.Second, Submit: 5 * time.Second}
	small := &Job{Name: "small", Nodes: 2, Est: 10 * time.Second, Submit: 5 * time.Second}
	submitAll(t, s, []*Job{gang, other, head, small})
	rep := s.Run()
	if rep.SliceEvents != 0 {
		t.Fatalf("%d suspensions for waiters the drain could never start", rep.SliceEvents)
	}
	if head.Start != 600*time.Second {
		t.Fatalf("head started %v, want 600s (both long gangs' completion)", head.Start)
	}
	checkNoOverlap(t, rep.Jobs, 32)
}

// TestMultiWavePreemption pins overlapping checkpoint waves: a second
// blocked high-priority job triggers its own wave while the first wave
// is still draining, its drain queues behind the in-flight one on the
// shared store link, and both preemptors start as their respective
// victims' nodes free — the second no longer waits for the first wave
// to settle before even being considered.
func TestMultiWavePreemption(t *testing.T) {
	ck, rs := fixedCosts(10*time.Second, time.Second)
	s := New(Config{Cluster: newTestCluster(16), Policy: Backfill,
		Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	v1 := &Job{Name: "v1", Nodes: 8, Priority: 1, Est: 500 * time.Second}
	v2 := &Job{Name: "v2", Nodes: 8, Priority: 2, Est: 500 * time.Second}
	h1 := &Job{Name: "h1", Nodes: 8, Priority: 5, Est: 50 * time.Second, Submit: 10 * time.Second}
	h2 := &Job{Name: "h2", Nodes: 8, Priority: 9, Est: 50 * time.Second, Submit: 12 * time.Second}
	submitAll(t, s, []*Job{v1, v2, h1, h2})
	rep := s.Run()
	// Wave 1 (for h1) drains v1 over [10,20). Wave 2 (for h2) is
	// triggered at h2's arrival — mid-drain of wave 1 — and v2's
	// checkpoint queues behind v1's on the store link: [20,30). h2
	// outranks h1, so it takes the first freed gang at 20s; h1 follows
	// at 30s when wave 2 settles.
	if v1.Preemptions() != 1 || v2.Preemptions() != 1 {
		t.Fatalf("victims preempted %d/%d times, want one wave each", v1.Preemptions(), v2.Preemptions())
	}
	if h2.Start != 20*time.Second {
		t.Fatalf("h2 started %v, want 20s (first wave's drain end)", h2.Start)
	}
	if h1.Start != 30*time.Second {
		t.Fatalf("h1 started %v, want 30s (second wave queued behind the first), not v2's 500s completion", h1.Start)
	}
	if rep.PreemptEvents != 2 {
		t.Fatalf("%d preempt events, want 2 overlapping waves", rep.PreemptEvents)
	}
	if rep.DrainWait != 8*time.Second {
		t.Fatalf("drain wait %v, want 8s (wave 2 queued from 12s to 20s)", rep.DrainWait)
	}
	for _, j := range rep.Jobs {
		if j.State != Done {
			t.Fatalf("%s ended %v", j, j.State)
		}
	}
	checkNoOverlap(t, rep.Jobs, 16)
}

// TestContendedDrainMatchesSerializedSum is the pricing-bug regression:
// three gangs checkpointing at the same virtual instant share the store
// link, so the wave settles at the sum of the individual drain times —
// under the old independent pricing all three "finished" after one
// drain time, crediting the preemptor with bandwidth that does not
// exist.
func TestContendedDrainMatchesSerializedSum(t *testing.T) {
	const drain = 4 * time.Second
	ck, rs := fixedCosts(drain, time.Second)
	s := New(Config{Cluster: newTestCluster(24), Policy: Backfill,
		Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	var victims []*Job
	for i := 0; i < 3; i++ {
		victims = append(victims, &Job{Name: "victim", Nodes: 8, Priority: 0, Est: 500 * time.Second})
	}
	urgent := &Job{Name: "urgent", Nodes: 24, Priority: 9,
		Est: 50 * time.Second, Submit: 10 * time.Second}
	submitAll(t, s, append(victims, urgent))
	rep := s.Run()
	// Serialized: wave start + 3 drains, exactly. Independent pricing
	// would have started the urgent job at 14s.
	if want := 10*time.Second + 3*drain; urgent.Start != want {
		t.Fatalf("urgent started %v, want %v (sum of serialized drains)", urgent.Start, want)
	}
	if rep.DrainWait != 3*drain {
		t.Fatalf("drain wait %v, want %v (second waits one drain, third two)", rep.DrainWait, 3*drain)
	}
	checkNoOverlap(t, rep.Jobs, 24)
}

// TestSampleTraceTimesliceShortWait is the acceptance regression on the
// bundled trace: a 300s quantum under EASY cuts the mean wait of short
// jobs (estimate at or below the median) versus run-to-completion EASY
// — the clusterctl "-trace examples/traces/sample.swf -policy all
// -quantum 300s" comparison.
func TestSampleTraceTimesliceShortWait(t *testing.T) {
	recs, err := LoadTrace("../../examples/traces/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	run := func(q time.Duration) Report {
		jobs, actual := TraceJobs(recs, 32)
		s := New(Config{Cluster: newTestCluster(32), Policy: Backfill,
			Actual: actual, TrunkSlowdown: 1.1, Quantum: q})
		submitAll(t, s, jobs)
		return s.Run()
	}
	rtc := run(0)
	sliced := run(300 * time.Second)
	cut := rtc.MedianEstimate()
	if sliced.SliceEvents == 0 {
		t.Fatal("sample trace never sliced under a 300s quantum")
	}
	if got, want := sliced.AvgWaitUnder(cut), rtc.AvgWaitUnder(cut); got >= want {
		t.Fatalf("time-sliced short-job wait %v not below run-to-completion EASY %v (cut %v)",
			got, want, cut)
	}
	checkNoOverlap(t, sliced.Jobs, 32)
}

// TestTimeSlicedWorkloadSegmentedExecution extends the checkpoint
// regression tests to the round-robin path: two real workloads sharing
// a gang under a quantum each run in several genuinely checkpointed
// segments, and the deterministic kinds (LBM, PDE) reproduce the
// uninterrupted result bit for bit after K suspensions. CG loses its
// Krylov space at each restart, so only convergence is asserted.
func TestTimeSlicedWorkloadSegmentedExecution(t *testing.T) {
	for _, kind := range []JobKind{KindLBM, KindPDE, KindCG} {
		run := func(q time.Duration) (*Job, *Job, Report) {
			ck, rs := fixedCosts(2*time.Second, time.Second)
			s := New(Config{Cluster: newTestCluster(2), Policy: FIFO,
				Quantum: q, CheckpointCost: ck, RestoreCost: rs,
				Execute: SimExecutor{}})
			a := &Job{Name: "a", Kind: kind, Nodes: 2, Est: 100 * time.Second}
			b := &Job{Name: "b", Kind: kind, Nodes: 2, Est: 100 * time.Second}
			switch kind {
			case KindLBM:
				a.Problem, a.Steps = [3]int{8, 8, 8}, 10
			case KindPDE:
				a.Problem, a.Steps = [3]int{12, 12, 4}, 12
			case KindCG:
				a.Problem, a.Steps = [3]int{16, 16, 1}, 400
			}
			b.Problem, b.Steps = a.Problem, a.Steps
			submitAll(t, s, []*Job{a, b})
			rep := s.Run()
			return a, b, rep
		}
		straightA, straightB, _ := run(0)
		a, b, rep := run(20 * time.Second)
		if a.TimeSlices() < 2 || b.TimeSlices() < 2 {
			t.Fatalf("%v: jobs sliced %d/%d times, want K >= 2 suspensions each",
				kind, a.TimeSlices(), b.TimeSlices())
		}
		if rep.Failed != 0 {
			t.Fatalf("%v: %d failed jobs in the sliced schedule", kind, rep.Failed)
		}
		for _, j := range []*Job{a, b} {
			if j.State != Done {
				t.Fatalf("%v: sliced %s ended %v: %v", kind, j.Name, j.State, j.Err)
			}
		}
		if kind != KindCG {
			if a.Detail != straightA.Detail || b.Detail != straightB.Detail {
				t.Fatalf("%v: segmented round-robin run diverged from uninterrupted run:\n  %s\n  %s",
					kind, a.Detail, straightA.Detail)
			}
		}
		checkNoOverlap(t, rep.Jobs, 2)
	}
}

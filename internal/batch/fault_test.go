package batch

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// Fault-injection property tests: seeded failure storms (node crashes
// with repair times, whole-trunk outages) run across the full crossed
// policy/preemption/quantum/suspend matrix, with and without proactive
// checkpointing. The invariants extend the base property suite's:
//
//  1. exact loss accounting — busy ≡ work + overhead + lost work, with
//     lost work exactly the wall time destroyed since the last banked
//     History boundary;
//  2. placement respects faults — no run segment overlaps a down
//     window of a node it occupies, and capacity/single-residency hold
//     while nodes die and repair mid-schedule;
//  3. determinism — the same mix, policy, and FaultPlan seed replayed
//     twice produces bit-identical reports and event streams.

// stormPlan is the seeded storm used by the property tests: sized so a
// 32-node property mix sees a steady trickle of node crashes plus the
// occasional trunk outage without livelocking run-to-completion
// configurations (machine MTBF well above the widest job's estimate).
func stormPlan(seed int64) *FaultPlan {
	return GenFaultPlan(seed, 32, 4*time.Hour, 10*time.Minute)
}

// stormConfigs crosses propertyConfigs with the storm and the proactive
// checkpointing knob.
func stormConfigs(seed int64) []Config {
	var cfgs []Config
	for _, cfg := range propertyConfigs() {
		for _, ival := range []time.Duration{0, 15 * time.Second} {
			cfg := cfg
			cfg.Faults = stormPlan(seed)
			cfg.CheckpointInterval = ival
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// downWindows reconstructs per-node down intervals from the recorded
// EvNodeDown events (elided already-repaired faults never appear).
func downWindows(events []Event) map[int][]Segment {
	wins := map[int][]Segment{}
	for _, ev := range events {
		if ev.Kind != EvNodeDown {
			continue
		}
		for _, n := range ev.Alloc.Nodes() {
			if n >= 0 {
				wins[n] = append(wins[n], Segment{Start: ev.From, End: ev.To})
			}
		}
	}
	return wins
}

// planWindows derives the per-node down intervals straight from the
// compiled plan, for recorder-less runs. Stricter than downWindows: it
// includes windows the scheduler elided — but an elided window had no
// outstanding work anywhere inside it (the event loop stops at every
// fault instant while work exists), so no run segment can overlap one.
func planWindows(plan *FaultPlan, nodes int) map[int][]Segment {
	wins := map[int][]Segment{}
	for _, ev := range plan.compile(nodes) {
		if ev.kind == faultNodeDown {
			wins[ev.node] = append(wins[ev.node], Segment{Start: ev.at, End: ev.until})
		}
	}
	return wins
}

// checkNoRunDuringDown asserts no job held a downed node: every run
// segment on a node is disjoint from every recorded down window of that
// node. A gang killed by the fault ends its segment exactly at the down
// instant, which is disjoint.
func checkNoRunDuringDown(t *testing.T, jobs []*Job, wins map[int][]Segment) {
	t.Helper()
	for _, j := range jobs {
		for _, seg := range j.History {
			for _, n := range seg.Alloc.Nodes() {
				for _, w := range wins[n] {
					if seg.Start < w.End && seg.End > w.Start {
						t.Fatalf("%s ran [%v,%v) on node %d inside down window [%v,%v)",
							j, seg.Start, seg.End, n, w.Start, w.End)
					}
				}
			}
		}
	}
}

// checkFaultBalance asserts the storm invariants on one finished run
// and returns (kills, banks) for the caller's vacuity aggregation.
// events may be nil for recorder-less runs (stream checks skipped).
func checkFaultBalance(t *testing.T, rep Report, count int, events []Event, wins map[int][]Segment) (int, int) {
	t.Helper()
	if len(rep.Jobs) != count || rep.Failed != 0 {
		t.Fatalf("finished %d of %d jobs, %d failed", len(rep.Jobs), count, rep.Failed)
	}
	checkNoOverlap(t, rep.Jobs, len(rep.NodeBusy))
	checkNoRunDuringDown(t, rep.Jobs, wins)
	var lost time.Duration
	faults, banks, faulted := 0, 0, 0
	for _, j := range rep.Jobs {
		if j.State != Done {
			t.Fatalf("%s ended %v", j, j.State)
		}
		if want := j.TimeSlices() + j.Preemptions() + j.Faults() + j.Banks() + 1; len(j.History) != want {
			t.Fatalf("%s has %d segments, want %d (%d slices + %d preempts + %d faults + %d banks + final)",
				j, len(j.History), want, j.TimeSlices(), j.Preemptions(), j.Faults(), j.Banks())
		}
		// Exact loss accounting: node-holding time is true work plus
		// charged overhead plus exactly the work the storm destroyed.
		// Slack only for the millisecond floor on degenerate segments.
		diff := j.BusyTime() - j.Estimate() - j.CheckpointOverhead() - j.LostWork()
		if diff < 0 {
			diff = -diff
		}
		if slack := 5*time.Millisecond + time.Duration(j.Faults()+j.Banks())*time.Millisecond; diff > slack {
			t.Fatalf("%s busy %v != est %v + overhead %v + lost %v (diff %v)",
				j, j.BusyTime(), j.Estimate(), j.CheckpointOverhead(), j.LostWork(), diff)
		}
		lost += j.LostWork()
		faults += j.Faults()
		banks += j.Banks()
		if j.Faults() > 0 {
			faulted++
		}
	}
	if lost != rep.LostWork {
		t.Fatalf("per-job lost work sums to %v, report says %v", lost, rep.LostWork)
	}
	if faults != rep.FaultKills || banks != rep.Banks || faulted != rep.Faulted {
		t.Fatalf("per-job counters (%d kills, %d banks, %d faulted) disagree with report (%d, %d, %d)",
			faults, banks, faulted, rep.FaultKills, rep.Banks, rep.Faulted)
	}
	// The event stream must carry every kill and bank, typed.
	if events != nil {
		evKills, evBanks := 0, 0
		for _, ev := range events {
			if ev.Kind == EvSegmentEnd && ev.Detail == "fault" {
				evKills++
			}
			if ev.Kind == EvSegmentEnd && ev.Detail == "bank" {
				evBanks++
			}
		}
		if evKills != rep.FaultKills || evBanks != rep.Banks {
			t.Fatalf("stream has %d fault segment-ends and %d bank settles, report counts %d and %d",
				evKills, rep.FaultKills, evBanks, rep.Banks)
		}
	}
	if rep.NodeFaults > 0 {
		if rep.Availability <= 0 || rep.Availability >= 1 {
			t.Fatalf("%d node faults but availability %.4f not in (0,1)", rep.NodeFaults, rep.Availability)
		}
		if rep.NodeDownTime <= 0 {
			t.Fatalf("%d node faults but zero node down-time", rep.NodeFaults)
		}
	}
	if rep.Goodput <= 0 {
		t.Fatalf("goodput %.4f not positive for a drained run", rep.Goodput)
	}
	return faults, banks
}

// TestFaultStormProperties runs the seeded storm across the crossed
// configuration matrix, with proactive checkpointing off and on, and
// asserts the loss-accounting, placement, and capacity invariants. The
// final vacuity guard proves the storm actually killed running gangs
// and (with the knob on) actually banked proactive checkpoints —
// without it every invariant above could pass on a storm that never
// connected.
func TestFaultStormProperties(t *testing.T) {
	const nodes, count = 32, 150
	totalKills, totalBanks := 0, 0
	for _, cfg := range stormConfigs(77) {
		cfg := cfg
		name := fmt.Sprintf("%v/preempt=%v/quantum=%v/host=%v/ckpt=%v",
			cfg.Policy, cfg.Preempt, cfg.Quantum, cfg.SuspendToHost, cfg.CheckpointInterval)
		t.Run(name, func(t *testing.T) {
			rec := &MemRecorder{}
			cfg.Cluster = newTestCluster(nodes)
			cfg.Recorder = rec
			s := New(cfg)
			submitAll(t, s, SyntheticStream(2, count, nodes, 5*time.Second))
			rep := s.Run()
			kills, banks := checkFaultBalance(t, rep, count, rec.Events(), downWindows(rec.Events()))
			totalKills += kills
			if cfg.CheckpointInterval > 0 {
				totalBanks += banks
			}
			var totalBusy time.Duration
			for i, b := range rep.NodeBusy {
				if b < 0 || b > rep.Makespan {
					t.Fatalf("node %d busy %v exceeds makespan %v", i, b, rep.Makespan)
				}
				totalBusy += b
			}
			if limit := time.Duration(nodes) * rep.Makespan; totalBusy > limit {
				t.Fatalf("total busy %v exceeds machine capacity %v", totalBusy, limit)
			}
		})
	}
	if totalKills == 0 {
		t.Fatal("vacuity: the storm never killed a running gang across the whole matrix")
	}
	if totalBanks == 0 {
		t.Fatal("vacuity: proactive checkpointing never banked across the interval-on runs")
	}
}

// TestFaultStormDeterminism pins the fault layer's replay guarantee:
// the same mix, policy, and FaultPlan seed twice produces bit-identical
// reports and recorded event streams — across every policy, with and
// without preemption and time-slicing.
func TestFaultStormDeterminism(t *testing.T) {
	const nodes, count = 32, 120
	configs := []struct {
		name    string
		preempt bool
		quantum time.Duration
		suspend bool
	}{
		{"plain", false, 0, false},
		{"preempt", true, 0, false},
		{"quantum", false, 300 * time.Second, false},
		{"preempt+quantum+host", true, 300 * time.Second, true},
	}
	for _, pol := range Policies() {
		for _, cc := range configs {
			t.Run(pol.String()+"/"+cc.name, func(t *testing.T) {
				ck, rs := fixedCosts(200*time.Millisecond, 100*time.Millisecond)
				run := func() (Report, []Event) {
					rec := &MemRecorder{}
					s := New(Config{
						Cluster:            newTestCluster(nodes),
						Policy:             pol,
						Preempt:            cc.preempt,
						Quantum:            cc.quantum,
						SuspendToHost:      cc.suspend,
						CheckpointCost:     ck,
						RestoreCost:        rs,
						Faults:             stormPlan(404),
						CheckpointInterval: 2 * time.Minute,
						Recorder:           rec,
					})
					submitAll(t, s, SyntheticStream(13, count, nodes, 5*time.Second))
					return s.Run(), append([]Event(nil), rec.Events()...)
				}
				a, ae := run()
				b, be := run()
				if a.Makespan != b.Makespan || a.AvgWait != b.AvgWait || a.MaxWait != b.MaxWait ||
					a.LostWork != b.LostWork || a.FaultKills != b.FaultKills || a.Banks != b.Banks ||
					a.NodeFaults != b.NodeFaults || a.TrunkOutages != b.TrunkOutages ||
					a.NodeDownTime != b.NodeDownTime || a.Availability != b.Availability ||
					a.Goodput != b.Goodput {
					t.Fatalf("storm replay diverged:\n  first:  %+v %+v %v\n  second: %+v %+v %v",
						a.Makespan, a.LostWork, a.FaultKills, b.Makespan, b.LostWork, b.FaultKills)
				}
				if len(ae) != len(be) {
					t.Fatalf("replay produced %d events, first run %d", len(be), len(ae))
				}
				for i := range ae {
					if !reflect.DeepEqual(ae[i], be[i]) {
						t.Fatalf("event %d differs between replays:\n  first:  %+v\n  second: %+v", i, ae[i], be[i])
					}
				}
			})
		}
	}
}

// TestTrunkOutageKillsCrossingGangs pins the whole-trunk fault: on a
// 32-node cluster (trunk behind node 24), a gang allocated [16,32)
// crosses the trunk and dies when the trunk does; a gang on [0,16)
// keeps running through the outage; the killed gang cannot re-place
// across the severed trunk and restarts only at repair.
func TestTrunkOutageKillsCrossingGangs(t *testing.T) {
	plan := &FaultPlan{Trunks: []TrunkFault{{At: 30 * time.Second, Duration: 10 * time.Second}}}
	rec := &MemRecorder{}
	s := New(Config{
		Cluster:   newTestCluster(32),
		Policy:    FIFO,
		Placement: PlaceFirstFit,
		Faults:    plan,
		Recorder:  rec,
	})
	local := &Job{Name: "local", Kind: KindCG, Nodes: 16, Est: 100 * time.Second}
	cross := &Job{Name: "cross", Kind: KindCG, Nodes: 16, Est: 100 * time.Second}
	submitAll(t, s, []*Job{local, cross})
	rep := s.Run()
	if local.State != Done || cross.State != Done {
		t.Fatalf("jobs ended %v/%v", local.State, cross.State)
	}
	if local.Faults() != 0 || local.End != 100*time.Second {
		t.Fatalf("non-crossing gang was disturbed: %d faults, ended %v", local.Faults(), local.End)
	}
	if cross.Faults() != 1 || cross.LostWork() != 30*time.Second {
		t.Fatalf("crossing gang: %d faults, lost %v (want 1 kill losing 30s)", cross.Faults(), cross.LostWork())
	}
	// Killed at 30s, trunk back at 40s, reruns its full 100s estimate.
	if cross.End != 140*time.Second {
		t.Fatalf("crossing gang ended %v, want 140s (restart at trunk repair)", cross.End)
	}
	if rep.TrunkOutages != 1 || rep.FaultKills != 1 || rep.LostWork != 30*time.Second {
		t.Fatalf("report: %d outages, %d kills, lost %v", rep.TrunkOutages, rep.FaultKills, rep.LostWork)
	}
	// The outage is typed in the stream with its window.
	found := false
	for _, ev := range rec.Events() {
		if ev.Kind == EvTrunkDown {
			found = true
			if ev.From != 30*time.Second || ev.To != 40*time.Second {
				t.Fatalf("EvTrunkDown window [%v,%v), want [30s,40s)", ev.From, ev.To)
			}
		}
	}
	if !found {
		t.Fatal("no EvTrunkDown in the stream")
	}
}

// TestCheckpointIntervalGoodput is the acceptance pin for proactive
// checkpointing: under a designed crash, Config.CheckpointInterval
// strictly beats the no-proactive-checkpoint baseline on lost work,
// makespan, and goodput — the classic optimal-interval tradeoff's
// win side (drain cost per interval vs expected loss per fault).
func TestCheckpointIntervalGoodput(t *testing.T) {
	plan := &FaultPlan{Crashes: []NodeFault{{Node: 0, At: 60 * time.Second, Repair: 5 * time.Second}}}
	run := func(interval time.Duration) Report {
		ck, rs := fixedCosts(time.Second, 500*time.Millisecond)
		s := New(Config{
			Cluster:            newTestCluster(8),
			Policy:             FIFO,
			CheckpointCost:     ck,
			RestoreCost:        rs,
			Faults:             plan,
			CheckpointInterval: interval,
		})
		j := &Job{Name: "gang", Kind: KindCG, Nodes: 8, Est: 100 * time.Second}
		submitAll(t, s, []*Job{j})
		rep := s.Run()
		if j.State != Done {
			t.Fatalf("interval %v: job ended %v", interval, j.State)
		}
		return rep
	}
	base := run(0)
	ckpt := run(10 * time.Second)
	// Baseline: killed at 60s with nothing banked, restarts from zero at
	// repair — exactly 60s of work destroyed.
	if base.LostWork != 60*time.Second || base.FaultKills != 1 {
		t.Fatalf("baseline lost %v across %d kills, want 60s across 1", base.LostWork, base.FaultKills)
	}
	if ckpt.Banks == 0 {
		t.Fatal("proactive run never banked a checkpoint")
	}
	// Proactive banking bounds the loss by roughly one interval (plus
	// bank drain time), so it must beat the baseline outright.
	if ckpt.LostWork >= base.LostWork {
		t.Fatalf("proactive lost %v, baseline lost %v — checkpointing must bound the loss", ckpt.LostWork, base.LostWork)
	}
	if ckpt.LostWork > 12*time.Second {
		t.Fatalf("proactive lost %v, want at most ~one 10s interval plus drain", ckpt.LostWork)
	}
	if ckpt.Makespan >= base.Makespan {
		t.Fatalf("proactive makespan %v not better than baseline %v", ckpt.Makespan, base.Makespan)
	}
	if ckpt.Goodput <= base.Goodput {
		t.Fatalf("proactive goodput %.4f not better than baseline %.4f", ckpt.Goodput, base.Goodput)
	}
	// The report surfaces the storm section.
	if !strings.Contains(ckpt.String(), "faults:") {
		t.Fatalf("report String lacks the faults section:\n%s", ckpt.String())
	}
}

// TestCheckpointIntervalFaultFreeIdentity pins the knob's no-fault
// contract: with no faults injected, any CheckpointInterval setting
// reproduces the unchecked run bit for bit — proactive checkpointing
// never fires on a run that cannot lose work. An empty (but non-nil)
// plan counts as no faults.
func TestCheckpointIntervalFaultFreeIdentity(t *testing.T) {
	const nodes, count = 32, 120
	ck, rs := fixedCosts(200*time.Millisecond, 100*time.Millisecond)
	run := func(interval time.Duration, plan *FaultPlan) (Report, []Event) {
		rec := &MemRecorder{}
		s := New(Config{
			Cluster:            newTestCluster(nodes),
			Policy:             Backfill,
			Preempt:            true,
			Quantum:            300 * time.Second,
			CheckpointCost:     ck,
			RestoreCost:        rs,
			Faults:             plan,
			CheckpointInterval: interval,
			Recorder:           rec,
		})
		submitAll(t, s, SyntheticStream(7, count, nodes, 5*time.Second))
		return s.Run(), append([]Event(nil), rec.Events()...)
	}
	base, baseEvs := run(0, nil)
	for _, tc := range []struct {
		name     string
		interval time.Duration
		plan     *FaultPlan
	}{
		{"interval-on", 10 * time.Second, nil},
		{"interval-on-empty-plan", 10 * time.Second, &FaultPlan{}},
	} {
		rep, evs := run(tc.interval, tc.plan)
		if rep.Makespan != base.Makespan || rep.AvgWait != base.AvgWait || rep.Banks != 0 ||
			rep.LostWork != 0 || rep.FaultKills != 0 {
			t.Fatalf("%s: fault-free run diverged (makespan %v vs %v, %d banks, lost %v)",
				tc.name, rep.Makespan, base.Makespan, rep.Banks, rep.LostWork)
		}
		if len(evs) != len(baseEvs) {
			t.Fatalf("%s: %d events vs baseline %d", tc.name, len(evs), len(baseEvs))
		}
		for i := range evs {
			if !reflect.DeepEqual(evs[i], baseEvs[i]) {
				t.Fatalf("%s: event %d differs:\n  base: %+v\n  knob: %+v", tc.name, i, baseEvs[i], evs[i])
			}
		}
	}
}

// TestFaultPlanParse pins the fault trace format: crash/flap/trunk
// lines with second-denominated times, comments, and blank lines.
func TestFaultPlanParse(t *testing.T) {
	const text = `# seeded storm, exported
crash 3 120 60       ; node 3 dies at t=120s, back at t=180s
flap 17 600.5 2.5
trunk 900 30

crash 0 42 1
`
	plan, err := ParseFaultPlan(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	wantCrashes := []NodeFault{
		{Node: 3, At: 120 * time.Second, Repair: 60 * time.Second},
		{Node: 17, At: 600*time.Second + 500*time.Millisecond, Repair: 2500 * time.Millisecond},
		{Node: 0, At: 42 * time.Second, Repair: time.Second},
	}
	if !reflect.DeepEqual(plan.Crashes, wantCrashes) {
		t.Fatalf("crashes parsed as %+v, want %+v", plan.Crashes, wantCrashes)
	}
	wantTrunks := []TrunkFault{{At: 900 * time.Second, Duration: 30 * time.Second}}
	if !reflect.DeepEqual(plan.Trunks, wantTrunks) {
		t.Fatalf("trunks parsed as %+v, want %+v", plan.Trunks, wantTrunks)
	}
	for _, bad := range []string{
		"crash 3 120",        // missing repair
		"crash x 120 60",     // bad node
		"flap 3 120 -5",      // negative duration
		"explode 3 120 60",   // unknown verb
		"trunk 900 30 extra", // trailing token
	} {
		if _, err := ParseFaultPlan(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseFaultPlan accepted %q", bad)
		}
	}
}

// TestGenFaultPlan pins the generator: seeded determinism, in-range
// nodes, positive repair times, and a storm dense enough to matter.
func TestGenFaultPlan(t *testing.T) {
	const nodes = 32
	a := GenFaultPlan(9, nodes, 4*time.Hour, time.Hour)
	b := GenFaultPlan(9, nodes, 4*time.Hour, time.Hour)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different plans")
	}
	if len(a.Crashes) == 0 {
		t.Fatal("generated storm has no crashes")
	}
	for _, f := range a.Crashes {
		if f.Node < 0 || f.Node >= nodes {
			t.Fatalf("crash names node %d outside [0,%d)", f.Node, nodes)
		}
		if f.At < 0 || f.At >= 4*time.Hour || f.Repair <= 0 {
			t.Fatalf("crash %+v outside the horizon or with no repair", f)
		}
	}
	if c := GenFaultPlan(10, nodes, 4*time.Hour, time.Hour); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical plans")
	}
}

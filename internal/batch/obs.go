package batch

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Scheduler observability: a Recorder attached through Config.Recorder
// receives one typed Event per job lifecycle transition, in virtual
// time, as the event loop takes it — submit, dispatch (with its restore
// prefix and store transfers), checkpoint drains, slice yields,
// suspend-to-host parking, demotions, segment ends, completion — plus
// one EvBlocked per queued job per scheduling pass explaining why it
// did not start (explain.go). The stream is strictly append-only and
// deterministic: replaying the same mix under the same config produces
// the same events, which the determinism tests pin.
//
// A nil Recorder costs nothing: every hook site is guarded by a single
// nil check and the hot scheduling path allocates nothing extra (the
// zero-alloc guard in obs_test.go pins that). With a recorder attached
// the stream feeds three consumers: the Chrome trace-event exporter
// below (Perfetto tracks for jobs, nodes, and both store-link
// directions), the per-job blocker aggregation in explain.go, and
// Report.Timeline.

// EventKind identifies a lifecycle transition.
type EventKind int

const (
	// EvSubmit is a job accepted into the queue. From is the resolved
	// arrival instant; Detail carries a display label (name, kind, gang
	// width, priority, user).
	EvSubmit EventKind = iota
	// EvDispatch is a gang placement: a segment begins. Alloc is the
	// granted gang, From the instant work starts after the restore
	// prefix (equal to Time for a fresh start), Detail the dispatch
	// flavor ("start", "backfill", "host-resume", "store-restore",
	// "migrate-restore", or a backfill-prefixed combination).
	EvDispatch
	// EvBlocked records that a queued, arrived job was scanned on a
	// scheduling pass and did not start. Pass numbers the pass, Reason
	// classifies the dominant obstacle, and From carries the relevant
	// future instant when one exists (the EASY shadow bound or a
	// conservative reserved start).
	EvBlocked
	// EvDrainBegin is a checkpoint drain starting: the gang is held
	// through the drain. From/To span queue wait plus transfer (To is
	// the drain end), Alloc the held gang, Detail the tier and cause
	// ("store preempt", "host slice", ...).
	EvDrainBegin
	// EvRequeue is a drain end: the job re-enters the queue with its
	// progress banked. Detail is "host" when the image stayed in RAM,
	// "store" when it drained to the checkpoint store.
	EvRequeue
	// EvHostSuspend is an image parked in host RAM, pinning its memory
	// footprint on Alloc until resume or demotion.
	EvHostSuspend
	// EvDemoteBegin is a host image starting its eviction write to the
	// store under memory pressure; From/To span the write transfer,
	// Alloc the nodes whose RAM stays pinned until To.
	EvDemoteBegin
	// EvDemoteEnd is an eviction write settling: the memory unpins and
	// the job's next restore is re-priced at the store tariff.
	EvDemoteEnd
	// EvSliceYield is a quantum-boundary suspension decision: the gang
	// yields its nodes to an outranking waiter (the drain follows as
	// EvDrainBegin).
	EvSliceYield
	// EvStoreWrite is a transfer occupying the store link's write
	// direction: From/To span the transfer, Detail the cause ("drain",
	// "demote", or "migrate" for the outbound leg of a host-image
	// migration).
	EvStoreWrite
	// EvStoreRead is a restore transfer on the read direction; Detail
	// is "cancel" when a mid-restore preemption released the tail of
	// the reservation (To is then the cancellation instant).
	EvStoreRead
	// EvSegmentEnd is a gang release: From/To span the segment exactly
	// as History records it, Alloc is the released gang, Detail "run"
	// for a completion, "drain" for a checkpoint end, "cancel" for a
	// mid-run cancellation, "fault" for a fault kill, and "bank" for a
	// settled proactive checkpoint (the gang keeps its seat).
	EvSegmentEnd
	// EvComplete is the terminal transition; Detail is "done" or
	// "failed".
	EvComplete
	// EvNodeDown is an injected node crash (fault.go): Alloc names the
	// node, From/To span the scheduled down interval.
	EvNodeDown
	// EvNodeUp is the matching repair: the node rejoins the free pool.
	EvNodeUp
	// EvTrunkDown is an injected whole-trunk outage: From/To span it;
	// crossing gangs are killed and no crossing placement is admitted
	// until EvTrunkUp.
	EvTrunkDown
	// EvTrunkUp ends the active trunk outage.
	EvTrunkUp
)

func (k EventKind) String() string {
	switch k {
	case EvSubmit:
		return "submit"
	case EvDispatch:
		return "dispatch"
	case EvBlocked:
		return "blocked"
	case EvDrainBegin:
		return "drain-begin"
	case EvRequeue:
		return "requeue"
	case EvHostSuspend:
		return "host-suspend"
	case EvDemoteBegin:
		return "demote-begin"
	case EvDemoteEnd:
		return "demote-end"
	case EvSliceYield:
		return "slice-yield"
	case EvStoreWrite:
		return "store-write"
	case EvStoreRead:
		return "store-read"
	case EvSegmentEnd:
		return "segment-end"
	case EvComplete:
		return "complete"
	case EvNodeDown:
		return "node-down"
	case EvNodeUp:
		return "node-up"
	case EvTrunkDown:
		return "trunk-down"
	case EvTrunkUp:
		return "trunk-up"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one recorded lifecycle transition. Fields beyond Time, Kind,
// and Job are kind-specific; unused ones are zero.
type Event struct {
	// Time is the virtual instant the transition was taken.
	Time time.Duration
	// Kind is the transition type.
	Kind EventKind
	// Job is the subject's scheduler-assigned ID.
	Job int
	// Pass numbers the scheduling pass for EvBlocked events.
	Pass int
	// Reason classifies EvBlocked events (explain.go).
	Reason BlockReason
	// From and To span the interval the event describes: a transfer, a
	// segment, a drain; for EvSubmit, From is the arrival and for
	// EvBlocked it is the shadow/reservation bound when one applies.
	From, To time.Duration
	// Alloc is the gang involved, for occupancy-bearing events.
	Alloc Allocation
	// Detail refines the kind (tier, cause, dispatch flavor).
	Detail string
}

// Recorder receives lifecycle events as the event loop takes them. A
// nil Config.Recorder disables recording at zero cost. Implementations
// must not retain the Event beyond the call unless they copy it (the
// built-in MemRecorder appends by value, which is a copy).
type Recorder interface {
	Record(ev Event)
}

// MemRecorder is the standard in-memory Recorder: an append-only event
// slice, cheap enough to leave attached across a whole run.
type MemRecorder struct {
	events []Event
}

// Record appends the event.
func (r *MemRecorder) Record(ev Event) { r.events = append(r.events, ev) }

// Events returns the recorded stream in record order. The slice is
// owned by the recorder; callers that mutate it should copy first.
func (r *MemRecorder) Events() []Event { return r.events }

// Reset discards the recorded stream, keeping the capacity.
func (r *MemRecorder) Reset() { r.events = r.events[:0] }

// record forwards to the attached recorder. Callers guard with
// s.rec != nil so disabled instrumentation costs one predictable
// branch and zero allocations.
//
//batchlint:allow recorderguard -- the forwarder is the single audited unguarded deref; recorderguard forces every caller to hold s.rec != nil
func (s *Scheduler) record(ev Event) { s.rec.Record(ev) }

// dispatchDetail names how a segment starts: fresh start vs. restore
// tier, with the backfill lane called out. Constant strings only — the
// recorder hot path must not allocate, and the golden trace pins these
// labels.
func dispatchDetail(backfilled, migrate, storeRead bool, prefix time.Duration) string {
	var base string
	switch {
	case migrate:
		base = "migrate-restore"
	case storeRead:
		base = "store-restore"
	case prefix > 0:
		base = "host-resume"
	default:
		base = "start"
	}
	if !backfilled {
		return base
	}
	switch base {
	case "migrate-restore":
		return "backfill migrate-restore"
	case "store-restore":
		return "backfill store-restore"
	case "host-resume":
		return "backfill host-resume"
	}
	return "backfill"
}

// Chrome trace-event export. The emitted JSON loads directly into
// ui.perfetto.dev (or chrome://tracing): process 1 holds one track per
// job (wait, restore, run, drain, host-image slices plus a queue-depth
// counter), process 2 one track per node (occupancy intervals labeled
// by job), process 3 the store link's write and read directions.
const (
	tracePidJobs  = 1
	tracePidNodes = 2
	tracePidLink  = 3

	traceTidWrite = 1
	traceTidRead  = 2
)

// chromeEvent is one trace-event record. Field order is the emission
// order (encoding/json preserves struct order), so the output is
// deterministic byte for byte.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders a recorded event stream as Chrome
// trace-event JSON for a cluster of the given node count. Timestamps
// are integer microseconds of virtual time. The output is
// deterministic: same events, same bytes (the golden test pins the
// bundled sample trace's output).
func WriteChromeTrace(w io.Writer, events []Event, nodes int) error {
	us := func(d time.Duration) int64 { return int64(d / time.Microsecond) }
	var out []chromeEvent
	emitX := func(pid, tid int, name string, from, to time.Duration, args map[string]any) {
		if to < from {
			to = from
		}
		out = append(out, chromeEvent{Name: name, Ph: "X", Ts: us(from), Dur: us(to - from), Pid: pid, Tid: tid, Args: args})
	}

	// Per-job replay state: open wait/host-image windows and the
	// pending dispatch whose run slice closes at the next segment end.
	type jobState struct {
		label      string
		queuedAt   time.Duration
		queued     bool
		workAt     time.Duration
		dispatched bool
		detail     string
		drainAt    time.Duration
		draining   bool
		hostAt     time.Duration
		host       bool
	}
	states := make(map[int]*jobState)
	jobIDs := make([]int, 0, 64) // submit order, for metadata emission
	st := func(id int) *jobState {
		j := states[id]
		if j == nil {
			j = &jobState{}
			states[id] = j
		}
		return j
	}
	// Queue-depth counter deltas: +1 at arrival and requeue, -1 at
	// dispatch.
	type depthDelta struct {
		t time.Duration
		d int
	}
	var deltas []depthDelta
	hasTrunk := false // a trunk-outage track is emitted only when one occurred

	for _, ev := range events {
		j := st(ev.Job)
		switch ev.Kind {
		case EvSubmit:
			j.label = ev.Detail
			j.queuedAt, j.queued = ev.From, true
			jobIDs = append(jobIDs, ev.Job)
			deltas = append(deltas, depthDelta{ev.From, +1})
		case EvDispatch:
			if j.queued {
				emitX(tracePidJobs, ev.Job, "wait", j.queuedAt, ev.Time, nil)
				j.queued = false
			}
			if j.host {
				emitX(tracePidJobs, ev.Job, "host-image", j.hostAt, ev.Time, nil)
				j.host = false
			}
			j.workAt, j.dispatched, j.detail = ev.From, true, ev.Detail
			j.draining = false
			deltas = append(deltas, depthDelta{ev.Time, -1})
		case EvDrainBegin:
			emitX(tracePidJobs, ev.Job, "drain "+ev.Detail, ev.Time, ev.To, nil)
			j.drainAt, j.draining = ev.Time, true
		case EvSegmentEnd:
			if j.dispatched {
				workAt := j.workAt
				if j.draining && workAt > j.drainAt {
					workAt = j.drainAt // preempted mid-restore: no work ran
				}
				if workAt > ev.To {
					workAt = ev.To
				}
				if workAt > ev.From {
					emitX(tracePidJobs, ev.Job, "restore", ev.From, workAt, nil)
				}
				emitX(tracePidJobs, ev.Job, "run", workAt, ev.To, map[string]any{"dispatch": j.detail})
				j.dispatched, j.draining = false, false
			}
			for _, n := range ev.Alloc.Nodes() {
				emitX(tracePidNodes, n, fmt.Sprintf("j%d", ev.Job), ev.From, ev.To, nil)
			}
			if ev.Detail == "bank" {
				// A settled proactive checkpoint: the gang kept its seat,
				// so the run window re-opens in place with no dispatch.
				j.workAt, j.dispatched = ev.To, true
			}
		case EvNodeDown:
			for _, n := range ev.Alloc.Nodes() {
				emitX(tracePidNodes, n, "down", ev.From, ev.To, nil)
			}
		case EvTrunkDown:
			emitX(tracePidNodes, nodes, "trunk outage", ev.From, ev.To, nil)
			hasTrunk = true
		case EvRequeue:
			j.queuedAt, j.queued = ev.Time, true
			deltas = append(deltas, depthDelta{ev.Time, +1})
		case EvHostSuspend:
			j.hostAt, j.host = ev.Time, true
		case EvDemoteBegin:
			emitX(tracePidJobs, ev.Job, "demote", ev.From, ev.To, nil)
		case EvDemoteEnd:
			if j.host {
				emitX(tracePidJobs, ev.Job, "host-image", j.hostAt, ev.Time, nil)
				j.host = false
			}
		case EvStoreWrite:
			emitX(tracePidLink, traceTidWrite, fmt.Sprintf("%s j%d", ev.Detail, ev.Job), ev.From, ev.To, nil)
		case EvStoreRead:
			name := fmt.Sprintf("read j%d", ev.Job)
			if ev.Detail != "" {
				name = fmt.Sprintf("read j%d (%s)", ev.Job, ev.Detail)
			}
			emitX(tracePidLink, traceTidRead, name, ev.From, ev.To, nil)
		}
	}

	// Queue-depth counter track: sorted deltas, accumulated.
	sort.SliceStable(deltas, func(i, k int) bool { return deltas[i].t < deltas[k].t })
	depth := 0
	for i, d := range deltas {
		depth += d.d
		if i+1 < len(deltas) && deltas[i+1].t == d.t {
			continue // coalesce same-instant changes
		}
		out = append(out, chromeEvent{Name: "queue depth", Ph: "C", Ts: us(d.t), Pid: tracePidJobs, Tid: 0,
			Args: map[string]any{"jobs": depth}})
	}

	// Metadata: process and thread names, in (pid, tid) order.
	var meta []chromeEvent
	metaName := func(pid, tid int, kind, name string) {
		meta = append(meta, chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}
	metaName(tracePidJobs, 0, "process_name", "jobs")
	sort.Ints(jobIDs)
	for _, id := range jobIDs {
		label := states[id].label
		if label == "" {
			label = fmt.Sprintf("job %d", id)
		}
		metaName(tracePidJobs, id, "thread_name", label)
	}
	metaName(tracePidNodes, 0, "process_name", "nodes")
	for n := 0; n < nodes; n++ {
		metaName(tracePidNodes, n, "thread_name", fmt.Sprintf("node %d", n))
	}
	if hasTrunk {
		metaName(tracePidNodes, nodes, "thread_name", "trunk")
	}
	metaName(tracePidLink, 0, "process_name", "store link")
	metaName(tracePidLink, traceTidWrite, "thread_name", "write (drains, demotions, migrations)")
	metaName(tracePidLink, traceTidRead, "thread_name", "read (restores)")
	out = append(meta, out...)

	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range out {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if i < len(out)-1 {
			b = append(b, ',')
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// WriteChromeTrace renders the report's recorded event stream (a
// scheduler run with Config.Recorder set to a MemRecorder) as Chrome
// trace-event JSON — see the package-level WriteChromeTrace.
func (r Report) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Events, len(r.NodeBusy))
}

// Timeline returns the recorded events concerning one job, in record
// order — the per-job lifecycle view tests and operators previously
// re-derived from History segments. The returned slice is a copy. It
// is empty when no recorder was attached to the run.
func (r Report) Timeline(jobID int) []Event {
	var out []Event
	for _, ev := range r.Events {
		if ev.Job == jobID {
			out = append(out, ev)
		}
	}
	return out
}

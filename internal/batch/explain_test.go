package batch

import (
	"strings"
	"testing"
	"time"
)

// TestExplainHeadOfLineUnderFIFO: everything behind a blocked FIFO head
// is blocked by the head, and the stream says so.
func TestExplainHeadOfLineUnderFIFO(t *testing.T) {
	rec := &MemRecorder{}
	s := New(Config{Cluster: newTestCluster(4), Policy: FIFO, Recorder: rec})
	hog := &Job{Name: "hog", Kind: KindLBM, Nodes: 4, Est: time.Hour}
	head := &Job{Name: "head", Kind: KindCG, Nodes: 4, Est: time.Minute}
	tail := &Job{Name: "tail", Kind: KindPDE, Nodes: 1, Est: time.Minute}
	submitAll(t, s, []*Job{hog, head, tail})
	rep := s.Run()
	if e := rep.Explain(head.ID); e.Dominant() != ReasonNoPlacement {
		t.Fatalf("blocked head dominant reason = %v, want no-placement\n%s", e.Dominant(), e)
	}
	if e := rep.Explain(tail.ID); e.Dominant() != ReasonHeadOfLine {
		t.Fatalf("FIFO tail dominant reason = %v, want head-of-line\n%s", e.Dominant(), e)
	}
	if e := rep.Explain(hog.ID); e.BlockedPasses != 0 || e.Dominant() != ReasonNone {
		t.Fatalf("hog started immediately but explains as %s", rep.Explain(hog.ID))
	}
}

// TestExplainShadowUnderEASY: a backfill candidate too long for the
// blocked head's reservation is recorded as a shadow violation.
func TestExplainShadowUnderEASY(t *testing.T) {
	rec := &MemRecorder{}
	s := New(Config{Cluster: newTestCluster(4), Policy: Backfill, Recorder: rec})
	hog := &Job{Name: "hog", Kind: KindLBM, Nodes: 3, Est: time.Hour}
	head := &Job{Name: "head", Kind: KindCG, Nodes: 4, Est: time.Minute, Submit: time.Second}
	// Fits the free node but is too long to finish before the hog frees
	// the machine for the head.
	long := &Job{Name: "long", Kind: KindPDE, Nodes: 1, Est: 2 * time.Hour, Submit: time.Second}
	// Legal backfill whose completion triggers an extra pass mid-hog.
	filler := &Job{Name: "filler", Kind: KindPDE, Nodes: 1, Est: time.Minute, Submit: time.Second}
	submitAll(t, s, []*Job{hog, head, long, filler})
	rep := s.Run()
	e := rep.Explain(long.ID)
	if e.Dominant() != ReasonShadow {
		t.Fatalf("oversized backfill candidate dominant reason = %v, want shadow\n%s", e.Dominant(), e)
	}
	// The shadow bound rides on the event: the hog's completion.
	for _, ev := range rep.Timeline(long.ID) {
		if ev.Kind == EvBlocked && ev.Reason == ReasonShadow && ev.From <= ev.Time {
			t.Fatalf("shadow EvBlocked carries bound %v at time %v (want a future instant)", ev.From, ev.Time)
		}
	}
}

// TestExplainWaveDraining: the beneficiary of a preemption wave waits
// on its victims' checkpoints, and the passes in between say so.
func TestExplainWaveDraining(t *testing.T) {
	ck, rs := fixedCosts(30*time.Second, 10*time.Second)
	rec := &MemRecorder{}
	s := New(Config{
		Cluster: newTestCluster(4), Policy: Backfill, Preempt: true,
		CheckpointCost: ck, RestoreCost: rs, Recorder: rec,
	})
	hog := &Job{Name: "hog", Kind: KindLBM, Nodes: 4, Priority: 0, Est: time.Hour}
	urgent := &Job{Name: "urgent", Kind: KindCG, Nodes: 4, Priority: 9,
		Est: time.Minute, Submit: 10 * time.Second}
	submitAll(t, s, []*Job{hog, urgent})
	rep := s.Run()
	e := rep.Explain(urgent.ID)
	if e.Dominant() != ReasonWaveDraining {
		t.Fatalf("preemptor dominant reason = %v, want wave-draining\n%s", e.Dominant(), e)
	}
}

// TestExplainFutileCheckpoint: when every lower-priority gang would
// finish before its contended drain, preemption refuses and the
// explanation names the futile-checkpoint guard.
func TestExplainFutileCheckpoint(t *testing.T) {
	// Drain (10 min) dwarfs the hog's remaining 5 minutes: suspending
	// it frees nothing sooner.
	ck, rs := fixedCosts(10*time.Minute, time.Second)
	rec := &MemRecorder{}
	s := New(Config{
		Cluster: newTestCluster(4), Policy: FIFO, Preempt: true,
		CheckpointCost: ck, RestoreCost: rs, Recorder: rec,
	})
	hog := &Job{Name: "hog", Kind: KindLBM, Nodes: 4, Priority: 0, Est: 5 * time.Minute}
	urgent := &Job{Name: "urgent", Kind: KindCG, Nodes: 4, Priority: 9,
		Est: time.Minute, Submit: 10 * time.Second}
	submitAll(t, s, []*Job{hog, urgent})
	rep := s.Run()
	e := rep.Explain(urgent.ID)
	if e.Dominant() != ReasonFutileCheckpoint {
		t.Fatalf("dominant reason = %v, want futile-checkpoint\n%s", e.Dominant(), e)
	}
}

// TestExplainReservationUnderConservative: a queued job held to a
// future slot by the conservative profile records the reserved start.
func TestExplainReservationUnderConservative(t *testing.T) {
	rec := &MemRecorder{}
	s := New(Config{Cluster: newTestCluster(4), Policy: Conservative, Recorder: rec})
	hog := &Job{Name: "hog", Kind: KindLBM, Nodes: 4, Est: time.Hour}
	waiter := &Job{Name: "waiter", Kind: KindCG, Nodes: 4, Est: time.Minute, Submit: time.Second}
	// A third job arrives later so scheduling passes fire while the
	// waiter holds its reservation.
	late := &Job{Name: "late", Kind: KindPDE, Nodes: 1, Est: time.Minute, Submit: 20 * time.Minute}
	submitAll(t, s, []*Job{hog, waiter, late})
	rep := s.Run()
	e := rep.Explain(waiter.ID)
	if e.BlockedPasses == 0 {
		t.Fatal("waiter was never recorded blocked")
	}
	seen := false
	for _, c := range e.Counts {
		if c.Reason == ReasonReservation {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("conservative waiter never recorded reserved:\n%s", e)
	}
	for _, ev := range rep.Timeline(waiter.ID) {
		if ev.Kind == EvBlocked && ev.Reason == ReasonReservation && ev.From <= ev.Time {
			t.Fatalf("reservation EvBlocked at %v carries bound %v (want future)", ev.Time, ev.From)
		}
	}
}

// TestExplanationAggregation covers ExplainEvents and the rendering on
// a hand-built stream: counts split by reason, most frequent first,
// deterministic tie-break, and the never-blocked phrasing.
func TestExplanationAggregation(t *testing.T) {
	events := []Event{
		{Kind: EvBlocked, Job: 7, Pass: 1, Reason: ReasonShadow},
		{Kind: EvBlocked, Job: 7, Pass: 2, Reason: ReasonShadow},
		{Kind: EvBlocked, Job: 7, Pass: 3, Reason: ReasonLinkBusy},
		{Kind: EvBlocked, Job: 9, Pass: 3, Reason: ReasonHeadOfLine},
		{Kind: EvDispatch, Job: 7, Pass: 0},
	}
	e := ExplainEvents(events, 7)
	if e.BlockedPasses != 3 || len(e.Counts) != 2 {
		t.Fatalf("aggregation off: %+v", e)
	}
	if e.Counts[0].Reason != ReasonShadow || e.Counts[0].Passes != 2 {
		t.Fatalf("most frequent first violated: %+v", e.Counts)
	}
	if e.Dominant() != ReasonShadow {
		t.Fatalf("dominant = %v, want shadow", e.Dominant())
	}
	got := e.String()
	if !strings.Contains(got, "blocked on 3 scheduler passes") ||
		!strings.Contains(got, "shadow=2") || !strings.Contains(got, "link-busy=1") {
		t.Fatalf("rendering: %q", got)
	}
	if never := ExplainEvents(events, 42); never.BlockedPasses != 0 ||
		!strings.Contains(never.String(), "never blocked") {
		t.Fatalf("never-blocked rendering: %q", never.String())
	}
}

// TestExplainEveryPolicyClassifies runs a contended stream under each
// policy and requires every blocked pass to carry a real reason — the
// classifier must never fall through to an unlabeled blocker.
func TestExplainEveryPolicyClassifies(t *testing.T) {
	for _, pol := range Policies() {
		rec := &MemRecorder{}
		s := New(Config{
			Cluster: newTestCluster(32), Policy: pol, TrunkSlowdown: 1.1,
			Preempt: true, Quantum: 300 * time.Second, SuspendToHost: true,
			Recorder: rec,
		})
		submitAll(t, s, SyntheticStream(17, 100, 32, 5*time.Second))
		s.Run()
		blocked := 0
		for _, ev := range rec.Events() {
			if ev.Kind != EvBlocked {
				continue
			}
			blocked++
			if ev.Reason <= ReasonNone || ev.Reason >= numBlockReasons {
				t.Fatalf("%v: EvBlocked with reason %d out of range", pol, ev.Reason)
			}
			if ev.Pass <= 0 {
				t.Fatalf("%v: EvBlocked without a pass number", pol)
			}
		}
		if blocked == 0 {
			t.Fatalf("%v: contended stream recorded no blocked passes", pol)
		}
	}
}

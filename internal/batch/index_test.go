package batch

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// Property tests for the datacenter-scale index structures (index.go):
// the free-range index, the end-event treap, and the calendar arrival
// queue each shadow a state the scheduler also tracks directly, so
// every test here cross-checks the index against the brute-force
// linear-scan reference it replaced. debugCheckIndex additionally makes
// the cluster itself re-derive the free-range set from the bitmap after
// every mutation, and DebugVerifyShadows makes every incremental EASY
// shadow re-run the full bitmap replay — both are switched on across
// the whole crossed policy/preemption/quantum/suspend matrix.

// refEligibleRuns is the linear-scan reference for eligibleRuns: the
// maximal runs of free nodes whose available memory covers need.
func refEligibleRuns(c *Cluster, need int64) []NodeRange {
	var out []NodeRange
	start := -1
	for i := range c.nodes {
		ok := !c.used[i] && c.avail(i) >= need
		switch {
		case ok && start < 0:
			start = i
		case !ok && start >= 0:
			out = append(out, NodeRange{First: start, Count: i - start})
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, NodeRange{First: start, Count: len(c.nodes) - start})
	}
	return out
}

// refNodesWithAvail is the brute-force reference for NodesWithAvail.
func refNodesWithAvail(c *Cluster, need int64) int {
	n := 0
	for i := range c.nodes {
		if c.avail(i) >= need {
			n++
		}
	}
	return n
}

// checkIndexAgainstScan cross-checks every index-backed cluster query
// against its linear reference at the current state.
func checkIndexAgainstScan(t *testing.T, c *Cluster, needs []int64) {
	t.Helper()
	c.idx.verify(c.used)
	if got, want := c.idx.runs, c.freeFragCount(); got != want {
		t.Fatalf("index counts %d free runs, bitmap scan counts %d", got, want)
	}
	for _, need := range needs {
		got := append([]NodeRange(nil), c.eligibleRuns(need)...)
		want := refEligibleRuns(c, need)
		if len(got) != len(want) {
			t.Fatalf("need %d: eligibleRuns %v, reference %v", need, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("need %d: eligibleRuns[%d] = %v, reference %v", need, i, got[i], want[i])
			}
		}
		if got, want := c.NodesWithAvail(need), refNodesWithAvail(c, need); got != want {
			t.Fatalf("need %d: NodesWithAvail %d, brute force %d", need, got, want)
		}
		for _, k := range []int{1, 2, 3, 7, 16, 40} {
			runs := c.eligibleRuns(need)
			if got, want := firstFitRuns(runs, k), c.firstFit(c.used, k, need); got != want {
				t.Fatalf("need %d k %d: firstFitRuns %d, legacy firstFit %d (runs %v)", need, k, got, want, runs)
			}
		}
	}
}

// TestFreeIndexMatchesScan drives the cluster through randomized
// allocate/release/respec/reserve traffic and asserts after every
// mutation that the incrementally maintained free-range index agrees
// exactly with a fresh bitmap scan — run count, run boundaries,
// eligible-run refinement, memory-admission counts, and first-fit
// window choice.
func TestFreeIndexMatchesScan(t *testing.T) {
	debugCheckIndex = true
	defer func() { debugCheckIndex = false }()

	const nodes = 257 // deliberately not a multiple of 64: exercises bitset tails
	c := newTestCluster(nodes)
	rng := rand.New(rand.NewSource(42))
	base := c.baseMem
	needs := []int64{0, base / 2, base, base + 1}

	// A few nodes get divergent specs up front, so the constrained-set
	// refinement is live from the start.
	for i := 0; i < 8; i++ {
		n := rng.Intn(nodes)
		s := c.Spec(n)
		s.MemBytes = base / 2
		c.SetSpec(n, s)
	}

	var live []Allocation
	var pinned []Allocation // reservations to undo
	var down []int          // injected node faults to repair
	for op := 0; op < 2000; op++ {
		switch r := rng.Intn(12); {
		case r < 4: // allocate
			k := 1 + rng.Intn(24)
			need := needs[rng.Intn(len(needs))]
			pol := PlaceFirstFit
			if rng.Intn(2) == 0 {
				pol = PlaceTopo
			}
			cands := c.candidates(k, need, pol)
			if len(cands) > 0 {
				live = append(live, c.commit(cands[rng.Intn(len(cands))]))
			}
		case r < 7: // release
			if len(live) > 0 {
				i := rng.Intn(len(live))
				c.Release(live[i], time.Second)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		case r < 8: // flip one node's spec
			n := rng.Intn(nodes)
			s := c.Spec(n)
			if s.MemBytes == base {
				s.MemBytes = base / 2
			} else {
				s.MemBytes = base
			}
			c.SetSpec(n, s)
		case r < 9: // pin memory (a suspended image staying resident)
			f := rng.Intn(nodes - 4)
			a := Allocation{Ranges: []NodeRange{{First: f, Count: 1 + rng.Intn(4)}}}
			c.reserve(a, base/4)
			pinned = append(pinned, a)
		case r < 10: // unpin
			if len(pinned) > 0 {
				i := rng.Intn(len(pinned))
				c.unreserve(pinned[i], base/4)
				// unreserve has no debug hook of its own; verify here.
				c.idx.verify(c.used)
				pinned[i] = pinned[len(pinned)-1]
				pinned = pinned[:len(pinned)-1]
			}
		case r < 11: // node down: a fault takes a free node out of service
			var free []int
			for i := range c.used {
				if !c.used[i] {
					free = append(free, i)
				}
			}
			if len(free) > 0 {
				n := free[rng.Intn(len(free))]
				c.nodeDown(n)
				down = append(down, n)
			}
		default: // node up: repair returns a downed node to the free pool
			if len(down) > 0 {
				i := rng.Intn(len(down))
				c.nodeUp(down[i])
				down[i] = down[len(down)-1]
				down = down[:len(down)-1]
			}
		}
		if op%20 == 0 || op > 1900 {
			checkIndexAgainstScan(t, c, needs)
		}
	}
	checkIndexAgainstScan(t, c, needs)
}

// TestIndexPropertyAcrossPolicies reruns the crossed property matrix
// with both debug cross-checks armed: debugCheckIndex re-derives the
// free-range index from the bitmap after every cluster mutation, and
// DebugVerifyShadows re-runs the full bitmap replay against every
// incremental count-based EASY shadow. Any drift panics inside the run.
// After each drain the end-event treap must be empty — every dispatch
// pushed exactly one completion event and every completion, drain, and
// cancellation popped it.
func TestIndexPropertyAcrossPolicies(t *testing.T) {
	debugCheckIndex = true
	DebugVerifyShadows = true
	defer func() { debugCheckIndex = false; DebugVerifyShadows = false }()

	const nodes, count = 32, 120
	for _, cfg := range propertyConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%v/preempt=%v/quantum=%v/host=%v", cfg.Policy, cfg.Preempt, cfg.Quantum, cfg.SuspendToHost)
		t.Run(name, func(t *testing.T) {
			cfg.Cluster = newTestCluster(nodes)
			s := New(cfg)
			submitAll(t, s, SyntheticStream(5, count, nodes, 5*time.Second))
			rep := s.Run()
			if len(rep.Jobs) != count || rep.Failed != 0 {
				t.Fatalf("finished %d of %d jobs, %d failed", len(rep.Jobs), count, rep.Failed)
			}
			for _, j := range rep.Jobs {
				if j.State != Done {
					t.Fatalf("%s ended %v", j, j.State)
				}
			}
			if n := s.ends.len(); n != 0 {
				t.Fatalf("end-event treap holds %d events after drain; every dispatch must be popped", n)
			}
		})
	}
}

// TestCalendarMatchesLinearScan pins the calendar queue to the linear
// next-arrival scan it replaced: before every event step the two must
// agree on the next future arrival, including after cancellations leave
// stale entries in the calendar buckets (discarded lazily via the
// liveness probe).
func TestCalendarMatchesLinearScan(t *testing.T) {
	const nodes, count = 32, 250
	cfg := Config{Cluster: newTestCluster(nodes), Policy: Backfill}
	s := New(cfg)
	jobs := SyntheticStream(9, count, nodes, 5*time.Second)
	submitAll(t, s, jobs)

	// The latest arrivals make the best cancellation targets: they stay
	// queued (and calendar-registered) longest.
	byArrive := append([]*Job(nil), jobs...)
	sort.Slice(byArrive, func(i, k int) bool { return byArrive[i].arrive > byArrive[k].arrive })
	toCancel := byArrive[:10]

	steps := 0
	for {
		at, ok := s.arrivals.next(s.now, s.queuedLive)
		refAt, refOK := s.pending.nextArrival(s.now)
		if ok != refOK || (ok && at != refAt) {
			t.Fatalf("step %d (t=%v): calendar says (%v,%v), linear scan says (%v,%v)",
				steps, s.now, at, ok, refAt, refOK)
		}
		if steps == 5 {
			// Cancel still-queued future arrivals mid-run: their calendar
			// entries go stale and must be filtered, not returned.
			for _, j := range toCancel {
				if j.State == Queued {
					if err := s.Cancel(j.ID); err != nil {
						t.Fatalf("cancel %s: %v", j, err)
					}
				}
			}
		}
		if !s.Step() {
			break
		}
		steps++
	}
	if steps < 100 {
		t.Fatalf("only %d event steps — the comparison barely ran", steps)
	}
}

// TestEndTreapOrderStatistics drives the order-statistic treap through
// random insert/delete traffic and checks coverTime and inorder against
// a sorted-slice reference after every operation.
func TestEndTreapOrderStatistics(t *testing.T) {
	type ev struct {
		end   time.Duration
		id    int
		count int
	}
	var tr endTreap
	tr.init()
	var ref []ev
	rng := rand.New(rand.NewSource(7))

	check := func() {
		t.Helper()
		sorted := append([]ev(nil), ref...)
		sort.Slice(sorted, func(i, k int) bool {
			if sorted[i].end != sorted[k].end {
				return sorted[i].end < sorted[k].end
			}
			return sorted[i].id < sorted[k].id
		})
		// inorder must visit exactly the reference ascending by (end, id).
		i := 0
		tr.inorder(func(end time.Duration, count int) {
			if i >= len(sorted) || end != sorted[i].end || count != sorted[i].count {
				t.Fatalf("inorder entry %d: got (%v,%d), reference %+v", i, end, count, sorted)
			}
			i++
		})
		if i != len(sorted) {
			t.Fatalf("inorder visited %d events, reference holds %d", i, len(sorted))
		}
		if tr.len() != len(sorted) {
			t.Fatalf("treap len %d, reference %d", tr.len(), len(sorted))
		}
		// coverTime(d) must be the earliest instant where the running
		// prefix sum of freed nodes reaches d.
		total := 0
		for _, e := range sorted {
			total += e.count
		}
		for _, d := range []int{1, 2, 5, total, total + 1} {
			if d <= 0 {
				continue
			}
			wantAt, wantOK := time.Duration(0), false
			sum := 0
			for _, e := range sorted {
				sum += e.count
				if sum >= d {
					wantAt, wantOK = e.end, true
					break
				}
			}
			gotAt, gotOK := tr.coverTime(d)
			if gotOK != wantOK || (gotOK && gotAt != wantAt) {
				t.Fatalf("coverTime(%d): got (%v,%v), want (%v,%v)", d, gotAt, gotOK, wantAt, wantOK)
			}
		}
	}

	nextID := 0
	for op := 0; op < 1500; op++ {
		if len(ref) == 0 || rng.Intn(3) > 0 {
			e := ev{end: time.Duration(rng.Intn(50)) * time.Second, id: nextID, count: 1 + rng.Intn(64)}
			nextID++
			tr.add(e.end, e.id, e.count)
			ref = append(ref, e)
		} else {
			i := rng.Intn(len(ref))
			tr.del(ref[i].end, ref[i].id)
			ref[i] = ref[len(ref)-1]
			ref = ref[:len(ref)-1]
		}
		if op%10 == 0 {
			check()
		}
	}
	check()
}

// TestBackfillDepth pins the depth limit's contract: a depth at least
// as deep as the queue reproduces the unlimited schedule bit for bit
// (the limit only prunes scan effort, never reorders the examined
// prefix), and even a tiny depth still drains every job.
func TestBackfillDepth(t *testing.T) {
	const nodes, count = 32, 300
	run := func(depth int) Report {
		cfg := Config{Cluster: newTestCluster(nodes), Policy: Backfill, BackfillDepth: depth}
		s := New(cfg)
		submitAll(t, s, SyntheticStream(3, count, nodes, 2*time.Second))
		return s.Run()
	}
	unlimited, deep := run(0), run(count*2)
	if unlimited.Makespan != deep.Makespan || unlimited.AvgWait != deep.AvgWait {
		t.Fatalf("depth %d diverged from unlimited: makespan %v vs %v, wait %v vs %v",
			count*2, deep.Makespan, unlimited.Makespan, deep.AvgWait, unlimited.AvgWait)
	}
	byID := make(map[int]*Job, count)
	for _, j := range deep.Jobs {
		byID[j.ID] = j
	}
	for _, j := range unlimited.Jobs {
		k := byID[j.ID]
		if k == nil || j.Start != k.Start || j.End != k.End {
			t.Fatalf("job %d: unlimited ran [%v,%v), deep depth ran [%v,%v)", j.ID, j.Start, j.End, k.Start, k.End)
		}
	}
	shallow := run(2)
	if len(shallow.Jobs) != count || shallow.Failed != 0 {
		t.Fatalf("depth 2 drained %d of %d jobs (%d failed)", len(shallow.Jobs), count, shallow.Failed)
	}
	for _, j := range shallow.Jobs {
		if j.State != Done {
			t.Fatalf("depth 2: %s ended %v", j, j.State)
		}
	}
}

// TestFairShareKeyOrder pins the epoch-normalized fair-share keys to
// the live decayed-usage values they stand in for: after arbitrary
// charge traffic — including clock jumps far past the renormalization
// threshold — the pairwise order of keyOf must match the pairwise order
// of usageOf for every user pair that is not a floating-point near-tie.
func TestFairShareKeyOrder(t *testing.T) {
	cfg := Config{Cluster: newTestCluster(8), Policy: FairShare, FairShareHalfLife: time.Minute}
	s := New(cfg)
	users := []string{"ada", "bob", "cho", "dee", "eva"}
	rng := rand.New(rand.NewSource(11))

	check := func() {
		t.Helper()
		for i := 0; i < len(users); i++ {
			for k := i + 1; k < len(users); k++ {
				u, v := users[i], users[k]
				lu, lv := s.usageOf(u), s.usageOf(v)
				// Skip floating-point near-ties: the key and the live value
				// round differently at the ulp level, and the tie-break legs
				// of the comparator absorb exact ties either way.
				if d := lu - lv; d < 1e-9*(lu+lv+1) && d > -1e-9*(lu+lv+1) {
					continue
				}
				ku, kv := s.keyOf(u), s.keyOf(v)
				if (lu < lv) != (ku < kv) {
					t.Fatalf("at %v: live usage orders (%s=%g, %s=%g) but keys order (%g, %g)",
						s.now, u, lu, v, lv, ku, kv)
				}
			}
		}
	}

	for step := 0; step < 400; step++ {
		// Mostly small clock advances; occasionally a jump far past the
		// 64-half-life renormalization threshold.
		if rng.Intn(40) == 0 {
			s.now += time.Duration(70+rng.Intn(30)) * time.Minute
		} else {
			s.now += time.Duration(1+rng.Intn(5000)) * time.Millisecond
		}
		u := users[rng.Intn(len(users))]
		s.chargeUsage(u, time.Duration(1+rng.Intn(600))*time.Second)
		check()
	}
	if s.fsEpoch == 0 {
		t.Fatal("renormalization never fired — the jump traffic must cross 64 half-lives")
	}
}

// TestQueueTombstones exercises the tombstoned pending queue directly:
// removal is by slot, ordering skips nils, and compaction preserves the
// stable order and reindexes qpos.
func TestQueueTombstones(t *testing.T) {
	var q queue
	mk := func(id int) *Job { return &Job{ID: id, qpos: -1} }
	less := func(a, b *Job) bool { return a.ID < b.ID }
	var ref []*Job
	rng := rand.New(rand.NewSource(3))
	for id := 0; id < 500; id++ {
		j := mk(id)
		q.push(j)
		ref = append(ref, j)
		if rng.Intn(3) == 0 && len(ref) > 0 {
			i := rng.Intn(len(ref))
			q.remove(ref[i])
			ref = append(ref[:i], ref[i+1:]...)
		}
		if q.len() != len(ref) {
			t.Fatalf("queue len %d, reference %d", q.len(), len(ref))
		}
	}
	want := append([]*Job(nil), ref...)
	sort.SliceStable(want, func(i, k int) bool { return less(want[i], want[k]) })
	var got []*Job
	for _, j := range q.ordered(less) {
		if j != nil {
			got = append(got, j)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ordered yields %d live jobs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ordered[%d] = job %d, want job %d", i, got[i].ID, want[i].ID)
		}
		if got[i].qpos < 0 || q.jobs[got[i].qpos] != got[i] {
			t.Fatalf("job %d qpos %d does not point back at its slot", got[i].ID, got[i].qpos)
		}
	}
	// Remove-by-stale-pointer must be a no-op, not a wrong eviction.
	gone := mk(9999)
	q.remove(gone)
	if q.len() != len(ref) {
		t.Fatal("removing an absent job changed the queue length")
	}
}

package batch

import (
	"testing"
	"time"
)

// TestMassRedispatchSerializesOnReadLink is the restore-pricing-bug
// regression, the read-side mirror of TestContendedDrainMatchesSum: K
// checkpointed victims re-dispatched at the same instant share the
// store link's read direction, so their restore transfers serialize —
// each later job's segment carries the queue wait ahead of its
// transfer. Under the old pricing every restore assumed the full
// Gigabit link: all three segments would have ended at the first one's
// time, crediting the re-dispatch wave with 3x the read bandwidth that
// exists.
func TestMassRedispatchSerializesOnReadLink(t *testing.T) {
	const drain, restore = 4 * time.Second, 6 * time.Second
	ck, rs := fixedCosts(drain, restore)
	s := New(Config{Cluster: newTestCluster(24), Policy: Backfill,
		Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	var victims []*Job
	for i := 0; i < 3; i++ {
		victims = append(victims, &Job{Name: "victim", Nodes: 8, Priority: 0, Est: 500 * time.Second})
	}
	urgent := &Job{Name: "urgent", Nodes: 24, Priority: 9,
		Est: 50 * time.Second, Submit: 10 * time.Second}
	submitAll(t, s, append(victims, urgent))
	rep := s.Run()

	// Drain side (pinned since PR 4): wave start + 3 serialized drains.
	if want := 10*time.Second + 3*drain; urgent.Start != want {
		t.Fatalf("urgent started %v, want %v (serialized drains)", urgent.Start, want)
	}
	if rep.DrainWait != 3*drain {
		t.Fatalf("drain wait %v, want %v", rep.DrainWait, 3*drain)
	}
	// Restore side (this PR): the urgent job ends at 72s and all three
	// victims re-dispatch in the same scheduling pass — but their
	// restores queue on the read link. Work left is 490s each (10s ran
	// before the wave), so the ends stagger by one transfer each.
	for i, v := range victims {
		if len(v.History) != 2 || v.History[1].Start != 72*time.Second {
			t.Fatalf("victim %d history %+v, want re-dispatch at 72s", i, v.History)
		}
	}
	ends := []time.Duration{568 * time.Second, 574 * time.Second, 580 * time.Second}
	for i, want := range ends {
		if victims[i].End != want {
			t.Fatalf("victim %d ended %v, want %v (restore prefix %v)",
				i, victims[i].End, want, time.Duration(i+1)*restore)
		}
	}
	// The second restore queued one transfer, the third two.
	if want := 3 * restore; rep.RestoreWait != want {
		t.Fatalf("restore wait %v, want %v", rep.RestoreWait, want)
	}
	// Queue wait and transfer are both charged to the re-dispatched
	// segment, so banked progress stays exact.
	for i, v := range victims {
		if v.BusyTime() != v.Estimate()+v.CheckpointOverhead() {
			t.Fatalf("victim %d busy %v != est %v + overhead %v",
				i, v.BusyTime(), v.Estimate(), v.CheckpointOverhead())
		}
	}
	checkNoOverlap(t, rep.Jobs, 24)
}

// TestHalfDuplexSharesOneTimeline pins Config.StoreDuplex: on a
// half-duplex link a drain queues behind an in-flight restore (the two
// directions share the wire), while full duplex books them on
// independent timelines.
func TestHalfDuplexSharesOneTimeline(t *testing.T) {
	run := func(d Duplex) (*Job, Report) {
		ck, rs := fixedCosts(4*time.Second, 10*time.Second)
		s := New(Config{Cluster: newTestCluster(16), Policy: Backfill,
			Preempt: true, StoreDuplex: d, CheckpointCost: ck, RestoreCost: rs})
		v1 := &Job{Name: "v1", Nodes: 8, Priority: 5, Est: 500 * time.Second}
		u1 := &Job{Name: "u1", Nodes: 16, Priority: 9, Est: 30 * time.Second, Submit: 10 * time.Second}
		v2 := &Job{Name: "v2", Nodes: 8, Priority: 1, Est: 500 * time.Second, Submit: 44 * time.Second}
		u2 := &Job{Name: "u2", Nodes: 8, Priority: 8, Est: 20 * time.Second, Submit: 46 * time.Second}
		submitAll(t, s, []*Job{v1, u1, v2, u2})
		rep := s.Run()
		for _, j := range rep.Jobs {
			if j.State != Done {
				t.Fatalf("duplex=%v: %s ended %v", d, j, j.State)
			}
		}
		checkNoOverlap(t, rep.Jobs, 16)
		return u2, rep
	}
	// Timeline: v1 drains [10,14), u1 runs [14,44). At 44 v1
	// re-dispatches with its restore riding the read direction over
	// [44,54) while v2 starts fresh on the other gang. At 46 u2
	// preempts v2, whose 4s drain wants the write direction.
	half, halfRep := run(HalfDuplex)
	full, fullRep := run(FullDuplex)
	// Full duplex: the drain starts immediately, [46,50).
	if full.Start != 50*time.Second {
		t.Fatalf("full-duplex u2 started %v, want 50s (drain independent of the restore)", full.Start)
	}
	if fullRep.DrainWait != 0 {
		t.Fatalf("full-duplex drain wait %v, want 0", fullRep.DrainWait)
	}
	// Half duplex: the wire is busy with v1's restore until 54, so the
	// drain runs [54,58) and u2 starts 8s later.
	if half.Start != 58*time.Second {
		t.Fatalf("half-duplex u2 started %v, want 58s (drain queued behind the in-flight restore)", half.Start)
	}
	if halfRep.DrainWait != 8*time.Second {
		t.Fatalf("half-duplex drain wait %v, want 8s behind the restore", halfRep.DrainWait)
	}
}

// TestRestorePreemptedMidQueueRefundsAndFreesLink pins the refund path
// for a restore cancelled before its transfer began: the whole unused
// prefix (queue wait and transfer) is refunded from the job's overhead,
// the wait that was charged but never served comes off RestoreWait, and
// the cancelled tail reservation frees the read link — observable here
// because the victim's own later re-dispatch would otherwise queue
// behind its ghost reservation.
func TestRestorePreemptedMidQueueRefundsAndFreesLink(t *testing.T) {
	ck, rs := fixedCosts(2*time.Second, 10*time.Second)
	s := New(Config{Cluster: newTestCluster(24), Policy: Backfill,
		Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	v := &Job{Name: "v", Nodes: 8, Priority: 0, Est: 500 * time.Second}
	w := &Job{Name: "w", Nodes: 8, Priority: 1, Est: 500 * time.Second}
	x := &Job{Name: "x", Nodes: 8, Priority: 2, Est: 500 * time.Second}
	u1 := &Job{Name: "u1", Nodes: 24, Priority: 9, Est: 30 * time.Second, Submit: 10 * time.Second}
	u2 := &Job{Name: "u2", Nodes: 8, Priority: 9, Est: 20 * time.Second, Submit: 48 * time.Second}
	submitAll(t, s, []*Job{v, w, x, u1, u2})
	rep := s.Run()
	// Wave: drains v [10,12), w [12,14), x [14,16); u1 runs [16,46).
	// Re-dispatch at 46 in priority order books the read link: x
	// [46,56), w [56,66), v [66,76) — v is charged a 20s wait + 10s
	// transfer. At 48 u2 preempts v: its transfer never started, so
	// 28s of unused prefix is refunded, 18s of unserved wait comes off
	// RestoreWait (30s charged - 18s = 12s), and the link's tail rolls
	// back from 76s to 66s.
	if u2.Start != 50*time.Second {
		t.Fatalf("u2 started %v, want 50s (v's 2s drain)", u2.Start)
	}
	if rep.RestoreWait != 12*time.Second {
		t.Fatalf("restore wait %v, want 12s (x 0 + w 10 + v 20 - 18 refunded)", rep.RestoreWait)
	}
	if rep.DrainWait != 6*time.Second {
		t.Fatalf("drain wait %v, want 6s from the first wave", rep.DrainWait)
	}
	// v re-dispatches when u2 ends at 70: with the rollback its
	// restore starts immediately, [70,80), and it finishes its 490s at
	// 570. A ghost reservation to 76 would have pushed that to 576.
	if v.End != 570*time.Second {
		t.Fatalf("v ended %v, want 570s (read link freed by the cancelled reservation)", v.End)
	}
	if w.End != 556*time.Second || x.End != 546*time.Second {
		t.Fatalf("w/x ended %v/%v, want 556s/546s", w.End, x.End)
	}
	if got := v.CheckpointOverhead(); got != 16*time.Second {
		t.Fatalf("v overhead %v, want 16s (2+30-28+2+10)", got)
	}
	for _, j := range []*Job{v, w, x} {
		if j.BusyTime() != j.Estimate()+j.CheckpointOverhead() {
			t.Fatalf("%s busy %v != est %v + overhead %v",
				j, j.BusyTime(), j.Estimate(), j.CheckpointOverhead())
		}
	}
	checkNoOverlap(t, rep.Jobs, 24)
}

// TestRestorePreemptedMidTransferRefunds pins the other cancellation
// case: the transfer was in flight, so only its untransferred tail is
// refunded — the wire time already spent stays charged, and busy time
// remains exactly work plus overhead across two preemptions.
func TestRestorePreemptedMidTransferRefunds(t *testing.T) {
	ck, rs := fixedCosts(2*time.Second, 10*time.Second)
	s := New(Config{Cluster: newTestCluster(8), Policy: Backfill,
		Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	v := &Job{Name: "v", Nodes: 8, Priority: 0, Est: 500 * time.Second}
	u1 := &Job{Name: "u1", Nodes: 8, Priority: 9, Est: 30 * time.Second, Submit: 10 * time.Second}
	u2 := &Job{Name: "u2", Nodes: 8, Priority: 9, Est: 20 * time.Second, Submit: 45 * time.Second}
	submitAll(t, s, []*Job{v, u1, u2})
	rep := s.Run()
	// v drains [10,12), u1 runs [12,42), v re-dispatches with its
	// restore transferring over [42,52). u2 preempts it at 45: 3s of
	// the reload ran (charged), 7s is refunded; v drains [45,47), u2
	// runs [47,67), and v's fresh restore rides [67,77).
	if u2.Start != 47*time.Second {
		t.Fatalf("u2 started %v, want 47s", u2.Start)
	}
	if v.End != 567*time.Second {
		t.Fatalf("v ended %v, want 567s (10s fresh restore + 490s left)", v.End)
	}
	if got := v.CheckpointOverhead(); got != 17*time.Second {
		t.Fatalf("v overhead %v, want 17s (2+10-7+2+10)", got)
	}
	if rep.RestoreWait != 0 {
		t.Fatalf("restore wait %v, want 0 (every transfer had the read link)", rep.RestoreWait)
	}
	if v.Preemptions() != 2 {
		t.Fatalf("v preempted %d times, want 2", v.Preemptions())
	}
	if v.BusyTime() != v.Estimate()+v.CheckpointOverhead() {
		t.Fatalf("v busy %v != est %v + overhead %v",
			v.BusyTime(), v.Estimate(), v.CheckpointOverhead())
	}
	checkNoOverlap(t, rep.Jobs, 8)
}

package batch

import (
	"container/heap"
	"sort"
	"time"
)

// queue holds pending jobs. It is a lazily sorted slice rather than a
// heap because every scheduling pass scans the whole eligible prefix in
// order (FIFO head-of-line, backfill candidates), not just the top. The
// discipline comparator is supplied by the scheduler (fair-share
// reorders by decayed usage); every comparator must end on the
// round-robin-key-then-job-ID tie-break (Job.rrKey: submit time, or the
// last slice-suspension instant for a gang suspended at a quantum
// boundary) so equal-priority jobs keep a stable, replay-deterministic
// order and time-sliced gangs resume behind the waiters they yielded
// to.
//
// Removal is O(1) via tombstones: every job carries its slice index
// (Job.qpos), remove nils the slot, and iteration skips nils — so a
// dispatch out of a million-job queue no longer pays a linear identity
// scan plus an order-preserving copy. first tracks the live prefix
// (dispatch order correlates with queue order, so tombstones cluster at
// the front), and the slice compacts when tombstones pass a density
// threshold. Consumers of ordered() and jobs must skip nil entries.
type queue struct {
	jobs  []*Job
	first int // jobs[:first] is all tombstones (skipped without rescanning)
	tombs int // nil entries in jobs
	dirty bool
}

func (q *queue) push(j *Job) {
	j.qpos = len(q.jobs)
	q.jobs = append(q.jobs, j)
	q.dirty = true
}

// queueOrder adapts the job slice to sort.Stable while keeping each
// job's qpos in step with its slot. sort.Stable and sort.SliceStable
// realize the same (unique) stable permutation, so the resulting order
// is identical to the pre-tombstone sort.SliceStable call.
type queueOrder struct {
	jobs []*Job
	less func(a, b *Job) bool
}

func (o queueOrder) Len() int           { return len(o.jobs) }
func (o queueOrder) Less(i, k int) bool { return o.less(o.jobs[i], o.jobs[k]) }
func (o queueOrder) Swap(i, k int) {
	o.jobs[i], o.jobs[k] = o.jobs[k], o.jobs[i]
	o.jobs[i].qpos = i
	o.jobs[k].qpos = k
}

// ordered returns the pending jobs sorted by less; the slice is owned
// by the queue and valid until the next push/remove, and may contain
// nil tombstones the caller must skip. The cached order is reused until
// the queue is marked dirty, so a caller whose comparator depends on
// external state (fair-share usage) must set dirty when that state
// changes.
func (q *queue) ordered(less func(a, b *Job) bool) []*Job {
	if q.dirty {
		q.compact()
		sort.Stable(queueOrder{jobs: q.jobs, less: less})
		q.dirty = false
	}
	for q.first < len(q.jobs) && q.jobs[q.first] == nil {
		q.first++
	}
	return q.jobs[q.first:]
}

// remove deletes a job in O(1) by tombstoning its slot; qpos names the
// slot directly, with an identity check (and a defensive scan fallback)
// so a stale index can never evict the wrong job.
func (q *queue) remove(j *Job) {
	i := j.qpos
	if i < 0 || i >= len(q.jobs) || q.jobs[i] != j {
		i = -1
		for k, other := range q.jobs {
			if other == j {
				i = k
				break
			}
		}
		if i < 0 {
			return
		}
	}
	q.jobs[i] = nil
	q.tombs++
	j.qpos = -1
	// Compact when tombstones dominate, so long-lived queues do not
	// accumulate an unbounded nil tail the passes keep re-skipping.
	if q.tombs > 64 && q.tombs*2 >= len(q.jobs) {
		q.compact()
	}
}

// compact squeezes tombstones out in place, preserving order and
// reindexing qpos.
func (q *queue) compact() {
	if q.tombs == 0 {
		q.first = 0
		return
	}
	w := 0
	for _, j := range q.jobs {
		if j == nil {
			continue
		}
		j.qpos = w
		q.jobs[w] = j
		w++
	}
	for i := w; i < len(q.jobs); i++ {
		q.jobs[i] = nil
	}
	q.jobs = q.jobs[:w]
	q.tombs, q.first = 0, 0
}

func (q *queue) len() int { return len(q.jobs) - q.tombs }

// nextArrival returns the earliest resolved arrival strictly after now
// among pending jobs. The live event loop reads the calendar queue
// instead (Scheduler.arrivals); this linear scan is kept as the
// brute-force reference the index property suite cross-checks.
func (q *queue) nextArrival(now time.Duration) (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, j := range q.jobs {
		if j != nil && j.arrive > now && (!found || j.arrive < best) {
			best = j.arrive
			found = true
		}
	}
	return best, found
}

// eventHeap orders running jobs by completion time (ties by ID for
// determinism); it doubles as the running set for shadow-time
// simulation.
type eventHeap []*Job

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, k int) bool {
	if h[i].End != h[k].End {
		return h[i].End < h[k].End
	}
	return h[i].ID < h[k].ID
}
func (h eventHeap) Swap(i, k int)       { h[i], h[k] = h[k], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Job)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

var _ heap.Interface = (*eventHeap)(nil)

package batch

import (
	"container/heap"
	"sort"
	"time"
)

// queue holds pending jobs. It is a lazily sorted slice rather than a
// heap because every scheduling pass scans the whole eligible prefix in
// order (FIFO head-of-line, backfill candidates), not just the top. The
// discipline comparator is supplied by the scheduler (fair-share
// reorders by decayed usage); every comparator must end on the
// round-robin-key-then-job-ID tie-break (Job.rrKey: submit time, or the
// last slice-suspension instant for a gang suspended at a quantum
// boundary) so equal-priority jobs keep a stable, replay-deterministic
// order and time-sliced gangs resume behind the waiters they yielded
// to.
type queue struct {
	jobs  []*Job
	dirty bool
}

func (q *queue) push(j *Job) {
	q.jobs = append(q.jobs, j)
	q.dirty = true
}

// ordered returns the pending jobs sorted by less; the slice is owned
// by the queue and valid until the next push/remove. The cached order
// is reused until the queue is marked dirty, so a caller whose
// comparator depends on external state (fair-share usage) must set
// dirty when that state changes.
func (q *queue) ordered(less func(a, b *Job) bool) []*Job {
	if q.dirty {
		sort.SliceStable(q.jobs, func(i, k int) bool { return less(q.jobs[i], q.jobs[k]) })
		q.dirty = false
	}
	return q.jobs
}

// remove deletes a job (by identity) preserving order.
func (q *queue) remove(j *Job) {
	for i, other := range q.jobs {
		if other == j {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			return
		}
	}
}

func (q *queue) len() int { return len(q.jobs) }

// nextArrival returns the earliest resolved arrival strictly after now
// among pending jobs, for advancing the clock across idle gaps.
func (q *queue) nextArrival(now time.Duration) (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, j := range q.jobs {
		if j.arrive > now && (!found || j.arrive < best) {
			best = j.arrive
			found = true
		}
	}
	return best, found
}

// eventHeap orders running jobs by completion time (ties by ID for
// determinism); it doubles as the running set for shadow-time
// simulation.
type eventHeap []*Job

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, k int) bool {
	if h[i].End != h[k].End {
		return h[i].End < h[k].End
	}
	return h[i].ID < h[k].ID
}
func (h eventHeap) Swap(i, k int)       { h[i], h[k] = h[k], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Job)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}

var _ heap.Interface = (*eventHeap)(nil)

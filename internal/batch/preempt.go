package batch

import (
	"sort"
	"time"

	"gpucluster/internal/perfmodel"
)

// Priority preemption with checkpoint/restart. When Config.Preempt is
// set and the blocked head of the queue has strictly higher priority
// than running jobs, the scheduler suspends the cheapest sufficient set
// of low-priority gangs: each victim drains a checkpoint of its
// workload image (CheckpointCost, charged as continued node occupancy),
// re-enters the queue with its completed work banked, and pays
// RestoreCost when it is dispatched again. The preemptor then starts on
// the drained nodes through the ordinary scheduling pass — priority
// order guarantees it is offered them first.

// Snapshot is a checkpointed workload image: how far the workload had
// advanced and how large the saved per-node state is. Executors that
// implement Checkpointer attach their private resumable state.
type Snapshot struct {
	// Steps is the number of workload steps completed at capture.
	Steps int
	// Bytes records the per-node image size for inspection — the same
	// figure the default cost model prices prospectively from the
	// job's memory footprint (the drain is charged before the image is
	// captured).
	Bytes int64

	state any // adapter-private resumable state (e.g. a live simulator)
}

// Checkpointer is optionally implemented by an Executor whose workloads
// can be checkpointed at preemption and resumed at the next dispatch.
// Without it, preemption still works — progress accounting is purely
// virtual and Execute runs the whole workload once at final completion.
type Checkpointer interface {
	// Checkpoint advances j's workload to done steps (resuming from
	// prev, which is nil on the first preemption) and captures a
	// restartable image. An error discards the snapshot: the job
	// restarts from scratch at resume, losing its real (but not its
	// virtual) progress.
	Checkpoint(j *Job, prev *Snapshot, done int) (*Snapshot, error)
	// Resume completes j's workload from snap, running the remaining
	// steps, and returns the result summary for the report.
	Resume(j *Job, snap *Snapshot) (detail string, err error)
}

// ckptHardware is the fixed hardware model behind the default
// checkpoint/restore costs: the paper's AGP 8x bus and Gigabit links.
var ckptHardware = perfmodel.Paper()

// DefaultCheckpointCost models draining one node's workload image at a
// checkpoint: the GPU->host readback over the (asymmetric, slow-up) AGP
// bus, then the write to the shared checkpoint store over the node's
// Gigabit link. Gang nodes drain in parallel, so the job pays the
// per-node cost once regardless of width.
func DefaultCheckpointCost(j *Job) time.Duration {
	h := ckptHardware
	bytes := float64(j.memNeed)
	readback := time.Duration(bytes/(h.Bus.UpBandwidth*h.Bus.Efficiency)*float64(time.Second)) + h.Bus.OpLatency
	store := time.Duration(bytes / (h.Net.LinkBandwidth * h.Net.Efficiency) * float64(time.Second))
	return readback + store
}

// DefaultRestoreCost models reloading a checkpointed image at the next
// dispatch: the read back from the store plus the host->GPU download,
// which rides the fast direction of the AGP bus.
func DefaultRestoreCost(j *Job) time.Duration {
	h := ckptHardware
	bytes := float64(j.memNeed)
	fetch := time.Duration(bytes / (h.Net.LinkBandwidth * h.Net.Efficiency) * float64(time.Second))
	download := time.Duration(bytes/(h.Bus.DownBandwidth*h.Bus.Efficiency)*float64(time.Second)) + h.Bus.OpLatency
	return fetch + download
}

// preemptFor suspends the cheapest sufficient set of running gangs so
// the blocked job j can be placed once their checkpoints drain. A
// victim must have strictly lower priority AND rank behind j in the
// active discipline order — under FIFO/EASY/conservative those
// coincide, but under fair-share the second condition stops a heavy
// user's high-priority job from evicting a light user's gang the
// discipline just dispatched (which would otherwise thrash:
// zero-progress checkpoint/restore cycles). It is a no-op unless
// Config.Preempt is set. Waves overlap: a second blocked job may
// trigger its own wave while an earlier one is still draining (its
// drains queue behind the in-flight ones on the shared store link);
// only a job whose *own* wave is still in flight is barred from
// triggering another (wavePending, cleared when the last of its
// victims finishes draining), so one blocked head cannot pile wave
// upon wave for the same placement.
func (s *Scheduler) preemptFor(j *Job) {
	if !s.cfg.Preempt || j.wavePending {
		return
	}
	// Victim order: lowest priority first, then the segment with the
	// least elapsed work (cheapest to abandon), then highest ID.
	// Drains queue behind whatever is already using the store link, so
	// the futile-checkpoint guard prices the wait too: a gang whose
	// natural yield point (completion, or its next quantum boundary)
	// lands before its contended drain would finish frees the nodes no
	// later by just running, and checkpointing it buys nothing.
	queueDelay := s.storeFree - s.now
	if queueDelay < 0 {
		queueDelay = 0
	}
	var cands []*Job
	for _, r := range s.running {
		if r.preempting || r.Priority >= j.Priority || !s.less(j, r) {
			continue
		}
		if r.End-s.now <= queueDelay+s.cfg.CheckpointCost(r) {
			continue
		}
		cands = append(cands, r)
	}
	if len(cands) == 0 {
		return
	}
	sort.Slice(cands, func(i, k int) bool {
		a, b := cands[i], cands[k]
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		if a.segStart != b.segStart {
			return a.segStart > b.segStart // least elapsed first
		}
		return a.ID > b.ID
	})
	used := s.cfg.Cluster.usedCopy()
	var victims []*Job
	admitted := false
	for _, v := range cands {
		for _, nr := range v.Alloc.Ranges {
			for i := nr.First; i < nr.First+nr.Count; i++ {
				used[i] = false
			}
		}
		victims = append(victims, v)
		if s.cfg.Cluster.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement) {
			admitted = true
			break
		}
	}
	if !admitted {
		return // even suspending every eligible gang would not admit j
	}
	j.wavePending = true
	j.waveLeft = int32(len(victims))
	for _, v := range victims {
		v.waveFor = j
		s.beginCheckpoint(v)
		s.fixRunning(v)
	}
}

// beginCheckpoint banks the victim's progress, schedules its drain on
// the shared store link, rewrites its completion event to the drain
// end, and marks it preempting; complete() re-enqueues it when the
// drain event fires. The caller re-establishes heap order (fixRunning
// for a job still in the heap, Push for one just popped).
//
// Drain pricing is bandwidth-contended: every checkpoint writes its
// image over the same Gigabit link to the checkpoint store, so
// concurrent drains serialize on a store-link timeline (storeFree)
// rather than each assuming the full link — N simultaneous checkpoints
// take the sum of their transfer times, not the maximum. The victim
// holds its gang through both the queue wait and the transfer (its
// image is not captured until the link picks it up), and both are
// charged as checkpoint overhead.
func (s *Scheduler) beginCheckpoint(v *Job) {
	elapsed := s.now - v.segStart - v.segRestore
	if elapsed < 0 {
		// Preempted mid-restore: the reload is wasted work, and the
		// part of it that never ran is refunded from the overhead
		// charge — the gang stopped holding nodes the instant the
		// checkpoint began, so busy time stays exactly true work plus
		// charged overhead.
		v.overhead += elapsed
		elapsed = 0
	}
	done := time.Duration(float64(elapsed) / v.segFactor)
	if done > v.workLeft {
		done = v.workLeft
	}
	v.workLeft -= done
	v.doneWork += done
	cost := s.cfg.CheckpointCost(v)
	if cost < 0 {
		cost = 0
	}
	start := s.now
	if s.storeFree > start {
		start = s.storeFree
	}
	s.drainWait += start - s.now
	s.storeFree = start + cost
	v.overhead += (start - s.now) + cost
	v.preempting = true
	v.End = start + cost
	s.ckptInFlight++
	if v.slicing {
		s.sliceEvents++
	} else {
		s.preemptEvents++
	}
}

// requeuePreempted finishes a checkpoint drain: captures the workload
// snapshot (when the executor can), prices the future restore, and puts
// the job back in the queue with its progress banked.
func (s *Scheduler) requeuePreempted(j *Job) {
	s.ckptInFlight--
	j.preempting = false
	if j.slicing {
		j.slices++
		j.slicing = false
	} else {
		j.preempts++
	}
	// Settle the wave this drain belonged to: when the beneficiary's
	// last victim finishes draining, it may trigger a fresh wave if it
	// is still blocked (e.g. a backfill took the freed nodes).
	if b := j.waveFor; b != nil {
		j.waveFor = nil
		if b.waveLeft > 0 {
			b.waveLeft--
		}
		if b.waveLeft == 0 {
			b.wavePending = false
		}
	}
	if ck, ok := s.cfg.Execute.(Checkpointer); ok {
		frac := 1 - float64(j.workLeft)/float64(j.workTotal)
		done := int(frac * float64(j.steps))
		if prev := j.snapshot; prev != nil && done < prev.Steps {
			done = prev.Steps // never rewind a captured image
		}
		if done > j.steps {
			done = j.steps
		}
		snap, err := ck.Checkpoint(j, j.snapshot, done)
		if err != nil {
			snap = nil // image lost: resume restarts from scratch
		}
		j.snapshot = snap
	}
	j.restoreCost = s.cfg.RestoreCost(j)
	if j.restoreCost < 0 {
		j.restoreCost = 0
	}
	j.State = Queued
	s.pending.push(j)
}

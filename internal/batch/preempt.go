package batch

import (
	"sort"
	"time"

	"gpucluster/internal/perfmodel"
)

// Priority preemption with checkpoint/restart. When Config.Preempt is
// set and the blocked head of the queue has strictly higher priority
// than running jobs, the scheduler suspends the cheapest sufficient set
// of low-priority gangs: each victim drains a checkpoint of its
// workload image (CheckpointCost, charged as continued node occupancy),
// re-enters the queue with its completed work banked, and pays
// RestoreCost when it is dispatched again. The preemptor then starts on
// the drained nodes through the ordinary scheduling pass — priority
// order guarantees it is offered them first.

// Snapshot is a checkpointed workload image: how far the workload had
// advanced and how large the saved per-node state is. Executors that
// implement Checkpointer attach their private resumable state.
type Snapshot struct {
	// Steps is the number of workload steps completed at capture.
	Steps int
	// Bytes records the per-node image size for inspection — the same
	// figure the default cost model prices prospectively from the
	// job's memory footprint (the drain is charged before the image is
	// captured).
	Bytes int64

	state any // adapter-private resumable state (e.g. a live simulator)
}

// Checkpointer is optionally implemented by an Executor whose workloads
// can be checkpointed at preemption and resumed at the next dispatch.
// Without it, preemption still works — progress accounting is purely
// virtual and Execute runs the whole workload once at final completion.
type Checkpointer interface {
	// Checkpoint advances j's workload to done steps (resuming from
	// prev, which is nil on the first preemption) and captures a
	// restartable image. An error discards the snapshot: the job
	// restarts from scratch at resume, losing its real (but not its
	// virtual) progress.
	Checkpoint(j *Job, prev *Snapshot, done int) (*Snapshot, error)
	// Resume completes j's workload from snap, running the remaining
	// steps, and returns the result summary for the report.
	Resume(j *Job, snap *Snapshot) (detail string, err error)
}

// ckptHardware is the fixed hardware model behind the default
// checkpoint/restore costs: the paper's AGP 8x bus and Gigabit links.
var ckptHardware = perfmodel.Paper()

// storeTransfer prices moving one node's image over the Gigabit link to
// or from the checkpoint store — the leg both directions of the store
// round-trip share, and the one suspend-to-host skips.
func storeTransfer(j *Job) time.Duration {
	h := ckptHardware
	return time.Duration(float64(j.memNeed) / (h.Net.LinkBandwidth * h.Net.Efficiency) * float64(time.Second))
}

// DefaultHostSuspendCost models the bus-only half of a drain: the
// GPU->host readback over the (asymmetric, slow-up) AGP bus. It is the
// whole price of a suspend-to-host drain — the image stays in node RAM
// — and the first leg of a store checkpoint.
func DefaultHostSuspendCost(j *Job) time.Duration {
	h := ckptHardware
	bytes := float64(j.memNeed)
	return time.Duration(bytes/(h.Bus.UpBandwidth*h.Bus.Efficiency)*float64(time.Second)) + h.Bus.OpLatency
}

// DefaultHostResumeCost models the bus-only half of a restore: the
// host->GPU download riding the fast direction of the AGP bus — the
// whole price of resuming a host-resident image.
func DefaultHostResumeCost(j *Job) time.Duration {
	h := ckptHardware
	bytes := float64(j.memNeed)
	return time.Duration(bytes/(h.Bus.DownBandwidth*h.Bus.Efficiency)*float64(time.Second)) + h.Bus.OpLatency
}

// DefaultCheckpointCost models draining one node's workload image at a
// checkpoint: the GPU->host readback over the AGP bus, then the write
// to the shared checkpoint store over the node's Gigabit link. Gang
// nodes drain in parallel, so the job pays the per-node cost once
// regardless of width.
func DefaultCheckpointCost(j *Job) time.Duration {
	return DefaultHostSuspendCost(j) + storeTransfer(j)
}

// DefaultRestoreCost models reloading a checkpointed image at the next
// dispatch: the read back from the store plus the host->GPU download,
// which rides the fast direction of the AGP bus.
func DefaultRestoreCost(j *Job) time.Duration {
	return storeTransfer(j) + DefaultHostResumeCost(j)
}

// ScaledStoreCosts returns checkpoint/restore cost functions with the
// store leg priced at mbps megabytes per second instead of the paper's
// Gigabit link — the clusterctl -store-bandwidth knob. The bus legs
// keep the calibrated AGP model. mbps must be positive.
func ScaledStoreCosts(mbps float64) (ckpt, restore func(*Job) time.Duration) {
	leg := func(j *Job) time.Duration {
		return time.Duration(float64(j.memNeed) / (mbps * 1e6) * float64(time.Second))
	}
	return func(j *Job) time.Duration { return DefaultHostSuspendCost(j) + leg(j) },
		func(j *Job) time.Duration { return leg(j) + DefaultHostResumeCost(j) }
}

// preemptOutcome reports what preemptFor did (or why it did nothing)
// for a blocked job — the input the decision-explanation layer uses to
// name the head's blocker without re-deriving the preemption logic.
type preemptOutcome int

const (
	// preemptOff: preemption is disabled in the config.
	preemptOff preemptOutcome = iota
	// preemptBarred: the job's own earlier wave is still draining.
	preemptBarred
	// preemptNoVictims: no running gang has strictly lower priority and
	// ranks behind the job in the discipline order.
	preemptNoVictims
	// preemptAntiThrash: lower-priority gangs are running, but every
	// one ranks ahead of the job in the discipline order (fair-share's
	// anti-thrash rule), so none may be evicted.
	preemptAntiThrash
	// preemptFutile: eligible victims exist, but each would yield its
	// nodes before its contended checkpoint drain would finish.
	preemptFutile
	// preemptNotAdmitted: a wave was attempted but even suspending
	// every eligible gang would not seat the job.
	preemptNotAdmitted
	// preemptWave: a wave launched; the job now waits for its victims'
	// checkpoints to land.
	preemptWave
)

// preemptFor suspends the cheapest sufficient set of running gangs so
// the blocked job j can be placed once their checkpoints drain. A
// victim must have strictly lower priority AND rank behind j in the
// active discipline order — under FIFO/EASY/conservative those
// coincide, but under fair-share the second condition stops a heavy
// user's high-priority job from evicting a light user's gang the
// discipline just dispatched (which would otherwise thrash:
// zero-progress checkpoint/restore cycles). It is a no-op unless
// Config.Preempt is set. Waves overlap: a second blocked job may
// trigger its own wave while an earlier one is still draining (its
// drains queue behind the in-flight ones on the shared store link);
// only a job whose *own* wave is still in flight is barred from
// triggering another (wavePending, cleared when the last of its
// victims finishes draining), so one blocked head cannot pile wave
// upon wave for the same placement. The returned outcome feeds the
// decision-explanation layer.
func (s *Scheduler) preemptFor(j *Job) preemptOutcome {
	if !s.cfg.Preempt {
		return preemptOff
	}
	if j.wavePending {
		return preemptBarred
	}
	// Victim order: lowest priority first, then the segment with the
	// least elapsed work (cheapest to abandon), then highest ID.
	// Store drains queue behind whatever is already using the write
	// direction of the store link, so the futile-checkpoint guard
	// prices the wait too: a gang whose natural yield point
	// (completion, or its next quantum boundary) lands before its
	// contended drain would finish frees the nodes no later by just
	// running, and checkpointing it buys nothing. A suspend-to-host
	// drain skips the link entirely, so only its bus readback counts.
	var cands []*Job
	thrash, futile := 0, 0
	for _, r := range s.running {
		if r.preempting || r.banking || r.Priority >= j.Priority {
			continue
		}
		if !s.less(j, r) {
			thrash++
			continue
		}
		if r.End-s.now <= s.drainEstimate(r) {
			futile++
			continue
		}
		cands = append(cands, r)
	}
	if len(cands) == 0 {
		switch {
		case futile > 0:
			return preemptFutile
		case thrash > 0:
			return preemptAntiThrash
		}
		return preemptNoVictims
	}
	sort.Slice(cands, func(i, k int) bool {
		a, b := cands[i], cands[k]
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		if a.segStart != b.segStart {
			return a.segStart > b.segStart // least elapsed first
		}
		return a.ID > b.ID
	})
	c := s.cfg.Cluster
	var victims []*Job
	admitted := false
	// The admission trial runs with j's own resident image lifted
	// (its dispatch spends that memory) — a head self-blocked by its
	// own image could otherwise never get a wave admitted onto its
	// home nodes.
	s.withOwnImageLifted(j, func() {
		used := c.usedCopy()
		var trial []*Job // host-eligible victims, image reservation held for the trial
		for _, v := range cands {
			for _, nr := range v.Alloc.Ranges {
				for i := nr.First; i < nr.First+nr.Count; i++ {
					used[i] = false
				}
			}
			victims = append(victims, v)
			// A host-eligible victim's image will pin its footprint on
			// the freed nodes: the admission check must see that
			// memory as gone, or the wave drains and j still cannot
			// seat (then pays a demotion on top of the suspension it
			// just funded).
			if s.hostEligible(v) {
				c.reserve(v.Alloc, v.memNeed)
				trial = append(trial, v)
			}
			if c.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement) {
				admitted = true
				break
			}
		}
		if !admitted {
			// The freed nodes alone don't seat j — perhaps the
			// victims' own resident images are what blocks it. Forcing
			// those victims to the store tier (no image, full drain
			// price) keeps the wave viable without an immediate
			// demotion round-trip. The flip re-prices the drain, so
			// the futile-checkpoint rule is re-checked at the store
			// tariff: a victim that would finish before its store
			// drain does cannot be flipped.
			for _, v := range trial {
				if v.End-s.now <= s.storeDrainEstimate(v) {
					continue
				}
				c.unreserve(v.Alloc, v.memNeed)
				v.forceStore = true
				if c.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement) {
					admitted = true
					break
				}
			}
			// Minimize the flips: an early victim's image may never
			// have been in j's way (small image, its nodes stay
			// eligible) — if re-pinning it leaves j placeable, it
			// keeps the cheap host tier.
			if admitted {
				for _, v := range trial {
					if !v.forceStore {
						continue
					}
					c.reserve(v.Alloc, v.memNeed)
					if c.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement) {
						v.forceStore = false
					} else {
						c.unreserve(v.Alloc, v.memNeed)
					}
				}
			}
		}
		for _, v := range trial {
			if !v.forceStore {
				c.unreserve(v.Alloc, v.memNeed) // trial reservation only
			}
		}
	})
	if !admitted {
		for _, v := range victims {
			v.forceStore = false
		}
		return preemptNotAdmitted // even suspending every eligible gang would not admit j
	}
	j.wavePending = true
	j.waveLeft = int32(len(victims))
	for _, v := range victims {
		v.waveFor = j
		s.beginCheckpoint(v)
		s.fixRunning(v)
	}
	return preemptWave
}

// beginCheckpoint banks the victim's progress, schedules its drain —
// on the write direction of the shared store link, or bus-only into
// host RAM when the suspend-to-host tier applies — rewrites its
// completion event to the drain end, and marks it preempting;
// complete() re-enqueues it when the drain event fires. The caller
// re-establishes heap order (fixRunning for a job still in the heap,
// Push for one just popped).
//
// Store-drain pricing is bandwidth-contended: every checkpoint writes
// its image over the same Gigabit link to the checkpoint store, so
// concurrent drains serialize on the link's write timeline rather than
// each assuming the full link — N simultaneous checkpoints take the
// sum of their transfer times, not the maximum. The victim holds its
// gang through both the queue wait and the transfer (its image is not
// captured until the link picks it up), and both are charged as
// checkpoint overhead. Host drains skip the link: each gang's readback
// rides its own AGP bus, so concurrent host suspensions run in
// parallel.
func (s *Scheduler) beginCheckpoint(v *Job) {
	// The tier decision reads the read-reservation fields (a gang
	// mid-store-restore has no state in RAM to suspend), so settle it
	// before the refund logic clears them.
	hostTier := s.hostEligible(v) && !v.forceStore
	v.forceStore = false
	v.ckptDue = false // the drain supersedes any armed proactive bank
	s.bankProgress(v)
	var start, cost time.Duration
	if hostTier {
		cost = s.cfg.HostSuspendCost(v)
		if cost < 0 {
			cost = 0
		}
		start = s.now
		v.hostDrain = true
		s.hostSuspends++
	} else {
		cost = s.cfg.CheckpointCost(v)
		if cost < 0 {
			cost = 0
		}
		start = s.link.reserveWrite(s.now, cost)
		s.drainWait += start - s.now
		if s.met != nil {
			s.met.drainWait.Observe((start - s.now).Seconds())
		}
	}
	v.overhead += (start - s.now) + cost
	v.preempting = true
	// The drain rewrites the completion event: re-key the end-time
	// treap in step (the caller re-establishes heap order).
	s.ends.del(v.End, v.ID)
	v.End = start + cost
	s.ends.add(v.End, v.ID, v.Alloc.Count)
	s.ckptInFlight++
	if v.slicing {
		s.sliceEvents++
	} else {
		s.preemptEvents++
	}
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvDrainBegin, Job: v.ID, From: s.now, To: start + cost,
			Alloc: v.Alloc, Detail: drainDetail(hostTier, v.slicing)})
		if !hostTier {
			s.record(Event{Time: s.now, Kind: EvStoreWrite, Job: v.ID, From: start, To: start + cost, Detail: "drain"})
		}
	}
	if s.met != nil {
		if v.slicing {
			s.met.slices.Inc()
		} else {
			s.met.preempts.Inc()
		}
	}
}

// bankProgress settles a running segment interrupted at the current
// instant — a checkpoint drain beginning, or a mid-run Cancel: it
// credits the work the segment completed against workLeft/doneWork and
// refunds an interrupted restore prefix. A gang cut off mid-restore
// never ran the reload, so the part of the prefix that never elapsed
// comes off the overhead charge — the gang stops holding nodes at this
// instant, keeping busy time exactly true work plus charged overhead.
// A store restore also gives its link slot back: the untransferred
// tail frees for the next restore, and queue wait that was charged but
// never served comes off the contention statistic.
func (s *Scheduler) bankProgress(v *Job) {
	elapsed := s.now - v.segStart - v.segRestore
	if elapsed < 0 {
		v.overhead += elapsed
		if v.readEnd > 0 {
			// Unserved queue wait comes off the contention statistic,
			// capped at what this segment was actually charged (a
			// migrating job's wait clock only started after its
			// outbound write leg).
			if refund := v.readStart - s.now; refund > 0 {
				if refund > v.readWait {
					refund = v.readWait
				}
				s.restoreWait -= refund
			}
			s.link.releaseRead(v.readStart, v.readEnd, s.now)
			if s.rec != nil {
				s.record(Event{Time: s.now, Kind: EvStoreRead, Job: v.ID, From: v.readStart, To: s.now, Detail: "cancel"})
			}
		}
		elapsed = 0
	}
	v.readStart, v.readEnd, v.readWait = 0, 0, 0
	done := time.Duration(float64(elapsed) / v.segFactor)
	if done > v.workLeft {
		done = v.workLeft
	}
	v.workLeft -= done
	v.doneWork += done
}

// loseProgress settles a running segment a fault cut off. The
// interrupted-restore refund mirrors bankProgress exactly — a gang
// killed mid-restore never ran the reload, so the unelapsed prefix
// comes off the overhead charge and the read slot frees — but the work
// elapsed since the last banked boundary is *lost*, not banked: the job
// redoes it from its checkpoint, and the wall time its gang already
// held lands in Report.LostWork, keeping busy time exactly work +
// overhead + lost work.
func (s *Scheduler) loseProgress(v *Job) {
	elapsed := s.now - v.segStart - v.segRestore
	if elapsed < 0 {
		v.overhead += elapsed
		if v.readEnd > 0 {
			if refund := v.readStart - s.now; refund > 0 {
				if refund > v.readWait {
					refund = v.readWait
				}
				s.restoreWait -= refund
			}
			s.link.releaseRead(v.readStart, v.readEnd, s.now)
			if s.rec != nil {
				s.record(Event{Time: s.now, Kind: EvStoreRead, Job: v.ID, From: v.readStart, To: s.now, Detail: "cancel"})
			}
		}
		elapsed = 0
	}
	v.readStart, v.readEnd, v.readWait = 0, 0, 0
	v.lostWork += elapsed
	s.lostWork += elapsed
	if s.met != nil {
		s.met.lostWork.Add(elapsed.Seconds())
	}
}

// drainDetail names a drain's tier and cause with constant strings
// (the recorder hot path must not allocate).
func drainDetail(hostTier, slicing bool) string {
	switch {
	case hostTier && slicing:
		return "host slice"
	case hostTier:
		return "host preempt"
	case slicing:
		return "store slice"
	}
	return "store preempt"
}

// requeuePreempted finishes a checkpoint drain: captures the workload
// snapshot (when the executor can), prices the future restore, and puts
// the job back in the queue with its progress banked.
func (s *Scheduler) requeuePreempted(j *Job) {
	s.ckptInFlight--
	j.preempting = false
	if j.slicing {
		j.slices++
		j.slicing = false
	} else {
		j.preempts++
	}
	// Settle the wave this drain belonged to: when the beneficiary's
	// last victim finishes draining, it may trigger a fresh wave if it
	// is still blocked (e.g. a backfill took the freed nodes).
	if b := j.waveFor; b != nil {
		j.waveFor = nil
		if b.waveLeft > 0 {
			b.waveLeft--
		}
		if b.waveLeft == 0 {
			b.wavePending = false
		}
	}
	if j.canceled {
		// Cancel hit the job while its checkpoint was draining: the
		// drain had to land (the nodes and the link slot were already
		// committed), but the image is discarded instead of requeued.
		j.hostDrain = false
		j.restoreCost = 0
		s.finishCanceled(j)
		return
	}
	if ck, ok := s.cfg.Execute.(Checkpointer); ok {
		frac := 1 - float64(j.workLeft)/float64(j.workTotal)
		done := int(frac * float64(j.steps))
		if prev := j.snapshot; prev != nil && done < prev.Steps {
			done = prev.Steps // never rewind a captured image
		}
		if done > j.steps {
			done = j.steps
		}
		snap, err := ck.Checkpoint(j, j.snapshot, done)
		if err != nil {
			snap = nil // image lost: resume restarts from scratch
		}
		j.snapshot = snap
	}
	if j.hostDrain {
		// Suspend-to-host: the image stays resident in the gang's node
		// RAM. The nodes are free for other gangs, but the image pins
		// its footprint until the job resumes (cheap, bus-only) or a
		// memory-squeezed waiter forces a demotion to the store.
		j.hostDrain = false
		j.hostImage = true
		j.hostAlloc = j.Alloc
		s.cfg.Cluster.reserve(j.hostAlloc, j.memNeed)
		j.restoreCost = s.cfg.HostResumeCost(j)
		if s.rec != nil {
			s.record(Event{Time: s.now, Kind: EvHostSuspend, Job: j.ID, Alloc: j.hostAlloc})
			s.record(Event{Time: s.now, Kind: EvRequeue, Job: j.ID, Detail: "host"})
		}
	} else {
		j.restoreCost = s.cfg.RestoreCost(j)
		if s.rec != nil {
			s.record(Event{Time: s.now, Kind: EvRequeue, Job: j.ID, Detail: "store"})
		}
	}
	if j.restoreCost < 0 {
		j.restoreCost = 0
	}
	j.State = Queued
	s.pending.push(j)
}

// drainEstimate prices the drain a checkpoint of r started now would
// take, including the write-link queue wait for a store drain — the
// futile-suspension guards compare it to the victim's natural yield
// point.
func (s *Scheduler) drainEstimate(r *Job) time.Duration {
	if s.hostEligible(r) {
		return s.cfg.HostSuspendCost(r)
	}
	return s.storeDrainEstimate(r)
}

// storeDrainEstimate prices a store-tier drain of r started now: the
// write-direction queue wait plus the full checkpoint transfer. The
// forceStore flip sites re-check futility against this tariff.
func (s *Scheduler) storeDrainEstimate(r *Job) time.Duration {
	return s.link.writeDelay(s.now) + s.cfg.CheckpointCost(r)
}

// storeWriteLeg prices moving r's image out of host RAM into the
// checkpoint store: the full checkpoint cost minus the bus-only drain
// already paid at suspension — with the default model, exactly the
// store transfer the suspension skipped. Shared by demotions and the
// outbound leg of a migration so the same physical write can never be
// priced two ways.
func (s *Scheduler) storeWriteLeg(r *Job) time.Duration {
	cost := s.cfg.CheckpointCost(r) - s.cfg.HostSuspendCost(r)
	if cost < 0 {
		cost = 0
	}
	return cost
}

// hostEligible reports whether a checkpoint of r can stay in host RAM:
// the suspend-to-host tier is on, r's state is actually on its nodes,
// and every node of r's gang has room for the image alongside whatever
// earlier suspensions already pinned.
func (s *Scheduler) hostEligible(r *Job) bool {
	if !s.cfg.SuspendToHost {
		return false
	}
	// A gang still inside its restore prefix with a store read booked
	// has no complete state on its nodes — the authoritative image is
	// in the store (or mid-transfer to it, for a migration's write
	// leg), so there is nothing to suspend into RAM. Its checkpoint
	// takes the store path, whose drain pricing stands either way.
	if r.readEnd > 0 && s.now < r.segStart+r.segRestore {
		return false
	}
	for _, nr := range r.Alloc.Ranges {
		for i := nr.First; i < nr.First+nr.Count; i++ {
			if s.cfg.Cluster.avail(i) < r.memNeed {
				return false
			}
		}
	}
	return true
}

package batch

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Decision explainability: with a Recorder attached, every scheduling
// pass records one EvBlocked event per queued, arrived job it scanned
// and skipped, classified by the obstacle that actually applied at
// that instant. The classification runs only when a recorder is
// attached — the hot path with observability off never pays for it —
// and reads the same state the scheduling decision just read, so the
// recorded reason is the decision's reason, not a reconstruction.

// BlockReason classifies why a queued job did not start on a pass.
type BlockReason int

const (
	// ReasonNone is the zero value; it never appears in the stream.
	ReasonNone BlockReason = iota
	// ReasonHeadOfLine: under FIFO only the queue head may start, and
	// the head is blocked ahead of this job.
	ReasonHeadOfLine
	// ReasonNoPlacement: no candidate node set seats the gang — not
	// enough free nodes, or free nodes the engine cannot assemble
	// (first-fit contiguity).
	ReasonNoPlacement
	// ReasonMemoryPinned: free nodes exist for the gang, but
	// suspended-to-host images pin their memory below the job's
	// per-node footprint.
	ReasonMemoryPinned
	// ReasonShadow: a backfill candidate whose remaining estimate
	// (plus restore charges) would overrun the blocked head's
	// reservation.
	ReasonShadow
	// ReasonLinkBusy: the candidate fits the shadow on transfer cost
	// alone, but the store link's queue delay ahead of its restore
	// pushes it past the reservation.
	ReasonLinkBusy
	// ReasonFutileCheckpoint: preemption found victims, but each would
	// finish (or yield) before its contended checkpoint drain would,
	// so suspending them frees nothing sooner.
	ReasonFutileCheckpoint
	// ReasonAntiThrash: lower-priority gangs are running, but the
	// discipline order ranks them ahead of this job (fair-share's
	// anti-thrash rule), so preemption refuses to evict them.
	ReasonAntiThrash
	// ReasonWaveDraining: a preemption wave is draining on this job's
	// behalf — it waits for its victims' checkpoints to land.
	ReasonWaveDraining
	// ReasonEvicting: the job's own host image is mid-eviction; it
	// cannot start before the write settles.
	ReasonEvicting
	// ReasonReservation: the conservative profile holds this job to a
	// reserved future slot (From on the event is the reserved start).
	ReasonReservation
	// ReasonFault: the gang does not fit the machine that remains while
	// injected faults hold capacity down — downed nodes, or a severed
	// trunk refusing every crossing placement.
	ReasonFault
	numBlockReasons
)

func (r BlockReason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonHeadOfLine:
		return "head-of-line"
	case ReasonNoPlacement:
		return "no-placement"
	case ReasonMemoryPinned:
		return "memory-pinned"
	case ReasonShadow:
		return "shadow"
	case ReasonLinkBusy:
		return "link-busy"
	case ReasonFutileCheckpoint:
		return "futile-checkpoint"
	case ReasonAntiThrash:
		return "anti-thrash"
	case ReasonWaveDraining:
		return "wave-draining"
	case ReasonEvicting:
		return "evicting"
	case ReasonReservation:
		return "reserved"
	case ReasonFault:
		return "fault"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// beginPass numbers a scheduling pass for EvBlocked events. The
// counter advances whether or not a recorder is attached, so pass
// numbers stay comparable when one is attached mid-study.
func (s *Scheduler) beginPass() int {
	s.passes++
	if s.met != nil {
		s.met.passes.Inc()
	}
	return s.passes
}

// explain records one EvBlocked event; at carries the shadow or
// reservation bound when one applies (zero otherwise). Callers on the
// hot path guard with s.rec != nil before doing any classification
// work; the guard here keeps misuse harmless.
func (s *Scheduler) explain(pass int, j *Job, reason BlockReason, at time.Duration) {
	if s.rec == nil {
		return
	}
	s.record(Event{Time: s.now, Kind: EvBlocked, Job: j.ID, Pass: pass, Reason: reason, From: at})
}

// explainRest records ReasonHeadOfLine for every arrived job in rest —
// the FIFO tail behind a blocked head.
func (s *Scheduler) explainRest(pass int, rest []*Job) {
	if s.rec == nil {
		return
	}
	for _, j := range rest {
		if j == nil || j.arrive > s.now {
			continue
		}
		s.explain(pass, j, ReasonHeadOfLine, 0)
	}
}

// explainHead classifies a blocked queue head: the preemption outcome
// wins when it names a specific guard (a wave it is waiting on, the
// futile-checkpoint rule, fair-share anti-thrash); otherwise the
// placement probe decides.
func (s *Scheduler) explainHead(pass int, j *Job, out preemptOutcome) {
	if s.rec == nil {
		return
	}
	var reason BlockReason
	switch out {
	case preemptWave, preemptBarred:
		reason = ReasonWaveDraining
	case preemptFutile:
		reason = ReasonFutileCheckpoint
	case preemptAntiThrash:
		reason = ReasonAntiThrash
	default:
		reason = s.classifyStart(j)
	}
	s.explain(pass, j, reason, 0)
}

// explainBackfillFail classifies a backfill candidate that was offered
// the machine and refused: either no placement seats it at all, its
// memory is pinned by resident images, or every placement fits but
// overruns the head's reservation — with the link-queue delay split
// out from the pure shadow violation.
func (s *Scheduler) explainBackfillFail(pass int, j *Job, shadow time.Duration) {
	if s.rec == nil {
		return
	}
	reason := s.classifyStart(j)
	if reason == ReasonShadow {
		reason = s.shadowOrLinkBusy(j, shadow)
	}
	s.explain(pass, j, reason, shadow)
}

// shadowOrLinkBusy refines a shadow violation: when the candidate
// would fit the reservation if its restore skipped the store link's
// queue, the link is the binding constraint.
func (s *Scheduler) shadowOrLinkBusy(j *Job, shadow time.Duration) BlockReason {
	if j.restoreCost > 0 && s.restorePrefix(j) > j.restoreCost &&
		s.now+j.restoreCost+j.estLeft() <= shadow {
		return ReasonLinkBusy
	}
	return ReasonShadow
}

// classifyStart explains a failed placement attempt at the current
// instant: distinguishes "no node set seats the gang" from "free nodes
// exist but suspended images pin the memory" from "placeable, so
// something else (a backfill limit) refused it". Runs the same
// placement probe the decision ran, with the job's own image lifted.
func (s *Scheduler) classifyStart(j *Job) BlockReason {
	c := s.cfg.Cluster
	reason := ReasonNoPlacement
	s.withOwnImageLifted(j, func() {
		used := c.usedCopy()
		switch {
		case c.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement):
			reason = ReasonShadow
		case c.placeableIgnoringMemory(used, j.Nodes, s.cfg.Placement):
			reason = ReasonMemoryPinned
		case c.downCount > 0 || c.trunkDown:
			// Would the gang seat if the faults lifted? Probe with downed
			// nodes marked free and the trunk restored: if yes, the
			// injected faults are the binding constraint.
			if c.trunkDown {
				c.trunkDown = false
				defer func() { c.trunkDown = true }()
			}
			for i := range used {
				if c.down[i] {
					used[i] = false
				}
			}
			if c.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement) ||
				c.placeableIgnoringMemory(used, j.Nodes, s.cfg.Placement) {
				reason = ReasonFault
			}
		}
	})
	return reason
}

// BlockCount is one reason's share of a job's blocked passes.
type BlockCount struct {
	Reason BlockReason
	Passes int
}

// Explanation aggregates a job's EvBlocked events: how many passes
// scanned and skipped it, split by reason.
type Explanation struct {
	// JobID is the explained job.
	JobID int
	// BlockedPasses is the total number of passes that skipped the job.
	BlockedPasses int
	// Counts lists the per-reason pass counts, most frequent first
	// (ties broken by reason order, so the split is deterministic).
	Counts []BlockCount
}

// Dominant returns the most frequent blocker, or ReasonNone for a job
// never blocked.
func (e Explanation) Dominant() BlockReason {
	if len(e.Counts) == 0 {
		return ReasonNone
	}
	return e.Counts[0].Reason
}

// String renders the per-pass blocker breakdown.
func (e Explanation) String() string {
	if e.BlockedPasses == 0 {
		return fmt.Sprintf("job %d: never blocked (started on first eligible pass)", e.JobID)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "job %d: blocked on %d scheduler passes:", e.JobID, e.BlockedPasses)
	for _, c := range e.Counts {
		fmt.Fprintf(&b, " %s=%d", c.Reason, c.Passes)
	}
	return b.String()
}

// ExplainEvents aggregates the EvBlocked events concerning one job.
func ExplainEvents(events []Event, jobID int) Explanation {
	var counts [numBlockReasons]int
	total := 0
	for _, ev := range events {
		if ev.Kind != EvBlocked || ev.Job != jobID {
			continue
		}
		counts[ev.Reason]++
		total++
	}
	e := Explanation{JobID: jobID, BlockedPasses: total}
	for r, n := range counts {
		if n > 0 {
			e.Counts = append(e.Counts, BlockCount{Reason: BlockReason(r), Passes: n})
		}
	}
	sort.SliceStable(e.Counts, func(i, k int) bool { return e.Counts[i].Passes > e.Counts[k].Passes })
	return e
}

// Explain aggregates the report's blocked-pass record for one job —
// empty (never blocked) when no recorder was attached to the run.
func (r Report) Explain(jobID int) Explanation {
	return ExplainEvents(r.Events, jobID)
}

package batch

import (
	"sort"
	"time"
)

// Suspend-to-host (Config.SuspendToHost): the cheap suspension tier.
// A checkpointed gang whose image fits in its nodes' free host memory
// skips the store round-trip entirely — the drain is the AGP readback
// into RAM, the resume is the download back, and neither touches the
// shared store link. The price is spatial instead of temporal: the
// image pins its footprint on the home nodes (Cluster.reserved), so a
// memory-hungry gang may find free nodes it cannot use. When that
// happens, the blocked job forces a *demotion*: the resident image is
// written out to the checkpoint store — paying, on the link's write
// timeline, exactly the store transfer its suspension skipped — and
// the memory frees when the write completes. A demoted job's next
// restore is a full store restore on the read timeline.
//
// GraCCA-style clusters (Schive et al.) and the classroom machines of
// George (2020) live on this trade: host memory is the fast checkpoint
// tier, network storage the capacious one, and the scheduler's job is
// to spill between them only under pressure.
//
// Accounting: the demotion write is NOT charged to the demoted job's
// overhead — the job holds no nodes while it drains out, and the
// busy ≡ work + overhead invariant prices only node-holding time. The
// cost shows up where it is really paid: the write link is occupied
// (delaying drains and, in half-duplex, restores), the waiter waits
// for the settlement, and the demoted job's next restore rides the
// store path. Report.Demotions / Report.DemotionTime record it.

// withOwnImageLifted runs body with j's own host-image reservation
// lifted: a hypothetical placement of j spends that memory exactly the
// way tryStart will at the real dispatch, so every decision site that
// asks "could j be seated?" — wave admission, the EASY shadow,
// quantum-boundary yields, demotion pressure, conservative capacity
// bounds — must not count j's own image against it. A job
// mid-eviction keeps its reservation (the write is using it).
func (s *Scheduler) withOwnImageLifted(j *Job, body func()) {
	if !j.hostImage || j.demoteEnd != 0 {
		body()
		return
	}
	c := s.cfg.Cluster
	c.unreserve(j.hostAlloc, j.memNeed)
	body()
	c.reserve(j.hostAlloc, j.memNeed)
}

// demoteFor begins evicting suspended-to-host images when the blocked
// job j is memory-constrained: free nodes exist for its gang, but
// pinned images squeeze their available memory below j's footprint.
// The smallest sufficient set of images (ascending job ID, so replays
// are deterministic) starts its store write on the link's write
// timeline; each reservation holds until its write settles, when the
// scheduler re-runs placement. A no-op when j is blocked by node
// occupancy — demotion cannot manufacture free nodes.
func (s *Scheduler) demoteFor(j *Job) {
	if !s.cfg.SuspendToHost || j.wavePending {
		// A preemption wave draining on j's behalf already accounts
		// for the capacity j needs (including the victims' own future
		// images); demoting more images on top would pay both prices
		// for one placement. If j is still blocked when the wave
		// settles, the next pass gets another look.
		return
	}
	s.withOwnImageLifted(j, func() { s.evictFor(j) })
}

// evictFor is demoteFor's body, run with j's own image lifted.
func (s *Scheduler) evictFor(j *Job) {
	c := s.cfg.Cluster
	used := c.usedCopy()
	if c.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement) {
		return // placeable already: blocked by policy, not memory
	}
	// Memory already on its way out — in-flight demotion writes and
	// migration pins — settles without any help, so count it as gone
	// before picking fresh victims: a pass firing inside an eviction
	// window must not evict one more image per event while the first
	// write finishes. (Snapshots, not the live slices: demote() below
	// appends to s.demoting, and those new entries keep their
	// reservations.)
	inflight := append([]*Job(nil), s.demoting...)
	pins := append([]pin(nil), s.pinned...)
	for _, d := range inflight {
		c.unreserve(d.hostAlloc, d.memNeed)
	}
	for _, p := range pins {
		c.unreserve(p.alloc, p.bytes)
	}
	defer func() {
		for _, d := range inflight {
			c.reserve(d.hostAlloc, d.memNeed)
		}
		for _, p := range pins {
			c.reserve(p.alloc, p.bytes)
		}
	}()
	if c.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement) {
		return // the settlements already in flight will admit j
	}
	var images []*Job
	for _, p := range s.pending.jobs {
		if p != nil && p.hostImage && p.demoteEnd == 0 && p != j {
			images = append(images, p)
		}
	}
	if len(images) == 0 {
		return
	}
	sort.Slice(images, func(i, k int) bool { return images[i].ID < images[k].ID })
	var picked []*Job
	admitted := false
	for _, d := range images {
		c.unreserve(d.hostAlloc, d.memNeed)
		picked = append(picked, d)
		if c.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement) {
			admitted = true
			break
		}
	}
	if !admitted {
		// Even a fully drained RAM tier would not admit j: put every
		// trial release back and leave the images resident.
		for _, d := range picked {
			c.reserve(d.hostAlloc, d.memNeed)
		}
		return
	}
	// Minimize: an early trial release may have contributed nothing
	// (its nodes are occupied, or a later image alone unblocked j).
	// Keep each picked image resident if re-pinning it leaves j
	// placeable; demoting it would pay a store write for no one.
	kept := picked[:0]
	for _, d := range picked {
		c.reserve(d.hostAlloc, d.memNeed)
		if c.canPlace(used, j.Nodes, j.memNeed, s.cfg.Placement) {
			continue // stays in RAM
		}
		c.unreserve(d.hostAlloc, d.memNeed)
		kept = append(kept, d)
	}
	// The evicted images' memory stays pinned until each write
	// settles: re-pin now, release at settleDemotions.
	for _, d := range kept {
		c.reserve(d.hostAlloc, d.memNeed)
		s.demote(d)
	}
}

// demote books one image's eviction write on the store link: the
// transfer is the store leg its host suspension skipped (checkpoint
// cost minus the bus-only drain), it queues behind in-flight drains,
// and the image's memory stays pinned until the write ends.
func (s *Scheduler) demote(d *Job) {
	cost := s.storeWriteLeg(d)
	start := s.link.reserveWrite(s.now, cost)
	d.demoteEnd = start + cost
	s.demoting = append(s.demoting, d)
	s.demotions++
	s.demoteTime += cost
	if s.rec != nil {
		s.record(Event{Time: s.now, Kind: EvDemoteBegin, Job: d.ID, From: start, To: d.demoteEnd, Alloc: d.hostAlloc})
		s.record(Event{Time: s.now, Kind: EvStoreWrite, Job: d.ID, From: start, To: d.demoteEnd, Detail: "demote"})
	}
	if s.met != nil {
		s.met.demotions.Inc()
	}
}

// pin is host memory held past its owner's dispatch: a migrating job's
// home image stays pinned until its outbound store write settles.
type pin struct {
	alloc Allocation
	bytes int64
	at    time.Duration // settlement instant: unreserve then
}

// pinUntil schedules the release of an already-made reservation at a
// future settlement instant.
func (s *Scheduler) pinUntil(a Allocation, bytes int64, at time.Duration) {
	s.pinned = append(s.pinned, pin{alloc: a, bytes: bytes, at: at})
}

// settleDemotions releases the reservations of images whose store
// write has completed by the current instant — demoted images get
// their next dispatch re-priced as a full store restore, migration
// pins simply unreserve.
func (s *Scheduler) settleDemotions() {
	kept := s.demoting[:0]
	for _, d := range s.demoting {
		if d.demoteEnd > s.now {
			kept = append(kept, d)
			continue
		}
		if s.rec != nil {
			s.record(Event{Time: s.now, Kind: EvDemoteEnd, Job: d.ID, Alloc: d.hostAlloc})
		}
		s.cfg.Cluster.unreserve(d.hostAlloc, d.memNeed)
		d.hostImage = false
		d.hostAlloc = Allocation{}
		d.demoteEnd = 0
		d.restoreCost = s.cfg.RestoreCost(d)
		if d.restoreCost < 0 {
			d.restoreCost = 0
		}
	}
	s.demoting = kept
	keptPins := s.pinned[:0]
	for _, p := range s.pinned {
		if p.at > s.now {
			keptPins = append(keptPins, p)
			continue
		}
		s.cfg.Cluster.unreserve(p.alloc, p.bytes)
	}
	s.pinned = keptPins
}

// nextDemotion returns the earliest pending settlement (demotion write
// or migration pin) — an event the Run loop must advance to even when
// nothing runs, or the memory those reservations hold would never
// free for whoever waits on it.
func (s *Scheduler) nextDemotion() (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, d := range s.demoting {
		if !found || d.demoteEnd < best {
			best = d.demoteEnd
			found = true
		}
	}
	for _, p := range s.pinned {
		if !found || p.at < best {
			best = p.at
			found = true
		}
	}
	return best, found
}

package batch

import (
	"sort"
	"strings"
	"testing"
	"time"

	"gpucluster/internal/netsim"
	"gpucluster/internal/sched"
)

func newTestCluster(n int) *Cluster {
	return NewCluster(n, netsim.GigabitSwitch(n))
}

// checkNoOverlap reconstructs per-node occupancy from completed jobs'
// run segments (preempted jobs hold several gangs over disjoint
// intervals) and fails on any instant where two gangs share a node.
func checkNoOverlap(t *testing.T, jobs []*Job, nodes int) {
	t.Helper()
	type span struct{ start, end time.Duration }
	perNode := make([][]span, nodes)
	for _, j := range jobs {
		if len(j.History) == 0 {
			t.Fatalf("%s finished with no run segments", j)
		}
		for _, seg := range j.History {
			for _, i := range seg.Alloc.Nodes() {
				perNode[i] = append(perNode[i], span{seg.Start, seg.End})
			}
		}
	}
	for n, spans := range perNode {
		sort.Slice(spans, func(i, k int) bool { return spans[i].start < spans[k].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				t.Fatalf("node %d double-booked: [%v,%v) overlaps [%v,%v)",
					n, spans[i-1].start, spans[i-1].end, spans[i].start, spans[i].end)
			}
		}
	}
}

func submitAll(t *testing.T, s *Scheduler, jobs []*Job) {
	t.Helper()
	for _, j := range jobs {
		if err := s.Submit(j); err != nil {
			t.Fatalf("submit %s: %v", j, err)
		}
	}
}

func TestSchedule1000MixedJobs(t *testing.T) {
	const nodes = 32
	jobs := SyntheticMix(7, 1200, nodes)
	kinds := map[JobKind]int{}
	for _, j := range jobs {
		kinds[j.Kind]++
	}
	for k := JobKind(0); k < numKinds; k++ {
		if kinds[k] == 0 {
			t.Fatalf("mix has no %v jobs", k)
		}
	}
	for _, pol := range []Policy{FIFO, Backfill} {
		s := New(Config{Cluster: newTestCluster(nodes), Policy: pol})
		submitAll(t, s, SyntheticMix(7, 1200, nodes))
		rep := s.Run()
		if len(rep.Jobs) != 1200 {
			t.Fatalf("%v: finished %d of 1200 jobs", pol, len(rep.Jobs))
		}
		for _, j := range rep.Jobs {
			if j.State != Done {
				t.Fatalf("%v: %s ended %v (err %v)", pol, j, j.State, j.Err)
			}
			if j.Runtime() <= 0 || j.Start < j.Submit {
				t.Fatalf("%v: %s has bad lifecycle times %v/%v/%v", pol, j, j.Submit, j.Start, j.End)
			}
		}
		checkNoOverlap(t, rep.Jobs, nodes)
		if rep.Utilization <= 0 || rep.Utilization > 1 {
			t.Fatalf("%v: utilization %.3f out of range", pol, rep.Utilization)
		}
		if rep.Makespan <= 0 {
			t.Fatalf("%v: zero makespan", pol)
		}
		if pol == Backfill && rep.Backfilled == 0 {
			t.Error("backfill policy never backfilled on the skewed mix")
		}
	}
}

// skewedWorkload builds the canonical backfill-winning shape: a wide
// blocker pinned behind a 20-node job, then a stream of narrow short
// jobs that FIFO must hold back.
func skewedWorkload() []*Job {
	jobs := []*Job{
		{Name: "wide-A", Kind: KindLBM, Nodes: 20, Est: 100 * time.Second},
		{Name: "wide-B", Kind: KindLBM, Nodes: 32, Est: 100 * time.Second},
	}
	for i := 0; i < 50; i++ {
		jobs = append(jobs, &Job{Name: "narrow", Kind: KindCG, Nodes: 2, Est: 10 * time.Second})
	}
	return jobs
}

func TestBackfillBeatsFIFOOnSkewedWorkload(t *testing.T) {
	run := func(pol Policy) Report {
		s := New(Config{Cluster: newTestCluster(32), Policy: pol})
		submitAll(t, s, skewedWorkload())
		return s.Run()
	}
	fifo := run(FIFO)
	back := run(Backfill)
	if back.Makespan >= fifo.Makespan {
		t.Fatalf("backfill makespan %v not below FIFO %v", back.Makespan, fifo.Makespan)
	}
	if back.Backfilled == 0 {
		t.Fatal("no jobs backfilled")
	}
	if back.Utilization <= fifo.Utilization {
		t.Errorf("backfill utilization %.3f not above FIFO %.3f", back.Utilization, fifo.Utilization)
	}
	// EASY guarantee: the blocked wide job must not start later than
	// under FIFO, because every backfilled job drains before the shadow.
	headStart := func(rep Report) time.Duration {
		for _, j := range rep.Jobs {
			if j.Name == "wide-B" {
				return j.Start
			}
		}
		t.Fatal("wide-B not found")
		return 0
	}
	if hb, hf := headStart(back), headStart(fifo); hb > hf {
		t.Fatalf("backfill delayed the reserved head: %v > %v", hb, hf)
	}
	checkNoOverlap(t, back.Jobs, 32)
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(4), Policy: FIFO})
	submitAll(t, s, []*Job{
		{Name: "running", Nodes: 3, Est: 60 * time.Second},
		{Name: "blocked-wide", Nodes: 4, Est: 10 * time.Second},
		{Name: "fits-now", Nodes: 1, Est: 5 * time.Second},
	})
	rep := s.Run()
	var fits *Job
	for _, j := range rep.Jobs {
		if j.Name == "fits-now" {
			fits = j
		}
	}
	// Under FIFO the 1-node job waits behind the blocked 4-node job even
	// though a node is free the whole time.
	if fits.Start < 60*time.Second {
		t.Fatalf("FIFO let a job jump the blocked head at %v", fits.Start)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(2), Policy: FIFO})
	submitAll(t, s, []*Job{
		{Name: "low", Nodes: 2, Priority: 0, Est: 10 * time.Second},
		{Name: "high", Nodes: 2, Priority: 9, Est: 10 * time.Second},
	})
	rep := s.Run()
	if rep.Jobs[0].Name != "high" {
		t.Fatalf("completion order %q, want high first", rep.Jobs[0].Name)
	}
	if rep.Jobs[0].Start != 0 || rep.Jobs[1].Start != 10*time.Second {
		t.Fatalf("starts %v, %v", rep.Jobs[0].Start, rep.Jobs[1].Start)
	}
}

func TestFutureArrivalWaitsAndClockAdvances(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(2), Policy: Backfill})
	submitAll(t, s, []*Job{
		{Name: "later", Nodes: 1, Est: 5 * time.Second, Submit: 30 * time.Second},
	})
	rep := s.Run()
	j := rep.Jobs[0]
	if j.Start != 30*time.Second {
		t.Fatalf("job started at %v, want its arrival time 30s", j.Start)
	}
	if j.Wait() != 0 {
		t.Fatalf("wait %v, want 0 on an idle machine", j.Wait())
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(4), Policy: FIFO})
	if err := s.Submit(&Job{Nodes: 5}); err == nil {
		t.Error("oversized gang accepted")
	}
	if err := s.Submit(&Job{Nodes: 0}); err == nil {
		t.Error("zero-node job accepted")
	}
	if err := s.Submit(&Job{Nodes: 1, Kind: KindLBM, Problem: [3]int{1024, 1024, 1024}}); err == nil {
		t.Error("job exceeding node memory accepted")
	}
}

func TestContiguousAllocationAndTrunk(t *testing.T) {
	c := NewCluster(32, netsim.GigabitSwitch(32))
	if c.Spec(0).Group != 0 || c.Spec(31).Group != 1 {
		t.Fatalf("interconnect groups %d/%d, want 0/1 around the 24-port boundary",
			c.Spec(0).Group, c.Spec(31).Group)
	}
	a, ok := c.Alloc(20)
	if !ok || !a.Contiguous() || a.Ranges[0] != (NodeRange{First: 0, Count: 20}) || a.Count != 20 {
		t.Fatalf("first allocation %+v, ok=%v", a, ok)
	}
	if a.Grid != sched.Arrange3D(20) || a.Grid.Size() != 20 {
		t.Fatalf("gang grid %v does not map 20 nodes", a.Grid)
	}
	if a.CrossesTrunk {
		t.Error("nodes [0,20) flagged as crossing the 24-port trunk")
	}
	b, ok := c.Alloc(10)
	if !ok || b.Ranges[0].First != 20 {
		t.Fatalf("second allocation %+v, ok=%v", b, ok)
	}
	if !b.CrossesTrunk {
		t.Error("nodes [20,30) not flagged as crossing the trunk")
	}
	if _, ok := c.Alloc(4); ok {
		t.Error("allocated 4 contiguous nodes with only 2 free")
	}
	c.Release(a, time.Second)
	if got, ok := c.Alloc(4); !ok || got.Ranges[0].First != 0 {
		t.Fatalf("after release, allocation %+v, ok=%v", got, ok)
	}
}

// TestBackfillRespectsTrunkStretchedReservation pins the EASY guarantee
// against the scheduler's own runtime multiplier: a candidate whose raw
// estimate fits before the shadow but whose trunk-crossing allocation
// stretches past it must be turned away, not allowed to delay the
// reserved head.
func TestBackfillRespectsTrunkStretchedReservation(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(32), Policy: Backfill, TrunkSlowdown: 2})
	base := &Job{Name: "base", Nodes: 20, Est: 100 * time.Second, Priority: 9}
	head := &Job{Name: "head", Nodes: 32, Est: 100 * time.Second, Priority: 5}
	// 60s estimate passes the raw shadow check (0+60 <= 100) but its
	// only possible range [20,30) crosses the trunk: stretched to 120s.
	cand := &Job{Name: "candidate", Nodes: 10, Est: 60 * time.Second, Priority: 0}
	submitAll(t, s, []*Job{base, head, cand})
	rep := s.Run()
	if head.Start != 100*time.Second {
		t.Fatalf("reserved head started at %v, want exactly its 100s shadow", head.Start)
	}
	if cand.Start < head.Start {
		t.Fatalf("trunk-stretched candidate backfilled at %v ahead of the reservation", cand.Start)
	}
	checkNoOverlap(t, rep.Jobs, 32)
}

func TestTrunkSlowdownStretchesRuntime(t *testing.T) {
	run := func(slow float64) time.Duration {
		s := New(Config{Cluster: newTestCluster(32), Policy: FIFO, TrunkSlowdown: slow})
		submitAll(t, s, []*Job{{Name: "crossing", Nodes: 32, Est: 100 * time.Second}})
		return s.Run().Jobs[0].Runtime()
	}
	if base, slowed := run(1), run(1.5); slowed != base*3/2 {
		t.Fatalf("trunk slowdown runtime %v, want 1.5 * %v", slowed, base)
	}
}

func TestEstimatorShapes(t *testing.T) {
	e := NewPerfEstimator()
	for kind := JobKind(0); kind < numKinds; kind++ {
		for _, nodes := range []int{1, 2, 7, 32} {
			j := &Job{Kind: kind, Nodes: nodes, Problem: defaultProblem(kind), Steps: 10}
			d := e.Estimate(j)
			if d <= 0 {
				t.Fatalf("estimate(%v, %d nodes) = %v", kind, nodes, d)
			}
			j2 := *j
			j2.Steps = 20
			if d2 := e.Estimate(&j2); d2 <= d {
				t.Fatalf("estimate not monotonic in steps: %v vs %v", d, d2)
			}
		}
	}
}

func TestReportString(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(4), Policy: Backfill})
	submitAll(t, s, SyntheticMix(3, 20, 4))
	rep := s.Run()
	out := rep.String()
	if !strings.Contains(out, "policy easy") || !strings.Contains(out, "node  0 [") {
		t.Fatalf("report missing summary or per-node bars:\n%s", out)
	}
	if len(rep.NodeUtilization()) != 4 {
		t.Fatalf("node utilization entries %d, want 4", len(rep.NodeUtilization()))
	}
}

func TestActualJitterKeepsInvariant(t *testing.T) {
	s := New(Config{
		Cluster: newTestCluster(8),
		Policy:  Backfill,
		Actual: func(j *Job, est time.Duration) time.Duration {
			// Deterministic over/under-run: odd IDs run 30% long.
			if j.ID%2 == 1 {
				return est * 13 / 10
			}
			return est * 9 / 10
		},
	})
	submitAll(t, s, SyntheticMix(11, 200, 8))
	rep := s.Run()
	if len(rep.Jobs) != 200 {
		t.Fatalf("finished %d of 200", len(rep.Jobs))
	}
	checkNoOverlap(t, rep.Jobs, 8)
}

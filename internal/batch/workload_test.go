package batch

import (
	"strings"
	"testing"
)

// runOne drives a single job through a scheduler wired to the real
// workload adapters and returns it completed.
func runOne(t *testing.T, j *Job, nodes int) *Job {
	t.Helper()
	s := New(Config{
		Cluster: newTestCluster(nodes),
		Policy:  Backfill,
		Execute: SimExecutor{TracerParticles: 500},
	})
	if err := s.Submit(j); err != nil {
		t.Fatalf("submit: %v", err)
	}
	rep := s.Run()
	if len(rep.Jobs) != 1 {
		t.Fatalf("finished %d jobs, want 1", len(rep.Jobs))
	}
	return rep.Jobs[0]
}

func TestSimExecutorLBMWithTracer(t *testing.T) {
	j := runOne(t, &Job{
		Name: "flow", Kind: KindLBM, Nodes: 4,
		Problem: [3]int{8, 8, 8}, Steps: 5,
	}, 8)
	if j.State != Done {
		t.Fatalf("LBM job %v: %v", j.State, j.Err)
	}
	if !strings.Contains(j.Detail, "mass") || !strings.Contains(j.Detail, "tracer centroid") {
		t.Fatalf("detail %q missing mass/tracer summary", j.Detail)
	}
}

func TestSimExecutorCGConverges(t *testing.T) {
	j := runOne(t, &Job{
		Name: "poisson", Kind: KindCG, Nodes: 4,
		Problem: [3]int{16, 16, 1}, Steps: 2000,
	}, 8)
	if j.State != Done {
		t.Fatalf("CG job %v: %v", j.State, j.Err)
	}
	if !strings.Contains(j.Detail, "residual") {
		t.Fatalf("detail %q missing solver summary", j.Detail)
	}
}

func TestSimExecutorPDEConservesHeat(t *testing.T) {
	j := runOne(t, &Job{
		Name: "heat", Kind: KindPDE, Nodes: 3,
		Problem: [3]int{16, 16, 4}, Steps: 10,
	}, 8)
	if j.State != Done {
		t.Fatalf("PDE job %v: %v", j.State, j.Err)
	}
	if !strings.Contains(j.Detail, "heat drift") {
		t.Fatalf("detail %q missing conservation summary", j.Detail)
	}
}

func TestFailedJobStillReleasesNodes(t *testing.T) {
	s := New(Config{
		Cluster: newTestCluster(8),
		Policy:  FIFO,
		Execute: SimExecutor{},
	})
	// 2x2 Poisson has 4 unknowns: unsplittable over 8 ranks, so the
	// adapter fails — the gang must still be held and then released.
	bad := &Job{Name: "doomed", Kind: KindCG, Nodes: 8, Problem: [3]int{2, 2, 1}, Steps: 10}
	good := &Job{Name: "after", Kind: KindPDE, Nodes: 8, Problem: [3]int{8, 8, 2}, Steps: 2}
	submitAll(t, s, []*Job{bad, good})
	rep := s.Run()
	if rep.Failed != 1 {
		t.Fatalf("failed count %d, want 1", rep.Failed)
	}
	if bad.State != Failed || bad.Err == nil {
		t.Fatalf("bad job state %v err %v", bad.State, bad.Err)
	}
	if bad.Runtime() <= 0 {
		t.Fatal("failed job should hold its allocation for its runtime")
	}
	if good.State != Done {
		t.Fatalf("follow-up job %v: %v", good.State, good.Err)
	}
	if good.Start < bad.End {
		t.Fatalf("follow-up started %v before failed gang freed at %v", good.Start, bad.End)
	}
}

func TestMixedBatchExecutesEndToEnd(t *testing.T) {
	s := New(Config{
		Cluster: newTestCluster(6),
		Policy:  Backfill,
		Execute: SimExecutor{TracerParticles: 200},
	})
	jobs := []*Job{
		{Name: "lbm", Kind: KindLBM, Nodes: 2, Problem: [3]int{8, 8, 8}, Steps: 3},
		{Name: "cg", Kind: KindCG, Nodes: 3, Problem: [3]int{12, 12, 1}, Steps: 1000},
		{Name: "pde", Kind: KindPDE, Nodes: 4, Problem: [3]int{12, 12, 3}, Steps: 5},
		{Name: "lbm1", Kind: KindLBM, Nodes: 1, Problem: [3]int{8, 8, 8}, Steps: 3},
	}
	submitAll(t, s, jobs)
	rep := s.Run()
	for _, j := range rep.Jobs {
		if j.State != Done {
			t.Errorf("%s: %v (%v)", j, j.State, j.Err)
		}
	}
	checkNoOverlap(t, rep.Jobs, 6)
	if rep.Makespan <= 0 || rep.Utilization <= 0 {
		t.Fatalf("degenerate report: makespan %v utilization %v", rep.Makespan, rep.Utilization)
	}
}

package batch

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "a counter", Labels{"policy": "fifo"})
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // negative adds are dropped, counters are monotone
	g := reg.Gauge("g", "a gauge", nil)
	g.Set(7)
	g.Set(3.25)
	h := reg.Histogram("h_seconds", "a histogram", []float64{1, 10}, nil)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(100)

	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d points, want 3", len(snap))
	}
	byName := map[string]MetricPoint{}
	for _, p := range snap {
		byName[p.Name] = p
	}
	if v := byName["c_total"].Value; v != 3.5 {
		t.Fatalf("counter = %v, want 3.5 (negative add must be ignored)", v)
	}
	if v := byName["g"].Value; v != 3.25 {
		t.Fatalf("gauge = %v, want 3.25", v)
	}
	hp := byName["h_seconds"]
	if hp.Count != 3 || hp.Sum != 105.5 {
		t.Fatalf("histogram count/sum = %d/%v, want 3/105.5", hp.Count, hp.Sum)
	}
	// Cumulative buckets: le=1 holds 1, le=10 holds 2, +Inf holds all 3.
	if len(hp.Buckets) != 3 || hp.Buckets[0].Count != 1 ||
		hp.Buckets[1].Count != 2 || hp.Buckets[2].Count != 3 {
		t.Fatalf("histogram buckets = %+v", hp.Buckets)
	}
}

func TestRegistryReregisterAndMismatch(t *testing.T) {
	reg := NewRegistry()
	lbl := Labels{"policy": "easy"}
	a := reg.Counter("x_total", "x", lbl)
	b := reg.Counter("x_total", "x", lbl)
	if a != b {
		t.Fatal("re-registering the same series must return the same counter")
	}
	a.Inc()
	b.Inc()
	if got := reg.Snapshot()[0].Value; got != 2 {
		t.Fatalf("shared series = %v, want 2", got)
	}
	// Distinct label values are distinct series.
	reg.Counter("x_total", "x", Labels{"policy": "fifo"})
	if got := len(reg.Snapshot()); got != 2 {
		t.Fatalf("snapshot has %d series, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge must panic")
		}
	}()
	reg.Gauge("x_total", "x", lbl)
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "b", nil)
	reg.Gauge("a", "a", Labels{"k": "2"})
	reg.Gauge("a", "a", Labels{"k": "1"})
	first := reg.Snapshot()
	if first[0].Name != "a" || first[0].Labels != `k="1"` ||
		first[1].Labels != `k="2"` || first[2].Name != "b_total" {
		t.Fatalf("snapshot order: %+v", first)
	}
	for i := 0; i < 5; i++ {
		again := reg.Snapshot()
		for k := range first {
			if again[k].Name != first[k].Name || again[k].Labels != first[k].Labels {
				t.Fatalf("snapshot order changed between calls")
			}
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("jobs_total", "Jobs seen.", Labels{"policy": "easy"}).Add(4)
	reg.Gauge("depth", "Queue depth.", nil).Set(2)
	h := reg.Histogram("wait_seconds", "Waits.", []float64{1}, nil)
	h.Observe(0.5)
	h.Observe(3)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs seen.",
		"# TYPE jobs_total counter",
		`jobs_total{policy="easy"} 4`,
		"# TYPE depth gauge",
		"depth 2",
		"# TYPE wait_seconds histogram",
		`wait_seconds_bucket{le="1"} 1`,
		`wait_seconds_bucket{le="+Inf"} 2`,
		"wait_seconds_sum 3.5",
		"wait_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSchedulerMetricsIntegration cross-checks the registry against the
// Report counters on a contended run that exercises backfill,
// preemption, time-slicing, and suspend-to-host demotion.
func TestSchedulerMetricsIntegration(t *testing.T) {
	reg := NewRegistry()
	jobs := SyntheticStream(3, 150, 32, 5*time.Second)
	s := New(Config{
		Cluster: newTestCluster(32), Policy: Backfill, TrunkSlowdown: 1.1,
		Preempt: true, Quantum: 300 * time.Second, SuspendToHost: true,
		Metrics: reg,
	})
	submitAll(t, s, jobs)
	rep := s.Run()

	get := func(name string) MetricPoint {
		for _, p := range reg.Snapshot() {
			if p.Name == name {
				return p
			}
		}
		t.Fatalf("metric %s not registered", name)
		return MetricPoint{}
	}
	if v := get("batch_jobs_submitted_total").Value; v != float64(len(jobs)) {
		t.Fatalf("submitted = %v, want %d", v, len(jobs))
	}
	done := get("batch_jobs_completed_total").Value
	failed := get("batch_jobs_failed_total").Value
	if done+failed != float64(len(jobs)) || int(failed) != rep.Failed {
		t.Fatalf("completed %v + failed %v, want %d total with %d failed",
			done, failed, len(jobs), rep.Failed)
	}
	if v := get("batch_backfills_total").Value; int(v) != rep.Backfilled {
		t.Fatalf("backfills = %v, report says %d", v, rep.Backfilled)
	}
	if v := get("batch_preemptions_total").Value; int(v) != rep.PreemptEvents {
		t.Fatalf("preemptions = %v, report says %d", v, rep.PreemptEvents)
	}
	if v := get("batch_slice_suspensions_total").Value; int(v) != rep.SliceEvents {
		t.Fatalf("slice suspensions = %v, report says %d", v, rep.SliceEvents)
	}
	if v := get("batch_demotions_total").Value; int(v) != rep.Demotions {
		t.Fatalf("demotions = %v, report says %d", v, rep.Demotions)
	}
	if v := get("batch_scheduler_passes_total").Value; v <= 0 {
		t.Fatal("no scheduler passes counted")
	}
	if wait := get("batch_job_wait_seconds"); wait.Count != uint64(len(jobs)) {
		t.Fatalf("wait histogram saw %d jobs, want %d", wait.Count, len(jobs))
	}
	if v := get("batch_queue_depth").Value; v != 0 {
		t.Fatalf("final queue depth gauge = %v, want 0", v)
	}
	// Every series carries the run's identity labels.
	lbl := get("batch_jobs_submitted_total").Labels
	if !strings.Contains(lbl, `policy="easy"`) || !strings.Contains(lbl, "placement=") {
		t.Fatalf("identity labels missing: %s", lbl)
	}
	// The usage gauges track granted node-time for every user regardless
	// of policy; this run completes jobs, so some account must be set.
	if v := get("batch_fairshare_usage_node_seconds").Value; v <= 0 {
		t.Fatal("fair-share usage gauge never set")
	}
}

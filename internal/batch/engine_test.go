package batch

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Engine-layer tests: the incremental core must reproduce the one-shot
// Run() bit for bit under a virtual clock, RunUntil must be able to
// chop the same schedule at arbitrary instants without changing it,
// and the wall-clock pump must drive everything to a terminal state
// with concurrent ingest.

// reportsEqual compares the schedule-defining surface of two reports.
func reportsEqual(t *testing.T, a, b Report) {
	t.Helper()
	if a.Makespan != b.Makespan || a.AvgWait != b.AvgWait || a.MaxWait != b.MaxWait ||
		a.Utilization != b.Utilization || a.Backfilled != b.Backfilled ||
		a.PreemptEvents != b.PreemptEvents || a.SliceEvents != b.SliceEvents ||
		a.DrainWait != b.DrainWait || a.RestoreWait != b.RestoreWait ||
		a.HostSuspends != b.HostSuspends || a.Demotions != b.Demotions {
		t.Fatalf("reports diverged:\n%v/%v/%v/%f/%d/%d/%d/%v/%v/%d/%d\nvs\n%v/%v/%v/%f/%d/%d/%d/%v/%v/%d/%d",
			a.Makespan, a.AvgWait, a.MaxWait, a.Utilization, a.Backfilled, a.PreemptEvents, a.SliceEvents, a.DrainWait, a.RestoreWait, a.HostSuspends, a.Demotions,
			b.Makespan, b.AvgWait, b.MaxWait, b.Utilization, b.Backfilled, b.PreemptEvents, b.SliceEvents, b.DrainWait, b.RestoreWait, b.HostSuspends, b.Demotions)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("job counts diverged: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	byID := make(map[int]*Job, len(b.Jobs))
	for _, j := range b.Jobs {
		byID[j.ID] = j
	}
	for _, j := range a.Jobs {
		k := byID[j.ID]
		if k == nil || j.Start != k.Start || j.End != k.End || j.State != k.State ||
			j.Preemptions() != k.Preemptions() || j.TimeSlices() != k.TimeSlices() {
			t.Fatalf("job %d lifecycle diverged", j.ID)
		}
	}
}

// TestEngineVirtualMatchesRun pins the compatibility claim: the same
// mix through the Engine facade under a VirtualClock reproduces the
// direct Scheduler.Run schedule exactly, across every crossed
// configuration.
func TestEngineVirtualMatchesRun(t *testing.T) {
	debugCheckIndex = true
	DebugVerifyShadows = true
	defer func() { debugCheckIndex = false; DebugVerifyShadows = false }()

	const nodes, count = 32, 150
	for _, cfg := range propertyConfigs() {
		cfg := cfg
		name := fmt.Sprintf("%v/preempt=%v/quantum=%v/host=%v", cfg.Policy, cfg.Preempt, cfg.Quantum, cfg.SuspendToHost)
		t.Run(name, func(t *testing.T) {
			direct := cfg
			direct.Cluster = newTestCluster(nodes)
			s := New(direct)
			submitAll(t, s, SyntheticStream(7, count, nodes, 5*time.Second))
			want := s.Run()

			viaEngine := cfg
			viaEngine.Cluster = newTestCluster(nodes)
			e := NewEngine(viaEngine, nil)
			for _, j := range SyntheticStream(7, count, nodes, 5*time.Second) {
				if _, err := e.Ingest(j); err != nil {
					t.Fatalf("ingest: %v", err)
				}
			}
			reportsEqual(t, want, e.Run())
		})
	}
}

// TestEngineRunUntilChopped drives the same schedule through RunUntil
// in fixed-size time slices — the wall-clock pump's access pattern —
// and requires the identical final report: catch-up processing must
// not depend on how the timeline was chopped.
func TestEngineRunUntilChopped(t *testing.T) {
	const nodes, count = 32, 150
	ck, rs := fixedCosts(200*time.Millisecond, 100*time.Millisecond)
	cfg := Config{Policy: Backfill, Preempt: true, Quantum: 5 * time.Second,
		CheckpointCost: ck, RestoreCost: rs}

	direct := cfg
	direct.Cluster = newTestCluster(nodes)
	s := New(direct)
	submitAll(t, s, SyntheticStream(9, count, nodes, 5*time.Second))
	want := s.Run()

	chopped := cfg
	chopped.Cluster = newTestCluster(nodes)
	c := New(chopped)
	submitAll(t, c, SyntheticStream(9, count, nodes, 5*time.Second))
	for tick := 7 * time.Second; c.Now() < want.Makespan; tick += 7 * time.Second {
		c.RunUntil(tick)
	}
	reportsEqual(t, want, c.Run())
}

// TestEngineStepStopsWhenDrained pins Step's terminal contract.
func TestEngineStepStopsWhenDrained(t *testing.T) {
	s := New(Config{Cluster: newTestCluster(4)})
	submitAll(t, s, []*Job{{Name: "only", Kind: KindPDE, Nodes: 2, Est: 5 * time.Second}})
	steps := 0
	for s.Step() {
		if steps++; steps > 10 {
			t.Fatal("Step never drained a one-job queue")
		}
	}
	if s.Step() {
		t.Fatal("Step advanced a drained scheduler")
	}
	rep := s.Run()
	if len(rep.Jobs) != 1 || rep.Jobs[0].State != Done {
		t.Fatalf("drained schedule wrong: %+v", rep.Jobs)
	}
}

// manualClock is a hand-advanced Clock: queries against the engine
// catch up only to the instant the test has released.
type manualClock struct{ t time.Duration }

func (c *manualClock) Now() time.Duration { return c.t }

// TestEngineSnapshotAndLoad exercises the introspection surface
// mid-run: queued and running jobs are both visible, and Load sees the
// per-user footprint quota admission needs.
func TestEngineSnapshotAndLoad(t *testing.T) {
	e := NewEngine(Config{Cluster: newTestCluster(4)}, &manualClock{})
	wide, err := e.Ingest(&Job{Name: "wide", Kind: KindPDE, Nodes: 4, User: "ana", Est: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := e.Ingest(&Job{Name: "waits", Kind: KindPDE, Nodes: 4, User: "bo", Est: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// The clock sits at zero: the first wide job dispatched at ingest
	// time, its completion (10s) is still in the future, the second
	// waits.
	qs := e.Snapshot()
	if qs.Running != 1 || qs.Queued != 1 || len(qs.Jobs) != 2 {
		t.Fatalf("snapshot: %d running, %d queued, %d listed", qs.Running, qs.Queued, len(qs.Jobs))
	}
	if qs.Jobs[0].ID != queued || qs.Jobs[0].State != Queued {
		t.Fatalf("snapshot order: first entry %+v, want queued job %d", qs.Jobs[0], queued)
	}
	if qs.Jobs[1].ID != wide || qs.Jobs[1].State != Running {
		t.Fatalf("snapshot order: second entry %+v, want running job %d", qs.Jobs[1], wide)
	}
	if l := e.Load("ana"); l.Queued != 1 || l.NodeSeconds <= 0 {
		t.Fatalf("ana load: %+v", l)
	}
	if l := e.Load("bo"); l.Queued != 1 {
		t.Fatalf("bo load: %+v", l)
	}
	if l := e.Load("nobody"); l.Queued != 0 || l.NodeSeconds != 0 {
		t.Fatalf("unknown user load: %+v", l)
	}
	st, err := e.JobStatus(wide)
	if err != nil || st.State != Running || st.Nodes != 4 {
		t.Fatalf("JobStatus(%d) = %+v, %v", wide, st, err)
	}
	if _, err := e.JobStatus(99); err == nil {
		t.Fatal("JobStatus of unknown ID succeeded")
	}
	e.Run()
	if l := e.Load("ana"); l.Queued != 0 {
		t.Fatalf("ana load after drain: %+v", l)
	}
}

// TestWallClockMapsTime pins the wall clock's compression arithmetic.
func TestWallClockMapsTime(t *testing.T) {
	c := &WallClock{Epoch: time.Now().Add(-time.Second), Compress: 60}
	v := c.Now()
	if v < 55*time.Second || v > 70*time.Second {
		t.Fatalf("1s wall at 60x reads %v, want ~60s", v)
	}
	if w := c.Until(v + 60*time.Second); w < 800*time.Millisecond || w > 1200*time.Millisecond {
		t.Fatalf("60 virtual seconds at 60x should be ~1s wall, got %v", w)
	}
	if c.Until(0) != 0 {
		t.Fatalf("Until(past) = %v, want 0", c.Until(0))
	}
}

// TestEngineWallClockDrivesToTerminal runs the pump at extreme
// compression with jobs ingested from concurrent goroutines — the
// live-daemon shape. Everything accepted must reach a terminal state,
// and the engine's virtual timeline must stay internally consistent.
func TestEngineWallClockDrivesToTerminal(t *testing.T) {
	e := NewEngine(Config{Cluster: newTestCluster(8), Policy: Backfill},
		NewWallClock(100_000)) // ~1 virtual day per wall second
	e.Start()
	defer e.Stop()
	const submitters, each = 4, 5
	ids := make(chan int, submitters*each)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id, err := e.Ingest(&Job{
					Name: fmt.Sprintf("w%d-%d", g, i), Kind: KindPDE,
					Nodes: 1 + (g+i)%4, User: fmt.Sprintf("u%d", g),
					Est: time.Duration(1+i) * time.Minute,
				})
				if err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
				ids <- id
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	deadline := time.Now().Add(30 * time.Second)
	for id := range ids {
		for {
			st, err := e.JobStatus(id)
			if err != nil {
				t.Fatalf("status %d: %v", id, err)
			}
			if st.State == Done || st.State == Failed {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %d still %v at deadline", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	rep := e.Drain()
	if len(rep.Jobs) != submitters*each || rep.Failed != 0 {
		t.Fatalf("drained %d jobs (%d failed), want %d", len(rep.Jobs), rep.Failed, submitters*each)
	}
	checkNoOverlap(t, rep.Jobs, 8)
}

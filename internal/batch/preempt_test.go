package batch

import (
	"strings"
	"testing"
	"time"
)

// fixedCosts returns a Config charging deterministic round-number
// checkpoint/restore costs, so tests can pin exact start times.
func fixedCosts(ckpt, restore time.Duration) (func(*Job) time.Duration, func(*Job) time.Duration) {
	return func(*Job) time.Duration { return ckpt },
		func(*Job) time.Duration { return restore }
}

// TestPreemptionReducesHighPriorityWait is the acceptance regression:
// on a machine pinned by a long low-priority gang, a high-priority
// arrival waits the full runtime under non-preemptive EASY but only one
// checkpoint drain under preemption — with the checkpoint cost actually
// charged, not hand-waved to zero.
func TestPreemptionReducesHighPriorityWait(t *testing.T) {
	const ckpt, restore = 5 * time.Second, 3 * time.Second
	mkJobs := func() (low, high *Job, jobs []*Job) {
		low = &Job{Name: "hog", Kind: KindLBM, Nodes: 32, Priority: 0, Est: 600 * time.Second}
		high = &Job{Name: "urgent", Kind: KindCG, Nodes: 16, Priority: 9,
			Est: 60 * time.Second, Submit: 10 * time.Second}
		return low, high, []*Job{low, high}
	}
	run := func(preempt bool) (Report, *Job, *Job) {
		ck, rs := fixedCosts(ckpt, restore)
		s := New(Config{
			Cluster: newTestCluster(32), Policy: Backfill,
			Preempt: preempt, CheckpointCost: ck, RestoreCost: rs,
		})
		low, high, jobs := mkJobs()
		submitAll(t, s, jobs)
		return s.Run(), low, high
	}

	easyRep, _, easyHigh := run(false)
	if easyHigh.Wait() != 590*time.Second {
		t.Fatalf("non-preemptive EASY high-priority wait %v, want 590s behind the hog", easyHigh.Wait())
	}

	rep, low, high := run(true)
	// The hog is checkpointed at the arrival instant: the urgent job
	// starts when the 5s drain completes.
	if high.Start != 15*time.Second {
		t.Fatalf("preempted start %v, want 15s (arrival + checkpoint drain)", high.Start)
	}
	if high.Wait() >= easyHigh.Wait() {
		t.Fatalf("preemption did not reduce the high-priority wait: %v vs EASY %v", high.Wait(), easyHigh.Wait())
	}
	if low.Preemptions() != 1 {
		t.Fatalf("hog preempted %d times, want 1", low.Preemptions())
	}
	// Checkpoint cost charged: the hog held its first gang through the
	// drain, and pays the restore on redispatch.
	if low.CheckpointOverhead() != ckpt+restore {
		t.Fatalf("checkpoint overhead %v, want %v", low.CheckpointOverhead(), ckpt+restore)
	}
	if len(low.History) != 2 || !low.History[0].Preempted || low.History[0].End != 15*time.Second {
		t.Fatalf("hog history %+v, want a preempted first segment ending at the 15s drain", low.History)
	}
	// The hog lost no virtual progress: 10s ran before the checkpoint,
	// so the second segment carries 590s of work plus the 3s restore.
	if got := low.History[1].End - low.History[1].Start; got != 593*time.Second {
		t.Fatalf("hog resume segment %v, want 593s (590s left + 3s restore)", got)
	}
	if low.State != Done || rep.PreemptEvents != 1 || rep.Preempted != 1 {
		t.Fatalf("terminal state %v, preempt events %d/%d", low.State, rep.PreemptEvents, rep.Preempted)
	}
	if rep.CheckpointOverhead != ckpt+restore {
		t.Fatalf("report overhead %v, want %v", rep.CheckpointOverhead, ckpt+restore)
	}
	if !strings.Contains(rep.String(), "preemption: 1 jobs preempted") {
		t.Fatalf("report missing preemption line:\n%s", rep)
	}
	checkNoOverlap(t, rep.Jobs, 32)
	checkNoOverlap(t, easyRep.Jobs, 32)
}

// TestPreemptionSuspendsLowestPriorityGangs pins victim selection: with
// several candidate gangs running, the preemptor drains the
// lowest-priority ones and only as many as it needs. The two victims
// checkpoint at the same instant, so their drains serialize on the
// shared store link: the wave settles at the *sum* of the drain times
// (20s + 2s + 2s), not at their maximum.
func TestPreemptionSuspendsLowestPriorityGangs(t *testing.T) {
	ck, rs := fixedCosts(2*time.Second, time.Second)
	s := New(Config{Cluster: newTestCluster(32), Policy: Backfill,
		Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	keep := &Job{Name: "keep", Nodes: 8, Priority: 5, Est: 500 * time.Second}
	vict1 := &Job{Name: "vict1", Nodes: 12, Priority: 1, Est: 500 * time.Second}
	vict2 := &Job{Name: "vict2", Nodes: 12, Priority: 2, Est: 500 * time.Second}
	urgent := &Job{Name: "urgent", Nodes: 20, Priority: 9,
		Est: 50 * time.Second, Submit: 20 * time.Second}
	submitAll(t, s, []*Job{keep, vict1, vict2, urgent})
	rep := s.Run()
	if keep.Preemptions() != 0 {
		t.Fatalf("priority-5 gang was preempted for a need both low gangs could cover")
	}
	if vict1.Preemptions() != 1 || vict2.Preemptions() != 1 {
		t.Fatalf("victims preempted %d/%d times, want both once (20 nodes need both 12-node gangs)",
			vict1.Preemptions(), vict2.Preemptions())
	}
	if urgent.Start != 24*time.Second {
		t.Fatalf("urgent started at %v, want 24s after the serialized drains", urgent.Start)
	}
	// Both directions of the store link are contended. Drain side:
	// vict2 queued 2s behind vict1's transfer. Restore side: both
	// victims re-dispatch together when the urgent job ends, and vict1
	// (behind vict2 in the priority order) queues 1s on the read link
	// behind vict2's restore transfer. Overheads: vict1 = 2s drain +
	// 1s read wait + 1s restore = 4s; vict2 = 2s drain wait + 2s drain
	// + 1s restore = 5s.
	if vict1.CheckpointOverhead() != 4*time.Second || vict2.CheckpointOverhead() != 5*time.Second {
		t.Fatalf("victim overheads %v/%v, want 4s and 5s (both link directions contended)",
			vict1.CheckpointOverhead(), vict2.CheckpointOverhead())
	}
	if rep.DrainWait != 2*time.Second {
		t.Fatalf("report drain wait %v, want the 2s vict2 queued for the link", rep.DrainWait)
	}
	if rep.RestoreWait != time.Second {
		t.Fatalf("report restore wait %v, want the 1s vict1 queued for the read link", rep.RestoreWait)
	}
	for _, j := range rep.Jobs {
		if j.State != Done {
			t.Fatalf("%s ended %v", j, j.State)
		}
	}
	checkNoOverlap(t, rep.Jobs, 32)
}

// TestPreemptionNeverSuspendsEqualOrHigherPriority asserts the strict
// inequality: a blocked job cannot preempt gangs of its own priority.
func TestPreemptionNeverSuspendsEqualOrHigherPriority(t *testing.T) {
	ck, rs := fixedCosts(2*time.Second, time.Second)
	s := New(Config{Cluster: newTestCluster(8), Policy: Backfill,
		Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	running := &Job{Name: "running", Nodes: 8, Priority: 5, Est: 100 * time.Second}
	same := &Job{Name: "same", Nodes: 8, Priority: 5, Est: 10 * time.Second, Submit: time.Second}
	submitAll(t, s, []*Job{running, same})
	rep := s.Run()
	if running.Preemptions() != 0 {
		t.Fatal("equal-priority gang was preempted")
	}
	if same.Start != 100*time.Second {
		t.Fatalf("equal-priority arrival started at %v, want 100s", same.Start)
	}
	checkNoOverlap(t, rep.Jobs, 8)
}

// TestPreemptedWorkloadCheckpointRestore runs real workloads through a
// preemption cycle and asserts the adapters' Checkpoint/Restore path
// produces the same results as an uninterrupted run — state snapshots,
// not recomputation from scratch.
func TestPreemptedWorkloadCheckpointRestore(t *testing.T) {
	for _, kind := range []JobKind{KindLBM, KindPDE, KindCG} {
		run := func(preempt bool) (*Job, Report) {
			ck, rs := fixedCosts(2*time.Second, time.Second)
			s := New(Config{
				Cluster: newTestCluster(4), Policy: Backfill,
				Preempt: preempt, CheckpointCost: ck, RestoreCost: rs,
				Execute: SimExecutor{},
			})
			victim := &Job{Name: "victim", Kind: kind, Nodes: 2, Priority: 0, Est: 100 * time.Second}
			urgent := &Job{Name: "urgent", Kind: KindPDE, Nodes: 4, Priority: 9,
				Est: 10 * time.Second, Submit: 40 * time.Second}
			switch kind {
			case KindLBM:
				victim.Problem, victim.Steps = [3]int{8, 8, 8}, 10
			case KindPDE:
				victim.Problem, victim.Steps = [3]int{12, 12, 4}, 12
			case KindCG:
				victim.Problem, victim.Steps = [3]int{16, 16, 1}, 400
			}
			urgent.Problem, urgent.Steps = [3]int{8, 8, 2}, 4
			submitAll(t, s, []*Job{victim, urgent})
			rep := s.Run()
			return victim, rep
		}
		straight, _ := run(false)
		victim, rep := run(true)
		if victim.Preemptions() == 0 {
			t.Fatalf("%v: victim was never preempted", kind)
		}
		if victim.State != Done {
			t.Fatalf("%v: preempted victim ended %v: %v", kind, victim.State, victim.Err)
		}
		if rep.Failed != 0 {
			t.Fatalf("%v: %d failed jobs in preempted schedule", kind, rep.Failed)
		}
		// LBM and PDE are deterministic step-for-step: the segmented run
		// must reproduce the uninterrupted result exactly. CG loses its
		// Krylov space at the restart, so only convergence is asserted
		// (the detail records a possibly different iteration count).
		if kind != KindCG && victim.Detail != straight.Detail {
			t.Fatalf("%v: segmented run diverged from uninterrupted run:\n  %s\n  %s",
				kind, victim.Detail, straight.Detail)
		}
		checkNoOverlap(t, rep.Jobs, 4)
	}
}

// TestPreemptionSkipsNearlyFinishedVictims pins the futile-checkpoint
// guard: when the drain would outlast the victim's remaining runtime,
// the nodes free no earlier by preempting, so the scheduler waits
// instead of charging checkpoint+restore for nothing.
func TestPreemptionSkipsNearlyFinishedVictims(t *testing.T) {
	ck, rs := fixedCosts(5*time.Second, 3*time.Second)
	s := New(Config{Cluster: newTestCluster(8), Policy: Backfill,
		Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	// 4s of work left when the urgent job arrives: less than the 5s
	// drain, so preemption cannot help.
	almost := &Job{Name: "almost", Nodes: 8, Priority: 0, Est: 100 * time.Second}
	urgent := &Job{Name: "urgent", Nodes: 8, Priority: 9,
		Est: 10 * time.Second, Submit: 96 * time.Second}
	submitAll(t, s, []*Job{almost, urgent})
	rep := s.Run()
	if almost.Preemptions() != 0 || rep.PreemptEvents != 0 {
		t.Fatalf("nearly-finished gang was checkpointed (%d events)", rep.PreemptEvents)
	}
	if urgent.Start != 100*time.Second {
		t.Fatalf("urgent started at %v, want 100s (victim's natural completion)", urgent.Start)
	}
	checkNoOverlap(t, rep.Jobs, 8)
}

// TestFairSharePreemptionRespectsDisciplineOrder pins the anti-thrash
// rule: under fair-share a victim must rank behind the preemptor in
// the *discipline* order, so a heavy user's high-priority job cannot
// evict the light user's gang the scheduler just dispatched — the
// combination that previously produced hundreds of zero-progress
// checkpoint/restore cycles on a small machine.
func TestFairSharePreemptionRespectsDisciplineOrder(t *testing.T) {
	ck, rs := fixedCosts(2*time.Second, time.Second)
	s := New(Config{Cluster: newTestCluster(4), Policy: FairShare,
		Preempt: true, CheckpointCost: ck, RestoreCost: rs})
	// The heavy user burns usage first, so the light user's job leads
	// the fair-share order despite its lower priority.
	warm := &Job{Name: "warm", User: "heavy", Nodes: 4, Priority: 5, Est: 100 * time.Second}
	light := &Job{Name: "light", User: "lite", Nodes: 4, Priority: 0,
		Est: 50 * time.Second, Submit: 100 * time.Second}
	chase := &Job{Name: "chase", User: "heavy", Nodes: 4, Priority: 5,
		Est: 50 * time.Second, Submit: 100 * time.Second}
	submitAll(t, s, []*Job{warm, light, chase})
	rep := s.Run()
	if light.Preemptions() != 0 {
		t.Fatalf("heavy user's high-priority job evicted the light user's gang (%d preemptions)",
			light.Preemptions())
	}
	if light.Start != 100*time.Second || chase.Start != 150*time.Second {
		t.Fatalf("starts light=%v chase=%v, want fair-share order 100s/150s", light.Start, chase.Start)
	}
	if rep.PreemptEvents != 0 {
		t.Fatalf("%d preempt events, want none", rep.PreemptEvents)
	}
	checkNoOverlap(t, rep.Jobs, 4)
}

// TestDefaultCheckpointCostScalesWithFootprint sanity-checks the cost
// model: a bigger per-node image costs more to drain, restore rides the
// fast bus direction, and both are strictly positive.
func TestDefaultCheckpointCostScalesWithFootprint(t *testing.T) {
	mk := func(p [3]int) *Job {
		j := &Job{Kind: KindLBM, Nodes: 2, problem: p}
		j.memNeed = memoryNeed(j.Kind, p, j.Nodes)
		return j
	}
	small, big := mk([3]int{16, 16, 16}), mk([3]int{64, 64, 64})
	if DefaultCheckpointCost(small) <= 0 || DefaultRestoreCost(small) <= 0 {
		t.Fatal("zero checkpoint/restore cost")
	}
	if DefaultCheckpointCost(big) <= DefaultCheckpointCost(small) {
		t.Fatal("checkpoint cost not increasing in image size")
	}
	if DefaultRestoreCost(big) >= DefaultCheckpointCost(big) {
		t.Fatal("restore (fast downstream bus) should be cheaper than checkpoint (slow AGP readback)")
	}
}

package batch

import (
	"sort"
	"time"
)

// Conservative backfilling: unlike EASY, which reserves only for the
// blocked head, every queued job is planned against a capacity profile
// — busy-node counts over future virtual time, built from running jobs
// and the reservations of everything ahead in the queue. A job starts
// out of order only when its reserved slot begins now, so no earlier
// job's reservation is ever pushed back by a backfill.
//
// The profile tracks node *counts*, not identities. Under the
// topology-aware placement engine that is exact — any k free eligible
// nodes can be assembled into a gang — so reservations are honored by
// construction. Under first-fit, contiguity can delay a count-feasible
// start; the job is then re-planned at the next event (a best-effort
// reservation, which the README documents).
//
// Reservations are re-planned on every scheduling event. When reserved
// durations equal realized ones (runtimes match estimates, no
// placement-dependent trunk stretch), the plan is realized exactly and
// every job starts no later than its first promise. Placement-dependent
// stretch (or estimate overruns) makes slots end earlier or later than
// planned; re-planning then compresses the schedule, which can shift an
// individual job's slot in either direction even though no backfill
// ever delays the reservations of the plan it was admitted under.
//
// Under time-slicing (Config.Quantum) the profile sees a running gang's
// next yield point — its quantum boundary or drain end — rather than
// its completion, so reservations are best-effort in the same sense as
// under first-fit: a suspended gang re-enters the queue with its full
// remaining estimate and is re-planned like any other pending job.

// profile is a step function of planned busy-node counts: busy[i] holds
// over [times[i], times[i+1]), and the last entry extends to infinity.
type profile struct {
	times []time.Duration
	busy  []int
}

// buildProfile snapshots the current machine state: busy nodes now,
// dropping as each running job (or checkpoint drain) ends on schedule.
// The completion events come from the end-time treap's in-order walk —
// already (End, ID)-sorted — so a pass no longer collects and sorts the
// running set; equal instants merge additively exactly as the sorted
// event list did.
func (s *Scheduler) buildProfile() *profile {
	p := &profile{
		times: []time.Duration{s.now},
		busy:  []int{s.cfg.Cluster.Size() - s.cfg.Cluster.FreeNodes()},
	}
	s.ends.inorder(func(end time.Duration, count int) {
		last := len(p.times) - 1
		if end == p.times[last] {
			p.busy[last] -= count
			return
		}
		p.times = append(p.times, end)
		p.busy = append(p.busy, p.busy[last]-count)
	})
	return p
}

// insert splits intervals so a breakpoint exists exactly at t (>= the
// profile start) and returns its index.
func (p *profile) insert(t time.Duration) int {
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] >= t })
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	// t falls inside interval i-1 (or beyond the last breakpoint, where
	// the tail value carries over).
	p.times = append(p.times, 0)
	p.busy = append(p.busy, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.busy[i+1:], p.busy[i:])
	p.times[i] = t
	p.busy[i] = p.busy[i-1]
	return i
}

// add reserves k nodes over [from, to).
func (p *profile) add(from, to time.Duration, k int) {
	if to <= from {
		return
	}
	a := p.insert(from)
	b := p.insert(to)
	for i := a; i < b; i++ {
		p.busy[i] += k
	}
}

// earliest returns the first instant at which busy stays at or below
// limit for a full window of length d. limit must be >= 0 (the far
// future is always idle, so the search terminates).
func (p *profile) earliest(d time.Duration, limit int) time.Duration {
	t := p.times[0]
	i := 0
	for {
		viol := -1
		for j := i; j < len(p.times); j++ {
			if j > i && p.times[j] >= t+d {
				break
			}
			if p.busy[j] > limit {
				viol = j
				break
			}
		}
		if viol < 0 {
			return t
		}
		if viol+1 >= len(p.times) {
			// The infinite tail violates: impossible for limit >= 0
			// because every running job eventually ends.
			return p.times[len(p.times)-1]
		}
		t = p.times[viol+1]
		i = viol + 1
	}
}

// conservativePass plans the whole queue against the capacity profile,
// starting jobs whose reservation begins now; it reports whether any
// job started (a start changes the machine, so the caller rescans).
func (s *Scheduler) conservativePass() bool {
	prof := s.buildProfile()
	size := s.cfg.Cluster.Size()
	pass := s.beginPass()
	head := true
	jumped := false // an earlier job is held to a future reservation
	for _, j := range s.pending.ordered(s.less) {
		if j == nil || j.arrive > s.now {
			continue
		}
		// Reservations use the worst-case trunk stretch and the
		// worst-case restore prefix (a host image may have to migrate
		// over the store if its home is taken) so a slot is always
		// long enough for whatever placement the start gets.
		d := s.restorePrefixWorst(j) + s.stretched(j.estLeft(), true)
		if d < time.Millisecond {
			d = time.Millisecond
		}
		// Eligible-node lower bound: free eligible >= eligible - busy,
		// so capping busy at eligible-k guarantees a feasible gang
		// under the topology engine even on heterogeneous memory. The
		// count uses *available* memory (resident images pin their
		// footprint; j's own image is its to spend), so a promised
		// slot is not booked on RAM a suspended image occupies.
		eligible := 0
		s.withOwnImageLifted(j, func() {
			eligible = s.cfg.Cluster.NodesWithAvail(j.memNeed)
		})
		limit := eligible - j.Nodes
		if c := size - j.Nodes; c < limit {
			limit = c
		}
		t := prof.earliest(d, limit)
		if t < j.demoteEnd {
			t = j.demoteEnd // cannot start before its image finishes evicting
		}
		if t == s.now && s.tryStart(j, jumped, 0, false) {
			return true
		}
		if head {
			before := s.ckptInFlight
			out := s.preemptFor(j)
			if s.ckptInFlight > before {
				// Checkpoints just began draining: the profile no
				// longer reflects the rewritten completion events, so
				// re-plan at the drain. A wave already in flight from
				// an earlier event does NOT abort the pass — its drain
				// ends are in the profile and backfill goes on.
				s.explainHead(pass, j, out)
				return false
			}
			// Memory pressure: a head blocked on suspended images (not
			// node occupancy) starts their demotion to the store. The
			// profile needs no re-plan — demotions change memory
			// availability at their settlement, not completion events.
			s.demoteFor(j)
			if s.rec != nil {
				s.explainConservative(pass, j, t, out, true)
			}
		} else if s.rec != nil {
			s.explainConservative(pass, j, t, preemptOff, false)
		}
		head = false
		if t > s.now && !j.promised {
			j.promise, j.promised = t, true
		}
		prof.add(t, t+d, j.Nodes)
		jumped = true
	}
	return false
}

// explainConservative classifies one planned-but-not-started job in a
// conservative pass: held to its eviction settlement, held to a future
// reservation, or refused at an immediate slot (then the head's
// preemption outcome or the placement probe names the blocker).
func (s *Scheduler) explainConservative(pass int, j *Job, t time.Duration, out preemptOutcome, head bool) {
	switch {
	case t > s.now && t == j.demoteEnd:
		s.explain(pass, j, ReasonEvicting, t)
	case t > s.now:
		s.explain(pass, j, ReasonReservation, t)
	case head:
		s.explainHead(pass, j, out)
	default:
		s.explain(pass, j, s.classifyStart(j), 0)
	}
}

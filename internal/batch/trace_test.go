package batch

import (
	"strings"
	"testing"
	"time"
)

const miniTrace = `
; comment line
  1   0  -1  300  -1  -1  -1   4   360  -1  1   7  1  -1  2  1  -1  -1
  2  30  -1   -1  -1  -1  -1   2   120  -1  1   9  1  -1  0  1  -1  -1
  3  60  -1   90  64  -1  -1  -1   100  -1  1   7  1  -1  1  1  -1  -1
  4  90  -1   -1  -1  -1  -1  -1    -1  -1  5   9  1  -1  0  1  -1  -1
  5 120  -1   80  -1  -1  -1   2    -1  -1  1   9  1  -1  1  1  -1  -1
`

func TestParseTraceSWF(t *testing.T) {
	recs, err := ParseTrace(strings.NewReader(miniTrace))
	if err != nil {
		t.Fatal(err)
	}
	// Record 4 has neither processors nor any runtime: skipped.
	if len(recs) != 4 {
		t.Fatalf("parsed %d records, want 4", len(recs))
	}
	r := recs[0]
	if r.ID != 1 || r.Submit != 0 || r.Run != 300*time.Second || r.Procs != 4 ||
		r.Req != 360*time.Second || r.User != "u7" || r.Queue != 2 || r.Status != 1 {
		t.Fatalf("record 1 parsed as %+v", r)
	}
	// Record 3 falls back from requested to allocated processors.
	if recs[2].Procs != 64 {
		t.Fatalf("record 3 procs %d, want allocated fallback 64", recs[2].Procs)
	}
	// Record 5 has no requested time: the run time stands in.
	if recs[3].Req != 0 || recs[3].Run != 80*time.Second {
		t.Fatalf("record 5 parsed as %+v", recs[3])
	}

	if _, err := ParseTrace(strings.NewReader("1 2 3\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ParseTrace(strings.NewReader(strings.Replace(miniTrace, "300", "x", 1))); err == nil {
		t.Fatal("unparsable field accepted")
	}
}

func TestTraceJobsMapping(t *testing.T) {
	recs, err := ParseTrace(strings.NewReader(miniTrace))
	if err != nil {
		t.Fatal(err)
	}
	jobs, actual := TraceJobs(recs, 32)
	if len(jobs) != 4 {
		t.Fatalf("mapped %d jobs, want 4", len(jobs))
	}
	j := jobs[0]
	if j.Nodes != 4 || j.Priority != 2 || j.User != "u7" ||
		j.Est != 360*time.Second || j.Submit != 0 {
		t.Fatalf("job 1 mapped as %+v", j)
	}
	// The recorded runtime replays through the Actual hook; the
	// estimate stands in when the trace does not know it.
	if got := actual(j, j.Est); got != 300*time.Second {
		t.Fatalf("actual(job 1) = %v, want the recorded 300s", got)
	}
	if got := actual(jobs[1], jobs[1].Est); got != 120*time.Second {
		t.Fatalf("actual(job 2) = %v, want its 120s estimate (run unknown)", got)
	}
	// A gang wider than the cluster is clamped to it.
	if jobs[2].Nodes != 32 {
		t.Fatalf("job 3 nodes %d, want clamped 32", jobs[2].Nodes)
	}
	// Job 5's estimate falls back to the recorded runtime.
	if jobs[3].Est != 80*time.Second {
		t.Fatalf("job 5 est %v, want 80s", jobs[3].Est)
	}
}

// TestExampleTraceAllPolicies is the integration test over the bundled
// trace: every policy (with and without preemption) drains the same
// recorded workload to completion, deterministically, with no gang
// overlap — the clusterctl -trace comparison path.
func TestExampleTraceAllPolicies(t *testing.T) {
	recs, err := LoadTrace("../../examples/traces/sample.swf")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 24 {
		t.Fatalf("sample trace has %d records, want 24", len(recs))
	}
	run := func(pol Policy, preempt bool) Report {
		jobs, actual := TraceJobs(recs, 32)
		s := New(Config{
			Cluster:       newTestCluster(32),
			Policy:        pol,
			Actual:        actual,
			TrunkSlowdown: 1.1,
			Preempt:       preempt,
		})
		submitAll(t, s, jobs)
		return s.Run()
	}
	for _, pol := range Policies() {
		for _, preempt := range []bool{false, true} {
			a := run(pol, preempt)
			if len(a.Jobs) != 24 || a.Failed != 0 {
				t.Fatalf("%v preempt=%v: finished %d jobs, %d failed", pol, preempt, len(a.Jobs), a.Failed)
			}
			checkNoOverlap(t, a.Jobs, 32)
			b := run(pol, preempt)
			if a.Makespan != b.Makespan || a.AvgWait != b.AvgWait {
				t.Fatalf("%v preempt=%v: replay diverged (%v/%v vs %v/%v)",
					pol, preempt, a.Makespan, a.AvgWait, b.Makespan, b.AvgWait)
			}
		}
	}
	// The trace's shape separates the disciplines: u12's six wide jobs
	// block the head, so EASY must beat FIFO on makespan, and the
	// fair-share order must cut the light users' average wait.
	fifo, easy, fair := run(FIFO, false), run(Backfill, false), run(FairShare, false)
	if easy.Makespan >= fifo.Makespan {
		t.Errorf("easy makespan %v not below fifo %v on the sample trace", easy.Makespan, fifo.Makespan)
	}
	lightWait := func(rep Report) time.Duration {
		var sum time.Duration
		var n int
		for _, j := range rep.Jobs {
			if j.User != "u12" {
				sum += j.Wait()
				n++
			}
		}
		return sum / time.Duration(n)
	}
	if lightWait(fair) > lightWait(easy) {
		t.Errorf("fair-share light-user wait %v above easy %v", lightWait(fair), lightWait(easy))
	}
}

// TestParseTraceMalformed pins the hardening sweep: every corrupt
// shape is rejected with an error naming the offending line and field,
// while SWF's -1 "unknown" marker stays legal everywhere the replay
// reads.
func TestParseTraceMalformed(t *testing.T) {
	const good = "1 0 -1 300 -1 -1 -1 4 360 -1 1 7 1 -1 2 1 -1 -1"
	mutate := func(field int, val string) string {
		f := strings.Fields(good)
		f[field-1] = val
		return strings.Join(f, " ")
	}
	cases := []struct {
		name    string
		line    string
		wantErr string // substring the error must carry; "" means legal
	}{
		{"short line", "1 2 3", "want >= 15"},
		{"non-numeric run time", mutate(4, "abc"), "field 4"},
		{"non-numeric procs", mutate(8, "four"), "field 8"},
		{"negative job number", mutate(1, "-9"), "field 1 (job number)"},
		{"negative submit", mutate(2, "-5"), "field 2 (submit time)"},
		{"negative run time", mutate(4, "-300"), "field 4 (run time)"},
		{"negative allocated procs", mutate(5, "-2"), "field 5 (allocated procs)"},
		{"negative requested procs", mutate(8, "-4"), "field 8 (requested procs)"},
		{"negative requested time", mutate(9, "-60"), "field 9 (requested time)"},
		{"negative user id", mutate(12, "-7"), "field 12 (user id)"},
		{"unknown submit marker", mutate(2, "-1"), ""},
		{"unknown run marker", mutate(4, "-1"), ""},
		{"unknown user marker", mutate(12, "-1"), ""},
		{"fractional seconds", mutate(2, "0.5"), ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The malformed record rides behind a good one, so the
			// error must point at line 2, not line 1.
			_, err := ParseTrace(strings.NewReader(good + "\n" + tc.line + "\n"))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("legal record rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("malformed record %q accepted", tc.line)
			}
			if !strings.Contains(err.Error(), tc.wantErr) || !strings.Contains(err.Error(), "line 2") {
				t.Fatalf("error %q lacks %q or the line number", err, tc.wantErr)
			}
		})
	}
}

// Package batch is a Slurm-like batch scheduler and resource manager
// for the simulated GPU cluster. The paper's 32-node cluster is shared
// infrastructure: in practice such machines are driven through a batch
// front door that queues job submissions, gang-allocates node ranges,
// and accounts utilization — not through hand-written per-experiment
// mains. This package supplies that layer for the simulators grown from
// the paper: a Cluster of nodes (GPU count, memory, interconnect group
// derived from the netsim switch topology), a Job spec (gang size,
// estimated runtime, priority, workload kind), a priority queue with
// FIFO, EASY-backfill, conservative-backfill, and fair-share policies,
// and a job lifecycle driven by a virtual-time event loop. Gangs can be
// suspended mid-run through a checkpoint/restart protocol — on priority
// (Config.Preempt) or round-robin on a quantum boundary
// (Config.Quantum, time-sliced gang scheduling) — with drains and
// restores contending for the two directions of a duplex store link
// (linksim.go), and an optional suspend-to-host tier that keeps images
// in node RAM, demoting them to the store only under memory pressure
// (suspend.go). Workload adapters execute jobs on the functional
// simulators (cluster LBM + tracer, distributed CG, parallel heat
// stencil) and derive runtime estimates from the calibrated perfmodel
// hardware model.
//
// All scheduling time is virtual (time.Duration since scheduler start);
// nothing sleeps. Only workload execution — when an Executor is
// attached — does real work.
//
// The hot paths are indexed rather than scanned (index.go): placement
// enumerates an incrementally maintained free-range set, the backfill
// shadow descends an order-statistic treap over running completion
// events, future arrivals sit in a calendar queue, and the pending
// queue removes in O(1) via tombstones — so the same event loop that
// schedules the paper's 32 nodes drains a million-job queue on ten
// thousand (see docs/PERFORMANCE.md). DebugVerifyShadows cross-checks
// the incremental shadow against the full replay it replaced.
package batch

import (
	"fmt"
	"time"
)

// JobKind identifies the workload class a job runs, one per
// computational kernel family the paper's cluster serves.
type JobKind int

const (
	// KindLBM is a parallel lattice-Boltzmann flow simulation (package
	// cluster) with an optional pollutant-tracer post-pass (package
	// tracer), the paper's primary workload.
	KindLBM JobKind = iota
	// KindCG is a distributed conjugate-gradient solve of a Poisson
	// system (package sparse, Figure 15 decomposition).
	KindCG
	// KindPDE is a cluster-parallel explicit heat stencil (package pde,
	// Figure 14 proxy-point exchange).
	KindPDE
	numKinds
)

func (k JobKind) String() string {
	switch k {
	case KindLBM:
		return "lbm"
	case KindCG:
		return "cg"
	case KindPDE:
		return "pde"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// JobState is a job's lifecycle position: Queued -> Running -> Done or
// Failed.
type JobState int

const (
	// Queued means submitted and waiting for an allocation.
	Queued JobState = iota
	// Running means gang-allocated and executing.
	Running
	// Done means completed successfully.
	Done
	// Failed means the workload reported an error; the job still
	// occupied its allocation for its full runtime (a crash at the end
	// of the run, the common failure shape on real clusters).
	Failed
	// Canceled means the job was withdrawn by Scheduler.Cancel before
	// completing. A canceled job keeps whatever run segments it already
	// held (their node time is real and stays accounted); its
	// checkpoint image, if any, is discarded.
	Canceled
)

func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Job is one batch submission. Callers fill the spec fields; the
// scheduler owns the lifecycle fields after Submit.
type Job struct {
	// ID is assigned by Submit, unique per scheduler.
	ID int
	// Name is a free-form label for reports.
	Name string
	// Kind selects the workload adapter.
	Kind JobKind
	// Nodes is the gang size: the job needs this many nodes, allocated
	// as one contiguous range, for its whole runtime.
	Nodes int
	// Priority orders the queue; higher runs first. Equal priorities
	// fall back to submit time, then job ID, so replays are
	// deterministic. Priority also gates preemption: a blocked job may
	// only suspend running jobs of strictly lower priority.
	Priority int
	// User attributes the job to a submitting principal. The fair-share
	// policy orders the queue by each user's decayed usage; the empty
	// string is a distinct anonymous user.
	User string
	// Problem is the per-node sub-domain extents for KindLBM/KindPDE,
	// or {n, n, 1} selecting an n x n Poisson grid for KindCG. Zero
	// selects a per-kind default (see ResolvedProblem).
	Problem [3]int
	// Steps counts simulation steps (LBM/PDE) or solver iterations
	// (CG); zero means 1 (see ResolvedSteps).
	Steps int
	// Est is the caller's runtime estimate (Slurm's walltime); zero
	// asks the scheduler's Estimator. Backfill reservations trust this
	// value, exactly like the real thing.
	Est time.Duration
	// Submit is the virtual arrival time. Jobs may be submitted with a
	// future arrival; the scheduler holds them until the clock reaches
	// it. Zero means "now". Like the other spec fields it is never
	// mutated by the scheduler: the resolved arrival is Arrival().
	Submit time.Duration

	// State, Start and End are scheduler-owned lifecycle fields. Start
	// is the first dispatch; a preempted job keeps it across restarts.
	State      JobState
	Start, End time.Duration
	// Alloc is the gang allocation while Running and, after completion,
	// the final segment's allocation (earlier ones are in History).
	Alloc Allocation
	// History records every run segment in dispatch order. A
	// run-to-completion job has one entry; a preempted job has one per
	// dispatch, the earlier ones flagged Preempted.
	History []Segment
	// Detail is the workload adapter's result summary (mass balance,
	// solver residual, tracer centroid, ...).
	Detail string
	// Err records the workload failure for Failed jobs.
	Err error

	// Fields below are resolved by Submit from the spec — the spec
	// itself stays caller-owned and pristine, so the same specs can be
	// replayed against another scheduler.
	est     time.Duration // resolved estimate
	steps   int           // resolved Steps (>= 1)
	problem [3]int        // resolved Problem (per-kind default applied)
	arrive  time.Duration // resolved arrival (Submit clamped to the clock)
	memNeed int64         // per-node memory footprint
	shadow  time.Duration // head reservation at backfill time (invariant checks)

	// Preemption / checkpoint-restart accounting (scheduler-owned).
	workTotal   time.Duration // true total work, fixed at first dispatch (Actual hook)
	workLeft    time.Duration // unstretched work remaining
	doneWork    time.Duration // scheduler-known completed work (estimate basis)
	restoreCost time.Duration // reload charge pending for the next dispatch
	overhead    time.Duration // checkpoint+restore time charged so far
	lostWork    time.Duration // wall time faults destroyed since the last banked boundary
	snapshot    *Snapshot     // saved workload image between dispatches
	waveFor     *Job          // victim side: the blocked job this drain is for
	segStart    time.Duration // current segment's dispatch instant
	segRestore  time.Duration // restore prefix (link wait + transfer) inside the current segment
	segFactor   float64       // trunk stretch factor of the current segment
	promise     time.Duration // reserved start recorded when first bypassed
	readStart   time.Duration // current segment's store-read transfer start (mid-restore refunds)
	readEnd     time.Duration // ...and its end; zero when the segment carries no store read
	readWait    time.Duration // read-queue wait charged to RestoreWait for this segment
	hostAlloc   Allocation    // nodes whose RAM pins the suspended image (suspend-to-host)
	demoteEnd   time.Duration // instant an in-flight demotion write settles; 0 when none

	// Time-slicing (scheduler-owned, see Config.Quantum). A resident
	// gang whose remaining segment outlives the quantum carries a
	// slice-boundary event instead of its completion event: sliceFull
	// remembers where the segment would really end, and the event loop
	// either extends the slice or suspends the gang at the boundary.
	sliceFull time.Duration // true end of the current segment if never sliced
	rrStamp   time.Duration // last slice-suspension instant (round-robin key)
	qpos      int           // index in the pending queue's slice (-1 when absent)

	// Counters and flags, grouped at the tail so they pack — queue
	// scans walk thousands of pending jobs per pass and are
	// cache-bound on this struct's size.
	preempts    int32 // times this job was preempted on priority
	slices      int32 // times this job was suspended at a quantum boundary
	faults      int32 // times a fault killed this job's gang mid-segment
	banks       int32 // proactive checkpoint banks settled (Config.CheckpointInterval)
	waveLeft    int32 // victims still draining on this job's behalf
	backfilled  bool
	preempting  bool // currently draining its checkpoint
	promised    bool
	wavePending bool          // a preemption wave is draining on this job's behalf
	sliceEnd    bool          // the pending End event is a quantum boundary
	slicing     bool          // current checkpoint drain is a slice suspension
	ckptDue     bool          // the pending End event is a proactive-checkpoint boundary
	banking     bool          // currently draining a proactive bank (gang stays seated)
	ckptSlice   time.Duration // quantum boundary displaced by an armed bank, restored at settle
	hostDrain   bool          // current drain stays in host RAM (suspend-to-host)
	hostImage   bool          // suspended image resident in host RAM, memory pinned
	canceled    bool          // Cancel hit the job mid-drain: discard at requeue
	forceStore  bool          // pending suspension must take the store tier: its
	// in-RAM image would pin the very memory the beneficiary needs
}

// Segment is one dispatch of a job: the gang it ran on and the interval
// it held those nodes, including any restore and checkpoint overhead.
// Preempted marks segments that ended in a checkpoint rather than
// completion.
type Segment struct {
	Alloc      Allocation
	Start, End time.Duration
	Preempted  bool
}

// Estimate returns the runtime estimate the scheduler resolved at
// submit time (Est, or the Estimator's answer).
func (j *Job) Estimate() time.Duration { return j.est }

// ResolvedSteps returns the step count the scheduler resolved at submit
// (Steps, or the per-kind default of 1).
func (j *Job) ResolvedSteps() int { return j.steps }

// ResolvedProblem returns the problem extents the scheduler resolved at
// submit (Problem, or the per-kind default).
func (j *Job) ResolvedProblem() [3]int { return j.problem }

// Arrival returns the resolved arrival time: Submit, clamped up to the
// virtual clock at submission.
func (j *Job) Arrival() time.Duration { return j.arrive }

// Wait returns the queue wait time (Start - Arrival) for started jobs.
func (j *Job) Wait() time.Duration { return j.Start - j.arrive }

// Runtime returns End - Start for completed jobs.
func (j *Job) Runtime() time.Duration { return j.End - j.Start }

// Backfilled reports whether the job jumped a blocked higher-priority
// job under the backfill policy.
func (j *Job) Backfilled() bool { return j.backfilled }

// Preemptions returns how many times the job was checkpointed off its
// gang to make room for a higher-priority arrival.
func (j *Job) Preemptions() int { return int(j.preempts) }

// TimeSlices returns how many times the job was suspended at a quantum
// boundary to share its nodes round-robin (Config.Quantum).
func (j *Job) TimeSlices() int { return int(j.slices) }

// Faults returns how many times a fault (node crash or trunk outage)
// killed this job's gang mid-segment (Config.Faults).
func (j *Job) Faults() int { return int(j.faults) }

// Banks returns how many proactive checkpoints the job banked in place
// at Config.CheckpointInterval boundaries.
func (j *Job) Banks() int { return int(j.banks) }

// LostWork returns the wall time this job's gangs spent on work that
// faults destroyed — execution since the last banked boundary that had
// to be redone from the checkpoint.
func (j *Job) LostWork() time.Duration { return j.lostWork }

// CheckpointOverhead returns the total checkpoint and restore time the
// scheduler charged to this job's allocations.
func (j *Job) CheckpointOverhead() time.Duration { return j.overhead }

// Promise returns the start time reserved for this job when another job
// was first scheduled ahead of it (the EASY shadow or the conservative
// reservation), and whether one was ever recorded.
func (j *Job) Promise() (time.Duration, bool) { return j.promise, j.promised }

// BusyTime returns the node-holding time summed over run segments —
// End-Start for a run-to-completion job, and the sum excluding queued
// gaps for a preempted one.
func (j *Job) BusyTime() time.Duration {
	var d time.Duration
	for _, seg := range j.History {
		d += seg.End - seg.Start
	}
	return d
}

// rrKey is the round-robin leg of the queue order: the arrival for a
// job never sliced, the last suspension instant otherwise — so a gang
// suspended at a quantum boundary re-enters the queue behind every
// waiter of equal rank and resumes only after each has had a turn.
// Without a quantum rrStamp stays zero and rrKey is exactly the
// arrival, preserving the pre-timeslice order.
func (j *Job) rrKey() time.Duration {
	if j.rrStamp > j.arrive {
		return j.rrStamp
	}
	return j.arrive
}

// estLeft returns the scheduler-known remaining runtime estimate: the
// declared estimate minus observed progress, floored at a millisecond.
// Restore charges are accounted separately.
func (j *Job) estLeft() time.Duration {
	d := j.est - j.doneWork
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (j *Job) String() string {
	return fmt.Sprintf("job %d %q (%s, %d nodes, prio %d)", j.ID, j.Name, j.Kind, j.Nodes, j.Priority)
}

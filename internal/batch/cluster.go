package batch

import (
	"fmt"
	"time"

	"gpucluster/internal/netsim"
	"gpucluster/internal/sched"
)

// NodeSpec describes one cluster node. The defaults mirror the paper's
// Stony Brook machine: one GeForce FX 5800 Ultra per node, 2.5 GB of
// host memory.
type NodeSpec struct {
	// GPUs is the accelerator count.
	GPUs int
	// MemBytes is the host memory available to a job's per-node block.
	MemBytes int64
	// Group is the interconnect group derived from the switch topology:
	// 0 for ports on the primary non-blocking switch, 1 for ports
	// reached through the stacking trunk (netsim.Config.NonBlockingPorts).
	Group int
}

// Allocation is a gang of contiguous nodes granted to one job.
// Contiguity keeps a job's ranks on neighboring switch ports, the
// placement the paper's pairwise schedule assumes.
type Allocation struct {
	// First is the lowest node index; the gang is [First, First+Count).
	First, Count int
	// Grid maps the gang onto the most cubic 3D arrangement for the
	// workload's domain decomposition (sched.Arrange3D).
	Grid sched.NodeGrid
	// CrossesTrunk reports whether the range spans both interconnect
	// groups, so the job's border exchanges pay the stacking-trunk
	// bandwidth of Section 4.3.
	CrossesTrunk bool
}

// Nodes returns the allocated node indices in rank order.
func (a Allocation) Nodes() []int {
	out := make([]int, a.Count)
	for i := range out {
		out[i] = a.First + i
	}
	return out
}

func (a Allocation) String() string {
	return fmt.Sprintf("nodes [%d,%d) as %v", a.First, a.First+a.Count, a.Grid)
}

// Cluster is the resource manager's machine state: homogeneous nodes on
// the simulated switch, a free/used bitmap for gang allocation, and
// per-node busy accounting for the utilization report.
type Cluster struct {
	nodes []NodeSpec
	net   netsim.Config
	used  []bool
	busy  []time.Duration
}

// NewCluster builds an n-node cluster attached to the given switch
// configuration; node interconnect groups follow net.NonBlockingPorts.
func NewCluster(n int, net netsim.Config) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("batch: invalid cluster size %d", n))
	}
	c := &Cluster{
		nodes: make([]NodeSpec, n),
		net:   net,
		used:  make([]bool, n),
		busy:  make([]time.Duration, n),
	}
	for i := range c.nodes {
		group := 0
		if net.NonBlockingPorts > 0 && i >= net.NonBlockingPorts {
			group = 1
		}
		c.nodes[i] = NodeSpec{GPUs: 1, MemBytes: 2560 << 20, Group: group}
	}
	return c
}

// Size returns the node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// Spec returns node i's description.
func (c *Cluster) Spec(i int) NodeSpec { return c.nodes[i] }

// Net returns the interconnect configuration.
func (c *Cluster) Net() netsim.Config { return c.net }

// FreeNodes returns how many nodes are currently unallocated.
func (c *Cluster) FreeNodes() int {
	n := 0
	for _, u := range c.used {
		if !u {
			n++
		}
	}
	return n
}

// contiguousFit returns the start of the first free run of k nodes in
// the bitmap, or -1. Shared by live allocation and the backfill
// shadow-time simulation.
func contiguousFit(used []bool, k int) int {
	run := 0
	for i, u := range used {
		if u {
			run = 0
			continue
		}
		run++
		if run == k {
			return i - k + 1
		}
	}
	return -1
}

// Alloc gang-allocates the first contiguous free range of k nodes,
// mapped through sched.Arrange3D. It reports false when no such range
// exists.
func (c *Cluster) Alloc(k int) (Allocation, bool) {
	if k <= 0 || k > len(c.nodes) {
		return Allocation{}, false
	}
	first := contiguousFit(c.used, k)
	if first < 0 {
		return Allocation{}, false
	}
	for i := first; i < first+k; i++ {
		c.used[i] = true
	}
	a := Allocation{
		First: first,
		Count: k,
		Grid:  sched.Arrange3D(k),
	}
	nb := c.net.NonBlockingPorts
	a.CrossesTrunk = nb > 0 && nb < len(c.nodes) && first < nb && first+k > nb
	return a, true
}

// Release frees an allocation and credits each node's busy accounting
// with the job's runtime.
func (c *Cluster) Release(a Allocation, ran time.Duration) {
	for i := a.First; i < a.First+a.Count; i++ {
		if !c.used[i] {
			panic(fmt.Sprintf("batch: double release of node %d", i))
		}
		c.used[i] = false
		c.busy[i] += ran
	}
}

// BusyTimes returns a copy of per-node accumulated busy time.
func (c *Cluster) BusyTimes() []time.Duration {
	out := make([]time.Duration, len(c.busy))
	copy(out, c.busy)
	return out
}

// usedCopy snapshots the allocation bitmap for shadow-time simulation.
func (c *Cluster) usedCopy() []bool {
	out := make([]bool, len(c.used))
	copy(out, c.used)
	return out
}

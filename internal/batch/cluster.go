package batch

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gpucluster/internal/netsim"
	"gpucluster/internal/sched"
)

// NodeSpec describes one cluster node. The defaults mirror the paper's
// Stony Brook machine: one GeForce FX 5800 Ultra per node, 2.5 GB of
// host memory.
type NodeSpec struct {
	// GPUs is the accelerator count.
	GPUs int
	// MemBytes is the host memory available to a job's per-node block.
	MemBytes int64
	// Group is the interconnect group derived from the switch topology:
	// 0 for ports on the primary non-blocking switch, 1 for ports
	// reached through the stacking trunk (netsim.Config.NonBlockingPorts).
	Group int
}

// NodeRange is one contiguous run of node indices, [First, First+Count).
type NodeRange struct {
	First, Count int
}

// Allocation is a gang of nodes granted to one job: one contiguous
// range in the common case — contiguity keeps a job's ranks on
// neighboring switch ports, the placement the paper's pairwise schedule
// assumes — or several disjoint ranges when the topology-aware engine
// assembles a gang from free fragments.
type Allocation struct {
	// Ranges are the granted node runs, disjoint and ascending. Rank r
	// runs on the r-th node of the concatenation (see Port).
	Ranges []NodeRange
	// Count is the total node count across Ranges.
	Count int
	// Grid maps the gang onto the most cubic 3D arrangement for the
	// workload's domain decomposition (sched.Arrange3D).
	Grid sched.NodeGrid
	// CrossesTrunk reports whether the node set spans both interconnect
	// groups, so the job's border exchanges pay the stacking-trunk
	// bandwidth of Section 4.3.
	CrossesTrunk bool
}

// Contiguous reports whether the gang occupies a single node range.
func (a Allocation) Contiguous() bool { return len(a.Ranges) == 1 }

// Nodes returns the allocated node indices in rank order.
func (a Allocation) Nodes() []int {
	out := make([]int, 0, a.Count)
	for _, r := range a.Ranges {
		for i := 0; i < r.Count; i++ {
			out = append(out, r.First+i)
		}
	}
	return out
}

// Port returns the switch port (node index) rank r is placed on: ranks
// walk the ranges in ascending node order, so for a contiguous gang
// port = First + r.
func (a Allocation) Port(r int) int {
	for _, nr := range a.Ranges {
		if r < nr.Count {
			return nr.First + r
		}
		r -= nr.Count
	}
	panic(fmt.Sprintf("batch: rank %d outside %d-node allocation", r, a.Count))
}

func (a Allocation) String() string {
	var b strings.Builder
	for i, r := range a.Ranges {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "[%d,%d)", r.First, r.First+r.Count)
	}
	return fmt.Sprintf("nodes %s as %v", b.String(), a.Grid)
}

// Cluster is the resource manager's machine state: nodes on the
// simulated switch, a free/used bitmap for gang allocation, and
// per-node busy accounting for the utilization report. The bitmap
// stays authoritative for hypothetical-state probes (canPlace over a
// copy), but live enumeration goes through the incrementally
// maintained free-range index (index.go), so placement probes cost
// O(free runs) instead of O(nodes).
type Cluster struct {
	nodes []NodeSpec
	net   netsim.Config
	used  []bool
	busy  []time.Duration
	free  int // count of false entries in used
	// reserved holds per-node host memory pinned by suspended-to-host
	// checkpoint images (see suspend.go): the node may be free for
	// placement, but only jobs fitting the remaining memory land on it.
	reserved []int64
	// fragSamples/fragSum sample the free-fragment count at each
	// allocation instant, the report's fragmentation statistic.
	fragSamples, fragSum int
	// down flags nodes taken out by an injected fault (fault.go). A
	// down node is also marked used — so placement, shadows, and the
	// free-range index exclude it exactly like an allocation — and
	// flagged here so a crashed node is distinguishable from a busy one.
	down      []bool
	downCount int
	// trunkDown marks an injected whole-trunk outage: while it holds, no
	// placement may cross the trunk (eligible runs clip at the boundary
	// and crossing assemblies are refused, see placement.go).
	trunkDown bool

	// idx is the ordered free-range set, split on commit and merged on
	// Release — live candidate enumeration and the O(1) fragment count.
	idx freeIndex
	// constrained flags nodes the uniform fast paths must inspect
	// individually: a spec diverging from the construction default, or
	// a suspend-to-host reservation pinning memory. When the set is
	// empty, every free node is eligible for every admitted job and the
	// count-based shadow in sched.go is exact.
	constrained  bitset
	nConstrained int
	baseMem      int64
	// memSorted caches the per-node memory specs ascending for the
	// NodesWithMem admission count; SetSpec invalidates it.
	memSorted []int64
	memDirty  bool
	// runBuf and candBuf are scratch for eligibleRuns/candidates, so
	// steady-state placement probes allocate nothing.
	runBuf  []NodeRange
	candBuf []candidate
}

// NewCluster builds an n-node cluster attached to the given switch
// configuration; node interconnect groups follow net.NonBlockingPorts.
func NewCluster(n int, net netsim.Config) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("batch: invalid cluster size %d", n))
	}
	c := &Cluster{
		nodes:    make([]NodeSpec, n),
		net:      net,
		used:     make([]bool, n),
		busy:     make([]time.Duration, n),
		free:     n,
		down:     make([]bool, n),
		reserved: make([]int64, n),
		baseMem:  2560 << 20,
		memDirty: true,
	}
	for i := range c.nodes {
		group := 0
		if net.NonBlockingPorts > 0 && i >= net.NonBlockingPorts {
			group = 1
		}
		c.nodes[i] = NodeSpec{GPUs: 1, MemBytes: c.baseMem, Group: group}
	}
	c.idx.init(n)
	c.constrained.init(n)
	return c
}

// refreshConstrained recomputes node i's membership in the constrained
// set: divergent memory spec, or a live suspend-to-host reservation.
func (c *Cluster) refreshConstrained(i int) {
	if c.nodes[i].MemBytes != c.baseMem || c.reserved[i] != 0 {
		if !c.constrained.has(i) {
			c.constrained.set(i)
			c.nConstrained++
		}
		return
	}
	if c.constrained.has(i) {
		c.constrained.clear(i)
		c.nConstrained--
	}
}

// Size returns the node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// Spec returns node i's description.
func (c *Cluster) Spec(i int) NodeSpec { return c.nodes[i] }

// SetSpec overrides node i's description, e.g. to model a heterogeneous
// machine where some nodes carry less memory. The admission check and
// the placement engine consult per-node specs, not a cluster-wide one.
func (c *Cluster) SetSpec(i int, s NodeSpec) {
	c.nodes[i] = s
	c.memDirty = true
	c.refreshConstrained(i)
}

// Net returns the interconnect configuration.
func (c *Cluster) Net() netsim.Config { return c.net }

// FreeNodes returns how many nodes are currently unallocated.
func (c *Cluster) FreeNodes() int { return c.free }

// NodesWithMem counts nodes (busy or not) offering at least need bytes,
// the admission-feasibility bound checked at submit. Deliberately
// spec-based: transient suspend-to-host reservations must not bounce a
// submission the machine can serve once images demote or resume. The
// count is a binary search over a cached sorted spec list, so the
// per-Submit cost is O(log nodes).
func (c *Cluster) NodesWithMem(need int64) int {
	if c.memDirty {
		c.memSorted = c.memSorted[:0]
		for _, s := range c.nodes {
			c.memSorted = append(c.memSorted, s.MemBytes)
		}
		sort.Slice(c.memSorted, func(i, k int) bool { return c.memSorted[i] < c.memSorted[k] })
		c.memDirty = false
	}
	i := sort.Search(len(c.memSorted), func(i int) bool { return c.memSorted[i] >= need })
	return len(c.memSorted) - i
}

// avail returns node i's memory available to a new placement: its spec
// minus whatever suspended checkpoint images currently pin.
func (c *Cluster) avail(i int) int64 { return c.nodes[i].MemBytes - c.reserved[i] }

// NodesWithAvail counts nodes (busy or not) whose *available* memory —
// spec minus resident suspended images — covers need: the capacity
// bound reservation planning uses, where NodesWithMem's spec-based
// count would promise slots that pinned images cannot honor. Only the
// constrained set is inspected individually: a node with the default
// spec and no reservation always offers exactly baseMem.
func (c *Cluster) NodesWithAvail(need int64) int {
	n := c.NodesWithMem(need)
	if c.nConstrained == 0 {
		return n
	}
	for i := c.constrained.nextSet(0); i >= 0; i = c.constrained.nextSet(i + 1) {
		if c.nodes[i].MemBytes >= need && c.avail(i) < need {
			n--
		}
	}
	return n
}

// ReservedBytes returns the host memory node i has pinned under
// suspended-to-host checkpoint images.
func (c *Cluster) ReservedBytes(i int) int64 { return c.reserved[i] }

// reserve pins bytes of host memory on every node of a — a suspended
// job's checkpoint image staying resident in RAM.
func (c *Cluster) reserve(a Allocation, bytes int64) {
	for _, r := range a.Ranges {
		for i := r.First; i < r.First+r.Count; i++ {
			c.reserved[i] += bytes
			c.refreshConstrained(i)
		}
	}
	if debugCheckIndex {
		c.idx.verify(c.used)
	}
}

// unreserve releases a reservation made with reserve.
func (c *Cluster) unreserve(a Allocation, bytes int64) {
	for _, r := range a.Ranges {
		for i := r.First; i < r.First+r.Count; i++ {
			c.reserved[i] -= bytes
			if c.reserved[i] < 0 {
				panic(fmt.Sprintf("batch: negative memory reservation on node %d", i))
			}
			c.refreshConstrained(i)
		}
	}
}

// freeAndFits reports whether every node of a is currently unallocated
// and offers at least need bytes — the home-resume eligibility check for
// a suspended-to-host job returning to the nodes holding its image.
func (c *Cluster) freeAndFits(a Allocation, need int64) bool {
	for _, r := range a.Ranges {
		for i := r.First; i < r.First+r.Count; i++ {
			if c.used[i] || c.avail(i) < need {
				return false
			}
		}
	}
	return true
}

// rangesCrossTrunk reports whether a node set (disjoint ascending
// ranges) spans both sides of the stacking trunk.
func (c *Cluster) rangesCrossTrunk(rs []NodeRange) bool {
	nb := c.net.NonBlockingPorts
	if nb <= 0 || nb >= len(c.nodes) || len(rs) == 0 {
		return false
	}
	last := rs[len(rs)-1]
	return rs[0].First < nb && last.First+last.Count > nb
}

// Alloc gang-allocates the first contiguous free range of k nodes,
// mapped through sched.Arrange3D — the legacy first-fit path. It
// reports false when no such range exists. The scheduler goes through
// the placement engine (candidates/commit) instead.
func (c *Cluster) Alloc(k int) (Allocation, bool) {
	cands := c.candidates(k, 0, PlaceFirstFit)
	if len(cands) == 0 {
		return Allocation{}, false
	}
	return c.commit(cands[0]), true
}

// commit marks a candidate's nodes used and builds its Allocation. The
// candidate's ranges (or its inline single window) are copied into the
// Allocation, never aliased — candidates reuse the cluster's scratch
// buffers and the home-resume path passes a live Allocation's slice.
func (c *Cluster) commit(cand candidate) Allocation {
	var rs []NodeRange
	if cand.single.Count > 0 {
		rs = []NodeRange{cand.single}
	} else {
		rs = append([]NodeRange(nil), cand.ranges...)
	}
	total := 0
	for _, r := range rs {
		for i := r.First; i < r.First+r.Count; i++ {
			if c.used[i] {
				panic(fmt.Sprintf("batch: double allocation of node %d", i))
			}
			c.used[i] = true
		}
		c.idx.alloc(r.First, r.Count)
		total += r.Count
	}
	c.free -= total
	c.fragSamples++
	c.fragSum += c.idx.runs
	if debugCheckIndex {
		c.idx.verify(c.used)
	}
	return Allocation{
		Ranges:       rs,
		Count:        total,
		Grid:         sched.Arrange3D(total),
		CrossesTrunk: cand.crosses,
	}
}

// Release frees an allocation and credits each node's busy accounting
// with the job's runtime.
func (c *Cluster) Release(a Allocation, ran time.Duration) {
	for _, r := range a.Ranges {
		for i := r.First; i < r.First+r.Count; i++ {
			if !c.used[i] {
				panic(fmt.Sprintf("batch: double release of node %d", i))
			}
			c.used[i] = false
			c.busy[i] += ran
		}
		c.idx.release(r.First, r.Count)
		c.free += r.Count
	}
	if debugCheckIndex {
		c.idx.verify(c.used)
	}
}

// nodeDown takes node i out of service for an injected fault. The node
// must be unallocated — the fault layer kills resident gangs first —
// and is then marked used, so every consumer (placement candidates,
// canPlace probes, shadows, the free-range index, debugCheckIndex's
// verify) excludes it exactly as if a one-node gang were committed:
// down/up split and merge free runs like alloc/release. Busy accounting
// is not credited for down time — a dead node is not doing work.
func (c *Cluster) nodeDown(i int) {
	if c.used[i] {
		panic(fmt.Sprintf("batch: node %d still allocated at nodeDown", i))
	}
	if c.down[i] {
		panic(fmt.Sprintf("batch: node %d already down", i))
	}
	c.used[i] = true
	c.down[i] = true
	c.downCount++
	c.idx.alloc(i, 1)
	c.free--
	if debugCheckIndex {
		c.idx.verify(c.used)
	}
}

// nodeUp returns a repaired node to service, merging it back into the
// free-range index exactly like a release, with no busy credit.
func (c *Cluster) nodeUp(i int) {
	if !c.down[i] {
		panic(fmt.Sprintf("batch: node %d not down at nodeUp", i))
	}
	c.down[i] = false
	c.downCount--
	c.used[i] = false
	c.idx.release(i, 1)
	c.free++
	if debugCheckIndex {
		c.idx.verify(c.used)
	}
}

// DownNodes returns how many nodes are currently failed.
func (c *Cluster) DownNodes() int { return c.downCount }

// creditBusy credits each node of a with ran of busy time without
// freeing anything — a proactive checkpoint closes an accounting
// segment while the gang stays seated on its nodes.
func (c *Cluster) creditBusy(a Allocation, ran time.Duration) {
	for _, r := range a.Ranges {
		for i := r.First; i < r.First+r.Count; i++ {
			c.busy[i] += ran
		}
	}
}

// freeFragCount counts the maximal free runs by scanning the bitmap —
// the brute-force reference the index property suite checks c.idx.runs
// against; live accounting reads the index instead.
func (c *Cluster) freeFragCount() int {
	frags := 0
	inRun := false
	for _, u := range c.used {
		if !u && !inRun {
			frags++
		}
		inRun = !u
	}
	return frags
}

// BusyTimes returns a copy of per-node accumulated busy time.
func (c *Cluster) BusyTimes() []time.Duration {
	out := make([]time.Duration, len(c.busy))
	copy(out, c.busy)
	return out
}

// AvgFreeFrags returns the mean number of free fragments observed at
// allocation instants — how shattered the machine was when gangs were
// placed. Zero before any allocation.
func (c *Cluster) AvgFreeFrags() float64 {
	if c.fragSamples == 0 {
		return 0
	}
	return float64(c.fragSum) / float64(c.fragSamples)
}

// usedCopy snapshots the allocation bitmap for shadow-time simulation.
func (c *Cluster) usedCopy() []bool {
	out := make([]bool, len(c.used))
	copy(out, c.used)
	return out
}

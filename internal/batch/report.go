package batch

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report summarizes a drained queue: the cluster-operator view
// (makespan, utilization) and the user view (waits) of one scheduling
// run.
type Report struct {
	// Policy is the discipline that produced this schedule.
	Policy Policy
	// Placement is the gang-placement engine that produced it.
	Placement Placement
	// Jobs lists every finished job in completion order. The entries
	// are insulated copies taken at report time: replaying the same
	// specs against another scheduler (the clusterctl comparison
	// pattern) resets the originals' lifecycle fields, but an earlier
	// report keeps the schedule it measured, so per-job statistics
	// (AvgWaitUnder, MedianEstimate) stay recomputable after any
	// number of replays.
	Jobs []*Job
	// Makespan is the virtual time from scheduler start to the last
	// completion.
	Makespan time.Duration
	// NodeBusy is each node's accumulated allocated time.
	NodeBusy []time.Duration
	// Utilization is total busy node-time over Makespan * nodes.
	Utilization float64
	// AvgWait and MaxWait aggregate queue waits (Start - Submit).
	AvgWait, MaxWait time.Duration
	// ShortCut is the median resolved runtime estimate of the run's
	// jobs, and ShortWait the mean wait of the jobs at or below it —
	// the short-job population time-slicing exists to help. They are
	// plain conveniences over Jobs: since Jobs holds insulated copies,
	// MedianEstimate and AvgWaitUnder recompute them identically even
	// after the specs have been replayed against other schedulers.
	ShortCut, ShortWait time.Duration
	// Backfilled counts jobs that jumped a blocked reservation.
	Backfilled int
	// Preempted counts jobs checkpointed off their gang at least once
	// on priority; PreemptEvents counts every such checkpoint drain.
	Preempted, PreemptEvents int
	// Sliced counts jobs suspended at a quantum boundary at least once
	// under time-slicing (Config.Quantum); SliceEvents counts every
	// slice suspension.
	Sliced, SliceEvents int
	// CheckpointOverhead is the total checkpoint and restore time
	// charged to allocations across all jobs, including time spent
	// queued for the shared checkpoint-store link.
	CheckpointOverhead time.Duration
	// DrainWait is the total time checkpoint drains spent queued for
	// the write direction of the shared store link behind other
	// in-flight transfers — the bandwidth-contention cost of
	// overlapping waves. Zero means every drain had the link to
	// itself.
	DrainWait time.Duration
	// RestoreWait is the read-direction mirror: total time restores
	// spent queued behind earlier in-flight restores (and, in
	// half-duplex mode, drains) — the contention cost of a mass
	// re-dispatch after a preemption wave or a quantum boundary.
	RestoreWait time.Duration
	// HostSuspends counts checkpoint drains that stayed in host RAM
	// under Config.SuspendToHost, skipping the store round-trip.
	HostSuspends int
	// Demotions counts host-resident images evicted to the checkpoint
	// store because a blocked job needed their pinned memory;
	// DemotionTime is the store-write time those evictions occupied
	// the link's write direction (not charged to any job's overhead —
	// no nodes are held while an image drains out of RAM).
	Demotions    int
	DemotionTime time.Duration
	// LostWork is the total wall time injected faults destroyed: work a
	// killed gang had run since its last banked History boundary, which
	// the job redoes after restarting from that checkpoint. Exactly the
	// gap in the busy ≡ work + overhead balance (fault_test.go pins
	// busy ≡ work + overhead + lost work).
	LostWork time.Duration
	// FaultKills counts gang kills caused by injected faults (a job may
	// be killed several times); Faulted counts jobs killed at least
	// once.
	FaultKills, Faulted int
	// NodeFaults and TrunkOutages count the injected down events
	// applied; NodeDownTime is total node-unavailable time (still-down
	// nodes clamped to the makespan).
	NodeFaults, TrunkOutages int
	NodeDownTime             time.Duration
	// Availability is 1 − NodeDownTime/(Makespan × nodes): the machine-
	// time fraction the storm left standing. 1 when no faults were
	// injected.
	Availability float64
	// Banks counts proactive checkpoints settled under
	// Config.CheckpointInterval.
	Banks int
	// Goodput is completed (Done) jobs per virtual second of makespan —
	// the figure proactive checkpointing defends under a failure storm.
	Goodput float64
	// UserNodeTime aggregates granted node-time per Job.User — the raw
	// (undecayed) fair-share accounting view.
	UserNodeTime map[string]time.Duration
	// Failed counts jobs whose workload reported an error.
	Failed int
	// Canceled counts jobs withdrawn by Cancel before completing.
	Canceled int
	// TrunkCrossed counts jobs whose gang spanned the stacking trunk,
	// paying the Section 4.3 bandwidth on every border exchange.
	TrunkCrossed int
	// SplitGangs counts jobs placed on a non-contiguous node set
	// assembled from free fragments.
	SplitGangs int
	// AvgFreeFrags is the mean number of free fragments seen at
	// allocation instants — the fragmentation the placements created.
	AvgFreeFrags float64
	// Events is the recorded lifecycle stream, copied from the attached
	// Config.Recorder when it can replay one (the built-in MemRecorder);
	// empty otherwise. It backs Timeline, Explain, and the report-level
	// WriteChromeTrace (obs.go, explain.go).
	Events []Event
}

// report assembles the Report from the scheduler's terminal state.
// Finished jobs are copied into the report: the scheduler-owned
// lifecycle fields of the caller's *Job specs are reset at the next
// Submit (the replay pattern), and an already-issued report must not
// see its schedule rewritten under it.
func (s *Scheduler) report() Report {
	jobs := make([]*Job, len(s.finished))
	for i, j := range s.finished {
		cp := *j
		jobs[i] = &cp
	}
	r := Report{
		Policy:        s.cfg.Policy,
		Placement:     s.cfg.Placement,
		Jobs:          jobs,
		NodeBusy:      s.cfg.Cluster.BusyTimes(),
		Backfilled:    s.backfills,
		PreemptEvents: s.preemptEvents,
		SliceEvents:   s.sliceEvents,
		DrainWait:     s.drainWait,
		RestoreWait:   s.restoreWait,
		HostSuspends:  s.hostSuspends,
		Demotions:     s.demotions,
		DemotionTime:  s.demoteTime,
		LostWork:      s.lostWork,
		FaultKills:    s.faultKills,
		NodeFaults:    s.nodeFaults,
		TrunkOutages:  s.trunkFaults,
		Banks:         s.banks,
		Availability:  1,
		UserNodeTime:  make(map[string]time.Duration),
		AvgFreeFrags:  s.cfg.Cluster.AvgFreeFrags(),
	}
	if src, ok := s.cfg.Recorder.(interface{ Events() []Event }); ok {
		r.Events = append([]Event(nil), src.Events()...)
	}
	var waitSum time.Duration
	for _, j := range r.Jobs {
		if j.End > r.Makespan {
			r.Makespan = j.End
		}
		w := j.Wait()
		waitSum += w
		if w > r.MaxWait {
			r.MaxWait = w
		}
		if j.State == Failed {
			r.Failed++
		}
		if j.State == Canceled {
			r.Canceled++
		}
		if j.Alloc.CrossesTrunk {
			r.TrunkCrossed++
		}
		if len(j.Alloc.Ranges) > 1 {
			r.SplitGangs++
		}
		if j.preempts > 0 {
			r.Preempted++
		}
		if j.slices > 0 {
			r.Sliced++
		}
		if j.faults > 0 {
			r.Faulted++
		}
		r.CheckpointOverhead += j.overhead
		for _, seg := range j.History {
			r.UserNodeTime[j.User] += time.Duration(seg.Alloc.Count) * (seg.End - seg.Start)
		}
	}
	if n := len(s.finished); n > 0 {
		r.AvgWait = waitSum / time.Duration(n)
	}
	r.ShortCut = r.MedianEstimate()
	r.ShortWait = r.AvgWaitUnder(r.ShortCut)
	if r.Makespan > 0 {
		var busy time.Duration
		for _, b := range r.NodeBusy {
			busy += b
		}
		r.Utilization = float64(busy) / (float64(r.Makespan) * float64(len(r.NodeBusy)))
	}
	// Fault availability and goodput: down time already settled plus
	// still-down nodes clamped to the makespan.
	r.NodeDownTime = s.downTime
	for i := range s.downSince {
		if s.downSince[i] >= 0 && r.Makespan > s.downSince[i] {
			r.NodeDownTime += r.Makespan - s.downSince[i]
		}
	}
	if r.Makespan > 0 {
		if n := len(r.NodeBusy); n > 0 {
			r.Availability = 1 - float64(r.NodeDownTime)/(float64(r.Makespan)*float64(n))
		}
		done := 0
		for _, j := range r.Jobs {
			if j.State == Done {
				done++
			}
		}
		r.Goodput = float64(done) / r.Makespan.Seconds()
	}
	return r
}

// AvgWaitUnder returns the mean queue wait over finished jobs whose
// resolved runtime estimate is at most cut — the short-job wait, the
// figure time-slicing exists to improve. Zero when no job qualifies.
func (r Report) AvgWaitUnder(cut time.Duration) time.Duration {
	var sum time.Duration
	n := 0
	for _, j := range r.Jobs {
		if j.Estimate() <= cut {
			sum += j.Wait()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / time.Duration(n)
}

// MedianEstimate returns the median resolved runtime estimate over
// finished jobs — the short/long cut the clusterctl comparison table
// uses. Zero for an empty report.
func (r Report) MedianEstimate() time.Duration {
	if len(r.Jobs) == 0 {
		return 0
	}
	ests := make([]time.Duration, len(r.Jobs))
	for i, j := range r.Jobs {
		ests[i] = j.Estimate()
	}
	sort.Slice(ests, func(i, k int) bool { return ests[i] < ests[k] })
	return ests[len(ests)/2]
}

// NodeUtilization returns each node's busy fraction of the makespan.
func (r Report) NodeUtilization() []float64 {
	out := make([]float64, len(r.NodeBusy))
	if r.Makespan <= 0 {
		return out
	}
	for i, b := range r.NodeBusy {
		out[i] = float64(b) / float64(r.Makespan)
	}
	return out
}

// RoundDuration rounds a virtual duration for display: second
// granularity for long schedules, millisecond for the sub-10s runs of
// shrunk -execute demos.
func RoundDuration(d time.Duration) time.Duration {
	if d < 10*time.Second {
		return d.Round(time.Millisecond)
	}
	return d.Round(time.Second)
}

// String renders the operator report: the summary line followed by a
// per-node utilization bar chart.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %-8s placement %-9s %d jobs, makespan %v, utilization %.1f%%, avg wait %v, max wait %v, %d backfilled, %d failed\n",
		r.Policy, r.Placement, len(r.Jobs), RoundDuration(r.Makespan),
		100*r.Utilization, RoundDuration(r.AvgWait), RoundDuration(r.MaxWait),
		r.Backfilled, r.Failed)
	fmt.Fprintf(&b, "  placement: %d trunk-crossing gangs, %d split gangs, %.1f avg free fragments at allocation\n",
		r.TrunkCrossed, r.SplitGangs, r.AvgFreeFrags)
	if r.Canceled > 0 {
		fmt.Fprintf(&b, "  canceled: %d jobs withdrawn before completion\n", r.Canceled)
	}
	if r.PreemptEvents > 0 {
		fmt.Fprintf(&b, "  preemption: %d jobs preempted (%d checkpoints), %v checkpoint/restore overhead\n",
			r.Preempted, r.PreemptEvents, RoundDuration(r.CheckpointOverhead))
	}
	if r.SliceEvents > 0 {
		fmt.Fprintf(&b, "  timeslice: %d jobs sliced (%d suspensions)\n", r.Sliced, r.SliceEvents)
	}
	if r.DrainWait > 0 || r.RestoreWait > 0 {
		fmt.Fprintf(&b, "  store-link contention: drains queued %v (write), restores queued %v (read)\n",
			RoundDuration(r.DrainWait), RoundDuration(r.RestoreWait))
	}
	if r.HostSuspends > 0 {
		fmt.Fprintf(&b, "  suspend-to-host: %d in-RAM suspensions, %d demoted to store (%v of store writes)\n",
			r.HostSuspends, r.Demotions, RoundDuration(r.DemotionTime))
	}
	if r.NodeFaults > 0 || r.TrunkOutages > 0 {
		fmt.Fprintf(&b, "  faults: %d node crashes, %d trunk outages, %d gang kills (%d jobs), lost work %v, %d proactive banks\n",
			r.NodeFaults, r.TrunkOutages, r.FaultKills, r.Faulted, RoundDuration(r.LostWork), r.Banks)
		fmt.Fprintf(&b, "  availability %.2f%%, goodput %.4f jobs/s, node down-time %v\n",
			100*r.Availability, r.Goodput, RoundDuration(r.NodeDownTime))
	}
	if r.Policy == FairShare && len(r.UserNodeTime) > 0 {
		users := make([]string, 0, len(r.UserNodeTime))
		//batchlint:allow determinism -- keys are collected and sorted on the next line before the fair-share block renders
		for u := range r.UserNodeTime {
			users = append(users, u)
		}
		sort.Strings(users)
		b.WriteString("  fair-share:")
		for _, u := range users {
			fmt.Fprintf(&b, " %s=%v", u, RoundDuration(r.UserNodeTime[u]))
		}
		b.WriteByte('\n')
	}
	const width = 40
	for i, u := range r.NodeUtilization() {
		filled := int(u*width + 0.5)
		if filled > width {
			filled = width
		}
		fmt.Fprintf(&b, "  node %2d [%s%s] %5.1f%%\n",
			i, strings.Repeat("#", filled), strings.Repeat(".", width-filled), 100*u)
	}
	return b.String()
}

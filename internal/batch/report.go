package batch

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report summarizes a drained queue: the cluster-operator view
// (makespan, utilization) and the user view (waits) of one scheduling
// run.
type Report struct {
	// Policy is the discipline that produced this schedule.
	Policy Policy
	// Placement is the gang-placement engine that produced it.
	Placement Placement
	// Jobs lists every finished job in completion order.
	Jobs []*Job
	// Makespan is the virtual time from scheduler start to the last
	// completion.
	Makespan time.Duration
	// NodeBusy is each node's accumulated allocated time.
	NodeBusy []time.Duration
	// Utilization is total busy node-time over Makespan * nodes.
	Utilization float64
	// AvgWait and MaxWait aggregate queue waits (Start - Submit).
	AvgWait, MaxWait time.Duration
	// Backfilled counts jobs that jumped a blocked reservation.
	Backfilled int
	// Preempted counts jobs checkpointed off their gang at least once;
	// PreemptEvents counts every checkpoint drain.
	Preempted, PreemptEvents int
	// CheckpointOverhead is the total checkpoint and restore time
	// charged to allocations across all jobs.
	CheckpointOverhead time.Duration
	// UserNodeTime aggregates granted node-time per Job.User — the raw
	// (undecayed) fair-share accounting view.
	UserNodeTime map[string]time.Duration
	// Failed counts jobs whose workload reported an error.
	Failed int
	// TrunkCrossed counts jobs whose gang spanned the stacking trunk,
	// paying the Section 4.3 bandwidth on every border exchange.
	TrunkCrossed int
	// SplitGangs counts jobs placed on a non-contiguous node set
	// assembled from free fragments.
	SplitGangs int
	// AvgFreeFrags is the mean number of free fragments seen at
	// allocation instants — the fragmentation the placements created.
	AvgFreeFrags float64
}

// report assembles the Report from the scheduler's terminal state.
func (s *Scheduler) report() Report {
	r := Report{
		Policy:        s.cfg.Policy,
		Placement:     s.cfg.Placement,
		Jobs:          s.finished,
		NodeBusy:      s.cfg.Cluster.BusyTimes(),
		Backfilled:    s.backfills,
		PreemptEvents: s.preemptEvents,
		UserNodeTime:  make(map[string]time.Duration),
		AvgFreeFrags:  s.cfg.Cluster.AvgFreeFrags(),
	}
	var waitSum time.Duration
	for _, j := range s.finished {
		if j.End > r.Makespan {
			r.Makespan = j.End
		}
		w := j.Wait()
		waitSum += w
		if w > r.MaxWait {
			r.MaxWait = w
		}
		if j.State == Failed {
			r.Failed++
		}
		if j.Alloc.CrossesTrunk {
			r.TrunkCrossed++
		}
		if len(j.Alloc.Ranges) > 1 {
			r.SplitGangs++
		}
		if j.preempts > 0 {
			r.Preempted++
		}
		r.CheckpointOverhead += j.overhead
		for _, seg := range j.History {
			r.UserNodeTime[j.User] += time.Duration(seg.Alloc.Count) * (seg.End - seg.Start)
		}
	}
	if n := len(s.finished); n > 0 {
		r.AvgWait = waitSum / time.Duration(n)
	}
	if r.Makespan > 0 {
		var busy time.Duration
		for _, b := range r.NodeBusy {
			busy += b
		}
		r.Utilization = float64(busy) / (float64(r.Makespan) * float64(len(r.NodeBusy)))
	}
	return r
}

// NodeUtilization returns each node's busy fraction of the makespan.
func (r Report) NodeUtilization() []float64 {
	out := make([]float64, len(r.NodeBusy))
	if r.Makespan <= 0 {
		return out
	}
	for i, b := range r.NodeBusy {
		out[i] = float64(b) / float64(r.Makespan)
	}
	return out
}

// RoundDuration rounds a virtual duration for display: second
// granularity for long schedules, millisecond for the sub-10s runs of
// shrunk -execute demos.
func RoundDuration(d time.Duration) time.Duration {
	if d < 10*time.Second {
		return d.Round(time.Millisecond)
	}
	return d.Round(time.Second)
}

// String renders the operator report: the summary line followed by a
// per-node utilization bar chart.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %-8s placement %-9s %d jobs, makespan %v, utilization %.1f%%, avg wait %v, max wait %v, %d backfilled, %d failed\n",
		r.Policy, r.Placement, len(r.Jobs), RoundDuration(r.Makespan),
		100*r.Utilization, RoundDuration(r.AvgWait), RoundDuration(r.MaxWait),
		r.Backfilled, r.Failed)
	fmt.Fprintf(&b, "  placement: %d trunk-crossing gangs, %d split gangs, %.1f avg free fragments at allocation\n",
		r.TrunkCrossed, r.SplitGangs, r.AvgFreeFrags)
	if r.PreemptEvents > 0 {
		fmt.Fprintf(&b, "  preemption: %d jobs preempted (%d checkpoints), %v checkpoint/restore overhead\n",
			r.Preempted, r.PreemptEvents, RoundDuration(r.CheckpointOverhead))
	}
	if r.Policy == FairShare && len(r.UserNodeTime) > 0 {
		users := make([]string, 0, len(r.UserNodeTime))
		for u := range r.UserNodeTime {
			users = append(users, u)
		}
		sort.Strings(users)
		b.WriteString("  fair-share:")
		for _, u := range users {
			fmt.Fprintf(&b, " %s=%v", u, RoundDuration(r.UserNodeTime[u]))
		}
		b.WriteByte('\n')
	}
	const width = 40
	for i, u := range r.NodeUtilization() {
		filled := int(u*width + 0.5)
		if filled > width {
			filled = width
		}
		fmt.Fprintf(&b, "  node %2d [%s%s] %5.1f%%\n",
			i, strings.Repeat("#", filled), strings.Repeat(".", width-filled), 100*u)
	}
	return b.String()
}

package batch

import (
	"fmt"
	"strings"
	"time"
)

// Report summarizes a drained queue: the cluster-operator view
// (makespan, utilization) and the user view (waits) of one scheduling
// run.
type Report struct {
	// Policy is the discipline that produced this schedule.
	Policy Policy
	// Placement is the gang-placement engine that produced it.
	Placement Placement
	// Jobs lists every finished job in completion order.
	Jobs []*Job
	// Makespan is the virtual time from scheduler start to the last
	// completion.
	Makespan time.Duration
	// NodeBusy is each node's accumulated allocated time.
	NodeBusy []time.Duration
	// Utilization is total busy node-time over Makespan * nodes.
	Utilization float64
	// AvgWait and MaxWait aggregate queue waits (Start - Submit).
	AvgWait, MaxWait time.Duration
	// Backfilled counts jobs that jumped a blocked reservation.
	Backfilled int
	// Failed counts jobs whose workload reported an error.
	Failed int
	// TrunkCrossed counts jobs whose gang spanned the stacking trunk,
	// paying the Section 4.3 bandwidth on every border exchange.
	TrunkCrossed int
	// SplitGangs counts jobs placed on a non-contiguous node set
	// assembled from free fragments.
	SplitGangs int
	// AvgFreeFrags is the mean number of free fragments seen at
	// allocation instants — the fragmentation the placements created.
	AvgFreeFrags float64
}

// report assembles the Report from the scheduler's terminal state.
func (s *Scheduler) report() Report {
	r := Report{
		Policy:       s.cfg.Policy,
		Placement:    s.cfg.Placement,
		Jobs:         s.finished,
		NodeBusy:     s.cfg.Cluster.BusyTimes(),
		Backfilled:   s.backfills,
		AvgFreeFrags: s.cfg.Cluster.AvgFreeFrags(),
	}
	var waitSum time.Duration
	for _, j := range s.finished {
		if j.End > r.Makespan {
			r.Makespan = j.End
		}
		w := j.Wait()
		waitSum += w
		if w > r.MaxWait {
			r.MaxWait = w
		}
		if j.State == Failed {
			r.Failed++
		}
		if j.Alloc.CrossesTrunk {
			r.TrunkCrossed++
		}
		if len(j.Alloc.Ranges) > 1 {
			r.SplitGangs++
		}
	}
	if n := len(s.finished); n > 0 {
		r.AvgWait = waitSum / time.Duration(n)
	}
	if r.Makespan > 0 {
		var busy time.Duration
		for _, b := range r.NodeBusy {
			busy += b
		}
		r.Utilization = float64(busy) / (float64(r.Makespan) * float64(len(r.NodeBusy)))
	}
	return r
}

// NodeUtilization returns each node's busy fraction of the makespan.
func (r Report) NodeUtilization() []float64 {
	out := make([]float64, len(r.NodeBusy))
	if r.Makespan <= 0 {
		return out
	}
	for i, b := range r.NodeBusy {
		out[i] = float64(b) / float64(r.Makespan)
	}
	return out
}

// RoundDuration rounds a virtual duration for display: second
// granularity for long schedules, millisecond for the sub-10s runs of
// shrunk -execute demos.
func RoundDuration(d time.Duration) time.Duration {
	if d < 10*time.Second {
		return d.Round(time.Millisecond)
	}
	return d.Round(time.Second)
}

// String renders the operator report: the summary line followed by a
// per-node utilization bar chart.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %-8s placement %-9s %d jobs, makespan %v, utilization %.1f%%, avg wait %v, max wait %v, %d backfilled, %d failed\n",
		r.Policy, r.Placement, len(r.Jobs), RoundDuration(r.Makespan),
		100*r.Utilization, RoundDuration(r.AvgWait), RoundDuration(r.MaxWait),
		r.Backfilled, r.Failed)
	fmt.Fprintf(&b, "  placement: %d trunk-crossing gangs, %d split gangs, %.1f avg free fragments at allocation\n",
		r.TrunkCrossed, r.SplitGangs, r.AvgFreeFrags)
	const width = 40
	for i, u := range r.NodeUtilization() {
		filled := int(u*width + 0.5)
		if filled > width {
			filled = width
		}
		fmt.Fprintf(&b, "  node %2d [%s%s] %5.1f%%\n",
			i, strings.Repeat("#", filled), strings.Repeat(".", width-filled), 100*u)
	}
	return b.String()
}

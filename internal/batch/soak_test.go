package batch

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// Soak parameters: the bundled examples/traces/soak.swf is exactly
// WriteSyntheticSWF's output for these arguments — several users, a
// skewed width/length mix, and enough jobs (>= 2,000) to stress the
// event loop through thousands of suspensions per policy.
const (
	soakPath  = "../../examples/traces/soak.swf"
	soakSeed  = 2004 // the paper's conference year
	soakJobs  = 2400
	soakUsers = 6
	soakNodes = 32
	soakGap   = 23 // mean arrival gap (s): ~85% offered load on 32 nodes
)

// TestSoakTraceMatchesGenerator pins the checked-in soak trace to its
// generator byte for byte, so the artifact cannot silently drift from
// the code that documents it. Set REGEN_SOAK=1 to rewrite the file
// after changing the generator or the parameters above.
func TestSoakTraceMatchesGenerator(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSyntheticSWF(&buf, soakSeed, soakJobs, soakUsers, soakNodes, soakGap); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("REGEN_SOAK") != "" {
		if err := os.WriteFile(soakPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	disk, err := os.ReadFile(soakPath)
	if err != nil {
		t.Fatalf("%v (run with REGEN_SOAK=1 to generate)", err)
	}
	if !bytes.Equal(disk, buf.Bytes()) {
		t.Fatalf("%s does not match WriteSyntheticSWF(seed=%d, jobs=%d, users=%d, n=%d, gap=%d); regenerate with REGEN_SOAK=1",
			soakPath, soakSeed, soakJobs, soakUsers, soakNodes, soakGap)
	}
}

// TestSoakTraceReplay replays the bundled >= 2,000-job trace under
// every policy with time-slicing on, plus the FIFO run-to-completion
// baseline, and asserts the schedule-level invariants: every job
// finishes, no node is double-booked across thousands of suspension/
// resume cycles, utilization stays physical, and time-slicing is never
// worse than FIFO on makespan for this trace.
func TestSoakTraceReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("soak replay skipped in -short mode")
	}
	recs, err := LoadTrace(soakPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2000 {
		t.Fatalf("soak trace has %d records, want >= 2000", len(recs))
	}
	users := map[string]bool{}
	for _, r := range recs {
		users[r.User] = true
	}
	if len(users) != soakUsers {
		t.Fatalf("soak trace has %d users, want %d", len(users), soakUsers)
	}
	run := func(pol Policy, quantum time.Duration) Report {
		jobs, actual := TraceJobs(recs, soakNodes)
		s := New(Config{
			Cluster:       newTestCluster(soakNodes),
			Policy:        pol,
			Actual:        actual,
			TrunkSlowdown: 1.1,
			Quantum:       quantum,
		})
		submitAll(t, s, jobs)
		rep := s.Run()
		if len(rep.Jobs) != len(recs) || rep.Failed != 0 {
			t.Fatalf("%v quantum=%v: finished %d of %d jobs, %d failed",
				pol, quantum, len(rep.Jobs), len(recs), rep.Failed)
		}
		checkNoOverlap(t, rep.Jobs, soakNodes)
		if rep.Utilization <= 0 || rep.Utilization > 1 {
			t.Fatalf("%v quantum=%v: utilization %.3f out of range", pol, quantum, rep.Utilization)
		}
		if rep.Makespan <= 0 {
			t.Fatalf("%v quantum=%v: zero makespan", pol, quantum)
		}
		return rep
	}

	fifo := run(FIFO, 0)
	const quantum = 300 * time.Second
	for _, pol := range Policies() {
		rep := run(pol, quantum)
		if rep.SliceEvents == 0 {
			t.Errorf("%v: soak replay never sliced under a %v quantum", pol, quantum)
		}
		// Time-slicing pays checkpoint/restore overhead but never loses
		// work: every sliced backfilling discipline still beats FIFO
		// run-to-completion on makespan for this trace. Sliced FIFO has
		// no backfill to win the overhead back, so it is only held to a
		// 5% bound over its run-to-completion self.
		limit := fifo.Makespan
		if pol == FIFO {
			limit = fifo.Makespan * 21 / 20
		}
		if rep.Makespan > limit {
			t.Errorf("%v with quantum %v: makespan %v worse than the FIFO run-to-completion bound %v",
				pol, quantum, rep.Makespan, limit)
		}
	}
}

// TestSoakStormReplay replays the bundled soak trace under a seeded
// failure storm — hundreds of node crashes with repair times across the
// multi-hour schedule, proactive checkpointing on — for every policy
// with time-slicing, and asserts the fault invariants at soak scale:
// every job still reaches a terminal state, busy time balances exactly
// against work + overhead + lost work, no gang ever runs inside a down
// window, and the storm demonstrably connected (gangs killed, banks
// settled). TrunkSlowdown and Actual stay off so the balance is exact
// rather than stretch-approximated.
func TestSoakStormReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("soak storm replay skipped in -short mode")
	}
	recs, err := LoadTrace(soakPath)
	if err != nil {
		t.Fatal(err)
	}
	plan := GenFaultPlan(soakSeed, soakNodes, 24*time.Hour, 4*time.Hour)
	wins := planWindows(plan, soakNodes)
	ck, rs := fixedCosts(time.Second, 500*time.Millisecond)
	kills, banks := 0, 0
	for _, pol := range Policies() {
		jobs, _ := TraceJobs(recs, soakNodes)
		s := New(Config{
			Cluster:        newTestCluster(soakNodes),
			Policy:         pol,
			Quantum:        300 * time.Second,
			CheckpointCost: ck,
			RestoreCost:    rs,
			Faults:         plan,
			// The interval must undercut the 300s quantum: a proactive
			// bank only arms when it lands before the slice boundary.
			CheckpointInterval: 4 * time.Minute,
		})
		submitAll(t, s, jobs)
		rep := s.Run()
		k, b := checkFaultBalance(t, rep, len(recs), nil, wins)
		kills += k
		banks += b
	}
	if kills == 0 || banks == 0 {
		t.Fatalf("vacuity: soak storm connected too little (%d kills, %d banks)", kills, banks)
	}
}

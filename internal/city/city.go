// Package city generates the urban geometry for the Section 5 dispersion
// simulation. The paper uses a detailed polygonal model of the Times
// Square area of New York City: about 1.66 km x 1.13 km, 91 blocks,
// roughly 850 buildings, rasterized onto a 480x400x80 lattice at 3.8 m
// spacing (the model occupies 440x300 lattice cells on the ground).
//
// That proprietary mesh is not available, so this package synthesizes a
// statistically similar Manhattan-style district from a fixed seed: a
// 13x7 grid of blocks (91) separated by avenues and streets, each block
// subdivided into lots carrying buildings with a heavy-tailed height
// distribution (a few towers, many mid-rises). The geometry enters the
// solver exactly as the paper's does — as solid flags on lattice cells —
// so the boundary-evaluation code paths and costs are equivalent.
package city

import (
	"math"
	"math/rand"
)

// Building is an axis-aligned box footprint in meters.
type Building struct {
	X0, Y0, X1, Y1 float64 // footprint (m)
	Height         float64 // roof height (m)
}

// City is a generated district.
type City struct {
	// WidthM, DepthM are the district extents in meters.
	WidthM, DepthM float64
	// Blocks counts the street blocks.
	Blocks int
	// Buildings lists every generated building.
	Buildings []Building
}

// Config parameterizes generation; zero values take the paper-matched
// defaults.
type Config struct {
	// WidthM x DepthM is the district size (default 1660 x 1130 m).
	WidthM, DepthM float64
	// BlocksX x BlocksY is the block grid (default 13 x 7 = 91 blocks).
	BlocksX, BlocksY int
	// AvenueM and StreetM are the road widths separating blocks
	// (default 30 m avenues along x, 18 m streets along y).
	AvenueM, StreetM float64
	// Seed fixes the generator (default 2004).
	Seed int64
	// MeanHeightM is the typical building height (default 45 m);
	// towers reach several times this.
	MeanHeightM float64
}

func (c *Config) defaults() {
	if c.WidthM == 0 {
		c.WidthM = 1660
	}
	if c.DepthM == 0 {
		c.DepthM = 1130
	}
	if c.BlocksX == 0 {
		c.BlocksX = 13
	}
	if c.BlocksY == 0 {
		c.BlocksY = 7
	}
	if c.AvenueM == 0 {
		c.AvenueM = 30
	}
	if c.StreetM == 0 {
		c.StreetM = 18
	}
	if c.Seed == 0 {
		c.Seed = 2004
	}
	if c.MeanHeightM == 0 {
		c.MeanHeightM = 45
	}
}

// Generate builds the synthetic district deterministically from the
// config seed.
func Generate(cfg Config) *City {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &City{
		WidthM: cfg.WidthM,
		DepthM: cfg.DepthM,
		Blocks: cfg.BlocksX * cfg.BlocksY,
	}
	blockW := (cfg.WidthM - float64(cfg.BlocksX+1)*cfg.AvenueM) / float64(cfg.BlocksX)
	blockD := (cfg.DepthM - float64(cfg.BlocksY+1)*cfg.StreetM) / float64(cfg.BlocksY)

	for by := 0; by < cfg.BlocksY; by++ {
		for bx := 0; bx < cfg.BlocksX; bx++ {
			x0 := cfg.AvenueM + float64(bx)*(blockW+cfg.AvenueM)
			y0 := cfg.StreetM + float64(by)*(blockD+cfg.StreetM)
			c.fillBlock(rng, x0, y0, blockW, blockD, cfg.MeanHeightM)
		}
	}
	return c
}

// fillBlock subdivides one block into lots along its long axis, two rows
// deep, and erects a building on most lots (~9-10 per block on average).
func (c *City) fillBlock(rng *rand.Rand, x0, y0, w, d, meanH float64) {
	lots := 5
	rows := 2
	lotW := w / float64(lots)
	lotD := d / float64(rows)
	for r := 0; r < rows; r++ {
		for l := 0; l < lots; l++ {
			if rng.Float64() < 0.065 { // vacant lot / plaza
				continue
			}
			// Setback: buildings do not fill the whole lot.
			inset := 0.04 + 0.08*rng.Float64()
			bx0 := x0 + float64(l)*lotW + inset*lotW
			by0 := y0 + float64(r)*lotD + inset*lotD
			bx1 := x0 + float64(l+1)*lotW - inset*lotW
			by1 := y0 + float64(r+1)*lotD - inset*lotD
			// Heavy-tailed height: lognormal body plus occasional tower.
			h := meanH * math.Exp(0.5*rng.NormFloat64())
			if rng.Float64() < 0.04 {
				h *= 2.5 + 2*rng.Float64() // Times Square towers
			}
			if h < 10 {
				h = 10
			}
			if h > 280 {
				h = 280
			}
			c.Buildings = append(c.Buildings, Building{bx0, by0, bx1, by1, h})
		}
	}
}

// MaxHeight returns the tallest building height in meters.
func (c *City) MaxHeight() float64 {
	var m float64
	for _, b := range c.Buildings {
		if b.Height > m {
			m = b.Height
		}
	}
	return m
}

// Voxelization maps the city onto a lattice.
type Voxelization struct {
	NX, NY, NZ int
	// SpacingM is the lattice spacing in meters (the paper's 3.8 m).
	SpacingM float64
	// OffsetX, OffsetY center the city footprint in the lattice (cells).
	OffsetX, OffsetY int
	solid            []bool
}

// Voxelize rasterizes the city onto an nx x ny x nz lattice with the
// given spacing, centered in x/y. A cell is solid when its center lies
// inside a building footprint below the roof height.
func (c *City) Voxelize(nx, ny, nz int, spacingM float64) *Voxelization {
	v := &Voxelization{
		NX: nx, NY: ny, NZ: nz,
		SpacingM: spacingM,
		solid:    make([]bool, nx*ny*nz),
	}
	cityCellsX := int(c.WidthM / spacingM)
	cityCellsY := int(c.DepthM / spacingM)
	v.OffsetX = (nx - cityCellsX) / 2
	if v.OffsetX < 0 {
		v.OffsetX = 0
	}
	v.OffsetY = (ny - cityCellsY) / 2
	if v.OffsetY < 0 {
		v.OffsetY = 0
	}
	for _, b := range c.Buildings {
		zx0 := v.OffsetX + int(b.X0/spacingM+0.5)
		zx1 := v.OffsetX + int(b.X1/spacingM+0.5)
		zy0 := v.OffsetY + int(b.Y0/spacingM+0.5)
		zy1 := v.OffsetY + int(b.Y1/spacingM+0.5)
		zh := int(b.Height/spacingM + 0.5)
		if zh > nz {
			zh = nz
		}
		for y := max(zy0, 0); y < min(zy1, ny); y++ {
			for x := max(zx0, 0); x < min(zx1, nx); x++ {
				for z := 0; z < zh; z++ {
					v.solid[(z*ny+y)*nx+x] = true
				}
			}
		}
	}
	return v
}

// IsSolid reports whether lattice cell (x, y, z) is inside a building.
// Out-of-range coordinates are fluid.
func (v *Voxelization) IsSolid(x, y, z int) bool {
	if x < 0 || x >= v.NX || y < 0 || y >= v.NY || z < 0 || z >= v.NZ {
		return false
	}
	return v.solid[(z*v.NY+y)*v.NX+x]
}

// Geometry returns the solid predicate in the form the cluster expects.
func (v *Voxelization) Geometry() func(x, y, z int) bool {
	return v.IsSolid
}

// SolidFraction returns the fraction of lattice cells that are solid.
func (v *Voxelization) SolidFraction() float64 {
	n := 0
	for _, s := range v.solid {
		if s {
			n++
		}
	}
	return float64(n) / float64(len(v.solid))
}

// FootprintFraction returns the fraction of ground-level cells covered
// by buildings.
func (v *Voxelization) FootprintFraction() float64 {
	n := 0
	for y := 0; y < v.NY; y++ {
		for x := 0; x < v.NX; x++ {
			if v.solid[y*v.NX+x] {
				n++
			}
		}
	}
	return float64(n) / float64(v.NX*v.NY)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

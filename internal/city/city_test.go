package city

import "testing"

func TestGenerateMatchesPaperStatistics(t *testing.T) {
	c := Generate(Config{})
	if c.Blocks != 91 {
		t.Errorf("blocks = %d, want 91 (the paper's Times Square area)", c.Blocks)
	}
	// "roughly 850 buildings"
	if n := len(c.Buildings); n < 780 || n < 700 || n > 920 {
		t.Errorf("buildings = %d, want ~850", n)
	}
	if c.WidthM != 1660 || c.DepthM != 1130 {
		t.Errorf("extent = %v x %v, want 1660 x 1130", c.WidthM, c.DepthM)
	}
	if h := c.MaxHeight(); h < 100 || h > 280 {
		t.Errorf("max height = %.0f m, want a tower in 100..280", h)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7})
	b := Generate(Config{Seed: 7})
	if len(a.Buildings) != len(b.Buildings) {
		t.Fatalf("nondeterministic: %d vs %d buildings", len(a.Buildings), len(b.Buildings))
	}
	for i := range a.Buildings {
		if a.Buildings[i] != b.Buildings[i] {
			t.Fatalf("building %d differs", i)
		}
	}
	c := Generate(Config{Seed: 8})
	same := len(a.Buildings) == len(c.Buildings)
	if same {
		same = a.Buildings[0] == c.Buildings[0]
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestBuildingsInsideDistrict(t *testing.T) {
	c := Generate(Config{})
	for i, b := range c.Buildings {
		if b.X0 < 0 || b.Y0 < 0 || b.X1 > c.WidthM || b.Y1 > c.DepthM {
			t.Fatalf("building %d outside district: %+v", i, b)
		}
		if b.X0 >= b.X1 || b.Y0 >= b.Y1 || b.Height <= 0 {
			t.Fatalf("degenerate building %d: %+v", i, b)
		}
	}
}

func TestVoxelizePaperResolution(t *testing.T) {
	// The paper: 480x400x80 lattice at 3.8 m, city occupying about
	// 440x300 cells on the ground.
	c := Generate(Config{})
	v := c.Voxelize(480, 400, 80, 3.8)
	cityCellsX := int(c.WidthM / 3.8)
	cityCellsY := int(c.DepthM / 3.8)
	if cityCellsX < 420 || cityCellsX > 450 {
		t.Errorf("city x extent = %d cells, want ~437 (paper: 440)", cityCellsX)
	}
	if cityCellsY < 290 || cityCellsY > 310 {
		t.Errorf("city y extent = %d cells, want ~297 (paper: 300)", cityCellsY)
	}
	fp := v.FootprintFraction()
	if fp < 0.2 || fp > 0.6 {
		t.Errorf("footprint fraction = %.2f, want dense urban coverage", fp)
	}
	sf := v.SolidFraction()
	if sf <= 0 || sf >= fp {
		t.Errorf("solid fraction %.3f must be positive and below footprint %.3f", sf, fp)
	}
	// Streets must exist: some ground row fully crossing the city has
	// fluid cells (avenues).
	fluidGround := 0
	for x := 0; x < 480; x++ {
		if !v.IsSolid(x, 200, 0) {
			fluidGround++
		}
	}
	if fluidGround == 0 {
		t.Error("no fluid cells at ground level — streets missing")
	}
}

func TestVoxelizationBounds(t *testing.T) {
	c := Generate(Config{})
	v := c.Voxelize(100, 80, 20, 20)
	if v.IsSolid(-1, 0, 0) || v.IsSolid(100, 0, 0) || v.IsSolid(0, 0, 20) {
		t.Error("out-of-range cells must be fluid")
	}
	// Geometry closure agrees with IsSolid.
	g := v.Geometry()
	for z := 0; z < 3; z++ {
		for y := 0; y < 80; y += 7 {
			for x := 0; x < 100; x += 7 {
				if g(x, y, z) != v.IsSolid(x, y, z) {
					t.Fatalf("geometry mismatch at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

func TestSolidColumnsMonotoneInZ(t *testing.T) {
	// Buildings are extruded footprints: if a cell is solid, the cell
	// below is too.
	c := Generate(Config{})
	v := c.Voxelize(120, 100, 40, 15)
	for z := 1; z < 40; z++ {
		for y := 0; y < 100; y++ {
			for x := 0; x < 120; x++ {
				if v.IsSolid(x, y, z) && !v.IsSolid(x, y, z-1) {
					t.Fatalf("floating solid at (%d,%d,%d)", x, y, z)
				}
			}
		}
	}
}

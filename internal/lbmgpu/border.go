package lbmgpu

import (
	"gpucluster/internal/gpu"
	"gpucluster/internal/lbm"
	"gpucluster/internal/vecmath"
)

// planeDims returns the border plane extents (a, b) for a dimension,
// matching lbm.Lattice.borderPlane: x planes span the interior, y planes
// include the x ghosts, z planes include x and y ghosts.
func (s *Simulator) planeDims(dim int) (w, h int) {
	switch dim {
	case 0:
		return s.ny, s.nz
	case 1:
		return s.nx + 2, s.nz
	default:
		return s.nx + 2, s.ny + 2
	}
}

// PackBorder gathers the five outgoing distributions of the dim/dir face
// into the compact border texture with a single render pass, reads the
// texture back in one bus transfer (the paper's single glGetTexImage),
// and reorders the payload to the canonical wire format shared with the
// CPU backend.
func (s *Simulator) PackBorder(dim, dir int) []float32 {
	dists := lbm.DirsInto(dim, dir)
	pw, ph := s.planeDims(dim)

	// Lattice plane coordinate (texture space).
	plane := 1 // low border
	if dir > 0 {
		plane = [3]int{s.nx, s.ny, s.nz}[dim]
	}

	// fetch returns the texture location of plane cell (a, b):
	// the containing layer and in-layer coordinates.
	var locate func(a, b int) (layer, tx, ty int)
	switch dim {
	case 0:
		locate = func(a, b int) (int, int, int) { return b + 1, plane, a + 1 }
	case 1:
		locate = func(a, b int) (int, int, int) { return b + 1, a, plane }
	default:
		locate = func(a, b int) (int, int, int) { return plane, a, b }
	}

	bt := s.border[dim]
	must(s.dev.Run(gpu.Pass{
		Name:   "border-gather",
		Target: s.borderPB[dim],
		Program: func(_ []gpu.Sampler, fx, fy int) vecmath.Vec4 {
			a, b := fx, fy
			fifth := false
			if fy >= ph {
				b = fy - ph
				fifth = true
			}
			layer, tx, ty := locate(a, b)
			var out vecmath.Vec4
			if fifth {
				i := dists[4]
				out[0] = s.stacks[distStack(i)].Layer(layer).Fetch(tx, ty)[distChan(i)]
				return out
			}
			for k := 0; k < 4; k++ {
				i := dists[k]
				out[k] = s.stacks[distStack(i)].Layer(layer).Fetch(tx, ty)[distChan(i)]
			}
			return out
		},
	}))
	must(s.dev.CopyToTexture(s.borderPB[dim], bt))
	raw, err := s.dev.Download(bt)
	must(err)

	// Reorder into the canonical payload: plane cells (b outer, a inner)
	// with the 5 distributions consecutive.
	out := make([]float32, 0, 5*pw*ph)
	btw := bt.Width()
	for b := 0; b < ph; b++ {
		for a := 0; a < pw; a++ {
			base := 4 * (b*btw + a)
			out = append(out, raw[base], raw[base+1], raw[base+2], raw[base+3])
			out = append(out, raw[4*((b+ph)*btw+a)])
		}
	}
	return out
}

// UnpackGhost scatters a received payload into the ghost plane of the
// dim/dir face using sub-image uploads over the fast downstream bus
// direction, one rectangle per distribution stack and slice.
func (s *Simulator) UnpackGhost(dim, dir int, data []float32) {
	dists := lbm.DirsInto(dim, -dir)
	pw, ph := s.planeDims(dim)
	if len(data) != 5*pw*ph {
		panic("lbmgpu: ghost payload length mismatch")
	}
	ghost := 0 // texture coordinate of the ghost plane
	if dir > 0 {
		ghost = [3]int{s.nx, s.ny, s.nz}[dim] + 1
	}

	// Group the five distributions by stack; each group becomes one
	// sequence of rect uploads.
	byStack := map[int][]int{}
	for _, i := range dists {
		byStack[distStack(i)] = append(byStack[distStack(i)], i)
	}

	// value returns payload element for plane cell (a, b), dist index k.
	value := func(a, b, k int) float32 { return data[(b*pw+a)*5+k] }
	distPos := map[int]int{}
	for k, i := range dists {
		distPos[i] = k
	}

	switch dim {
	case 0, 1:
		// One thin rectangle per interior slice.
		for b := 0; b < ph; b++ {
			layer := b + 1
			for st, group := range byStack {
				var rect gpu.Rect
				if dim == 0 {
					rect = gpu.Rect{X0: ghost, Y0: 1, X1: ghost + 1, Y1: s.ny + 1}
				} else {
					rect = gpu.Rect{X0: 0, Y0: ghost, X1: s.w, Y1: ghost + 1}
				}
				buf := make([]float32, rect.Fragments()*4)
				for a := 0; a < pw; a++ {
					for _, i := range group {
						buf[a*4+distChan(i)] = value(a, b, distPos[i])
					}
				}
				must(s.dev.UploadRect(s.stacks[st].Layer(layer), rect, buf))
			}
		}
	default:
		// z: a whole ghost layer per stack.
		rect := gpu.Rect{X0: 0, Y0: 0, X1: s.w, Y1: s.h}
		for st, group := range byStack {
			buf := make([]float32, rect.Fragments()*4)
			for b := 0; b < ph; b++ {
				for a := 0; a < pw; a++ {
					for _, i := range group {
						buf[(b*s.w+a)*4+distChan(i)] = value(a, b, distPos[i])
					}
				}
			}
			must(s.dev.UploadRect(s.stacks[st].Layer(ghost), rect, buf))
		}
	}
}

// DensityField downloads the macro stack and returns interior densities.
func (s *Simulator) DensityField() []float32 {
	out := make([]float32, s.nx*s.ny*s.nz)
	i := 0
	for z := 1; z <= s.nz; z++ {
		raw, err := s.dev.Download(s.macro.Layer(z))
		must(err)
		for y := 1; y <= s.ny; y++ {
			for x := 1; x <= s.nx; x++ {
				out[i] = raw[4*(y*s.w+x)]
				i++
			}
		}
	}
	return out
}

// VelocityField downloads the macro stack and returns interior velocities.
func (s *Simulator) VelocityField() []vecmath.Vec3 {
	out := make([]vecmath.Vec3, s.nx*s.ny*s.nz)
	i := 0
	for z := 1; z <= s.nz; z++ {
		raw, err := s.dev.Download(s.macro.Layer(z))
		must(err)
		for y := 1; y <= s.ny; y++ {
			for x := 1; x <= s.nx; x++ {
				base := 4 * (y*s.w + x)
				out[i] = vecmath.Vec3{raw[base+1], raw[base+2], raw[base+3]}
				i++
			}
		}
	}
	return out
}

// TotalMass sums interior fluid density from the macro stack.
func (s *Simulator) TotalMass() float64 {
	var sum float64
	for z := 1; z <= s.nz; z++ {
		raw, err := s.dev.Download(s.macro.Layer(z))
		must(err)
		solidRaw, err := s.dev.Download(s.solid.Layer(z))
		must(err)
		for y := 1; y <= s.ny; y++ {
			for x := 1; x <= s.nx; x++ {
				base := 4 * (y*s.w + x)
				if solidRaw[base] > 0.5 {
					continue
				}
				sum += float64(raw[base])
			}
		}
	}
	return sum
}

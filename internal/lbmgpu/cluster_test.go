package lbmgpu

import (
	"testing"

	"gpucluster/internal/cluster"
	"gpucluster/internal/gpu"
	"gpucluster/internal/lbm"
	"gpucluster/internal/sched"
	"gpucluster/internal/vecmath"
)

// windTunnel returns the shared test configuration: wind over an obstacle
// crossing node borders.
func windTunnel() cluster.Config {
	cfg := cluster.Config{
		Global: [3]int{16, 12, 8},
		Tau:    0.8,
		Geometry: func(x, y, z int) bool {
			return x >= 6 && x < 10 && y >= 4 && y < 8 && z < 4
		},
	}
	cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{0.04, 0, 0}}
	cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceYNeg] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceZNeg] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceZPos] = lbm.FaceSpec{Type: lbm.Wall}
	return cfg
}

func gatherRef(t *testing.T, cfg cluster.Config, grid sched.NodeGrid, steps int) ([]float32, []vecmath.Vec3) {
	t.Helper()
	cfg.Grid = grid
	sim, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(steps)
	return sim.GatherDensity(), sim.GatherVelocity()
}

func TestGPUClusterMatchesCPUCluster(t *testing.T) {
	const steps = 10
	grid := sched.NodeGrid{PX: 2, PY: 2, PZ: 1}

	wantDen, wantVel := gatherRef(t, windTunnel(), grid, steps)

	cfg := windTunnel()
	cfg.Grid = grid
	cfg.NewNode = func(rank int, sub *lbm.Lattice) (cluster.Node, error) {
		dev := gpu.New(gpu.Config{Name: "node-gpu", TextureMemory: 256 << 20, Workers: 2})
		return New(dev, sub)
	}
	sim, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(steps)
	den := sim.GatherDensity()
	vel := sim.GatherVelocity()
	for i := range wantDen {
		if den[i] != wantDen[i] {
			t.Fatalf("density[%d]: gpu cluster %v, cpu cluster %v", i, den[i], wantDen[i])
		}
		if vel[i] != wantVel[i] {
			t.Fatalf("velocity[%d]: gpu cluster %v, cpu cluster %v", i, vel[i], wantVel[i])
		}
	}
}

func TestGPUClusterOutflowCornersMatchCPU(t *testing.T) {
	// Regression test: outflow faces whose ghost fill sweeps across
	// exchange-ghost columns (corner cells between a Ghost face and an
	// Outflow face) once diverged on the GPU, because the outflow
	// source moments were computed from incompletely-defined ghost
	// cells. Sources are now clamped to the interior on both backends.
	cfg := cluster.Config{
		Global: [3]int{20, 14, 10},
		Grid:   sched.NodeGrid{PX: 2, PY: 2, PZ: 1},
		Tau:    0.8,
		Geometry: func(x, y, z int) bool {
			// Buildings touching the sub-domain borders.
			return (x >= 8 && x < 12 && y >= 5 && y < 9 && z < 7) ||
				(x >= 2 && x < 4 && y >= 11 && y < 13 && z < 5)
		},
	}
	cfg.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{-0.025, -0.008, 0}}
	cfg.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceYNeg] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.Outflow}
	cfg.Faces[lbm.FaceZNeg] = lbm.FaceSpec{Type: lbm.Wall}
	cfg.Faces[lbm.FaceZPos] = lbm.FaceSpec{Type: lbm.Outflow}

	const steps = 12
	ref, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(steps)
	wantVel := ref.GatherVelocity()

	gcfg := cfg
	gcfg.NewNode = func(rank int, sub *lbm.Lattice) (cluster.Node, error) {
		dev := gpu.New(gpu.Config{TextureMemory: 256 << 20, Workers: 2})
		return New(dev, sub)
	}
	sim, err := cluster.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(steps)
	vel := sim.GatherVelocity()
	for i := range wantVel {
		if vel[i] != wantVel[i] {
			t.Fatalf("velocity[%d]: gpu %v, cpu %v", i, vel[i], wantVel[i])
		}
	}
}

func TestMixedCPUGPUCluster(t *testing.T) {
	// Half the nodes compute on GPUs, half on CPUs: the wire format is
	// shared, so the result must still match the all-CPU cluster.
	const steps = 8
	grid := sched.NodeGrid{PX: 2, PY: 1, PZ: 1}

	wantDen, _ := gatherRef(t, windTunnel(), grid, steps)

	cfg := windTunnel()
	cfg.Grid = grid
	cfg.NewNode = func(rank int, sub *lbm.Lattice) (cluster.Node, error) {
		if rank%2 == 0 {
			dev := gpu.New(gpu.Config{Name: "node-gpu", TextureMemory: 256 << 20, Workers: 2})
			return New(dev, sub)
		}
		return &cluster.CPUNode{L: sub}, nil
	}
	sim, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(steps)
	den := sim.GatherDensity()
	for i := range wantDen {
		if den[i] != wantDen[i] {
			t.Fatalf("density[%d]: mixed cluster %v, cpu cluster %v", i, den[i], wantDen[i])
		}
	}
}

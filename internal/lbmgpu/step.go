package lbmgpu

import (
	"fmt"

	"gpucluster/internal/gpu"
	"gpucluster/internal/lbm"
	"gpucluster/internal/vecmath"
)

// Step advances the block one time step on the GPU. For each dimension
// the boundary-condition ghost rectangles are refreshed by small render
// passes and the cluster exchange callback runs; then the fused
// stream-and-collide sweep updates the volume slice by slice.
func (s *Simulator) Step(exchange func(dim int)) {
	for dim := 0; dim < 3; dim++ {
		s.fillGhostDim(dim)
		exchange(dim)
	}
	s.sweep()
}

// must panics on pass errors: these indicate programming bugs (malformed
// viewports), not runtime conditions.
func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("lbmgpu: %v", err))
	}
}

// fillGhostDim refreshes the two ghost planes of a dimension from the
// face boundary conditions, as viewport-rectangle passes (the paper's
// "multiple small rectangles" covering the boundary regions of each Z
// slice).
func (s *Simulator) fillGhostDim(dim int) {
	s.fillFace(2*dim, dim)
	s.fillFace(2*dim+1, dim)
}

func (s *Simulator) fillFace(face, dim int) {
	spec := s.cfg.Faces[face]
	switch spec.Type {
	case lbm.Ghost, lbm.Wall, lbm.MovingWall:
		return // exchanged externally / realized as solid ghosts
	}
	neg := face%2 == 0

	// Ghost texture coordinate along dim, plus the source coordinate:
	// the periodic image or the adjacent interior cell.
	extent := [3]int{s.nx, s.ny, s.nz}[dim]
	gcoord := 0
	wrapcoord, edgecoord := extent, 1
	if !neg {
		gcoord = extent + 1
		wrapcoord, edgecoord = 1, extent
	}

	rhoOut := spec.Rho
	if rhoOut == 0 {
		rhoOut = 1
	}
	var feqIn [lbm.Q]float32
	if spec.Type == lbm.Inlet {
		lbm.Feq(&feqIn, rhoOut, spec.U[0], spec.U[1], spec.U[2])
	}

	// The pass geometry per dim: for x and y faces one thin rectangle
	// per interior slice; for z faces the whole ghost layer.
	type planePass struct {
		layer    int      // target z layer
		srcLayer int      // source z layer (differs only for z faces)
		vp       gpu.Rect // viewport on the target layer
	}
	var passes []planePass
	switch dim {
	case 0:
		for z := 1; z <= s.nz; z++ {
			passes = append(passes, planePass{z, z, gpu.Rect{X0: gcoord, Y0: 1, X1: gcoord + 1, Y1: s.ny + 1}})
		}
	case 1:
		for z := 1; z <= s.nz; z++ {
			passes = append(passes, planePass{z, z, gpu.Rect{X0: 0, Y0: gcoord, X1: s.w, Y1: gcoord + 1}})
		}
	default:
		src := wrapcoord
		if spec.Type != lbm.Periodic {
			src = edgecoord
		}
		passes = append(passes, planePass{gcoord, src, gpu.Rect{X0: 0, Y0: 0, X1: s.w, Y1: s.h}})
	}

	for _, pp := range passes {
		for st := 0; st < 5; st++ {
			var prog gpu.FragmentProgram
			switch spec.Type {
			case lbm.Periodic:
				srcTex := s.stacks[st].Layer(pp.srcLayer)
				switch dim {
				case 0:
					prog = func(_ []gpu.Sampler, x, y int) vecmath.Vec4 {
						return srcTex.Fetch(wrapcoord, y)
					}
				case 1:
					prog = func(_ []gpu.Sampler, x, y int) vecmath.Vec4 {
						return srcTex.Fetch(x, wrapcoord)
					}
				default:
					prog = func(_ []gpu.Sampler, x, y int) vecmath.Vec4 {
						return srcTex.Fetch(x, y)
					}
				}
			case lbm.Inlet:
				out := vecmath.Vec4{}
				for ch := 0; ch < 4; ch++ {
					if i := st*4 + ch; i < lbm.Q {
						out[ch] = feqIn[i]
					}
				}
				prog = func(_ []gpu.Sampler, x, y int) vecmath.Vec4 { return out }
			case lbm.Outflow:
				// Gather all 19 distributions of the adjacent interior
				// cell, re-anchor density at the outlet value (same
				// float path as lbm.fillFace). In-plane coordinates are
				// clamped to the interior, mirroring the CPU reference:
				// ghost-column cells hold only entering distributions.
				clampX := func(x int) int {
					if x < 1 {
						return 1
					}
					if x > s.nx {
						return s.nx
					}
					return x
				}
				clampY := func(y int) int {
					if y < 1 {
						return 1
					}
					if y > s.ny {
						return s.ny
					}
					return y
				}
				var srcAt func(x, y int) (int, int)
				switch dim {
				case 0:
					srcAt = func(x, y int) (int, int) { return edgecoord, y }
				case 1:
					srcAt = func(x, y int) (int, int) { return clampX(x), edgecoord }
				default:
					srcAt = func(x, y int) (int, int) { return clampX(x), clampY(y) }
				}
				layers := [5]*gpu.Texture2D{}
				for k := 0; k < 5; k++ {
					layers[k] = s.stacks[k].Layer(pp.srcLayer)
				}
				stIdx := st
				prog = func(_ []gpu.Sampler, x, y int) vecmath.Vec4 {
					sx, sy := srcAt(x, y)
					var fp [lbm.Q]float32
					for i := 0; i < lbm.Q; i++ {
						fp[i] = layers[distStack(i)].Fetch(sx, sy)[distChan(i)]
					}
					rhoSrc, ux, uy, uz := lbm.Moments(&fp)
					var feqSrc, feqOut [lbm.Q]float32
					lbm.Feq(&feqSrc, rhoSrc, ux, uy, uz)
					lbm.Feq(&feqOut, rhoOut, ux, uy, uz)
					var out vecmath.Vec4
					for ch := 0; ch < 4; ch++ {
						if i := stIdx*4 + ch; i < lbm.Q {
							out[ch] = fp[i] - feqSrc[i] + feqOut[i]
						}
					}
					return out
				}
			}
			pb := s.pbufs[st]
			must(s.dev.Run(gpu.Pass{
				Name:     fmt.Sprintf("bc-face%d-stack%d-z%d", face, st, pp.layer),
				Target:   pb,
				Viewport: pp.vp,
				Program:  prog,
			}))
			must(s.dev.CopyRect(pb, s.stacks[st].Layer(pp.layer), pp.vp))
		}
	}
}

// sweep runs the fused stream-and-collide pass over every interior slice,
// in increasing z, using the two-slice ring buffer to preserve pre-update
// values of the slice below.
func (s *Simulator) sweep() {
	force := s.cfg.Force
	hasForce := force != (vecmath.Vec3{})

	for z := 1; z <= s.nz; z++ {
		// Layer bindings for dz = -1, 0, +1 per stack: the slice below
		// was already overwritten, so read its stashed copy.
		var lay [5][3]*gpu.Texture2D
		for st := 0; st < 5; st++ {
			if z-1 >= 1 {
				lay[st][0] = s.ring[st][(z-1)%2]
			} else {
				lay[st][0] = s.stacks[st].Layer(0)
			}
			lay[st][1] = s.stacks[st].Layer(z)
			lay[st][2] = s.stacks[st].Layer(z + 1)
		}
		var solidLay [3]*gpu.Texture2D
		for dz := -1; dz <= 1; dz++ {
			solidLay[dz+1] = s.solid.Layer(z + dz)
		}
		macroLay := s.macro.Layer(z)

		// gatherCell reconstructs the streamed (pre-collision)
		// distributions at fragment (tx, ty) with bounce-back, matching
		// lbm.Stream's float path exactly.
		gatherCell := func(tx, ty int, f *[lbm.Q]float32) {
			for i := 0; i < lbm.Q; i++ {
				sx := tx - lbm.C[i][0]
				sy := ty - lbm.C[i][1]
				dz := lbm.C[i][2]
				src := solidLay[1-dz].Fetch(sx, sy)
				if src[0] > 0.5 {
					o := lbm.Opp[i]
					v := lay[distStack(o)][1].Fetch(tx, ty)[distChan(o)]
					if s.hasWall {
						uw := vecmath.Vec3{src[1], src[2], src[3]}
						if uw != (vecmath.Vec3{}) {
							cu := float32(lbm.C[i][0])*uw[0] + float32(lbm.C[i][1])*uw[1] + float32(lbm.C[i][2])*uw[2]
							v += 6 * lbm.W[i] * macroLay.Fetch(tx, ty)[0] * cu
						}
					}
					f[i] = v
				} else {
					f[i] = lay[distStack(i)][1-dz].Fetch(sx, sy)[distChan(i)]
				}
			}
		}

		interior := gpu.Rect{X0: 1, Y0: 1, X1: s.nx + 1, Y1: s.ny + 1}
		// Five distribution passes.
		for st := 0; st < 5; st++ {
			stIdx := st
			prog := func(_ []gpu.Sampler, tx, ty int) vecmath.Vec4 {
				if solidLay[1].Fetch(tx, ty)[0] > 0.5 {
					return lay[stIdx][1].Fetch(tx, ty) // solid cells keep state
				}
				var f [lbm.Q]float32
				gatherCell(tx, ty, &f)
				rho, ux, uy, uz := lbm.Moments(&f)
				var feq [lbm.Q]float32
				lbm.Feq(&feq, rho, ux, uy, uz)
				var out vecmath.Vec4
				for ch := 0; ch < 4; ch++ {
					i := stIdx*4 + ch
					if i >= lbm.Q {
						break
					}
					post := f[i] - s.omega*(f[i]-feq[i])
					if hasForce {
						ca := float32(lbm.C[i][0])*force[0] + float32(lbm.C[i][1])*force[1] + float32(lbm.C[i][2])*force[2]
						post += 3 * lbm.W[i] * rho * ca
					}
					out[ch] = post
				}
				return out
			}
			must(s.dev.Run(gpu.Pass{
				Name:     fmt.Sprintf("fused-stack%d-z%d", st, z),
				Target:   s.pbufs[st],
				Viewport: interior,
				Program:  prog,
			}))
		}
		// Macro pass: moments of the streamed state (the CPU's Rho/u
		// cache), used for next step's wall terms and for read-back.
		must(s.dev.Run(gpu.Pass{
			Name:     fmt.Sprintf("macro-z%d", z),
			Target:   s.pbufs[5],
			Viewport: interior,
			Program: func(_ []gpu.Sampler, tx, ty int) vecmath.Vec4 {
				if solidLay[1].Fetch(tx, ty)[0] > 0.5 {
					return macroLay.Fetch(tx, ty)
				}
				var f [lbm.Q]float32
				gatherCell(tx, ty, &f)
				rho, ux, uy, uz := lbm.Moments(&f)
				return vecmath.Vec4{rho, ux, uy, uz}
			},
		}))

		// Stash the pre-update slice, then commit the pass results.
		for st := 0; st < 5; st++ {
			must(s.dev.CopyTexture(s.stacks[st].Layer(z), s.ring[st][z%2]))
			must(s.dev.CopyRect(s.pbufs[st], s.stacks[st].Layer(z), interior))
		}
		must(s.dev.CopyRect(s.pbufs[5], s.macro.Layer(z), interior))
	}
}

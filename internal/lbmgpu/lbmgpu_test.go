package lbmgpu

import (
	"math"
	"testing"

	"gpucluster/internal/gpu"
	"gpucluster/internal/lbm"
	"gpucluster/internal/vecmath"
)

func newDevice() *gpu.Device {
	return gpu.New(gpu.Config{Name: "test", TextureMemory: 256 << 20, Workers: 4})
}

func noExchange(int) {}

// buildPair constructs a CPU lattice and its GPU twin from the same
// configuration closure.
func buildPair(t *testing.T, nx, ny, nz int, tau float32, configure func(l *lbm.Lattice)) (*lbm.Lattice, *Simulator) {
	t.Helper()
	cpu := lbm.New(nx, ny, nz, tau)
	configure(cpu)
	cpu.Init(1, vecmath.Vec3{})

	gpuSrc := lbm.New(nx, ny, nz, tau)
	configure(gpuSrc)
	gpuSrc.Init(1, vecmath.Vec3{})

	sim, err := New(newDevice(), gpuSrc)
	if err != nil {
		t.Fatal(err)
	}
	return cpu, sim
}

// assertFieldsEqual compares the GPU macro fields against the CPU
// lattice's moments bit for bit.
func assertFieldsEqual(t *testing.T, cpu *lbm.Lattice, sim *Simulator) {
	t.Helper()
	den := sim.DensityField()
	vel := sim.VelocityField()
	i := 0
	var f [lbm.Q]float32
	for z := 0; z < cpu.NZ; z++ {
		for y := 0; y < cpu.NY; y++ {
			for x := 0; x < cpu.NX; x++ {
				if !cpu.IsSolid(x, y, z) {
					cpu.Gather(&f, x, y, z)
					rho, ux, uy, uz := lbm.Moments(&f)
					if den[i] != rho {
						t.Fatalf("density mismatch at (%d,%d,%d): gpu %v cpu %v",
							x, y, z, den[i], rho)
					}
					if vel[i] != (vecmath.Vec3{ux, uy, uz}) {
						t.Fatalf("velocity mismatch at (%d,%d,%d): gpu %v cpu %v",
							x, y, z, vel[i], vecmath.Vec3{ux, uy, uz})
					}
				}
				i++
			}
		}
	}
}

func stepBoth(cpu *lbm.Lattice, sim *Simulator, steps int) {
	for s := 0; s < steps; s++ {
		cpu.Step()
		sim.Step(noExchange)
	}
}

func TestGPUMatchesCPUPeriodicShear(t *testing.T) {
	cpu, sim := buildPair(t, 12, 10, 8, 0.8, func(l *lbm.Lattice) {})
	// Both start at uniform equilibrium; add a body force to create
	// dynamics.
	cpu.Force = vecmath.Vec3{1e-4, 0, 0}
	sim.cfg.Force = vecmath.Vec3{1e-4, 0, 0}
	stepBoth(cpu, sim, 8)
	assertFieldsEqual(t, cpu, sim)
}

func TestGPUMatchesCPUWallsAndObstacle(t *testing.T) {
	configure := func(l *lbm.Lattice) {
		for f := range l.Faces {
			l.Faces[f] = lbm.FaceSpec{Type: lbm.Wall}
		}
		l.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{0.04, 0, 0}}
		l.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Outflow}
		for z := 2; z < 5; z++ {
			for y := 3; y < 6; y++ {
				for x := 4; x < 7; x++ {
					l.SetSolid(x, y, z, true)
				}
			}
		}
	}
	cpu, sim := buildPair(t, 14, 10, 8, 0.8, configure)
	stepBoth(cpu, sim, 10)
	assertFieldsEqual(t, cpu, sim)
}

func TestGPUMatchesCPUMovingWallCavity(t *testing.T) {
	configure := func(l *lbm.Lattice) {
		for f := range l.Faces {
			l.Faces[f] = lbm.FaceSpec{Type: lbm.Wall}
		}
		l.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.MovingWall, U: vecmath.Vec3{0.06, 0, 0}}
	}
	cpu, sim := buildPair(t, 10, 10, 6, 0.9, configure)
	stepBoth(cpu, sim, 12)
	assertFieldsEqual(t, cpu, sim)
}

func TestGPUMatchesCPUInletWind(t *testing.T) {
	configure := func(l *lbm.Lattice) {
		l.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Inlet, U: vecmath.Vec3{0.05, 0.01, 0}}
		l.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Outflow}
		l.Faces[lbm.FaceYNeg] = lbm.FaceSpec{Type: lbm.Outflow}
		l.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.Outflow}
		l.Faces[lbm.FaceZNeg] = lbm.FaceSpec{Type: lbm.Wall}
		l.Faces[lbm.FaceZPos] = lbm.FaceSpec{Type: lbm.Outflow}
	}
	cpu, sim := buildPair(t, 12, 10, 6, 0.7, configure)
	stepBoth(cpu, sim, 10)
	assertFieldsEqual(t, cpu, sim)
}

func TestGPUBorderPackMatchesCPU(t *testing.T) {
	// The GPU border gather + single read-back must produce exactly the
	// payload the CPU backend produces, making mixed clusters possible.
	configure := func(l *lbm.Lattice) {
		l.Faces[lbm.FaceXPos] = lbm.FaceSpec{Type: lbm.Ghost}
		l.Faces[lbm.FaceYPos] = lbm.FaceSpec{Type: lbm.Ghost}
		l.Faces[lbm.FaceZPos] = lbm.FaceSpec{Type: lbm.Ghost}
	}
	cpu, sim := buildPair(t, 8, 7, 6, 0.8, configure)
	cpu.Force = vecmath.Vec3{1e-4, 2e-5, 0}
	sim.cfg.Force = cpu.Force

	// Advance a few steps (treating ghost faces as stale) to produce a
	// non-trivial state on both sides.
	for s := 0; s < 3; s++ {
		cpu.Step()
		sim.Step(noExchange)
	}
	for dim := 0; dim < 3; dim++ {
		for _, dir := range []int{-1, +1} {
			want := cpu.PackBorder(dim, dir)
			got := sim.PackBorder(dim, dir)
			if len(got) != len(want) {
				t.Fatalf("dim %d dir %d: length %d != %d", dim, dir, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("dim %d dir %d: payload[%d] = %v, want %v",
						dim, dir, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGPUUnpackRoundTrip(t *testing.T) {
	// Payload unpacked into the GPU ghost plane must be readable back by
	// the next pack of the opposite face... more directly: feed a CPU
	// payload into both backends and verify the next step stays equal.
	configure := func(l *lbm.Lattice) {
		l.Faces[lbm.FaceXNeg] = lbm.FaceSpec{Type: lbm.Ghost}
	}
	cpu, sim := buildPair(t, 8, 6, 6, 0.8, configure)

	// Manufacture a deterministic ghost payload.
	payload := make([]float32, cpu.BorderLen(0))
	for i := range payload {
		payload[i] = lbm.W[i%lbm.Q] * (1 + 0.01*float32(i%17))
	}
	feed := func(dim int) {
		if dim == 0 {
			cpu.UnpackGhost(0, -1, payload)
			sim.UnpackGhost(0, -1, payload)
		}
	}
	cpu.FillGhostDim(0)
	feed(0)
	cpu.FillGhostDim(1)
	cpu.FillGhostDim(2)
	cpu.Stream()
	cpu.Collide()

	sim.fillGhostDim(0)
	feed(0)
	sim.fillGhostDim(1)
	sim.fillGhostDim(2)
	sim.sweep()

	assertFieldsEqual(t, cpu, sim)
}

func TestGPUMassConservation(t *testing.T) {
	_, sim := buildPair(t, 10, 10, 8, 0.8, func(l *lbm.Lattice) {})
	m0 := sim.TotalMass()
	for s := 0; s < 20; s++ {
		sim.Step(noExchange)
	}
	m1 := sim.TotalMass()
	if rel := math.Abs(m1-m0) / m0; rel > 1e-5 {
		t.Errorf("GPU mass drifted: %v -> %v", m0, m1)
	}
}

func TestGPUPassAndTransferAccounting(t *testing.T) {
	_, sim := buildPair(t, 8, 8, 8, 0.8, func(l *lbm.Lattice) {})
	dev := sim.Device()
	p0 := dev.Stats.Passes
	sim.Step(noExchange)
	if dev.Stats.Passes <= p0 {
		t.Error("step executed no passes")
	}
	// A border pack must cost exactly one upstream read.
	up0 := dev.Bus().Up.Ops
	sim.PackBorder(0, +1)
	if got := dev.Bus().Up.Ops - up0; got != 1 {
		t.Errorf("border pack used %d upstream reads, want 1 (the paper's single gather read)", got)
	}
	// An unpack crosses only the fast downstream direction.
	down0 := dev.Bus().Down.Ops
	upBefore := dev.Bus().Up.Ops
	sim.UnpackGhost(0, -1, make([]float32, 5*8*8))
	if dev.Bus().Down.Ops == down0 {
		t.Error("unpack issued no downstream transfers")
	}
	if dev.Bus().Up.Ops != upBefore {
		t.Error("unpack must not read upstream")
	}
}

func TestGPURejectsUnsupportedConfigs(t *testing.T) {
	l := lbm.New(8, 8, 8, 0.8)
	l.Collision = lbm.NewMRT(0.8)
	l.Init(1, vecmath.Vec3{})
	if _, err := New(newDevice(), l); err == nil {
		t.Error("MRT should be rejected")
	}
	l2 := lbm.New(8, 8, 8, 0.8)
	l2.ForceField = make([]vecmath.Vec3, (8+2)*(8+2)*(8+2))
	l2.Init(1, vecmath.Vec3{})
	if _, err := New(newDevice(), l2); err == nil {
		t.Error("force fields should be rejected")
	}
}

func TestGPUOutOfMemory(t *testing.T) {
	dev := gpu.New(gpu.Config{TextureMemory: 4 << 20, Workers: 1})
	l := lbm.New(32, 32, 32, 0.8)
	l.Init(1, vecmath.Vec3{})
	if _, err := New(dev, l); err == nil {
		t.Error("allocation should exceed 4 MB")
	}
	// Failed construction must not leak device memory.
	if dev.UsedMemory() != 0 {
		t.Errorf("leaked %d bytes after failed construction", dev.UsedMemory())
	}
}

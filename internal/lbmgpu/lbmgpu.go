// Package lbmgpu maps the D3Q19 BGK LBM onto the simulated GPU exactly as
// Section 4.2 of the paper describes:
//
//   - the 19 velocity distributions are packed four-per-texel into 5
//     stacks of 2D RGBA float textures (Figure 5), plus one stack holding
//     flow density and velocity and one holding boundary information
//     (solid flags and wall velocities);
//   - each computation step is a set of fragment programs executed as
//     render passes: small viewport rectangles refresh the boundary
//     ghost regions, then a fused stream-and-collide pass sweeps the
//     volume slice by slice, rendering into pixel buffers whose results
//     are copied back into the textures;
//   - the state held between steps is the post-collision distribution
//     field, so the texture contents are exactly the payload of the
//     cluster border exchange;
//   - border data leaving the sub-domain are first gathered into a single
//     compact texture by a gather pass and then read back with one
//     download across the slow AGP upstream path (Section 4.3's read
//     minimization); incoming ghost data are scattered back with cheap
//     downstream sub-image uploads.
//
// Memory frugality mirrors the paper's 86 MB budget: rather than double
// buffering the whole lattice, the sweep keeps a two-slice ring buffer of
// pre-update layers, so the five distribution stacks exist only once.
//
// The arithmetic inside the fragment programs reuses the lbm package's
// Feq/Moments functions with the same operation order as the CPU
// reference, so a GPU-backed node produces bit-identical results — which
// the tests assert.
package lbmgpu

import (
	"errors"
	"fmt"

	"gpucluster/internal/gpu"
	"gpucluster/internal/lbm"
	"gpucluster/internal/vecmath"
)

// Simulator advances one sub-domain of the decomposed LBM lattice on a
// simulated GPU. It implements cluster.Node.
type Simulator struct {
	dev *gpu.Device
	// cfg mirrors the host lattice's configuration; its F/Post arrays
	// are not used after initialization.
	cfg *lbm.Lattice

	nx, ny, nz int // interior cells
	w, h, d    int // texture dims including ghosts

	stacks [5]*gpu.TextureStack // distributions, 4 per texel
	macro  *gpu.TextureStack    // rho, ux, uy, uz of the streamed state
	solid  *gpu.TextureStack    // r: solid flag, gba: wall velocity
	ring   [5][2]*gpu.Texture2D // pre-update slice stash
	pbufs  [6]*gpu.PBuffer      // per-stack render targets + macro

	border   [3]*gpu.Texture2D // per-dim compact border gather targets
	borderPB [3]*gpu.PBuffer   // render targets matching the border textures
	hasWall  bool
	omega    float32
}

// New builds a GPU simulator from a configured host lattice (size, tau,
// faces, solids, wall velocities, and initial distributions are taken
// from it). The lattice must use the BGK operator (Collision == nil) and
// may not use a per-cell force field.
func New(dev *gpu.Device, cfg *lbm.Lattice) (*Simulator, error) {
	if cfg.Collision != nil {
		return nil, errors.New("lbmgpu: only the BGK operator is supported on the GPU")
	}
	if cfg.ForceField != nil {
		return nil, errors.New("lbmgpu: per-cell force fields are not supported on the GPU")
	}
	if cfg.HasCurvedBoundaries() {
		return nil, errors.New("lbmgpu: interpolated (curved) boundary links are CPU-only")
	}
	s := &Simulator{
		dev: dev, cfg: cfg,
		nx: cfg.NX, ny: cfg.NY, nz: cfg.NZ,
		w: cfg.NX + 2, h: cfg.NY + 2, d: cfg.NZ + 2,
		omega: 1 / cfg.Tau,
	}
	var err error
	alloc := func(name string) *gpu.TextureStack {
		if err != nil {
			return nil
		}
		var st *gpu.TextureStack
		st, err = dev.NewStack(name, s.w, s.h, s.d)
		return st
	}
	for i := range s.stacks {
		s.stacks[i] = alloc(fmt.Sprintf("f%d", i))
	}
	s.macro = alloc("macro")
	s.solid = alloc("solid")
	if err != nil {
		s.free()
		return nil, err
	}
	for i := range s.ring {
		for j := range s.ring[i] {
			t, e := dev.NewTexture2D(fmt.Sprintf("ring%d_%d", i, j), s.w, s.h)
			if e != nil {
				s.free()
				return nil, e
			}
			s.ring[i][j] = t
		}
	}
	for i := range s.pbufs {
		pb, e := dev.NewPBuffer(fmt.Sprintf("pb%d", i), s.w, s.h)
		if e != nil {
			s.free()
			return nil, e
		}
		s.pbufs[i] = pb
	}
	// Compact border textures: height doubled to hold the fifth
	// distribution below the packed four (one texture, one read-back).
	borderDims := [3][2]int{
		{s.ny, s.nz},
		{s.nx + 2, s.nz},
		{s.nx + 2, s.ny + 2},
	}
	for dim, bd := range borderDims {
		t, e := dev.NewTexture2D(fmt.Sprintf("border%d", dim), bd[0], 2*bd[1])
		if e != nil {
			s.free()
			return nil, e
		}
		s.border[dim] = t
		pb, e := dev.NewPBuffer(fmt.Sprintf("borderpb%d", dim), bd[0], 2*bd[1])
		if e != nil {
			s.free()
			return nil, e
		}
		s.borderPB[dim] = pb
	}
	if e := s.uploadInitialState(); e != nil {
		s.free()
		return nil, e
	}
	return s, nil
}

func (s *Simulator) free() {
	for _, st := range s.stacks {
		if st != nil {
			st.Free()
		}
	}
	if s.macro != nil {
		s.macro.Free()
	}
	if s.solid != nil {
		s.solid.Free()
	}
	for i := range s.ring {
		for _, t := range s.ring[i] {
			t.Free()
		}
	}
	for _, pb := range s.pbufs {
		pb.Free()
	}
	for _, t := range s.border {
		t.Free()
	}
	for _, pb := range s.borderPB {
		pb.Free()
	}
}

// Device returns the simulator's GPU (for stats inspection).
func (s *Simulator) Device() *gpu.Device { return s.dev }

// distStack and distChan locate distribution i in the packed layout.
func distStack(i int) int { return i / 4 }
func distChan(i int) int  { return i % 4 }

// uploadInitialState transfers the host lattice's post-collision state,
// solid/wall data and initial macroscopic moments to the GPU.
func (s *Simulator) uploadInitialState() error {
	l := s.cfg
	// The host lattice marks wall-face ghosts solid only at Init; make
	// sure that has happened by requiring initialized distributions.
	row := make([]float32, s.w*s.h*4)
	for st := 0; st < 5; st++ {
		for z := 0; z < s.d; z++ {
			k := 0
			for ty := 0; ty < s.h; ty++ {
				for tx := 0; tx < s.w; tx++ {
					c := l.Idx(tx-1, ty-1, z-1)
					for ch := 0; ch < 4; ch++ {
						i := st*4 + ch
						if i < lbm.Q {
							row[k] = l.Post[i][c]
						} else {
							row[k] = 0
						}
						k++
					}
				}
			}
			if err := s.dev.Upload(s.stacks[st].Layer(z), row); err != nil {
				return err
			}
		}
	}
	// Solid flags and wall velocities.
	for z := 0; z < s.d; z++ {
		k := 0
		for ty := 0; ty < s.h; ty++ {
			for tx := 0; tx < s.w; tx++ {
				c := l.Idx(tx-1, ty-1, z-1)
				if l.Solid[c] {
					row[k] = 1
				} else {
					row[k] = 0
				}
				var uw vecmath.Vec3
				if l.WallU != nil {
					uw = l.WallU[c]
					if uw != (vecmath.Vec3{}) {
						s.hasWall = true
					}
				}
				row[k+1], row[k+2], row[k+3] = uw[0], uw[1], uw[2]
				k += 4
			}
		}
		if err := s.dev.Upload(s.solid.Layer(z), row); err != nil {
			return err
		}
	}
	if l.WallU != nil {
		s.hasWall = true
	}
	// Macroscopic moments of the initial state, computed with the same
	// float path as the CPU reference.
	var f [lbm.Q]float32
	for z := 0; z < s.d; z++ {
		k := 0
		for ty := 0; ty < s.h; ty++ {
			for tx := 0; tx < s.w; tx++ {
				c := l.Idx(tx-1, ty-1, z-1)
				for i := 0; i < lbm.Q; i++ {
					f[i] = l.F[i][c]
				}
				rho, ux, uy, uz := lbm.Moments(&f)
				row[k], row[k+1], row[k+2], row[k+3] = rho, ux, uy, uz
				k += 4
			}
		}
		if err := s.dev.Upload(s.macro.Layer(z), row); err != nil {
			return err
		}
	}
	return nil
}

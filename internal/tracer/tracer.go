// Package tracer implements the pollutant transport of Section 5: after
// the flow field develops, "pollution tracer particles begin to propagate
// along the LBM lattice links according to transition probabilities
// obtained from the LBM velocity distributions" (the go-with-the-flow
// method of Lowe and Succi, reference [19] of the paper).
//
// Each particle sits on a lattice site; each step it selects one of the
// 19 links with probability f_i / rho and hops along it. The expected
// hop equals the local fluid velocity (sum_i c_i f_i / rho = u), so the
// tracer cloud advects with the flow while the stochastic selection
// supplies physical dispersion.
package tracer

import (
	"math/rand"

	"gpucluster/internal/lbm"
	"gpucluster/internal/vecmath"
)

// ProbField supplies per-cell transition probabilities.
type ProbField interface {
	// Dims returns the lattice extents.
	Dims() (nx, ny, nz int)
	// Probs fills out with the 19 link probabilities (f_i/rho) of cell
	// (x, y, z) and reports false for solid cells.
	Probs(x, y, z int, out *[lbm.Q]float32) bool
}

// latticeField adapts a serial lattice, using the exact distributions.
type latticeField struct{ l *lbm.Lattice }

// FromLattice builds a ProbField from the exact velocity distributions
// of a serial lattice.
func FromLattice(l *lbm.Lattice) ProbField { return latticeField{l} }

func (a latticeField) Dims() (int, int, int) { return a.l.NX, a.l.NY, a.l.NZ }

func (a latticeField) Probs(x, y, z int, out *[lbm.Q]float32) bool {
	if a.l.IsSolid(x, y, z) {
		return false
	}
	var f [lbm.Q]float32
	a.l.Gather(&f, x, y, z)
	rho, _, _, _ := lbm.Moments(&f)
	if rho <= 0 {
		return false
	}
	inv := 1 / rho
	for i := 0; i < lbm.Q; i++ {
		out[i] = f[i] * inv
	}
	return true
}

// macroField derives probabilities from gathered density/velocity fields
// through the equilibrium distribution — the form usable with cluster or
// GPU backends whose raw distributions stay distributed. For the smooth,
// low-Mach flows of the dispersion application feq(rho, u) approximates
// f to second order.
type macroField struct {
	nx, ny, nz int
	den        []float32
	vel        []vecmath.Vec3
	solid      func(x, y, z int) bool
}

// FromMacro builds a ProbField from density and velocity fields (gathered
// from a cluster simulation), with an optional solid predicate.
func FromMacro(nx, ny, nz int, den []float32, vel []vecmath.Vec3, solid func(x, y, z int) bool) ProbField {
	return &macroField{nx: nx, ny: ny, nz: nz, den: den, vel: vel, solid: solid}
}

func (m *macroField) Dims() (int, int, int) { return m.nx, m.ny, m.nz }

func (m *macroField) Probs(x, y, z int, out *[lbm.Q]float32) bool {
	if m.solid != nil && m.solid(x, y, z) {
		return false
	}
	i := (z*m.ny+y)*m.nx + x
	rho := m.den[i]
	if rho <= 0 {
		return false
	}
	u := m.vel[i]
	var feq [lbm.Q]float32
	lbm.Feq(&feq, rho, u[0], u[1], u[2])
	inv := 1 / rho
	for k := 0; k < lbm.Q; k++ {
		p := feq[k] * inv
		if p < 0 { // clamp the (rare) negative equilibrium tail
			p = 0
		}
		out[k] = p
	}
	return true
}

// Particle is one tracer at a lattice site.
type Particle struct {
	X, Y, Z int
}

// Cloud is a set of tracer particles with a deterministic RNG.
type Cloud struct {
	Particles []Particle
	rng       *rand.Rand
	steps     int
}

// NewCloud creates an empty cloud with a fixed seed.
func NewCloud(seed int64) *Cloud {
	return &Cloud{rng: rand.New(rand.NewSource(seed))}
}

// Release adds n particles at lattice site (x, y, z).
func (c *Cloud) Release(x, y, z, n int) {
	for i := 0; i < n; i++ {
		c.Particles = append(c.Particles, Particle{x, y, z})
	}
}

// Steps returns the number of propagation steps taken.
func (c *Cloud) Steps() int { return c.steps }

// Step propagates every particle one lattice step: sample a link with
// probability f_i/rho and hop, staying put when the destination is solid
// or outside the domain.
func (c *Cloud) Step(field ProbField) {
	nx, ny, nz := field.Dims()
	var probs [lbm.Q]float32
	for pi := range c.Particles {
		p := &c.Particles[pi]
		if !field.Probs(p.X, p.Y, p.Z, &probs) {
			continue // trapped in solid (can happen only at release sites)
		}
		r := c.rng.Float32()
		var acc float32
		link := 0
		for i := 0; i < lbm.Q; i++ {
			acc += probs[i]
			if r < acc {
				link = i
				break
			}
		}
		nxp := p.X + lbm.C[link][0]
		nyp := p.Y + lbm.C[link][1]
		nzp := p.Z + lbm.C[link][2]
		if nxp < 0 || nxp >= nx || nyp < 0 || nyp >= ny || nzp < 0 || nzp >= nz {
			continue // leave domain: in the dispersion app these exit downstream; keep at border
		}
		var tmp [lbm.Q]float32
		if !field.Probs(nxp, nyp, nzp, &tmp) {
			continue // bounce off buildings: stay
		}
		p.X, p.Y, p.Z = nxp, nyp, nzp
	}
	c.steps++
}

// DensityGrid bins particles onto the lattice, producing the contaminant
// concentration field rendered in Figure 13.
func (c *Cloud) DensityGrid(nx, ny, nz int) []float32 {
	out := make([]float32, nx*ny*nz)
	for _, p := range c.Particles {
		if p.X >= 0 && p.X < nx && p.Y >= 0 && p.Y < ny && p.Z >= 0 && p.Z < nz {
			out[(p.Z*ny+p.Y)*nx+p.X]++
		}
	}
	return out
}

// Centroid returns the mean particle position.
func (c *Cloud) Centroid() vecmath.Vec3 {
	if len(c.Particles) == 0 {
		return vecmath.Vec3{}
	}
	var sx, sy, sz float64
	for _, p := range c.Particles {
		sx += float64(p.X)
		sy += float64(p.Y)
		sz += float64(p.Z)
	}
	n := float64(len(c.Particles))
	return vecmath.Vec3{float32(sx / n), float32(sy / n), float32(sz / n)}
}

package tracer

import (
	"math"
	"testing"

	"gpucluster/internal/lbm"
	"gpucluster/internal/vecmath"
)

// uniformLattice builds a periodic lattice in uniform equilibrium flow.
func uniformLattice(u vecmath.Vec3) *lbm.Lattice {
	l := lbm.New(40, 16, 16, 0.8)
	l.Init(1, u)
	return l
}

func TestCloudDriftsWithFlow(t *testing.T) {
	// E[hop] = sum c_i f_i / rho = u: over many particles and steps the
	// cloud centroid must advect at the fluid velocity.
	u := vecmath.Vec3{0.08, 0.02, 0}
	l := uniformLattice(u)
	c := NewCloud(1)
	c.Release(5, 8, 8, 4000)
	field := FromLattice(l)
	const steps = 25
	for s := 0; s < steps; s++ {
		c.Step(field)
	}
	cen := c.Centroid()
	wantX := 5 + float64(u[0])*steps
	wantY := 8 + float64(u[1])*steps
	if math.Abs(float64(cen[0])-wantX) > 0.35 {
		t.Errorf("centroid x = %.2f, want %.2f", cen[0], wantX)
	}
	if math.Abs(float64(cen[1])-wantY) > 0.35 {
		t.Errorf("centroid y = %.2f, want %.2f", cen[1], wantY)
	}
}

func TestCloudDisperses(t *testing.T) {
	// Stochastic link selection spreads the cloud: positional variance
	// must grow with steps.
	l := uniformLattice(vecmath.Vec3{})
	c := NewCloud(2)
	c.Release(20, 8, 8, 2000)
	field := FromLattice(l)
	varOf := func() float64 {
		cen := c.Centroid()
		var v float64
		for _, p := range c.Particles {
			dx := float64(p.X) - float64(cen[0])
			v += dx * dx
		}
		return v / float64(len(c.Particles))
	}
	v0 := varOf()
	for s := 0; s < 10; s++ {
		c.Step(field)
	}
	v1 := varOf()
	for s := 0; s < 10; s++ {
		c.Step(field)
	}
	v2 := varOf()
	if !(v0 < v1 && v1 < v2) {
		t.Errorf("variance should grow: %.3f, %.3f, %.3f", v0, v1, v2)
	}
}

func TestParticlesAvoidSolids(t *testing.T) {
	l := uniformLattice(vecmath.Vec3{0.1, 0, 0})
	// A wall of solid cells at x=12..13.
	for z := 0; z < 16; z++ {
		for y := 0; y < 16; y++ {
			l.SetSolid(12, y, z, true)
			l.SetSolid(13, y, z, true)
		}
	}
	c := NewCloud(3)
	c.Release(9, 8, 8, 1000)
	field := FromLattice(l)
	for s := 0; s < 30; s++ {
		c.Step(field)
		for _, p := range c.Particles {
			if p.X == 12 || p.X == 13 {
				t.Fatalf("particle entered solid at step %d: %+v", s, p)
			}
		}
	}
}

func TestParticlesStayInDomain(t *testing.T) {
	l := uniformLattice(vecmath.Vec3{0.12, 0, 0})
	c := NewCloud(4)
	c.Release(38, 8, 8, 500)
	field := FromLattice(l)
	for s := 0; s < 40; s++ {
		c.Step(field)
	}
	for _, p := range c.Particles {
		if p.X < 0 || p.X >= 40 || p.Y < 0 || p.Y >= 16 || p.Z < 0 || p.Z >= 16 {
			t.Fatalf("particle escaped: %+v", p)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func() []Particle {
		l := uniformLattice(vecmath.Vec3{0.05, 0, 0.02})
		c := NewCloud(42)
		c.Release(10, 8, 8, 100)
		f := FromLattice(l)
		for s := 0; s < 15; s++ {
			c.Step(f)
		}
		return c.Particles
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at particle %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMacroFieldMatchesLatticeDrift(t *testing.T) {
	// The feq-based field must produce the same mean drift for an
	// equilibrium flow (where f == feq exactly).
	u := vecmath.Vec3{0.06, 0, 0}
	den := make([]float32, 40*16*16)
	vel := make([]vecmath.Vec3, 40*16*16)
	for i := range den {
		den[i] = 1
		vel[i] = u
	}
	c := NewCloud(5)
	c.Release(5, 8, 8, 3000)
	f := FromMacro(40, 16, 16, den, vel, nil)
	const steps = 20
	for s := 0; s < steps; s++ {
		c.Step(f)
	}
	cen := c.Centroid()
	want := 5 + float64(u[0])*steps
	if math.Abs(float64(cen[0])-want) > 0.35 {
		t.Errorf("macro-field centroid x = %.2f, want %.2f", cen[0], want)
	}
}

func TestDensityGrid(t *testing.T) {
	c := NewCloud(6)
	c.Release(1, 2, 3, 7)
	g := c.DensityGrid(4, 4, 4)
	if g[(3*4+2)*4+1] != 7 {
		t.Errorf("density grid = %v", g[(3*4+2)*4+1])
	}
	var total float32
	for _, v := range g {
		total += v
	}
	if total != 7 {
		t.Errorf("total = %v", total)
	}
}

func TestProbsSumToOne(t *testing.T) {
	l := uniformLattice(vecmath.Vec3{0.05, -0.03, 0.01})
	f := FromLattice(l)
	var p [lbm.Q]float32
	if !f.Probs(3, 3, 3, &p) {
		t.Fatal("fluid cell reported solid")
	}
	var sum float32
	for _, v := range p {
		sum += v
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

package perfmodel

import (
	"fmt"
	"math"
	"time"

	"gpucluster/internal/netsim"
	"gpucluster/internal/sched"
)

// SyncMode selects the schedule synchronization strategy.
type SyncMode int

const (
	// SyncAuto uses the barrier up to Hardware.SyncThreshold nodes, the
	// paper's operating point.
	SyncAuto SyncMode = iota
	// SyncBarrier always synchronizes each schedule step.
	SyncBarrier
	// SyncNone never synchronizes (nodes drift and interrupt).
	SyncNone
)

// Options refine a cluster-step evaluation.
type Options struct {
	// Pattern selects indirect (paper) or direct diagonal exchange.
	Pattern sched.Pattern
	// Sync selects the schedule synchronization mode.
	Sync SyncMode
}

// StepBreakdown is one row of Table 1: the composed per-step times for a
// node-count/sub-domain configuration.
type StepBreakdown struct {
	Nodes     int
	Grid      sched.NodeGrid
	SubDomain [3]int

	CPUTotal time.Duration // CPU cluster per-step time (compute only; its network is overlapped by the second CPU)

	GPUCompute    time.Duration // GPU computation incl. boundary passes
	GPUCPUComm    time.Duration // border gather + AGP read-back + write
	NetTotal      time.Duration // full network communication time
	NetNonOverlap time.Duration // part not hidden by inner-cell collision
	GPUTotal      time.Duration // compute + GPU/CPU comm + non-overlap

	Speedup float64 // CPUTotal / GPUTotal
}

// subCells returns the cell count of a sub-domain.
func subCells(sub [3]int) float64 { return float64(sub[0]) * float64(sub[1]) * float64(sub[2]) }

// borderFloats returns the float count of one border message along dim
// for a sub-domain, matching lbm.Lattice.BorderLen.
func borderFloats(sub [3]int, dim int) int {
	switch dim {
	case 0:
		return 5 * sub[1] * sub[2]
	case 1:
		return 5 * (sub[0] + 2) * sub[2]
	default:
		return 5 * (sub[0] + 2) * (sub[1] + 2)
	}
}

// avgNeighbors returns the mean axial neighbor count over the grid.
func avgNeighbors(g sched.NodeGrid) float64 {
	ns := sched.Neighbors(g)
	if len(ns) == 0 {
		return 0
	}
	total := 0
	for _, n := range ns {
		total += n
	}
	return float64(total) / float64(len(ns))
}

// cpuStep returns the CPU cluster per-step time. Network time is fully
// overlapped by the second CPU of each node (the paper's implementation),
// so only compute plus a slight per-node boundary-evaluation overhead
// remains.
func (h Hardware) cpuStep(nodes int, sub [3]int) time.Duration {
	compute := time.Duration(subCells(sub) / h.CPUCellsPerSec * float64(time.Second))
	return compute + time.Duration(nodes)*h.CPUPerNodeOverhead
}

// gpuCompute returns the GPU computation time including the extra
// boundary-gather render passes that grow with the number of faces.
func (h Hardware) gpuCompute(g sched.NodeGrid, sub [3]int) time.Duration {
	base := time.Duration(subCells(sub) / h.GPUCellsPerSec * float64(time.Second))
	return base + time.Duration(avgNeighbors(g)*float64(h.GPUPerFaceOverhead))
}

// gpuCPUComm returns the per-step cost of moving border data between GPU
// and host across the bus: per face one gather pass, one upstream read
// and one downstream write, plus a pipeline-flush penalty when multiple
// faces are exchanged.
func (h Hardware) gpuCPUComm(g sched.NodeGrid, sub [3]int) time.Duration {
	faces := avgNeighbors(g)
	if faces == 0 {
		return 0
	}
	// Mean face payload across the dimensions actually split.
	var bytes float64
	var dims int
	if g.PX > 1 {
		bytes += float64(borderFloats(sub, 0) * 4)
		dims++
	}
	if g.PY > 1 {
		bytes += float64(borderFloats(sub, 1) * 4)
		dims++
	}
	if g.PZ > 1 {
		bytes += float64(borderFloats(sub, 2) * 4)
		dims++
	}
	if dims > 0 {
		bytes /= float64(dims)
	}
	b := *h.Bus // copy: cost model only, keep stats clean
	perFace := h.FaceGatherCost + b.Upload(int64(bytes)) + b.Download(int64(bytes))
	total := time.Duration(faces * float64(perFace))
	if faces > 1.5 {
		total += h.MultiFacePenalty
	}
	return total
}

// netTime returns the full per-step network communication time for the
// schedule over the switch, including setup, congestion, trunk sharing
// and synchronization costs.
func (h Hardware) netTime(g sched.NodeGrid, sub [3]int, opt Options) time.Duration {
	n := g.Size()
	if n <= 1 {
		return 0
	}
	steps := sched.Build(g, opt.Pattern)
	netCfg := h.Net
	netCfg.Ports = n
	net := netsim.New(netCfg)

	total := h.NetBase
	pairsTotal := 0
	for _, st := range steps {
		total += h.NetPerStep
		// Message size along this step's axis: axial steps carry the
		// 5-distribution border; diagonal steps (Direct pattern) carry
		// only the thin edge column.
		var msgBytes int64
		if st.Diagonal() {
			edge := sub[0]
			for d := 0; d < 3; d++ {
				if st.Axis[d] == 0 {
					edge = sub[d]
				}
			}
			msgBytes = int64(edge * 4)
		} else {
			dim := 0
			for d := 0; d < 3; d++ {
				if st.Axis[d] != 0 {
					dim = d
				}
			}
			msgBytes = int64(borderFloats(sub, dim) * 4)
		}
		exs := make([]netsim.Exchange, 0, len(st.Pairs))
		for _, p := range st.Pairs {
			exs = append(exs, netsim.Exchange{A: p.A, B: p.B, Bytes: msgBytes})
		}
		ready := make([]time.Duration, n)
		done := net.StepTimes(exs, ready)
		total += netsim.MaxTime(done)
		pairsTotal += len(st.Pairs)
	}
	// Switch load: concurrent flows contend for shared forwarding
	// resources, saturating once the backplane pipelines fill.
	cong := pairsTotal
	if cong > h.CongestionSaturation {
		cong = h.CongestionSaturation
	}
	total += time.Duration(cong) * h.CongestionPerPair

	// Synchronization: barrier (cost linear in n) or free-running drift
	// (interruptions saturating with n).
	barrier := time.Duration(n) * h.BarrierPerNode
	drift := time.Duration(float64(h.DriftMax) * (1 - math.Exp(-float64(n)/h.DriftScale)))
	switch opt.Sync {
	case SyncBarrier:
		total += barrier
	case SyncNone:
		total += drift
	default:
		if n <= h.SyncThreshold {
			total += barrier
		} else {
			total += drift
		}
	}
	return total
}

// overlapWindow returns how much network time the inner-cell collision
// hides (the paper's ~120 ms for an 80^3 sub-domain).
func (h Hardware) overlapWindow(g sched.NodeGrid, sub [3]int) time.Duration {
	return time.Duration(h.OverlapFraction * float64(h.gpuCompute(g, sub)))
}

// ClusterStep composes the full per-step breakdown for a grid of nodes
// each computing the given sub-domain.
func (h Hardware) ClusterStep(g sched.NodeGrid, sub [3]int, opt Options) StepBreakdown {
	n := g.Size()
	br := StepBreakdown{
		Nodes:     n,
		Grid:      g,
		SubDomain: sub,
		CPUTotal:  h.cpuStep(n, sub),
	}
	br.GPUCompute = h.gpuCompute(g, sub)
	br.GPUCPUComm = h.gpuCPUComm(g, sub)
	br.NetTotal = h.netTime(g, sub, opt)
	window := h.overlapWindow(g, sub)
	if br.NetTotal > window {
		br.NetNonOverlap = br.NetTotal - window
	}
	br.GPUTotal = br.GPUCompute + br.GPUCPUComm + br.NetNonOverlap
	br.Speedup = float64(br.CPUTotal) / float64(br.GPUTotal)
	return br
}

// FixedSubDomainSweep evaluates ClusterStep for the paper's node counts
// with a fixed per-node sub-domain (the Table 1 experiment: each node
// computes 80^3; more nodes = bigger problem).
func (h Hardware) FixedSubDomainSweep(nodeCounts []int, sub [3]int) []StepBreakdown {
	out := make([]StepBreakdown, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		g := sched.Arrange2D(n)
		out = append(out, h.ClusterStep(g, sub, Options{}))
	}
	return out
}

// StrongScaling evaluates a fixed global lattice split over increasing
// node counts (the Section 4.4 closing experiment: 160x160x80 from 4
// nodes up).
func (h Hardware) StrongScaling(global [3]int, nodeCounts []int) ([]StepBreakdown, error) {
	out := make([]StepBreakdown, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		g := sched.Arrange2D(n)
		if global[0]%g.PX != 0 || global[1]%g.PY != 0 {
			return nil, fmt.Errorf("perfmodel: %v does not divide %v evenly", g, global)
		}
		sub := [3]int{global[0] / g.PX, global[1] / g.PY, global[2]}
		out = append(out, h.ClusterStep(g, sub, Options{}))
	}
	return out, nil
}

// ThroughputRow is one row of Table 2.
type ThroughputRow struct {
	Nodes       int
	CellsPerSec float64
	Speedup     float64 // vs the single-node rate
	Efficiency  float64 // Speedup / Nodes
}

// Throughput derives Table 2 from Table 1 breakdowns: total cells
// computed per second, scaling speedup and efficiency.
func Throughput(rows []StepBreakdown) []ThroughputRow {
	out := make([]ThroughputRow, len(rows))
	var base float64
	for i, r := range rows {
		cells := subCells(r.SubDomain) * float64(r.Nodes)
		rate := cells / r.GPUTotal.Seconds()
		out[i] = ThroughputRow{Nodes: r.Nodes, CellsPerSec: rate}
		if i == 0 {
			base = rate / float64(r.Nodes)
			out[i].Speedup = float64(r.Nodes)
			out[i].Efficiency = 1
		} else {
			out[i].Speedup = rate / base
			out[i].Efficiency = rate / base / float64(r.Nodes)
		}
	}
	return out
}

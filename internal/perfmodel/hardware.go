// Package perfmodel composes per-step execution times for the CPU and
// GPU clusters of Section 4.4 from a mechanistic hardware model: compute
// rates measured in the paper, the asymmetric AGP bus (package bus), the
// switched Gigabit network with its pairwise schedule (packages netsim
// and sched), the ~120 ms inner-cell collision window that hides network
// time, and the barrier-vs-drift synchronization tradeoff the paper
// reports around 16 nodes.
//
// The absolute constants are calibrated once against Table 1; everything
// else — the strong-scaling sweep, the ablations, the PCI-Express
// projection — is a prediction of the composed model, not a table lookup.
// EXPERIMENTS.md records modeled-vs-paper values for every row.
package perfmodel

import (
	"time"

	"gpucluster/internal/bus"
	"gpucluster/internal/netsim"
)

// Hardware aggregates the platform parameters of the model.
type Hardware struct {
	// GPUCellsPerSec is the single-GPU LBM update rate (cells/second).
	// The paper measures an 80^3 sub-domain in 214 ms: 2.393e6 cells/s
	// on the GeForce FX 5800 Ultra.
	GPUCellsPerSec float64
	// CPUCellsPerSec is the single-CPU (one thread, no SSE) rate:
	// 80^3 cells in 1420 ms = 3.606e5 cells/s on the Xeon 2.4 GHz.
	CPUCellsPerSec float64
	// CPUPerNodeOverhead models the slight growth of the CPU cluster's
	// compute column with node count (boundary evaluation imbalance).
	CPUPerNodeOverhead time.Duration
	// GPUPerFaceOverhead models the extra render-pass work per exchanged
	// face that grows the GPU computation column from 214 to ~237 ms.
	GPUPerFaceOverhead time.Duration

	// Bus is the host<->GPU transfer model (AGP 8x in the paper).
	Bus *bus.Bus
	// FaceGatherCost is the fixed per-face cost of the border gather
	// pass plus read initialization, on top of the bus transfer times.
	FaceGatherCost time.Duration
	// MultiFacePenalty is a one-time pipeline-flush cost paid when a
	// node exchanges two or more faces per step.
	MultiFacePenalty time.Duration

	// Net configures the switch model; Ports is set per experiment.
	Net netsim.Config
	// NetBase is the fixed per-simulation-step network cost (MPI
	// progression, socket overhead) independent of the schedule.
	NetBase time.Duration
	// NetPerStep is the per-schedule-step setup cost.
	NetPerStep time.Duration
	// CongestionPerPair is the switch-load cost per concurrently active
	// node pair, saturating at CongestionSaturation pairs.
	CongestionPerPair    time.Duration
	CongestionSaturation int

	// BarrierPerNode is the per-node cost of an MPI_Barrier-synchronized
	// schedule (linear in node count).
	BarrierPerNode time.Duration
	// DriftMax is the saturating cost of running unsynchronized: nodes
	// drift apart and interrupt each other, with penalty
	// DriftMax * (1 - exp(-n/DriftScale)).
	DriftMax   time.Duration
	DriftScale float64
	// SyncThreshold is the node count up to which the barrier is used
	// (the paper found 16).
	SyncThreshold int

	// OverlapFraction is the share of GPU compute time (the inner-cell
	// collision) that can hide network communication: 120 ms of 214 ms.
	OverlapFraction float64
}

// Paper returns the hardware model calibrated to the paper's cluster:
// GeForce FX 5800 Ultra GPUs on AGP 8x, dual-Xeon nodes (one thread
// used), and a 1 Gigabit switched network, stacked beyond 24 ports.
func Paper() Hardware {
	return Hardware{
		GPUCellsPerSec:     512000.0 / 0.214, // 80^3 in 214 ms
		CPUCellsPerSec:     512000.0 / 1.420, // 80^3 in 1420 ms
		CPUPerNodeOverhead: 650 * time.Microsecond,
		GPUPerFaceOverhead: 7 * time.Millisecond,

		Bus:              bus.AGP8x(),
		FaceGatherCost:   9 * time.Millisecond,
		MultiFacePenalty: 21 * time.Millisecond,

		Net:                  netsim.GigabitSwitch(32),
		NetBase:              29 * time.Millisecond,
		NetPerStep:           7 * time.Millisecond,
		CongestionPerPair:    1100 * time.Microsecond,
		CongestionSaturation: 12,

		BarrierPerNode: 430 * time.Microsecond,
		DriftMax:       8 * time.Millisecond,
		DriftScale:     8,
		SyncThreshold:  16,

		OverlapFraction: 120.0 / 214.0,
	}
}

// WithBus returns a copy of h using a different host<->GPU bus (the
// PCI-Express ablation).
func (h Hardware) WithBus(b *bus.Bus) Hardware {
	h.Bus = b
	return h
}

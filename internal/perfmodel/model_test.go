package perfmodel

import (
	"math"
	"testing"
	"time"

	"gpucluster/internal/sched"
)

var sub80 = [3]int{80, 80, 80}

func relErr(got, want float64) float64 {
	return math.Abs(got-want) / math.Abs(want)
}

func TestSingleNodeMatchesPaper(t *testing.T) {
	h := Paper()
	r := h.ClusterStep(sched.NodeGrid{PX: 1, PY: 1, PZ: 1}, sub80, Options{})
	if got := r.GPUTotal.Milliseconds(); got != 214 {
		t.Errorf("single-node GPU step = %dms, want 214", got)
	}
	if got := r.CPUTotal.Milliseconds(); relErr(float64(got), 1420) > 0.01 {
		t.Errorf("single-node CPU step = %dms, want ~1420", got)
	}
	if relErr(r.Speedup, 6.64) > 0.01 {
		t.Errorf("single-node speedup = %.2f, want 6.64", r.Speedup)
	}
	if r.GPUCPUComm != 0 || r.NetTotal != 0 {
		t.Errorf("single node should have no communication: %+v", r)
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	h := Paper()
	rows := h.FixedSubDomainSweep(PaperNodeCounts, sub80)
	if len(rows) != len(PaperTable1) {
		t.Fatalf("row count %d != %d", len(rows), len(PaperTable1))
	}
	for i, r := range rows {
		p := PaperTable1[i]
		if r.Nodes != p.Nodes {
			t.Fatalf("row %d: nodes %d != %d", i, r.Nodes, p.Nodes)
		}
		// Totals within 10% of the measured values.
		if relErr(float64(r.GPUTotal.Milliseconds()), p.GPUTotalMS) > 0.10 {
			t.Errorf("nodes %d: GPU total %dms vs paper %.0fms",
				r.Nodes, r.GPUTotal.Milliseconds(), p.GPUTotalMS)
		}
		if relErr(float64(r.CPUTotal.Milliseconds()), p.CPUTotalMS) > 0.05 {
			t.Errorf("nodes %d: CPU total %dms vs paper %.0fms",
				r.Nodes, r.CPUTotal.Milliseconds(), p.CPUTotalMS)
		}
		if relErr(r.Speedup, p.SpeedupFactor) > 0.10 {
			t.Errorf("nodes %d: speedup %.2f vs paper %.2f", r.Nodes, r.Speedup, p.SpeedupFactor)
		}
		// The overlap structure: network fully hidden through 24 nodes,
		// visible from 28 on.
		if p.NetNonOverMS == 0 && r.NetNonOverlap != 0 {
			t.Errorf("nodes %d: non-overlap %v, paper had none", r.Nodes, r.NetNonOverlap)
		}
		if p.NetNonOverMS > 0 && r.NetNonOverlap == 0 {
			t.Errorf("nodes %d: model hides all network time, paper had %.0fms exposed",
				r.Nodes, p.NetNonOverMS)
		}
	}
}

func TestSpeedupCurveShape(t *testing.T) {
	// Figure 9: the speedup starts at 6.64, flattens near 5, and drops
	// past 28 nodes; it must be monotone non-increasing.
	h := Paper()
	rows := h.FixedSubDomainSweep(PaperNodeCounts, sub80)
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup > rows[i-1].Speedup+1e-9 {
			t.Errorf("speedup increased from %d to %d nodes: %.3f -> %.3f",
				rows[i-1].Nodes, rows[i].Nodes, rows[i-1].Speedup, rows[i].Speedup)
		}
	}
	// Plateau: 12..24 nodes within a narrow band around 5.
	for _, r := range rows {
		if r.Nodes >= 12 && r.Nodes <= 24 {
			if r.Speedup < 4.6 || r.Speedup > 5.4 {
				t.Errorf("plateau speedup at %d nodes = %.2f, want ~5", r.Nodes, r.Speedup)
			}
		}
	}
	// The headline: above 4.5 overall at 30 nodes, per the abstract's
	// "4.6 times faster".
	if s := rows[len(rows)-2].Speedup; s < 4.3 || s > 5.0 {
		t.Errorf("30-node speedup = %.2f, want ~4.6", s)
	}
}

func TestHeadline30NodeStepTime(t *testing.T) {
	// Section 5: 480x400x80 on 30 nodes ran at 0.31 s/step (each node
	// computing an 80^3 sub-domain).
	h := Paper()
	r := h.ClusterStep(sched.Arrange2D(30), sub80, Options{})
	ms := float64(r.GPUTotal.Milliseconds())
	if ms < 290 || ms < 280 || ms > 330 {
		t.Errorf("30-node step = %.0fms, want ~310 (0.31 s/step)", ms)
	}
}

func TestNetworkKneeAt28Nodes(t *testing.T) {
	// Figure 8: network time is flat through 24 nodes and jumps once the
	// stacked trunk is involved.
	h := Paper()
	rows := h.FixedSubDomainSweep(PaperNodeCounts, sub80)
	byNodes := map[int]StepBreakdown{}
	for _, r := range rows {
		byNodes[r.Nodes] = r
	}
	flatLo := byNodes[12].NetTotal
	flatHi := byNodes[24].NetTotal
	if relErr(float64(flatHi), float64(flatLo)) > 0.15 {
		t.Errorf("network time not flat 12..24: %v vs %v", flatLo, flatHi)
	}
	if k := float64(byNodes[28].NetTotal) / float64(flatHi); k < 1.3 {
		t.Errorf("no knee at 28 nodes: ratio %.2f", k)
	}
	if byNodes[32].NetTotal <= byNodes[28].NetTotal {
		t.Errorf("network time must keep rising past the knee")
	}
}

func TestTable2Throughput(t *testing.T) {
	h := Paper()
	rows := Throughput(h.FixedSubDomainSweep(PaperNodeCounts, sub80))
	for i, r := range rows {
		p := PaperTable2[i]
		if relErr(r.CellsPerSec, p.CellsPerSec) > 0.12 {
			t.Errorf("nodes %d: %.1fM cells/s vs paper %.1fM",
				r.Nodes, r.CellsPerSec/1e6, p.CellsPerSec/1e6)
		}
		if i > 0 && relErr(r.Efficiency, p.Efficiency) > 0.12 {
			t.Errorf("nodes %d: efficiency %.2f vs paper %.2f", r.Nodes, r.Efficiency, p.Efficiency)
		}
	}
	// Figure 10: efficiency decreases monotonically.
	for i := 2; i < len(rows); i++ {
		if rows[i].Efficiency > rows[i-1].Efficiency+1e-9 {
			t.Errorf("efficiency increased at %d nodes", rows[i].Nodes)
		}
	}
}

func TestStrongScalingDegrades(t *testing.T) {
	// Section 4.4: fixed 160x160x80 lattice; from 4 to 16 nodes the
	// speedup factor drops from 5.3 to 2.4.
	h := Paper()
	rows, err := h.StrongScaling([3]int{160, 160, 80}, []int{4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if s := rows[0].Speedup; s < 4.9 || s > 5.7 {
		t.Errorf("4-node strong-scaling speedup = %.2f, want ~5.3", s)
	}
	if s := rows[2].Speedup; s < 1.9 || s > 3.0 {
		t.Errorf("16-node strong-scaling speedup = %.2f, want ~2.4", s)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup >= rows[i-1].Speedup {
			t.Errorf("strong-scaling speedup must fall with more nodes")
		}
	}
}

func TestStrongScalingRejectsUnevenSplit(t *testing.T) {
	h := Paper()
	if _, err := h.StrongScaling([3]int{150, 160, 80}, []int{8}); err == nil {
		t.Error("uneven split should error")
	}
}

func TestAblationDiagonalIndirectWins(t *testing.T) {
	// A1: direct diagonal exchange needs more schedule steps and more
	// messages; the paper's indirect pattern must model faster for 2D
	// arrangements.
	h := Paper()
	for _, row := range h.AblationDiagonal([]int{4, 16, 32}, sub80) {
		if row.Variant.NetTotal <= row.Baseline.NetTotal {
			t.Errorf("nodes %d: direct (%v) should exceed indirect (%v)",
				row.Nodes, row.Variant.NetTotal, row.Baseline.NetTotal)
		}
	}
}

func TestAblationBarrierCrossover(t *testing.T) {
	// A2: barrier synchronization wins below ~16 nodes and loses above.
	h := Paper()
	rows := h.AblationBarrier([]int{2, 4, 8, 24, 32}, sub80)
	for _, row := range rows {
		barrier, free := row.Baseline.NetTotal, row.Variant.NetTotal
		if row.Nodes < 16 && barrier >= free {
			t.Errorf("nodes %d: barrier (%v) should beat free-running (%v)",
				row.Nodes, barrier, free)
		}
		if row.Nodes > 16 && barrier <= free {
			t.Errorf("nodes %d: free-running (%v) should beat barrier (%v)",
				row.Nodes, free, barrier)
		}
	}
}

func TestAblationPCIe(t *testing.T) {
	// A4: PCI-Express slashes the GPU<->CPU term (the paper's
	// enhancement (2)); totals improve accordingly.
	h := Paper()
	for _, row := range h.AblationPCIe([]int{4, 16, 30}, sub80) {
		if row.Variant.GPUCPUComm >= row.Baseline.GPUCPUComm {
			t.Errorf("nodes %d: PCIe comm %v should beat AGP %v",
				row.Nodes, row.Variant.GPUCPUComm, row.Baseline.GPUCPUComm)
		}
		if row.Variant.GPUTotal >= row.Baseline.GPUTotal {
			t.Errorf("nodes %d: PCIe total should improve", row.Nodes)
		}
	}
}

func TestAblationShapeCubeWins(t *testing.T) {
	// A3: flatter slabs of the same volume exchange more border data and
	// must model slower (3D decomposition).
	h := Paper()
	rows := h.AblationShape(8)
	for i := 1; i < len(rows); i++ {
		if rows[i].Breakdown.GPUTotal <= rows[i-1].Breakdown.GPUTotal {
			t.Errorf("%s (%v) should be slower than %s (%v)",
				rows[i].Label, rows[i].Breakdown.GPUTotal,
				rows[i-1].Label, rows[i-1].Breakdown.GPUTotal)
		}
	}
}

func TestEconomics(t *testing.T) {
	e := Economics()
	if e.AddedGFlops != 512 {
		t.Errorf("added GFlops = %v, want 512", e.AddedGFlops)
	}
	if e.AddedCostUSD != 12768 {
		t.Errorf("added cost = %v, want 12768", e.AddedCostUSD)
	}
	if math.Abs(e.MFlopsPerDollar-40.1) > 1.5 { // paper rounds to 41.1
		t.Errorf("MFlops/$ = %.1f, want ~40-41", e.MFlopsPerDollar)
	}
	if e.TotalPeakGFlops != 832 {
		t.Errorf("total peak = %v, want 832", e.TotalPeakGFlops)
	}
}

func TestSingleGPURow(t *testing.T) {
	h := Paper()
	r := h.SingleGPU()
	if r.Speedup < 6 || r.Speedup > 7 {
		t.Errorf("single GPU vs CPU speedup = %.2f, want ~6.6", r.Speedup)
	}
	if r.MaxLattice != 92 {
		t.Errorf("max lattice = %d", r.MaxLattice)
	}
}

func TestOverlapWindowIs120ms(t *testing.T) {
	h := Paper()
	w := h.overlapWindow(sched.NodeGrid{PX: 1, PY: 1, PZ: 1}, sub80)
	if w < 115*time.Millisecond || w > 125*time.Millisecond {
		t.Errorf("overlap window = %v, want ~120ms", w)
	}
}

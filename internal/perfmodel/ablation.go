package perfmodel

import (
	"gpucluster/internal/bus"
	"gpucluster/internal/sched"
)

// AblationRow pairs a baseline breakdown with a variant for one node
// count, for the design-choice ablations of DESIGN.md (A1-A4).
type AblationRow struct {
	Nodes    int
	Baseline StepBreakdown
	Variant  StepBreakdown
}

// AblationDiagonal compares the paper's indirect diagonal routing
// (baseline) against direct second-nearest-neighbor exchange (variant)
// — experiment A1. The direct pattern needs up to twice the schedule
// steps; the paper argues the simplified pattern wins despite slightly
// larger axial packets.
func (h Hardware) AblationDiagonal(nodeCounts []int, sub [3]int) []AblationRow {
	out := make([]AblationRow, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		g := sched.Arrange2D(n)
		out = append(out, AblationRow{
			Nodes:    n,
			Baseline: h.ClusterStep(g, sub, Options{Pattern: sched.Indirect}),
			Variant:  h.ClusterStep(g, sub, Options{Pattern: sched.Direct}),
		})
	}
	return out
}

// AblationBarrier compares barrier-synchronized schedules (baseline)
// against free-running ones (variant) — experiment A2. The paper found
// the barrier pays off below 16 nodes and hurts above.
func (h Hardware) AblationBarrier(nodeCounts []int, sub [3]int) []AblationRow {
	out := make([]AblationRow, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		g := sched.Arrange2D(n)
		out = append(out, AblationRow{
			Nodes:    n,
			Baseline: h.ClusterStep(g, sub, Options{Sync: SyncBarrier}),
			Variant:  h.ClusterStep(g, sub, Options{Sync: SyncNone}),
		})
	}
	return out
}

// AblationPCIe compares AGP 8x (baseline) against the x16 PCI-Express
// bus the paper anticipates (variant) — experiment A4.
func (h Hardware) AblationPCIe(nodeCounts []int, sub [3]int) []AblationRow {
	pcie := h.WithBus(bus.PCIe16x())
	out := make([]AblationRow, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		g := sched.Arrange2D(n)
		out = append(out, AblationRow{
			Nodes:    n,
			Baseline: h.ClusterStep(g, sub, Options{}),
			Variant:  pcie.ClusterStep(g, sub, Options{}),
		})
	}
	return out
}

// ShapeRow compares sub-domain shapes of equal volume — experiment A3.
// Section 4.3: "make the shape of each sub-domain as close as possible
// to a cube, since for block shapes the cube has the smallest ratio
// between boundary surface area and volume".
type ShapeRow struct {
	Label     string
	SubDomain [3]int
	Breakdown StepBreakdown
}

// AblationShape evaluates a cube and two progressively flatter slabs of
// the same cell count on a 3D node arrangement (with a 2D decomposition
// the unsplit dimension is never exchanged, so the claim only holds for
// 3D splits).
func (h Hardware) AblationShape(n int) []ShapeRow {
	g := sched.Arrange3D(n)
	shapes := []ShapeRow{
		{Label: "cube 80x80x80", SubDomain: [3]int{80, 80, 80}},
		{Label: "slab 160x80x40", SubDomain: [3]int{160, 80, 40}},
		{Label: "slab 320x80x20", SubDomain: [3]int{320, 80, 20}},
	}
	for i := range shapes {
		shapes[i].Breakdown = h.ClusterStep(g, shapes[i].SubDomain, Options{})
	}
	return shapes
}

package perfmodel

// Reference measurements transcribed from the paper, used to validate
// the calibrated model's shape and to print paper-vs-model comparisons
// in EXPERIMENTS.md. Times in milliseconds.

// PaperNodeCounts is the node-count column of Tables 1 and 2.
var PaperNodeCounts = []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 30, 32}

// PaperTable1Row is one measured row of Table 1.
type PaperTable1Row struct {
	Nodes         int
	CPUTotalMS    float64
	GPUComputeMS  float64
	GPUCPUCommMS  float64
	NetNonOverMS  float64
	NetTotalMS    float64
	GPUTotalMS    float64
	SpeedupFactor float64
}

// PaperTable1 is Table 1 of the paper (per-step times, 80^3 per node).
var PaperTable1 = []PaperTable1Row{
	{1, 1420, 214, 0, 0, 0, 214, 6.64},
	{2, 1424, 216, 13, 0, 38, 229, 6.22},
	{4, 1430, 224, 42, 0, 47, 266, 5.38},
	{8, 1429, 222, 50, 0, 68, 272, 5.25},
	{12, 1431, 230, 50, 0, 80, 280, 5.11},
	{16, 1433, 235, 50, 0, 85, 285, 5.03},
	{20, 1436, 237, 50, 0, 87, 287, 5.00},
	{24, 1437, 238, 50, 0, 90, 288, 4.99},
	{28, 1439, 237, 50, 11, 131, 298, 4.83},
	{30, 1440, 237, 50, 25, 145, 312, 4.62},
	{32, 1440, 237, 49, 31, 151, 317, 4.54},
}

// PaperTable2Row is one measured row of Table 2.
type PaperTable2Row struct {
	Nodes       int
	CellsPerSec float64
	Speedup     float64
	Efficiency  float64
}

// PaperTable2 is Table 2 of the paper (throughput and efficiency).
var PaperTable2 = []PaperTable2Row{
	{1, 2.3e6, 1, 1},
	{2, 4.3e6, 1.87, 0.935},
	{4, 7.3e6, 3.17, 0.793},
	{8, 14.4e6, 6.26, 0.783},
	{12, 20.9e6, 9.09, 0.758},
	{16, 27.4e6, 11.91, 0.744},
	{20, 34.0e6, 14.78, 0.739},
	{24, 40.7e6, 17.70, 0.738},
	{28, 45.9e6, 19.96, 0.713},
	{30, 47.0e6, 20.43, 0.681},
	{32, 49.2e6, 21.39, 0.668},
}

// Economics of Section 3.
const (
	// PaperGPUPeakGFlops is the fragment-stage peak of one FX 5800 Ultra.
	PaperGPUPeakGFlops = 16
	// PaperCPUNodePeakGFlops is the dual-Xeon node peak.
	PaperCPUNodePeakGFlops = 10
	// PaperGPUPriceUSD is the April 2003 street price of the GPU.
	PaperGPUPriceUSD = 399
	// PaperNodes is the cluster size used for computation.
	PaperNodes = 32
	// PaperClusterCostUSD is the full cluster cost (excluding the
	// rendering-only hardware).
	PaperClusterCostUSD = 136000
)

// EconomicsRow summarizes the Section 3 cost/performance argument.
type EconomicsRow struct {
	AddedGFlops     float64 // peak GFlops added by the GPUs
	AddedCostUSD    float64
	MFlopsPerDollar float64
	TotalPeakGFlops float64 // CPU + GPU cluster peak
}

// Economics computes the paper's 41.1 MFlops/$ figure from first
// principles.
func Economics() EconomicsRow {
	added := float64(PaperGPUPeakGFlops * PaperNodes)
	cost := float64(PaperGPUPriceUSD * PaperNodes)
	return EconomicsRow{
		AddedGFlops:     added,
		AddedCostUSD:    cost,
		MFlopsPerDollar: added * 1000 / cost,
		TotalPeakGFlops: float64((PaperGPUPeakGFlops + PaperCPUNodePeakGFlops) * PaperNodes),
	}
}

// SingleGPURow captures the Section 4.2 single-GPU result: the GeForce
// FX 5900 Ultra ran the BGK LBM about 8x faster than a software version
// on a Pentium IV 2.53 GHz, and 86 MB of texture memory capped the
// lattice at 92^3.
type SingleGPURow struct {
	GPUCellsPerSec float64
	CPUCellsPerSec float64
	Speedup        float64
	MaxLattice     int
}

// SingleGPU derives the single-GPU comparison from the hardware rates.
func (h Hardware) SingleGPU() SingleGPURow {
	return SingleGPURow{
		GPUCellsPerSec: h.GPUCellsPerSec,
		CPUCellsPerSec: h.CPUCellsPerSec,
		Speedup:        h.GPUCellsPerSec / h.CPUCellsPerSec,
		MaxLattice:     92,
	}
}

package lbm

import (
	"math"
	"testing"

	"gpucluster/internal/vecmath"
)

// poiseuilleError runs a body-force channel with the given wall
// intersection fraction q on both walls and returns the max relative
// error against the analytic profile for an effective channel width of
// NY - 1 + 2q (walls at y = -q and y = NY-1+q).
func poiseuilleError(t *testing.T, q float32, analyticQ float32) float64 {
	t.Helper()
	const H = 12
	tau := float32(0.9)
	g := float32(1e-5)
	l := New(4, H, 4, tau)
	l.Faces[FaceYNeg] = FaceSpec{Type: Wall}
	l.Faces[FaceYPos] = FaceSpec{Type: Wall}
	l.Force = vecmath.Vec3{g, 0, 0}
	l.Init(1, vecmath.Vec3{})
	if q != 0.5 { // 0.5 is plain half-way bounce-back; no links needed
		for z := 0; z < l.NZ; z++ {
			for x := 0; x < l.NX; x++ {
				for i := 1; i < Q; i++ {
					if C[i][1] == -1 {
						l.SetLinkQ(x, 0, z, i, q)
					}
					if C[i][1] == 1 {
						l.SetLinkQ(x, H-1, z, i, q)
					}
				}
			}
		}
	}
	for s := 0; s < 6000; s++ {
		l.Step()
	}
	nu := float64(Viscosity(tau))
	yBot := -float64(analyticQ)
	yTop := float64(H-1) + float64(analyticQ)
	var maxErr, maxU float64
	for y := 0; y < H; y++ {
		want := float64(g) / (2 * nu) * (float64(y) - yBot) * (yTop - float64(y))
		got := float64(l.Velocity(2, y, 2)[0])
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
		if math.Abs(want) > maxU {
			maxU = math.Abs(want)
		}
	}
	return maxErr / maxU
}

func TestInterpolatedBounceBackMovesWall(t *testing.T) {
	// With q = 0.25 the walls sit closer to the first fluid cells; the
	// profile must match the narrower analytic channel much better than
	// the half-way-width analytic solution.
	correct := poiseuilleError(t, 0.25, 0.25)
	wrongWidth := poiseuilleError(t, 0.25, 0.5)
	if correct > 0.03 {
		t.Errorf("q=0.25 profile error %.2f%% vs correct width", 100*correct)
	}
	if wrongWidth < 1.5*correct {
		t.Errorf("interpolation indistinguishable from half-way BB: correct %.3f%%, half-way-width %.3f%%",
			100*correct, 100*wrongWidth)
	}
}

func TestInterpolatedBounceBackWideWall(t *testing.T) {
	// q = 0.8: walls beyond the half-way plane (the q >= 1/2 branch).
	if err := poiseuilleError(t, 0.8, 0.8); err > 0.03 {
		t.Errorf("q=0.8 profile error %.2f%%", 100*err)
	}
}

func TestHalfQEqualsPlainBounceBack(t *testing.T) {
	// Setting q = 0.5 explicitly must reproduce the plain bounce-back
	// channel bit for bit.
	run := func(explicit bool) *Lattice {
		l := New(4, 8, 4, 0.8)
		l.Faces[FaceYNeg] = FaceSpec{Type: Wall}
		l.Faces[FaceYPos] = FaceSpec{Type: Wall}
		l.Force = vecmath.Vec3{1e-5, 0, 0}
		l.Init(1, vecmath.Vec3{})
		if explicit {
			for z := 0; z < l.NZ; z++ {
				for x := 0; x < l.NX; x++ {
					for i := 1; i < Q; i++ {
						if C[i][1] == -1 {
							l.SetLinkQ(x, 0, z, i, 0.5)
						}
						if C[i][1] == 1 {
							l.SetLinkQ(x, 7, z, i, 0.5)
						}
					}
				}
			}
		}
		for s := 0; s < 50; s++ {
			l.Step()
		}
		return l
	}
	a, b := run(false), run(true)
	for y := 0; y < 8; y++ {
		va, vb := a.Velocity(2, y, 2), b.Velocity(2, y, 2)
		// q=1/2 in both branches algebraically reduces to f~_o(x); the
		// float path differs (multiplications by 1.0 and 0.0), so allow
		// rounding-level differences.
		for d := 0; d < 3; d++ {
			if math.Abs(float64(va[d]-vb[d])) > 1e-6 {
				t.Fatalf("q=0.5 differs from plain BB at y=%d: %v vs %v", y, va, vb)
			}
		}
	}
}

func TestSphereLinksGeometry(t *testing.T) {
	l := New(16, 16, 16, 0.8)
	l.SphereLinks(8, 8, 8, 3.2)
	if !l.IsSolid(8, 8, 8) {
		t.Fatal("sphere center should be solid")
	}
	if l.IsSolid(2, 2, 2) {
		t.Fatal("far corner should be fluid")
	}
	if !l.HasCurvedBoundaries() {
		t.Fatal("sphere should register intersection links")
	}
	// Every recorded q must be in (0, 1] and belong to a fluid cell with
	// a solid neighbor in that direction.
	for c, lq := range l.LinkQ {
		if l.Solid[c] {
			t.Fatal("solid cell carries link fractions")
		}
		for i := 1; i < Q; i++ {
			if lq[i] == 0 {
				continue
			}
			if lq[i] <= 0 || lq[i] > 1 {
				t.Fatalf("q out of range: %v", lq[i])
			}
		}
	}
}

func TestSphereFlowStable(t *testing.T) {
	// Flow past the sphere with interpolated links stays finite and
	// conserves mass reasonably (open boundaries).
	l := New(24, 16, 16, 0.7)
	l.Faces[FaceXNeg] = FaceSpec{Type: Inlet, U: vecmath.Vec3{0.03, 0, 0}}
	l.Faces[FaceXPos] = FaceSpec{Type: Outflow}
	l.SphereLinks(10, 8, 8, 3.5)
	l.Init(1, vecmath.Vec3{0.03, 0, 0})
	for s := 0; s < 400; s++ {
		l.Step()
	}
	for _, p := range [][3]int{{5, 8, 8}, {18, 8, 8}, {10, 13, 8}} {
		v := l.Velocity(p[0], p[1], p[2])
		for d := 0; d < 3; d++ {
			if math.IsNaN(float64(v[d])) || math.Abs(float64(v[d])) > 0.5 {
				t.Fatalf("implausible velocity %v at %v", v, p)
			}
		}
	}
	// Wake symmetry about the y mid-plane (y=8: mirror pairs 11 and 5).
	up := l.Velocity(16, 11, 8)[0]
	dn := l.Velocity(16, 5, 8)[0]
	if math.Abs(float64(up-dn)) > 1e-3 {
		t.Errorf("wake asymmetric: %v vs %v", up, dn)
	}
}

func TestSetLinkQValidation(t *testing.T) {
	l := New(4, 4, 4, 0.8)
	for _, f := range []func(){
		func() { l.SetLinkQ(1, 1, 1, 1, 0) },
		func() { l.SetLinkQ(1, 1, 1, 1, 1.5) },
		func() { l.SetLinkQ(1, 1, 1, 0, 0.5) },
		func() { l.SetLinkQ(1, 1, 1, 19, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

package lbm

// Multiple-relaxation-time (MRT) collision operator for D3Q19, after
// d'Humieres, Bouzidi and Lallemand (Phys. Rev. E 63, 066702) — reference
// [8] of the paper. The hybrid thermal LBM of Section 4.1 "abandons the
// BGK collision model for the more stable MRT collision model"; this
// operator provides it.
//
// The moment basis is built programmatically from the standard orthogonal
// polynomials of the discrete velocities, and equilibrium moments are
// computed as M * feq. With every kinetic relaxation rate set equal to
// 1/tau the operator reduces exactly to BGK, which the tests verify;
// distinct rates for the non-hydrodynamic moments buy the extra stability
// the HTLBM needs at low viscosity.

// mrtBasis returns the 19 orthogonal moment basis vectors evaluated at
// the discrete velocities: rows of the transform matrix M.
func mrtBasis() [Q][Q]float32 {
	var m [Q][Q]float32
	for i := 0; i < Q; i++ {
		cx := float32(C[i][0])
		cy := float32(C[i][1])
		cz := float32(C[i][2])
		c2 := cx*cx + cy*cy + cz*cz
		c4 := c2 * c2
		m[0][i] = 1                             // rho
		m[1][i] = 19*c2 - 30                    // e (energy)
		m[2][i] = (21*c4 - 53*c2 + 24) / 2      // epsilon (energy^2)
		m[3][i] = cx                            // j_x
		m[4][i] = (5*c2 - 9) * cx               // q_x (heat flux)
		m[5][i] = cy                            // j_y
		m[6][i] = (5*c2 - 9) * cy               // q_y
		m[7][i] = cz                            // j_z
		m[8][i] = (5*c2 - 9) * cz               // q_z
		m[9][i] = 3*cx*cx - c2                  // 3 p_xx
		m[10][i] = (3*c2 - 5) * (3*cx*cx - c2)  // 3 pi_xx
		m[11][i] = cy*cy - cz*cz                // p_ww
		m[12][i] = (3*c2 - 5) * (cy*cy - cz*cz) // pi_ww
		m[13][i] = cx * cy                      // p_xy
		m[14][i] = cy * cz                      // p_yz
		m[15][i] = cx * cz                      // p_xz
		m[16][i] = (cy*cy - cz*cz) * cx         // m_x
		m[17][i] = (cz*cz - cx*cx) * cy         // m_y
		m[18][i] = (cx*cx - cy*cy) * cz         // m_z
	}
	return m
}

// MRT is the multiple-relaxation-time collision operator.
type MRT struct {
	// M transforms distributions to moments; Minv transforms back.
	M, Minv [Q][Q]float32
	// S holds the per-moment relaxation rates. Conserved moments
	// (rho, j_x, j_y, j_z) have rate 0 by construction.
	S [Q]float32
}

// Moment indices into S for readability.
const (
	MomRho = 0
	MomE   = 1
	MomEps = 2
	MomJx  = 3
	MomQx  = 4
	MomJy  = 5
	MomQy  = 6
	MomJz  = 7
	MomQz  = 8
	MomPxx = 9
	MomPiX = 10
	MomPww = 11
	MomPiW = 12
	MomPxy = 13
	MomPyz = 14
	MomPxz = 15
	MomMx  = 16
	MomMy  = 17
	MomMz  = 18
)

// NewMRT builds an MRT operator whose viscosity matches relaxation time
// tau (rates of the stress moments are 1/tau) and whose remaining kinetic
// moments use the stability-tuned rates of d'Humieres et al.
func NewMRT(tau float32) *MRT {
	m := &MRT{}
	m.M = mrtBasis()
	// Rows are mutually orthogonal: Minv = M^T diag(1/||row||^2).
	var norm [Q]float32
	for a := 0; a < Q; a++ {
		var s float32
		for i := 0; i < Q; i++ {
			s += m.M[a][i] * m.M[a][i]
		}
		norm[a] = s
	}
	for i := 0; i < Q; i++ {
		for a := 0; a < Q; a++ {
			m.Minv[i][a] = m.M[a][i] / norm[a]
		}
	}
	omega := 1 / tau
	m.S = [Q]float32{
		MomRho: 0,
		MomE:   1.19,
		MomEps: 1.4,
		MomJx:  0, MomJy: 0, MomJz: 0,
		MomQx: 1.2, MomQy: 1.2, MomQz: 1.2,
		MomPxx: omega, MomPww: omega,
		MomPxy: omega, MomPyz: omega, MomPxz: omega,
		MomPiX: 1.4, MomPiW: 1.4,
		MomMx: 1.98, MomMy: 1.98, MomMz: 1.98,
	}
	return m
}

// NewMRTAsBGK builds an MRT operator with every kinetic rate equal to
// 1/tau; it must reproduce BGK exactly (up to rounding), which the tests
// assert.
func NewMRTAsBGK(tau float32) *MRT {
	m := NewMRT(tau)
	omega := 1 / tau
	for a := 0; a < Q; a++ {
		if a == MomRho || a == MomJx || a == MomJy || a == MomJz {
			continue
		}
		m.S[a] = omega
	}
	return m
}

// Collide implements CollisionOp: relax each moment of (f - feq) at its
// own rate.
func (m *MRT) Collide(f, post *[Q]float32, rho, ux, uy, uz float32) {
	var feq [Q]float32
	Feq(&feq, rho, ux, uy, uz)
	// Moment-space deviations, relaxed per moment.
	var dm [Q]float32
	for a := 0; a < Q; a++ {
		if m.S[a] == 0 {
			continue
		}
		var dev float32
		row := &m.M[a]
		for i := 0; i < Q; i++ {
			dev += row[i] * (f[i] - feq[i])
		}
		dm[a] = m.S[a] * dev
	}
	// Back-transform the relaxation and subtract.
	for i := 0; i < Q; i++ {
		var corr float32
		row := &m.Minv[i]
		for a := 0; a < Q; a++ {
			corr += row[a] * dm[a]
		}
		post[i] = f[i] - corr
	}
}

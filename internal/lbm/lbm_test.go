package lbm

import (
	"math"
	"testing"
	"testing/quick"

	"gpucluster/internal/vecmath"
)

func TestLatticeConstants(t *testing.T) {
	// Weights sum to 1.
	var sum float32
	for _, w := range W {
		sum += w
	}
	if math.Abs(float64(sum-1)) > 1e-6 {
		t.Fatalf("weights sum to %v", sum)
	}
	// Opp is a correct involution.
	for i := 0; i < Q; i++ {
		o := Opp[i]
		if Opp[o] != i {
			t.Fatalf("Opp not involutive at %d", i)
		}
		for d := 0; d < 3; d++ {
			if C[o][d] != -C[i][d] {
				t.Fatalf("C[%d] != -C[%d]", o, i)
			}
		}
	}
	// 1 rest + 6 axial + 12 diagonal.
	var rest, axial, diag int
	for i := 0; i < Q; i++ {
		n := C[i][0]*C[i][0] + C[i][1]*C[i][1] + C[i][2]*C[i][2]
		switch n {
		case 0:
			rest++
		case 1:
			axial++
		case 2:
			diag++
		default:
			t.Fatalf("invalid speed %d at %d", n, i)
		}
	}
	if rest != 1 || axial != 6 || diag != 12 {
		t.Fatalf("speed census = %d/%d/%d", rest, axial, diag)
	}
	// Second moment isotropy: sum_i w_i c_ia c_ib = c_s^2 delta_ab.
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			var s float32
			for i := 0; i < Q; i++ {
				s += W[i] * float32(C[i][a]*C[i][b])
			}
			want := float32(0)
			if a == b {
				want = CsSq
			}
			if math.Abs(float64(s-want)) > 1e-6 {
				t.Fatalf("second moment [%d][%d] = %v, want %v", a, b, s, want)
			}
		}
	}
}

func TestFeqMoments(t *testing.T) {
	// The equilibrium distribution must reproduce its defining moments:
	// sum feq = rho, sum c feq = rho u.
	cases := []struct {
		rho, ux, uy, uz float32
	}{
		{1, 0, 0, 0},
		{1, 0.05, 0, 0},
		{1.2, 0.02, -0.03, 0.01},
		{0.8, -0.05, 0.05, -0.05},
	}
	for _, c := range cases {
		var feq [Q]float32
		Feq(&feq, c.rho, c.ux, c.uy, c.uz)
		rho, ux, uy, uz := Moments(&feq)
		if math.Abs(float64(rho-c.rho)) > 1e-5 {
			t.Errorf("rho = %v, want %v", rho, c.rho)
		}
		for _, p := range [][2]float32{{ux, c.ux}, {uy, c.uy}, {uz, c.uz}} {
			if math.Abs(float64(p[0]-p[1])) > 1e-5 {
				t.Errorf("u = (%v %v %v), want (%v %v %v)", ux, uy, uz, c.ux, c.uy, c.uz)
			}
		}
	}
}

func TestFeqMomentsProperty(t *testing.T) {
	f := func(rho, ux, uy, uz float32) bool {
		// Restrict to the physically meaningful low-Mach regime.
		rho = 0.5 + float32(math.Mod(math.Abs(float64(rho)), 1.0))
		clampU := func(u float32) float32 {
			return float32(math.Mod(float64(u), 0.1))
		}
		ux, uy, uz = clampU(ux), clampU(uy), clampU(uz)
		var feq [Q]float32
		Feq(&feq, rho, ux, uy, uz)
		r, vx, vy, vz := Moments(&feq)
		tol := 1e-4
		return math.Abs(float64(r-rho)) < tol &&
			math.Abs(float64(vx-ux)) < tol &&
			math.Abs(float64(vy-uy)) < tol &&
			math.Abs(float64(vz-uz)) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestViscosityRelation(t *testing.T) {
	if got := Viscosity(1.0); math.Abs(float64(got)-1.0/6.0) > 1e-7 {
		t.Errorf("Viscosity(1) = %v", got)
	}
	if got := TauForViscosity(Viscosity(0.73)); math.Abs(float64(got)-0.73) > 1e-6 {
		t.Errorf("round trip tau = %v", got)
	}
}

func TestMassMomentumConservationPeriodic(t *testing.T) {
	// A periodic box with a perturbed initial condition conserves mass
	// and momentum under BGK collision + streaming.
	l := New(12, 10, 8, 0.8)
	l.Init(1, vecmath.Vec3{})
	// Perturb: superpose a sine-mode velocity via equilibrium.
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				ux := 0.03 * float32(math.Sin(2*math.Pi*float64(y)/float64(l.NY)))
				uz := 0.02 * float32(math.Cos(2*math.Pi*float64(x)/float64(l.NX)))
				var f [Q]float32
				Feq(&f, 1, ux, 0, uz)
				l.Scatter(&f, x, y, z)
			}
		}
	}
	mass0 := l.TotalMass()
	mom0 := l.TotalMomentum()
	for s := 0; s < 50; s++ {
		l.Step()
	}
	mass1 := l.TotalMass()
	mom1 := l.TotalMomentum()
	if rel := math.Abs(mass1-mass0) / mass0; rel > 1e-5 {
		t.Errorf("mass drifted by %v (%.1f -> %.1f)", rel, mass0, mass1)
	}
	for d := 0; d < 3; d++ {
		if math.Abs(mom1[d]-mom0[d]) > 1e-2 {
			t.Errorf("momentum[%d] drifted: %v -> %v", d, mom0[d], mom1[d])
		}
	}
}

func TestPoiseuilleProfile(t *testing.T) {
	// Body-force-driven channel flow between two no-slip walls (y faces),
	// periodic in x and z. Steady state: u_x(y) = g/(2 nu) * y' (H - y')
	// with y' measured from the wall (half-way bounce-back places walls
	// half a cell outside the first/last fluid cells).
	const H = 16 // channel width in cells
	tau := float32(0.9)
	g := float32(1e-5)
	l := New(4, H, 4, tau)
	l.Faces[FaceYNeg] = FaceSpec{Type: Wall}
	l.Faces[FaceYPos] = FaceSpec{Type: Wall}
	l.Force = vecmath.Vec3{g, 0, 0}
	l.Init(1, vecmath.Vec3{})
	for s := 0; s < 6000; s++ {
		l.Step()
	}
	nu := Viscosity(tau)
	var maxErr, maxU float64
	for y := 0; y < H; y++ {
		yw := float64(y) + 0.5 // distance from wall (half-way BB)
		want := float64(g) / (2 * float64(nu)) * yw * (float64(H) - yw)
		got := float64(l.Velocity(2, y, 2)[0])
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
		if math.Abs(want) > maxU {
			maxU = math.Abs(want)
		}
	}
	if maxErr/maxU > 0.03 {
		t.Errorf("Poiseuille profile error %.2f%% exceeds 3%%", 100*maxErr/maxU)
	}
}

func TestCouetteProfile(t *testing.T) {
	// Plane Couette flow: top wall moves with u_w in +x, bottom wall
	// fixed. Steady state is a linear profile.
	const H = 12
	uw := float32(0.05)
	l := New(4, H, 4, 0.8)
	l.Faces[FaceYNeg] = FaceSpec{Type: Wall}
	l.Faces[FaceYPos] = FaceSpec{Type: MovingWall, U: vecmath.Vec3{uw, 0, 0}}
	l.Init(1, vecmath.Vec3{})
	for s := 0; s < 4000; s++ {
		l.Step()
	}
	var maxErr float64
	for y := 0; y < H; y++ {
		yw := float64(y) + 0.5
		want := float64(uw) * yw / float64(H)
		got := float64(l.Velocity(1, y, 1)[0])
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	if maxErr/float64(uw) > 0.03 {
		t.Errorf("Couette profile error %.2f%% exceeds 3%%", 100*maxErr/float64(uw))
	}
}

func TestTaylorGreenViscousDecay(t *testing.T) {
	// A periodic shear mode u_x = U sin(k y) decays as exp(-nu k^2 t).
	// Measuring the decay rate recovers the kinematic viscosity.
	const N = 32
	tau := float32(0.8)
	U := float32(0.02)
	l := New(4, N, 4, tau)
	k := 2 * math.Pi / float64(N)
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				ux := U * float32(math.Sin(k*float64(y)))
				var f [Q]float32
				Feq(&f, 1, ux, 0, 0)
				l.Scatter(&f, x, y, z)
			}
		}
	}
	amp := func() float64 {
		// Amplitude via projection onto sin(k y).
		var s float64
		for y := 0; y < N; y++ {
			s += float64(l.Velocity(2, y, 2)[0]) * math.Sin(k*float64(y))
		}
		return s * 2 / N
	}
	a0 := amp()
	const steps = 400
	for s := 0; s < steps; s++ {
		l.Step()
	}
	a1 := amp()
	nuMeasured := -math.Log(a1/a0) / (k * k * steps)
	nuWant := float64(Viscosity(tau))
	if rel := math.Abs(nuMeasured-nuWant) / nuWant; rel > 0.05 {
		t.Errorf("measured viscosity %.5f vs theoretical %.5f (%.1f%% off)",
			nuMeasured, nuWant, 100*rel)
	}
}

func TestObstacleBounceBackSymmetry(t *testing.T) {
	// Uniform flow past a centered solid block in a periodic box: the
	// flow must stay symmetric about the block's center plane.
	l := New(24, 16, 16, 0.8)
	l.Force = vecmath.Vec3{1e-5, 0, 0}
	for z := 6; z < 10; z++ {
		for y := 6; y < 10; y++ {
			for x := 10; x < 14; x++ {
				l.SetSolid(x, y, z, true)
			}
		}
	}
	l.Init(1, vecmath.Vec3{})
	for s := 0; s < 300; s++ {
		l.Step()
	}
	// Mirror symmetry in y about the plane y=7.5.
	for y := 0; y < 8; y++ {
		ya, yb := y, 15-y
		ua := l.Velocity(5, ya, 8)[0]
		ub := l.Velocity(5, yb, 8)[0]
		if math.Abs(float64(ua-ub)) > 1e-4 {
			t.Errorf("asymmetry at y=%d/%d: %v vs %v", ya, yb, ua, ub)
		}
	}
	// No fluid enters solid cells: their distributions were never
	// updated; conservation must still hold for the fluid.
	mass := l.TotalMass()
	fluidCells := float64(l.Cells() - 4*4*4)
	if math.Abs(mass-fluidCells)/fluidCells > 0.05 {
		t.Errorf("fluid mass %.1f deviates from %v", mass, fluidCells)
	}
}

func TestInletOutflowChannel(t *testing.T) {
	// Inlet at -x with u=U, outflow at +x, walls elsewhere: the bulk
	// velocity should approach U downstream.
	U := float32(0.04)
	l := New(24, 10, 10, 0.8)
	l.Faces[FaceXNeg] = FaceSpec{Type: Inlet, U: vecmath.Vec3{U, 0, 0}}
	l.Faces[FaceXPos] = FaceSpec{Type: Outflow}
	l.Faces[FaceYNeg] = FaceSpec{Type: Wall}
	l.Faces[FaceYPos] = FaceSpec{Type: Wall}
	l.Faces[FaceZNeg] = FaceSpec{Type: Wall}
	l.Faces[FaceZPos] = FaceSpec{Type: Wall}
	l.Init(1, vecmath.Vec3{U, 0, 0})
	for s := 0; s < 800; s++ {
		l.Step()
	}
	mid := l.Velocity(12, 5, 5)[0]
	if mid < 0.5*U || mid > 2.5*U {
		t.Errorf("centerline velocity %v implausible for inlet %v", mid, U)
	}
	// Flow direction must be downstream everywhere on the centerline.
	for x := 0; x < l.NX; x++ {
		if u := l.Velocity(x, 5, 5)[0]; u <= 0 {
			t.Errorf("backflow %v at x=%d", u, x)
		}
	}
}

func TestMRTReducesToBGK(t *testing.T) {
	// With all kinetic rates = 1/tau, the MRT operator must match BGK to
	// rounding error, per the orthogonal-basis construction.
	tau := float32(0.77)
	mrt := NewMRTAsBGK(tau)
	omega := 1 / tau
	cases := [][4]float32{
		{1, 0, 0, 0},
		{1.1, 0.05, -0.02, 0.01},
		{0.9, -0.08, 0.03, 0.06},
	}
	for _, c := range cases {
		var f, feq, postBGK, postMRT [Q]float32
		Feq(&f, c[0], c[1], c[2], c[3])
		// Perturb away from equilibrium.
		for i := range f {
			f[i] *= 1 + 0.1*float32(math.Sin(float64(i)))
		}
		rho, ux, uy, uz := Moments(&f)
		Feq(&feq, rho, ux, uy, uz)
		for i := 0; i < Q; i++ {
			postBGK[i] = f[i] - omega*(f[i]-feq[i])
		}
		mrt.Collide(&f, &postMRT, rho, ux, uy, uz)
		for i := 0; i < Q; i++ {
			if math.Abs(float64(postBGK[i]-postMRT[i])) > 2e-5 {
				t.Fatalf("MRT[%d] = %v, BGK = %v", i, postMRT[i], postBGK[i])
			}
		}
	}
}

func TestMRTConservesMassMomentum(t *testing.T) {
	mrt := NewMRT(0.6)
	f := func(seed int64) bool {
		var fin, post [Q]float32
		s := seed
		for i := range fin {
			s = s*6364136223846793005 + 1442695040888963407
			fin[i] = 0.02 + float32(uint64(s)>>40)/float32(1<<25)
		}
		rho, ux, uy, uz := Moments(&fin)
		mrt.Collide(&fin, &post, rho, ux, uy, uz)
		r2, vx2, vy2, vz2 := Moments(&post)
		tol := 1e-4
		return math.Abs(float64(r2-rho)) < tol*float64(rho) &&
			math.Abs(float64(vx2-ux)) < tol &&
			math.Abs(float64(vy2-uy)) < tol &&
			math.Abs(float64(vz2-uz)) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMRTBasisOrthogonal(t *testing.T) {
	basis := mrtBasis()
	for a := 0; a < Q; a++ {
		for b := a + 1; b < Q; b++ {
			var dot float64
			for i := 0; i < Q; i++ {
				dot += float64(basis[a][i]) * float64(basis[b][i])
			}
			if math.Abs(dot) > 1e-3 {
				t.Errorf("rows %d and %d not orthogonal: %v", a, b, dot)
			}
		}
	}
}

func TestMRTStableAtLowViscosity(t *testing.T) {
	// The paper adopts MRT for stability. At tau close to 0.5 (low
	// viscosity) MRT with tuned rates must stay finite where the flow is
	// moderately driven.
	tau := float32(0.52)
	l := New(16, 16, 4, tau)
	l.Collision = NewMRT(tau)
	l.Force = vecmath.Vec3{1e-6, 0, 0}
	l.Faces[FaceYNeg] = FaceSpec{Type: Wall}
	l.Faces[FaceYPos] = FaceSpec{Type: Wall}
	l.Init(1, vecmath.Vec3{})
	for s := 0; s < 500; s++ {
		l.Step()
	}
	v := l.Velocity(8, 8, 2)
	for d := 0; d < 3; d++ {
		if math.IsNaN(float64(v[d])) || math.IsInf(float64(v[d]), 0) {
			t.Fatalf("MRT went unstable: v = %v", v)
		}
	}
}

func TestInvalidConstruction(t *testing.T) {
	for _, bad := range []func(){
		func() { New(0, 4, 4, 0.8) },
		func() { New(4, -1, 4, 0.8) },
		func() { New(4, 4, 4, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			bad()
		}()
	}
}

func TestStepCount(t *testing.T) {
	l := New(4, 4, 4, 0.8)
	l.Init(1, vecmath.Vec3{})
	for i := 0; i < 3; i++ {
		l.Step()
	}
	if l.StepCount() != 3 {
		t.Errorf("step count = %d", l.StepCount())
	}
}

package lbm

import (
	"fmt"

	"gpucluster/internal/vecmath"
)

// BC identifies the boundary condition applied at one face of the domain.
type BC int

// Boundary condition kinds for the six domain faces.
const (
	// Periodic wraps distributions to the opposite face.
	Periodic BC = iota
	// Wall is a no-slip solid wall realized by half-way bounce-back.
	Wall
	// MovingWall is a no-slip wall translating with a velocity (used for
	// Couette flow and the lid-driven cavity).
	MovingWall
	// Inlet imposes an equilibrium distribution with a prescribed
	// velocity and density, the velocity boundary condition the paper
	// uses for the northeasterly wind in Section 5.
	Inlet
	// Outflow is a zero-gradient (copy from the adjacent interior cell)
	// open boundary.
	Outflow
	// Ghost marks a face whose ghost layer is filled externally by the
	// cluster layer's border exchange (package cluster).
	Ghost
)

// Face indices for Lattice.Faces.
const (
	FaceXNeg = iota
	FaceXPos
	FaceYNeg
	FaceYPos
	FaceZNeg
	FaceZPos
	NumFaces
)

// FaceSpec configures one domain face.
type FaceSpec struct {
	Type BC
	// U is the wall velocity (MovingWall) or inflow velocity (Inlet).
	U vecmath.Vec3
	// Rho is the inlet density; zero means 1.
	Rho float32
}

// Lattice is a D3Q19 lattice of NX x NY x NZ fluid cells surrounded by a
// one-cell ghost shell. Distributions are stored structure-of-arrays; the
// ghost shell holds post-collision distributions streamed in from
// boundary conditions or, in cluster runs, from neighboring sub-domains.
type Lattice struct {
	NX, NY, NZ int
	// Tau is the BGK relaxation time.
	Tau float32
	// Faces configures the six domain faces.
	Faces [NumFaces]FaceSpec
	// Force is a uniform body-force acceleration applied each step.
	Force vecmath.Vec3
	// ForceField optionally adds a per-cell acceleration (ghost-padded
	// indexing, same layout as Rho); used by the thermal coupling.
	ForceField []vecmath.Vec3
	// Collision selects the collision operator; nil means BGK.
	Collision CollisionOp

	// F holds the current (pre-collision) distributions including the
	// ghost shell; Post holds post-collision values.
	F, Post [Q][]float32
	// Solid flags obstacle cells (ghost-padded). Ghost cells of Wall and
	// MovingWall faces are flagged solid at construction.
	Solid []bool
	// WallU holds the wall velocity for solid cells with a moving
	// surface; nil when no moving walls exist.
	WallU []vecmath.Vec3
	// LinkQ stores sub-cell wall intersection fractions for curved
	// boundaries (see curved.go); nil when only flat/staircase walls
	// exist.
	LinkQ map[int]*linkQ
	// Rho caches per-cell density from the latest collision.
	Rho []float32

	sx, sy, sz int // padded dimensions NX+2 etc.
	step       int
}

// CollisionOp relaxes one cell's distributions toward equilibrium given
// the cell's density and velocity. Implementations must conserve mass and
// momentum.
type CollisionOp interface {
	// Collide reads f and writes the post-collision distributions to
	// post. rho, ux, uy, uz are the precomputed moments of f.
	Collide(f, post *[Q]float32, rho, ux, uy, uz float32)
}

// New constructs a lattice of nx x ny x nz fluid cells with relaxation
// time tau and all-periodic boundaries; adjust Faces before Init.
func New(nx, ny, nz int, tau float32) *Lattice {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("lbm: invalid lattice size %dx%dx%d", nx, ny, nz))
	}
	if tau <= 0.5 {
		panic(fmt.Sprintf("lbm: tau %v must exceed 0.5 for positive viscosity", tau))
	}
	l := &Lattice{
		NX: nx, NY: ny, NZ: nz, Tau: tau,
		sx: nx + 2, sy: ny + 2, sz: nz + 2,
	}
	n := l.sx * l.sy * l.sz
	for i := 0; i < Q; i++ {
		l.F[i] = make([]float32, n)
		l.Post[i] = make([]float32, n)
	}
	l.Solid = make([]bool, n)
	l.Rho = make([]float32, n)
	return l
}

// Idx returns the padded linear index of cell (x, y, z); coordinates may
// range over [-1, N] to address the ghost shell.
func (l *Lattice) Idx(x, y, z int) int {
	return ((z+1)*l.sy+(y+1))*l.sx + (x + 1)
}

// Cells returns the number of interior (fluid-domain) cells.
func (l *Lattice) Cells() int { return l.NX * l.NY * l.NZ }

// Step returns the number of completed time steps.
func (l *Lattice) StepCount() int { return l.step }

// SetSolid marks the interior cell (x, y, z) as an obstacle.
func (l *Lattice) SetSolid(x, y, z int, solid bool) {
	l.Solid[l.Idx(x, y, z)] = solid
}

// IsSolid reports whether cell (x, y, z) (ghost range allowed) is solid.
func (l *Lattice) IsSolid(x, y, z int) bool { return l.Solid[l.Idx(x, y, z)] }

// Init applies the face configuration (marking wall ghosts solid) and
// sets every cell, including ghosts, to the equilibrium distribution for
// the given density and velocity.
func (l *Lattice) Init(rho float32, u vecmath.Vec3) {
	l.applyFaceSolids()
	var feq [Q]float32
	Feq(&feq, rho, u[0], u[1], u[2])
	n := len(l.F[0])
	for i := 0; i < Q; i++ {
		fi := l.F[i]
		pi := l.Post[i]
		for c := 0; c < n; c++ {
			fi[c] = feq[i]
			pi[c] = feq[i]
		}
	}
	// The density cache always holds Moments(F) computed through the
	// same float path as Collide, so every consumer (moving-wall terms,
	// the GPU macro textures) sees bit-identical values.
	rhoInit, _, _, _ := Moments(&feq)
	for c := range l.Rho {
		l.Rho[c] = rhoInit
	}
}

// applyFaceSolids marks ghost cells of Wall/MovingWall faces as solid and
// records wall velocities.
func (l *Lattice) applyFaceSolids() {
	needWallU := false
	for _, f := range l.Faces {
		if f.Type == MovingWall {
			needWallU = true
		}
	}
	if needWallU && l.WallU == nil {
		l.WallU = make([]vecmath.Vec3, len(l.Solid))
	}
	mark := func(face int, x, y, z int) {
		spec := l.Faces[face]
		if spec.Type != Wall && spec.Type != MovingWall {
			return
		}
		i := l.Idx(x, y, z)
		l.Solid[i] = true
		if spec.Type == MovingWall && l.WallU != nil {
			l.WallU[i] = spec.U
		}
	}
	for z := -1; z <= l.NZ; z++ {
		for y := -1; y <= l.NY; y++ {
			mark(FaceXNeg, -1, y, z)
			mark(FaceXPos, l.NX, y, z)
		}
	}
	for z := -1; z <= l.NZ; z++ {
		for x := -1; x <= l.NX; x++ {
			mark(FaceYNeg, x, -1, z)
			mark(FaceYPos, x, l.NY, z)
		}
	}
	for y := -1; y <= l.NY; y++ {
		for x := -1; x <= l.NX; x++ {
			mark(FaceZNeg, x, y, -1)
			mark(FaceZPos, x, y, l.NZ)
		}
	}
}

// Density returns the cached density of interior cell (x, y, z) as of the
// last collision.
func (l *Lattice) Density(x, y, z int) float32 { return l.Rho[l.Idx(x, y, z)] }

// Velocity computes the velocity of interior cell (x, y, z) from the
// current distributions.
func (l *Lattice) Velocity(x, y, z int) vecmath.Vec3 {
	var f [Q]float32
	l.Gather(&f, x, y, z)
	_, ux, uy, uz := Moments(&f)
	return vecmath.Vec3{ux, uy, uz}
}

// Gather copies the Q distributions of cell (x, y, z) into f.
func (l *Lattice) Gather(f *[Q]float32, x, y, z int) {
	c := l.Idx(x, y, z)
	for i := 0; i < Q; i++ {
		f[i] = l.F[i][c]
	}
}

// Scatter overwrites the Q distributions of cell (x, y, z) from f. Both
// the pre- and post-collision buffers are set, so a freshly scattered
// state is self-consistent for the stream-collide step order.
func (l *Lattice) Scatter(f *[Q]float32, x, y, z int) {
	c := l.Idx(x, y, z)
	for i := 0; i < Q; i++ {
		l.F[i][c] = f[i]
		l.Post[i][c] = f[i]
	}
}

// TotalMass sums the density over the interior cells (using current
// distributions, not the cached Rho).
func (l *Lattice) TotalMass() float64 {
	var sum float64
	var f [Q]float32
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				if l.Solid[l.Idx(x, y, z)] {
					continue
				}
				l.Gather(&f, x, y, z)
				rho, _, _, _ := Moments(&f)
				sum += float64(rho)
			}
		}
	}
	return sum
}

// TotalMomentum sums rho*u over interior fluid cells.
func (l *Lattice) TotalMomentum() [3]float64 {
	var m [3]float64
	var f [Q]float32
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				if l.Solid[l.Idx(x, y, z)] {
					continue
				}
				l.Gather(&f, x, y, z)
				for i := 0; i < Q; i++ {
					m[0] += float64(f[i]) * float64(C[i][0])
					m[1] += float64(f[i]) * float64(C[i][1])
					m[2] += float64(f[i]) * float64(C[i][2])
				}
			}
		}
	}
	return m
}

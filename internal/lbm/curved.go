package lbm

import "math"

// Curved-boundary support. Section 4.1 of the paper: "Complex shaped
// boundaries such as curves and porous media can be represented by the
// location of the intersection of the boundary surfaces with the lattice
// links" (Mei, Shyy, Yu, Luo — reference [24]). This file implements the
// linear interpolated bounce-back of Bouzidi et al., which uses that
// intersection location: for a link crossing the wall at fraction q of
// its length (measured from the fluid cell), the reflected population is
// interpolated between neighboring post-collision values instead of the
// half-way mirror, making the effective wall position sub-cell accurate.
//
// q = 1/2 reduces exactly to the plain half-way bounce-back; q is stored
// sparsely because only boundary cells carry intersections. The GPU
// backend does not implement interpolated links (the paper stored
// intersection positions in boundary textures; here the feature is
// CPU-side), so lbmgpu rejects lattices that use it.

// linkQ stores the per-direction wall-intersection fractions of one cell;
// entries are 0 where the link does not cross a resolved wall.
type linkQ [Q]float32

// SetLinkQ records that the link leaving interior cell (x, y, z) in
// direction dir crosses the boundary surface at fraction q of the link
// length (0 < q <= 1, measured from the cell center). The neighbor cell
// in that direction must be solid for the intersection to take effect.
func (l *Lattice) SetLinkQ(x, y, z, dir int, q float32) {
	if q <= 0 || q > 1 {
		panic("lbm: link intersection fraction must be in (0, 1]")
	}
	if dir <= 0 || dir >= Q {
		panic("lbm: invalid link direction")
	}
	if l.LinkQ == nil {
		l.LinkQ = make(map[int]*linkQ)
	}
	c := l.Idx(x, y, z)
	lq := l.LinkQ[c]
	if lq == nil {
		lq = &linkQ{}
		l.LinkQ[c] = lq
	}
	lq[dir] = q
}

// HasCurvedBoundaries reports whether any interpolated links are set.
func (l *Lattice) HasCurvedBoundaries() bool { return len(l.LinkQ) > 0 }

// curvedBounce computes the interpolated bounce-back value for the
// returning direction i at cell c (the wall lies along o = Opp[i], which
// crossed the surface at fraction q). Implements the two branches of the
// Bouzidi linear scheme; the upstream fluid neighbor is required for
// q < 1/2 and plain bounce-back is used when it is unavailable (solid).
func (l *Lattice) curvedBounce(i, o, c, x, y, z int, q float32) float32 {
	if q < 0.5 {
		up := l.Idx(x+C[i][0], y+C[i][1], z+C[i][2]) // one cell away from the wall
		if !l.Solid[up] {
			return 2*q*l.Post[o][c] + (1-2*q)*l.Post[o][up]
		}
		// No upstream fluid neighbor: degrade to half-way bounce-back.
		return l.Post[o][c]
	}
	inv := 1 / (2 * q)
	return inv*l.Post[o][c] + (2*q-1)*inv*l.Post[i][c]
}

// SphereLinks marks the solid cells of a sphere (center cx,cy,cz, radius
// r, in cell units) and records the exact link intersection fractions for
// every fluid cell adjacent to it — the Mei et al. representation of a
// curved boundary on the lattice.
func (l *Lattice) SphereLinks(cx, cy, cz, r float32) {
	inside := func(x, y, z int) bool {
		dx := float32(x) - cx
		dy := float32(y) - cy
		dz := float32(z) - cz
		return dx*dx+dy*dy+dz*dz <= r*r
	}
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				if inside(x, y, z) {
					l.SetSolid(x, y, z, true)
				}
			}
		}
	}
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				if inside(x, y, z) {
					continue
				}
				for i := 1; i < Q; i++ {
					nx, ny, nz := x+C[i][0], y+C[i][1], z+C[i][2]
					if nx < 0 || nx >= l.NX || ny < 0 || ny >= l.NY || nz < 0 || nz >= l.NZ {
						continue
					}
					if !inside(nx, ny, nz) {
						continue
					}
					// Solve |p + t*c - center| = r for t in (0, 1].
					px := float32(x) - cx
					py := float32(y) - cy
					pz := float32(z) - cz
					dx := float32(C[i][0])
					dy := float32(C[i][1])
					dz := float32(C[i][2])
					a := dx*dx + dy*dy + dz*dz
					b := 2 * (px*dx + py*dy + pz*dz)
					cc := px*px + py*py + pz*pz - r*r
					disc := b*b - 4*a*cc
					if disc <= 0 {
						continue
					}
					t := (-b - sqrt32(disc)) / (2 * a)
					if t > 0 && t <= 1 {
						l.SetLinkQ(x, y, z, i, t)
					}
				}
			}
		}
	}
}

func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}

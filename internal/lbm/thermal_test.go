package lbm

import (
	"math"
	"testing"

	"gpucluster/internal/vecmath"
)

func TestThermalDiffusionConservesEnergy(t *testing.T) {
	// Pure diffusion (no flow) with adiabatic boundaries conserves the
	// total heat content.
	l := New(12, 12, 12, 0.8)
	l.Init(1, vecmath.Vec3{})
	th := NewThermal(l, 0.1, 0)
	th.SetTemp(6, 6, 6, 100)
	var sum0 float64
	for i := range th.T {
		sum0 += float64(th.T[i])
	}
	mean0 := th.MeanTemp()
	for s := 0; s < 100; s++ {
		th.Step()
	}
	mean1 := th.MeanTemp()
	if math.Abs(mean1-mean0) > 1e-3*math.Abs(mean0+1) {
		t.Errorf("mean temperature drifted %v -> %v", mean0, mean1)
	}
	_ = sum0
}

func TestThermalDiffusionSpreads(t *testing.T) {
	// A hot spot must spread: peak decreases, neighbors warm up.
	l := New(16, 16, 16, 0.8)
	l.Init(1, vecmath.Vec3{})
	th := NewThermal(l, 1.0/8, 0)
	th.SetTemp(8, 8, 8, 100)
	for s := 0; s < 40; s++ {
		th.Step()
	}
	peak := th.Temp(8, 8, 8)
	if peak >= 100 || peak <= 0 {
		t.Errorf("peak after diffusion = %v", peak)
	}
	if n := th.Temp(10, 8, 8); n <= 0 {
		t.Errorf("neighbor did not warm: %v", n)
	}
	// Spherical symmetry of the spread.
	a, b := th.Temp(10, 8, 8), th.Temp(8, 10, 8)
	if math.Abs(float64(a-b)) > 1e-4 {
		t.Errorf("anisotropic diffusion: %v vs %v", a, b)
	}
}

func TestThermalAdvection(t *testing.T) {
	// With a uniform flow in +x and negligible diffusion the temperature
	// bump must translate downstream.
	U := float32(0.08)
	l := New(32, 8, 8, 0.8)
	l.Init(1, vecmath.Vec3{U, 0, 0})
	th := NewThermal(l, 1e-4, 0)
	th.SetTemp(6, 4, 4, 50)
	th.SetTemp(7, 4, 4, 50)
	th.SetTemp(8, 4, 4, 50)
	// Advect only (don't step the flow, which stays uniform by symmetry
	// anyway); 100 steps at u=0.08 moves the center by ~8 cells.
	for s := 0; s < 100; s++ {
		th.Step()
	}
	// Center of mass of temperature along x.
	var m, mx float64
	for x := 0; x < l.NX; x++ {
		v := float64(th.Temp(x, 4, 4))
		m += v
		mx += v * float64(x)
	}
	com := mx / m
	if com < 10 || com > 20 {
		t.Errorf("temperature center of mass = %.1f, want ~15 (started at 7)", com)
	}
}

func TestBuoyancyDrivesFlow(t *testing.T) {
	// A hot column with upward buoyancy must generate upward momentum:
	// the energy coupling back into the flow.
	l := New(8, 8, 16, 0.8)
	l.Faces[FaceZNeg] = FaceSpec{Type: Wall}
	l.Faces[FaceZPos] = FaceSpec{Type: Wall}
	l.Init(1, vecmath.Vec3{})
	th := NewThermal(l, 0.05, 0)
	th.Buoyancy = vecmath.Vec3{0, 0, 1e-4}
	for z := 4; z < 8; z++ {
		th.SetTemp(4, 4, z, 10)
	}
	for s := 0; s < 60; s++ {
		th.Step()
		l.Step()
	}
	if uz := l.Velocity(4, 4, 8)[2]; uz <= 0 {
		t.Errorf("hot column should rise, u_z = %v", uz)
	}
}

func TestDirichletFaceDrivesGradient(t *testing.T) {
	// Hot bottom, cold top with pure conduction: a monotone vertical
	// profile develops.
	l := New(4, 4, 12, 0.8)
	l.Init(1, vecmath.Vec3{})
	th := NewThermal(l, 0.15, 0)
	th.FixedFace[FaceZNeg] = true
	th.FaceTemp[FaceZNeg] = 1
	th.FixedFace[FaceZPos] = true
	th.FaceTemp[FaceZPos] = 0
	for s := 0; s < 2000; s++ {
		th.Step()
	}
	prev := th.Temp(2, 2, 0)
	if prev < 0.7 {
		t.Errorf("bottom temperature %v too low", prev)
	}
	for z := 1; z < l.NZ; z++ {
		cur := th.Temp(2, 2, z)
		if cur > prev+1e-4 {
			t.Errorf("profile not monotone at z=%d: %v > %v", z, cur, prev)
		}
		prev = cur
	}
}

func TestSolidCellsHoldTemperature(t *testing.T) {
	l := New(8, 8, 8, 0.8)
	l.SetSolid(4, 4, 4, true)
	l.Init(1, vecmath.Vec3{})
	th := NewThermal(l, 0.1, 0)
	th.SetTemp(4, 4, 4, 42)
	for s := 0; s < 10; s++ {
		th.Step()
	}
	if got := th.Temp(4, 4, 4); got != 42 {
		t.Errorf("solid cell temperature changed: %v", got)
	}
}

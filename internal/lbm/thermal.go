package lbm

import "gpucluster/internal/vecmath"

// Thermal implements the hybrid thermal LBM (HTLBM) coupling of Section
// 4.1: "temperature, modeled with a standard diffusion-advection equation
// implemented as a finite difference equation[,] is coupled to the MRT
// LBM via an energy term". The temperature field is advected by the flow
// velocity and diffuses explicitly; it feeds back on the flow through a
// Boussinesq buoyancy acceleration written into the lattice's ForceField.
type Thermal struct {
	L *Lattice
	// Kappa is the thermal diffusivity (lattice units). Explicit
	// stability requires Kappa <= 1/6 in 3D.
	Kappa float32
	// T0 is the reference temperature; deviations from it generate
	// buoyancy.
	T0 float32
	// Buoyancy is the acceleration per unit temperature deviation
	// (typically g*beta in +z).
	Buoyancy vecmath.Vec3
	// FixedFace marks faces with Dirichlet temperature FaceTemp; other
	// faces are adiabatic (zero normal gradient).
	FixedFace [NumFaces]bool
	// FaceTemp is the imposed temperature for fixed faces.
	FaceTemp [NumFaces]float32

	// T is the temperature field (ghost-padded, same layout as L.Rho).
	T    []float32
	tNew []float32
}

// NewThermal attaches a temperature field at uniform temperature t0 to
// the lattice.
func NewThermal(l *Lattice, kappa, t0 float32) *Thermal {
	th := &Thermal{
		L:     l,
		Kappa: kappa,
		T0:    t0,
		T:     make([]float32, len(l.Rho)),
		tNew:  make([]float32, len(l.Rho)),
	}
	for i := range th.T {
		th.T[i] = t0
	}
	if l.ForceField == nil {
		l.ForceField = make([]vecmath.Vec3, len(l.Rho))
	}
	return th
}

// SetTemp sets the temperature of interior cell (x, y, z).
func (th *Thermal) SetTemp(x, y, z int, t float32) { th.T[th.L.Idx(x, y, z)] = t }

// Temp returns the temperature of cell (x, y, z).
func (th *Thermal) Temp(x, y, z int) float32 { return th.T[th.L.Idx(x, y, z)] }

// fillTempGhosts applies the temperature boundary conditions.
func (th *Thermal) fillTempGhosts() {
	l := th.L
	set := func(face, gi, si int) {
		if th.FixedFace[face] {
			th.T[gi] = th.FaceTemp[face]
		} else {
			th.T[gi] = th.T[si] // adiabatic: copy interior neighbor
		}
	}
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			set(FaceXNeg, l.Idx(-1, y, z), l.Idx(0, y, z))
			set(FaceXPos, l.Idx(l.NX, y, z), l.Idx(l.NX-1, y, z))
		}
	}
	for z := 0; z < l.NZ; z++ {
		for x := -1; x <= l.NX; x++ {
			set(FaceYNeg, l.Idx(x, -1, z), l.Idx(x, 0, z))
			set(FaceYPos, l.Idx(x, l.NY, z), l.Idx(x, l.NY-1, z))
		}
	}
	for y := -1; y <= l.NY; y++ {
		for x := -1; x <= l.NX; x++ {
			set(FaceZNeg, l.Idx(x, y, -1), l.Idx(x, y, 0))
			set(FaceZPos, l.Idx(x, y, l.NZ), l.Idx(x, y, l.NZ-1))
		}
	}
}

// Step advances the temperature field one time step (explicit finite
// difference: first-order upwind advection by the flow velocity, central
// diffusion) and refreshes the buoyancy force field. Call before L.Step()
// each time step.
func (th *Thermal) Step() {
	th.fillTempGhosts()
	l := th.L
	k := th.Kappa
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				c := l.Idx(x, y, z)
				if l.Solid[c] {
					th.tNew[c] = th.T[c]
					continue
				}
				t := th.T[c]
				txm := th.T[l.Idx(x-1, y, z)]
				txp := th.T[l.Idx(x+1, y, z)]
				tym := th.T[l.Idx(x, y-1, z)]
				typ := th.T[l.Idx(x, y+1, z)]
				tzm := th.T[l.Idx(x, y, z-1)]
				tzp := th.T[l.Idx(x, y, z+1)]
				lap := txm + txp + tym + typ + tzm + tzp - 6*t

				u := l.Velocity(x, y, z)
				var adv float32
				if u[0] > 0 {
					adv += u[0] * (t - txm)
				} else {
					adv += u[0] * (txp - t)
				}
				if u[1] > 0 {
					adv += u[1] * (t - tym)
				} else {
					adv += u[1] * (typ - t)
				}
				if u[2] > 0 {
					adv += u[2] * (t - tzm)
				} else {
					adv += u[2] * (tzp - t)
				}
				th.tNew[c] = t + k*lap - adv

				// Energy coupling: Boussinesq buoyancy from the local
				// temperature deviation.
				l.ForceField[c] = th.Buoyancy.Scale(t - th.T0)
			}
		}
	}
	th.T, th.tNew = th.tNew, th.T
}

// MeanTemp returns the average interior fluid temperature.
func (th *Thermal) MeanTemp() float64 {
	l := th.L
	var sum float64
	var n int
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			for x := 0; x < l.NX; x++ {
				c := l.Idx(x, y, z)
				if l.Solid[c] {
					continue
				}
				sum += float64(th.T[c])
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Package lbm implements the D3Q19 lattice Boltzmann method of Section 4
// of the paper: BGK and multiple-relaxation-time (MRT) collision
// operators, half-way bounce-back solid boundaries (including moving
// walls), equilibrium velocity inlets, zero-gradient outflow, periodic
// boundaries, body forces, and the hybrid thermal coupling of the HTLBM.
// This package is the CPU reference implementation; package lbmgpu maps
// the identical update rule onto the simulated GPU, and package cluster
// decomposes it across nodes.
package lbm

// Q is the number of discrete velocities of the D3Q19 lattice: the rest
// velocity, 6 nearest axial links and 12 second-nearest diagonal links
// (Figure 4 of the paper).
const Q = 19

// C lists the discrete velocity vectors c_i.
var C = [Q][3]int{
	{0, 0, 0},
	{1, 0, 0}, {-1, 0, 0},
	{0, 1, 0}, {0, -1, 0},
	{0, 0, 1}, {0, 0, -1},
	{1, 1, 0}, {-1, -1, 0},
	{1, -1, 0}, {-1, 1, 0},
	{1, 0, 1}, {-1, 0, -1},
	{1, 0, -1}, {-1, 0, 1},
	{0, 1, 1}, {0, -1, -1},
	{0, 1, -1}, {0, -1, 1},
}

// W lists the lattice weights w_i.
var W = [Q]float32{
	1.0 / 3.0,
	1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0, 1.0 / 18.0,
	1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
	1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0, 1.0 / 36.0,
}

// Opp maps each direction to its opposite: C[Opp[i]] == -C[i].
var Opp = [Q]int{0, 2, 1, 4, 3, 6, 5, 8, 7, 10, 9, 12, 11, 14, 13, 16, 15, 18, 17}

// CsSq is the lattice speed of sound squared, c_s^2 = 1/3.
const CsSq = 1.0 / 3.0

// Viscosity returns the kinematic viscosity implied by relaxation time
// tau: nu = (tau - 1/2) * c_s^2.
func Viscosity(tau float32) float32 { return (tau - 0.5) * CsSq }

// TauForViscosity returns the relaxation time that yields viscosity nu.
func TauForViscosity(nu float32) float32 { return nu/CsSq + 0.5 }

// FeqI returns the i-th equilibrium distribution for density rho and
// velocity u: w_i rho (1 + 3 c.u + 4.5 (c.u)^2 - 1.5 u.u).
func FeqI(i int, rho, ux, uy, uz float32) float32 {
	cu := float32(C[i][0])*ux + float32(C[i][1])*uy + float32(C[i][2])*uz
	usq := ux*ux + uy*uy + uz*uz
	return W[i] * rho * (1 + 3*cu + 4.5*cu*cu - 1.5*usq)
}

// Feq fills out[0:Q] with the full equilibrium distribution.
func Feq(out *[Q]float32, rho, ux, uy, uz float32) {
	usq := ux*ux + uy*uy + uz*uz
	base := 1 - 1.5*usq
	for i := 0; i < Q; i++ {
		cu := float32(C[i][0])*ux + float32(C[i][1])*uy + float32(C[i][2])*uz
		out[i] = W[i] * rho * (base + 3*cu + 4.5*cu*cu)
	}
}

// Moments returns density and momentum-derived velocity for one cell's
// distributions.
func Moments(f *[Q]float32) (rho, ux, uy, uz float32) {
	for i := 0; i < Q; i++ {
		v := f[i]
		rho += v
		ux += v * float32(C[i][0])
		uy += v * float32(C[i][1])
		uz += v * float32(C[i][2])
	}
	if rho != 0 {
		inv := 1 / rho
		ux *= inv
		uy *= inv
		uz *= inv
	}
	return
}

package lbm

// This file implements the two-phase update of the lattice Boltzmann
// method as described in Section 4.1 of the paper: synchronous streaming
// along the lattice links followed by a local collision (BGK or MRT),
// with boundary conditions applied through the ghost shell.
//
// The canonical step order is ghost-fill, stream, collide, with the
// state held *between* steps being the post-collision distributions
// (Post). This ordering is what makes the cluster decomposition and the
// GPU mapping exact: the data exchanged across sub-domain borders, and
// the data held in GPU textures, are always post-collision values — the
// quantities the paper's border streaming (Section 4.3) ships between
// nodes.

// Step advances the lattice by one time step: fill ghosts from the face
// boundary conditions, stream, collide.
func (l *Lattice) Step() {
	l.FillGhosts()
	l.Stream()
	l.Collide()
	l.step++
}

// Collide computes post-collision distributions for every interior fluid
// cell, caching per-cell density. Solid interior cells keep their current
// distributions (they are never read except through bounce-back, which
// uses the fluid cell's own post-collision values).
func (l *Lattice) Collide() {
	omega := 1 / l.Tau
	var f, post, feq [Q]float32
	hasForce := l.Force != [3]float32{} || l.ForceField != nil
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			base := l.Idx(0, y, z)
			for x := 0; x < l.NX; x++ {
				c := base + x
				if l.Solid[c] {
					continue
				}
				var rho, ux, uy, uz float32
				for i := 0; i < Q; i++ {
					v := l.F[i][c]
					f[i] = v
					rho += v
					ux += v * float32(C[i][0])
					uy += v * float32(C[i][1])
					uz += v * float32(C[i][2])
				}
				inv := float32(1) / rho
				ux *= inv
				uy *= inv
				uz *= inv
				l.Rho[c] = rho

				if l.Collision != nil {
					l.Collision.Collide(&f, &post, rho, ux, uy, uz)
				} else {
					Feq(&feq, rho, ux, uy, uz)
					for i := 0; i < Q; i++ {
						post[i] = f[i] - omega*(f[i]-feq[i])
					}
				}
				if hasForce {
					a := l.Force
					if l.ForceField != nil {
						a = a.Add(l.ForceField[c])
					}
					if a != [3]float32{} {
						for i := 0; i < Q; i++ {
							ca := float32(C[i][0])*a[0] + float32(C[i][1])*a[1] + float32(C[i][2])*a[2]
							post[i] += 3 * W[i] * rho * ca
						}
					}
				}
				for i := 0; i < Q; i++ {
					l.Post[i][c] = post[i]
				}
			}
		}
	}
}

// FillGhosts populates the ghost shell's post-collision values from the
// face boundary conditions, dimension by dimension (x, then y including
// the x ghosts, then z including both) so that edge and corner ghosts are
// consistent — the same ordering the cluster layer uses for its border
// exchange, which realizes the paper's indirect routing of diagonal
// (second-nearest-neighbor) data through axial transfers.
func (l *Lattice) FillGhosts() {
	l.FillGhostDim(0)
	l.FillGhostDim(1)
	l.FillGhostDim(2)
}

// FillGhostDim fills the two ghost planes of one dimension (0=x, 1=y,
// 2=z) from their face boundary conditions. Ghost-type faces are left for
// the cluster exchange, which must be interleaved in the same dimension
// order: x planes span the interior only, y planes include the x ghosts,
// z planes include both, so diagonal data propagate through edges in two
// axial hops exactly as in the paper's indirect schedule.
func (l *Lattice) FillGhostDim(dim int) {
	l.fillFace(2*dim, dim)
	l.fillFace(2*dim+1, dim)
}

// fillFace fills one ghost plane. dim is 0, 1, 2 for x, y, z; the sweep
// covers ghost coordinates of lower dimensions to populate edges.
func (l *Lattice) fillFace(face int, dim int) {
	spec := l.Faces[face]
	switch spec.Type {
	case Ghost, Wall, MovingWall:
		// Ghost faces are filled by the cluster exchange; wall faces
		// are realized as solid ghosts during streaming.
		return
	}
	neg := face%2 == 0
	// Ghost coordinate and its periodic image / interior neighbor.
	var gcoord, wrapcoord, edgecoord int
	switch dim {
	case 0:
		gcoord, wrapcoord, edgecoord = -1, l.NX-1, 0
		if !neg {
			gcoord, wrapcoord, edgecoord = l.NX, 0, l.NX-1
		}
	case 1:
		gcoord, wrapcoord, edgecoord = -1, l.NY-1, 0
		if !neg {
			gcoord, wrapcoord, edgecoord = l.NY, 0, l.NY-1
		}
	case 2:
		gcoord, wrapcoord, edgecoord = -1, l.NZ-1, 0
		if !neg {
			gcoord, wrapcoord, edgecoord = l.NZ, 0, l.NZ-1
		}
	}

	rho := spec.Rho
	if rho == 0 {
		rho = 1
	}
	var feq [Q]float32
	if spec.Type == Inlet {
		Feq(&feq, rho, spec.U[0], spec.U[1], spec.U[2])
	}

	// lo/hi sweep bounds per dimension: lower dims include ghosts.
	sweep := func(visit func(a, b int)) {
		switch dim {
		case 0: // sweep y,z interior only
			for z := 0; z < l.NZ; z++ {
				for y := 0; y < l.NY; y++ {
					visit(y, z)
				}
			}
		case 1: // sweep x incl ghosts, z interior
			for z := 0; z < l.NZ; z++ {
				for x := -1; x <= l.NX; x++ {
					visit(x, z)
				}
			}
		case 2: // sweep x,y incl ghosts
			for y := -1; y <= l.NY; y++ {
				for x := -1; x <= l.NX; x++ {
					visit(x, y)
				}
			}
		}
	}

	idxFor := func(a, b int) (ghost, src int) {
		switch dim {
		case 0:
			ghost = l.Idx(gcoord, a, b)
			if spec.Type == Periodic {
				src = l.Idx(wrapcoord, a, b)
			} else {
				src = l.Idx(edgecoord, a, b)
			}
		case 1:
			ghost = l.Idx(a, gcoord, b)
			if spec.Type == Periodic {
				src = l.Idx(a, wrapcoord, b)
			} else {
				src = l.Idx(a, edgecoord, b)
			}
		default:
			ghost = l.Idx(a, b, gcoord)
			if spec.Type == Periodic {
				src = l.Idx(a, b, wrapcoord)
			} else {
				src = l.Idx(a, b, edgecoord)
			}
		}
		return
	}

	switch spec.Type {
	case Periodic:
		sweep(func(a, b int) {
			ghost, src := idxFor(a, b)
			for i := 0; i < Q; i++ {
				l.Post[i][ghost] = l.Post[i][src]
			}
			// Periodic geometry: the ghost mirrors the far side's
			// solidity so obstacles wrap correctly.
			l.Solid[ghost] = l.Solid[src]
		})
	case Inlet:
		sweep(func(a, b int) {
			ghost, _ := idxFor(a, b)
			for i := 0; i < Q; i++ {
				l.Post[i][ghost] = feq[i]
			}
		})
	case Outflow:
		// Pressure outlet: copy the adjacent cell's distributions but
		// re-anchor their density at the outlet value, so mass cannot
		// accumulate against the outflow face. The source in-plane
		// coordinates are clamped to the interior: the y/z sweeps cover
		// ghost columns whose cells hold only the distributions entering
		// the domain (exchange ghosts), which do not define moments.
		clampA := func(a int) int { return a }
		clampB := func(b int) int { return b }
		switch dim {
		case 1:
			clampA = func(a int) int { return clampInt(a, 0, l.NX-1) }
		case 2:
			clampA = func(a int) int { return clampInt(a, 0, l.NX-1) }
			clampB = func(b int) int { return clampInt(b, 0, l.NY-1) }
		}
		sweep(func(a, b int) {
			ghost, _ := idxFor(a, b)
			_, src := idxFor(clampA(a), clampB(b))
			var fp [Q]float32
			for i := 0; i < Q; i++ {
				fp[i] = l.Post[i][src]
			}
			rhoSrc, ux, uy, uz := Moments(&fp)
			var feqSrc, feqOut [Q]float32
			Feq(&feqSrc, rhoSrc, ux, uy, uz)
			Feq(&feqOut, rho, ux, uy, uz)
			for i := 0; i < Q; i++ {
				l.Post[i][ghost] = fp[i] - feqSrc[i] + feqOut[i]
			}
		})
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Stream propagates post-collision distributions along the lattice links
// into the current distributions, applying half-way bounce-back at solid
// cells (with the moving-wall momentum correction where a wall velocity
// is present).
func (l *Lattice) Stream() {
	for z := 0; z < l.NZ; z++ {
		for y := 0; y < l.NY; y++ {
			base := l.Idx(0, y, z)
			for x := 0; x < l.NX; x++ {
				c := base + x
				if l.Solid[c] {
					continue
				}
				var lq *linkQ
				if l.LinkQ != nil {
					lq = l.LinkQ[c]
				}
				for i := 0; i < Q; i++ {
					src := l.Idx(x-C[i][0], y-C[i][1], z-C[i][2])
					if l.Solid[src] {
						o := Opp[i]
						// Interpolated bounce-back when the link's wall
						// intersection is resolved (curved boundaries);
						// half-way bounce-back otherwise.
						if lq != nil && lq[o] != 0 {
							l.F[i][c] = l.curvedBounce(i, o, c, x, y, z, lq[o])
							continue
						}
						v := l.Post[o][c]
						if l.WallU != nil {
							uw := l.WallU[src]
							if uw != [3]float32{} {
								cu := float32(C[i][0])*uw[0] + float32(C[i][1])*uw[1] + float32(C[i][2])*uw[2]
								v += 6 * W[i] * l.Rho[c] * cu
							}
						}
						l.F[i][c] = v
					} else {
						l.F[i][c] = l.Post[i][src]
					}
				}
			}
		}
	}
}

package lbm

// Border pack/unpack for the cluster decomposition of Section 4.3. A node
// sends, for each of its faces, the post-collision distributions that
// stream out of its sub-domain: the 5 directions with a positive velocity
// component toward the neighbor, evaluated on the border plane. The
// y-plane includes the x ghost columns and the z-plane includes both x
// and y ghosts, so diagonal (second-nearest-neighbor) data are routed
// indirectly through axial exchanges in two hops — the paper's Figure 7
// pattern. For a cubic N^3 sub-domain the x payload is 5*N^2 floats, and
// the y/z payloads carry the extra c*N ghost-column floats the paper
// accounts as the "c/(5N)" packet-size increase.

// DirsInto returns the distribution indices with C[i][dim] == dir
// (dir is +1 or -1); these are the 5 directions crossing a face.
func DirsInto(dim, dir int) []int {
	var out []int
	for i := 0; i < Q; i++ {
		if C[i][dim] == dir {
			out = append(out, i)
		}
	}
	return out
}

// borderPlane iterates the (a, b) coordinates of the plane perpendicular
// to dim, honoring the dimension-ordered ghost inclusion: x planes span
// the interior, y planes include x ghosts, z planes include x and y
// ghosts. visit receives the two in-plane coordinates.
func (l *Lattice) borderPlane(dim int, visit func(a, b int)) {
	switch dim {
	case 0:
		for z := 0; z < l.NZ; z++ {
			for y := 0; y < l.NY; y++ {
				visit(y, z)
			}
		}
	case 1:
		for z := 0; z < l.NZ; z++ {
			for x := -1; x <= l.NX; x++ {
				visit(x, z)
			}
		}
	default:
		for y := -1; y <= l.NY; y++ {
			for x := -1; x <= l.NX; x++ {
				visit(x, y)
			}
		}
	}
}

// planeIdx maps in-plane coordinates (a, b) and the plane coordinate c to
// a cell index for the given dimension.
func (l *Lattice) planeIdx(dim, c, a, b int) int {
	switch dim {
	case 0:
		return l.Idx(c, a, b)
	case 1:
		return l.Idx(a, c, b)
	default:
		return l.Idx(a, b, c)
	}
}

// BorderLen returns the float count of one border message for dim.
func (l *Lattice) BorderLen(dim int) int {
	switch dim {
	case 0:
		return 5 * l.NY * l.NZ
	case 1:
		return 5 * (l.NX + 2) * l.NZ
	default:
		return 5 * (l.NX + 2) * (l.NY + 2)
	}
}

// PackBorder collects the post-collision distributions leaving the
// sub-domain through the dim/dir face (dir = +1 for the high face, -1 for
// the low face) into a flat slice ready for transmission.
func (l *Lattice) PackBorder(dim, dir int) []float32 {
	dists := DirsInto(dim, dir)
	plane := l.NX - 1 // high border plane coordinate
	if dir < 0 {
		plane = 0
	} else {
		switch dim {
		case 1:
			plane = l.NY - 1
		case 2:
			plane = l.NZ - 1
		}
	}
	out := make([]float32, 0, l.BorderLen(dim))
	l.borderPlane(dim, func(a, b int) {
		c := l.planeIdx(dim, plane, a, b)
		for _, i := range dists {
			out = append(out, l.Post[i][c])
		}
	})
	return out
}

// UnpackGhost writes a received border payload into the ghost plane on
// the dim/dir side (dir = -1 for the low ghost plane at coordinate -1,
// +1 for the high ghost plane at coordinate N). The payload must have
// been produced by the neighbor's PackBorder with the opposite dir, so
// the distributions stored are those streaming into this sub-domain.
func (l *Lattice) UnpackGhost(dim, dir int, data []float32) {
	// Directions entering through the low ghost plane have positive
	// velocity along dim, and vice versa.
	dists := DirsInto(dim, -dir)
	ghost := -1
	if dir > 0 {
		switch dim {
		case 0:
			ghost = l.NX
		case 1:
			ghost = l.NY
		default:
			ghost = l.NZ
		}
	}
	pos := 0
	l.borderPlane(dim, func(a, b int) {
		c := l.planeIdx(dim, ghost, a, b)
		for _, i := range dists {
			l.Post[i][c] = data[pos]
			pos++
		}
	})
	if pos != len(data) {
		panic("lbm: ghost payload length mismatch")
	}
}

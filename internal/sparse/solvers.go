package sparse

import "fmt"

// SolveStats reports an iterative solve's outcome.
type SolveStats struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// CG solves the SPD system A x = b with the conjugate gradient method
// (Krueger & Westermann's GPU solver, reference [16] of the paper),
// starting from x = 0, until ||r|| <= tol*||b|| or maxIter.
func CG(a *CSR, b []float32, tol float64, maxIter int) ([]float32, SolveStats) {
	if a.Rows != a.Cols || len(b) != a.Rows {
		panic(fmt.Sprintf("sparse: CG shape mismatch %dx%d vs %d", a.Rows, a.Cols, len(b)))
	}
	x := make([]float32, a.Rows)
	r := make([]float32, a.Rows)
	copy(r, b)
	p := make([]float32, a.Rows)
	copy(p, b)
	rr := Dot(r, r)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, SolveStats{Converged: true}
	}
	var st SolveStats
	for st.Iterations = 0; st.Iterations < maxIter; st.Iterations++ {
		ap := a.MulVec(p)
		pap := Dot(p, ap)
		if pap <= 0 {
			break // loss of positive-definiteness in float arithmetic
		}
		alpha := rr / pap
		for i := range x {
			x[i] += float32(alpha) * p[i]
			r[i] -= float32(alpha) * ap[i]
		}
		rrNew := Dot(r, r)
		st.Residual = Norm2(r) / bnorm
		if st.Residual <= tol {
			st.Converged = true
			st.Iterations++
			return x, st
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + float32(beta)*p[i]
		}
		rr = rrNew
	}
	st.Residual = Norm2(r) / bnorm
	st.Converged = st.Residual <= tol
	return x, st
}

// Jacobi iterates x_{k+1} = D^{-1}(b - (A - D) x_k) until the relative
// residual meets tol or maxIter is reached.
func Jacobi(a *CSR, b []float32, tol float64, maxIter int) ([]float32, SolveStats) {
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			panic(fmt.Sprintf("sparse: Jacobi needs nonzero diagonal (row %d)", i))
		}
	}
	x := make([]float32, a.Rows)
	xn := make([]float32, a.Rows)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, SolveStats{Converged: true}
	}
	var st SolveStats
	for st.Iterations = 0; st.Iterations < maxIter; st.Iterations++ {
		for r := 0; r < a.Rows; r++ {
			var off float32
			for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
				if a.ColIdx[k] != r {
					off += a.Val[k] * x[a.ColIdx[k]]
				}
			}
			xn[r] = (b[r] - off) / d[r]
		}
		x, xn = xn, x
		if st.Iterations%8 == 7 {
			st.Residual = residual(a, x, b) / bnorm
			if st.Residual <= tol {
				st.Converged = true
				st.Iterations++
				return x, st
			}
		}
	}
	st.Residual = residual(a, x, b) / bnorm
	st.Converged = st.Residual <= tol
	return x, st
}

// GaussSeidel iterates with immediate updates (the smoother of Bolz et
// al.'s GPU multigrid, reference [3] of the paper).
func GaussSeidel(a *CSR, b []float32, tol float64, maxIter int) ([]float32, SolveStats) {
	d := a.Diagonal()
	for i, v := range d {
		if v == 0 {
			panic(fmt.Sprintf("sparse: Gauss-Seidel needs nonzero diagonal (row %d)", i))
		}
	}
	x := make([]float32, a.Rows)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, SolveStats{Converged: true}
	}
	var st SolveStats
	for st.Iterations = 0; st.Iterations < maxIter; st.Iterations++ {
		for r := 0; r < a.Rows; r++ {
			var off float32
			for k := a.RowPtr[r]; k < a.RowPtr[r+1]; k++ {
				if a.ColIdx[k] != r {
					off += a.Val[k] * x[a.ColIdx[k]]
				}
			}
			x[r] = (b[r] - off) / d[r]
		}
		if st.Iterations%8 == 7 {
			st.Residual = residual(a, x, b) / bnorm
			if st.Residual <= tol {
				st.Converged = true
				st.Iterations++
				return x, st
			}
		}
	}
	st.Residual = residual(a, x, b) / bnorm
	st.Converged = st.Residual <= tol
	return x, st
}

func residual(a *CSR, x, b []float32) float64 {
	ax := a.MulVec(x)
	r := make([]float32, len(b))
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	return Norm2(r)
}

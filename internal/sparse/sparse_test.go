package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gpucluster/internal/gpu"
	"gpucluster/internal/mpi"
)

func TestCSRAssembly(t *testing.T) {
	m := NewCSR(3, 3, []Triplet{
		{0, 0, 2}, {0, 2, 1},
		{1, 1, 3},
		{2, 0, -1}, {2, 2, 4},
		{0, 0, 1}, // duplicate: summed
	})
	if m.NNZ() != 5 {
		t.Fatalf("nnz = %d", m.NNZ())
	}
	y := m.MulVec([]float32{1, 1, 1})
	want := []float32{4, 3, 3} // rows: 3+1, 3, -1+4
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	d := m.Diagonal()
	if d[0] != 3 || d[1] != 3 || d[2] != 4 {
		t.Errorf("diagonal = %v", d)
	}
	if m.MaxRowNNZ() != 2 {
		t.Errorf("max row nnz = %d", m.MaxRowNNZ())
	}
}

func TestCSRValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCSR(2, 2, []Triplet{{2, 0, 1}})
}

func randomVec(n int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, n)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func TestCGSolvesPoisson(t *testing.T) {
	a := Poisson2D(12)
	xTrue := randomVec(a.Rows, 1)
	b := a.MulVec(xTrue)
	x, st := CG(a, b, 1e-6, 2000)
	if !st.Converged {
		t.Fatalf("CG did not converge: %+v", st)
	}
	for i := range x {
		if math.Abs(float64(x[i]-xTrue[i])) > 1e-2 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], xTrue[i])
		}
	}
}

func TestJacobiAndGaussSeidel(t *testing.T) {
	a := Poisson2D(8)
	xTrue := randomVec(a.Rows, 2)
	b := a.MulVec(xTrue)
	xj, stj := Jacobi(a, b, 1e-5, 20000)
	if !stj.Converged {
		t.Fatalf("Jacobi did not converge: %+v", stj)
	}
	xg, stg := GaussSeidel(a, b, 1e-5, 20000)
	if !stg.Converged {
		t.Fatalf("Gauss-Seidel did not converge: %+v", stg)
	}
	// Gauss-Seidel converges faster than Jacobi on the Laplacian.
	if stg.Iterations >= stj.Iterations {
		t.Errorf("GS (%d iters) should beat Jacobi (%d)", stg.Iterations, stj.Iterations)
	}
	for i := range xTrue {
		if math.Abs(float64(xj[i]-xTrue[i])) > 5e-2 {
			t.Fatalf("Jacobi x[%d] = %v, want %v", i, xj[i], xTrue[i])
		}
		if math.Abs(float64(xg[i]-xTrue[i])) > 5e-2 {
			t.Fatalf("GS x[%d] = %v, want %v", i, xg[i], xTrue[i])
		}
	}
	// CG should beat both by far.
	_, stc := CG(a, b, 1e-5, 2000)
	if stc.Iterations >= stg.Iterations {
		t.Errorf("CG (%d iters) should beat GS (%d)", stc.Iterations, stg.Iterations)
	}
}

func TestSolversHandleZeroRHS(t *testing.T) {
	a := Poisson2D(4)
	b := make([]float32, a.Rows)
	for _, solve := range []func(*CSR, []float32, float64, int) ([]float32, SolveStats){CG, Jacobi, GaussSeidel} {
		x, st := solve(a, b, 1e-6, 100)
		if !st.Converged {
			t.Fatal("zero RHS must converge immediately")
		}
		for _, v := range x {
			if v != 0 {
				t.Fatal("zero RHS must give zero solution")
			}
		}
	}
}

func TestRowPartition(t *testing.T) {
	off, sz := RowPartition(10, 3)
	if sz[0] != 4 || sz[1] != 3 || sz[2] != 3 {
		t.Errorf("sizes = %v", sz)
	}
	if off[0] != 0 || off[1] != 4 || off[2] != 7 {
		t.Errorf("offsets = %v", off)
	}
}

func TestDistributedMatVecMatchesSerial(t *testing.T) {
	a := Poisson2D(10)
	x := randomVec(a.Rows, 3)
	want := a.MulVec(x)
	for _, ranks := range []int{1, 2, 3, 4} {
		got := make([]float32, a.Rows)
		off, sz := RowPartition(a.Rows, ranks)
		world := mpi.NewWorld(ranks)
		world.Run(func(c *mpi.Comm) {
			r := c.Rank()
			d := NewDistMatrix(a, r, ranks)
			d.Setup(c)
			local := d.MulVec(c, x[off[r]:off[r]+sz[r]], 1)
			copy(got[off[r]:], local)
		})
		// Proxy columns are renumbered to the end of each local row, so
		// the summation order differs from the serial matvec; agreement
		// is to rounding, not bitwise.
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-5*(1+math.Abs(float64(want[i]))) {
				t.Fatalf("%d ranks: y[%d] = %v, want %v", ranks, i, got[i], want[i])
			}
		}
	}
}

func TestDistributedCGMatchesSerial(t *testing.T) {
	a := Poisson2D(8)
	xTrue := randomVec(a.Rows, 4)
	b := a.MulVec(xTrue)
	for _, ranks := range []int{2, 4} {
		got := make([]float32, a.Rows)
		off, sz := RowPartition(a.Rows, ranks)
		world := mpi.NewWorld(ranks)
		world.Run(func(c *mpi.Comm) {
			r := c.Rank()
			d := NewDistMatrix(a, r, ranks)
			d.Setup(c)
			local, st := DistCG(c, d, b[off[r]:off[r]+sz[r]], 1e-6, 2000)
			if !st.Converged {
				t.Errorf("rank %d: DistCG did not converge: %+v", r, st)
			}
			copy(got[off[r]:], local)
		})
		for i := range xTrue {
			if math.Abs(float64(got[i]-xTrue[i])) > 1e-2 {
				t.Fatalf("%d ranks: x[%d] = %v, want %v", ranks, i, got[i], xTrue[i])
			}
		}
	}
}

func TestGPUMatVecMatchesCPU(t *testing.T) {
	dev := gpu.New(gpu.Config{TextureMemory: 64 << 20, Workers: 4})
	a := Poisson2D(9)
	g, err := NewGPUMatVec(dev, a)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Free()
	x := randomVec(a.Cols, 5)
	want := a.MulVec(x)
	got, err := g.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("y[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Two fetches per nonzero: the indirection then the value.
	if dev.Stats.Passes == 0 {
		t.Error("GPU matvec ran no passes")
	}
}

func TestGPUMatVecRandomMatrices(t *testing.T) {
	dev := gpu.New(gpu.Config{TextureMemory: 64 << 20, Workers: 2})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		var tr []Triplet
		for r := 0; r < n; r++ {
			tr = append(tr, Triplet{r, r, 1 + rng.Float32()})
			for k := 0; k < rng.Intn(4); k++ {
				tr = append(tr, Triplet{r, rng.Intn(n), rng.Float32() - 0.5})
			}
		}
		a := NewCSR(n, n, tr)
		g, err := NewGPUMatVec(dev, a)
		if err != nil {
			return false
		}
		defer g.Free()
		x := randomVec(n, seed+77)
		want := a.MulVec(x)
		got, err := g.MulVec(x)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(float64(got[i]-want[i])) > 1e-3*(1+math.Abs(float64(want[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDotAndNorm(t *testing.T) {
	if d := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); d != 32 {
		t.Errorf("dot = %v", d)
	}
	if n := Norm2([]float32{3, 4}); math.Abs(n-5) > 1e-12 {
		t.Errorf("norm = %v", n)
	}
}

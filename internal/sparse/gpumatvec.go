package sparse

import (
	"fmt"
	"math"

	"gpucluster/internal/gpu"
	"gpucluster/internal/vecmath"
)

// GPUMatVec evaluates y = A x on the simulated GPU using the indirection
// texture technique Section 6 describes for unstructured data: "using
// indirection textures, the texture coordinates of neighbors of each
// point can also be stored. Accessing neighbor variables will require
// two texture fetch operations" — the first fetch reads the neighbor's
// texture coordinates (here: the packed column index), the second the
// neighbor's value.
//
// Layout: the vector x lives in a W x H texture (row-major, one element
// per texel's R channel). The matrix is stored ELL-style as K pairs of
// textures (one per nonzero slot per row): a value texture and an
// indirection texture holding the column's texel coordinates; rows with
// fewer than K entries pad with zero values.
type GPUMatVec struct {
	a      *CSR
	dev    *gpu.Device
	w, h   int
	k      int
	xTex   *gpu.Texture2D
	valTex []*gpu.Texture2D
	idxTex []*gpu.Texture2D
	pb     *gpu.PBuffer
}

// NewGPUMatVec uploads the matrix structure to the device.
func NewGPUMatVec(dev *gpu.Device, a *CSR) (*GPUMatVec, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("sparse: GPU matvec needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	w := int(math.Ceil(math.Sqrt(float64(a.Rows))))
	h := (a.Rows + w - 1) / w
	g := &GPUMatVec{a: a, dev: dev, w: w, h: h, k: a.MaxRowNNZ()}

	var err error
	g.xTex, err = dev.NewTexture2D("x", w, h)
	if err != nil {
		return nil, err
	}
	g.pb, err = dev.NewPBuffer("y", w, h)
	if err != nil {
		g.Free()
		return nil, err
	}
	for s := 0; s < g.k; s++ {
		val := make([]float32, w*h*4)
		idx := make([]float32, w*h*4)
		for r := 0; r < a.Rows; r++ {
			base := a.RowPtr[r] + s
			if base < a.RowPtr[r+1] {
				val[4*r] = a.Val[base]
				col := a.ColIdx[base]
				idx[4*r] = float32(col % w)
				idx[4*r+1] = float32(col / w)
			}
		}
		vt, err := dev.NewTexture2D(fmt.Sprintf("val%d", s), w, h)
		if err != nil {
			g.Free()
			return nil, err
		}
		it, err := dev.NewTexture2D(fmt.Sprintf("idx%d", s), w, h)
		if err != nil {
			vt.Free()
			g.Free()
			return nil, err
		}
		if err := dev.Upload(vt, val); err != nil {
			g.Free()
			return nil, err
		}
		if err := dev.Upload(it, idx); err != nil {
			g.Free()
			return nil, err
		}
		g.valTex = append(g.valTex, vt)
		g.idxTex = append(g.idxTex, it)
	}
	return g, nil
}

// Free releases device memory.
func (g *GPUMatVec) Free() {
	if g.xTex != nil {
		g.xTex.Free()
	}
	if g.pb != nil {
		g.pb.Free()
	}
	for _, t := range g.valTex {
		t.Free()
	}
	for _, t := range g.idxTex {
		t.Free()
	}
}

// MulVec computes y = A x through render passes.
func (g *GPUMatVec) MulVec(x []float32) ([]float32, error) {
	if len(x) != g.a.Cols {
		return nil, fmt.Errorf("sparse: GPU MulVec dim %d != %d", len(x), g.a.Cols)
	}
	xData := make([]float32, g.w*g.h*4)
	for i, v := range x {
		xData[4*i] = v
	}
	if err := g.dev.Upload(g.xTex, xData); err != nil {
		return nil, err
	}
	k := g.k
	valTex, idxTex, xTex := g.valTex, g.idxTex, g.xTex
	err := g.dev.Run(gpu.Pass{
		Name:   "spmv",
		Target: g.pb,
		Program: func(_ []gpu.Sampler, px, py int) vecmath.Vec4 {
			var acc float32
			for s := 0; s < k; s++ {
				v := valTex[s].Fetch(px, py)[0]
				if v == 0 {
					continue
				}
				// First fetch: the indirection texture gives the
				// neighbor's texture coordinates; second fetch: the
				// neighbor's value.
				coord := idxTex[s].Fetch(px, py)
				acc += v * xTex.Fetch(int(coord[0]), int(coord[1]))[0]
			}
			return vecmath.Vec4{acc, 0, 0, 0}
		},
	})
	if err != nil {
		return nil, err
	}
	out := make([]float32, g.a.Rows)
	for r := range out {
		out[r] = g.pb.At(r%g.w, r/g.w)[0]
	}
	return out, nil
}

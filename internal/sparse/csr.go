// Package sparse implements the sparse linear algebra layer Section 6
// calls for: "implicit finite differences and FEM require the solution
// of a large sparse linear system Ax = y". It provides CSR matrices,
// the iterative solvers ported to GPUs by Krueger & Westermann and Bolz
// et al. (conjugate gradient, Jacobi, Gauss-Seidel), a GPU matvec using
// indirection textures, and the cluster decomposition of matrix and
// vector with proxy points exactly as Figures 14 and 15 describe.
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// Triplet is one (row, col, value) matrix entry.
type Triplet struct {
	Row, Col int
	Val      float32
}

// CSR is a compressed-sparse-row matrix.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float32
}

// NewCSR assembles a CSR matrix from triplets, summing duplicates.
func NewCSR(rows, cols int, entries []Triplet) *CSR {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: invalid shape %dx%d", rows, cols))
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			panic(fmt.Sprintf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, rows, cols))
		}
	}
	sorted := make([]Triplet, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		var sum float32
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			sum += sorted[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, sorted[i].Col)
		m.Val = append(m.Val, sum)
		m.RowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.RowPtr[r+1] += m.RowPtr[r]
	}
	return m
}

// NNZ returns the stored entry count.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A x.
func (m *CSR) MulVec(x []float32) []float32 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVec dim %d != %d", len(x), m.Cols))
	}
	y := make([]float32, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var s float32
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[r] = s
	}
	return y
}

// Diagonal extracts the main diagonal (zeros where absent).
func (m *CSR) Diagonal() []float32 {
	d := make([]float32, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for k := m.RowPtr[r]; k < m.RowPtr[r+1]; k++ {
			if m.ColIdx[k] == r {
				d[r] = m.Val[k]
			}
		}
	}
	return d
}

// MaxRowNNZ returns the widest row (the K needed for the GPU layout).
func (m *CSR) MaxRowNNZ() int {
	w := 0
	for r := 0; r < m.Rows; r++ {
		if n := m.RowPtr[r+1] - m.RowPtr[r]; n > w {
			w = n
		}
	}
	return w
}

// Poisson2D builds the standard 5-point Laplacian (Dirichlet) on an
// n x n grid: SPD, the canonical iterative-solver benchmark.
func Poisson2D(n int) *CSR {
	var tr []Triplet
	id := func(i, j int) int { return j*n + i }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			r := id(i, j)
			tr = append(tr, Triplet{r, r, 4})
			if i > 0 {
				tr = append(tr, Triplet{r, id(i-1, j), -1})
			}
			if i < n-1 {
				tr = append(tr, Triplet{r, id(i+1, j), -1})
			}
			if j > 0 {
				tr = append(tr, Triplet{r, id(i, j-1), -1})
			}
			if j < n-1 {
				tr = append(tr, Triplet{r, id(i, j+1), -1})
			}
		}
	}
	return NewCSR(n*n, n*n, tr)
}

// Dot computes the double-precision dot product of float32 vectors.
func Dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float32) float64 {
	return math.Sqrt(Dot(a, a))
}

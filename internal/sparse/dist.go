package sparse

import (
	"fmt"
	"math"

	"gpucluster/internal/mpi"
)

// Distributed matrix-vector multiplication per Figure 15 of the paper:
// rows are partitioned contiguously over ranks; each rank's local matrix
// holds its rows, and its local vector holds the elements of its own
// (local) points plus proxy elements for the neighbor points referenced
// by off-range columns. Each multiply first refreshes the proxy elements
// over the network, then runs a purely local matvec.

// RowPartition splits n rows contiguously over p ranks (even split,
// first ranks take the remainder).
func RowPartition(n, p int) (offsets, sizes []int) {
	offsets = make([]int, p)
	sizes = make([]int, p)
	base, rem := n/p, n%p
	off := 0
	for i := 0; i < p; i++ {
		sz := base
		if i < rem {
			sz++
		}
		offsets[i] = off
		sizes[i] = sz
		off += sz
	}
	return
}

// DistMatrix is one rank's share of a distributed CSR matrix.
type DistMatrix struct {
	Rank, Ranks int
	// RowOffset is the global index of local row 0; LocalRows counts
	// this rank's rows.
	RowOffset, LocalRows int
	// local is the local matrix: columns renumbered into the local
	// vector layout [local points | proxy points] (Figure 15).
	local *CSR
	// proxyOwner/proxyIndex describe each proxy slot: the owning rank
	// and the index within that rank's local range.
	proxyOwner []int
	proxyIndex []int
	// needFrom[r] lists the local indices (at the owner) of elements
	// this rank needs from rank r; sendTo is the mirror image, built in
	// Setup: the local element indices rank r wants from us.
	needFrom map[int][]int
	sendTo   map[int][]int
	offsets  []int
	sizes    []int
}

// NewDistMatrix extracts rank's share of the global matrix a, renumbering
// off-range columns into proxy slots.
func NewDistMatrix(a *CSR, rank, ranks int) *DistMatrix {
	if a.Rows != a.Cols {
		panic("sparse: distributed matvec needs a square matrix")
	}
	offsets, sizes := RowPartition(a.Rows, ranks)
	d := &DistMatrix{
		Rank: rank, Ranks: ranks,
		RowOffset: offsets[rank], LocalRows: sizes[rank],
		needFrom: map[int][]int{}, sendTo: map[int][]int{},
		offsets: offsets, sizes: sizes,
	}
	ownerOf := func(col int) int {
		for r := 0; r < ranks; r++ {
			if col < offsets[r]+sizes[r] {
				return r
			}
		}
		panic("unreachable")
	}
	proxySlot := map[int]int{} // global col -> proxy index
	var tr []Triplet
	for lr := 0; lr < d.LocalRows; lr++ {
		gr := d.RowOffset + lr
		for k := a.RowPtr[gr]; k < a.RowPtr[gr+1]; k++ {
			col := a.ColIdx[k]
			var lc int
			if col >= d.RowOffset && col < d.RowOffset+d.LocalRows {
				lc = col - d.RowOffset
			} else {
				slot, ok := proxySlot[col]
				if !ok {
					slot = len(d.proxyOwner)
					proxySlot[col] = slot
					owner := ownerOf(col)
					d.proxyOwner = append(d.proxyOwner, owner)
					d.proxyIndex = append(d.proxyIndex, col-offsets[owner])
					d.needFrom[owner] = append(d.needFrom[owner], col-offsets[owner])
				}
				lc = d.LocalRows + slot
			}
			tr = append(tr, Triplet{lr, lc, a.Val[k]})
		}
	}
	cols := d.LocalRows + len(d.proxyOwner)
	if cols == 0 {
		cols = 1
	}
	d.local = NewCSR(maxInt(d.LocalRows, 1), cols, tr)
	return d
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Setup exchanges the proxy requirements so every rank knows which of
// its elements the others need. Must run once, collectively, before
// MulVec.
func (d *DistMatrix) Setup(c *mpi.Comm) {
	const tag = 900
	for r := 0; r < d.Ranks; r++ {
		if r == d.Rank {
			continue
		}
		need := d.needFrom[r]
		req := make([]float32, len(need))
		for i, idx := range need {
			req[i] = float32(idx)
		}
		c.Send(r, tag, req)
	}
	for r := 0; r < d.Ranks; r++ {
		if r == d.Rank {
			continue
		}
		req := c.Recv(r, tag)
		if len(req) == 0 {
			continue
		}
		idxs := make([]int, len(req))
		for i, v := range req {
			idxs[i] = int(v)
		}
		d.sendTo[r] = idxs
	}
}

// MulVec multiplies the distributed matrix by the distributed vector:
// xLocal holds this rank's LocalRows elements. The proxy refresh is one
// message per neighboring rank per multiply, the communication pattern
// Figure 15 prescribes. Collective: every rank must call it together.
func (d *DistMatrix) MulVec(c *mpi.Comm, xLocal []float32, tag int) []float32 {
	if len(xLocal) != d.LocalRows {
		panic(fmt.Sprintf("sparse: local vector %d != %d rows", len(xLocal), d.LocalRows))
	}
	// Serve the neighbors' proxy requests.
	for r, idxs := range d.sendTo {
		vals := make([]float32, len(idxs))
		for i, idx := range idxs {
			vals[i] = xLocal[idx]
		}
		c.Send(r, tag, vals)
	}
	// Assemble the local vector [local | proxies].
	full := make([]float32, d.local.Cols)
	copy(full, xLocal)
	recvBuf := map[int][]float32{}
	for r := range d.needFrom {
		if len(d.needFrom[r]) > 0 {
			recvBuf[r] = c.Recv(r, tag)
		}
	}
	cursor := map[int]int{}
	for slot, owner := range d.proxyOwner {
		buf := recvBuf[owner]
		full[d.LocalRows+slot] = buf[cursor[owner]]
		cursor[owner]++
	}
	y := d.local.MulVec(full)
	return y[:d.LocalRows]
}

// DistCG solves A x = b with conjugate gradients where A and the vectors
// are distributed over the communicator's ranks; dot products reduce over
// mpi.Allreduce. It returns this rank's slice of the solution.
func DistCG(c *mpi.Comm, d *DistMatrix, bLocal []float32, tol float64, maxIter int) ([]float32, SolveStats) {
	x := make([]float32, d.LocalRows)
	r := make([]float32, d.LocalRows)
	copy(r, bLocal)
	p := make([]float32, d.LocalRows)
	copy(p, bLocal)

	gdot := func(a, b []float32) float64 {
		local := Dot(a, b)
		out := c.Allreduce([]float32{float32(local)}, mpi.Sum)
		return float64(out[0])
	}
	rr := gdot(r, r)
	bnorm := gdot(bLocal, bLocal)
	var st SolveStats
	if bnorm == 0 {
		st.Converged = true
		return x, st
	}
	tag := 1000
	for st.Iterations = 0; st.Iterations < maxIter; st.Iterations++ {
		ap := d.MulVec(c, p, tag)
		tag++
		pap := gdot(p, ap)
		if pap <= 0 {
			break
		}
		alpha := rr / pap
		for i := range x {
			x[i] += float32(alpha) * p[i]
			r[i] -= float32(alpha) * ap[i]
		}
		rrNew := gdot(r, r)
		st.Residual = sqrtSafe(rrNew / bnorm)
		if st.Residual <= tol {
			st.Converged = true
			st.Iterations++
			return x, st
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + float32(beta)*p[i]
		}
		rr = rrNew
	}
	st.Residual = sqrtSafe(rr / bnorm)
	st.Converged = st.Residual <= tol
	return x, st
}

func sqrtSafe(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Sqrt(x)
}

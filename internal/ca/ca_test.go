package ca

import (
	"math/rand"
	"testing"

	"gpucluster/internal/gpu"
)

func blinker(g *Grid, x, y int) {
	g.Set(x-1, y, 1)
	g.Set(x, y, 1)
	g.Set(x+1, y, 1)
}

func glider(g *Grid, x, y int) {
	g.Set(x+1, y, 1)
	g.Set(x+2, y+1, 1)
	g.Set(x, y+2, 1)
	g.Set(x+1, y+2, 1)
	g.Set(x+2, y+2, 1)
}

func boardsEqual(a, b *Grid) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for i := range a.cells {
		if a.cells[i] != b.cells[i] {
			return false
		}
	}
	return true
}

func TestBlinkerOscillates(t *testing.T) {
	g := NewGrid(8, 8)
	blinker(g, 4, 4)
	g.Step()
	// Horizontal blinker becomes vertical.
	if !g.Alive(4, 3) || !g.Alive(4, 4) || !g.Alive(4, 5) {
		t.Fatal("blinker did not rotate")
	}
	if g.Alive(3, 4) || g.Alive(5, 4) {
		t.Fatal("old arms survived")
	}
	g.Step()
	if !g.Alive(3, 4) || !g.Alive(4, 4) || !g.Alive(5, 4) {
		t.Fatal("blinker did not return after period 2")
	}
	if g.Population() != 3 {
		t.Fatalf("population = %d", g.Population())
	}
}

func TestGliderTranslates(t *testing.T) {
	g := NewGrid(16, 16)
	glider(g, 2, 2)
	for i := 0; i < 4; i++ {
		g.Step()
	}
	// After 4 generations a glider moves (+1, +1).
	want := NewGrid(16, 16)
	glider(want, 3, 3)
	if !boardsEqual(g, want) {
		t.Fatal("glider did not translate by (1,1) after 4 generations")
	}
}

func TestToroidalWrap(t *testing.T) {
	g := NewGrid(8, 8)
	// Horizontal blinker straddling the x seam: arms at 7, 0, 1.
	g.Set(7, 4, 1)
	g.Set(0, 4, 1)
	g.Set(1, 4, 1)
	if g.at(-1, 4) != g.at(7, 4) {
		t.Fatal("wrap read broken")
	}
	g.Step()
	if !g.Alive(0, 3) || !g.Alive(0, 4) || !g.Alive(0, 5) {
		t.Fatal("blinker across the seam did not oscillate")
	}
}

func TestGPUMatchesCPU(t *testing.T) {
	dev := gpu.New(gpu.Config{TextureMemory: 16 << 20, Workers: 4})
	cpu := NewGrid(32, 24)
	rng := rand.New(rand.NewSource(11))
	for i := range cpu.cells {
		if rng.Float64() < 0.3 {
			cpu.cells[i] = 1
		}
	}
	gg, err := NewGPUGrid(dev, 32, 24)
	if err != nil {
		t.Fatal(err)
	}
	if err := gg.Upload(cpu); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 20; s++ {
		cpu.Step()
		if err := gg.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := gg.Download()
	if err != nil {
		t.Fatal(err)
	}
	if !boardsEqual(cpu, got) {
		t.Fatal("GPU board diverged from CPU after 20 generations")
	}
	if dev.Stats.Passes != 20 {
		t.Errorf("passes = %d, want 20 (one per generation)", dev.Stats.Passes)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mk := func() *Grid {
		g := NewGrid(24, 24)
		r := rand.New(rand.NewSource(5))
		for i := range g.cells {
			if r.Float64() < 0.35 {
				g.cells[i] = 1
			}
		}
		return g
	}
	_ = rng
	serial := mk()
	for s := 0; s < 16; s++ {
		serial.Step()
	}
	for _, ranks := range []int{1, 2, 3, 4, 6} {
		par := ParallelSteps(mk(), ranks, 16)
		if !boardsEqual(serial, par) {
			t.Fatalf("%d-rank parallel run diverged from serial", ranks)
		}
	}
}

func TestParallelGliderAcrossStripBorders(t *testing.T) {
	// A glider crossing strip boundaries exercises the ghost exchange.
	start := NewGrid(16, 16)
	glider(start, 6, 2)
	serial := NewGrid(16, 16)
	glider(serial, 6, 2)
	for s := 0; s < 40; s++ {
		serial.Step()
	}
	par := ParallelSteps(start, 4, 40)
	if !boardsEqual(serial, par) {
		t.Fatal("glider lost crossing strip borders")
	}
}

func TestInvalidGrid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(0, 5)
}

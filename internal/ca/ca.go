// Package ca implements cellular automata on the GPU cluster, the first
// of the additional computations discussed in Section 6 of the paper
// ("we expect that the GPU cluster computing can be applied to the
// entire class of explicit methods on structured grids and cellular
// automata as well"). Conway's Game of Life serves as the canonical CA:
// it runs on the CPU reference, as a fragment program on the simulated
// GPU (one texel per cell, one render pass per generation), and
// decomposed across cluster nodes with ghost-row exchange over mpi.
package ca

import (
	"fmt"

	"gpucluster/internal/gpu"
	"gpucluster/internal/mpi"
	"gpucluster/internal/vecmath"
)

// Grid is a 2D toroidal Game of Life board.
type Grid struct {
	W, H  int
	cells []uint8
	next  []uint8
	gen   int
}

// NewGrid creates an empty board.
func NewGrid(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("ca: invalid grid %dx%d", w, h))
	}
	return &Grid{W: w, H: h, cells: make([]uint8, w*h), next: make([]uint8, w*h)}
}

// Set marks cell (x, y) alive (v=1) or dead (v=0).
func (g *Grid) Set(x, y int, v uint8) { g.cells[y*g.W+x] = v }

// Alive reports whether cell (x, y) is alive.
func (g *Grid) Alive(x, y int) bool { return g.cells[y*g.W+x] != 0 }

// Population counts live cells.
func (g *Grid) Population() int {
	n := 0
	for _, c := range g.cells {
		n += int(c)
	}
	return n
}

// Generation returns the number of completed steps.
func (g *Grid) Generation() int { return g.gen }

// at reads with toroidal wrap.
func (g *Grid) at(x, y int) uint8 {
	x %= g.W
	if x < 0 {
		x += g.W
	}
	y %= g.H
	if y < 0 {
		y += g.H
	}
	return g.cells[y*g.W+x]
}

// liveRule applies Conway's rule to a cell with n live neighbors.
func liveRule(alive uint8, n int) uint8 {
	if alive != 0 {
		if n == 2 || n == 3 {
			return 1
		}
		return 0
	}
	if n == 3 {
		return 1
	}
	return 0
}

// Step advances one generation on the CPU.
func (g *Grid) Step() {
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			n := int(g.at(x-1, y-1)) + int(g.at(x, y-1)) + int(g.at(x+1, y-1)) +
				int(g.at(x-1, y)) + int(g.at(x+1, y)) +
				int(g.at(x-1, y+1)) + int(g.at(x, y+1)) + int(g.at(x+1, y+1))
			g.next[y*g.W+x] = liveRule(g.cells[y*g.W+x], n)
		}
	}
	g.cells, g.next = g.next, g.cells
	g.gen++
}

// GPUGrid runs the same automaton as a fragment program on a simulated
// GPU: the board lives in a texture, each generation is one render pass
// with eight gather fetches, and the pbuffer result is copied back — the
// textbook Section 2 computation cycle.
type GPUGrid struct {
	W, H int
	dev  *gpu.Device
	tex  *gpu.Texture2D
	pb   *gpu.PBuffer
	gen  int
}

// NewGPUGrid allocates the board on the device.
func NewGPUGrid(dev *gpu.Device, w, h int) (*GPUGrid, error) {
	tex, err := dev.NewTexture2D("life", w, h)
	if err != nil {
		return nil, err
	}
	pb, err := dev.NewPBuffer("life-pb", w, h)
	if err != nil {
		tex.Free()
		return nil, err
	}
	return &GPUGrid{W: w, H: h, dev: dev, tex: tex, pb: pb}, nil
}

// Upload transfers a CPU board to the device.
func (g *GPUGrid) Upload(src *Grid) error {
	if src.W != g.W || src.H != g.H {
		return fmt.Errorf("ca: size mismatch %dx%d vs %dx%d", src.W, src.H, g.W, g.H)
	}
	data := make([]float32, g.W*g.H*4)
	for i, c := range src.cells {
		data[4*i] = float32(c)
	}
	return g.dev.Upload(g.tex, data)
}

// Download reads the device board back into a CPU grid.
func (g *GPUGrid) Download() (*Grid, error) {
	data, err := g.dev.Download(g.tex)
	if err != nil {
		return nil, err
	}
	out := NewGrid(g.W, g.H)
	for i := range out.cells {
		if data[4*i] > 0.5 {
			out.cells[i] = 1
		}
	}
	out.gen = g.gen
	return out, nil
}

// Step advances one generation with a single render pass.
func (g *GPUGrid) Step() error {
	pass := gpu.Pass{
		Name:     "life",
		Target:   g.pb,
		Textures: []gpu.Sampler{g.tex},
		Program: func(tex []gpu.Sampler, x, y int) vecmath.Vec4 {
			t := tex[0]
			n := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					if t.FetchWrap(x+dx, y+dy)[0] > 0.5 {
						n++
					}
				}
			}
			alive := uint8(0)
			if t.FetchWrap(x, y)[0] > 0.5 {
				alive = 1
			}
			return vecmath.Vec4{float32(liveRule(alive, n)), 0, 0, 1}
		},
	}
	if err := g.dev.RunAndCopy(pass, g.tex); err != nil {
		return err
	}
	g.gen++
	return nil
}

// ParallelSteps runs a board for the given generations decomposed into
// horizontal strips across ranks (one goroutine-node per strip) with
// ghost-row exchange each generation — the proxy-point pattern of
// Figure 14 applied to a CA. It returns the final board.
func ParallelSteps(start *Grid, ranks, generations int) *Grid {
	if start.H%ranks != 0 {
		panic(fmt.Sprintf("ca: %d rows not divisible by %d ranks", start.H, ranks))
	}
	rows := start.H / ranks
	w := start.W
	strips := make([][]uint8, ranks)

	world := mpi.NewWorld(ranks)
	world.Run(func(c *mpi.Comm) {
		r := c.Rank()
		// Local strip with two ghost rows.
		local := make([]uint8, (rows+2)*w)
		next := make([]uint8, (rows+2)*w)
		copy(local[w:], start.cells[r*rows*w:(r+1)*rows*w])

		up := (r - 1 + ranks) % ranks
		down := (r + 1) % ranks
		toF := func(b []uint8) []float32 {
			f := make([]float32, len(b))
			for i, v := range b {
				f[i] = float32(v)
			}
			return f
		}
		fromF := func(f []float32) []uint8 {
			b := make([]uint8, len(f))
			for i, v := range f {
				if v > 0.5 {
					b[i] = 1
				}
			}
			return b
		}
		for gen := 0; gen < generations; gen++ {
			// Exchange ghost rows (wrap decomposition: the torus is
			// preserved across strips). With 1 rank both neighbors are
			// self: wrap locally.
			if ranks == 1 {
				copy(local[:w], local[rows*w:(rows+1)*w])
				copy(local[(rows+1)*w:], local[w:2*w])
			} else {
				c.Send(up, gen*2, toF(local[w:2*w]))
				c.Send(down, gen*2+1, toF(local[rows*w:(rows+1)*w]))
				copy(local[(rows+1)*w:], fromF(c.Recv(down, gen*2)))
				copy(local[:w], fromF(c.Recv(up, gen*2+1)))
			}
			for y := 1; y <= rows; y++ {
				for x := 0; x < w; x++ {
					n := 0
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if dx == 0 && dy == 0 {
								continue
							}
							xx := (x + dx + w) % w
							n += int(local[(y+dy)*w+xx])
						}
					}
					next[y*w+x] = liveRule(local[y*w+x], n)
				}
			}
			local, next = next, local
		}
		strip := make([]uint8, rows*w)
		copy(strip, local[w:(rows+1)*w])
		strips[r] = strip
	})

	out := NewGrid(start.W, start.H)
	for r, s := range strips {
		copy(out.cells[r*rows*w:], s)
	}
	out.gen = generations
	return out
}

// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API, just large enough to host the
// batchlint analyzers (internal/lint). The repo builds with no module
// dependencies — the real x/tools framework cannot be vendored — so
// this package mirrors its shape (Analyzer, Pass, Diagnostic) and the
// cmd/batchlint driver speaks cmd/go's vettool config protocol
// directly. Analyzers written against this package port to the real
// framework by swapping the import and the Run signature.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a name (used in diagnostics and
// in //batchlint:allow directives), documentation, and the Run
// function applied to each type-checked package unit.
type Analyzer struct {
	// Name identifies the analyzer. It must be a valid Go identifier;
	// //batchlint:allow directives reference it.
	Name string
	// Doc is the one-paragraph description printed by the driver's
	// -help output and quoted in docs/ARCHITECTURE.md.
	Doc string
	// Run applies the check to one unit, reporting findings through
	// pass.Report. A non-nil error aborts the whole run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// Pass carries one type-checked package unit through an analyzer. The
// same unit (shared FileSet, Files, type info) is handed to every
// analyzer in the suite.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the unit.
	Fset *token.FileSet
	// Files are the parsed files of the unit, including in-package
	// _test.go files when the unit was built for a test (this matches
	// what cmd/go hands a vettool).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the Types/Defs/Uses/Selections maps for Files.
	TypesInfo *types.Info
	// Report delivers one finding. The driver wires suppression
	// (//batchlint:allow) and output formatting behind it.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether f came from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// FileName returns the base name of the file f was parsed from.
func (p *Pass) FileName(f *ast.File) string {
	name := p.Fset.Position(f.Package).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch. A finding is expected sometimes — the wall-clock
// sample in schedulePass really is gated on an attached metrics
// registry, the record forwarder really is the one unguarded s.rec
// dereference — and the ledger wants those exceptions audited, not
// silenced. The directive
//
//	//batchlint:allow <analyzer> -- <justification>
//
// placed on the offending line (trailing) or on its own line directly
// above suppresses that analyzer's findings there. The justification
// after " -- " is required; collectAllows records directives without
// one so Run can flag them.

type allowDirective struct {
	analyzer string    // named analyzer ("" when malformed)
	reason   string    // justification after " -- " ("" when bare)
	file     string    // filename the directive appears in
	line     int       // line of the directive comment
	pos      token.Pos // position for reporting directive misuse
}

type allowSet []allowDirective

const allowPrefix = "batchlint:allow"

// collectAllows gathers every batchlint:allow directive in the unit.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	var out allowSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+allowPrefix)
				if !ok {
					continue
				}
				d := allowDirective{
					file: fset.Position(c.Pos()).Filename,
					line: fset.Position(c.Pos()).Line,
					pos:  c.Pos(),
				}
				// "//batchlint:allowx" is not the directive.
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue
				}
				name, rest, found := strings.Cut(strings.TrimSpace(text), " ")
				d.analyzer = strings.TrimSpace(name)
				if found {
					if reason, hasReason := strings.CutPrefix(strings.TrimSpace(rest), "--"); hasReason {
						d.reason = strings.TrimSpace(reason)
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppresses reports whether a justified directive for the analyzer
// covers the finding at pos: same file, same line (trailing comment)
// or the line above (own-line comment).
func (s allowSet) suppresses(analyzer string, pos token.Position) bool {
	for _, d := range s {
		if d.analyzer != analyzer || d.reason == "" || d.file != pos.Filename {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			return true
		}
	}
	return false
}

package lint_test

import (
	"strings"
	"testing"

	"gpucluster/internal/lint"
	"gpucluster/internal/lint/linttest"
)

// The golden fixture suites: each analyzer runs over its fixture
// packages under testdata/src and every finding must line up with a
// want comment — flagged sites, guarded/audited sites that stay quiet,
// and the //batchlint:allow escape hatch (justified allows suppress,
// bare allows are themselves findings).

func TestDeterminism(t *testing.T) {
	linttest.Run(t, lint.Determinism, "determinism")
}

func TestRecorderGuard(t *testing.T) {
	linttest.Run(t, lint.RecorderGuard, "recorderguard")
}

func TestLockHeld(t *testing.T) {
	linttest.Run(t, lint.LockHeld, "lockheld", "lockheldsrv")
}

func TestAccounting(t *testing.T) {
	linttest.Run(t, lint.Accounting, "accounting")
}

func TestDebugCheck(t *testing.T) {
	linttest.Run(t, lint.DebugCheck, "debugcheck")
}

// TestAllowMalformed pins the remaining hygiene case want comments
// cannot express: a directive naming no analyzer at all.
func TestAllowMalformed(t *testing.T) {
	l := linttest.NewLoader(map[string]string{"": "testdata/src"})
	unit, err := l.Load("malformedallow", false)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, err := lint.Run(unit, lint.Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Message, "malformed batchlint:allow") {
		t.Fatalf("want exactly one malformed-directive finding, got %v", findings)
	}
}

// Package linttest is the offline analysistest: it loads fixture
// packages from testdata/src (or real repo packages by import path)
// with pure go/parser + go/types — std imports are type-checked from
// GOROOT source, so no export data or network is needed — runs
// batchlint analyzers over them, and matches findings against
// analysistest-style expectation comments:
//
//	x := time.Now() // want "wall clock"
//	//batchlint:allow determinism // want "needs a justification"
//
// A want comment carries one or more quoted (or backquoted) regular
// expressions; each must match exactly one finding reported on the
// comment's line, and every finding must be wanted.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gpucluster/internal/lint"
	"gpucluster/internal/lint/analysis"
)

// Loader resolves import paths to source directories and type-checks
// them recursively, caching by path. Standard-library imports fall
// through to the source importer.
type Loader struct {
	fset  *token.FileSet
	roots map[string]string // import-path prefix -> directory
	std   types.ImporterFrom
	pkgs  map[string]*loaded
}

type loaded struct {
	err  error
	unit lint.Unit
}

// NewLoader builds a loader. roots maps import-path prefixes to
// directories: {"gpucluster/": "../..", "": "testdata/src"} resolves
// module packages into the repo tree and bare paths into fixtures.
func NewLoader(roots map[string]string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:  fset,
		roots: roots,
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:  make(map[string]*loaded),
	}
}

// Load type-checks the package at the import path. includeTests also
// parses in-package _test.go files into the unit (what cmd/go hands a
// vettool for a tested package); transitive imports never include
// tests.
func (l *Loader) Load(path string, includeTests bool) (lint.Unit, error) {
	dir, ok := l.resolve(path)
	if !ok {
		return lint.Unit{}, fmt.Errorf("import path %q resolves to no configured root", path)
	}
	return l.loadDir(path, dir, includeTests)
}

// resolve maps an import path to a directory via the longest matching
// root prefix, requiring the directory to exist.
func (l *Loader) resolve(path string) (string, bool) {
	best, bestDir := -1, ""
	for prefix, dir := range l.roots {
		if strings.HasPrefix(path, prefix) && len(prefix) > best {
			best, bestDir = len(prefix), filepath.Join(dir, filepath.FromSlash(path[len(prefix):]))
		}
	}
	if best < 0 {
		return "", false
	}
	if st, err := os.Stat(bestDir); err != nil || !st.IsDir() {
		return "", false
	}
	return bestDir, true
}

func (l *Loader) loadDir(path, dir string, includeTests bool) (lint.Unit, error) {
	cacheKey := path
	if includeTests {
		cacheKey += " [test]"
	}
	if p, ok := l.pkgs[cacheKey]; ok {
		return p.unit, p.err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return lint.Unit{}, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	pkgName := ""
	for _, fname := range names {
		f, err := parser.ParseFile(l.fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return lint.Unit{}, err
		}
		// The unit is the package plus its in-package test files;
		// external _test packages are separate units and skipped here.
		if pkgName == "" && !strings.HasSuffix(f.Name.Name, "_test") {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == pkgName {
			kept = append(kept, f)
		}
	}
	files = kept
	if len(files) == 0 {
		return lint.Unit{}, fmt.Errorf("no Go files for %q in %s", path, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, info)
	unit := lint.Unit{Fset: l.fset, Files: files, Pkg: pkg, Info: info}
	l.pkgs[cacheKey] = &loaded{unit: unit, err: err}
	return unit, err
}

// loaderImporter adapts the loader to types.Importer: module/fixture
// paths load from source directories, everything else (std) goes to
// the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if dir, ok := l.resolve(path); ok {
		unit, err := l.loadDir(path, dir, false)
		if err != nil {
			return nil, err
		}
		return unit.Pkg, nil
	}
	return l.std.Import(path)
}

// Run loads each fixture package from testdata/src and checks the
// analyzer's findings against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	l := NewLoader(map[string]string{"": filepath.Join("testdata", "src")})
	for _, fixture := range fixtures {
		unit, err := l.Load(fixture, true)
		if err != nil {
			t.Errorf("%s: load: %v", fixture, err)
			continue
		}
		findings, err := lint.Run(unit, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: run: %v", fixture, err)
			continue
		}
		checkWants(t, unit, findings)
	}
}

// expectation is one parsed want regexp.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	used bool
}

var wantRe = regexp.MustCompile("want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// checkWants matches findings against want comments: every finding
// must be wanted, every want must fire exactly once.
func checkWants(t *testing.T, unit lint.Unit, findings []lint.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					pat := arg[1 : len(arg)-1]
					if arg[0] == '"' {
						if uq, err := strconv.Unquote(arg); err == nil {
							pat = uq
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, arg, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	for _, fd := range findings {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == fd.Pos.Filename && w.line == fd.Pos.Line && w.re.MatchString(fd.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: [%s] %s", fd.Pos, fd.Analyzer, fd.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

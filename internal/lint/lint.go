// Package lint is batchlint: the go/analysis-style suite that
// mechanically enforces the scheduler's invariant ledger
// (docs/ARCHITECTURE.md). Every rule here used to live in reviewer
// memory and after-the-fact tests; the analyzers turn them into build
// failures:
//
//   - determinism: no wall clock, no global randomness, no map
//     iteration in the scheduler core — the virtual-time event loop
//     must replay bit for bit.
//   - recorderguard: every recorder hook is dominated by an
//     s.rec != nil check and passes only constant/preallocated
//     details — the pinned zero-alloc nil path.
//   - lockheld: exported Engine methods take e.mu before touching
//     scheduler state, and the server package never drives the
//     Scheduler directly.
//   - accounting: only audited functions may mutate Job.History,
//     charge overhead/lost work, or reserve store-link time — new
//     accounting paths fail the build until audited.
//   - debugcheck: property-style tests over the shared config matrix
//     arm the debugCheckIndex/DebugVerifyShadows cross-checks.
//
// A finding can be waived in place with
//
//	//batchlint:allow <analyzer> -- <justification>
//
// on the flagged line or the line above. The justification is
// mandatory: a bare //batchlint:allow is itself a finding, so every
// waiver in the tree documents why the rule does not apply.
//
// The driver is cmd/batchlint, run as a go vet -vettool; see the
// "Static analysis" section of the README.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gpucluster/internal/lint/analysis"
)

// Import paths of the packages under the ledger's rules. The fixture
// packages under internal/lint/testdata/src use the analyzer's name as
// their path prefix, which scopePkg also admits so the analysistest
// suites exercise the same scope checks.
const (
	batchPkgPath  = "gpucluster/internal/batch"
	serverPkgPath = "gpucluster/internal/batch/server"
)

// Analyzers returns the batchlint suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		RecorderGuard,
		LockHeld,
		Accounting,
		DebugCheck,
	}
}

// Finding is one surviving diagnostic: analyzer, resolved position,
// message. The driver prints these in file/line order.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Unit is one type-checked package as handed to the suite: the shape
// cmd/batchlint reconstructs from a vet config and the test loaders
// build from source.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies the given analyzers to one unit and resolves
// //batchlint:allow directives: a directive with a justification
// suppresses same/next-line findings of the named analyzer, a bare
// directive or one naming an unknown analyzer is reported as a finding
// itself. The returned findings are sorted by position.
func Run(u Unit, analyzers []*analysis.Analyzer) ([]Finding, error) {
	allows := collectAllows(u.Fset, u.Files)
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
		}
		var diags []analysis.Diagnostic
		pass.Report = func(d analysis.Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			return nil, err
		}
		for _, d := range diags {
			pos := u.Fset.Position(d.Pos)
			if allows.suppresses(a.Name, pos) {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
		// Directive hygiene rides with the analyzer it names, so a
		// single-analyzer analysistest run still sees its own bare
		// allows.
		for _, d := range allows {
			if d.analyzer != a.Name || d.reason != "" {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: u.Fset.Position(d.pos),
				Message: "batchlint:allow needs a justification: //batchlint:allow " + a.Name + " -- <why the rule does not apply here>"})
		}
	}
	// Directives naming no analyzer at all, or one outside the suite,
	// are misspellings that would silently suppress nothing.
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, d := range allows {
		if d.analyzer == "" {
			out = append(out, Finding{Analyzer: "batchlint", Pos: u.Fset.Position(d.pos),
				Message: "malformed batchlint:allow: want //batchlint:allow <analyzer> -- <justification>"})
		} else if !known[d.analyzer] {
			out = append(out, Finding{Analyzer: "batchlint", Pos: u.Fset.Position(d.pos),
				Message: "batchlint:allow names unknown analyzer " + d.analyzer})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// scopePkg reports whether pkg is the named real package or a test
// fixture for the analyzer (fixture import paths start with the
// analyzer's name).
func scopePkg(pkg *types.Package, realPath, analyzerName string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	if p == realPath {
		return true
	}
	return len(p) >= len(analyzerName) && p[:len(analyzerName)] == analyzerName
}

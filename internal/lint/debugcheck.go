package lint

import (
	"go/ast"

	"gpucluster/internal/lint/analysis"
)

// DebugCheck keeps the redundant-encoding cross-checks armed where
// they matter. The scheduler carries two self-verification hooks —
// debugCheckIndex re-derives the free-range index from the used
// bitmap after every cluster mutation, and DebugVerifyShadows re-runs
// the full bitmap replay against every incremental shadow
// (index.go) — and a property-style test that churns placement and
// shadows without arming them is only testing half of what it could.
// The rule: any Test function that drives the shared propertyConfigs
// matrix must arm at least one of the two hooks in its body (the
// index_test.go set-and-defer-reset pattern), or carry a justified
// //batchlint:allow debugcheck naming the armed run that already
// covers its matrix.
var DebugCheck = &analysis.Analyzer{
	Name: "debugcheck",
	Doc: "property-style tests over propertyConfigs must arm debugCheckIndex or " +
		"DebugVerifyShadows (or point at the armed run that covers them)",
	Run: runDebugCheck,
}

// debugHooks are the arming globals.
var debugHooks = map[string]bool{"debugCheckIndex": true, "DebugVerifyShadows": true}

// propertyMatrix is the identifier whose use marks a test as
// property-style: the shared policy × preempt × quantum × suspend
// config matrix.
const propertyMatrix = "propertyConfigs"

func runDebugCheck(pass *analysis.Pass) error {
	if !scopePkg(pass.Pkg, batchPkgPath, pass.Analyzer.Name) {
		return nil
	}
	for _, f := range pass.Files {
		if !pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil || len(fd.Name.Name) < 5 || fd.Name.Name[:4] != "Test" {
				continue
			}
			usesMatrix, arms := false, false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if n.Name == propertyMatrix {
						usesMatrix = true
					}
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && debugHooks[id.Name] {
							arms = true
						}
					}
				}
				return true
			})
			if usesMatrix && !arms {
				pass.Reportf(fd.Pos(), "%s sweeps propertyConfigs without arming debugCheckIndex or DebugVerifyShadows; arm them (set-and-defer-reset, see index_test.go) or justify with //batchlint:allow debugcheck -- <which armed run covers this matrix>", fd.Name.Name)
			}
		}
	}
	return nil
}

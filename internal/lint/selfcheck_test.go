package lint_test

import (
	"path/filepath"
	"testing"

	"gpucluster/internal/lint"
	"gpucluster/internal/lint/linttest"
)

// TestRepoClean loads the real scheduler core and transport from
// source — in-package test files included, the same unit cmd/go hands
// the vettool — and runs the full batchlint suite. The tree must be
// clean: every rule the fixtures prove also holds on the code it was
// written for, with no false positives, and every in-tree
// //batchlint:allow carries its justification.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the full module from source")
	}
	l := linttest.NewLoader(map[string]string{
		"gpucluster/": filepath.Join("..", ".."),
		"":            filepath.Join("testdata", "src"),
	})
	for _, path := range []string{
		"gpucluster/internal/batch",
		"gpucluster/internal/batch/server",
	} {
		unit, err := l.Load(path, true)
		if err != nil {
			t.Fatalf("%s: load: %v", path, err)
		}
		findings, err := lint.Run(unit, lint.Analyzers())
		if err != nil {
			t.Fatalf("%s: run: %v", path, err)
		}
		for _, f := range findings {
			t.Errorf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"gpucluster/internal/lint/analysis"
)

// RecorderGuard protects the pinned zero-alloc nil-recorder path
// (obs.go, TestPassOnceZeroAllocNilRecorder). Two rules:
//
//  1. Every recorder hook call — s.rec.<Method>(...) or the
//     s.record(...) forwarder — must be dominated by an s.rec != nil
//     check: either lexically inside an `if s.rec != nil { ... }`
//     branch (including else-if chains and `if s.rec == nil` else
//     arms) or after an `if s.rec == nil { return }` early exit in the
//     same block.
//  2. Hook arguments must not format or convert at the call site: the
//     Event literal's Detail field must be a constant string, a local
//     assembled from constants, or a call to one of the audited
//     constant-returning helpers (dispatchDetail, drainDetail) — and
//     no fmt/strconv call may appear anywhere in a hook's arguments.
//     The golden Chrome-trace test pins these labels, and anything
//     dynamic here would allocate on the recording path.
var RecorderGuard = &analysis.Analyzer{
	Name: "recorderguard",
	Doc: "recorder hooks must be dominated by an s.rec != nil check and pass only " +
		"constant/preallocated details (zero-alloc nil path)",
	Run: runRecorderGuard,
}

// detailHelpers are the audited helpers that return only constant
// strings (their bodies are switch/return over literals).
var detailHelpers = map[string]bool{"dispatchDetail": true, "drainDetail": true}

func runRecorderGuard(pass *analysis.Pass) error {
	if !scopePkg(pass.Pkg, batchPkgPath, pass.Analyzer.Name) {
		return nil
	}
	w := &recWalker{pass: pass}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.stmts(fd.Body.List, nil)
		}
	}
	return nil
}

// gset is the set of recorder owners (rendered expressions like
// "s.rec") proven non-nil in the current lexical context.
type gset map[string]bool

func (g gset) with(owners []string) gset {
	if len(owners) == 0 {
		return g
	}
	out := make(gset, len(g)+len(owners))
	for k := range g {
		out[k] = true
	}
	for _, o := range owners {
		out[o] = true
	}
	return out
}

type recWalker struct {
	pass *analysis.Pass
}

// stmts walks a statement sequence, threading the guard set: an
// `if x.rec == nil { return }` statement guards everything after it in
// the same sequence.
func (w *recWalker) stmts(list []ast.Stmt, g gset) {
	for _, s := range list {
		g = w.stmt(s, g)
	}
}

// stmt walks one statement under guard set g and returns the guard set
// for the statements that follow it in the same sequence.
func (w *recWalker) stmt(s ast.Stmt, g gset) gset {
	switch s := s.(type) {
	case nil:
		return g
	case *ast.BlockStmt:
		w.stmts(s.List, g)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, g)
		}
		w.expr(s.Cond, g)
		pos := recCondOwners(s.Cond, token.NEQ)
		neg := recCondOwners(s.Cond, token.EQL)
		w.stmts(s.Body.List, g.with(pos))
		if s.Else != nil {
			// The else arm of `if x.rec == nil` holds the recorder.
			w.stmt(s.Else, g.with(neg))
		} else if len(neg) > 0 && terminates(s.Body) {
			return g.with(neg)
		}
	case *ast.ForStmt:
		w.stmt(s.Init, g)
		w.expr(s.Cond, g)
		w.stmt(s.Post, g)
		w.stmts(s.Body.List, g)
	case *ast.RangeStmt:
		w.expr(s.X, g)
		w.stmts(s.Body.List, g)
	case *ast.SwitchStmt:
		w.stmt(s.Init, g)
		w.expr(s.Tag, g)
		w.stmts(s.Body.List, g)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, g)
		w.stmt(s.Assign, g)
		w.stmts(s.Body.List, g)
	case *ast.SelectStmt:
		w.stmts(s.Body.List, g)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, g)
		}
		w.stmts(s.Body, g)
	case *ast.CommClause:
		w.stmt(s.Comm, g)
		w.stmts(s.Body, g)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, g)
	case *ast.ExprStmt:
		w.expr(s.X, g)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, g)
		}
		for _, e := range s.Lhs {
			w.expr(e, g)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, g)
		}
	case *ast.DeferStmt:
		w.expr(s.Call, g)
	case *ast.GoStmt:
		w.expr(s.Call, g)
	case *ast.SendStmt:
		w.expr(s.Chan, g)
		w.expr(s.Value, g)
	case *ast.IncDecStmt:
		w.expr(s.X, g)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, g)
					}
				}
			}
		}
	}
	return g
}

// expr scans an expression for recorder hook calls, checking each
// against the current guard set. Function literals inherit the lexical
// guard set — they only run where they are built in this codebase.
func (w *recWalker) expr(e ast.Expr, g gset) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, g)
			return false
		case *ast.CallExpr:
			if owner, ok := hookOwner(n); ok {
				if !g[owner] {
					w.pass.Reportf(n.Pos(), "recorder hook must be dominated by a %s != nil check (zero-alloc nil path); wrap in `if %s != nil { ... }` or bail early with `if %s == nil { return }`", owner, owner, owner)
				}
				w.checkHookArgs(n)
			}
		}
		return true
	})
}

// hookOwner reports whether call is a recorder hook and names the
// recorder expression that must be proven non-nil: "s.rec" for both
// s.rec.Record(...) and the s.record(...) forwarder.
func hookOwner(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "rec" {
		return types.ExprString(inner.X) + ".rec", true
	}
	if sel.Sel.Name == "record" {
		return types.ExprString(sel.X) + ".rec", true
	}
	return "", false
}

// recCondOwners extracts recorder expressions compared against nil
// with the given operator from a guard condition, descending into &&
// conjunctions.
func recCondOwners(cond ast.Expr, op token.Token) []string {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return append(recCondOwners(c.X, op), recCondOwners(c.Y, op)...)
		}
		if c.Op != op {
			return nil
		}
		x, y := ast.Unparen(c.X), ast.Unparen(c.Y)
		if isNilIdent(y) {
			if owner, ok := recExpr(x); ok {
				return []string{owner}
			}
		}
		if isNilIdent(x) {
			if owner, ok := recExpr(y); ok {
				return []string{owner}
			}
		}
	}
	return nil
}

// recExpr reports whether e is a selection of a field named rec, and
// renders it ("s.rec") as the guard-set key.
func recExpr(e ast.Expr) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "rec" {
		return "", false
	}
	return types.ExprString(sel), true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether a block's last statement unconditionally
// leaves it: the `if s.rec == nil { return }` early-exit shape.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// checkHookArgs enforces rule 2 on a guarded hook call: constant-only
// Detail fields and no formatting anywhere in the arguments.
func (w *recWalker) checkHookArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Detail" && !w.detailOK(kv.Value) {
						w.pass.Reportf(kv.Value.Pos(), "recorder Detail must be a constant string, a local assembled from constants, or dispatchDetail/drainDetail; dynamic labels allocate on the recording path and break the golden trace")
					}
				}
			case *ast.CallExpr:
				if obj := calleeFunc(w.pass, n); obj != nil && obj.Pkg() != nil {
					switch obj.Pkg().Path() {
					case "fmt", "strconv":
						w.pass.Reportf(n.Pos(), "%s.%s formats inside a recorder hook argument; precompute outside the hook or use a constant label", obj.Pkg().Name(), obj.Name())
					}
				}
			}
			return true
		})
	}
}

// detailOK reports whether a Detail value is constant-like: a typed or
// untyped constant (literals and constant concatenations fold), a
// plain identifier (a local the surrounding guarded block assembled
// from constants), or a call to an audited constant-returning helper.
func (w *recWalker) detailOK(v ast.Expr) bool {
	if tv, ok := w.pass.TypesInfo.Types[v]; ok && tv.Value != nil {
		return true
	}
	switch v := ast.Unparen(v).(type) {
	case *ast.Ident:
		return true
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && detailHelpers[id.Name] {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call's callee to its function object, when it
// is a simple identifier or selector call.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

package lint

import (
	"go/ast"

	"gpucluster/internal/lint/analysis"
)

// Accounting guards the ledger's central balance — busy ≡ work +
// overhead + lost-work, exact to the tick (docs/ARCHITECTURE.md
// "Invariants") — by pinning WHO may move the books. Three kinds of
// mutation are monitored in the scheduler core:
//
//   - writes to Job.History (the banked-progress segments the balance
//     is reconstructed from),
//   - writes to the overhead/lostWork charge fields,
//   - reservations and releases on the duplex store-link timelines
//     (reserveWrite/reserveRead/releaseRead).
//
// Any function performing one of these must be in the audited
// allowlist below. A new accounting path therefore fails the build
// until someone re-derives the balance for it and adds the function —
// the audit PRs 5–9 each did by hand, mechanized.
var Accounting = &analysis.Analyzer{
	Name: "accounting",
	Doc: "only audited functions may mutate Job.History, charge overhead/lost work, " +
		"or touch the store-link timelines (busy ≡ work + overhead + lost-work)",
	Run: runAccounting,
}

// auditedAccounting is the allowlist: every function that currently
// moves the books, each audited against the balance by the pinning
// suites (property_test.go, cancel_test.go, fault_test.go). Adding a
// name here is a statement that the new path keeps
// busy ≡ work + overhead + lost-work exact — say why in the PR.
var auditedAccounting = map[string]bool{
	"Scheduler.Submit":          true, // resets History/charges for a fresh (or replayed) job
	"Scheduler.tryStart":        true, // restore prefix charge + read-link reservation + migration write leg
	"Scheduler.complete":        true, // closes the run segment
	"Scheduler.cancelRunning":   true, // closes the segment of a canceled gang
	"Scheduler.beginCheckpoint": true, // drain charge + write-link reservation
	"Scheduler.bankProgress":    true, // banks the drained segment; mid-restore read refund
	"Scheduler.loseProgress":    true, // canceled drain: charge becomes lost work
	"Scheduler.ckptBoundary":    true, // proactive bank: write-link reservation + charge
	"Scheduler.bankSettle":      true, // proactive bank settlement segment
	"Scheduler.failGang":        true, // fault kill: lost tail, drain refund
	"Scheduler.demote":          true, // eviction write-link reservation
}

// accountingFields are the Job/Scheduler fields whose writes are
// monitored.
var accountingFields = map[string]bool{"History": true, "overhead": true, "lostWork": true}

// linkMutators are the storeLink methods that move a timeline.
var linkMutators = map[string]bool{"reserveWrite": true, "reserveRead": true, "releaseRead": true}

func runAccounting(pass *analysis.Pass) error {
	if !scopePkg(pass.Pkg, batchPkgPath, pass.Analyzer.Name) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := qualifiedName(fd)
			if auditedAccounting[name] {
				continue
			}
			// linksim.go's storeLink methods own their internal state;
			// the monitored surface is everyone reserving through them.
			if recv, _ := splitRecv(name); recv == "storeLink" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if field, ok := monitoredField(lhs); ok {
							pass.Reportf(lhs.Pos(), "%s mutates the accounting ledger (.%s) but is not in the audited allowlist (internal/lint/accounting.go); re-derive busy ≡ work + overhead + lost-work for this path and add it", name, field)
						}
					}
				case *ast.IncDecStmt:
					if field, ok := monitoredField(n.X); ok {
						pass.Reportf(n.Pos(), "%s mutates the accounting ledger (.%s) but is not in the audited allowlist (internal/lint/accounting.go); re-derive busy ≡ work + overhead + lost-work for this path and add it", name, field)
					}
				case *ast.CallExpr:
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok && linkMutators[sel.Sel.Name] {
						pass.Reportf(n.Pos(), "%s moves a store-link timeline (%s) but is not in the audited allowlist (internal/lint/accounting.go); link time is charged overhead — audit the balance and add it", name, sel.Sel.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// monitoredField reports whether an assignment target is a selection
// of a monitored accounting field.
func monitoredField(lhs ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || !accountingFields[sel.Sel.Name] {
		return "", false
	}
	return sel.Sel.Name, true
}

// qualifiedName renders a function's allowlist key: "Recv.Name" for
// methods, "Name" for plain functions.
func qualifiedName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// splitRecv splits a qualified name into receiver and method.
func splitRecv(name string) (recv, method string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i], name[i+1:]
		}
	}
	return "", name
}

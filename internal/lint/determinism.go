package lint

import (
	"go/ast"
	"go/types"

	"gpucluster/internal/lint/analysis"
)

// Determinism enforces the ledger's bit-for-bit replay contract on the
// scheduler core (gpucluster/internal/batch, excluding engine.go —
// the wall-clock seam — and the server transport, which is a
// different package): no wall-clock reads (time.Now/Since/Until), no
// global or unseeded math/rand (only explicit rand.New(rand.NewSource
// (seed)) constructions), and no ranging over maps — iteration order
// is randomized per run and any map walk in the core can leak into an
// Event stream, a Report, or queue ordering. Order-independent folds
// over maps are waived in place with a justified //batchlint:allow.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, and map iteration in the scheduler core; " +
		"the virtual-time event loop must replay bit for bit",
	Run: runDeterminism,
}

// wallClockFuncs are the package time functions that read the wall
// clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand entry points that take an
// explicit, seedable source and therefore stay deterministic.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 equivalents.
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) error {
	if !scopePkg(pass.Pkg, batchPkgPath, pass.Analyzer.Name) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) || pass.FileName(f) == "engine.go" {
			// Tests may measure wall time; engine.go owns the
			// WallClock seam by design (docs/ARCHITECTURE.md).
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				if obj.Signature().Recv() != nil {
					return true // methods (e.g. (*rand.Rand).Intn) are seeded
				}
				switch obj.Pkg().Path() {
				case "time":
					if wallClockFuncs[obj.Name()] {
						pass.Reportf(n.Pos(), "time.%s reads the wall clock in the scheduler core; use virtual time (s.now) or gate on an attached metrics registry", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[obj.Name()] {
						pass.Reportf(n.Pos(), "global rand.%s is process-seeded and breaks replay; use rand.New(rand.NewSource(seed))", obj.Name())
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map iteration order is randomized and can reach an Event stream, Report, or queue ordering; iterate sorted keys or justify with //batchlint:allow determinism -- <why order cannot escape>")
					}
				}
			}
			return true
		})
	}
	return nil
}

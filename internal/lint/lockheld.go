package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gpucluster/internal/lint/analysis"
)

// LockHeld enforces the Engine/transport concurrency contract
// (docs/ARCHITECTURE.md "Engine and transport"):
//
//  1. Every exported method on batch.Engine that touches the wrapped
//     scheduler (the e.s field) must acquire e.mu.Lock() first —
//     lexically before the first e.s use. Unexported helpers are the
//     documented "callers hold e.mu" tier and are exempt.
//  2. The server package must never drive the Scheduler directly: no
//     method calls on a batch.Scheduler value and no NewScheduler
//     construction — everything goes through Engine, whose mutex and
//     Clock are what keep queries from advancing virtual time.
var LockHeld = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "exported Engine methods must hold e.mu before touching scheduler state; " +
		"the server package drives the scheduler only through Engine",
	Run: runLockHeld,
}

func runLockHeld(pass *analysis.Pass) error {
	if scopePkg(pass.Pkg, batchPkgPath, pass.Analyzer.Name) {
		checkEngineLocking(pass)
	}
	if pass.Pkg != nil && (pass.Pkg.Path() == serverPkgPath || strings.HasPrefix(pass.Pkg.Path(), pass.Analyzer.Name+"srv")) {
		checkServerBoundary(pass)
	}
	return nil
}

// checkEngineLocking applies rule 1 to every exported *Engine method.
func checkEngineLocking(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv, ok := receiverName(fd, "Engine")
			if !ok {
				continue
			}
			firstUse := firstStateUse(fd.Body, recv)
			if firstUse == nil {
				continue
			}
			if !lockedBefore(fd.Body, recv, firstUse.Pos()) {
				pass.Reportf(firstUse.Pos(), "exported Engine method %s touches scheduler state (%s.s) without first acquiring %s.mu.Lock(); queries and ingests race the pump without it", fd.Name.Name, recv, recv)
			}
		}
	}
}

// receiverName returns the receiver identifier of a method on the
// named type (value or pointer receiver).
func receiverName(fd *ast.FuncDecl, typeName string) (string, bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", false
	}
	field := fd.Recv.List[0]
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok || id.Name != typeName || len(field.Names) != 1 {
		return "", false
	}
	return field.Names[0].Name, true
}

// firstStateUse finds the lexically first selection of the scheduler
// field (recv.s) in the body.
func firstStateUse(body *ast.BlockStmt, recv string) ast.Node {
	var first ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if first != nil {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "s" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
			first = sel
			return false
		}
		return true
	})
	return first
}

// lockedBefore reports whether a recv.mu.Lock() call appears lexically
// before limit in the body.
func lockedBefore(body *ast.BlockStmt, recv string, limit token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= limit {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		mu, ok := sel.X.(*ast.SelectorExpr)
		if !ok || mu.Sel.Name != "mu" {
			return true
		}
		if id, ok := mu.X.(*ast.Ident); ok && id.Name == recv {
			found = true
		}
		return true
	})
	return found
}

// checkServerBoundary applies rule 2: inside the transport package,
// flag method calls on batch.Scheduler values and NewScheduler
// construction.
func checkServerBoundary(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pass.TypesInfo.Selections[sel]
				if !ok || selection.Kind() != types.MethodVal {
					return true
				}
				if named := namedRecv(selection.Recv()); named != nil &&
					named.Obj().Name() == "Scheduler" && named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "batch" {
					pass.Reportf(n.Pos(), "server must not call Scheduler.%s directly; route through Engine so e.mu and the Clock stay authoritative", sel.Sel.Name)
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func); ok &&
					fn.Name() == "NewScheduler" && fn.Pkg() != nil && fn.Pkg().Name() == "batch" {
					pass.Reportf(n.Pos(), "server must not construct a raw Scheduler; use batch.NewEngine")
				}
			}
			return true
		})
	}
}

// namedRecv unwraps a method receiver type to its named type.
func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// Package lockheldsrv is the batchlint server-boundary fixture: the
// transport drives the scheduler only through Engine.
package lockheldsrv

import "lockheldsrv/batch"

type handler struct {
	e *batch.Engine
	s *batch.Scheduler
}

func (h *handler) step() int {
	return h.s.Run() // want `server must not call Scheduler\.Run directly`
}

func (h *handler) good() int {
	return h.e.Run()
}

func newHandler() *handler {
	return &handler{
		e: batch.NewEngine(),
		s: batch.NewScheduler(), // want `server must not construct a raw Scheduler`
	}
}

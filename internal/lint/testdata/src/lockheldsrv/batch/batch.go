// Package batch is the scheduler stand-in the lockheldsrv fixture
// drives: the boundary rule keys on the package name ("batch") and the
// Scheduler/NewScheduler names.
package batch

type Scheduler struct{ tick int }

func NewScheduler() *Scheduler { return &Scheduler{} }

func (s *Scheduler) Run() int { s.tick++; return s.tick }

type Engine struct{ s *Scheduler }

func NewEngine() *Engine { return &Engine{s: NewScheduler()} }

func (e *Engine) Run() int { return e.s.Run() }

// Package malformedallow holds a directive naming no analyzer: Run
// must flag it rather than silently suppressing nothing.
package malformedallow

//batchlint:allow
func noop() {}

package accounting

// Test files rebuild ledgers freely: the analyzer skips them.
func resetForTest(j *Job, g *gang) {
	j.History = nil
	g.overhead = 0
	g.lostWork = 0
}

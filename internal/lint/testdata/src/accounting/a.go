// Package accounting is the batchlint accounting fixture: only the
// audited allowlist may mutate History/overhead/lostWork or move a
// store-link timeline.
package accounting

type Job struct {
	History []int
}

type gang struct {
	overhead int
	lostWork int
}

type storeLink struct{ t int }

func (l *storeLink) reserveWrite(d int) int { l.t += d; return l.t }
func (l *storeLink) reserveRead(d int) int  { l.t += d; return l.t }
func (l *storeLink) releaseRead(d int)      { l.t -= d }

// storeLink owns its internal state: its methods may call the other
// mutators without an audit entry.
func (l *storeLink) rebalance(d int) { l.reserveRead(d) }

type Scheduler struct {
	link *storeLink
}

// bankProgress is on the audited allowlist: all three mutation kinds
// pass here.
func (s *Scheduler) bankProgress(j *Job, g *gang, seg int) {
	j.History = append(j.History, seg)
	g.overhead += seg
	s.link.reserveWrite(seg)
}

func (s *Scheduler) sneakyCharge(g *gang, d int) {
	g.overhead += d // want `sneakyCharge mutates the accounting ledger \(\.overhead\)`
	g.lostWork++    // want `sneakyCharge mutates the accounting ledger \(\.lostWork\)`
}

func (s *Scheduler) sideChannel(d int) {
	s.link.releaseRead(d) // want `moves a store-link timeline \(releaseRead\)`
}

func trim(j *Job) {
	j.History = j.History[:0] // want `trim mutates the accounting ledger \(\.History\)`
}

func (s *Scheduler) refund(g *gang, d int) {
	//batchlint:allow accounting -- fixture: balance re-derived out of band
	g.overhead -= d
}

// Package recorderguard is the batchlint recorderguard fixture: every
// hook call must be dominated by a rec != nil check, and hook
// arguments must stay constant/preallocated.
package recorderguard

import "fmt"

type Event struct {
	Kind   int
	Detail string
}

type Recorder struct{ n int }

func (r *Recorder) Record(ev Event) { r.n++ }

type S struct {
	rec  *Recorder
	name string
}

const evLabel = "dispatch"

func dispatchDetail(kind int) string {
	if kind == 0 {
		return "drain"
	}
	return "demand"
}

func makeLabel(s string) string { return s + "!" }

// The forwarder itself dereferences without a guard: flagged, exactly
// like the real obs.go forwarder before its audited allow.
func (s *S) record(ev Event) {
	s.rec.Record(ev) // want `dominated by a s\.rec != nil check`
}

func (s *S) bad() {
	s.rec.Record(Event{Detail: evLabel}) // want `dominated by a s\.rec != nil check`
	s.record(Event{Detail: evLabel})     // want `dominated by a s\.rec != nil check`
}

func (s *S) guarded(busy bool, kind int) {
	if s.rec != nil {
		s.rec.Record(Event{Detail: evLabel})
		s.record(Event{Detail: evLabel})
	}
	if busy && s.rec != nil {
		s.rec.Record(Event{Detail: dispatchDetail(kind)})
	}
	if s.rec == nil {
		busy = !busy
	} else {
		s.rec.Record(Event{Detail: evLabel})
	}
}

func (s *S) early(kind int) {
	if s.rec == nil {
		return
	}
	label := evLabel
	s.rec.Record(Event{Kind: kind, Detail: label})
	flush := func() { s.rec.Record(Event{Detail: evLabel}) } // FuncLit inherits the lexical guard
	flush()
}

func (s *S) dynamic(n int) {
	if s.rec != nil {
		s.rec.Record(Event{Detail: makeLabel(s.name)})        // want `Detail must be a constant string`
		s.rec.Record(Event{Detail: fmt.Sprintf("job %d", n)}) // want `Detail must be a constant string` `fmt\.Sprintf formats inside a recorder hook argument`
	}
}

func (s *S) audited() {
	//batchlint:allow recorderguard -- fixture: the audited single unguarded deref
	s.rec.Record(Event{Detail: evLabel})
}

package determinism

import "time"

// engine.go is the wall-clock seam by design: the analyzer skips it,
// so none of these report.
func engineNow() time.Time {
	return time.Now()
}

package determinism

import "time"

// Test files may measure wall time: the analyzer skips them.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

// Package determinism is the batchlint determinism fixture: wall-clock
// reads, global math/rand, and map iteration are flagged; seeded
// constructors, rand methods, and justified allows are not. The
// directive-hygiene cases (bare allow, unknown analyzer) ride along
// because Run reports them on any unit.
package determinism

import (
	"math/rand"
	"time"
)

type sched struct {
	now   time.Duration
	seats map[string]int
	rng   *rand.Rand
}

func (s *sched) wall() time.Duration {
	t := time.Now()            // want `time\.Now reads the wall clock`
	_ = time.Since(t)          // want `time\.Since reads the wall clock`
	_ = time.Until(t)          // want `time\.Until reads the wall clock`
	_ = t.Sub(time.Time{})     // methods on time.Time are fine
	_ = time.Duration(3).Abs() // so are methods on Duration
	return s.now
}

func (s *sched) gatedWall() {
	// A justified trailing allow suppresses the finding on its line.
	_ = time.Now() //batchlint:allow determinism -- fixture: gated wall sample, observes only
}

func (s *sched) noise() int {
	n := rand.Intn(5)                  // want `global rand\.Intn is process-seeded and breaks replay`
	rand.Shuffle(n, func(i, j int) {}) // want `global rand\.Shuffle is process-seeded and breaks replay`
	r := rand.New(rand.NewSource(42))  // seeded constructor: fine
	s.rng = r
	return r.Intn(5) // method on a seeded *rand.Rand: fine
}

func (s *sched) walk() int {
	total := 0
	for _, v := range s.seats { // want `map iteration order is randomized`
		total += v
	}
	//batchlint:allow determinism -- fixture: order-independent fold to a sum
	for _, v := range s.seats {
		total += v
	}
	for _, v := range []int{1, 2} { // slice range: fine
		total += v
	}
	return total
}

//batchlint:allow determinism want "needs a justification"

//batchlint:allow nosuchcheck -- reasoned, but want "unknown analyzer nosuchcheck"

// Package debugcheck is the batchlint debugcheck fixture: tests that
// sweep the shared propertyConfigs matrix must arm a debug hook.
package debugcheck

var debugCheckIndex bool

var DebugVerifyShadows bool

type config struct{ policy int }

func propertyConfigs() []config {
	return []config{{0}, {1}}
}

package debugcheck

func TestSweepArmed() {
	debugCheckIndex = true
	defer func() { debugCheckIndex = false }()
	for range propertyConfigs() {
	}
}

func TestSweepBothArmed() {
	debugCheckIndex = true
	DebugVerifyShadows = true
	defer func() { debugCheckIndex = false; DebugVerifyShadows = false }()
	for range propertyConfigs() {
	}
}

func TestSweepUnarmed() { // want `TestSweepUnarmed sweeps propertyConfigs without arming`
	for range propertyConfigs() {
	}
}

//batchlint:allow debugcheck -- fixture: TestSweepArmed runs this matrix with the index check armed
func TestSweepCovered() {
	for range propertyConfigs() {
	}
}

func TestUnrelated() {
	_ = 1 + 2
}

// Package lockheld is the batchlint Engine-locking fixture: exported
// Engine methods must take e.mu before the first e.s touch; unexported
// helpers are the documented callers-hold-e.mu tier.
package lockheld

import "sync"

type core struct{ queue []int }

func (c *core) push(v int) { c.queue = append(c.queue, v) }

type Engine struct {
	mu sync.Mutex
	s  *core
}

func (e *Engine) Ingest(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.s.push(v)
}

func (e *Engine) Peek() int {
	if len(e.s.queue) == 0 { // want `exported Engine method Peek touches scheduler state`
		return 0
	}
	return e.s.queue[0]
}

func (e *Engine) Len() int {
	e.mu.Lock()
	n := len(e.s.queue)
	e.mu.Unlock()
	return n
}

func (e *Engine) pump(v int) {
	e.s.push(v) // unexported: callers hold e.mu
}

func (e *Engine) Reset() {} // no scheduler state touched

func (e *Engine) Snapshot() []int {
	//batchlint:allow lockheld -- fixture: audited lock-free read
	return e.s.queue
}

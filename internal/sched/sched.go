// Package sched builds the contention-aware communication schedules of
// Section 4.3 (Figure 7) of the paper. The LBM sub-domains are arranged
// on a grid of nodes; in every simulation step, border velocity
// distributions must be exchanged with nearest (axial) and second-nearest
// (diagonal) neighbors. The schedule organizes these exchanges into
// synchronous steps of pairwise-disjoint node pairs so that no port of
// the switch ever carries two transfers at once:
//
//	step 1: nodes in the (2i)th columns exchange with their left neighbors
//	step 2: ... with their right neighbors
//	step 3: nodes in the (2i)th rows exchange with the row above
//	step 4: ... with the row below
//
// (and two more steps for the z dimension in 3D arrangements).
//
// Diagonal data are NOT exchanged directly: "to keep the communication
// pattern from becoming too complicated ... we transfer those data
// indirectly in a two-step process" — the diagonal payload rides along
// with an axial transfer and is forwarded by the intermediate node in a
// later step. The Direct pattern, which adds explicit diagonal exchange
// steps, is provided for the ablation experiment A1.
package sched

import (
	"fmt"
	"math"
)

// NodeGrid is the Cartesian arrangement of cluster nodes. Ranks are
// laid out x-fastest: rank = (k*PY + j)*PX + i.
type NodeGrid struct {
	PX, PY, PZ int
}

// Size returns the number of nodes in the grid.
func (g NodeGrid) Size() int { return g.PX * g.PY * g.PZ }

// Rank returns the rank of grid position (i, j, k).
func (g NodeGrid) Rank(i, j, k int) int { return (k*g.PY+j)*g.PX + i }

// Coords returns the grid position of a rank.
func (g NodeGrid) Coords(rank int) (i, j, k int) {
	i = rank % g.PX
	j = (rank / g.PX) % g.PY
	k = rank / (g.PX * g.PY)
	return
}

// Valid reports whether the grid has positive extents.
func (g NodeGrid) Valid() bool { return g.PX > 0 && g.PY > 0 && g.PZ > 0 }

func (g NodeGrid) String() string {
	return fmt.Sprintf("%dx%dx%d", g.PX, g.PY, g.PZ)
}

// Arrange2D factors n nodes into the most square PX x PY x 1 grid with
// PX >= PY, matching the paper's arrangements (e.g. 30 nodes -> 6x5,
// 32 -> 8x4, 28 -> 7x4).
func Arrange2D(n int) NodeGrid {
	if n <= 0 {
		panic(fmt.Sprintf("sched: invalid node count %d", n))
	}
	best := NodeGrid{PX: n, PY: 1, PZ: 1}
	for py := 1; py*py <= n; py++ {
		if n%py == 0 {
			best = NodeGrid{PX: n / py, PY: py, PZ: 1}
		}
	}
	return best
}

// Arrange3D factors n nodes into the most cubic PX x PY x PZ grid with
// PX >= PY >= PZ.
func Arrange3D(n int) NodeGrid {
	if n <= 0 {
		panic(fmt.Sprintf("sched: invalid node count %d", n))
	}
	best := NodeGrid{PX: n, PY: 1, PZ: 1}
	bestCost := math.Inf(1)
	for pz := 1; pz*pz*pz <= n; pz++ {
		if n%pz != 0 {
			continue
		}
		m := n / pz
		for py := pz; py*py <= m; py++ {
			if m%py != 0 {
				continue
			}
			px := m / py
			// Cost: total surface of the unit-volume decomposition.
			cost := float64(px*py + py*pz + px*pz)
			if cost < bestCost {
				bestCost = cost
				best = NodeGrid{PX: px, PY: py, PZ: pz}
			}
		}
	}
	return best
}

// Pattern selects between the paper's indirect diagonal routing and the
// direct diagonal exchange used as an ablation baseline.
type Pattern int

const (
	// Indirect is the paper's pattern: only axial exchange steps;
	// diagonal data ride through the intermediate node in two hops.
	Indirect Pattern = iota
	// Direct adds explicit pairwise steps for each diagonal direction.
	Direct
)

// Pair is one pairwise exchange between ranks A and B.
type Pair struct {
	A, B int
}

// Step is one synchronous schedule step: a set of pairwise-disjoint
// exchanges all along the same axis.
type Step struct {
	// Axis is the direction from A to B (one of the D3Q19 link
	// directions, excluding rest): axial steps have one nonzero
	// component, diagonal steps two.
	Axis [3]int
	// Pairs lists the disjoint node pairs exchanging in this step.
	Pairs []Pair
}

// Diagonal reports whether the step exchanges along a diagonal axis.
func (s Step) Diagonal() bool {
	n := 0
	for _, a := range s.Axis {
		if a != 0 {
			n++
		}
	}
	return n > 1
}

// Build constructs the schedule for grid g under the given pattern. Steps
// are ordered x, y, z (then diagonals for Direct); within each dimension
// the "left"/"negative" step precedes the "right"/"positive" one, as in
// Figure 7.
func Build(g NodeGrid, p Pattern) []Step {
	if !g.Valid() {
		panic(fmt.Sprintf("sched: invalid grid %v", g))
	}
	var steps []Step
	// Axial steps, dimension by dimension. For each dimension two steps:
	// pairs (2i-1, 2i) then pairs (2i, 2i+1).
	for dim := 0; dim < 3; dim++ {
		extent := [3]int{g.PX, g.PY, g.PZ}[dim]
		if extent <= 1 {
			continue
		}
		for parity := 1; parity >= 0; parity-- {
			// parity 1: pairs starting at odd coordinates (the (2i)th
			// columns exchanging with their left neighbors); parity 0:
			// pairs starting at even coordinates.
			var axis [3]int
			axis[dim] = 1
			var pairs []Pair
			forEachPosition(g, func(i, j, k int) {
				c := [3]int{i, j, k}[dim]
				if c%2 == parity && c+1 < extent {
					a := g.Rank(i, j, k)
					var di, dj, dk int
					switch dim {
					case 0:
						di = 1
					case 1:
						dj = 1
					default:
						dk = 1
					}
					pairs = append(pairs, Pair{A: a, B: g.Rank(i+di, j+dj, k+dk)})
				}
			})
			if len(pairs) > 0 {
				steps = append(steps, Step{Axis: axis, Pairs: pairs})
			}
		}
	}
	if p == Direct {
		steps = append(steps, diagonalSteps(g)...)
	}
	return steps
}

// diagonalSteps builds explicit second-nearest-neighbor exchange steps
// for the Direct pattern: for each of the (up to 6) diagonal directions
// of D3Q19 present in the grid, two parity steps of disjoint pairs.
func diagonalSteps(g NodeGrid) []Step {
	dirs := [][3]int{
		{1, 1, 0}, {1, -1, 0},
		{1, 0, 1}, {1, 0, -1},
		{0, 1, 1}, {0, 1, -1},
	}
	var steps []Step
	for _, d := range dirs {
		if d[0] != 0 && g.PX <= 1 {
			continue
		}
		if d[1] != 0 && g.PY <= 1 {
			continue
		}
		if d[2] != 0 && g.PZ <= 1 {
			continue
		}
		// Color by the coordinate along the first nonzero component of
		// the direction: alternating parities give disjoint pairs.
		primary := 0
		if d[0] == 0 {
			primary = 1
		}
		for parity := 0; parity < 2; parity++ {
			var pairs []Pair
			forEachPosition(g, func(i, j, k int) {
				c := [3]int{i, j, k}
				if c[primary]%2 != parity {
					return
				}
				ni, nj, nk := i+d[0], j+d[1], k+d[2]
				if ni < 0 || ni >= g.PX || nj < 0 || nj >= g.PY || nk < 0 || nk >= g.PZ {
					return
				}
				pairs = append(pairs, Pair{A: g.Rank(i, j, k), B: g.Rank(ni, nj, nk)})
			})
			if len(pairs) > 0 {
				steps = append(steps, Step{Axis: d, Pairs: pairs})
			}
		}
	}
	return steps
}

func forEachPosition(g NodeGrid, visit func(i, j, k int)) {
	for k := 0; k < g.PZ; k++ {
		for j := 0; j < g.PY; j++ {
			for i := 0; i < g.PX; i++ {
				visit(i, j, k)
			}
		}
	}
}

// Neighbors returns the axial neighbor count of each rank — the quantity
// that drives GPU<->CPU border-transfer cost in the performance model.
func Neighbors(g NodeGrid) []int {
	out := make([]int, g.Size())
	forEachPosition(g, func(i, j, k int) {
		n := 0
		if i > 0 {
			n++
		}
		if i < g.PX-1 {
			n++
		}
		if j > 0 {
			n++
		}
		if j < g.PY-1 {
			n++
		}
		if k > 0 {
			n++
		}
		if k < g.PZ-1 {
			n++
		}
		out[g.Rank(i, j, k)] = n
	})
	return out
}

// MaxNeighbors returns the maximum axial neighbor count over all ranks.
func MaxNeighbors(g NodeGrid) int {
	m := 0
	for _, n := range Neighbors(g) {
		if n > m {
			m = n
		}
	}
	return m
}

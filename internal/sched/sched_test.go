package sched

import (
	"testing"
	"testing/quick"
)

func TestArrange2DMatchesPaper(t *testing.T) {
	// The arrangements implied by Table 1's node counts.
	cases := map[int]NodeGrid{
		1:  {1, 1, 1},
		2:  {2, 1, 1},
		4:  {2, 2, 1},
		8:  {4, 2, 1},
		12: {4, 3, 1},
		16: {4, 4, 1},
		20: {5, 4, 1},
		24: {6, 4, 1},
		28: {7, 4, 1},
		30: {6, 5, 1},
		32: {8, 4, 1},
	}
	for n, want := range cases {
		if got := Arrange2D(n); got != want {
			t.Errorf("Arrange2D(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestArrange3D(t *testing.T) {
	if got := Arrange3D(8); got != (NodeGrid{2, 2, 2}) {
		t.Errorf("Arrange3D(8) = %v", got)
	}
	if got := Arrange3D(27); got != (NodeGrid{3, 3, 3}) {
		t.Errorf("Arrange3D(27) = %v", got)
	}
	if got := Arrange3D(12); got.Size() != 12 {
		t.Errorf("Arrange3D(12) = %v", got)
	}
}

func TestRankCoordsRoundTrip(t *testing.T) {
	g := NodeGrid{5, 4, 3}
	for r := 0; r < g.Size(); r++ {
		i, j, k := g.Coords(r)
		if g.Rank(i, j, k) != r {
			t.Fatalf("round trip failed for rank %d", r)
		}
	}
}

func TestScheduleStepsAreDisjoint(t *testing.T) {
	for _, g := range []NodeGrid{{4, 4, 1}, {7, 4, 1}, {3, 3, 3}, {8, 1, 1}, {1, 1, 1}} {
		for _, p := range []Pattern{Indirect, Direct} {
			for si, s := range Build(g, p) {
				seen := map[int]bool{}
				for _, pr := range s.Pairs {
					if pr.A == pr.B {
						t.Errorf("grid %v step %d: self pair", g, si)
					}
					if seen[pr.A] || seen[pr.B] {
						t.Errorf("grid %v step %d: node reused", g, si)
					}
					seen[pr.A], seen[pr.B] = true, true
				}
			}
		}
	}
}

func TestScheduleCoversAllAxialPairs(t *testing.T) {
	// Every pair of axially adjacent nodes must exchange exactly once
	// per direction over the schedule.
	for _, g := range []NodeGrid{{4, 4, 1}, {7, 4, 1}, {6, 5, 1}, {3, 3, 2}, {2, 1, 1}} {
		steps := Build(g, Indirect)
		count := map[Pair]int{}
		for _, s := range steps {
			if s.Diagonal() {
				t.Errorf("grid %v: indirect schedule contains diagonal step", g)
			}
			for _, pr := range s.Pairs {
				count[pr]++
			}
		}
		forEachPosition(g, func(i, j, k int) {
			a := g.Rank(i, j, k)
			if i+1 < g.PX {
				if count[Pair{a, g.Rank(i+1, j, k)}] != 1 {
					t.Errorf("grid %v: x pair at (%d,%d,%d) covered %d times",
						g, i, j, k, count[Pair{a, g.Rank(i+1, j, k)}])
				}
			}
			if j+1 < g.PY {
				if count[Pair{a, g.Rank(i, j+1, k)}] != 1 {
					t.Errorf("grid %v: y pair at (%d,%d,%d) not covered once", g, i, j, k)
				}
			}
			if k+1 < g.PZ {
				if count[Pair{a, g.Rank(i, j, k+1)}] != 1 {
					t.Errorf("grid %v: z pair at (%d,%d,%d) not covered once", g, i, j, k)
				}
			}
		})
	}
}

func TestIndirectStepCount(t *testing.T) {
	// Figure 7: a 2D arrangement has 4 steps; 3D has 6; a line has 2.
	cases := []struct {
		g    NodeGrid
		want int
	}{
		{NodeGrid{4, 4, 1}, 4},
		{NodeGrid{4, 1, 1}, 2},
		{NodeGrid{3, 3, 3}, 6},
		{NodeGrid{1, 1, 1}, 0},
		{NodeGrid{2, 1, 1}, 1}, // a single pair: only one parity step exists
	}
	for _, c := range cases {
		if got := len(Build(c.g, Indirect)); got != c.want {
			t.Errorf("steps(%v) = %d, want %d", c.g, got, c.want)
		}
	}
}

func TestDirectAddsDiagonalSteps(t *testing.T) {
	g := NodeGrid{4, 4, 1}
	ind := Build(g, Indirect)
	dir := Build(g, Direct)
	if len(dir) <= len(ind) {
		t.Fatalf("direct (%d steps) should exceed indirect (%d)", len(dir), len(ind))
	}
	diag := 0
	for _, s := range dir {
		if s.Diagonal() {
			diag++
		}
	}
	// 2D grid: two diagonal directions, up to two parity steps each.
	if diag < 2 || diag > 4 {
		t.Errorf("diagonal step count = %d", diag)
	}
}

func TestDirectCoversDiagonalPairs(t *testing.T) {
	g := NodeGrid{4, 4, 1}
	count := map[Pair]int{}
	for _, s := range Build(g, Direct) {
		if !s.Diagonal() {
			continue
		}
		for _, pr := range s.Pairs {
			count[pr]++
		}
	}
	forEachPosition(g, func(i, j, k int) {
		a := g.Rank(i, j, k)
		for _, d := range [][2]int{{1, 1}, {1, -1}} {
			ni, nj := i+d[0], j+d[1]
			if ni < 0 || ni >= g.PX || nj < 0 || nj >= g.PY {
				continue
			}
			if count[Pair{a, g.Rank(ni, nj, k)}] != 1 {
				t.Errorf("diagonal pair (%d,%d)->(%d,%d) covered %d times",
					i, j, ni, nj, count[Pair{a, g.Rank(ni, nj, k)}])
			}
		}
	})
}

func TestNeighbors(t *testing.T) {
	g := NodeGrid{3, 3, 1}
	n := Neighbors(g)
	// Corner has 2, edge 3, center 4.
	if n[g.Rank(0, 0, 0)] != 2 {
		t.Errorf("corner neighbors = %d", n[g.Rank(0, 0, 0)])
	}
	if n[g.Rank(1, 0, 0)] != 3 {
		t.Errorf("edge neighbors = %d", n[g.Rank(1, 0, 0)])
	}
	if n[g.Rank(1, 1, 0)] != 4 {
		t.Errorf("center neighbors = %d", n[g.Rank(1, 1, 0)])
	}
	if MaxNeighbors(g) != 4 {
		t.Errorf("max = %d", MaxNeighbors(g))
	}
	if MaxNeighbors(NodeGrid{1, 1, 1}) != 0 {
		t.Errorf("single node should have 0 neighbors")
	}
}

// Property: for random small grids the indirect schedule is disjoint per
// step and covers each axial adjacency exactly once.
func TestScheduleProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		g := NodeGrid{int(a%5) + 1, int(b%5) + 1, int(c%3) + 1}
		steps := Build(g, Indirect)
		covered := map[Pair]int{}
		for _, s := range steps {
			seen := map[int]bool{}
			for _, pr := range s.Pairs {
				if seen[pr.A] || seen[pr.B] {
					return false
				}
				seen[pr.A], seen[pr.B] = true, true
				covered[pr]++
			}
		}
		want := g.PY*g.PZ*(g.PX-1) + g.PX*g.PZ*(g.PY-1) + g.PX*g.PY*(g.PZ-1)
		total := 0
		for _, n := range covered {
			if n != 1 {
				return false
			}
			total++
		}
		return total == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestArrangeSingleNode(t *testing.T) {
	if got := Arrange2D(1); got != (NodeGrid{1, 1, 1}) {
		t.Errorf("Arrange2D(1) = %v", got)
	}
	if got := Arrange3D(1); got != (NodeGrid{1, 1, 1}) {
		t.Errorf("Arrange3D(1) = %v", got)
	}
}

func TestArrangePrimesDegenerateToChains(t *testing.T) {
	for _, p := range []int{2, 3, 7, 13, 31} {
		want := NodeGrid{PX: p, PY: 1, PZ: 1}
		if got := Arrange2D(p); got != want {
			t.Errorf("Arrange2D(%d) = %v, want %v", p, got, want)
		}
		if got := Arrange3D(p); got != want {
			t.Errorf("Arrange3D(%d) = %v, want %v", p, got, want)
		}
	}
}

func TestArrangeNonPowerOfTwo(t *testing.T) {
	cases := []struct {
		n      int
		want2D NodeGrid
		want3D NodeGrid
	}{
		{12, NodeGrid{4, 3, 1}, NodeGrid{3, 2, 2}},
		{18, NodeGrid{6, 3, 1}, NodeGrid{3, 3, 2}},
		{20, NodeGrid{5, 4, 1}, NodeGrid{5, 2, 2}},
		{24, NodeGrid{6, 4, 1}, NodeGrid{4, 3, 2}},
		{36, NodeGrid{6, 6, 1}, NodeGrid{4, 3, 3}},
	}
	for _, c := range cases {
		if got := Arrange2D(c.n); got != c.want2D {
			t.Errorf("Arrange2D(%d) = %v, want %v", c.n, got, c.want2D)
		}
		if got := Arrange3D(c.n); got != c.want3D {
			t.Errorf("Arrange3D(%d) = %v, want %v", c.n, got, c.want3D)
		}
	}
}

func TestArrangeInvariants(t *testing.T) {
	for n := 1; n <= 64; n++ {
		g2 := Arrange2D(n)
		if g2.Size() != n || g2.PZ != 1 || g2.PX < g2.PY {
			t.Errorf("Arrange2D(%d) = %v violates invariants", n, g2)
		}
		g3 := Arrange3D(n)
		if g3.Size() != n || g3.PX < g3.PY || g3.PY < g3.PZ {
			t.Errorf("Arrange3D(%d) = %v violates invariants", n, g3)
		}
	}
}

func TestArrangeRejectsNonPositive(t *testing.T) {
	for _, fn := range []func(int) NodeGrid{Arrange2D, Arrange3D} {
		for _, n := range []int{0, -1} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("Arrange(%d) did not panic", n)
					}
				}()
				fn(n)
			}()
		}
	}
}

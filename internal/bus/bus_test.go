package bus

import (
	"testing"
	"time"
)

func TestAGPAsymmetry(t *testing.T) {
	b := AGP8x()
	const n = 10 << 20 // 10 MB
	down := b.Download(n)
	up := b.Upload(n)
	if up <= down {
		t.Fatalf("AGP upstream (%v) should be much slower than downstream (%v)", up, down)
	}
	// 2.1 GB/s vs 133 MB/s is a ~15.8x ratio; with shared latency the
	// modeled ratio for a large transfer should still exceed 10x.
	if float64(up) < 10*float64(down) {
		t.Fatalf("asymmetry ratio too small: up %v, down %v", up, down)
	}
}

func TestPCIeSymmetry(t *testing.T) {
	b := PCIe16x()
	const n = 10 << 20
	down := b.Download(n)
	up := b.Upload(n)
	ratio := float64(up) / float64(down)
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("PCIe should be symmetric, got up %v, down %v", up, down)
	}
}

func TestStatsAccumulate(t *testing.T) {
	b := AGP8x()
	b.Download(100)
	b.Download(200)
	b.Upload(50)
	if b.Down.Ops != 2 || b.Down.Bytes != 300 {
		t.Errorf("down stats = %+v, want 2 ops / 300 bytes", b.Down)
	}
	if b.Up.Ops != 1 || b.Up.Bytes != 50 {
		t.Errorf("up stats = %+v, want 1 op / 50 bytes", b.Up)
	}
	if b.Down.Time <= 0 || b.Up.Time <= 0 {
		t.Errorf("times should be positive: %+v %+v", b.Down, b.Up)
	}
	b.Reset()
	if b.Down != (Stats{}) || b.Up != (Stats{}) {
		t.Errorf("Reset left stats %+v %+v", b.Down, b.Up)
	}
}

func TestOpLatencyDominatesSmallTransfers(t *testing.T) {
	b := AGP8x()
	small := b.Upload(16) // one texel
	if small < b.OpLatency {
		t.Fatalf("small transfer %v should cost at least the op latency %v", small, b.OpLatency)
	}
	// Two small ops should cost about twice one op; a single combined op
	// should be cheaper — this is the motivation for the gather pass.
	b.Reset()
	two := b.Upload(16) + b.Upload(16)
	b.Reset()
	one := b.Upload(32)
	if one >= two {
		t.Fatalf("batched transfer (%v) should beat two ops (%v)", one, two)
	}
}

func TestUploadTimeScalesWithSize(t *testing.T) {
	b := AGP8x()
	t1 := b.Upload(1 << 20)
	t16 := b.Upload(16 << 20)
	if t16 < 8*t1 { // roughly linear once past the fixed latency
		t.Fatalf("16 MB (%v) should take ~16x 1 MB (%v)", t16, t1)
	}
}

func TestBadEfficiencyFallsBackToPeak(t *testing.T) {
	b := &Bus{Name: "x", DownBandwidth: 1e9, UpBandwidth: 1e9, Efficiency: 0}
	d := b.Download(1e9)
	if d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Fatalf("1 GB at 1 GB/s should be ~1s, got %v", d)
	}
}

// Package bus models the host<->GPU transfer path. The paper's cluster
// used AGP 8x, whose defining property is asymmetry: 2.1 GB/s peak
// downstream (toward the GPU) but only 133 MB/s peak upstream (toward the
// host). That asymmetry is why the parallel LBM gathers all border texels
// into a single texture before reading back — read-backs are precious.
// The paper anticipates PCI-Express (4 GB/s symmetric), which package
// perfmodel uses for the ablation experiment A4.
//
// The bus is a cost model: each transfer records its modeled duration
// (fixed per-operation latency plus size over peak bandwidth, derated by
// an efficiency factor) into running totals. No real waiting happens; the
// virtual times feed the performance model while the data themselves are
// moved by ordinary Go copies in package gpu.
package bus

import (
	"fmt"
	"time"
)

// Stats accumulates transfer accounting for one direction.
type Stats struct {
	Ops   int64         // transfer operations issued
	Bytes int64         // payload bytes moved
	Time  time.Duration // modeled time spent
}

// Bus models one host<->device interconnect.
type Bus struct {
	// Name identifies the interconnect standard.
	Name string
	// DownBandwidth is the peak host->device rate in bytes/second.
	DownBandwidth float64
	// UpBandwidth is the peak device->host rate in bytes/second.
	UpBandwidth float64
	// Efficiency derates peak bandwidth to achievable throughput
	// (protocol overhead, small-transfer setup); 0 < Efficiency <= 1.
	Efficiency float64
	// OpLatency is the fixed cost of initiating one transfer (driver
	// call, AGP transaction setup). Minimizing the number of read
	// operations — the paper's single glGetTexImage after a gather
	// pass — minimizes how often this is paid.
	OpLatency time.Duration

	// Down and Up accumulate per-direction statistics.
	Down, Up Stats
}

// AGP8x returns the paper's AGP 8x bus model.
func AGP8x() *Bus {
	return &Bus{
		Name:          "AGP 8x",
		DownBandwidth: 2.1e9,
		UpBandwidth:   133e6,
		Efficiency:    0.8,
		OpLatency:     200 * time.Microsecond,
	}
}

// PCIe16x returns the x16 PCI-Express model the paper anticipates:
// 4 GB/s in both directions.
func PCIe16x() *Bus {
	return &Bus{
		Name:          "PCI-Express x16",
		DownBandwidth: 4.0e9,
		UpBandwidth:   4.0e9,
		Efficiency:    0.8,
		OpLatency:     150 * time.Microsecond,
	}
}

// transferTime returns the modeled duration for moving n bytes at the
// given peak bandwidth.
func (b *Bus) transferTime(n int64, bandwidth float64) time.Duration {
	eff := b.Efficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	seconds := float64(n) / (bandwidth * eff)
	return b.OpLatency + time.Duration(seconds*float64(time.Second))
}

// Download records a host->device transfer of n bytes and returns its
// modeled duration.
func (b *Bus) Download(n int64) time.Duration {
	d := b.transferTime(n, b.DownBandwidth)
	b.Down.Ops++
	b.Down.Bytes += n
	b.Down.Time += d
	return d
}

// Upload records a device->host transfer of n bytes and returns its
// modeled duration.
func (b *Bus) Upload(n int64) time.Duration {
	d := b.transferTime(n, b.UpBandwidth)
	b.Up.Ops++
	b.Up.Bytes += n
	b.Up.Time += d
	return d
}

// Reset zeroes the accumulated statistics.
func (b *Bus) Reset() {
	b.Down = Stats{}
	b.Up = Stats{}
}

func (b *Bus) String() string {
	return fmt.Sprintf("%s (down %.2g B/s, up %.2g B/s)", b.Name, b.DownBandwidth, b.UpBandwidth)
}

package gpu

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"gpucluster/internal/vecmath"
)

// Sampler is the read-only view of a texture handed to fragment programs.
// Providing only gather operations — arbitrary-position reads — encodes
// the key constraint of the fragment stage: programs may fetch texels from
// anywhere but can write only their own output fragment.
type Sampler interface {
	// Fetch returns the texel at (x, y) with clamp-to-edge addressing.
	Fetch(x, y int) vecmath.Vec4
	// FetchWrap returns the texel at (x, y) with repeat addressing.
	FetchWrap(x, y int) vecmath.Vec4
	// Width returns the texture width in texels.
	Width() int
	// Height returns the texture height in texels.
	Height() int
}

// FragmentProgram is a user-defined program run once per fragment of a
// pass's viewport, the Cg fragment program of the paper. It receives the
// bound textures and its own fragment coordinates and returns the RGBA
// result for that fragment — and nothing else: no scatter, no pointers,
// no side effects on other fragments.
type FragmentProgram func(tex []Sampler, x, y int) vecmath.Vec4

// Rect is a half-open viewport rectangle [X0,X1) x [Y0,Y1). The zero Rect
// means "the whole render target". Sub-rectangle viewports model the
// paper's technique of covering only the boundary regions of each Z slice
// with multiple small rectangles.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Empty reports whether r is the zero rectangle.
func (r Rect) Empty() bool { return r == Rect{} }

// Fragments returns the number of fragments the rectangle covers.
func (r Rect) Fragments() int { return (r.X1 - r.X0) * (r.Y1 - r.Y0) }

// PBuffer is a render target in device memory (the pixel-buffer of the
// paper). Results rendered into a pbuffer must be copied into a texture
// (Device.CopyToTexture) before later passes can fetch them.
type PBuffer struct {
	w, h  int
	data  []vecmath.Vec4
	freed bool
	dev   *Device
}

// NewPBuffer allocates a render target, charged against device memory.
func (d *Device) NewPBuffer(name string, w, h int) (*PBuffer, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("gpu: invalid pbuffer size %dx%d", w, h)
	}
	bytes := int64(w) * int64(h) * TexelBytes
	d.mu.Lock()
	if d.used+bytes > d.UsableMemory() {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: pbuffer %q needs %d bytes", ErrOutOfMemory, name, bytes)
	}
	d.used += bytes
	d.mu.Unlock()
	return &PBuffer{w: w, h: h, data: make([]vecmath.Vec4, w*h), dev: d}, nil
}

// Free releases the pbuffer's device memory.
func (pb *PBuffer) Free() {
	if pb == nil || pb.freed {
		return
	}
	pb.freed = true
	pb.dev.mu.Lock()
	pb.dev.used -= int64(pb.w) * int64(pb.h) * TexelBytes
	pb.dev.mu.Unlock()
	pb.data = nil
}

// Width returns the pbuffer width in texels.
func (pb *PBuffer) Width() int { return pb.w }

// Height returns the pbuffer height in texels.
func (pb *PBuffer) Height() int { return pb.h }

// At returns the rendered fragment at (x, y); host-side verification only.
func (pb *PBuffer) At(x, y int) vecmath.Vec4 { return pb.data[y*pb.w+x] }

// Pass describes one render pass: a fragment program drawn over a viewport
// of a render target with a set of bound input textures.
type Pass struct {
	// Name labels the pass for debugging.
	Name string
	// Target receives the shaded fragments.
	Target *PBuffer
	// Viewport restricts shading to a sub-rectangle; zero = full target.
	Viewport Rect
	// Textures are the bound texture units, indexed as given.
	Textures []Sampler
	// Program is invoked once per viewport fragment.
	Program FragmentProgram
}

var errNilProgram = errors.New("gpu: pass has nil program")

// serialThreshold is the fragment count below which a pass runs on the
// calling goroutine; tiny boundary-rectangle passes are not worth fanning
// out.
const serialThreshold = 4096

// Run executes the pass, shading every fragment of the viewport in
// parallel across the device's worker pool. It returns an error for
// malformed passes (nil program, freed or out-of-range target).
func (d *Device) Run(p Pass) error {
	if p.Program == nil {
		return errNilProgram
	}
	if p.Target == nil || p.Target.freed {
		return fmt.Errorf("gpu: pass %q: invalid render target", p.Name)
	}
	vp := p.Viewport
	if vp.Empty() {
		vp = Rect{0, 0, p.Target.w, p.Target.h}
	}
	if vp.X0 < 0 || vp.Y0 < 0 || vp.X1 > p.Target.w || vp.Y1 > p.Target.h ||
		vp.X0 > vp.X1 || vp.Y0 > vp.Y1 {
		return fmt.Errorf("gpu: pass %q: viewport %+v outside %dx%d target",
			p.Name, vp, p.Target.w, p.Target.h)
	}
	for i, t := range p.Textures {
		if t == nil {
			return fmt.Errorf("gpu: pass %q: nil texture bound at unit %d", p.Name, i)
		}
	}

	frags := vp.Fragments()
	d.Stats.Passes++
	d.Stats.Fragments += int64(frags)
	if frags == 0 {
		return nil
	}

	target := p.Target
	if frags < serialThreshold || d.workers == 1 {
		for y := vp.Y0; y < vp.Y1; y++ {
			row := target.data[y*target.w : (y+1)*target.w]
			for x := vp.X0; x < vp.X1; x++ {
				row[x] = p.Program(p.Textures, x, y)
			}
		}
		return nil
	}

	// Parallel: rows are claimed by an atomic cursor so uneven program
	// costs (boundary rows vs. interior rows) balance across workers.
	var next int64 = int64(vp.Y0)
	var wg sync.WaitGroup
	workers := d.workers
	if rows := vp.Y1 - vp.Y0; workers > rows {
		workers = rows
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				y := int(atomic.AddInt64(&next, 1)) - 1
				if y >= vp.Y1 {
					return
				}
				row := target.data[y*target.w : (y+1)*target.w]
				for x := vp.X0; x < vp.X1; x++ {
					row[x] = p.Program(p.Textures, x, y)
				}
			}
		}()
	}
	wg.Wait()
	return nil
}

// RunAndCopy executes the pass and copies the full target into dst, the
// ubiquitous "render then copy back to texture" cycle of GPU computing.
func (d *Device) RunAndCopy(p Pass, dst *Texture2D) error {
	if err := d.Run(p); err != nil {
		return err
	}
	return d.CopyToTexture(p.Target, dst)
}

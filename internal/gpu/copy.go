package gpu

import (
	"fmt"

	"gpucluster/internal/vecmath"
)

// CopyRect copies the viewport rectangle r from the pbuffer into the same
// rectangle of the destination texture — the glCopyTexSubImage2D of the
// paper's render-then-copy cycle, used for the small boundary rectangles.
func (d *Device) CopyRect(pb *PBuffer, dst *Texture2D, r Rect) error {
	if dst.freed {
		return ErrFreed
	}
	if pb.w != dst.w || pb.h != dst.h {
		return fmt.Errorf("gpu: CopyRect size mismatch %dx%d -> %dx%d", pb.w, pb.h, dst.w, dst.h)
	}
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > pb.w || r.Y1 > pb.h || r.X0 > r.X1 || r.Y0 > r.Y1 {
		return fmt.Errorf("gpu: CopyRect rect %+v outside %dx%d", r, pb.w, pb.h)
	}
	for y := r.Y0; y < r.Y1; y++ {
		copy(dst.data[y*dst.w+r.X0:y*dst.w+r.X1], pb.data[y*pb.w+r.X0:y*pb.w+r.X1])
	}
	d.Stats.TextureCopies++
	d.Stats.CopiedTexels += int64(r.Fragments())
	return nil
}

// CopyTexture duplicates src into dst on-device (a render-to-copy blit);
// both textures must have identical dimensions.
func (d *Device) CopyTexture(src, dst *Texture2D) error {
	if src.freed || dst.freed {
		return ErrFreed
	}
	if src.w != dst.w || src.h != dst.h {
		return fmt.Errorf("gpu: CopyTexture size mismatch %dx%d -> %dx%d", src.w, src.h, dst.w, dst.h)
	}
	copy(dst.data, src.data)
	d.Stats.TextureCopies++
	d.Stats.CopiedTexels += int64(len(src.data))
	return nil
}

// UploadRect writes host data into a sub-rectangle of a texture (the
// glTexSubImage2D path, crossing the fast downstream bus direction).
// data holds r.Fragments() texels, row-major, 4 floats each.
func (d *Device) UploadRect(t *Texture2D, r Rect, data []float32) error {
	if t.freed {
		return ErrFreed
	}
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > t.w || r.Y1 > t.h || r.X0 > r.X1 || r.Y0 > r.Y1 {
		return fmt.Errorf("gpu: UploadRect rect %+v outside %dx%d", r, t.w, t.h)
	}
	if len(data) != r.Fragments()*4 {
		return fmt.Errorf("gpu: UploadRect size %d != %d texels * 4", len(data), r.Fragments())
	}
	i := 0
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			t.data[y*t.w+x] = vecmath.Vec4{data[i], data[i+1], data[i+2], data[i+3]}
			i += 4
		}
	}
	d.bus.Download(int64(len(data)) * 4)
	return nil
}

package gpu

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"gpucluster/internal/vecmath"
)

func testDevice() *Device {
	return New(Config{Name: "test", TextureMemory: 64 << 20, Workers: 4})
}

func TestTextureFetchClamp(t *testing.T) {
	d := testDevice()
	tex, err := d.NewTexture2D("t", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	up := make([]float32, 4*3*4)
	for i := 0; i < 4*3; i++ {
		up[4*i] = float32(i)
	}
	if err := d.Upload(tex, up); err != nil {
		t.Fatal(err)
	}
	if got := tex.Fetch(0, 0)[0]; got != 0 {
		t.Errorf("Fetch(0,0) = %v", got)
	}
	if got := tex.Fetch(3, 2)[0]; got != 11 {
		t.Errorf("Fetch(3,2) = %v", got)
	}
	// Clamp-to-edge addressing.
	if got := tex.Fetch(-5, 0); got != tex.Fetch(0, 0) {
		t.Errorf("negative x should clamp: %v", got)
	}
	if got := tex.Fetch(100, 100); got != tex.Fetch(3, 2) {
		t.Errorf("overflow should clamp: %v", got)
	}
}

func TestTextureFetchWrap(t *testing.T) {
	d := testDevice()
	tex, _ := d.NewTexture2D("t", 4, 4)
	up := make([]float32, 4*4*4)
	for i := 0; i < 16; i++ {
		up[4*i] = float32(i)
	}
	d.Upload(tex, up)
	if got, want := tex.FetchWrap(5, 0), tex.Fetch(1, 0); got != want {
		t.Errorf("FetchWrap(5,0) = %v, want %v", got, want)
	}
	if got, want := tex.FetchWrap(-1, -1), tex.Fetch(3, 3); got != want {
		t.Errorf("FetchWrap(-1,-1) = %v, want %v", got, want)
	}
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	d := testDevice()
	tex, _ := d.NewTexture2D("t", 8, 8)
	up := make([]float32, 8*8*4)
	rng := rand.New(rand.NewSource(42))
	for i := range up {
		up[i] = rng.Float32()
	}
	if err := d.Upload(tex, up); err != nil {
		t.Fatal(err)
	}
	down, err := d.Download(tex)
	if err != nil {
		t.Fatal(err)
	}
	for i := range up {
		if up[i] != down[i] {
			t.Fatalf("round trip mismatch at %d: %v != %v", i, up[i], down[i])
		}
	}
	// The transfers must have crossed the bus model.
	if d.Bus().Down.Bytes == 0 || d.Bus().Up.Bytes == 0 {
		t.Errorf("bus not charged: %+v %+v", d.Bus().Down, d.Bus().Up)
	}
}

func TestUploadSizeValidation(t *testing.T) {
	d := testDevice()
	tex, _ := d.NewTexture2D("t", 4, 4)
	if err := d.Upload(tex, make([]float32, 7)); err == nil {
		t.Fatal("short upload should fail")
	}
}

func TestMemoryBudget(t *testing.T) {
	d := New(Config{TextureMemory: 1 << 20, Reserved: 0, Workers: 1})
	// 1 MB budget = 65536 texels.
	tex, err := d.NewTexture2D("big", 256, 128) // 32768 texels = 512 KB
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewTexture2D("toobig", 256, 256); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	tex.Free()
	if _, err := d.NewTexture2D("fits-now", 256, 256); err != nil {
		t.Fatalf("after free the allocation should fit: %v", err)
	}
	if d.UsedMemory() != 256*256*TexelBytes {
		t.Errorf("used = %d", d.UsedMemory())
	}
}

func TestFX5800LatticeCapacity(t *testing.T) {
	// The paper: at most 86 MB usable, capping the D3Q19 lattice at 92^3.
	// D3Q19 needs 5 distribution stacks + 1 density/velocity stack of
	// N^2 x N texels each = 6 * N^3 texels * 16 B.
	d := New(GeForceFX5800Ultra())
	alloc := func(n int) error {
		var stacks []*TextureStack
		defer func() {
			for _, s := range stacks {
				s.Free()
			}
		}()
		for i := 0; i < 6; i++ {
			s, err := d.NewStack("f", n, n, n)
			if err != nil {
				return err
			}
			stacks = append(stacks, s)
		}
		return nil
	}
	if err := alloc(92); err != nil {
		t.Fatalf("92^3 lattice should fit in 86 MB: %v", err)
	}
	if err := alloc(104); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("104^3 lattice should exceed 86 MB, got %v", err)
	}
}

func TestStackLayersAndFetch(t *testing.T) {
	d := testDevice()
	s, err := d.NewStack("vol", 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Depth() != 3 || s.Width() != 4 || s.Height() != 4 {
		t.Fatalf("bad stack dims: %v", s)
	}
	up := make([]float32, 4*4*4)
	up[0] = 7
	d.Upload(s.Layer(2), up)
	if got := s.Fetch(0, 0, 2)[0]; got != 7 {
		t.Errorf("Fetch z=2 = %v", got)
	}
	if got := s.Fetch(0, 0, 99); got != s.Fetch(0, 0, 2) {
		t.Errorf("z clamp failed")
	}
	if got := s.Fetch(0, 0, -1); got != s.Fetch(0, 0, 0) {
		t.Errorf("negative z clamp failed")
	}
}

func TestStackAllocationRollback(t *testing.T) {
	// If a stack allocation fails partway, already-allocated layers must
	// be released.
	d := New(Config{TextureMemory: 3 * 64 * 64 * TexelBytes, Workers: 1})
	if _, err := d.NewStack("v", 64, 64, 5); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	if d.UsedMemory() != 0 {
		t.Fatalf("partial stack leaked %d bytes", d.UsedMemory())
	}
}

func TestPassFullTarget(t *testing.T) {
	d := testDevice()
	pb, _ := d.NewPBuffer("out", 16, 16)
	err := d.Run(Pass{
		Name:   "coords",
		Target: pb,
		Program: func(tex []Sampler, x, y int) vecmath.Vec4 {
			return vecmath.Vec4{float32(x), float32(y), 0, 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if got := pb.At(x, y); got[0] != float32(x) || got[1] != float32(y) {
				t.Fatalf("fragment (%d,%d) = %v", x, y, got)
			}
		}
	}
	if d.Stats.Passes != 1 || d.Stats.Fragments != 256 {
		t.Errorf("stats = %+v", d.Stats)
	}
}

func TestPassViewportRectangle(t *testing.T) {
	// The paper covers boundary regions with small viewport rectangles;
	// fragments outside the viewport must be untouched.
	d := testDevice()
	pb, _ := d.NewPBuffer("out", 8, 8)
	one := func(tex []Sampler, x, y int) vecmath.Vec4 { return vecmath.Vec4{1, 1, 1, 1} }
	if err := d.Run(Pass{Target: pb, Program: one, Viewport: Rect{2, 3, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			inside := x >= 2 && x < 5 && y >= 3 && y < 6
			got := pb.At(x, y)
			if inside && got[0] != 1 {
				t.Fatalf("(%d,%d) should be shaded", x, y)
			}
			if !inside && got[0] != 0 {
				t.Fatalf("(%d,%d) outside viewport was written", x, y)
			}
		}
	}
}

func TestPassGather(t *testing.T) {
	// A gather program: each fragment sums its 4 axial neighbors from a
	// bound texture.
	d := testDevice()
	src, _ := d.NewTexture2D("src", 8, 8)
	up := make([]float32, 8*8*4)
	for i := 0; i < 64; i++ {
		up[4*i] = 1
	}
	d.Upload(src, up)
	pb, _ := d.NewPBuffer("out", 8, 8)
	err := d.Run(Pass{
		Target:   pb,
		Textures: []Sampler{src},
		Program: func(tex []Sampler, x, y int) vecmath.Vec4 {
			s := tex[0].Fetch(x-1, y).Add(tex[0].Fetch(x+1, y)).
				Add(tex[0].Fetch(x, y-1)).Add(tex[0].Fetch(x, y+1))
			return s
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := pb.At(4, 4)[0]; got != 4 {
		t.Errorf("interior gather = %v, want 4", got)
	}
}

func TestPassValidation(t *testing.T) {
	d := testDevice()
	pb, _ := d.NewPBuffer("out", 4, 4)
	if err := d.Run(Pass{Target: pb}); err == nil {
		t.Error("nil program should fail")
	}
	p := func(tex []Sampler, x, y int) vecmath.Vec4 { return vecmath.Vec4{} }
	if err := d.Run(Pass{Program: p}); err == nil {
		t.Error("nil target should fail")
	}
	if err := d.Run(Pass{Target: pb, Program: p, Viewport: Rect{0, 0, 9, 9}}); err == nil {
		t.Error("oversized viewport should fail")
	}
	if err := d.Run(Pass{Target: pb, Program: p, Textures: []Sampler{nil}}); err == nil {
		t.Error("nil bound texture should fail")
	}
	freed, _ := d.NewPBuffer("f", 4, 4)
	freed.Free()
	if err := d.Run(Pass{Target: freed, Program: p}); err == nil {
		t.Error("freed target should fail")
	}
}

func TestCopyToTexture(t *testing.T) {
	d := testDevice()
	pb, _ := d.NewPBuffer("out", 4, 4)
	tex, _ := d.NewTexture2D("dst", 4, 4)
	p := func(tex []Sampler, x, y int) vecmath.Vec4 { return vecmath.Vec4{float32(x + y), 0, 0, 0} }
	if err := d.RunAndCopy(Pass{Target: pb, Program: p}, tex); err != nil {
		t.Fatal(err)
	}
	if got := tex.Fetch(2, 1)[0]; got != 3 {
		t.Errorf("copied texel = %v, want 3", got)
	}
	wrong, _ := d.NewTexture2D("wrong", 3, 4)
	if err := d.CopyToTexture(pb, wrong); err == nil {
		t.Error("size mismatch copy should fail")
	}
}

func TestPingPongPasses(t *testing.T) {
	// The canonical GPU-compute cycle: pass renders to pbuffer, result is
	// copied to a texture, next pass reads it. Iterating a doubling
	// program k times must compute 2^k.
	d := testDevice()
	state, _ := d.NewTexture2D("state", 4, 4)
	pb, _ := d.NewPBuffer("pb", 4, 4)
	up := make([]float32, 4*4*4)
	for i := 0; i < 16; i++ {
		up[4*i] = 1
	}
	d.Upload(state, up)
	double := func(tex []Sampler, x, y int) vecmath.Vec4 {
		return tex[0].Fetch(x, y).Scale(2)
	}
	for i := 0; i < 10; i++ {
		if err := d.RunAndCopy(Pass{Target: pb, Textures: []Sampler{state}, Program: double}, state); err != nil {
			t.Fatal(err)
		}
	}
	if got := state.Fetch(2, 2)[0]; got != 1024 {
		t.Errorf("after 10 doublings = %v, want 1024", got)
	}
}

func TestParallelPassDeterminism(t *testing.T) {
	// A pass over a large target must produce identical results with 1
	// worker and many workers.
	run := func(workers int) []vecmath.Vec4 {
		d := New(Config{TextureMemory: 64 << 20, Workers: workers})
		src, _ := d.NewTexture2D("src", 128, 128)
		up := make([]float32, 128*128*4)
		rng := rand.New(rand.NewSource(7))
		for i := range up {
			up[i] = rng.Float32()
		}
		d.Upload(src, up)
		pb, _ := d.NewPBuffer("out", 128, 128)
		d.Run(Pass{
			Target:   pb,
			Textures: []Sampler{src},
			Program: func(tex []Sampler, x, y int) vecmath.Vec4 {
				a := tex[0].Fetch(x-1, y-1)
				b := tex[0].Fetch(x+1, y+1)
				return a.Add(b).Scale(0.5)
			},
		})
		out := make([]vecmath.Vec4, 128*128)
		for y := 0; y < 128; y++ {
			for x := 0; x < 128; x++ {
				out[y*128+x] = pb.At(x, y)
			}
		}
		return out
	}
	one := run(1)
	eight := run(8)
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("worker-count nondeterminism at texel %d: %v != %v", i, one[i], eight[i])
		}
	}
}

// Property: upload/download round-trips arbitrary payloads exactly.
func TestUploadDownloadProperty(t *testing.T) {
	d := testDevice()
	tex, _ := d.NewTexture2D("t", 16, 16)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		up := make([]float32, 16*16*4)
		for i := range up {
			up[i] = float32(rng.NormFloat64())
		}
		if err := d.Upload(tex, up); err != nil {
			return false
		}
		down, err := d.Download(tex)
		if err != nil {
			return false
		}
		for i := range up {
			if up[i] != down[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFreedTextureOperations(t *testing.T) {
	d := testDevice()
	tex, _ := d.NewTexture2D("t", 4, 4)
	tex.Free()
	if err := d.Upload(tex, make([]float32, 64)); !errors.Is(err, ErrFreed) {
		t.Errorf("upload to freed texture: %v", err)
	}
	if _, err := d.Download(tex); !errors.Is(err, ErrFreed) {
		t.Errorf("download of freed texture: %v", err)
	}
	tex.Free() // double free is a no-op
	if d.UsedMemory() != 0 {
		t.Errorf("double free corrupted accounting: %d", d.UsedMemory())
	}
}

func TestInvalidAllocations(t *testing.T) {
	d := testDevice()
	if _, err := d.NewTexture2D("bad", 0, 4); err == nil {
		t.Error("zero-width texture should fail")
	}
	if _, err := d.NewTexture2D("bad", 4, -1); err == nil {
		t.Error("negative-height texture should fail")
	}
	if _, err := d.NewStack("bad", 4, 4, 0); err == nil {
		t.Error("zero-depth stack should fail")
	}
	if _, err := d.NewPBuffer("bad", -1, 4); err == nil {
		t.Error("negative pbuffer should fail")
	}
}

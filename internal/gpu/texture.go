// Package gpu is a software model of a 2003-era programmable graphics
// processor (the paper's nVIDIA GeForce FX 5800 Ultra) sufficient for
// general-purpose computation as described in Section 2 of the paper:
//
//   - data live in 2D RGBA float textures (and stacks of them for volumes);
//   - computation steps are fragment programs executed over a viewport
//     rectangle by a render pass; fragment programs may gather (fetch any
//     texel of any bound texture) but can only write the single output
//     fragment they are invoked for — there is no scatter;
//   - pass results land in a pixel buffer (pbuffer) and must be copied back
//     into a texture before they can be fetched by a later pass;
//   - texture memory is a hard, small budget (128 MB on the FX 5800 Ultra,
//     of which only ~86 MB was usable for lattice data);
//   - transfers between host and device cross an explicit bus model with
//     asymmetric bandwidth (see package bus).
//
// The model enforces the programming-model constraints through the API:
// programs receive read-only Samplers and return one Vec4. Fragments are
// executed concurrently by a worker pool, which is both faithful (the
// hardware ran 16 fragment pipes in parallel) and fast.
package gpu

import (
	"fmt"

	"gpucluster/internal/vecmath"
)

// TexelBytes is the storage size of one RGBA float32 texel.
const TexelBytes = 16

// Texture2D is a W x H grid of RGBA float32 texels residing in simulated
// device memory. Textures are created through a Device so that memory
// accounting is enforced.
type Texture2D struct {
	name   string
	w, h   int
	data   []vecmath.Vec4
	device *Device
	freed  bool
}

// Name returns the debug name given at allocation time.
func (t *Texture2D) Name() string { return t.name }

// Width returns the texture width in texels.
func (t *Texture2D) Width() int { return t.w }

// Height returns the texture height in texels.
func (t *Texture2D) Height() int { return t.h }

// Bytes returns the device memory consumed by the texture.
func (t *Texture2D) Bytes() int64 { return int64(t.w) * int64(t.h) * TexelBytes }

// Fetch returns the texel at (x, y) with clamp-to-edge addressing, the
// standard texture addressing mode used by the paper's fragment programs.
func (t *Texture2D) Fetch(x, y int) vecmath.Vec4 {
	if x < 0 {
		x = 0
	} else if x >= t.w {
		x = t.w - 1
	}
	if y < 0 {
		y = 0
	} else if y >= t.h {
		y = t.h - 1
	}
	return t.data[y*t.w+x]
}

// FetchWrap returns the texel at (x, y) with repeat (wrap-around)
// addressing, used for periodic boundary conditions.
func (t *Texture2D) FetchWrap(x, y int) vecmath.Vec4 {
	x %= t.w
	if x < 0 {
		x += t.w
	}
	y %= t.h
	if y < 0 {
		y += t.h
	}
	return t.data[y*t.w+x]
}

// At returns the texel at (x, y) without clamping; callers must stay in
// bounds. It exists for host-side verification code, not for fragment
// programs.
func (t *Texture2D) At(x, y int) vecmath.Vec4 { return t.data[y*t.w+x] }

// setRow overwrites one row; used by Device.Upload.
func (t *Texture2D) setRow(y int, row []vecmath.Vec4) {
	copy(t.data[y*t.w:(y+1)*t.w], row)
}

// TextureStack is a stack of same-sized 2D textures representing a volume,
// the layout of Figure 5 in the paper: a W x H x D volume of Vec4 state is
// stored as D textures of W x H texels.
type TextureStack struct {
	name   string
	layers []*Texture2D
}

// Name returns the debug name given at allocation time.
func (s *TextureStack) Name() string { return s.name }

// Depth returns the number of layers in the stack.
func (s *TextureStack) Depth() int { return len(s.layers) }

// Layer returns the z-th 2D texture of the stack.
func (s *TextureStack) Layer(z int) *Texture2D { return s.layers[z] }

// Width returns the per-layer width.
func (s *TextureStack) Width() int { return s.layers[0].w }

// Height returns the per-layer height.
func (s *TextureStack) Height() int { return s.layers[0].h }

// Fetch performs a clamped 3D fetch by clamping z to the stack and
// delegating to the layer's 2D fetch.
func (s *TextureStack) Fetch(x, y, z int) vecmath.Vec4 {
	if z < 0 {
		z = 0
	} else if z >= len(s.layers) {
		z = len(s.layers) - 1
	}
	return s.layers[z].Fetch(x, y)
}

// Bytes returns the total device memory held by the stack.
func (s *TextureStack) Bytes() int64 {
	var n int64
	for _, l := range s.layers {
		n += l.Bytes()
	}
	return n
}

func (s *TextureStack) String() string {
	return fmt.Sprintf("stack %q %dx%dx%d", s.name, s.Width(), s.Height(), s.Depth())
}

package gpu

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"gpucluster/internal/bus"
	"gpucluster/internal/vecmath"
)

// ErrOutOfMemory is returned when a texture allocation would exceed the
// device's usable texture memory. The paper hit exactly this wall: of the
// FX 5800 Ultra's 128 MB, at most 86 MB could hold lattice data, capping
// the single-GPU lattice at 92^3.
var ErrOutOfMemory = errors.New("gpu: out of texture memory")

// ErrFreed is returned when an operation references a texture that has
// been freed.
var ErrFreed = errors.New("gpu: texture already freed")

// Stats aggregates instrumentation counters for one device. All byte and
// time accounting for host<->device traffic is delegated to the bus model.
type Stats struct {
	Passes        int64 // render passes executed
	Fragments     int64 // fragments shaded
	TextureCopies int64 // pbuffer -> texture copy operations
	CopiedTexels  int64 // texels moved by those copies
	Allocations   int64 // textures allocated over the device lifetime
}

// Config describes a simulated GPU.
type Config struct {
	// Name identifies the device model in logs.
	Name string
	// TextureMemory is the total on-board memory in bytes.
	TextureMemory int64
	// Reserved is memory unavailable to compute data (framebuffer,
	// driver, pbuffers). Usable memory is TextureMemory - Reserved.
	Reserved int64
	// Workers is the number of concurrent fragment workers; 0 means
	// GOMAXPROCS. The FX 5800 Ultra had 8 (reduced-rate) fragment pipes,
	// its successor 16; the simulation uses host CPUs instead.
	Workers int
	// Bus is the host<->device transfer model. If nil, AGP 8x is used.
	Bus *bus.Bus
}

// GeForceFX5800Ultra returns the configuration of the paper's GPU: 128 MB
// on-board memory with 86 MB usable for lattice textures, on an AGP 8x bus.
func GeForceFX5800Ultra() Config {
	return Config{
		Name:          "GeForce FX 5800 Ultra",
		TextureMemory: 128 << 20,
		Reserved:      42 << 20, // leaves the paper's observed 86 MB usable
		Bus:           bus.AGP8x(),
	}
}

// Device is one simulated GPU. A Device is safe for use by a single
// owning goroutine (one cluster node drives one GPU, as in the paper);
// the fragment worker pool inside a pass is managed by the device itself.
type Device struct {
	cfg  Config
	used int64
	bus  *bus.Bus

	// Stats is the instrumentation block; read it after runs complete.
	Stats Stats

	workers int
	mu      sync.Mutex // guards used (textures may be freed from tests)
}

// New creates a device from cfg, applying defaults for zero fields.
func New(cfg Config) *Device {
	if cfg.TextureMemory == 0 {
		cfg.TextureMemory = 128 << 20
	}
	if cfg.Bus == nil {
		cfg.Bus = bus.AGP8x()
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Device{cfg: cfg, bus: cfg.Bus, workers: w}
}

// Name returns the device model name.
func (d *Device) Name() string { return d.cfg.Name }

// Bus returns the host<->device bus model in use.
func (d *Device) Bus() *bus.Bus { return d.bus }

// UsableMemory returns the texture memory available for allocations.
func (d *Device) UsableMemory() int64 { return d.cfg.TextureMemory - d.cfg.Reserved }

// UsedMemory returns the currently allocated texture memory.
func (d *Device) UsedMemory() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// NewTexture2D allocates a w x h RGBA float texture, charging it against
// the device memory budget.
func (d *Device) NewTexture2D(name string, w, h int) (*Texture2D, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("gpu: invalid texture size %dx%d", w, h)
	}
	bytes := int64(w) * int64(h) * TexelBytes
	d.mu.Lock()
	if d.used+bytes > d.UsableMemory() {
		d.mu.Unlock()
		return nil, fmt.Errorf("%w: need %d bytes, %d of %d used",
			ErrOutOfMemory, bytes, d.used, d.UsableMemory())
	}
	d.used += bytes
	d.Stats.Allocations++
	d.mu.Unlock()
	return &Texture2D{
		name:   name,
		w:      w,
		h:      h,
		data:   make([]vecmath.Vec4, w*h),
		device: d,
	}, nil
}

// NewStack allocates a stack of depth w x h textures (a volume).
func (d *Device) NewStack(name string, w, h, depth int) (*TextureStack, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("gpu: invalid stack depth %d", depth)
	}
	s := &TextureStack{name: name, layers: make([]*Texture2D, depth)}
	for z := range s.layers {
		t, err := d.NewTexture2D(fmt.Sprintf("%s[%d]", name, z), w, h)
		if err != nil {
			s.Free() // release the layers allocated so far
			return nil, err
		}
		s.layers[z] = t
	}
	return s, nil
}

// Free releases the texture's memory back to the device budget. Freeing
// twice is an error surfaced via panic in tests through ErrFreed checks.
func (t *Texture2D) Free() {
	if t == nil || t.freed {
		return
	}
	t.freed = true
	d := t.device
	d.mu.Lock()
	d.used -= t.Bytes()
	d.mu.Unlock()
	t.data = nil
}

// Free releases every layer of the stack.
func (s *TextureStack) Free() {
	for _, l := range s.layers {
		l.Free()
	}
}

// Upload transfers host data into the texture, row-major, 4 floats per
// texel, crossing the downstream (host -> GPU) direction of the bus. The
// data length must be exactly w*h*4 floats.
func (d *Device) Upload(t *Texture2D, data []float32) error {
	if t.freed {
		return ErrFreed
	}
	if len(data) != t.w*t.h*4 {
		return fmt.Errorf("gpu: upload size %d != %d texels * 4", len(data), t.w*t.h)
	}
	for i := range t.data {
		t.data[i] = vecmath.Vec4{data[4*i], data[4*i+1], data[4*i+2], data[4*i+3]}
	}
	d.bus.Download(int64(len(data)) * 4) // "downstream" = toward the GPU
	return nil
}

// Download reads the whole texture back to the host, crossing the slow
// upstream (GPU -> host) direction of the bus — the paper's glGetTexImage
// path. This is deliberately a single bulk read: Section 4.3 explains that
// border data are first gathered into one texture precisely so that the
// read-back is one operation.
func (d *Device) Download(t *Texture2D) ([]float32, error) {
	if t.freed {
		return nil, ErrFreed
	}
	out := make([]float32, t.w*t.h*4)
	for i, v := range t.data {
		out[4*i], out[4*i+1], out[4*i+2], out[4*i+3] = v[0], v[1], v[2], v[3]
	}
	d.bus.Upload(int64(len(out)) * 4) // "upstream" = toward the host
	return out, nil
}

// CopyToTexture copies the pbuffer contents into the destination texture
// (the paper's "results are copied to textures for temporary storage").
// Sizes must match exactly.
func (d *Device) CopyToTexture(pb *PBuffer, dst *Texture2D) error {
	if dst.freed {
		return ErrFreed
	}
	if pb.w != dst.w || pb.h != dst.h {
		return fmt.Errorf("gpu: copy size mismatch %dx%d -> %dx%d", pb.w, pb.h, dst.w, dst.h)
	}
	copy(dst.data, pb.data)
	d.Stats.TextureCopies++
	d.Stats.CopiedTexels += int64(len(pb.data))
	return nil
}

// Package netsim is a virtual-clock model of the cluster interconnect: a
// Gigabit Ethernet switch with one full-duplex port per node. It
// reproduces the two empirical observations of Section 4.3 of the paper:
//
//  1. "During the time when a node is sending data to another node, if a
//     third node tries to send data to either of those nodes, the
//     interruption will break the smooth data transfer and may
//     dramatically reduce the performance" — modeled as an interruption
//     penalty added whenever a transfer is requested at a port that is
//     already busy.
//
//  2. "Assuming the total communication data size is the same, a
//     simulation in which each node transfers data to more neighbors has
//     a considerably larger communication time" — emergent from the fixed
//     per-message latency (MPI software stack plus switch forwarding).
//
// The Stony Brook cluster had 35 nodes; Gigabit switches of the era were
// non-blocking only up to ~24 ports, with larger configurations stacked
// through a shared trunk. The model therefore treats ports beyond
// NonBlockingPorts as sitting behind a shared trunk whose bandwidth is
// divided among concurrent trunk flows. This is the mechanism that
// produces the network-time knee above 24 nodes seen in Table 1/Figure 8.
//
// All times are virtual (time.Duration); nothing sleeps.
package netsim

import (
	"fmt"
	"time"
)

// Config describes the interconnect.
type Config struct {
	// Ports is the number of attached nodes.
	Ports int
	// LinkBandwidth is the per-port rate in bytes/second
	// (1 Gigabit = 125e6).
	LinkBandwidth float64
	// Efficiency derates the peak link rate (Ethernet/IP/TCP framing and
	// the MPI progress engine); 0 < Efficiency <= 1.
	Efficiency float64
	// MsgLatency is the fixed cost per message: MPI call overhead,
	// kernel crossing, switch store-and-forward.
	MsgLatency time.Duration
	// InterruptPenalty is the extra cost paid by a transfer that finds
	// one of its ports busy (the paper's third-node interruption).
	InterruptPenalty time.Duration
	// NonBlockingPorts is the number of ports on the primary,
	// non-blocking switch. Ports at index >= NonBlockingPorts reach the
	// fabric through a shared trunk. Zero means all ports non-blocking.
	NonBlockingPorts int
	// TrunkBandwidth is the total bandwidth of the stacking trunk shared
	// by all flows involving ports >= NonBlockingPorts.
	TrunkBandwidth float64
}

// GigabitSwitch returns the paper's interconnect: 1 Gbit/s per port,
// non-blocking through 24 ports, stacked beyond. The trunk's effective
// throughput is calibrated to the Table 1 knee at 28+ nodes: under the
// LBM's bursty synchronized schedule the stacking segment delivered far
// below wire speed (flow-control backpressure), modeled as a 14 MB/s
// effective rate shared per direction by concurrent crossing flows.
func GigabitSwitch(ports int) Config {
	return Config{
		Ports:            ports,
		LinkBandwidth:    125e6,
		Efficiency:       0.85,
		MsgLatency:       120 * time.Microsecond,
		InterruptPenalty: 2 * time.Millisecond,
		NonBlockingPorts: 24,
		TrunkBandwidth:   14e6,
	}
}

// Stats aggregates traffic accounting.
type Stats struct {
	Transfers     int64
	Bytes         int64
	Interruptions int64
	TrunkFlows    int64
}

// Network is the switch state: per-port busy horizons on a virtual clock.
type Network struct {
	cfg       Config
	busyUntil []time.Duration
	// Stats accumulates counters across transfers; read between rounds.
	Stats Stats
}

// New creates a network from cfg.
func New(cfg Config) *Network {
	if cfg.Ports <= 0 {
		panic(fmt.Sprintf("netsim: invalid port count %d", cfg.Ports))
	}
	if cfg.Efficiency <= 0 || cfg.Efficiency > 1 {
		cfg.Efficiency = 1
	}
	return &Network{cfg: cfg, busyUntil: make([]time.Duration, cfg.Ports)}
}

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Reset clears port state and statistics.
func (n *Network) Reset() {
	for i := range n.busyUntil {
		n.busyUntil[i] = 0
	}
	n.Stats = Stats{}
}

// effRate returns the achievable per-flow rate in bytes/second.
func (n *Network) effRate() float64 { return n.cfg.LinkBandwidth * n.cfg.Efficiency }

// crossesTrunk reports whether a flow between ports a and b traverses the
// stacking trunk: exactly one endpoint sits behind it (two stacked-switch
// ports talk locally on the second switch).
func (n *Network) crossesTrunk(a, b int) bool {
	if n.cfg.NonBlockingPorts <= 0 || n.cfg.NonBlockingPorts >= n.cfg.Ports {
		return false
	}
	return (a >= n.cfg.NonBlockingPorts) != (b >= n.cfg.NonBlockingPorts)
}

// wireTime returns the serialization time for one message of the given
// size at the given rate.
func (n *Network) wireTime(bytes int64, rate float64) time.Duration {
	return n.cfg.MsgLatency + time.Duration(float64(bytes)/rate*float64(time.Second))
}

// Transfer models one unidirectional message of `bytes` from port src to
// port dst, requested at virtual time `at`. It returns the interval
// [start, end) during which both ports are occupied. If either port is
// busy when the request arrives, the transfer is an interruption: it
// waits for the port and pays the interruption penalty.
func (n *Network) Transfer(src, dst int, bytes int64, at time.Duration) (start, end time.Duration) {
	if src < 0 || src >= n.cfg.Ports || dst < 0 || dst >= n.cfg.Ports || src == dst {
		panic(fmt.Sprintf("netsim: invalid transfer %d -> %d (ports %d)", src, dst, n.cfg.Ports))
	}
	start = at
	interrupted := false
	if n.busyUntil[src] > start {
		start = n.busyUntil[src]
		interrupted = true
	}
	if n.busyUntil[dst] > start {
		start = n.busyUntil[dst]
		interrupted = true
	}
	dur := n.wireTime(bytes, n.effRate())
	if n.crossesTrunk(src, dst) {
		n.Stats.TrunkFlows++
		if n.cfg.TrunkBandwidth > 0 && n.cfg.TrunkBandwidth < n.cfg.LinkBandwidth {
			dur = n.wireTime(bytes, n.cfg.TrunkBandwidth*n.cfg.Efficiency)
		}
	}
	if interrupted {
		dur += n.cfg.InterruptPenalty
		n.Stats.Interruptions++
	}
	end = start + dur
	n.busyUntil[src] = end
	n.busyUntil[dst] = end
	n.Stats.Transfers++
	n.Stats.Bytes += bytes
	return start, end
}

// Exchange is one bidirectional pairwise exchange of a schedule step: both
// nodes send Bytes to each other simultaneously (full duplex).
type Exchange struct {
	A, B  int
	Bytes int64
}

// StepTimes computes the per-node completion times of one schedule step in
// which the given pairwise exchanges run concurrently, each pair starting
// when both of its members are ready (their start times). Pairs are
// required to be disjoint — that is the defining property of the paper's
// schedule — and the function panics otherwise.
//
// Trunk sharing: all exchanges crossing the trunk divide TrunkBandwidth
// evenly, so a step's trunk exchanges take (number of trunk flows) times
// longer than a lone trunk exchange. This deterministic fluid
// approximation is what creates the contention knee for large clusters.
func (n *Network) StepTimes(pairs []Exchange, ready []time.Duration) []time.Duration {
	seen := make(map[int]bool, len(pairs)*2)
	crossing := 0
	for _, p := range pairs {
		if p.A == p.B || p.A < 0 || p.B < 0 || p.A >= n.cfg.Ports || p.B >= n.cfg.Ports {
			panic(fmt.Sprintf("netsim: invalid exchange %+v", p))
		}
		if seen[p.A] || seen[p.B] {
			panic(fmt.Sprintf("netsim: schedule step is not pairwise disjoint at %+v", p))
		}
		seen[p.A], seen[p.B] = true, true
		if n.crossesTrunk(p.A, p.B) {
			// The trunk is full duplex, so an exchange loads each
			// direction with one flow; concurrent crossing exchanges
			// divide the per-direction trunk rate.
			crossing++
		}
	}
	done := make([]time.Duration, len(ready))
	copy(done, ready)
	for _, p := range pairs {
		start := ready[p.A]
		if ready[p.B] > start {
			start = ready[p.B]
		}
		rate := n.effRate()
		if n.crossesTrunk(p.A, p.B) && crossing > 0 && n.cfg.TrunkBandwidth > 0 {
			share := n.cfg.TrunkBandwidth * n.cfg.Efficiency / float64(crossing)
			if share < rate {
				rate = share
			}
			n.Stats.TrunkFlows += 2
		}
		dur := n.wireTime(p.Bytes, rate)
		end := start + dur
		done[p.A], done[p.B] = end, end
		n.Stats.Transfers += 2
		n.Stats.Bytes += 2 * p.Bytes
	}
	return done
}

// MaxTime returns the maximum of a time vector; zero for empty input.
func MaxTime(ts []time.Duration) time.Duration {
	var m time.Duration
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}
